# Empty dependencies file for test_bcp.
# This may be replaced when dependencies are built.
