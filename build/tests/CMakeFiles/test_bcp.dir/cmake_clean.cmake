file(REMOVE_RECURSE
  "CMakeFiles/test_bcp.dir/test_bcp.cc.o"
  "CMakeFiles/test_bcp.dir/test_bcp.cc.o.d"
  "test_bcp"
  "test_bcp.pdb"
  "test_bcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
