# Empty dependencies file for test_usec.
# This may be replaced when dependencies are built.
