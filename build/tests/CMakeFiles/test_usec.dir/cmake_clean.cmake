file(REMOVE_RECURSE
  "CMakeFiles/test_usec.dir/test_usec.cc.o"
  "CMakeFiles/test_usec.dir/test_usec.cc.o.d"
  "test_usec"
  "test_usec.pdb"
  "test_usec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_usec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
