# Empty dependencies file for test_core_labeling.
# This may be replaced when dependencies are built.
