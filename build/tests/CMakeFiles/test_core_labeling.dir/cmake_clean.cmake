file(REMOVE_RECURSE
  "CMakeFiles/test_core_labeling.dir/test_core_labeling.cc.o"
  "CMakeFiles/test_core_labeling.dir/test_core_labeling.cc.o.d"
  "test_core_labeling"
  "test_core_labeling.pdb"
  "test_core_labeling[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
