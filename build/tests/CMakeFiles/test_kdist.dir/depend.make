# Empty dependencies file for test_kdist.
# This may be replaced when dependencies are built.
