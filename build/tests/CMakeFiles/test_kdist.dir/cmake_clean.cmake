file(REMOVE_RECURSE
  "CMakeFiles/test_kdist.dir/test_kdist.cc.o"
  "CMakeFiles/test_kdist.dir/test_kdist.cc.o.d"
  "test_kdist"
  "test_kdist.pdb"
  "test_kdist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kdist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
