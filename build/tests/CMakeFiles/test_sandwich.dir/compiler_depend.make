# Empty compiler generated dependencies file for test_sandwich.
# This may be replaced when dependencies are built.
