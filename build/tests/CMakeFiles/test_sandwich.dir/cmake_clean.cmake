file(REMOVE_RECURSE
  "CMakeFiles/test_sandwich.dir/test_sandwich.cc.o"
  "CMakeFiles/test_sandwich.dir/test_sandwich.cc.o.d"
  "test_sandwich"
  "test_sandwich.pdb"
  "test_sandwich[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sandwich.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
