file(REMOVE_RECURSE
  "CMakeFiles/test_gunawan2d.dir/test_gunawan2d.cc.o"
  "CMakeFiles/test_gunawan2d.dir/test_gunawan2d.cc.o.d"
  "test_gunawan2d"
  "test_gunawan2d.pdb"
  "test_gunawan2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gunawan2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
