# Empty compiler generated dependencies file for test_gunawan2d.
# This may be replaced when dependencies are built.
