file(REMOVE_RECURSE
  "CMakeFiles/test_compare.dir/test_compare.cc.o"
  "CMakeFiles/test_compare.dir/test_compare.cc.o.d"
  "test_compare"
  "test_compare.pdb"
  "test_compare[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
