file(REMOVE_RECURSE
  "CMakeFiles/test_result_validity.dir/test_result_validity.cc.o"
  "CMakeFiles/test_result_validity.dir/test_result_validity.cc.o.d"
  "test_result_validity"
  "test_result_validity.pdb"
  "test_result_validity[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_result_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
