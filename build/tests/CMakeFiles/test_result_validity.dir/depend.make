# Empty dependencies file for test_result_validity.
# This may be replaced when dependencies are built.
