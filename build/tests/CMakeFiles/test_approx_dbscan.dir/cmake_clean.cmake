file(REMOVE_RECURSE
  "CMakeFiles/test_approx_dbscan.dir/test_approx_dbscan.cc.o"
  "CMakeFiles/test_approx_dbscan.dir/test_approx_dbscan.cc.o.d"
  "test_approx_dbscan"
  "test_approx_dbscan.pdb"
  "test_approx_dbscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_approx_dbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
