# Empty dependencies file for test_approx_dbscan.
# This may be replaced when dependencies are built.
