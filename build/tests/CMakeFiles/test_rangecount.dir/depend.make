# Empty dependencies file for test_rangecount.
# This may be replaced when dependencies are built.
