file(REMOVE_RECURSE
  "CMakeFiles/test_rangecount.dir/test_rangecount.cc.o"
  "CMakeFiles/test_rangecount.dir/test_rangecount.cc.o.d"
  "test_rangecount"
  "test_rangecount.pdb"
  "test_rangecount[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rangecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
