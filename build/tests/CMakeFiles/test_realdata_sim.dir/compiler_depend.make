# Empty compiler generated dependencies file for test_realdata_sim.
# This may be replaced when dependencies are built.
