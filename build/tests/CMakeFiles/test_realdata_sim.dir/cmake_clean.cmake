file(REMOVE_RECURSE
  "CMakeFiles/test_realdata_sim.dir/test_realdata_sim.cc.o"
  "CMakeFiles/test_realdata_sim.dir/test_realdata_sim.cc.o.d"
  "test_realdata_sim"
  "test_realdata_sim.pdb"
  "test_realdata_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_realdata_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
