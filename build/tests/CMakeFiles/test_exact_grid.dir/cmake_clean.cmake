file(REMOVE_RECURSE
  "CMakeFiles/test_exact_grid.dir/test_exact_grid.cc.o"
  "CMakeFiles/test_exact_grid.dir/test_exact_grid.cc.o.d"
  "test_exact_grid"
  "test_exact_grid.pdb"
  "test_exact_grid[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_exact_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
