file(REMOVE_RECURSE
  "CMakeFiles/test_gridbscan.dir/test_gridbscan.cc.o"
  "CMakeFiles/test_gridbscan.dir/test_gridbscan.cc.o.d"
  "test_gridbscan"
  "test_gridbscan.pdb"
  "test_gridbscan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gridbscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
