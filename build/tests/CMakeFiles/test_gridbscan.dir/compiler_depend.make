# Empty compiler generated dependencies file for test_gridbscan.
# This may be replaced when dependencies are built.
