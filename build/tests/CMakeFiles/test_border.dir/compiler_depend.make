# Empty compiler generated dependencies file for test_border.
# This may be replaced when dependencies are built.
