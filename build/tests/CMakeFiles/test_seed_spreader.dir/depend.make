# Empty dependencies file for test_seed_spreader.
# This may be replaced when dependencies are built.
