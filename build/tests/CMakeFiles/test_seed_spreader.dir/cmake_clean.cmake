file(REMOVE_RECURSE
  "CMakeFiles/test_seed_spreader.dir/test_seed_spreader.cc.o"
  "CMakeFiles/test_seed_spreader.dir/test_seed_spreader.cc.o.d"
  "test_seed_spreader"
  "test_seed_spreader.pdb"
  "test_seed_spreader[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_seed_spreader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
