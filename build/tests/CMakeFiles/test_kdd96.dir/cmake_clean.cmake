file(REMOVE_RECURSE
  "CMakeFiles/test_kdd96.dir/test_kdd96.cc.o"
  "CMakeFiles/test_kdd96.dir/test_kdd96.cc.o.d"
  "test_kdd96"
  "test_kdd96.pdb"
  "test_kdd96[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kdd96.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
