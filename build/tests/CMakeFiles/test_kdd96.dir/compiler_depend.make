# Empty compiler generated dependencies file for test_kdd96.
# This may be replaced when dependencies are built.
