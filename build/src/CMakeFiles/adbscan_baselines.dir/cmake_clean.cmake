file(REMOVE_RECURSE
  "CMakeFiles/adbscan_baselines.dir/baselines/gf_dbscan.cc.o"
  "CMakeFiles/adbscan_baselines.dir/baselines/gf_dbscan.cc.o.d"
  "CMakeFiles/adbscan_baselines.dir/baselines/sampling_dbscan.cc.o"
  "CMakeFiles/adbscan_baselines.dir/baselines/sampling_dbscan.cc.o.d"
  "libadbscan_baselines.a"
  "libadbscan_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
