# Empty compiler generated dependencies file for adbscan_baselines.
# This may be replaced when dependencies are built.
