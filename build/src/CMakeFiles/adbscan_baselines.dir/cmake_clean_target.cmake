file(REMOVE_RECURSE
  "libadbscan_baselines.a"
)
