file(REMOVE_RECURSE
  "CMakeFiles/adbscan_io.dir/io/dataset_io.cc.o"
  "CMakeFiles/adbscan_io.dir/io/dataset_io.cc.o.d"
  "CMakeFiles/adbscan_io.dir/io/table.cc.o"
  "CMakeFiles/adbscan_io.dir/io/table.cc.o.d"
  "libadbscan_io.a"
  "libadbscan_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
