file(REMOVE_RECURSE
  "libadbscan_io.a"
)
