# Empty dependencies file for adbscan_io.
# This may be replaced when dependencies are built.
