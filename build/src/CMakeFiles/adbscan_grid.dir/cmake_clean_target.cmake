file(REMOVE_RECURSE
  "libadbscan_grid.a"
)
