
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/cell.cc" "src/CMakeFiles/adbscan_grid.dir/grid/cell.cc.o" "gcc" "src/CMakeFiles/adbscan_grid.dir/grid/cell.cc.o.d"
  "/root/repo/src/grid/grid.cc" "src/CMakeFiles/adbscan_grid.dir/grid/grid.cc.o" "gcc" "src/CMakeFiles/adbscan_grid.dir/grid/grid.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adbscan_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
