file(REMOVE_RECURSE
  "CMakeFiles/adbscan_grid.dir/grid/cell.cc.o"
  "CMakeFiles/adbscan_grid.dir/grid/cell.cc.o.d"
  "CMakeFiles/adbscan_grid.dir/grid/grid.cc.o"
  "CMakeFiles/adbscan_grid.dir/grid/grid.cc.o.d"
  "libadbscan_grid.a"
  "libadbscan_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
