# Empty dependencies file for adbscan_grid.
# This may be replaced when dependencies are built.
