file(REMOVE_RECURSE
  "CMakeFiles/adbscan_util.dir/util/flags.cc.o"
  "CMakeFiles/adbscan_util.dir/util/flags.cc.o.d"
  "CMakeFiles/adbscan_util.dir/util/parallel.cc.o"
  "CMakeFiles/adbscan_util.dir/util/parallel.cc.o.d"
  "CMakeFiles/adbscan_util.dir/util/rng.cc.o"
  "CMakeFiles/adbscan_util.dir/util/rng.cc.o.d"
  "libadbscan_util.a"
  "libadbscan_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
