# Empty compiler generated dependencies file for adbscan_util.
# This may be replaced when dependencies are built.
