file(REMOVE_RECURSE
  "libadbscan_util.a"
)
