file(REMOVE_RECURSE
  "CMakeFiles/adbscan_gen.dir/gen/realdata_sim.cc.o"
  "CMakeFiles/adbscan_gen.dir/gen/realdata_sim.cc.o.d"
  "CMakeFiles/adbscan_gen.dir/gen/seed_spreader.cc.o"
  "CMakeFiles/adbscan_gen.dir/gen/seed_spreader.cc.o.d"
  "CMakeFiles/adbscan_gen.dir/gen/uniform.cc.o"
  "CMakeFiles/adbscan_gen.dir/gen/uniform.cc.o.d"
  "CMakeFiles/adbscan_gen.dir/gen/usec_gen.cc.o"
  "CMakeFiles/adbscan_gen.dir/gen/usec_gen.cc.o.d"
  "libadbscan_gen.a"
  "libadbscan_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
