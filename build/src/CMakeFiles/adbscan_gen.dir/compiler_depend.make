# Empty compiler generated dependencies file for adbscan_gen.
# This may be replaced when dependencies are built.
