file(REMOVE_RECURSE
  "libadbscan_gen.a"
)
