# Empty dependencies file for adbscan_geom.
# This may be replaced when dependencies are built.
