file(REMOVE_RECURSE
  "CMakeFiles/adbscan_geom.dir/geom/box.cc.o"
  "CMakeFiles/adbscan_geom.dir/geom/box.cc.o.d"
  "CMakeFiles/adbscan_geom.dir/geom/dataset.cc.o"
  "CMakeFiles/adbscan_geom.dir/geom/dataset.cc.o.d"
  "CMakeFiles/adbscan_geom.dir/geom/delaunay2d.cc.o"
  "CMakeFiles/adbscan_geom.dir/geom/delaunay2d.cc.o.d"
  "libadbscan_geom.a"
  "libadbscan_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
