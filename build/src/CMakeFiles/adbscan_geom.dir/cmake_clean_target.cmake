file(REMOVE_RECURSE
  "libadbscan_geom.a"
)
