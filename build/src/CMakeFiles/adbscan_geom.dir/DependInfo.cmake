
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/box.cc" "src/CMakeFiles/adbscan_geom.dir/geom/box.cc.o" "gcc" "src/CMakeFiles/adbscan_geom.dir/geom/box.cc.o.d"
  "/root/repo/src/geom/dataset.cc" "src/CMakeFiles/adbscan_geom.dir/geom/dataset.cc.o" "gcc" "src/CMakeFiles/adbscan_geom.dir/geom/dataset.cc.o.d"
  "/root/repo/src/geom/delaunay2d.cc" "src/CMakeFiles/adbscan_geom.dir/geom/delaunay2d.cc.o" "gcc" "src/CMakeFiles/adbscan_geom.dir/geom/delaunay2d.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adbscan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
