file(REMOVE_RECURSE
  "libadbscan_index.a"
)
