file(REMOVE_RECURSE
  "CMakeFiles/adbscan_index.dir/index/brute_force.cc.o"
  "CMakeFiles/adbscan_index.dir/index/brute_force.cc.o.d"
  "CMakeFiles/adbscan_index.dir/index/kdtree.cc.o"
  "CMakeFiles/adbscan_index.dir/index/kdtree.cc.o.d"
  "CMakeFiles/adbscan_index.dir/index/rtree.cc.o"
  "CMakeFiles/adbscan_index.dir/index/rtree.cc.o.d"
  "libadbscan_index.a"
  "libadbscan_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
