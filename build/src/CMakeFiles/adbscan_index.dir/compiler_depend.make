# Empty compiler generated dependencies file for adbscan_index.
# This may be replaced when dependencies are built.
