# Empty compiler generated dependencies file for adbscan_ds.
# This may be replaced when dependencies are built.
