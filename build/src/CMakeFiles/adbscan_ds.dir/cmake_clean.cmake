file(REMOVE_RECURSE
  "CMakeFiles/adbscan_ds.dir/ds/union_find.cc.o"
  "CMakeFiles/adbscan_ds.dir/ds/union_find.cc.o.d"
  "libadbscan_ds.a"
  "libadbscan_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
