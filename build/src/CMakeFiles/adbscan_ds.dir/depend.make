# Empty dependencies file for adbscan_ds.
# This may be replaced when dependencies are built.
