file(REMOVE_RECURSE
  "libadbscan_ds.a"
)
