# Empty dependencies file for adbscan_eval.
# This may be replaced when dependencies are built.
