file(REMOVE_RECURSE
  "CMakeFiles/adbscan_eval.dir/eval/collapse.cc.o"
  "CMakeFiles/adbscan_eval.dir/eval/collapse.cc.o.d"
  "CMakeFiles/adbscan_eval.dir/eval/compare.cc.o"
  "CMakeFiles/adbscan_eval.dir/eval/compare.cc.o.d"
  "CMakeFiles/adbscan_eval.dir/eval/kdist.cc.o"
  "CMakeFiles/adbscan_eval.dir/eval/kdist.cc.o.d"
  "CMakeFiles/adbscan_eval.dir/eval/stats.cc.o"
  "CMakeFiles/adbscan_eval.dir/eval/stats.cc.o.d"
  "libadbscan_eval.a"
  "libadbscan_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
