file(REMOVE_RECURSE
  "libadbscan_eval.a"
)
