file(REMOVE_RECURSE
  "libadbscan_bcp.a"
)
