file(REMOVE_RECURSE
  "CMakeFiles/adbscan_bcp.dir/bcp/bcp.cc.o"
  "CMakeFiles/adbscan_bcp.dir/bcp/bcp.cc.o.d"
  "libadbscan_bcp.a"
  "libadbscan_bcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_bcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
