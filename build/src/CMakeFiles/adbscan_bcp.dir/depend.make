# Empty dependencies file for adbscan_bcp.
# This may be replaced when dependencies are built.
