
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/approx_dbscan.cc" "src/CMakeFiles/adbscan_core.dir/core/approx_dbscan.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/approx_dbscan.cc.o.d"
  "/root/repo/src/core/border.cc" "src/CMakeFiles/adbscan_core.dir/core/border.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/border.cc.o.d"
  "/root/repo/src/core/brute_reference.cc" "src/CMakeFiles/adbscan_core.dir/core/brute_reference.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/brute_reference.cc.o.d"
  "/root/repo/src/core/core_labeling.cc" "src/CMakeFiles/adbscan_core.dir/core/core_labeling.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/core_labeling.cc.o.d"
  "/root/repo/src/core/exact_grid.cc" "src/CMakeFiles/adbscan_core.dir/core/exact_grid.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/exact_grid.cc.o.d"
  "/root/repo/src/core/grid_pipeline.cc" "src/CMakeFiles/adbscan_core.dir/core/grid_pipeline.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/grid_pipeline.cc.o.d"
  "/root/repo/src/core/gridbscan.cc" "src/CMakeFiles/adbscan_core.dir/core/gridbscan.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/gridbscan.cc.o.d"
  "/root/repo/src/core/gunawan2d.cc" "src/CMakeFiles/adbscan_core.dir/core/gunawan2d.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/gunawan2d.cc.o.d"
  "/root/repo/src/core/kdd96.cc" "src/CMakeFiles/adbscan_core.dir/core/kdd96.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/kdd96.cc.o.d"
  "/root/repo/src/core/optics.cc" "src/CMakeFiles/adbscan_core.dir/core/optics.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/optics.cc.o.d"
  "/root/repo/src/core/usec.cc" "src/CMakeFiles/adbscan_core.dir/core/usec.cc.o" "gcc" "src/CMakeFiles/adbscan_core.dir/core/usec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adbscan_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_bcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_rangecount.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
