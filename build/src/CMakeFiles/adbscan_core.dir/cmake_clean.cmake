file(REMOVE_RECURSE
  "CMakeFiles/adbscan_core.dir/core/approx_dbscan.cc.o"
  "CMakeFiles/adbscan_core.dir/core/approx_dbscan.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/border.cc.o"
  "CMakeFiles/adbscan_core.dir/core/border.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/brute_reference.cc.o"
  "CMakeFiles/adbscan_core.dir/core/brute_reference.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/core_labeling.cc.o"
  "CMakeFiles/adbscan_core.dir/core/core_labeling.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/exact_grid.cc.o"
  "CMakeFiles/adbscan_core.dir/core/exact_grid.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/grid_pipeline.cc.o"
  "CMakeFiles/adbscan_core.dir/core/grid_pipeline.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/gridbscan.cc.o"
  "CMakeFiles/adbscan_core.dir/core/gridbscan.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/gunawan2d.cc.o"
  "CMakeFiles/adbscan_core.dir/core/gunawan2d.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/kdd96.cc.o"
  "CMakeFiles/adbscan_core.dir/core/kdd96.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/optics.cc.o"
  "CMakeFiles/adbscan_core.dir/core/optics.cc.o.d"
  "CMakeFiles/adbscan_core.dir/core/usec.cc.o"
  "CMakeFiles/adbscan_core.dir/core/usec.cc.o.d"
  "libadbscan_core.a"
  "libadbscan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
