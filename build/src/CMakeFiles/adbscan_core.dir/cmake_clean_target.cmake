file(REMOVE_RECURSE
  "libadbscan_core.a"
)
