# Empty dependencies file for adbscan_core.
# This may be replaced when dependencies are built.
