file(REMOVE_RECURSE
  "libadbscan_rangecount.a"
)
