file(REMOVE_RECURSE
  "CMakeFiles/adbscan_rangecount.dir/rangecount/approx_range_counter.cc.o"
  "CMakeFiles/adbscan_rangecount.dir/rangecount/approx_range_counter.cc.o.d"
  "libadbscan_rangecount.a"
  "libadbscan_rangecount.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_rangecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
