# Empty dependencies file for adbscan_rangecount.
# This may be replaced when dependencies are built.
