file(REMOVE_RECURSE
  "../bench/related_work"
  "../bench/related_work.pdb"
  "CMakeFiles/related_work.dir/related_work.cc.o"
  "CMakeFiles/related_work.dir/related_work.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
