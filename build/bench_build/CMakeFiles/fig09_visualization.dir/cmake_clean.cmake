file(REMOVE_RECURSE
  "../bench/fig09_visualization"
  "../bench/fig09_visualization.pdb"
  "CMakeFiles/fig09_visualization.dir/fig09_visualization.cc.o"
  "CMakeFiles/fig09_visualization.dir/fig09_visualization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_visualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
