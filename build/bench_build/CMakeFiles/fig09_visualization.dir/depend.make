# Empty dependencies file for fig09_visualization.
# This may be replaced when dependencies are built.
