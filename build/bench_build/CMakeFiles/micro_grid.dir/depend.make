# Empty dependencies file for micro_grid.
# This may be replaced when dependencies are built.
