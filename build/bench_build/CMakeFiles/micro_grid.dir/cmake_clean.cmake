file(REMOVE_RECURSE
  "../bench/micro_grid"
  "../bench/micro_grid.pdb"
  "CMakeFiles/micro_grid.dir/micro_grid.cc.o"
  "CMakeFiles/micro_grid.dir/micro_grid.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
