file(REMOVE_RECURSE
  "../bench/fig13_vary_rho"
  "../bench/fig13_vary_rho.pdb"
  "CMakeFiles/fig13_vary_rho.dir/fig13_vary_rho.cc.o"
  "CMakeFiles/fig13_vary_rho.dir/fig13_vary_rho.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_vary_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
