# Empty compiler generated dependencies file for fig13_vary_rho.
# This may be replaced when dependencies are built.
