file(REMOVE_RECURSE
  "../bench/micro_rangecount"
  "../bench/micro_rangecount.pdb"
  "CMakeFiles/micro_rangecount.dir/micro_rangecount.cc.o"
  "CMakeFiles/micro_rangecount.dir/micro_rangecount.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_rangecount.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
