# Empty compiler generated dependencies file for micro_rangecount.
# This may be replaced when dependencies are built.
