# Empty compiler generated dependencies file for fig12_vary_eps.
# This may be replaced when dependencies are built.
