file(REMOVE_RECURSE
  "../bench/fig12_vary_eps"
  "../bench/fig12_vary_eps.pdb"
  "CMakeFiles/fig12_vary_eps.dir/fig12_vary_eps.cc.o"
  "CMakeFiles/fig12_vary_eps.dir/fig12_vary_eps.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_vary_eps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
