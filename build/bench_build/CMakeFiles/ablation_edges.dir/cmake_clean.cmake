file(REMOVE_RECURSE
  "../bench/ablation_edges"
  "../bench/ablation_edges.pdb"
  "CMakeFiles/ablation_edges.dir/ablation_edges.cc.o"
  "CMakeFiles/ablation_edges.dir/ablation_edges.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
