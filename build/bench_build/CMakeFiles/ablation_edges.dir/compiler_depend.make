# Empty compiler generated dependencies file for ablation_edges.
# This may be replaced when dependencies are built.
