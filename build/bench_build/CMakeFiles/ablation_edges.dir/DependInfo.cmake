
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_edges.cc" "bench_build/CMakeFiles/ablation_edges.dir/ablation_edges.cc.o" "gcc" "bench_build/CMakeFiles/ablation_edges.dir/ablation_edges.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/adbscan_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_gen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_io.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_ds.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_bcp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_rangecount.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_index.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/adbscan_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
