file(REMOVE_RECURSE
  "../bench/micro_unionfind"
  "../bench/micro_unionfind.pdb"
  "CMakeFiles/micro_unionfind.dir/micro_unionfind.cc.o"
  "CMakeFiles/micro_unionfind.dir/micro_unionfind.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_unionfind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
