# Empty compiler generated dependencies file for fig08_seed_spreader.
# This may be replaced when dependencies are built.
