file(REMOVE_RECURSE
  "../bench/fig08_seed_spreader"
  "../bench/fig08_seed_spreader.pdb"
  "CMakeFiles/fig08_seed_spreader.dir/fig08_seed_spreader.cc.o"
  "CMakeFiles/fig08_seed_spreader.dir/fig08_seed_spreader.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_seed_spreader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
