# Empty compiler generated dependencies file for fig10_max_legal_rho.
# This may be replaced when dependencies are built.
