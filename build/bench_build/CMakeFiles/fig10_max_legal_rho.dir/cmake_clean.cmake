file(REMOVE_RECURSE
  "../bench/fig10_max_legal_rho"
  "../bench/fig10_max_legal_rho.pdb"
  "CMakeFiles/fig10_max_legal_rho.dir/fig10_max_legal_rho.cc.o"
  "CMakeFiles/fig10_max_legal_rho.dir/fig10_max_legal_rho.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_max_legal_rho.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
