file(REMOVE_RECURSE
  "../bench/fig11_scale_n"
  "../bench/fig11_scale_n.pdb"
  "CMakeFiles/fig11_scale_n.dir/fig11_scale_n.cc.o"
  "CMakeFiles/fig11_scale_n.dir/fig11_scale_n.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_scale_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
