file(REMOVE_RECURSE
  "../bench/micro_bcp"
  "../bench/micro_bcp.pdb"
  "CMakeFiles/micro_bcp.dir/micro_bcp.cc.o"
  "CMakeFiles/micro_bcp.dir/micro_bcp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_bcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
