# Empty dependencies file for micro_bcp.
# This may be replaced when dependencies are built.
