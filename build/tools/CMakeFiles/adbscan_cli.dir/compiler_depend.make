# Empty compiler generated dependencies file for adbscan_cli.
# This may be replaced when dependencies are built.
