file(REMOVE_RECURSE
  "CMakeFiles/adbscan_cli.dir/adbscan_cli.cc.o"
  "CMakeFiles/adbscan_cli.dir/adbscan_cli.cc.o.d"
  "adbscan_cli"
  "adbscan_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adbscan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
