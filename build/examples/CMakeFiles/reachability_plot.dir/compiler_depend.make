# Empty compiler generated dependencies file for reachability_plot.
# This may be replaced when dependencies are built.
