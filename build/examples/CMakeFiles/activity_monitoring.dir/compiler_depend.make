# Empty compiler generated dependencies file for activity_monitoring.
# This may be replaced when dependencies are built.
