file(REMOVE_RECURSE
  "CMakeFiles/activity_monitoring.dir/activity_monitoring.cpp.o"
  "CMakeFiles/activity_monitoring.dir/activity_monitoring.cpp.o.d"
  "activity_monitoring"
  "activity_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
