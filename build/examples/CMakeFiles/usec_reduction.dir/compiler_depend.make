# Empty compiler generated dependencies file for usec_reduction.
# This may be replaced when dependencies are built.
