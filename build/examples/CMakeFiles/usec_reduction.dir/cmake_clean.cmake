file(REMOVE_RECURSE
  "CMakeFiles/usec_reduction.dir/usec_reduction.cpp.o"
  "CMakeFiles/usec_reduction.dir/usec_reduction.cpp.o.d"
  "usec_reduction"
  "usec_reduction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usec_reduction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
