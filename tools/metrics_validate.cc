// metrics_validate — sanity-checks observability artifacts. Used by
// tools/bench_smoke.sh and CI as a ctest entry.
//
// --input (JSON Lines of obs::RunRecord) checks, per record:
//   - the line parses as a RunRecord (schema fields present);
//   - records with metrics_enabled=true carry at least --min_counters
//     distinct counters;
//   - for runs slower than --min_total_ms, the root-level phase times sum
//     to within --phase_sum_tol of total_ms (faster runs are dominated by
//     scheduler noise and are exempt from the coverage check);
//   - distribution quantiles are ordered: min <= p50 <= p95 <= p99 <= max
//     (small slack for JSON number rounding).
//
// --trace_json (Chrome trace-event JSON, obs/trace_export.h) checks:
//   - the document parses and has a traceEvents array;
//   - every event carries ph/pid/tid/name, plus ts for non-metadata
//     events, dur >= 0 for "X", and args.value for "C";
//   - timestamps are non-decreasing within each tid (metadata exempt);
//   - "B"/"E" begin/end events balance per tid in LIFO order.
//
// Either input alone is fine; at least one is required. Exits 0 when every
// check passes, 1 otherwise, 2 on usage errors.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "util/flags.h"

using namespace adbscan;

namespace {

// Validates a Chrome trace-event JSON file; returns the number of failed
// checks (0 = valid).
int ValidateTraceJson(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::optional<obs::JsonValue> doc = obs::ParseJson(buffer.str());
  if (!doc.has_value() || !doc->IsObject()) {
    std::fprintf(stderr, "%s: not a JSON object\n", path.c_str());
    return 1;
  }
  const obs::JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->IsArray()) {
    std::fprintf(stderr, "%s: missing traceEvents array\n", path.c_str());
    return 1;
  }

  int failures = 0;
  auto fail = [&](size_t index, const char* what) {
    std::fprintf(stderr, "%s: event %zu: %s\n", path.c_str(), index, what);
    ++failures;
  };
  std::map<double, double> last_ts;                      // tid -> latest ts
  std::map<double, std::vector<std::string>> open_begins;  // tid -> B stack
  for (size_t i = 0; i < events->array.size(); ++i) {
    const obs::JsonValue& e = events->array[i];
    if (!e.IsObject()) {
      fail(i, "not an object");
      continue;
    }
    const obs::JsonValue* ph = e.Find("ph");
    const obs::JsonValue* pid = e.Find("pid");
    const obs::JsonValue* tid = e.Find("tid");
    const obs::JsonValue* name = e.Find("name");
    if (ph == nullptr || !ph->IsString() || ph->string.size() != 1) {
      fail(i, "missing one-character ph");
      continue;
    }
    if (pid == nullptr || !pid->IsNumber()) fail(i, "missing numeric pid");
    if (tid == nullptr || !tid->IsNumber()) {
      fail(i, "missing numeric tid");
      continue;
    }
    if (name == nullptr || !name->IsString()) fail(i, "missing name");
    const char kind = ph->string[0];
    if (kind == 'M') continue;  // metadata carries no timestamp

    const obs::JsonValue* ts = e.Find("ts");
    if (ts == nullptr || !ts->IsNumber()) {
      fail(i, "missing numeric ts");
      continue;
    }
    const auto [it, fresh] = last_ts.try_emplace(tid->number, ts->number);
    if (!fresh) {
      if (ts->number < it->second) fail(i, "ts decreases within tid");
      it->second = std::max(it->second, ts->number);
    }
    switch (kind) {
      case 'X': {
        const obs::JsonValue* dur = e.Find("dur");
        if (dur == nullptr || !dur->IsNumber() || dur->number < 0.0) {
          fail(i, "X event without non-negative dur");
        }
        break;
      }
      case 'C': {
        const obs::JsonValue* args = e.Find("args");
        const obs::JsonValue* value =
            args != nullptr ? args->Find("value") : nullptr;
        if (value == nullptr || !value->IsNumber()) {
          fail(i, "C event without numeric args.value");
        }
        break;
      }
      case 'B':
        if (name != nullptr && name->IsString()) {
          open_begins[tid->number].push_back(name->string);
        }
        break;
      case 'E': {
        std::vector<std::string>& stack = open_begins[tid->number];
        if (stack.empty()) {
          fail(i, "E event without matching B");
        } else {
          if (name != nullptr && name->IsString() && !name->string.empty() &&
              name->string != stack.back()) {
            fail(i, "E event name does not match innermost B");
          }
          stack.pop_back();
        }
        break;
      }
      default:
        break;  // other phases (i, s, ...) need only the common fields
    }
  }
  for (const auto& [tid, stack] : open_begins) {
    if (!stack.empty()) {
      std::fprintf(stderr, "%s: tid %g: %zu unclosed B event(s), first '%s'\n",
                   path.c_str(), tid, stack.size(), stack.front().c_str());
      ++failures;
    }
  }
  std::printf("%s: %zu trace events, %d failures\n", path.c_str(),
              events->array.size(), failures);
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("input", "", "metrics JSON-lines file")
      .DefineString("trace_json", "",
                    "Chrome trace-event JSON file to validate")
      .DefineInt("min_records", 1, "minimum number of records expected")
      .DefineInt("min_counters", 6,
                 "minimum distinct counters per enabled record")
      .DefineDouble("phase_sum_tol", 0.1,
                    "allowed |phase sum - total| / total")
      .DefineDouble("min_total_ms", 50.0,
                    "phase-coverage check only for runs at least this long");
  flags.Parse(argc, argv);

  const std::string input = flags.GetString("input");
  const std::string trace_json = flags.GetString("trace_json");
  if (input.empty() && trace_json.empty()) {
    std::fprintf(stderr, "--input and/or --trace_json is required\n");
    flags.PrintUsage(argv[0]);
    return 2;
  }
  if (input.empty()) {
    return ValidateTraceJson(trace_json) == 0 ? 0 : 1;
  }
  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", input.c_str());
    return 1;
  }

  const size_t min_counters =
      static_cast<size_t>(flags.GetInt("min_counters"));
  const double tol = flags.GetDouble("phase_sum_tol");
  const double min_total_ms = flags.GetDouble("min_total_ms");

  int records = 0;
  int failures = 0;
  std::string line;
  for (int lineno = 1; std::getline(in, line); ++lineno) {
    if (line.empty()) continue;
    const std::optional<obs::RunRecord> rec = obs::RunRecordFromJson(line);
    if (!rec.has_value()) {
      std::fprintf(stderr, "%s:%d: not a valid RunRecord\n", input.c_str(),
                   lineno);
      ++failures;
      continue;
    }
    ++records;
    const std::string id =
        rec->run + "/" + rec->dataset + "/" + rec->algo;
    if (rec->metrics_enabled &&
        rec->metrics.counters.size() < min_counters) {
      std::fprintf(stderr, "%s:%d: %s has %zu counters, want >= %zu\n",
                   input.c_str(), lineno, id.c_str(),
                   rec->metrics.counters.size(), min_counters);
      ++failures;
    }
    for (const auto& [name, d] : rec->metrics.distributions) {
      if (!d.has_quantiles) continue;
      // Slack absorbs the %.6g rounding of the JSON number formatter.
      const double slack =
          1e-5 * (std::abs(d.max) + std::abs(d.min) + 1.0);
      const bool ordered = d.min <= d.p50 + slack && d.p50 <= d.p95 + slack &&
                           d.p95 <= d.p99 + slack && d.p99 <= d.max + slack;
      if (!ordered) {
        std::fprintf(stderr,
                     "%s:%d: %s distribution '%s' quantiles out of order: "
                     "min=%g p50=%g p95=%g p99=%g max=%g\n",
                     input.c_str(), lineno, id.c_str(), name.c_str(), d.min,
                     d.p50, d.p95, d.p99, d.max);
        ++failures;
      }
    }
    if (rec->metrics_enabled && rec->total_ms >= min_total_ms) {
      const double phase_ms = rec->metrics.TotalPhaseMs();
      const double gap = rec->total_ms > 0.0
                             ? std::abs(phase_ms - rec->total_ms) /
                                   rec->total_ms
                             : 0.0;
      if (gap > tol) {
        std::fprintf(stderr,
                     "%s:%d: %s phase sum %.3fms vs total %.3fms "
                     "(gap %.1f%% > %.1f%%)\n",
                     input.c_str(), lineno, id.c_str(), phase_ms,
                     rec->total_ms, gap * 100.0, tol * 100.0);
        ++failures;
      }
    }
  }
  if (records < flags.GetInt("min_records")) {
    std::fprintf(stderr, "%s: %d records, want >= %lld\n", input.c_str(),
                 records,
                 static_cast<long long>(flags.GetInt("min_records")));
    ++failures;
  }
  std::printf("%s: %d records, %d failures\n", input.c_str(), records,
              failures);
  if (!trace_json.empty()) failures += ValidateTraceJson(trace_json);
  return failures == 0 ? 0 : 1;
}
