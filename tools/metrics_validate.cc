// metrics_validate — sanity-checks a --metrics_json output file (JSON
// Lines of obs::RunRecord). Used by tools/bench_smoke.sh as a ctest entry.
//
// Checks, per record:
//   - the line parses as a RunRecord (schema fields present);
//   - records with metrics_enabled=true carry at least --min_counters
//     distinct counters;
//   - for runs slower than --min_total_ms, the root-level phase times sum
//     to within --phase_sum_tol of total_ms (faster runs are dominated by
//     scheduler noise and are exempt from the coverage check).
//
// Exits 0 when every record passes, 1 otherwise, 2 on usage errors.

#include <cmath>
#include <cstdio>
#include <fstream>
#include <optional>
#include <string>

#include "obs/export.h"
#include "util/flags.h"

using namespace adbscan;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("input", "", "metrics JSON-lines file (required)")
      .DefineInt("min_records", 1, "minimum number of records expected")
      .DefineInt("min_counters", 6,
                 "minimum distinct counters per enabled record")
      .DefineDouble("phase_sum_tol", 0.1,
                    "allowed |phase sum - total| / total")
      .DefineDouble("min_total_ms", 50.0,
                    "phase-coverage check only for runs at least this long");
  flags.Parse(argc, argv);

  const std::string input = flags.GetString("input");
  if (input.empty()) {
    std::fprintf(stderr, "--input is required\n");
    flags.PrintUsage(argv[0]);
    return 2;
  }
  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", input.c_str());
    return 1;
  }

  const size_t min_counters =
      static_cast<size_t>(flags.GetInt("min_counters"));
  const double tol = flags.GetDouble("phase_sum_tol");
  const double min_total_ms = flags.GetDouble("min_total_ms");

  int records = 0;
  int failures = 0;
  std::string line;
  for (int lineno = 1; std::getline(in, line); ++lineno) {
    if (line.empty()) continue;
    const std::optional<obs::RunRecord> rec = obs::RunRecordFromJson(line);
    if (!rec.has_value()) {
      std::fprintf(stderr, "%s:%d: not a valid RunRecord\n", input.c_str(),
                   lineno);
      ++failures;
      continue;
    }
    ++records;
    const std::string id =
        rec->run + "/" + rec->dataset + "/" + rec->algo;
    if (rec->metrics_enabled &&
        rec->metrics.counters.size() < min_counters) {
      std::fprintf(stderr, "%s:%d: %s has %zu counters, want >= %zu\n",
                   input.c_str(), lineno, id.c_str(),
                   rec->metrics.counters.size(), min_counters);
      ++failures;
    }
    if (rec->metrics_enabled && rec->total_ms >= min_total_ms) {
      const double phase_ms = rec->metrics.TotalPhaseMs();
      const double gap = rec->total_ms > 0.0
                             ? std::abs(phase_ms - rec->total_ms) /
                                   rec->total_ms
                             : 0.0;
      if (gap > tol) {
        std::fprintf(stderr,
                     "%s:%d: %s phase sum %.3fms vs total %.3fms "
                     "(gap %.1f%% > %.1f%%)\n",
                     input.c_str(), lineno, id.c_str(), phase_ms,
                     rec->total_ms, gap * 100.0, tol * 100.0);
        ++failures;
      }
    }
  }
  if (records < flags.GetInt("min_records")) {
    std::fprintf(stderr, "%s: %d records, want >= %lld\n", input.c_str(),
                 records,
                 static_cast<long long>(flags.GetInt("min_records")));
    ++failures;
  }
  std::printf("%s: %d records, %d failures\n", input.c_str(), records,
              failures);
  return failures == 0 ? 0 : 1;
}
