// adbscan_cli — command-line density-based clustering.
//
// Reads a dataset (CSV of coordinates or the library's binary format), runs
// the selected DBSCAN algorithm, prints cluster statistics, and optionally
// writes the labeled points and/or the raw clustering.
//
// Examples:
//   # cluster a CSV of 3D points with the paper's recommended algorithm
//   adbscan_cli --input points.csv --dim 3 --eps 5000 --min_pts 100
//
//   # exact clustering, labels to a new CSV
//   adbscan_cli --input points.csv --dim 3 --algo exact --eps 5000
//               --min_pts 100 --out labeled.csv
//
//   # pick eps automatically from the k-distance plot
//   adbscan_cli --input points.bin --eps 0
//
//   # replay an update log through the dynamic clusterer
//   adbscan_cli stream --input updates.log --dim 2 --eps 0.05 --min_pts 10
//
// Algorithms: approx (Theorem 4, default), exact (Theorem 2), kdd96,
// gridbscan (CIT'08), gunawan2d (2D inputs only).
//
// For massive n, --pipeline=sampled switches to the DBSCAN++ sampled-core
// tier (core points computed on a seeded subsample, everything else
// assigned to its nearest core within eps):
//   adbscan_cli --input points.bin --eps 5000 --min_pts 100
//               --pipeline=sampled --sample_rate 0.1
//               --sample_strategy uniform --seed 7
//
// The stream subcommand replays a textual update log ("a x1..xd" insert,
// "r id" remove, "f" batch boundary — see src/stream/update_log.h) through
// DynamicClusterer and reports the final clustering.

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/adbscan.h"
#include "eval/kdist.h"
#include "shard/sharded_dbscan.h"
#include "eval/stats.h"
#include "geom/kernels.h"
#include "io/dataset_io.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "sample/sample_flags.h"
#include "sample/sampled_dbscan.h"
#include "stream/dynamic_clusterer.h"
#include "stream/update_log.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/timer.h"

using namespace adbscan;

namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

// Strictly parsed, range-checked numeric flags shared by both modes. Any
// violation prints a message and fails the call — the caller exits 2 — so a
// malformed value can never half-parse into a plausible clustering run.
//
// When `require_positive_eps` is false, eps = 0 keeps its "suggest from the
// k-distance plot" meaning; the stream mode has no dataset to suggest from
// up front, so there it must be positive outright.
bool ValidateCommonFlags(const Flags& flags, bool require_positive_eps,
                         double* eps, int* min_pts, double* rho,
                         int* threads) {
  if (!flags.TryGetDouble("eps", eps) || *eps < 0.0 ||
      (require_positive_eps && *eps == 0.0)) {
    std::fprintf(stderr,
                 require_positive_eps
                     ? "--eps must be a positive number\n"
                     : "--eps must be a non-negative number (0 = suggest "
                       "from the k-distance plot)\n");
    return false;
  }
  int64_t min_pts64 = 0;
  if (!flags.TryGetInt("min_pts", &min_pts64) || min_pts64 < 1 ||
      min_pts64 > 0x7fffffff) {
    std::fprintf(stderr, "--min_pts must be a positive integer\n");
    return false;
  }
  *min_pts = static_cast<int>(min_pts64);
  if (!flags.TryGetDouble("rho", rho) || *rho <= 0.0 || *rho > 1.0) {
    std::fprintf(stderr, "--rho must be a number in (0, 1]\n");
    return false;
  }
  int64_t threads64 = 0;
  if (!flags.TryGetInt("threads", &threads64) || threads64 < 0 ||
      threads64 > 0x7fffffff) {
    std::fprintf(stderr, "--threads must be a non-negative integer\n");
    return false;
  }
  // Validate the merged view (flag + ADBSCAN_THREADS environment) once,
  // here, for every subcommand: ResolveNumThreads would silently fall back
  // to the hardware count when the environment variable is malformed.
  std::string threads_error;
  if (!TryResolveNumThreads(static_cast<int>(threads64), threads,
                            &threads_error)) {
    std::fprintf(stderr, "%s\n", threads_error.c_str());
    return false;
  }
  return true;
}

void EmitMetricsRecord(const std::string& path, const std::string& run,
                       const std::string& dataset, const std::string& algo,
                       std::vector<std::pair<std::string, std::string>> params,
                       double total_ms) {
  obs::RunRecord rec;
  rec.run = run;
  rec.dataset = dataset;
  rec.algo = algo;
  rec.params = std::move(params);
  rec.total_ms = total_ms;
  rec.metrics = obs::MetricsRegistry::Global().Snapshot();
  if (obs::AppendJsonLine(path, rec)) {
    std::printf("metrics record appended to %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "failed to write metrics to %s\n", path.c_str());
  }
}

int RunStream(int argc, char** argv) {
  Flags flags;
  flags.DefineString("input", "", "update log path (required)")
      .DefineInt("dim", 0, "dimensionality (required)")
      .DefineDouble("eps", 0.0, "radius (must be positive)")
      .DefineInt("min_pts", 100, "MinPts")
      .DefineDouble("rho", 0.001, "approximation ratio, in (0, 1]")
      .DefineInt("batch", 0,
                 "auto-flush after this many buffered ops (0 = only at 'f' "
                 "lines and end of log)")
      .DefineDouble("rebuild_threshold", 0.25,
                    "compact the overlay after updates exceed this fraction "
                    "of the surviving points")
      .DefineDouble("frontier_limit", 0.5,
                    "fall back to a full component rebuild past this "
                    "fraction of core cells")
      .DefineString("out", "", "write final labeled CSV here (optional)")
      .DefineInt("stats_rows", 20, "max clusters in the summary table")
      .DefineInt("threads", 0,
                 "worker threads (0 = auto: ADBSCAN_THREADS env, else "
                 "hardware count)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record for the replay "
                    "(empty: off)")
      .DefineString("trace_json", "",
                    "write a Chrome trace-event JSON timeline here "
                    "(Perfetto-loadable; empty = ADBSCAN_TRACE env, else "
                    "tracing off)");
  flags.Parse(argc, argv);

  const std::string input = flags.GetString("input");
  if (input.empty()) {
    std::fprintf(stderr, "--input is required\n");
    flags.PrintUsage(argv[0]);
    return 2;
  }
  const int dim = static_cast<int>(flags.GetInt("dim"));
  if (dim < 1 || dim > kMaxDim) {
    std::fprintf(stderr, "--dim must be in [1, %d]\n", kMaxDim);
    return 2;
  }
  DbscanParams params;
  double rho = 0.0;
  if (!ValidateCommonFlags(flags, /*require_positive_eps=*/true, &params.eps,
                           &params.min_pts, &rho, &params.num_threads)) {
    return 2;
  }
  DynamicClustererOptions opts;
  opts.rho = rho;
  int64_t batch_limit = 0;
  if (!flags.TryGetInt("batch", &batch_limit) || batch_limit < 0) {
    std::fprintf(stderr, "--batch must be a non-negative integer\n");
    return 2;
  }
  if (!flags.TryGetDouble("rebuild_threshold", &opts.rebuild_threshold) ||
      opts.rebuild_threshold <= 0.0) {
    std::fprintf(stderr, "--rebuild_threshold must be a positive number\n");
    return 2;
  }
  if (!flags.TryGetDouble("frontier_limit", &opts.recompute_frontier_limit) ||
      opts.recompute_frontier_limit < 0.0) {
    std::fprintf(stderr, "--frontier_limit must be a non-negative number\n");
    return 2;
  }

  std::string error;
  std::optional<UpdateLog> log = TryReadUpdateLog(input, dim, &error);
  if (!log.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 2;
  }
  std::printf("replaying %zu ops (%zu inserts, %zu removes) in %dD from %s\n",
              log->ops.size(), log->num_inserts, log->num_removes, dim,
              input.c_str());

  const std::string metrics_json = flags.GetString("metrics_json");
  if (!metrics_json.empty()) {
    obs::MetricsRegistry::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
  }
  const std::string trace_json =
      obs::ResolveTracePath(flags.GetString("trace_json"));
  if (!trace_json.empty()) obs::StartTracing();

  Timer replay_timer;
  DynamicClusterer dyn(dim, params, opts);
  // Ops apply in log order; contiguous runs of the same kind coalesce into
  // one batch, cut early at 'f' lines and at --batch buffered ops.
  Dataset pending_inserts(dim);
  std::vector<uint32_t> pending_removes;
  size_t batches = 0;
  auto flush = [&] {
    if (pending_inserts.size() > 0) {
      dyn.Insert(pending_inserts);
      pending_inserts = Dataset(dim);
      ++batches;
    }
    if (!pending_removes.empty()) {
      dyn.Remove(pending_removes);
      pending_removes.clear();
      ++batches;
    }
  };
  for (const UpdateOp& op : log->ops) {
    switch (op.kind) {
      case UpdateOp::Kind::kInsert:
        if (!pending_removes.empty()) flush();
        pending_inserts.Add(op.coords.data());
        break;
      case UpdateOp::Kind::kRemove:
        if (pending_inserts.size() > 0) flush();
        pending_removes.push_back(op.id);
        break;
      case UpdateOp::Kind::kFlush:
        flush();
        break;
    }
    if (batch_limit > 0 &&
        pending_inserts.size() + pending_removes.size() >=
            static_cast<size_t>(batch_limit)) {
      flush();
    }
  }
  flush();
  DynamicClusterer::SnapshotView snap = dyn.Snapshot();
  const double replay_sec = replay_timer.ElapsedSeconds();
  std::printf(
      "stream: eps=%.6g MinPts=%d rho=%.6g -> %d clusters over %zu "
      "surviving points, %zu batches in %.3fs\n\n",
      params.eps, params.min_pts, opts.rho, snap.clustering.num_clusters,
      snap.points.size(), batches, replay_sec);

  if (!metrics_json.empty()) {
    char num[32];
    std::vector<std::pair<std::string, std::string>> rec_params = {
        {"n", std::to_string(snap.points.size())},
        {"min_pts", std::to_string(params.min_pts)},
        {"batches", std::to_string(batches)}};
    std::snprintf(num, sizeof(num), "%.6g", params.eps);
    rec_params.emplace_back("eps", num);
    std::snprintf(num, sizeof(num), "%.6g", opts.rho);
    rec_params.emplace_back("rho", num);
    EmitMetricsRecord(metrics_json, "adbscan_stream", input, "stream",
                      std::move(rec_params), replay_sec * 1000.0);
  }
  if (!trace_json.empty()) obs::ExportTrace(trace_json);

  if (snap.points.size() > 0) {
    PrintStats(ComputeStats(snap.points, snap.clustering),
               static_cast<int>(flags.GetInt("stats_rows")));
  }
  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    WriteLabeledCsv(snap.points, snap.clustering, out);
    std::printf("\nlabeled CSV written to %s\n", out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "stream") {
    return RunStream(argc - 1, argv + 1);
  }
  Flags flags;
  flags.DefineString("input", "", "input path (.csv or .bin; required)")
      .DefineInt("dim", 0, "dimensionality (required for CSV input)")
      .DefineString("algo", "approx",
                    "approx | exact | kdd96 | gridbscan | gunawan2d")
      .DefineDouble("eps", 0.0, "radius; 0 = suggest from k-distance plot")
      .DefineInt("min_pts", 100, "MinPts")
      .DefineDouble("rho", 0.001, "approximation ratio (approx only)")
      .DefineString("out", "", "write labeled CSV here (optional)")
      .DefineString("save", "", "write binary clustering here (optional)")
      .DefineInt("stats_rows", 20, "max clusters in the summary table")
      .DefineInt("threads", 0,
                 "worker threads (0 = auto: ADBSCAN_THREADS env, else "
                 "hardware count)")
      .DefineString("kernel", "auto",
                    "distance kernel: scalar | avx2 | neon | auto (best "
                    "supported)")
      .DefineInt("shards", 1,
                 "cluster shard-at-a-time over this many Morton-range "
                 "shards (approx only; 1 = monolithic)")
      .DefineBool("mmap", false,
                  "map a .bin input read-only instead of loading it into "
                  "RAM (pairs with --shards for out-of-core runs)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record for the clustering run "
                    "(empty: off)")
      .DefineString("trace_json", "",
                    "write a Chrome trace-event JSON timeline here "
                    "(Perfetto-loadable; empty = ADBSCAN_TRACE env, else "
                    "tracing off)");
  DefineSampleFlags(&flags);
  flags.Parse(argc, argv);

  const std::string input = flags.GetString("input");
  if (input.empty()) {
    std::fprintf(stderr, "--input is required\n");
    flags.PrintUsage(argv[0]);
    return 2;
  }
  DbscanParams params;
  double rho = 0.0;
  if (!ValidateCommonFlags(flags, /*require_positive_eps=*/false, &params.eps,
                           &params.min_pts, &rho, &params.num_threads)) {
    return 2;
  }

  {
    const std::string kernel = flags.GetString("kernel");
    simd::KernelKind kind;
    if (!simd::ParseKernelKind(kernel, &kind)) {
      std::fprintf(stderr,
                   "unknown --kernel '%s' (want scalar|avx2|neon|auto)\n",
                   kernel.c_str());
      return 2;
    }
    if (!simd::SetKernel(kind)) {
      std::fprintf(stderr, "--kernel=%s is not supported on this CPU\n",
                   kernel.c_str());
      return 2;
    }
  }

  int64_t shards64 = 0;
  if (!flags.TryGetInt("shards", &shards64) || shards64 < 1 ||
      shards64 > 0xffff) {
    std::fprintf(stderr, "--shards must be an integer in [1, 65535]\n");
    return 2;
  }
  const int num_shards = static_cast<int>(shards64);
  const std::string algo = flags.GetString("algo");
  if (num_shards > 1 && algo != "approx") {
    std::fprintf(stderr, "--shards requires --algo=approx\n");
    return 2;
  }
  SampleFlagSettings sample_settings;
  {
    std::string sample_error;
    if (!ValidateSampleFlags(flags, num_shards, algo, &sample_settings,
                             &sample_error)) {
      std::fprintf(stderr, "%s\n", sample_error.c_str());
      return 2;
    }
  }
  const bool use_mmap = flags.GetBool("mmap");
  if (use_mmap && !EndsWith(input, ".bin")) {
    std::fprintf(stderr, "--mmap requires a .bin input\n");
    return 2;
  }

  Timer load_timer;
  std::string load_error;
  std::optional<Dataset> loaded = [&] {
    if (use_mmap) return TryMapBinary(input, &load_error);
    if (EndsWith(input, ".bin")) return TryReadBinary(input, &load_error);
    const int dim = static_cast<int>(flags.GetInt("dim"));
    if (dim < 1) {
      load_error = "--dim is required for CSV input";
      return std::optional<Dataset>();
    }
    return TryReadCsv(input, dim, &load_error);
  }();
  if (!loaded.has_value()) {
    std::fprintf(stderr, "%s\n", load_error.c_str());
    return 2;
  }
  Dataset data = std::move(*loaded);
  std::printf("%s %zu points in %dD from %s (%.3fs)\n",
              use_mmap ? "mapped" : "loaded", data.size(), data.dim(),
              input.c_str(), load_timer.ElapsedSeconds());
  if (data.empty()) {
    std::fprintf(stderr, "empty dataset\n");
    return 1;
  }

  if (params.eps == 0.0) {
    Timer kdist_timer;
    params.eps = SuggestEps(data, params.min_pts);
    std::printf("eps suggested from the %d-distance plot: %.6g (%.3fs)\n",
                params.min_pts, params.eps, kdist_timer.ElapsedSeconds());
  }

  const std::string metrics_json = flags.GetString("metrics_json");
  if (!metrics_json.empty()) {
    obs::MetricsRegistry::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
  }
  const std::string trace_json =
      obs::ResolveTracePath(flags.GetString("trace_json"));
  if (!trace_json.empty()) obs::StartTracing();
  Timer cluster_timer;
  SampledRunStats sample_stats;
  Clustering result = [&] {
    if (sample_settings.sampled) {
      Clustering sampled =
          SampledDbscan(data, params, sample_settings.options, &sample_stats);
      std::printf(
          "sampled: m=%zu (%s, rate=%.4g, seed=%llu) -> %zu cores, %zu "
          "assigned, %zu noise\n",
          sample_stats.sample_size,
          SampleStrategyName(sample_settings.options.strategy),
          sample_settings.options.sample_rate,
          static_cast<unsigned long long>(sample_settings.options.seed),
          sample_stats.num_core, sample_stats.num_assigned,
          sample_stats.num_noise);
      return sampled;
    }
    if (algo == "approx") {
      if (num_shards > 1) {
        ShardedRunStats shard_stats;
        Clustering sharded = ShardedApproxDbscan(data, params, rho,
                                                 num_shards, {}, &shard_stats);
        std::printf(
            "sharded: %d shards, %zu cells, halo %zu cells / %zu points, "
            "%zu cross edges from %zu candidates, peak resident %zu points\n",
            shard_stats.num_shards, shard_stats.num_cells,
            shard_stats.halo_cells, shard_stats.halo_points,
            shard_stats.cross_edges, shard_stats.cross_candidates,
            shard_stats.max_resident_points);
        return sharded;
      }
      return ApproxDbscan(data, params, rho);
    }
    if (algo == "exact") return ExactGridDbscan(data, params);
    if (algo == "kdd96") return Kdd96Dbscan(data, params);
    if (algo == "gridbscan") return GridbscanDbscan(data, params);
    if (algo == "gunawan2d") return Gunawan2dDbscan(data, params);
    std::fprintf(stderr, "unknown --algo '%s'\n", algo.c_str());
    std::exit(2);
  }();
  const double cluster_sec = cluster_timer.ElapsedSeconds();
  const std::string algo_label = sample_settings.sampled ? "sampled" : algo;
  std::printf("%s: eps=%.6g MinPts=%d -> %d clusters in %.3fs\n\n",
              algo_label.c_str(), params.eps, params.min_pts,
              result.num_clusters, cluster_sec);
  if (!metrics_json.empty()) {
    char num[32];
    std::vector<std::pair<std::string, std::string>> rec_params = {
        {"n", std::to_string(data.size())},
        {"min_pts", std::to_string(params.min_pts)}};
    std::snprintf(num, sizeof(num), "%.6g", params.eps);
    rec_params.emplace_back("eps", num);
    if (sample_settings.sampled) {
      std::snprintf(num, sizeof(num), "%.6g",
                    sample_settings.options.sample_rate);
      rec_params.emplace_back("sample_rate", num);
      rec_params.emplace_back(
          "sample_strategy",
          SampleStrategyName(sample_settings.options.strategy));
      rec_params.emplace_back(
          "seed", std::to_string(sample_settings.options.seed));
      rec_params.emplace_back("m", std::to_string(sample_stats.sample_size));
    } else if (algo == "approx") {
      std::snprintf(num, sizeof(num), "%.6g", rho);
      rec_params.emplace_back("rho", num);
      if (num_shards > 1) {
        rec_params.emplace_back("shards", std::to_string(num_shards));
      }
    }
    EmitMetricsRecord(metrics_json, "adbscan_cli", input, algo_label,
                      std::move(rec_params), cluster_sec * 1000.0);
  }
  if (!trace_json.empty()) obs::ExportTrace(trace_json);

  PrintStats(ComputeStats(data, result),
             static_cast<int>(flags.GetInt("stats_rows")));

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    WriteLabeledCsv(data, result, out);
    std::printf("\nlabeled CSV written to %s\n", out.c_str());
  }
  const std::string save = flags.GetString("save");
  if (!save.empty()) {
    WriteClustering(result, save);
    std::printf("clustering saved to %s\n", save.c_str());
  }
  return 0;
}
