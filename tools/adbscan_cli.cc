// adbscan_cli — command-line density-based clustering.
//
// Reads a dataset (CSV of coordinates or the library's binary format), runs
// the selected DBSCAN algorithm, prints cluster statistics, and optionally
// writes the labeled points and/or the raw clustering.
//
// Examples:
//   # cluster a CSV of 3D points with the paper's recommended algorithm
//   adbscan_cli --input points.csv --dim 3 --eps 5000 --min_pts 100
//
//   # exact clustering, labels to a new CSV
//   adbscan_cli --input points.csv --dim 3 --algo exact --eps 5000 \
//               --min_pts 100 --out labeled.csv
//
//   # pick eps automatically from the k-distance plot
//   adbscan_cli --input points.bin --eps 0
//
// Algorithms: approx (Theorem 4, default), exact (Theorem 2), kdd96,
// gridbscan (CIT'08), gunawan2d (2D inputs only).

#include <cstdio>
#include <optional>
#include <string>
#include <utility>

#include "core/adbscan.h"
#include "eval/kdist.h"
#include "eval/stats.h"
#include "geom/kernels.h"
#include "io/dataset_io.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/timer.h"

using namespace adbscan;

namespace {

bool EndsWith(const std::string& text, const std::string& suffix) {
  return text.size() >= suffix.size() &&
         text.compare(text.size() - suffix.size(), suffix.size(), suffix) ==
             0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("input", "", "input path (.csv or .bin; required)")
      .DefineInt("dim", 0, "dimensionality (required for CSV input)")
      .DefineString("algo", "approx",
                    "approx | exact | kdd96 | gridbscan | gunawan2d")
      .DefineDouble("eps", 0.0, "radius; 0 = suggest from k-distance plot")
      .DefineInt("min_pts", 100, "MinPts")
      .DefineDouble("rho", 0.001, "approximation ratio (approx only)")
      .DefineString("out", "", "write labeled CSV here (optional)")
      .DefineString("save", "", "write binary clustering here (optional)")
      .DefineInt("stats_rows", 20, "max clusters in the summary table")
      .DefineInt("threads", 0,
                 "worker threads (0 = auto: ADBSCAN_THREADS env, else "
                 "hardware count)")
      .DefineString("kernel", "auto",
                    "distance kernel: scalar | avx2 | neon | auto (best "
                    "supported)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record for the clustering run "
                    "(empty: off)");
  flags.Parse(argc, argv);

  const std::string input = flags.GetString("input");
  if (input.empty()) {
    std::fprintf(stderr, "--input is required\n");
    flags.PrintUsage(argv[0]);
    return 2;
  }

  {
    const std::string kernel = flags.GetString("kernel");
    simd::KernelKind kind;
    if (!simd::ParseKernelKind(kernel, &kind)) {
      std::fprintf(stderr,
                   "unknown --kernel '%s' (want scalar|avx2|neon|auto)\n",
                   kernel.c_str());
      return 2;
    }
    if (!simd::SetKernel(kind)) {
      std::fprintf(stderr, "--kernel=%s is not supported on this CPU\n",
                   kernel.c_str());
      return 2;
    }
  }

  Timer load_timer;
  std::string load_error;
  std::optional<Dataset> loaded = [&] {
    if (EndsWith(input, ".bin")) return TryReadBinary(input, &load_error);
    const int dim = static_cast<int>(flags.GetInt("dim"));
    if (dim < 1) {
      load_error = "--dim is required for CSV input";
      return std::optional<Dataset>();
    }
    return TryReadCsv(input, dim, &load_error);
  }();
  if (!loaded.has_value()) {
    std::fprintf(stderr, "%s\n", load_error.c_str());
    return 2;
  }
  Dataset data = std::move(*loaded);
  std::printf("loaded %zu points in %dD from %s (%.3fs)\n", data.size(),
              data.dim(), input.c_str(), load_timer.ElapsedSeconds());
  if (data.empty()) {
    std::fprintf(stderr, "empty dataset\n");
    return 1;
  }

  DbscanParams params{
      flags.GetDouble("eps"), static_cast<int>(flags.GetInt("min_pts")),
      ResolveNumThreads(static_cast<int>(flags.GetInt("threads")))};
  if (params.eps <= 0.0) {
    Timer kdist_timer;
    params.eps = SuggestEps(data, params.min_pts);
    std::printf("eps suggested from the %d-distance plot: %.6g (%.3fs)\n",
                params.min_pts, params.eps, kdist_timer.ElapsedSeconds());
  }

  const std::string algo = flags.GetString("algo");
  const std::string metrics_json = flags.GetString("metrics_json");
  if (!metrics_json.empty()) {
    obs::MetricsRegistry::SetEnabled(true);
    obs::MetricsRegistry::Global().Reset();
  }
  Timer cluster_timer;
  Clustering result = [&] {
    if (algo == "approx") {
      return ApproxDbscan(data, params, flags.GetDouble("rho"));
    }
    if (algo == "exact") return ExactGridDbscan(data, params);
    if (algo == "kdd96") return Kdd96Dbscan(data, params);
    if (algo == "gridbscan") return GridbscanDbscan(data, params);
    if (algo == "gunawan2d") return Gunawan2dDbscan(data, params);
    std::fprintf(stderr, "unknown --algo '%s'\n", algo.c_str());
    std::exit(2);
  }();
  const double cluster_sec = cluster_timer.ElapsedSeconds();
  std::printf("%s: eps=%.6g MinPts=%d -> %d clusters in %.3fs\n\n",
              algo.c_str(), params.eps, params.min_pts, result.num_clusters,
              cluster_sec);
  if (!metrics_json.empty()) {
    obs::RunRecord rec;
    rec.run = "adbscan_cli";
    rec.dataset = input;
    rec.algo = algo;
    char num[32];
    std::snprintf(num, sizeof(num), "%.6g", params.eps);
    rec.params = {{"n", std::to_string(data.size())},
                  {"eps", num},
                  {"min_pts", std::to_string(params.min_pts)}};
    if (algo == "approx") {
      std::snprintf(num, sizeof(num), "%.6g", flags.GetDouble("rho"));
      rec.params.emplace_back("rho", num);
    }
    rec.total_ms = cluster_sec * 1000.0;
    rec.metrics = obs::MetricsRegistry::Global().Snapshot();
    if (obs::AppendJsonLine(metrics_json, rec)) {
      std::printf("metrics record appended to %s\n", metrics_json.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_json.c_str());
    }
  }

  PrintStats(ComputeStats(data, result),
             static_cast<int>(flags.GetInt("stats_rows")));

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    WriteLabeledCsv(data, result, out);
    std::printf("\nlabeled CSV written to %s\n", out.c_str());
  }
  const std::string save = flags.GetString("save");
  if (!save.empty()) {
    WriteClustering(result, save);
    std::printf("clustering saved to %s\n", save.c_str());
  }
  return 0;
}
