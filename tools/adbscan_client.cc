// Command-line client of adbscan_server. Two modes:
//
//   --mode=smoke (default): full-protocol end-to-end check. Generates a
//     deterministic point stream, drives create -> ingest (with removes) ->
//     flush -> query -> snapshot -> drop against the server, and verifies
//     the returned labels BIT-IDENTICAL to a local DynamicClusterer fed the
//     same batches (the serving layer must add zero approximation on top of
//     the Theorem 4 pipeline). Exit 0 on match, 1 on any mismatch or RPC
//     failure — CI runs this against a freshly booted server.
//
//   --mode=ping: create + drop one session; checks the server is alive.
//
// The port comes from --port or --port_file (the file adbscan_server
// --port_file writes; retried briefly so client and server can start
// concurrently).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "serve/client.h"
#include "stream/dynamic_clusterer.h"
#include "util/flags.h"
#include "util/rng.h"

namespace {

using namespace adbscan;

int ReadPortFile(const std::string& path) {
  // The server writes the file only after the listener is live, but give
  // it a moment to appear when the two processes race at startup.
  for (int attempt = 0; attempt < 100; ++attempt) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (f != nullptr) {
      int port = 0;
      const int got = std::fscanf(f, "%d", &port);
      std::fclose(f);
      if (got == 1 && port > 0 && port <= 65535) return port;
    }
    struct timespec ts{};
    ts.tv_sec = 0;
    ts.tv_nsec = 100 * 1000 * 1000;
    nanosleep(&ts, nullptr);
  }
  return 0;
}

bool Fail(const std::string& what, const std::string& error) {
  std::fprintf(stderr, "adbscan_client: %s: %s\n", what.c_str(),
               error.c_str());
  return false;
}

// Drives one session through the server and mirrors every batch into a
// local clusterer; returns false on the first divergence.
bool RunSmoke(serve::WireClient& client, int dim, double eps, int min_pts,
              double rho, size_t n, size_t batch_size, uint64_t seed) {
  std::string error;
  serve::ErrorCode code;

  serve::CreateReq create;
  create.dim = static_cast<uint32_t>(dim);
  create.eps = eps;
  create.min_pts = static_cast<uint32_t>(min_pts);
  create.rho = rho;
  uint64_t session = 0;
  if (!client.Create(create, &session, &code, &error)) {
    return Fail("create", error);
  }

  DbscanParams params;
  params.eps = eps;
  params.min_pts = min_pts;
  DynamicClustererOptions dyn;
  dyn.rho = rho;
  DynamicClusterer local(dim, params, dyn);

  // Clustered stream: points land near a handful of centers so the run
  // exercises real cluster structure, with a removal wave every batch.
  Rng rng(seed);
  std::vector<double> centers;
  const int kCenters = 6;
  for (int c = 0; c < kCenters * dim; ++c) {
    centers.push_back(rng.NextDouble(0.0, 1000.0));
  }
  uint32_t next_id = 0;
  std::vector<uint32_t> alive_ids;
  size_t produced = 0;
  while (produced < n) {
    const size_t take = std::min(batch_size, n - produced);
    std::vector<double> coords;
    coords.reserve(take * dim);
    for (size_t i = 0; i < take; ++i) {
      const int c = static_cast<int>(rng.NextBounded(kCenters));
      for (int d = 0; d < dim; ++d) {
        coords.push_back(centers[c * dim + d] +
                         rng.NextGaussian() * 2.0 * eps);
      }
    }
    std::vector<uint32_t> removes;
    const size_t n_remove = alive_ids.empty() ? 0 : take / 4;
    for (size_t i = 0; i < n_remove; ++i) {
      const size_t pick = rng.NextBounded(alive_ids.size());
      removes.push_back(alive_ids[pick]);
      alive_ids[pick] = alive_ids.back();
      alive_ids.pop_back();
    }

    serve::IngestReq ingest;
    ingest.session = session;
    ingest.dim = static_cast<uint32_t>(dim);
    ingest.coords = coords;
    ingest.removes = removes;
    serve::IngestResp ack;
    if (!client.Ingest(ingest, &ack, &code, &error)) {
      return Fail("ingest", error);
    }
    if (ack.first_id != next_id) {
      std::fprintf(stderr,
                   "adbscan_client: predicted first_id mismatch: server "
                   "says %u, expected %u\n",
                   ack.first_id, next_id);
      return false;
    }
    // Mirror locally, same batch boundaries and order.
    local.Insert(Dataset(dim, coords));
    if (!removes.empty()) local.Remove(removes);
    for (size_t i = 0; i < take; ++i) {
      alive_ids.push_back(next_id + static_cast<uint32_t>(i));
    }
    next_id += static_cast<uint32_t>(take);
    produced += take;
  }

  serve::FlushResp flush;
  if (!client.Flush(session, &flush, &code, &error)) {
    return Fail("flush", error);
  }
  const Clustering& want = local.Labels();

  // Point queries over the full id space.
  std::vector<uint32_t> all_ids(next_id);
  for (uint32_t i = 0; i < next_id; ++i) all_ids[i] = i;
  serve::QueryResp query;
  if (!client.Query(session, all_ids, &query, &code, &error)) {
    return Fail("query", error);
  }
  if (query.num_points != local.num_points() ||
      query.num_alive != local.num_alive() ||
      query.num_clusters != static_cast<uint32_t>(want.num_clusters)) {
    std::fprintf(stderr,
                 "adbscan_client: stats mismatch: server %llu/%llu/%u vs "
                 "local %zu/%zu/%d\n",
                 static_cast<unsigned long long>(query.num_points),
                 static_cast<unsigned long long>(query.num_alive),
                 query.num_clusters, local.num_points(), local.num_alive(),
                 want.num_clusters);
    return false;
  }
  for (uint32_t i = 0; i < next_id; ++i) {
    if (query.labels[i] != want.label[i] ||
        (query.is_core[i] != 0) != (want.is_core[i] != 0)) {
      std::fprintf(stderr,
                   "adbscan_client: label mismatch at id %u: server "
                   "(%d, core=%d) vs local (%d, core=%d)\n",
                   i, query.labels[i], static_cast<int>(query.is_core[i]),
                   want.label[i], static_cast<int>(want.is_core[i]));
      return false;
    }
  }

  // Full snapshot dump: must list exactly the alive ids, same labels.
  serve::SnapshotResp snap;
  if (!client.Snapshot(session, &snap, &code, &error)) {
    return Fail("snapshot", error);
  }
  size_t alive_seen = 0;
  for (uint32_t id = 0; id < next_id; ++id) {
    if (!local.alive(id)) continue;
    if (alive_seen >= snap.ids.size() || snap.ids[alive_seen] != id ||
        snap.labels[alive_seen] != want.label[id] ||
        (snap.is_core[alive_seen] != 0) != (want.is_core[id] != 0)) {
      std::fprintf(stderr, "adbscan_client: snapshot mismatch at id %u\n",
                   id);
      return false;
    }
    ++alive_seen;
  }
  if (alive_seen != snap.ids.size()) {
    std::fprintf(stderr,
                 "adbscan_client: snapshot has %zu rows, expected %zu\n",
                 snap.ids.size(), alive_seen);
    return false;
  }

  if (!client.Drop(session, &code, &error)) return Fail("drop", error);
  std::printf(
      "adbscan_client: smoke OK: %u points ingested, %llu alive, %d "
      "clusters, epoch %llu — server matches local replay bit-for-bit\n",
      next_id, static_cast<unsigned long long>(query.num_alive),
      want.num_clusters, static_cast<unsigned long long>(query.epoch));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("mode", "smoke", "smoke | ping")
      .DefineInt("port", 0, "server port on 127.0.0.1")
      .DefineString("port_file", "",
                    "read the port from this file (written by "
                    "adbscan_server --port_file)")
      .DefineInt("dim", 2, "smoke: dimensionality")
      .DefineDouble("eps", 40.0, "smoke: DBSCAN epsilon")
      .DefineInt("min_pts", 4, "smoke: DBSCAN MinPts")
      .DefineDouble("rho", 0.001, "smoke: approximation parameter")
      .DefineInt("n", 2000, "smoke: points to ingest")
      .DefineInt("batch", 256, "smoke: ingest batch size")
      .DefineInt("seed", 42, "smoke: stream seed");
  flags.Parse(argc, argv);

  int port = static_cast<int>(flags.GetInt("port"));
  const std::string port_file = flags.GetString("port_file");
  if (port == 0 && !port_file.empty()) port = ReadPortFile(port_file);
  if (port <= 0 || port > 65535) {
    std::fprintf(stderr,
                 "adbscan_client: need --port or a readable --port_file\n");
    return 2;
  }

  serve::WireClient client;
  std::string error;
  if (!client.Connect(port, &error)) {
    std::fprintf(stderr, "adbscan_client: %s\n", error.c_str());
    return 1;
  }

  const std::string mode = flags.GetString("mode");
  if (mode == "ping") {
    serve::CreateReq create;
    create.dim = 2;
    create.eps = 1.0;
    create.min_pts = 1;
    create.rho = 0.001;
    uint64_t session = 0;
    serve::ErrorCode code;
    if (!client.Create(create, &session, &code, &error) ||
        !client.Drop(session, &code, &error)) {
      std::fprintf(stderr, "adbscan_client: ping failed: %s\n",
                   error.c_str());
      return 1;
    }
    std::printf("adbscan_client: ping OK (port %d)\n", port);
    return 0;
  }
  if (mode != "smoke") {
    std::fprintf(stderr, "adbscan_client: unknown --mode '%s'\n",
                 mode.c_str());
    return 2;
  }
  const bool ok = RunSmoke(
      client, static_cast<int>(flags.GetInt("dim")), flags.GetDouble("eps"),
      static_cast<int>(flags.GetInt("min_pts")), flags.GetDouble("rho"),
      static_cast<size_t>(flags.GetInt("n")),
      static_cast<size_t>(flags.GetInt("batch")),
      static_cast<uint64_t>(flags.GetInt("seed")));
  return ok ? 0 : 1;
}
