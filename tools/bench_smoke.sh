#!/usr/bin/env bash
# Smoke-runs one tiny configuration of every figure/table harness with
# --metrics_json, then validates the emitted records with metrics_validate.
#
# Environment:
#   BENCH_DIR    — directory containing the fig*/table1 binaries
#                  (default: ./bench relative to the working directory)
#   VALIDATOR    — path to metrics_validate
#                  (default: ./tools/metrics_validate)
#   COMPARE      — path to bench_compare (default: ./tools/bench_compare)
#   BASELINE_DIR — committed bench baselines (default: unset; the
#                  micro_stream regression gate is skipped when the smoke
#                  baseline file is absent)
#
# Runs are deliberately small (hundreds to a few thousand points) so the
# whole sweep finishes in seconds; the phase-coverage tolerance is loose
# because sub-millisecond runs are scheduler noise.

set -u

BENCH_DIR="${BENCH_DIR:-./bench}"
VALIDATOR="${VALIDATOR:-./tools/metrics_validate}"
COMPARE="${COMPARE:-./tools/bench_compare}"
BASELINE_DIR="${BASELINE_DIR:-}"
WORKDIR="$(mktemp -d "${TMPDIR:-/tmp}/bench_smoke.XXXXXX")"
trap 'rm -rf "$WORKDIR"' EXIT

# Fail fast on a broken invocation: a missing validator or comparator would
# otherwise surface as one cryptic "command not found" per harness.
for tool in "$VALIDATOR" "$COMPARE"; do
  if [ ! -x "$tool" ]; then
    echo "bench_smoke: required tool '$tool' is missing or not executable" \
         "(build the 'metrics_validate' and 'bench_compare' targets, or" \
         "set VALIDATOR/COMPARE)" >&2
    exit 1
  fi
done

failures=0

run_one() {
  local name="$1"
  local min_records="$2"
  shift 2
  local json="$WORKDIR/$name.json"
  echo "=== $name ==="
  if [ ! -x "$BENCH_DIR/$name" ]; then
    echo "FAIL: harness binary '$BENCH_DIR/$name' is missing or not" \
         "executable (build the '$name' target, or set BENCH_DIR)"
    failures=$((failures + 1))
    return
  fi
  if ! "$BENCH_DIR/$name" "$@" --metrics_json="$json" \
      > "$WORKDIR/$name.out" 2>&1; then
    echo "FAIL: $name exited non-zero; last output lines:"
    tail -5 "$WORKDIR/$name.out"
    failures=$((failures + 1))
    return
  fi
  if ! "$VALIDATOR" --input="$json" --min_records="$min_records" \
      --min_counters=6 --phase_sum_tol=0.5 --min_total_ms=50; then
    echo "FAIL: $name metrics validation"
    failures=$((failures + 1))
  fi
}

# One tiny config per harness. min_records = number of measured runs the
# config is guaranteed to log.
run_one fig08_seed_spreader 1 --n=500 --out=
run_one fig09_visualization 4 --n=500
run_one fig10_max_legal_rho 2 --n=1500 --steps=2 --datasets=ss3d
run_one fig11_scale_n 8 --sizes=2000,4000 --datasets=ss3d --min_pts=10 \
    --trace_json="$WORKDIR/fig11_trace.json"
run_one fig12_vary_eps 8 --n=2000 --steps=2 --datasets=ss3d
run_one fig13_vary_rho 2 --n=2000 --rhos=0.01,0.1 --datasets=ss3d
run_one table1_parameters 6 --n=1500
run_one micro_stream 4 --n=6000 --rounds=3 --out="$WORKDIR/BENCH_stream.json"
run_one micro_serve 2 --sessions=8 --n=2000 --batch=256 \
    --out="$WORKDIR/BENCH_serve.json"
run_one micro_shard 3 --datasets=ss3d --n=8000 --shard_counts=2,3 \
    --out="$WORKDIR/BENCH_shard.json"
run_one fig_sampling 5 --n=4000 --min_pts=10 --rates=0.1,1.0 \
    --out="$WORKDIR/BENCH_sampling.json"

# The fig11 run above doubled as a tracing smoke: the trace must be
# well-formed Chrome trace-event JSON (monotone per-tid timestamps etc.).
echo "=== fig11 trace validation ==="
if ! "$VALIDATOR" --trace_json="$WORKDIR/fig11_trace.json"; then
  echo "FAIL: fig11 trace validation"
  failures=$((failures + 1))
fi

# Regression gate: compare the micro_stream smoke run against the
# committed baseline on the machine-independent speedup column. The
# tolerance is deliberately generous — at smoke sizes the incremental/
# scratch ratio is noisy — so only structural regressions (e.g. the
# incremental path silently degrading to scratch) trip it.
if [ -n "$BASELINE_DIR" ] && [ -f "$BASELINE_DIR/smoke/BENCH_stream.json" ]; then
  echo "=== micro_stream regression gate ==="
  if ! "$COMPARE" --current="$WORKDIR/BENCH_stream.json" \
      --baseline="$BASELINE_DIR/smoke/BENCH_stream.json" \
      --metrics=speedup --filter=round=-1 --max_regression=0.75; then
    echo "FAIL: micro_stream regressed vs $BASELINE_DIR/smoke/BENCH_stream.json"
    failures=$((failures + 1))
  fi
else
  echo "=== micro_stream regression gate skipped (no baseline) ==="
fi

# Serve gate: the serving layer's efficiency (solo-replay wall / serve
# wall, higher is better) against the committed smoke baseline. The default
# row key lacks the `sessions` column, so it is passed explicitly. 0.6 is
# generous — at smoke sizes the fixed serving overhead (queues, snapshot
# copies) is a visible fraction of the tiny clustering cost — and still
# catches structural regressions like drains serializing behind reads.
if [ -n "$BASELINE_DIR" ] && [ -f "$BASELINE_DIR/smoke/BENCH_serve.json" ]; then
  echo "=== micro_serve regression gate ==="
  if ! "$COMPARE" --current="$WORKDIR/BENCH_serve.json" \
      --baseline="$BASELINE_DIR/smoke/BENCH_serve.json" \
      --metrics=efficiency --key=dataset,dim,n,sessions \
      --max_regression=0.6; then
    echo "FAIL: micro_serve regressed vs $BASELINE_DIR/smoke/BENCH_serve.json"
    failures=$((failures + 1))
  fi
else
  echo "=== micro_serve regression gate skipped (no baseline) ==="
fi

# Shard gate: sharded-vs-monolithic wall ratio (higher is better; every
# row is emitted only after the sharded clustering was verified
# bit-identical to the monolithic one, so this only measures overhead).
# Rows differ by the `shards` column, which the default key lacks. 0.5 is
# generous — at smoke sizes the per-shard fixed costs (planning, halo
# re-gather, second border pass) dominate the tiny clustering work — and
# still catches structural regressions like the halo ballooning to the
# whole dataset.
if [ -n "$BASELINE_DIR" ] && [ -f "$BASELINE_DIR/smoke/BENCH_shard.json" ]; then
  echo "=== micro_shard regression gate ==="
  if ! "$COMPARE" --current="$WORKDIR/BENCH_shard.json" \
      --baseline="$BASELINE_DIR/smoke/BENCH_shard.json" \
      --metrics=speedup_vs_mono --key=op,dataset,dim,n,shards \
      --max_regression=0.5; then
    echo "FAIL: micro_shard regressed vs $BASELINE_DIR/smoke/BENCH_shard.json"
    failures=$((failures + 1))
  fi
else
  echo "=== micro_shard regression gate skipped (no baseline) ==="
fi

# Sampling gate: the sampled tier's clustering quality (ARI of the primary
# labeling vs the exact reference) floored at 0.9 on every row of the smoke
# sweep. The draw is seeded and the pipelines deterministic, so ARI is
# machine-independent — unlike the smoke-size wall-time ratios, which are
# sub-millisecond noise and gated at full size in CI's bench-gate job
# instead.
if [ -n "$BASELINE_DIR" ] && [ -f "$BASELINE_DIR/smoke/BENCH_sampling.json" ]; then
  echo "=== fig_sampling quality gate ==="
  if ! "$COMPARE" --current="$WORKDIR/BENCH_sampling.json" \
      --baseline="$BASELINE_DIR/smoke/BENCH_sampling.json" \
      --metrics= --key=dataset,dim,n,pipeline,strategy,rate \
      --min_value=ari_vs_exact:0.9; then
    echo "FAIL: fig_sampling quality vs $BASELINE_DIR/smoke/BENCH_sampling.json"
    failures=$((failures + 1))
  fi
else
  echo "=== fig_sampling quality gate skipped (no baseline) ==="
fi

if [ "$failures" -ne 0 ]; then
  echo "bench_smoke: $failures harness(es) failed"
  exit 1
fi
echo "bench_smoke: all harnesses passed"
