#!/usr/bin/env bash
# Smoke-runs one tiny configuration of every figure/table harness with
# --metrics_json, then validates the emitted records with metrics_validate.
#
# Environment:
#   BENCH_DIR  — directory containing the fig*/table1 binaries
#                (default: ./bench relative to the working directory)
#   VALIDATOR  — path to metrics_validate
#                (default: ./tools/metrics_validate)
#
# Runs are deliberately small (hundreds to a few thousand points) so the
# whole sweep finishes in seconds; the phase-coverage tolerance is loose
# because sub-millisecond runs are scheduler noise.

set -u

BENCH_DIR="${BENCH_DIR:-./bench}"
VALIDATOR="${VALIDATOR:-./tools/metrics_validate}"
WORKDIR="$(mktemp -d "${TMPDIR:-/tmp}/bench_smoke.XXXXXX")"
trap 'rm -rf "$WORKDIR"' EXIT

failures=0

run_one() {
  local name="$1"
  local min_records="$2"
  shift 2
  local json="$WORKDIR/$name.json"
  echo "=== $name ==="
  if ! "$BENCH_DIR/$name" "$@" --metrics_json="$json" \
      > "$WORKDIR/$name.out" 2>&1; then
    echo "FAIL: $name exited non-zero; last output lines:"
    tail -5 "$WORKDIR/$name.out"
    failures=$((failures + 1))
    return
  fi
  if ! "$VALIDATOR" --input="$json" --min_records="$min_records" \
      --min_counters=6 --phase_sum_tol=0.5 --min_total_ms=50; then
    echo "FAIL: $name metrics validation"
    failures=$((failures + 1))
  fi
}

# One tiny config per harness. min_records = number of measured runs the
# config is guaranteed to log.
run_one fig08_seed_spreader 1 --n=500 --out=
run_one fig09_visualization 4 --n=500
run_one fig10_max_legal_rho 2 --n=1500 --steps=2 --datasets=ss3d
run_one fig11_scale_n 8 --sizes=2000,4000 --datasets=ss3d --min_pts=10
run_one fig12_vary_eps 8 --n=2000 --steps=2 --datasets=ss3d
run_one fig13_vary_rho 2 --n=2000 --rhos=0.01,0.1 --datasets=ss3d
run_one table1_parameters 6 --n=1500
run_one micro_stream 4 --n=6000 --rounds=3 --out="$WORKDIR/BENCH_stream.json"

if [ "$failures" -ne 0 ]; then
  echo "bench_smoke: $failures harness(es) failed"
  exit 1
fi
echo "bench_smoke: all harnesses passed"
