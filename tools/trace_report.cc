// trace_report — summarizes a Chrome trace-event JSON file (written by
// --trace_json / ADBSCAN_TRACE, see obs/trace_export.h) in the terminal:
//
//   - per-span-name totals: count, cpu time (sum of durations across all
//     threads), wall time (union of the spans' intervals, so nested or
//     concurrent spans are not double-counted), and cpu/wall parallelism;
//   - per-thread utilization: fraction of the trace's wall clock the
//     thread spent inside spans, plus its steal count (pool.steal
//     instants);
//   - the --top longest individual spans, for eyeballing stragglers.
//
// Usage:
//   trace_report --input out/trace.json [--top 10]
//
// Exits 0 on success, 1 on a malformed trace, 2 on usage errors.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "io/table.h"
#include "obs/json.h"
#include "util/flags.h"

using namespace adbscan;

namespace {

struct Span {
  std::string name;
  double tid = 0.0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

// Sum of the lengths of the union of [begin, end) intervals.
double IntervalUnionUs(std::vector<std::pair<double, double>> intervals) {
  std::sort(intervals.begin(), intervals.end());
  double total = 0.0;
  double cur_begin = 0.0;
  double cur_end = -1.0;
  for (const auto& [begin, end] : intervals) {
    if (end <= cur_end) continue;
    if (begin > cur_end) {
      if (cur_end > cur_begin) total += cur_end - cur_begin;
      cur_begin = begin;
    }
    cur_end = end;
  }
  if (cur_end > cur_begin) total += cur_end - cur_begin;
  return total;
}

std::string Ms(double us) { return Table::Num(us / 1000.0); }

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineString("input", "", "Chrome trace-event JSON file (required)")
      .DefineInt("top", 10, "longest individual spans to list");
  flags.Parse(argc, argv);

  const std::string input = flags.GetString("input");
  if (input.empty()) {
    std::fprintf(stderr, "--input is required\n");
    flags.PrintUsage(argv[0]);
    return 2;
  }
  std::ifstream in(input);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", input.c_str());
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::optional<obs::JsonValue> doc = obs::ParseJson(buffer.str());
  if (!doc.has_value() || !doc->IsObject()) {
    std::fprintf(stderr, "%s: not a JSON object\n", input.c_str());
    return 1;
  }
  const obs::JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->IsArray()) {
    std::fprintf(stderr, "%s: missing traceEvents array\n", input.c_str());
    return 1;
  }

  std::vector<Span> spans;
  std::map<double, std::string> thread_labels;
  std::map<double, size_t> steals;
  std::map<double, size_t> instants;
  double trace_end_us = 0.0;
  for (const obs::JsonValue& e : events->array) {
    if (!e.IsObject()) continue;
    const obs::JsonValue* ph = e.Find("ph");
    const obs::JsonValue* tid = e.Find("tid");
    const obs::JsonValue* name = e.Find("name");
    if (ph == nullptr || !ph->IsString() || tid == nullptr ||
        !tid->IsNumber() || name == nullptr || !name->IsString()) {
      continue;
    }
    if (ph->string == "M") {
      if (name->string == "thread_name") {
        if (const obs::JsonValue* args = e.Find("args")) {
          if (const obs::JsonValue* label = args->Find("name")) {
            if (label->IsString()) thread_labels[tid->number] = label->string;
          }
        }
      }
      continue;
    }
    const obs::JsonValue* ts = e.Find("ts");
    if (ts == nullptr || !ts->IsNumber()) continue;
    trace_end_us = std::max(trace_end_us, ts->number);
    if (ph->string == "X") {
      const obs::JsonValue* dur = e.Find("dur");
      if (dur == nullptr || !dur->IsNumber()) continue;
      spans.push_back(
          {name->string, tid->number, ts->number, dur->number});
      trace_end_us = std::max(trace_end_us, ts->number + dur->number);
    } else if (ph->string == "i") {
      ++instants[tid->number];
      if (name->string == "pool.steal") ++steals[tid->number];
    }
  }
  if (spans.empty()) {
    std::printf("%s: no duration spans recorded\n", input.c_str());
    return 0;
  }

  // Per-name aggregation: cpu = plain sum, wall = interval union across
  // every thread (so "pool.chunk" running 4-wide counts the wall once).
  struct NameStats {
    size_t count = 0;
    double cpu_us = 0.0;
    std::vector<std::pair<double, double>> intervals;
  };
  std::map<std::string, NameStats> by_name;
  std::map<double, std::vector<std::pair<double, double>>> by_tid;
  for (const Span& s : spans) {
    NameStats& stats = by_name[s.name];
    ++stats.count;
    stats.cpu_us += s.dur_us;
    stats.intervals.emplace_back(s.ts_us, s.ts_us + s.dur_us);
    by_tid[s.tid].emplace_back(s.ts_us, s.ts_us + s.dur_us);
  }

  std::printf("%s: %zu spans, %.3f ms trace\n\n", input.c_str(), spans.size(),
              trace_end_us / 1000.0);

  Table phases({"span", "count", "cpu ms", "wall ms", "cpu/wall"});
  std::vector<std::pair<std::string, NameStats>> ordered(by_name.begin(),
                                                         by_name.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    return a.second.cpu_us > b.second.cpu_us;
  });
  for (auto& [name, stats] : ordered) {
    const double wall_us = IntervalUnionUs(std::move(stats.intervals));
    phases.AddRow({name, std::to_string(stats.count), Ms(stats.cpu_us),
                   Ms(wall_us),
                   wall_us > 0.0 ? Table::Num(stats.cpu_us / wall_us) : "-"});
  }
  phases.Print(stdout);

  std::printf("\n");
  Table threads({"tid", "label", "busy ms", "util", "spans", "steals"});
  for (auto& [tid, intervals] : by_tid) {
    const double busy_us = IntervalUnionUs(std::move(intervals));
    size_t count = 0;
    for (const Span& s : spans) count += s.tid == tid ? 1 : 0;
    const auto label = thread_labels.find(tid);
    threads.AddRow(
        {Table::Num(tid, 0),
         label != thread_labels.end() ? label->second : "?",
         Ms(busy_us),
         trace_end_us > 0.0 ? Table::Num(busy_us / trace_end_us) : "-",
         std::to_string(count), std::to_string(steals[tid])});
  }
  threads.Print(stdout);

  const size_t top = static_cast<size_t>(std::max<int64_t>(
      0, flags.GetInt("top")));
  if (top > 0) {
    std::printf("\n");
    std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
      return a.dur_us > b.dur_us;
    });
    Table longest({"span", "tid", "start ms", "dur ms"});
    for (size_t i = 0; i < std::min(top, spans.size()); ++i) {
      const Span& s = spans[i];
      longest.AddRow({s.name, Table::Num(s.tid, 0), Ms(s.ts_us),
                      Ms(s.dur_us)});
    }
    longest.Print(stdout);
  }
  return 0;
}
