// Clustering-as-a-service daemon: boots a WireServer on 127.0.0.1 and runs
// until SIGINT/SIGTERM. Multi-tenant — each client-created session owns an
// independent DynamicClusterer; see src/serve/ and DESIGN.md "Serving
// runtime".
//
//   adbscan_server --port=0 --port_file=out/port.txt --threads=0
//
// --port=0 picks a free port; --port_file publishes the bound port for
// scripted callers (written after the listener is live, so waiting for the
// file to appear is a reliable readiness probe). On shutdown the server
// optionally appends one obs::RunRecord (--metrics_json) covering the whole
// serving window and exports the trace timeline (--trace_json).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <string>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace adbscan;

  Flags flags;
  flags.DefineInt("port", 0, "TCP port on 127.0.0.1 (0 = pick a free port)")
      .DefineString("port_file", "",
                    "write the bound port here once the server is ready")
      .DefineInt("threads", 0,
                 "worker threads (0 = auto: ADBSCAN_THREADS env, else "
                 "hardware count)")
      .DefineInt("drain_batch_ops", 2048,
                 "background drain trigger (pending ops per session)")
      .DefineInt("max_pending_ops", 1 << 20,
                 "per-session ingest queue cap (ops) before backpressure")
      .DefineInt("max_sessions", 1024, "concurrent session cap")
      .DefineString("metrics_json", "",
                    "append one metrics RunRecord here on shutdown")
      .DefineString("trace_json", "",
                    "write a Chrome trace-event JSON timeline here "
                    "(empty = ADBSCAN_TRACE env, else tracing off)");
  flags.Parse(argc, argv);

  int64_t port64 = 0;
  int64_t threads64 = 0;
  if (!flags.TryGetInt("port", &port64) || port64 < 0 || port64 > 65535) {
    std::fprintf(stderr, "--port must be in [0, 65535]\n");
    return 2;
  }
  if (!flags.TryGetInt("threads", &threads64) || threads64 > 1'000'000) {
    std::fprintf(stderr, "--threads must be a reasonable integer\n");
    return 2;
  }
  int threads = 0;
  std::string threads_error;
  if (!TryResolveNumThreads(static_cast<int>(threads64), &threads,
                            &threads_error)) {
    std::fprintf(stderr, "%s\n", threads_error.c_str());
    return 2;
  }

  const std::string metrics_json = flags.GetString("metrics_json");
  if (!metrics_json.empty()) obs::MetricsRegistry::SetEnabled(true);
  const std::string trace_json =
      obs::ResolveTracePath(flags.GetString("trace_json"));
  if (!trace_json.empty()) obs::StartTracing();

  serve::ServerOptions options;
  options.port = static_cast<int>(port64);
  options.serve.num_threads = threads;
  options.serve.drain_batch_ops =
      static_cast<size_t>(flags.GetInt("drain_batch_ops"));
  options.serve.max_pending_ops =
      static_cast<size_t>(flags.GetInt("max_pending_ops"));
  options.serve.max_sessions =
      static_cast<size_t>(flags.GetInt("max_sessions"));

  serve::WireServer server(options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "adbscan_server: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "adbscan_server: listening on 127.0.0.1:%d (%d threads)\n",
               server.port(), threads);

  const std::string port_file = flags.GetString("port_file");
  if (!port_file.empty()) {
    std::FILE* f = std::fopen(port_file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "adbscan_server: cannot write --port_file %s\n",
                   port_file.c_str());
      return 1;
    }
    std::fprintf(f, "%d\n", server.port());
    std::fclose(f);
  }

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  Timer up;
  // sigsuspend-free wait: SIGINT/SIGTERM interrupt the sleep and the loop
  // observes g_stop on the next iteration (100 ms worst-case latency).
  while (!g_stop) {
    struct timespec ts{};
    ts.tv_sec = 0;
    ts.tv_nsec = 100 * 1000 * 1000;
    nanosleep(&ts, nullptr);
  }
  std::fprintf(stderr, "adbscan_server: shutting down\n");
  server.Stop();

  if (!metrics_json.empty()) {
    obs::RunRecord rec;
    rec.run = "adbscan_server";
    rec.dataset = "serve";
    rec.algo = "serve";
    rec.params = {{"threads", std::to_string(threads)},
                  {"port", std::to_string(server.port())}};
    rec.total_ms = up.ElapsedMillis();
    rec.metrics = obs::MetricsRegistry::Global().Snapshot();
    if (!obs::AppendJsonLine(metrics_json, rec)) {
      std::fprintf(stderr, "warning: cannot append metrics to %s\n",
                   metrics_json.c_str());
    }
  }
  if (!trace_json.empty() && !obs::ExportTrace(trace_json)) {
    std::fprintf(stderr, "warning: trace export to %s failed\n",
                 trace_json.c_str());
  }
  return 0;
}
