// bench_compare — tolerance-aware diff of two micro-benchmark JSON files
// ({"bench": name, "results": [...]}, written by bench/micro_*.cc), for
// the regression gate in tools/bench_smoke.sh and CI.
//
// Rows are matched by a key built from identity fields (--key, default
// "op,dataset,dim,n,layout,round,kernel,batch,step" — fields absent from a
// row are skipped). For each matched row the chosen --metrics are
// compared as current/baseline ratios; a metric whose ratio drops below
// 1 - --max_regression fails the gate. The default metrics are the
// machine-independent ratio columns (speedup, speedup_vs_legacy,
// speedup_vs_scalar), so a baseline recorded on different hardware still
// gates structure-level regressions; pass absolute columns (e.g.
// incr_ms, ns_per_dist) explicitly for a same-machine gate (for "ms"-like
// metrics, where smaller is better, the ratio check flips automatically
// via --lower_is_better metric suffixes: any metric ending in ms, _ns, or
// ns_per_dist).
//
// --filter drops rows before matching: "field=value" removes every row
// whose field equals the value (e.g. --filter=round=-1 to skip the
// summary rows micro_stream emits).
//
// --min_value adds absolute floors: "metric:threshold" fails the gate for
// any current row whose metric falls below the threshold, independent of
// the baseline ratio (e.g. --min_value=speedup_vs_legacy:1.0 asserts a
// recorded speedup never dips under parity). Used to gate frozen
// measurement artifacts (pass the same file as --current and --baseline).
//
// Exit codes: 0 = within tolerance, 1 = regression detected, 2 = usage or
// parse error. Baseline rows missing from current (or vice versa) warn but
// do not fail, so bench config drift does not hard-break CI.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "io/table.h"
#include "obs/json.h"
#include "util/flags.h"

using namespace adbscan;

namespace {

std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    if (comma > pos) out.push_back(text.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

std::string FieldAsText(const obs::JsonValue& row, const std::string& field) {
  const obs::JsonValue* v = row.Find(field);
  if (v == nullptr) return "";
  if (v->IsString()) return v->string;
  if (v->IsNumber()) return obs::JsonNumber(v->number);
  if (v->IsBool()) return v->bool_value ? "true" : "false";
  return "";
}

// Loads {"bench": ..., "results": [...]} and returns the rows.
std::optional<std::vector<obs::JsonValue>> LoadRows(const std::string& path,
                                                    std::string* bench_name) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::optional<obs::JsonValue> doc = obs::ParseJson(buffer.str());
  if (!doc.has_value() || !doc->IsObject()) {
    std::fprintf(stderr, "%s: not a JSON object\n", path.c_str());
    return std::nullopt;
  }
  const obs::JsonValue* results = doc->Find("results");
  if (results == nullptr || !results->IsArray()) {
    std::fprintf(stderr, "%s: missing results array\n", path.c_str());
    return std::nullopt;
  }
  if (const obs::JsonValue* bench = doc->Find("bench");
      bench != nullptr && bench->IsString()) {
    *bench_name = bench->string;
  }
  return results->array;
}

// True for metrics where smaller is better (latency-style columns); the
// regression ratio flips for these.
bool LowerIsBetter(const std::string& metric) {
  auto ends_with = [&](const char* suffix) {
    const size_t len = std::char_traits<char>::length(suffix);
    return metric.size() >= len &&
           metric.compare(metric.size() - len, len, suffix) == 0;
  };
  return ends_with("ms") || ends_with("_ns") || ends_with("ns_per_dist");
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags
      .DefineString("current", "",
                    "bench JSON produced by this run (required)")
      .DefineString("baseline", "",
                    "committed baseline bench JSON (required)")
      .DefineString("metrics",
                    "speedup,speedup_vs_legacy,speedup_vs_scalar",
                    "comma list of numeric row fields to gate on (fields "
                    "absent from a row are skipped)")
      .DefineString("key", "op,dataset,dim,n,layout,round,kernel,batch,step",
                    "identity fields used to match rows")
      .DefineString("filter", "",
                    "drop rows where field=value (e.g. round=-1), comma "
                    "list")
      .DefineString("min_value", "",
                    "comma list of metric:threshold absolute floors checked "
                    "on every current row carrying the metric (e.g. "
                    "speedup_vs_legacy:1.0)")
      .DefineDouble("max_regression", 0.3,
                    "fail when a metric worsens by more than this fraction "
                    "vs baseline");
  flags.Parse(argc, argv);

  const std::string current_path = flags.GetString("current");
  const std::string baseline_path = flags.GetString("baseline");
  if (current_path.empty() || baseline_path.empty()) {
    std::fprintf(stderr, "--current and --baseline are required\n");
    flags.PrintUsage(argv[0]);
    return 2;
  }
  const double max_regression = flags.GetDouble("max_regression");
  const std::vector<std::string> metrics =
      SplitList(flags.GetString("metrics"));
  const std::vector<std::string> key_fields =
      SplitList(flags.GetString("key"));

  std::vector<std::pair<std::string, std::string>> filters;
  for (const std::string& item : SplitList(flags.GetString("filter"))) {
    const size_t eq = item.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "bad --filter item '%s' (want field=value)\n",
                   item.c_str());
      return 2;
    }
    filters.emplace_back(item.substr(0, eq), item.substr(eq + 1));
  }

  std::vector<std::pair<std::string, double>> floors;
  for (const std::string& item : SplitList(flags.GetString("min_value"))) {
    const size_t colon = item.find(':');
    char* end = nullptr;
    const double threshold =
        colon == std::string::npos
            ? 0.0
            : std::strtod(item.c_str() + colon + 1, &end);
    if (colon == std::string::npos || end == nullptr || *end != '\0') {
      std::fprintf(stderr,
                   "bad --min_value item '%s' (want metric:threshold)\n",
                   item.c_str());
      return 2;
    }
    floors.emplace_back(item.substr(0, colon), threshold);
  }

  std::string current_bench;
  std::string baseline_bench;
  const auto current = LoadRows(current_path, &current_bench);
  const auto baseline = LoadRows(baseline_path, &baseline_bench);
  if (!current.has_value() || !baseline.has_value()) return 2;
  if (!current_bench.empty() && !baseline_bench.empty() &&
      current_bench != baseline_bench) {
    std::fprintf(stderr, "bench mismatch: current '%s' vs baseline '%s'\n",
                 current_bench.c_str(), baseline_bench.c_str());
    return 2;
  }

  auto keep = [&](const obs::JsonValue& row) {
    for (const auto& [field, value] : filters) {
      if (FieldAsText(row, field) == value) return false;
    }
    return true;
  };
  auto key_of = [&](const obs::JsonValue& row) {
    std::string key;
    for (const std::string& field : key_fields) {
      const std::string text = FieldAsText(row, field);
      if (text.empty()) continue;
      key += field + "=" + text + " ";
    }
    return key;
  };

  std::map<std::string, const obs::JsonValue*> baseline_rows;
  for (const obs::JsonValue& row : *baseline) {
    if (row.IsObject() && keep(row)) baseline_rows[key_of(row)] = &row;
  }

  int regressions = 0;
  int compared = 0;
  size_t matched = 0;
  Table table({"row", "metric", "baseline", "current", "ratio", "verdict"});
  for (const obs::JsonValue& row : *current) {
    if (!row.IsObject() || !keep(row)) continue;
    const std::string key = key_of(row);
    // Absolute floors: checked on every current row, matched or not.
    for (const auto& [metric, threshold] : floors) {
      const obs::JsonValue* v = row.Find(metric);
      if (v == nullptr || !v->IsNumber()) continue;
      ++compared;
      const bool below = v->number < threshold;
      if (below) ++regressions;
      if (below || v->number < threshold * 1.05) {
        table.AddRow({key, metric + " (floor)", Table::Num(threshold),
                      Table::Num(v->number),
                      Table::Num(v->number / threshold),
                      below ? "BELOW MIN" : "ok"});
      }
    }
    const auto base_it = baseline_rows.find(key);
    if (base_it == baseline_rows.end()) {
      std::fprintf(stderr, "warning: no baseline row for %s\n", key.c_str());
      continue;
    }
    ++matched;
    const obs::JsonValue& base = *base_it->second;
    baseline_rows.erase(base_it);
    for (const std::string& metric : metrics) {
      const obs::JsonValue* cur_v = row.Find(metric);
      const obs::JsonValue* base_v = base.Find(metric);
      if (cur_v == nullptr || !cur_v->IsNumber() || base_v == nullptr ||
          !base_v->IsNumber()) {
        continue;
      }
      if (base_v->number <= 0.0 || cur_v->number <= 0.0) continue;
      ++compared;
      // Normalize to "improvement ratio": > 1 is better than baseline.
      const double ratio = LowerIsBetter(metric)
                               ? base_v->number / cur_v->number
                               : cur_v->number / base_v->number;
      const bool regressed = ratio < 1.0 - max_regression;
      if (regressed) ++regressions;
      if (regressed || ratio < 1.0) {
        table.AddRow({key, metric, Table::Num(base_v->number),
                      Table::Num(cur_v->number), Table::Num(ratio),
                      regressed ? "REGRESSED" : "ok"});
      }
    }
  }
  for (const auto& [key, row] : baseline_rows) {
    (void)row;
    std::fprintf(stderr, "warning: baseline row not in current: %s\n",
                 key.c_str());
  }

  if (matched == 0) {
    std::fprintf(stderr, "no rows matched between %s and %s\n",
                 current_path.c_str(), baseline_path.c_str());
    return 2;
  }
  table.Print(stdout);
  std::printf(
      "%zu rows matched, %d metric comparisons, %d regression(s) beyond "
      "%.0f%%\n",
      matched, compared, regressions, max_regression * 100.0);
  return regressions == 0 ? 0 : 1;
}
