// Microbenchmarks: union-find throughput (the connected-components step of
// the core-cell graph G).

#include <benchmark/benchmark.h>

#include "ds/union_find.h"
#include "util/rng.h"

namespace adbscan {
namespace {

void BM_UnionFindRandomUnions(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    UnionFind uf(n);
    Rng rng(7);
    for (uint32_t i = 0; i < n; ++i) {
      uf.Union(static_cast<uint32_t>(rng.NextBounded(n)),
               static_cast<uint32_t>(rng.NextBounded(n)));
    }
    benchmark::DoNotOptimize(uf.NumSets());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionFindRandomUnions)->Arg(1000)->Arg(100000)->Arg(1000000);

void BM_UnionFindChainThenFind(benchmark::State& state) {
  // Worst-ish case: long chains, then path-compressed finds.
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    UnionFind uf(n);
    for (uint32_t i = 1; i < n; ++i) uf.Union(i - 1, i);
    uint64_t acc = 0;
    for (uint32_t i = 0; i < n; ++i) acc += uf.Find(i);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnionFindChainThenFind)->Arg(100000);

void BM_UnionFindComponentIds(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  UnionFind uf(n);
  Rng rng(11);
  for (uint32_t i = 0; i < n / 2; ++i) {
    uf.Union(static_cast<uint32_t>(rng.NextBounded(n)),
             static_cast<uint32_t>(rng.NextBounded(n)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(uf.ComponentIds().size());
  }
}
BENCHMARK(BM_UnionFindComponentIds)->Arg(100000);

}  // namespace
}  // namespace adbscan

BENCHMARK_MAIN();
