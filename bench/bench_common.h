#ifndef ADBSCAN_BENCH_BENCH_COMMON_H_
#define ADBSCAN_BENCH_BENCH_COMMON_H_

// Shared plumbing for the figure-reproduction harnesses (bench/fig*.cc,
// bench/table1*.cc): dataset factories matching Section 5.1, the four
// compared algorithms of Section 5.3, and a per-algorithm time-budget
// tracker that mirrors the paper's 12-hour cutoff convention (a skipped run
// prints "skipped", like the missing KDD96/CIT08 points in Figures 11-12).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/adbscan.h"
#include "gen/realdata_sim.h"
#include "geom/kernels.h"
#include "gen/seed_spreader.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace_export.h"
#include "util/check.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace adbscan {
namespace bench {

// The paper's default MinPts (Section 5.1) and recommended rho (5.2).
inline constexpr int kDefaultMinPts = 100;
inline constexpr double kDefaultRho = 0.001;
inline constexpr double kDefaultEps = 5000.0;

// Registers the shared --threads knob; every harness uses the same default
// (0 = auto) and the same help text.
inline Flags& DefineThreadsFlag(Flags& flags) {
  return flags.DefineInt(
      "threads", 0,
      "worker threads (0 = auto: ADBSCAN_THREADS env, else hardware count)");
}

// Resolves the --threads flag to a concrete worker count.
inline int ThreadsFromFlags(const Flags& flags) {
  return ResolveNumThreads(static_cast<int>(flags.GetInt("threads")));
}

// Registers the shared --kernel knob (see geom/kernels.h).
inline Flags& DefineKernelFlag(Flags& flags) {
  return flags.DefineString(
      "kernel", "auto",
      "distance kernel: scalar | avx2 | neon | auto (best supported)");
}

// Applies --kernel to the process-wide dispatch; exits with a clear message
// on an unknown name or a kernel this binary/CPU cannot run.
inline void ApplyKernelFlag(const Flags& flags) {
  const std::string& name = flags.GetString("kernel");
  simd::KernelKind kind;
  if (!simd::ParseKernelKind(name, &kind)) {
    std::fprintf(stderr,
                 "unknown --kernel '%s' (want scalar|avx2|neon|auto)\n",
                 name.c_str());
    std::exit(2);
  }
  if (!simd::SetKernel(kind)) {
    std::fprintf(stderr, "--kernel=%s is not supported on this CPU\n",
                 name.c_str());
    std::exit(2);
  }
}

// Registers the shared --trace_json knob (see obs/trace_export.h).
inline Flags& DefineTraceFlag(Flags& flags) {
  return flags.DefineString(
      "trace_json", "",
      "write a Chrome trace-event JSON timeline here (Perfetto-loadable; "
      "empty = ADBSCAN_TRACE env, else tracing off)");
}

// Resolves --trace_json (falling back to the ADBSCAN_TRACE environment
// variable) and, when a path results, enables trace recording. Call before
// ApplyKernelFlag so the kernel-dispatch instant lands on the timeline.
// Returns the path to hand to obs::ExportTrace() after the measured work
// ("" = tracing off).
inline std::string ApplyTraceFlag(const Flags& flags) {
  const std::string path =
      obs::ResolveTracePath(flags.GetString("trace_json"));
  if (!path.empty()) obs::StartTracing();
  return path;
}

// Creates the parent directory of `path` (if any) so writes to flag-chosen
// locations like out/fig08_dataset.csv never fail on a fresh checkout.
inline void EnsureParentDir(const std::string& path) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (parent.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(parent, ec);  // best effort
}

// Default location for harness artifacts: out/<filename>, creating out/ on
// demand. The directory is git-ignored, so repeated runs never dirty the
// tree.
inline std::string OutPath(const std::string& filename) {
  const std::string path = (std::filesystem::path("out") / filename).string();
  EnsureParentDir(path);
  return path;
}

// Named dataset factory. Names: ss2d, ss3d, ss5d, ss7d (seed spreader at
// that dimensionality), pamap2, farm, household (real-data stand-ins, see
// DESIGN.md). Deterministic per (name, n, seed).
inline Dataset MakeBenchDataset(const std::string& name, size_t n,
                                uint64_t seed) {
  auto spreader = [&](int dim) {
    SeedSpreaderParams p;
    p.dim = dim;
    p.n = n;
    return GenerateSeedSpreader(p, seed);
  };
  if (name == "ss2d") return spreader(2);
  if (name == "ss3d") return spreader(3);
  if (name == "ss5d") return spreader(5);
  if (name == "ss7d") return spreader(7);
  if (name == "pamap2") return Pamap2Like(n, seed);
  if (name == "farm") return FarmLike(n, seed);
  if (name == "household") return HouseholdLike(n, seed);
  ADB_CHECK_MSG(false, ("unknown dataset: " + name).c_str());
  return Dataset(1);
}

// Splits a comma-separated list flag ("ss3d,farm") into names.
inline std::vector<std::string> SplitNames(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    out.push_back(text.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

// Calibrated repetition: runs fn until BOTH a minimum wall time and a
// minimum rep count are consumed, after one untimed warm-up call (prime
// caches, thread pool, lazy structures). Returns {reps, ms per call}.
// The rep floor is what makes gate metrics trustworthy: a config whose
// single call already exceeds min_ms would otherwise be measured at reps=1
// and its recorded ms carry full run-to-run noise (the old
// BENCH_grid_layout.json rows at reps 1-2 swung well past the gate
// tolerances). The checksum accumulates fn's return value to defeat
// dead-code elimination.
inline constexpr uint64_t kMinMeasureReps = 3;

template <typename Fn>
std::pair<uint64_t, double> MeasureMs(double min_ms, double* checksum,
                                      Fn&& fn) {
  *checksum += fn();  // warm-up
  uint64_t reps = 0;
  Timer timer;
  do {
    *checksum += fn();
    ++reps;
  } while (reps < kMinMeasureReps ||
           timer.ElapsedSeconds() * 1000.0 < min_ms);
  return {reps, timer.ElapsedSeconds() * 1000.0 / static_cast<double>(reps)};
}

using AlgoFn = std::function<Clustering(const Dataset&, const DbscanParams&)>;

// The four algorithms of Section 5.3, in the paper's naming.
inline std::vector<std::pair<std::string, AlgoFn>> StandardAlgos(double rho) {
  return {
      {"KDD96",
       [](const Dataset& d, const DbscanParams& p) {
         return Kdd96Dbscan(d, p);
       }},
      {"CIT08",
       [](const Dataset& d, const DbscanParams& p) {
         return GridbscanDbscan(d, p);
       }},
      {"OurExact",
       [](const Dataset& d, const DbscanParams& p) {
         return ExactGridDbscan(d, p);
       }},
      {"OurApprox",
       [rho](const Dataset& d, const DbscanParams& p) {
         return ApproxDbscan(d, p, rho);
       }},
  };
}

// Tracks which (algorithm, dataset) pairs have blown their budget so the
// sweep skips strictly harder configurations, exactly once over.
class BudgetTracker {
 public:
  explicit BudgetTracker(double budget_sec) : budget_sec_(budget_sec) {}

  bool ShouldRun(const std::string& key) const {
    return exhausted_.find(key) == exhausted_.end();
  }

  // Returns elapsed seconds, or nullopt if the run was skipped.
  std::optional<double> Run(const std::string& key,
                            const std::function<void()>& fn) {
    if (!ShouldRun(key)) return std::nullopt;
    Timer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed > budget_sec_) exhausted_.insert(key);
    return elapsed;
  }

  double budget_sec() const { return budget_sec_; }

 private:
  double budget_sec_;
  std::set<std::string> exhausted_;
};

// Formats a numeric run parameter for the metrics-record params map.
inline std::string ParamNum(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

// Appends one obs::RunRecord JSON line per measured run to --metrics_json.
// Constructing with a non-empty path runtime-enables the metrics registry;
// an empty path leaves everything off and every method a no-op. Each
// BeginRun/EndRun pair brackets exactly one algorithm invocation:
//
//   logger.BeginRun();
//   <run the algorithm, measure total seconds>
//   logger.EndRun(dataset, algo, params, total_sec);
class MetricsLogger {
 public:
  MetricsLogger(std::string path, std::string run_name)
      : path_(std::move(path)), run_(std::move(run_name)) {
    if (!path_.empty()) obs::MetricsRegistry::SetEnabled(true);
  }

  bool active() const { return !path_.empty(); }

  void BeginRun() {
    if (!active()) return;
    obs::MetricsRegistry::Global().Reset();
  }

  void EndRun(const std::string& dataset, const std::string& algo,
              std::vector<std::pair<std::string, std::string>> params,
              double total_sec) {
    if (!active()) return;
    obs::RunRecord rec;
    rec.run = run_;
    rec.dataset = dataset;
    rec.algo = algo;
    rec.params = std::move(params);
    rec.total_ms = total_sec * 1000.0;
    rec.metrics = obs::MetricsRegistry::Global().Snapshot();
    if (!obs::AppendJsonLine(path_, rec) && !warned_) {
      warned_ = true;  // one warning, not one per run
      std::fprintf(stderr, "warning: cannot append metrics to %s\n",
                   path_.c_str());
    }
  }

 private:
  std::string path_;
  std::string run_;
  bool warned_ = false;
};

}  // namespace bench
}  // namespace adbscan

#endif  // ADBSCAN_BENCH_BENCH_COMMON_H_
