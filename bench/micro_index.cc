// Microbenchmarks: spatial-index build and ε range queries — the cost
// center of the KDD'96 baseline (one query per point).

#include <benchmark/benchmark.h>

#include <numeric>

#include "bench_common.h"
#include "geom/delaunay2d.h"
#include "index/brute_force.h"
#include "index/kdtree.h"
#include "index/rtree.h"

namespace adbscan {
namespace {

template <typename IndexT>
void BM_IndexBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset data = bench::MakeBenchDataset("ss3d", n, 1);
  for (auto _ : state) {
    IndexT index(data);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK_TEMPLATE(BM_IndexBuild, KdTree)->Arg(10000)->Arg(100000);
BENCHMARK_TEMPLATE(BM_IndexBuild, RTree)->Arg(10000)->Arg(100000);

template <typename IndexT>
void BM_IndexRangeQuery(benchmark::State& state) {
  const Dataset data = bench::MakeBenchDataset("ss3d", 100000, 1);
  const IndexT index(data);
  const double radius = static_cast<double>(state.range(0));
  size_t i = 0;
  size_t reported = 0;
  for (auto _ : state) {
    reported += index.RangeQuery(data.point(i), radius).size();
    i = (i + 997) % data.size();
  }
  benchmark::DoNotOptimize(reported);
  state.counters["avg_result"] =
      static_cast<double>(reported) / state.iterations();
}
BENCHMARK_TEMPLATE(BM_IndexRangeQuery, KdTree)->Arg(500)->Arg(5000)->Arg(20000);
BENCHMARK_TEMPLATE(BM_IndexRangeQuery, RTree)->Arg(500)->Arg(5000)->Arg(20000);
BENCHMARK_TEMPLATE(BM_IndexRangeQuery, BruteForceIndex)->Arg(5000);

void BM_DelaunayNearest2d(benchmark::State& state) {
  // The Voronoi-dual NN structure of Gunawan's algorithm vs the kd-tree
  // default (BM_KdTreeNearest below is 5D; this is the 2D comparison).
  const Dataset data = bench::MakeBenchDataset("ss2d", 20000, 1);
  std::vector<uint32_t> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0u);
  const Delaunay2d dt(data, ids);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dt.Nearest(data.point(i)).squared_dist);
    i = (i + 997) % data.size();
  }
}
BENCHMARK(BM_DelaunayNearest2d);

void BM_KdTreeNearest2d(benchmark::State& state) {
  const Dataset data = bench::MakeBenchDataset("ss2d", 20000, 1);
  const KdTree index(data);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Nearest(data.point(i)));
    i = (i + 997) % data.size();
  }
}
BENCHMARK(BM_KdTreeNearest2d);

void BM_KdTreeNearest(benchmark::State& state) {
  const Dataset data = bench::MakeBenchDataset("ss5d", 100000, 1);
  const KdTree index(data);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Nearest(data.point(i)));
    i = (i + 997) % data.size();
  }
}
BENCHMARK(BM_KdTreeNearest);

void BM_CountInBallEarlyStop(benchmark::State& state) {
  // The MinPts core test: early termination at 100 vs full counting.
  const Dataset data = bench::MakeBenchDataset("ss3d", 100000, 1);
  const KdTree index(data);
  const size_t stop_at = static_cast<size_t>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        index.CountInBall(data.point(i), bench::kDefaultEps, stop_at));
    i = (i + 997) % data.size();
  }
}
BENCHMARK(BM_CountInBallEarlyStop)->Arg(100)->Arg(1 << 30);

}  // namespace
}  // namespace adbscan

BENCHMARK_MAIN();
