// Table 1: the evaluation's parameter grid (Section 5.1), together with the
// measured collapsing radius of each dataset — the data-dependent upper end
// of the paper's eps spectrum (the paper lists "from 5000 to the collapsing
// radius").

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "eval/collapse.h"
#include "io/table.h"
#include "util/flags.h"

using namespace adbscan;
using adbscan::bench::MakeBenchDataset;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 20000, "points per dataset for the collapse probe")
      .DefineInt("min_pts", bench::kDefaultMinPts, "MinPts")
      .DefineInt("seed", 2025, "generator seed")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per run (empty: off)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);
  bench::MetricsLogger metrics(flags.GetString("metrics_json"),
                               "table1_parameters");

  std::printf("Table 1: parameter values (defaults in the paper in bold)\n");
  Table params({"parameter", "values (paper)", "default"});
  params.AddRow({"n (synthetic)", "100k, 0.5m, 1m, 2m, 5m, 10m", "2m"});
  params.AddRow({"d (synthetic)", "3, 5, 7", "3"});
  params.AddRow({"eps", "from 5000 to the collapsing radius", "5000"});
  params.AddRow({"rho", "0.001, 0.01, 0.02, ..., 0.1", "0.001"});
  params.AddRow({"MinPts", "100 (fixed)", "100"});
  params.Print();

  const size_t n = static_cast<size_t>(flags.GetInt("n"));
  const int min_pts = static_cast<int>(flags.GetInt("min_pts"));
  std::printf("\nMeasured collapsing radii (n=%zu per dataset, MinPts=%d):\n",
              n, min_pts);
  Table radii({"dataset", "d", "collapsing radius"});
  for (const char* name :
       {"ss3d", "ss5d", "ss7d", "pamap2", "farm", "household"}) {
    const Dataset data = MakeBenchDataset(name, n, flags.GetInt("seed"));
    CollapseOptions opts;
    opts.eps_lo = 1000.0;
    opts.num_threads = bench::ThreadsFromFlags(flags);
    metrics.BeginRun();
    Timer probe_timer;
    const double r = FindCollapsingRadius(data, min_pts, opts);
    metrics.EndRun(name, "collapse_probe",
                   {{"n", std::to_string(n)},
                    {"min_pts", std::to_string(min_pts)}},
                   probe_timer.ElapsedSeconds());
    radii.AddRow({name, std::to_string(data.dim()), Table::Num(r, 5)});
  }
  radii.Print();
  std::printf(
      "\n(The paper's radii — e.g. 28.5k for SS3D at n=2m — depend on\n"
      "cardinality and the generator instance; what matters is that the\n"
      "radius grows with d, as above.)\n");
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
