// Figure 12 (a-f): running time vs radius ε for the four algorithms, on SS
// 3D/5D/7D and the three real-dataset stand-ins.
//
// The paper sweeps ε from 5000 to each dataset's collapsing radius at n=2m
// (synthetic) or full real cardinality. Expected shape: KDD96 and CIT08
// degrade monotonically with ε (their range queries return ever more
// points); OurExact/OurApprox are not monotone in ε (grid granularity
// effects), and OurApprox stays fastest throughout.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/collapse.h"
#include "io/table.h"
#include "util/flags.h"

using namespace adbscan;
using adbscan::bench::BudgetTracker;
using adbscan::bench::MakeBenchDataset;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 20000, "points per dataset (paper: 2m+)")
      .DefineInt("steps", 6, "eps values per dataset")
      .DefineDouble("rho", bench::kDefaultRho, "approximation ratio")
      .DefineInt("min_pts", bench::kDefaultMinPts, "MinPts")
      .DefineDouble("budget_sec", 10.0, "per-run budget")
      .DefineString("datasets", "ss3d,ss5d,ss7d,pamap2,farm,household",
                    "datasets to sweep")
      .DefineInt("seed", 2025, "generator seed")
      .DefineBool("full", false, "paper-scale n (2m)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per run (empty: off)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);

  const size_t n = flags.GetBool("full")
                       ? 2000000
                       : static_cast<size_t>(flags.GetInt("n"));
  const int min_pts = static_cast<int>(flags.GetInt("min_pts"));
  const double rho = flags.GetDouble("rho");
  const int steps = static_cast<int>(flags.GetInt("steps"));
  const int num_threads = bench::ThreadsFromFlags(flags);
  bench::MetricsLogger metrics(flags.GetString("metrics_json"),
                               "fig12_vary_eps");

  std::printf(
      "Figure 12: running time vs eps (n=%zu, MinPts=%d, rho=%.3g, budget "
      "%.0fs/run)\n\n",
      n, min_pts, rho, flags.GetDouble("budget_sec"));

  for (const std::string& name :
       bench::SplitNames(flags.GetString("datasets"))) {
    const Dataset data = MakeBenchDataset(name, n, flags.GetInt("seed"));
    CollapseOptions copts;
    copts.eps_lo = 1000.0;
    copts.num_threads = num_threads;
    const double collapse = FindCollapsingRadius(data, min_pts, copts);
    const double eps_lo = std::min(5000.0, collapse * 0.5);
    std::printf("--- %s (d=%d, eps from %.0f to collapsing radius %.0f) "
                "---\n",
                name.c_str(), data.dim(), eps_lo, collapse);

    BudgetTracker budget(flags.GetDouble("budget_sec"));
    std::vector<std::string> header{"eps"};
    for (const auto& [algo_name, fn] : bench::StandardAlgos(rho)) {
      header.push_back(algo_name);
      (void)fn;
    }
    Table t(header);
    for (int s = 0; s < steps; ++s) {
      const double eps =
          eps_lo + (collapse - eps_lo) * static_cast<double>(s) /
                       std::max(1, steps - 1);
      const DbscanParams params{eps, min_pts, num_threads};
      std::vector<std::string> row{Table::Num(eps, 6)};
      for (const auto& [algo_name, fn] : bench::StandardAlgos(rho)) {
        metrics.BeginRun();
        const std::optional<double> elapsed = budget.Run(
            name + "/" + algo_name, [&] { (void)fn(data, params); });
        row.push_back(Table::Seconds(elapsed.value_or(-1.0)));
        if (elapsed.has_value()) {
          metrics.EndRun(name, algo_name,
                         {{"n", std::to_string(n)},
                          {"eps", bench::ParamNum(eps)},
                          {"min_pts", std::to_string(min_pts)},
                          {"rho", bench::ParamNum(rho)}},
                         *elapsed);
        }
      }
      t.AddRow(row);
    }
    t.Print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper, Fig. 12): KDD96/CIT08 cost grows with eps\n"
      "(bigger range-query outputs); OurExact/OurApprox non-monotone;\n"
      "OurApprox consistently fastest.\n");
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
