// Sampled-tier benchmark: exact vs ρ-approximate vs sampled-core DBSCAN++
// across sample rates and draw strategies.
//
// For each dataset the harness times one exact run (the reference), one
// ρ-approximate run, and the sampled pipeline at every --rates ×
// --strategies combination, reporting wall time, speedup over exact, ARI of
// the primary labeling vs exact, and cluster counts, then writes
// BENCH_sampling.json. Two built-in checks back the numbers:
//  - every uniform rate=1.0 row is verified cluster-set equivalent to the
//    exact reference before it is emitted (the degenerate envelope);
//  - the sampled uniform rate=0.1 row carries gate_speedup_vs_exact, the
//    machine-independent column CI floors at 5x via bench_compare
//    --min_value (the headline claim of the sampled tier).
// Greedy k-center costs O(n·m) distance work in the draw itself, so its
// sweep is capped at --kcenter_max_rate (higher rates would benchmark the
// draw, not the pipeline).
//
//   ./build/bench/fig_sampling                          # defaults, n=1e5
//   ./build/bench/fig_sampling --n=4000 --rates=0.1,1.0 # smoke config

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eval/compare.h"
#include "io/table.h"
#include "obs/json.h"
#include "sample/sampled_dbscan.h"
#include "util/timer.h"

namespace adbscan {
namespace {

struct Result {
  std::string dataset;
  int dim;
  size_t n;
  std::string pipeline;  // exact | approx | sampled
  std::string strategy;  // uniform | kcenter | "-" for non-sampled rows
  double rate;           // 1.0 for non-sampled rows
  double ms;
  double speedup_vs_exact;  // exact ms / this ms (1.0 for the exact row)
  double ari_vs_exact;      // AdjustedRandIndex vs the exact reference
  int32_t clusters;
  size_t noise;
  double gate_speedup_vs_exact;  // < 0: absent; the CI-floored gate column
};

void WriteJson(const std::string& path, const std::vector<Result>& results) {
  bench::EnsureParentDir(path);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"fig_sampling\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::string gate;
    if (r.gate_speedup_vs_exact >= 0.0) {
      gate = ", \"gate_speedup_vs_exact\": " +
             obs::JsonNumber(r.gate_speedup_vs_exact);
    }
    std::fprintf(
        f,
        "    {\"dataset\": \"%s\", \"dim\": %d, \"n\": %zu, "
        "\"pipeline\": \"%s\", \"strategy\": \"%s\", \"rate\": %s, "
        "\"ms\": %s, \"speedup_vs_exact\": %s, \"ari_vs_exact\": %s, "
        "\"clusters\": %d, \"noise\": %zu%s}%s\n",
        r.dataset.c_str(), r.dim, r.n, r.pipeline.c_str(), r.strategy.c_str(),
        obs::JsonNumber(r.rate).c_str(), obs::JsonNumber(r.ms).c_str(),
        obs::JsonNumber(r.speedup_vs_exact).c_str(),
        obs::JsonNumber(r.ari_vs_exact).c_str(), r.clusters, r.noise,
        gate.c_str(), i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace adbscan

int main(int argc, char** argv) {
  using namespace adbscan;
  Flags flags;
  flags
      // The defaults are the headline configuration: ss7d at eps=2000 is
      // the regime where the exact edge phase dominates (high dimension,
      // cells sparse enough to defeat the dense shortcuts) and the sampled
      // tier's 10x-fewer-cores edge graph pays off. At the paper-default
      // eps=5000 the exact pipeline is nearly free and sampling cannot win.
      .DefineString("datasets", "ss7d",
                    "comma-separated dataset names (see bench_common.h)")
      .DefineInt("n", 100000, "points per dataset")
      .DefineDouble("eps", 2000.0, "DBSCAN radius")
      .DefineInt("min_pts", bench::kDefaultMinPts, "DBSCAN MinPts")
      .DefineDouble("rho", bench::kDefaultRho,
                    "approximation parameter of the rho-approx row")
      .DefineString("rates", "0.05,0.1,0.25,0.5,1.0",
                    "comma-separated sample rates in (0, 1]")
      .DefineString("strategies", "uniform,kcenter",
                    "comma-separated draw strategies to sweep")
      .DefineDouble("kcenter_max_rate", 0.25,
                    "skip kcenter rows above this rate (the O(n*m) draw "
                    "would dominate the measurement)")
      .DefineInt("seed", 1, "master seed for the sample draws")
      .DefineString("out", "",
                    "output JSON path (default out/BENCH_sampling.json)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per measured run "
                    "(empty: off)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);
  const size_t n = static_cast<size_t>(flags.GetInt("n"));
  const double rho = flags.GetDouble("rho");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const double kcenter_max_rate = flags.GetDouble("kcenter_max_rate");
  DbscanParams params{flags.GetDouble("eps"),
                      static_cast<int>(flags.GetInt("min_pts")),
                      bench::ThreadsFromFlags(flags)};

  std::vector<double> rates;
  for (const std::string& s : bench::SplitNames(flags.GetString("rates"))) {
    const double r = std::atof(s.c_str());
    if (!(r > 0.0) || r > 1.0) {
      std::fprintf(stderr, "--rates entries must be in (0, 1] (got '%s')\n",
                   s.c_str());
      return 2;
    }
    rates.push_back(r);
  }
  std::vector<SampleStrategy> strategies;
  for (const std::string& s :
       bench::SplitNames(flags.GetString("strategies"))) {
    SampleStrategy strategy;
    if (!ParseSampleStrategy(s, &strategy)) {
      std::fprintf(stderr, "unknown strategy '%s' (want uniform|kcenter)\n",
                   s.c_str());
      return 2;
    }
    strategies.push_back(strategy);
  }
  std::string out = flags.GetString("out");
  if (out.empty()) out = bench::OutPath("BENCH_sampling.json");
  bench::MetricsLogger logger(flags.GetString("metrics_json"),
                              "fig_sampling");

  std::vector<Result> results;
  Table table(
      {"dataset", "pipeline", "strategy", "rate", "ms", "vs_exact", "ari",
       "clusters"});

  for (const std::string& name :
       bench::SplitNames(flags.GetString("datasets"))) {
    const Dataset data = bench::MakeBenchDataset(name, n, 1);
    const int dim = data.dim();
    const auto common_params = [&](std::vector<std::pair<
                                       std::string, std::string>> extra) {
      std::vector<std::pair<std::string, std::string>> p = {
          {"n", std::to_string(n)},
          {"min_pts", std::to_string(params.min_pts)},
          {"eps", bench::ParamNum(params.eps)}};
      p.insert(p.end(), extra.begin(), extra.end());
      return p;
    };

    // Warmup (primes the thread pool and the SoA cache), then the timed
    // exact reference every other row is scored against.
    const Clustering warmup = ExactGridDbscan(data, params);
    logger.BeginRun();
    Timer exact_timer;
    const Clustering exact = ExactGridDbscan(data, params);
    const double exact_ms = exact_timer.ElapsedSeconds() * 1000.0;
    logger.EndRun(name, "exact", common_params({}), exact_ms / 1000.0);
    if (!SameClusters(warmup, exact)) {
      std::fprintf(stderr, "FATAL: exact run is not deterministic (%s)\n",
                   name.c_str());
      return 1;
    }
    results.push_back({name, dim, n, "exact", "-", 1.0, exact_ms, 1.0, 1.0,
                       exact.num_clusters, exact.NumNoisePoints(), -1.0});
    table.AddRow({name, "exact", "-", "1", Table::Num(exact_ms, 2),
                  Table::Num(1.0, 2), Table::Num(1.0, 3),
                  std::to_string(exact.num_clusters)});

    logger.BeginRun();
    Timer approx_timer;
    const Clustering approx = ApproxDbscan(data, params, rho);
    const double approx_ms = approx_timer.ElapsedSeconds() * 1000.0;
    logger.EndRun(name, "approx", common_params({{"rho", bench::ParamNum(rho)}}),
                  approx_ms / 1000.0);
    const double approx_ari = AdjustedRandIndex(exact, approx);
    results.push_back({name, dim, n, "approx", "-", 1.0, approx_ms,
                       exact_ms / approx_ms, approx_ari, approx.num_clusters,
                       approx.NumNoisePoints(), -1.0});
    table.AddRow({name, "approx", "-", "1", Table::Num(approx_ms, 2),
                  Table::Num(exact_ms / approx_ms, 2),
                  Table::Num(approx_ari, 3),
                  std::to_string(approx.num_clusters)});

    for (SampleStrategy strategy : strategies) {
      for (double rate : rates) {
        if (strategy == SampleStrategy::kKCenter &&
            rate > kcenter_max_rate) {
          std::printf("skip: kcenter at rate %.4g (> --kcenter_max_rate "
                      "%.4g)\n",
                      rate, kcenter_max_rate);
          continue;
        }
        SampledDbscanOptions options;
        options.sample_rate = rate;
        options.strategy = strategy;
        options.seed = seed;
        SampledRunStats stats;
        logger.BeginRun();
        Timer timer;
        const Clustering sampled =
            SampledDbscan(data, params, options, &stats);
        const double ms = timer.ElapsedSeconds() * 1000.0;
        logger.EndRun(name, std::string("sampled:") + SampleStrategyName(strategy),
                      common_params({{"rate", bench::ParamNum(rate)},
                                     {"strategy", SampleStrategyName(strategy)},
                                     {"seed", std::to_string(seed)},
                                     {"m", std::to_string(stats.sample_size)}}),
                      ms / 1000.0);
        // Degenerate envelope: rate = 1.0 with a uniform draw samples the
        // whole dataset and must reproduce the exact clustering.
        if (strategy == SampleStrategy::kUniform && rate == 1.0 &&
            !SameClusters(exact, sampled)) {
          std::fprintf(stderr,
                       "FATAL: sampled rate=1.0 diverged from exact (%s)\n",
                       name.c_str());
          return 1;
        }
        const double speedup = exact_ms / ms;
        const double ari = AdjustedRandIndex(exact, sampled);
        // The CI gate column rides only on the headline configuration.
        const bool gated = strategy == SampleStrategy::kUniform &&
                           std::fabs(rate - 0.1) < 1e-9;
        results.push_back({name, dim, n, "sampled",
                           SampleStrategyName(strategy), rate, ms, speedup,
                           ari, sampled.num_clusters,
                           sampled.NumNoisePoints(),
                           gated ? speedup : -1.0});
        table.AddRow({name, "sampled", SampleStrategyName(strategy),
                      bench::ParamNum(rate), Table::Num(ms, 2),
                      Table::Num(speedup, 2), Table::Num(ari, 3),
                      std::to_string(sampled.num_clusters)});
      }
    }
  }

  table.Print();
  WriteJson(out, results);
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
