// Related-work panorama (Sections 1.1 and 2 of the paper): run every
// implemented algorithm — the four of Figure 11, Gunawan's 2D algorithm,
// OPTICS extraction, and the two "fast but inexact" variants — on one
// dataset and report both running time and whether the output equals exact
// DBSCAN. This is the paper's §1.1 story as a table: the fast historical
// variants are fast because they give up exactness, whereas ρ-approximate
// DBSCAN gives up only an ε-slack with a provable sandwich.

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "baselines/gf_dbscan.h"
#include "baselines/sampling_dbscan.h"
#include "bench_common.h"
#include "core/optics.h"
#include "eval/compare.h"
#include "io/table.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace adbscan;
using adbscan::bench::MakeBenchDataset;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 20000, "dataset cardinality")
      .DefineString("dataset", "ss2d", "dataset (2D so every algorithm runs)")
      .DefineDouble("eps", 0.0, "radius (0: run both default panels)")
      .DefineInt("min_pts", bench::kDefaultMinPts, "MinPts")
      .DefineDouble("rho", bench::kDefaultRho, "approximation ratio")
      .DefineInt("seed", 2025, "generator seed");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);

  const Dataset data = MakeBenchDataset(
      flags.GetString("dataset"), static_cast<size_t>(flags.GetInt("n")),
      flags.GetInt("seed"));
  const double rho = flags.GetDouble("rho");

  // Two default panels: the paper's standard parameters (well-separated
  // clusters — everything agrees) and a fine-grained setting that stresses
  // the fragile expansion order of the inexact variants.
  const int num_threads = bench::ThreadsFromFlags(flags);
  std::vector<DbscanParams> configs;
  if (flags.GetDouble("eps") > 0.0) {
    configs.push_back({flags.GetDouble("eps"),
                       static_cast<int>(flags.GetInt("min_pts")),
                       num_threads});
  } else {
    configs.push_back({bench::kDefaultEps, bench::kDefaultMinPts,
                       num_threads});
    configs.push_back({150.0, 5, num_threads});
  }

  for (const DbscanParams& params : configs) {
  std::printf(
      "Related work: time and exactness on %s (n=%zu, eps=%.0f, "
      "MinPts=%d)\n\n",
      flags.GetString("dataset").c_str(), data.size(), params.eps,
      params.min_pts);

  const Clustering reference = ExactGridDbscan(data, params);

  struct Entry {
    std::string name;
    std::string guarantee;
    std::function<Clustering()> run;
  };
  std::vector<Entry> entries;
  entries.push_back({"KDD96 [10]", "exact",
                     [&] { return Kdd96Dbscan(data, params); }});
  entries.push_back({"CIT08 [17]", "exact",
                     [&] { return GridbscanDbscan(data, params); }});
  if (data.dim() == 2) {
    entries.push_back({"Gunawan2D [11] (kd)", "exact",
                       [&] { return Gunawan2dDbscan(data, params); }});
    entries.push_back({"Gunawan2D [11] (Voronoi)", "exact", [&] {
                         Gunawan2dOptions opts;
                         opts.backend =
                             Gunawan2dOptions::NnBackend::kDelaunay;
                         return Gunawan2dDbscan(data, params, opts);
                       }});
  }
  entries.push_back({"OurExact (Thm 2)", "exact",
                     [&] { return ExactGridDbscan(data, params); }});
  entries.push_back({"OurApprox (Thm 4)", "rho-sandwich",
                     [&] { return ApproxDbscan(data, params, rho); }});
  entries.push_back({"OPTICS extract [2]", "core-exact",
                     [&] {
                       const OpticsResult o = RunOptics(data, params);
                       return ExtractDbscanClustering(data, o, params,
                                                      params.eps);
                     }});
  entries.push_back({"GF-style [26]", "none",
                     [&] { return GfStyleDbscan(data, params); }});
  entries.push_back({"Sampling [6]", "none", [&] {
                       SamplingDbscanOptions opts;
                       opts.max_seeds_per_point = 8;
                       return SamplingDbscan(data, params, opts);
                     }});

  Table t({"algorithm", "guarantee", "time", "clusters", "same as exact"});
  for (const Entry& entry : entries) {
    Timer timer;
    const Clustering c = entry.run();
    const double elapsed = timer.ElapsedSeconds();
    t.AddRow({entry.name, entry.guarantee, Table::Seconds(elapsed),
              std::to_string(c.num_clusters),
              SameClusters(reference, c) ? "yes" : "NO"});
  }
  t.Print();
  std::printf("\n");
  }  // per-config panel
  std::printf(
      "\n'core-exact': OPTICS extraction reproduces DBSCAN exactly on core\n"
      "points but assigns each border point to one cluster only; 'NO' rows\n"
      "substantiate the Section 1.1 claim that the historical fast variants\n"
      "do not compute the DBSCAN clustering.\n");
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
