// Microbenchmarks: the Lemma 5 approximate range counting structure —
// build and query cost vs exact counting, and the (1/ρ)^{d-1}
// boundary-cell effect on query time.

#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "bench_common.h"
#include "index/kdtree.h"
#include "rangecount/approx_range_counter.h"

namespace adbscan {
namespace {

std::vector<uint32_t> AllIds(const Dataset& data) {
  std::vector<uint32_t> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

void BM_RangeCountBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const double rho = 1.0 / static_cast<double>(state.range(1));
  const Dataset data = bench::MakeBenchDataset("ss3d", n, 1);
  const std::vector<uint32_t> ids = AllIds(data);
  for (auto _ : state) {
    ApproxRangeCounter counter(data, ids, bench::kDefaultEps, rho);
    benchmark::DoNotOptimize(counter.num_nodes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RangeCountBuild)
    ->Args({10000, 1000})   // rho = 0.001
    ->Args({100000, 1000})
    ->Args({100000, 10});   // rho = 0.1: far fewer levels

void BM_RangeCountQuery(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const double rho = 1.0 / static_cast<double>(state.range(1));
  const Dataset data =
      bench::MakeBenchDataset("ss" + std::to_string(dim) + "d", 100000, 1);
  const ApproxRangeCounter counter(data, AllIds(data), bench::kDefaultEps,
                                   rho);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.Query(data.point(i)));
    i = (i + 997) % data.size();
  }
}
BENCHMARK(BM_RangeCountQuery)
    ->Args({3, 1000})
    ->Args({3, 10})
    ->Args({7, 1000})
    ->Args({7, 10});

void BM_RangeCountQueryNonzero(benchmark::State& state) {
  // The edge-test workload of the ρ-approximate algorithm: existence only.
  const Dataset data = bench::MakeBenchDataset("ss3d", 100000, 1);
  const ApproxRangeCounter counter(data, AllIds(data), bench::kDefaultEps,
                                   0.001);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(counter.QueryNonzero(data.point(i)));
    i = (i + 997) % data.size();
  }
}
BENCHMARK(BM_RangeCountQueryNonzero);

void BM_ExactCountViaKdTree(benchmark::State& state) {
  // Baseline the approximate counter competes with.
  const Dataset data = bench::MakeBenchDataset("ss3d", 100000, 1);
  const KdTree tree(data);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.CountInBall(data.point(i), bench::kDefaultEps, SIZE_MAX));
    i = (i + 997) % data.size();
  }
}
BENCHMARK(BM_ExactCountViaKdTree);

}  // namespace
}  // namespace adbscan

BENCHMARK_MAIN();
