// Figure 8: the 2D seed-spreader example dataset (n = 1000, 4 restarts).
//
// Regenerates the dataset, reports its structure (restart count, DBSCAN
// cluster count at the Figure 9 baseline parameters), and writes a labeled
// CSV for plotting.

#include <cstdio>

#include "bench_common.h"
#include "core/exact_grid.h"
#include "gen/seed_spreader.h"
#include "io/dataset_io.h"
#include "io/table.h"
#include "util/flags.h"

using namespace adbscan;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 1000, "dataset cardinality")
      .DefineInt("seed", 1201, "generator seed")
      .DefineString("out", "out/fig08_dataset.csv",
                    "labeled CSV output (empty to skip)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per run (empty: off)");
  adbscan::bench::DefineThreadsFlag(flags);
  adbscan::bench::DefineKernelFlag(flags);
  adbscan::bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = adbscan::bench::ApplyTraceFlag(flags);
  adbscan::bench::ApplyKernelFlag(flags);
  adbscan::bench::MetricsLogger metrics(flags.GetString("metrics_json"),
                                        "fig08_seed_spreader");

  SeedSpreaderParams p;
  p.dim = 2;
  p.n = static_cast<size_t>(flags.GetInt("n"));
  p.forced_restart_every = p.n / 4;  // exactly 4 restarts, as in the paper
  p.noise_fraction = 0.0;
  size_t restarts = 0;
  const Dataset data =
      GenerateSeedSpreader(p, flags.GetInt("seed"), &restarts);

  const DbscanParams params{5000.0, 20,
                            adbscan::bench::ThreadsFromFlags(flags)};
  metrics.BeginRun();
  Timer timer;
  const Clustering c = ExactGridDbscan(data, params);
  metrics.EndRun("ss2d_fig08", "OurExact",
                 {{"n", std::to_string(data.size())},
                  {"eps", adbscan::bench::ParamNum(params.eps)},
                  {"min_pts", std::to_string(params.min_pts)}},
                 timer.ElapsedSeconds());

  std::printf("Figure 8: 2D seed spreader dataset\n");
  Table t({"quantity", "value"});
  t.AddRow({"n", std::to_string(data.size())});
  t.AddRow({"restarts (= generated clusters)", std::to_string(restarts)});
  t.AddRow({"DBSCAN clusters (eps=5000, MinPts=20)",
            std::to_string(c.num_clusters)});
  t.AddRow({"core points", std::to_string(c.NumCorePoints())});
  t.AddRow({"noise points", std::to_string(c.NumNoisePoints())});
  t.Print();

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    adbscan::bench::EnsureParentDir(out);
    WriteLabeledCsv(data, c, out);
    std::printf("\nlabeled dataset written to %s (x,y,cluster)\n",
                out.c_str());
  }
  std::printf(
      "\nPaper reference: Figure 8 shows 4 snake-shaped clusters generated\n"
      "by a random walk with restart; the clustering above recovers the\n"
      "same number of groups.\n");
  if (!trace_path.empty()) adbscan::obs::ExportTrace(trace_path);
  return 0;
}
