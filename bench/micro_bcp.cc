// Microbenchmarks: the BCP decision procedure (Section 3.2's edge test) —
// brute force vs kd-tree pruning, and the effect of the answer (pair
// within ε or not) on early exit.

#include <benchmark/benchmark.h>

#include <vector>

#include "bcp/bcp.h"
#include "bench_common.h"
#include "gen/uniform.h"

namespace adbscan {
namespace {

// Two point groups at a controllable gap (in units of eps).
struct TwoGroups {
  Dataset data{3};
  std::vector<uint32_t> a, b;
};

TwoGroups MakeGroups(size_t per_side, double gap_in_eps) {
  TwoGroups g;
  const double eps = 100.0;
  const double center_a[] = {0.0, 0.0, 0.0};
  const double center_b[] = {gap_in_eps * eps + 100.0, 0.0, 0.0};
  const Dataset da = GenerateUniformBall(3, per_side, center_a, 50.0, 1);
  const Dataset db = GenerateUniformBall(3, per_side, center_b, 50.0, 2);
  for (size_t i = 0; i < da.size(); ++i) g.a.push_back(g.data.Add(da.point(i)));
  for (size_t i = 0; i < db.size(); ++i) g.b.push_back(g.data.Add(db.point(i)));
  return g;
}

void BM_BcpDecisionClosePair(benchmark::State& state) {
  // Groups overlap: a witness pair exists and early exit fires fast.
  const TwoGroups g = MakeGroups(static_cast<size_t>(state.range(0)), -1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExistsPairWithin(g.data, g.a, g.b, 100.0));
  }
}
BENCHMARK(BM_BcpDecisionClosePair)->Arg(32)->Arg(1000)->Arg(10000);

void BM_BcpDecisionFarPair(benchmark::State& state) {
  // Groups far apart: the decision must prove absence (worst case).
  const TwoGroups g = MakeGroups(static_cast<size_t>(state.range(0)), 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ExistsPairWithin(g.data, g.a, g.b, 100.0));
  }
}
BENCHMARK(BM_BcpDecisionFarPair)->Arg(32)->Arg(1000)->Arg(10000);

void BM_BcpExactPair(benchmark::State& state) {
  const TwoGroups g = MakeGroups(static_cast<size_t>(state.range(0)), 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BichromaticClosestPair(g.data, g.a, g.b));
  }
}
BENCHMARK(BM_BcpExactPair)->Arg(32)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace adbscan

BENCHMARK_MAIN();
