// Sharded-clustering benchmark + out-of-core demonstration.
//
// Bench mode (default): for each dataset, times the monolithic ApproxDbscan
// run and ShardedApproxDbscan at each --shard_counts value, verifies every
// sharded clustering bit-identical to the monolithic one, and writes
// BENCH_shard.json with per-configuration wall times, the sharded/mono
// ratio, and the halo/residency overheads the planner actually paid.
//
//   ./build/bench/micro_shard                            # defaults
//   ./build/bench/micro_shard --datasets=ss3d --n=200000 --shard_counts=4,16
//
// OOM demo mode (--oom_demo): demonstrates the out-of-core claim of
// DESIGN.md "Sharded clustering" — at a data-segment cap (RLIMIT_DATA,
// --limit_mb) the in-RAM loader cannot even materialize the points, while
// the sharded pipeline over an mmap-backed dataset completes, because its
// resident set is one shard's working set rather than n. Three steps, run
// as separate invocations so the generator is never under the cap:
//
//   ./build/bench/micro_shard --oom_demo=write   --n=2000000 ...
//   ./build/bench/micro_shard --oom_demo=inram   --limit_mb=32   # exits 0
//       iff the capped in-RAM load FAILS (the demonstrated behavior)
//   ./build/bench/micro_shard --oom_demo=sharded --limit_mb=32   # exits 0
//       iff the capped sharded+mmap run SUCCEEDS

#include <sys/resource.h>

#include <cstdio>
#include <new>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "io/dataset_io.h"
#include "io/table.h"
#include "obs/json.h"
#include "shard/sharded_dbscan.h"
#include "util/timer.h"

namespace adbscan {
namespace {

struct Result {
  std::string op;
  std::string dataset;
  int dim;
  size_t n;
  int shards;  // 1 = monolithic row
  double ms;
  double speedup_vs_mono;  // mono ms / this ms (1.0 for the mono row)
  size_t halo_points;
  size_t peak_points;  // largest owned+halo working set (n for mono)
  size_t cross_edges;
};

void WriteJson(const std::string& path, const std::vector<Result>& results) {
  bench::EnsureParentDir(path);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_shard\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"op\": \"%s\", \"dataset\": \"%s\", \"dim\": %d, \"n\": %zu, "
        "\"shards\": %d, \"ms\": %s, \"speedup_vs_mono\": %s, "
        "\"halo_points\": %zu, \"peak_points\": %zu, \"cross_edges\": %zu}%s\n",
        r.op.c_str(), r.dataset.c_str(), r.dim, r.n, r.shards,
        obs::JsonNumber(r.ms).c_str(),
        obs::JsonNumber(r.speedup_vs_mono).c_str(), r.halo_points,
        r.peak_points, r.cross_edges, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("wrote %s\n", path.c_str());
}

bool SameClustering(const Clustering& a, const Clustering& b) {
  return a.num_clusters == b.num_clusters && a.label == b.label &&
         a.is_core == b.is_core &&
         a.extra_memberships == b.extra_memberships;
}

// Caps the process data segment (heap + private writable mappings); the
// read-only file-backed mapping of --oom_demo=sharded is exempt, which is
// precisely the asymmetry the demo exploits.
void CapDataSegment(size_t limit_mb) {
  struct rlimit lim;
  lim.rlim_cur = lim.rlim_max = static_cast<rlim_t>(limit_mb) << 20;
  if (setrlimit(RLIMIT_DATA, &lim) != 0) {
    std::perror("setrlimit(RLIMIT_DATA)");
    std::exit(2);
  }
}

int RunOomDemo(const std::string& mode, const std::string& demo_file,
               const std::string& dataset, size_t n, size_t limit_mb,
               int demo_shards, const DbscanParams& params, double rho) {
  if (mode == "write") {
    const Dataset data = bench::MakeBenchDataset(dataset, n, 1);
    bench::EnsureParentDir(demo_file);
    WriteBinary(data, demo_file);
    std::printf("oom_demo: wrote %zu points in %dD (%zu MiB payload) to %s\n",
                data.size(), data.dim(),
                (data.size() * data.dim() * sizeof(double)) >> 20,
                demo_file.c_str());
    return 0;
  }
  if (mode == "inram") {
    CapDataSegment(limit_mb);
    std::string error;
    bool loaded = false;
    try {
      std::optional<Dataset> data = TryReadBinary(demo_file, &error);
      loaded = data.has_value();
      if (!loaded) std::printf("oom_demo: in-RAM load error: %s\n",
                               error.c_str());
    } catch (const std::bad_alloc&) {
      std::printf("oom_demo: in-RAM load threw bad_alloc under a %zu MiB "
                  "data cap, as expected\n", limit_mb);
    }
    if (loaded) {
      std::fprintf(stderr,
                   "oom_demo: in-RAM load SUCCEEDED under the %zu MiB cap — "
                   "raise --n or lower --limit_mb for a meaningful demo\n",
                   limit_mb);
      return 1;
    }
    return 0;
  }
  if (mode == "sharded") {
    CapDataSegment(limit_mb);
    std::string error;
    std::optional<Dataset> data = TryMapBinary(demo_file, &error);
    if (!data.has_value()) {
      std::fprintf(stderr, "oom_demo: mmap load failed: %s\n", error.c_str());
      return 1;
    }
    Timer timer;
    ShardedRunStats stats;
    const Clustering result =
        ShardedApproxDbscan(*data, params, rho, demo_shards, {}, &stats);
    std::printf(
        "oom_demo: sharded run over %zu mmapped points finished under a "
        "%zu MiB data cap: %d clusters, %d shards, peak resident %zu points "
        "(%.1f%% of n), %.3fs\n",
        data->size(), limit_mb, result.num_clusters, stats.num_shards,
        stats.max_resident_points,
        100.0 * double(stats.max_resident_points) / double(data->size()),
        timer.ElapsedSeconds());
    return 0;
  }
  std::fprintf(stderr, "unknown --oom_demo '%s' (want write|inram|sharded)\n",
               mode.c_str());
  return 2;
}

}  // namespace
}  // namespace adbscan

int main(int argc, char** argv) {
  using namespace adbscan;
  Flags flags;
  flags.DefineString("datasets", "ss3d,ss5d",
                     "comma-separated dataset names (see bench_common.h)")
      .DefineInt("n", 100000, "points per dataset")
      .DefineDouble("eps", bench::kDefaultEps, "DBSCAN radius")
      .DefineInt("min_pts", bench::kDefaultMinPts, "DBSCAN MinPts")
      .DefineDouble("rho", bench::kDefaultRho, "approximation parameter")
      .DefineString("shard_counts", "2,4,8",
                    "comma-separated shard counts to benchmark")
      .DefineString("out", "",
                    "output JSON path (default out/BENCH_shard.json)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per measured run "
                    "(empty: off)")
      .DefineString("oom_demo", "",
                    "out-of-core demo step: write | inram | sharded "
                    "(empty: bench mode)")
      .DefineString("demo_file", "",
                    "binary dataset path for the demo steps (default "
                    "out/shard_demo.bin)")
      .DefineInt("limit_mb", 64, "RLIMIT_DATA cap for the demo steps, MiB")
      .DefineInt("demo_shards", 8, "shard count for --oom_demo=sharded");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);
  const size_t n = static_cast<size_t>(flags.GetInt("n"));
  const double rho = flags.GetDouble("rho");
  DbscanParams params{flags.GetDouble("eps"),
                      static_cast<int>(flags.GetInt("min_pts")),
                      bench::ThreadsFromFlags(flags)};

  const std::string oom_demo = flags.GetString("oom_demo");
  if (!oom_demo.empty()) {
    std::string demo_file = flags.GetString("demo_file");
    if (demo_file.empty()) demo_file = bench::OutPath("shard_demo.bin");
    const std::string dataset =
        bench::SplitNames(flags.GetString("datasets")).front();
    return RunOomDemo(oom_demo, demo_file, dataset, n,
                      static_cast<size_t>(flags.GetInt("limit_mb")),
                      static_cast<int>(flags.GetInt("demo_shards")), params,
                      rho);
  }

  std::vector<int> shard_counts;
  for (const std::string& s :
       bench::SplitNames(flags.GetString("shard_counts"))) {
    const int k = std::atoi(s.c_str());
    if (k < 2) {
      std::fprintf(stderr, "--shard_counts entries must be >= 2 (got '%s')\n",
                   s.c_str());
      return 2;
    }
    shard_counts.push_back(k);
  }
  std::string out = flags.GetString("out");
  if (out.empty()) out = bench::OutPath("BENCH_shard.json");
  bench::MetricsLogger logger(flags.GetString("metrics_json"), "micro_shard");

  std::vector<Result> results;
  Table table({"dataset", "shards", "ms", "vs_mono", "halo_pts", "peak_pts"});

  for (const std::string& name :
       bench::SplitNames(flags.GetString("datasets"))) {
    const Dataset data = bench::MakeBenchDataset(name, n, 1);
    const int dim = data.dim();

    // Warmup run (also primes the thread pool), then the measured mono run.
    const Clustering reference = ApproxDbscan(data, params, rho);
    logger.BeginRun();
    Timer mono_timer;
    const Clustering mono = ApproxDbscan(data, params, rho);
    const double mono_ms = mono_timer.ElapsedSeconds() * 1000.0;
    logger.EndRun(name, "mono",
                  {{"n", std::to_string(n)},
                   {"shards", "1"},
                   {"min_pts", std::to_string(params.min_pts)},
                   {"eps", bench::ParamNum(params.eps)},
                   {"rho", bench::ParamNum(rho)}},
                  mono_ms / 1000.0);
    if (!SameClustering(reference, mono)) {
      std::fprintf(stderr, "FATAL: monolithic run is not deterministic (%s)\n",
                   name.c_str());
      return 1;
    }
    results.push_back({"cluster", name, dim, n, 1, mono_ms, 1.0, 0, n, 0});
    table.AddRow({name, "1", Table::Num(mono_ms, 2), Table::Num(1.0, 2),
                  "0", std::to_string(n)});

    for (int k : shard_counts) {
      logger.BeginRun();
      Timer timer;
      ShardedRunStats stats;
      const Clustering sharded =
          ShardedApproxDbscan(data, params, rho, k, {}, &stats);
      const double ms = timer.ElapsedSeconds() * 1000.0;
      logger.EndRun(name, "sharded",
                    {{"n", std::to_string(n)},
                     {"shards", std::to_string(k)},
                     {"min_pts", std::to_string(params.min_pts)},
                     {"eps", bench::ParamNum(params.eps)},
                     {"rho", bench::ParamNum(rho)}},
                    ms / 1000.0);
      if (!SameClustering(mono, sharded)) {
        std::fprintf(stderr,
                     "FATAL: sharded clustering diverged from monolithic "
                     "(%s, %d shards)\n",
                     name.c_str(), k);
        return 1;
      }
      results.push_back({"cluster", name, dim, n, k, ms, mono_ms / ms,
                         stats.halo_points, stats.max_resident_points,
                         stats.cross_edges});
      table.AddRow({name, std::to_string(k), Table::Num(ms, 2),
                    Table::Num(mono_ms / ms, 2),
                    std::to_string(stats.halo_points),
                    std::to_string(stats.max_resident_points)});
    }
  }

  table.Print();
  WriteJson(out, results);
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
