// Figure 9 (panels a-l): exact DBSCAN vs ρ-approximate DBSCAN on the 2D
// seed-spreader dataset, at three radii and three approximation ratios
// (MinPts = 20).
//
// The paper's panels show cluster colorings; this harness prints, per
// panel, the number of clusters found and whether the approximate result is
// identical to exact DBSCAN, and (optionally) writes each panel's labeled
// CSV. The paper's qualitative findings to reproduce:
//   - eps = 5000 (stable): all rho values return exactly the exact clusters;
//   - eps = 11300: rho = 0.001 / 0.01 match exact; rho = 0.1 merges two
//     clusters;
//   - eps = 12200 (unstable, near the 2->1 collapse): only rho = 0.001
//     still matches.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/approx_dbscan.h"
#include "core/exact_grid.h"
#include "eval/collapse.h"
#include "eval/compare.h"
#include "gen/seed_spreader.h"
#include "io/dataset_io.h"
#include "io/table.h"
#include "util/flags.h"

using namespace adbscan;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 1000, "dataset cardinality")
      .DefineInt("seed", 1201, "generator seed")
      .DefineInt("min_pts", 20, "MinPts")
      .DefineString("eps", "", "comma list of radii (default: paper values)")
      .DefineBool("write_csv", false, "write one labeled CSV per panel")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per run (empty: off)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);
  bench::MetricsLogger metrics(flags.GetString("metrics_json"),
                               "fig09_visualization");
  const int num_threads = bench::ThreadsFromFlags(flags);

  SeedSpreaderParams p;
  p.dim = 2;
  p.n = static_cast<size_t>(flags.GetInt("n"));
  p.forced_restart_every = p.n / 4;
  p.noise_fraction = 0.0;
  const Dataset data = GenerateSeedSpreader(p, flags.GetInt("seed"));
  const int min_pts = static_cast<int>(flags.GetInt("min_pts"));

  // The paper uses 5000 / 11300 / 12200 on its instance: one stable radius
  // plus two radii just below that instance's final merge boundary (12203
  // there). Those boundaries are instance-specific, so by default locate
  // this instance's single-cluster collapse radius B and test at 0.4·B
  // (stable), 0.95·B (inside the 10% band: rho=0.1 may deviate), and
  // 0.9995·B (inside the 1% band: rho=0.01 may deviate too) — the same
  // construction the paper's values follow.
  std::vector<double> eps_values = flags.GetDoubleList("eps");
  if (flags.GetString("eps").empty()) {
    CollapseOptions copts;
    copts.eps_lo = 500.0;
    copts.use_approx = false;
    copts.iterations = 32;
    copts.num_threads = num_threads;
    const double collapse = FindCollapsingRadius(data, min_pts, copts);
    std::printf("(collapse to one cluster at eps ~ %.0f)\n", collapse);
    eps_values = {0.4 * collapse, 0.95 * collapse, 0.9995 * collapse};
  }
  const double rhos[] = {0.001, 0.01, 0.1};

  std::printf("Figure 9: exact vs rho-approximate clusters (MinPts=%d)\n",
              min_pts);
  Table t({"eps", "algorithm", "clusters", "same as exact"});
  char panel = 'a';
  for (double eps : eps_values) {
    const DbscanParams params{eps, min_pts, num_threads};
    metrics.BeginRun();
    Timer exact_timer;
    const Clustering exact = ExactGridDbscan(data, params);
    metrics.EndRun("ss2d_fig09", "OurExact",
                   {{"n", std::to_string(data.size())},
                    {"eps", bench::ParamNum(eps)},
                    {"min_pts", std::to_string(min_pts)}},
                   exact_timer.ElapsedSeconds());
    t.AddRow({Table::Num(eps, 6), "exact DBSCAN",
              std::to_string(exact.num_clusters), "-"});
    if (flags.GetBool("write_csv")) {
      WriteLabeledCsv(data, exact,
                      bench::OutPath(std::string("fig09_") + panel +
                                     "_exact.csv"));
    }
    ++panel;
    for (double rho : rhos) {
      metrics.BeginRun();
      Timer approx_timer;
      const Clustering approx = ApproxDbscan(data, params, rho);
      metrics.EndRun("ss2d_fig09", "OurApprox",
                     {{"n", std::to_string(data.size())},
                      {"eps", bench::ParamNum(eps)},
                      {"min_pts", std::to_string(min_pts)},
                      {"rho", bench::ParamNum(rho)}},
                     approx_timer.ElapsedSeconds());
      const bool same = SameClusters(exact, approx);
      t.AddRow({Table::Num(eps, 6), "rho=" + Table::Num(rho),
                std::to_string(approx.num_clusters), same ? "yes" : "NO"});
      if (flags.GetBool("write_csv")) {
        WriteLabeledCsv(data, approx,
                        bench::OutPath(std::string("fig09_") + panel +
                                       "_approx.csv"));
      }
      ++panel;
    }
  }
  t.Print();
  std::printf(
      "\nExpected shape (paper, Fig. 9): at the stable radius every rho\n"
      "matches exact; near merge boundaries large rho (0.1, then 0.01)\n"
      "deviates while rho=0.001 keeps matching.\n");
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
