// Figure 13 (a-b): running time of OurApprox as a function of the
// approximation ratio ρ, on the SS 3D/5D/7D datasets and the three
// real-dataset stand-ins (eps = 5000).
//
// Expected shape: cost decreases as ρ grows (fewer hierarchy levels and
// earlier query termination in the Lemma 5 structures).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/approx_dbscan.h"
#include "io/table.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace adbscan;
using adbscan::bench::MakeBenchDataset;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 50000, "points per dataset (paper: 2m+)")
      .DefineDouble("eps", bench::kDefaultEps, "radius")
      .DefineInt("min_pts", bench::kDefaultMinPts, "MinPts")
      .DefineString("rhos", "0.001,0.01,0.02,0.04,0.06,0.08,0.1",
                    "comma list of rho values")
      .DefineString("datasets", "ss3d,ss5d,ss7d,pamap2,farm,household",
                    "datasets to sweep")
      .DefineInt("seed", 2025, "generator seed")
      .DefineBool("full", false, "paper-scale n (2m)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per run (empty: off)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);

  const size_t n = flags.GetBool("full")
                       ? 2000000
                       : static_cast<size_t>(flags.GetInt("n"));
  const DbscanParams params{flags.GetDouble("eps"),
                            static_cast<int>(flags.GetInt("min_pts")),
                            bench::ThreadsFromFlags(flags)};
  const std::vector<double> rhos = flags.GetDoubleList("rhos");
  bench::MetricsLogger metrics(flags.GetString("metrics_json"),
                               "fig13_vary_rho");

  std::printf(
      "Figure 13: OurApprox running time vs rho (n=%zu, eps=%.0f, "
      "MinPts=%d)\n\n",
      n, params.eps, params.min_pts);

  std::vector<std::string> header{"dataset"};
  for (double rho : rhos) header.push_back("rho=" + Table::Num(rho));
  Table t(header);
  for (const std::string& name :
       bench::SplitNames(flags.GetString("datasets"))) {
    const Dataset data = MakeBenchDataset(name, n, flags.GetInt("seed"));
    std::vector<std::string> row{name};
    for (double rho : rhos) {
      metrics.BeginRun();
      Timer timer;
      (void)ApproxDbscan(data, params, rho);
      const double elapsed = timer.ElapsedSeconds();
      metrics.EndRun(name, "OurApprox",
                     {{"n", std::to_string(n)},
                      {"eps", bench::ParamNum(params.eps)},
                      {"min_pts", std::to_string(params.min_pts)},
                      {"rho", bench::ParamNum(rho)}},
                     elapsed);
      row.push_back(Table::Seconds(elapsed));
    }
    t.AddRow(row);
  }
  t.Print();
  std::printf(
      "\nExpected shape (paper, Fig. 13): running time decreases as rho\n"
      "increases (less precision demanded).\n");
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
