// Figure 10 (a-f): the "maximum legal ρ" as a function of ε for the three
// seed-spreader dimensionalities and the three real-dataset stand-ins.
//
// For each ε between 5000 and the dataset's collapsing radius, compute the
// largest ρ at which ρ-approximate DBSCAN returns exactly the exact DBSCAN
// clusters. The paper reports a sawtooth: much larger than 0.1 at most ε
// (plotted as the cap here), dipping only in tiny unstable ε ranges — which
// is the argument for recommending ρ = 0.001.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/exact_grid.h"
#include "eval/collapse.h"
#include "eval/compare.h"
#include "io/table.h"
#include "util/flags.h"

using namespace adbscan;
using adbscan::bench::MakeBenchDataset;

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 20000, "points per dataset (paper: 2m-3.9m)")
      .DefineInt("steps", 8, "number of eps values per dataset")
      .DefineInt("min_pts", bench::kDefaultMinPts, "MinPts")
      .DefineDouble("rho_cap", 0.2, "upper bound of the rho search")
      .DefineString("datasets", "ss3d,ss5d,ss7d,pamap2,farm,household",
                    "comma list of datasets")
      .DefineInt("seed", 2025, "generator seed")
      .DefineBool("full", false, "paper-scale n (2m); very slow")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per run (empty: off)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);

  const size_t n = flags.GetBool("full")
                       ? 2000000
                       : static_cast<size_t>(flags.GetInt("n"));
  const int min_pts = static_cast<int>(flags.GetInt("min_pts"));
  const int steps = static_cast<int>(flags.GetInt("steps"));
  const int num_threads = bench::ThreadsFromFlags(flags);
  bench::MetricsLogger metrics(flags.GetString("metrics_json"),
                               "fig10_max_legal_rho");

  std::printf("Figure 10: maximum legal rho vs eps (n=%zu, MinPts=%d)\n", n,
              min_pts);
  std::printf("(values at the cap %.3g mean 'well above 0.1', as in the "
              "paper's off-chart points)\n\n",
              flags.GetDouble("rho_cap"));

  const std::vector<std::string> datasets =
      bench::SplitNames(flags.GetString("datasets"));

  for (const std::string& name : datasets) {
    const Dataset data = MakeBenchDataset(name, n, flags.GetInt("seed"));
    CollapseOptions copts;
    copts.eps_lo = 1000.0;
    copts.num_threads = num_threads;
    const double collapse = FindCollapsingRadius(data, min_pts, copts);
    const double eps_lo = std::min(5000.0, collapse * 0.5);

    std::printf("--- %s (d=%d, collapsing radius ~ %.0f) ---\n",
                name.c_str(), data.dim(), collapse);
    Table t({"eps", "max legal rho", "exact clusters"});
    for (int s = 0; s < steps; ++s) {
      const double eps =
          eps_lo + (collapse - eps_lo) * static_cast<double>(s) /
                       std::max(1, steps - 1);
      const DbscanParams params{eps, min_pts, num_threads};
      metrics.BeginRun();
      Timer exact_timer;
      const Clustering exact = ExactGridDbscan(data, params);
      metrics.EndRun(name, "OurExact",
                     {{"n", std::to_string(n)},
                      {"eps", bench::ParamNum(eps)},
                      {"min_pts", std::to_string(min_pts)}},
                     exact_timer.ElapsedSeconds());
      MaxLegalRhoOptions mopts;
      mopts.rho_hi = flags.GetDouble("rho_cap");
      const double max_rho = MaxLegalRho(data, params, exact, mopts);
      t.AddRow({Table::Num(eps, 6), Table::Num(max_rho, 4),
                std::to_string(exact.num_clusters)});
    }
    t.Print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper, Fig. 10): sawtooth — max legal rho far above\n"
      "0.1 for most eps, dipping near cluster-merge boundaries; rho=0.001\n"
      "legal almost everywhere.\n");
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
