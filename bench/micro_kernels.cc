// Microbenchmark of the batched distance kernels (geom/kernels.h): times the
// one-vs-many and block-vs-block kernels for every kernel kind this machine
// supports, across dimensionalities and batch sizes, and writes
// BENCH_kernels.json with per-configuration ns/distance and the speedup of
// each SIMD path over the scalar reference.
//
//   ./build/bench/micro_kernels                        # defaults
//   ./build/bench/micro_kernels --dims=5 --batches=4096 --out=BENCH.json

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "geom/kernels.h"
#include "geom/soa.h"
#include "io/table.h"
#include "obs/json.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adbscan {
namespace {

using simd::KernelKind;
using simd::PaddedCount;
using simd::SoaBlock;

// Uniform random points; coordinates sized so distances stay finite.
Dataset BenchPoints(int dim, size_t n, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(n);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) p[j] = rng.NextDouble(0.0, 1e4);
    data.Add(p);
  }
  return data;
}

std::vector<KernelKind> SupportedKernels() {
  std::vector<KernelKind> kinds{KernelKind::kScalar};
  for (KernelKind k : {KernelKind::kAvx2, KernelKind::kNeon}) {
    if (simd::KernelSupported(k)) kinds.push_back(k);
  }
  return kinds;
}

struct Result {
  std::string op;
  int dim;
  size_t batch;
  std::string kernel;
  double ns_per_dist;
  uint64_t reps;
  double speedup_vs_scalar;  // 1.0 for the scalar rows
};

// Calibrated measurement via bench::MeasureMs, converted to ns per inner
// distance. `dists_per_call` is how many distances one fn() computes.
template <typename Fn>
std::pair<uint64_t, double> Measure(double min_ms, size_t dists_per_call,
                                    double* checksum, Fn&& fn) {
  auto [reps, ms] =
      bench::MeasureMs(min_ms, checksum, static_cast<Fn&&>(fn));
  return {reps, ms * 1e6 / static_cast<double>(dists_per_call)};
}

void WriteJson(const std::string& path, const std::vector<Result>& results) {
  bench::EnsureParentDir(path);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_kernels\",\n");
  std::fprintf(f, "  \"auto_kernel\": \"%s\",\n",
               simd::KernelName(simd::ActiveKernel()));
  std::fprintf(f, "  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"op\": \"%s\", \"dim\": %d, \"batch\": %zu, "
        "\"kernel\": \"%s\", \"ns_per_dist\": %s, \"reps\": %llu, "
        "\"speedup_vs_scalar\": %s}%s\n",
        r.op.c_str(), r.dim, r.batch, r.kernel.c_str(),
        obs::JsonNumber(r.ns_per_dist).c_str(),
        static_cast<unsigned long long>(r.reps),
        obs::JsonNumber(r.speedup_vs_scalar).c_str(),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace adbscan

int main(int argc, char** argv) {
  using namespace adbscan;
  Flags flags;
  flags.DefineString("dims", "2,3,5,7,10", "dimensionalities to measure")
      .DefineString("batches", "16,256,4096", "points per one-vs-many batch")
      .DefineInt("block_rows", 32, "query rows per block-vs-block tile")
      .DefineDouble("min_ms", 50.0, "minimum measured wall time per config")
      .DefineString("out", "", "output JSON path (default out/BENCH_kernels.json)");
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  const double min_ms = flags.GetDouble("min_ms");
  const size_t block_rows =
      static_cast<size_t>(flags.GetInt("block_rows"));
  std::string out = flags.GetString("out");
  if (out.empty()) out = bench::OutPath("BENCH_kernels.json");

  // kAuto resolution reported in the JSON; each measurement below forces an
  // explicit kind.
  simd::SetKernel(KernelKind::kAuto);
  const KernelKind auto_kind = simd::ActiveKernel();

  std::vector<Result> results;
  Table table({"op", "dim", "batch", "kernel", "ns/dist", "speedup"});
  double checksum = 0.0;

  for (int64_t dim64 : flags.GetIntList("dims")) {
    const int dim = static_cast<int>(dim64);
    for (int64_t batch64 : flags.GetIntList("batches")) {
      const size_t batch = static_cast<size_t>(batch64);
      const Dataset data = BenchPoints(dim, batch + 1, 4200 + dim);
      const SoaBlock block(data);
      const simd::SoaSpan span{block.span().base, block.stride(), dim, batch};
      const double* q = data.point(batch);  // the +1 point is the query
      std::vector<double> one_out(PaddedCount(batch));

      const size_t rows = std::min(block_rows, batch);
      const Dataset rows_data = BenchPoints(dim, rows, 4300 + dim);
      const SoaBlock rows_block(rows_data);
      std::vector<double> block_out(rows * PaddedCount(batch));

      double scalar_one_ns = 0.0;
      double scalar_block_ns = 0.0;
      for (KernelKind kind : SupportedKernels()) {
        ADB_CHECK(simd::SetKernel(kind));
        const std::string kname = simd::KernelName(kind);

        auto [one_reps, one_ns] =
            Measure(min_ms, batch, &checksum, [&] {
              simd::SquaredDists(q, span, one_out.data());
              return one_out[0];
            });
        if (kind == KernelKind::kScalar) scalar_one_ns = one_ns;
        results.push_back({"one_vs_many", dim, batch, kname, one_ns, one_reps,
                           scalar_one_ns / one_ns});

        auto [blk_reps, blk_ns] =
            Measure(min_ms, rows * batch, &checksum, [&] {
              simd::BlockVsBlock(rows_block.span(), span, block_out.data());
              return block_out[0];
            });
        if (kind == KernelKind::kScalar) scalar_block_ns = blk_ns;
        results.push_back({"block_vs_block", dim, batch, kname, blk_ns,
                           blk_reps, scalar_block_ns / blk_ns});

        table.AddRow({"one_vs_many", std::to_string(dim),
                      std::to_string(batch), kname, Table::Num(one_ns),
                      Table::Num(scalar_one_ns / one_ns)});
        table.AddRow({"block_vs_block", std::to_string(dim),
                      std::to_string(batch), kname, Table::Num(blk_ns),
                      Table::Num(scalar_block_ns / blk_ns)});
      }
    }
  }
  simd::SetKernel(auto_kind);

  table.Print(stdout);
  std::printf("(checksum %.3g)\n", checksum);
  WriteJson(out, results);
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
