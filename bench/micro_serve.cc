// Serving-layer load benchmark: N concurrent tenant sessions ingesting
// deterministic update streams through the SessionManager (async queues +
// background drainer + epoch snapshots), versus the same total work applied
// to plain solo DynamicClusterer instances with no serving machinery.
//
// Reported per configuration:
//   - serve_wall_ms / direct_wall_ms and their ratio `efficiency`
//     (direct/serve, higher is better, ~1.0 = the serving layer adds no
//     overhead beyond the clustering itself). Machine-independent enough to
//     gate in CI (tools/bench_compare --metrics=efficiency).
//   - sustained updates/sec across all sessions during the serve phase.
//   - p50/p95/p99 snapshot-query latency, measured on reads issued while
//     the background drainer is applying batches (the reads-never-block
//     property under real write load).
//
// Every session's final labels are verified bit-identical to its solo
// replay before anything is written — a mismatch is a hard failure.
//
//   ./build/bench/micro_serve                           # defaults
//   ./build/bench/micro_serve --sessions=8 --n=20000 --out=BENCH_serve.json

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "io/table.h"
#include "obs/json.h"
#include "serve/session_manager.h"
#include "stream/dynamic_clusterer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adbscan {
namespace {

struct OpBatch {
  std::vector<double> coords;
  std::vector<uint32_t> removes;
};

struct Result {
  std::string dataset;
  int dim;
  size_t n;  // points per session
  size_t sessions;
  size_t total_ops;
  double serve_wall_ms;
  double direct_wall_ms;
  double efficiency;  // direct / serve, higher is better
  double updates_per_sec;
  size_t queries;
  double query_p50_ms;
  double query_p95_ms;
  double query_p99_ms;
};

double Quantile(std::vector<double> sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * double(sorted.size() - 1));
  return sorted[idx];
}

// Deterministic per-session update stream: batches of `batch` fresh points
// from the pool slice, each followed (after warm-up) by a wave tombstoning
// a quarter of the batch among the session's survivors. Identical replay
// input for the serve and the direct phase.
std::vector<OpBatch> MakeStream(const Dataset& pool, size_t first,
                                size_t n, size_t batch, uint64_t seed) {
  const int dim = pool.dim();
  std::vector<OpBatch> stream;
  std::vector<uint32_t> alive;
  Rng rng(seed);
  uint32_t next_id = 0;
  for (size_t produced = 0; produced < n;) {
    const size_t take = std::min(batch, n - produced);
    OpBatch b;
    b.coords.reserve(take * dim);
    for (size_t i = 0; i < take; ++i) {
      const double* p = pool.point(first + produced + i);
      b.coords.insert(b.coords.end(), p, p + dim);
    }
    const size_t n_remove = alive.empty() ? 0 : take / 4;
    for (size_t i = 0; i < n_remove; ++i) {
      const size_t pick = rng.NextBounded(alive.size());
      b.removes.push_back(alive[pick]);
      alive[pick] = alive.back();
      alive.pop_back();
    }
    for (size_t i = 0; i < take; ++i) {
      alive.push_back(next_id + static_cast<uint32_t>(i));
    }
    next_id += static_cast<uint32_t>(take);
    produced += take;
    stream.push_back(std::move(b));
  }
  return stream;
}

void WriteJson(const std::string& path, const std::vector<Result>& results) {
  bench::EnsureParentDir(path);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_serve\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"dataset\": \"%s\", \"dim\": %d, \"n\": %zu, "
        "\"sessions\": %zu, \"total_ops\": %zu, \"serve_wall_ms\": %s, "
        "\"direct_wall_ms\": %s, \"efficiency\": %s, "
        "\"updates_per_sec\": %s, \"queries\": %zu, \"query_p50_ms\": %s, "
        "\"query_p95_ms\": %s, \"query_p99_ms\": %s}%s\n",
        r.dataset.c_str(), r.dim, r.n, r.sessions, r.total_ops,
        obs::JsonNumber(r.serve_wall_ms).c_str(),
        obs::JsonNumber(r.direct_wall_ms).c_str(),
        obs::JsonNumber(r.efficiency).c_str(),
        obs::JsonNumber(r.updates_per_sec).c_str(), r.queries,
        obs::JsonNumber(r.query_p50_ms).c_str(),
        obs::JsonNumber(r.query_p95_ms).c_str(),
        obs::JsonNumber(r.query_p99_ms).c_str(),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace adbscan

int main(int argc, char** argv) {
  using namespace adbscan;
  Flags flags;
  flags.DefineString("datasets", "ss3d",
                     "comma-separated dataset names (see bench_common.h)")
      .DefineInt("sessions", 8, "concurrent tenant sessions")
      .DefineInt("n", 20000, "points ingested per session")
      .DefineInt("batch", 512, "points per ingest batch")
      .DefineDouble("eps", bench::kDefaultEps, "DBSCAN radius")
      .DefineInt("min_pts", bench::kDefaultMinPts, "DBSCAN MinPts")
      .DefineDouble("rho", bench::kDefaultRho, "approximation parameter")
      .DefineInt("query_every", 4,
                 "issue one timed snapshot query per this many ingests")
      .DefineString("out", "",
                    "output JSON path (default out/BENCH_serve.json)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per phase (empty: off)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);

  const size_t sessions = static_cast<size_t>(flags.GetInt("sessions"));
  const size_t n = static_cast<size_t>(flags.GetInt("n"));
  const size_t batch = static_cast<size_t>(flags.GetInt("batch"));
  const size_t query_every =
      std::max<size_t>(1, static_cast<size_t>(flags.GetInt("query_every")));
  const double rho = flags.GetDouble("rho");
  DbscanParams params{flags.GetDouble("eps"),
                      static_cast<int>(flags.GetInt("min_pts")),
                      bench::ThreadsFromFlags(flags)};
  std::string out = flags.GetString("out");
  if (out.empty()) out = bench::OutPath("BENCH_serve.json");
  const std::string metrics_json = flags.GetString("metrics_json");
  bench::MetricsLogger logger(metrics_json, "micro_serve");

  std::vector<Result> results;
  Table table({"dataset", "sessions", "n", "serve_ms", "direct_ms",
               "efficiency", "upd/s", "q_p50_ms", "q_p99_ms"});

  for (const std::string& name :
       bench::SplitNames(flags.GetString("datasets"))) {
    const Dataset pool = bench::MakeBenchDataset(name, sessions * n, 1);
    const int dim = pool.dim();

    // Pre-generate every session's stream so both phases replay byte-equal
    // inputs and generation cost stays out of the measurement.
    std::vector<std::vector<OpBatch>> streams;
    size_t total_ops = 0;
    size_t max_batches = 0;
    for (size_t s = 0; s < sessions; ++s) {
      streams.push_back(MakeStream(pool, s * n, n, batch, 0x5e41e + s));
      max_batches = std::max(max_batches, streams.back().size());
      for (const OpBatch& b : streams.back()) {
        total_ops += b.coords.size() / dim + b.removes.size();
      }
    }

    // --- Direct phase: solo DynamicClusterer per stream, no serving. ----
    logger.BeginRun();
    std::vector<Clustering> want;
    Timer direct_timer;
    for (size_t s = 0; s < sessions; ++s) {
      DynamicClustererOptions dyn;
      dyn.rho = rho;
      DynamicClusterer solo(dim, params, dyn);
      for (const OpBatch& b : streams[s]) {
        solo.Insert(Dataset(dim, b.coords));
        if (!b.removes.empty()) solo.Remove(b.removes);
      }
      want.push_back(solo.Labels());
    }
    const double direct_ms = direct_timer.ElapsedMillis();
    logger.EndRun(name, "direct",
                  {{"sessions", std::to_string(sessions)},
                   {"n", std::to_string(n)}},
                  direct_ms / 1000.0);

    // --- Serve phase: the full SessionManager path, background drainer
    // on, timed snapshot reads racing the drains. ------------------------
    logger.BeginRun();
    serve::ServeOptions opts;
    opts.num_threads = params.num_threads;
    std::vector<double> query_ms;
    Timer serve_timer;
    {
      serve::SessionManager mgr(opts);
      std::vector<uint64_t> ids;
      for (size_t s = 0; s < sessions; ++s) {
        serve::ErrorCode code;
        std::string error;
        const uint64_t id =
            mgr.CreateSession(dim, params, rho, &code, &error);
        if (id == 0) {
          std::fprintf(stderr, "create failed: %s\n", error.c_str());
          return 1;
        }
        ids.push_back(id);
      }
      // Round-robin over sessions so all queues stay hot concurrently.
      size_t ingests = 0;
      for (size_t r = 0; r < max_batches; ++r) {
        for (size_t s = 0; s < sessions; ++s) {
          if (r >= streams[s].size()) continue;
          const OpBatch& b = streams[s][r];
          serve::ErrorCode code;
          std::string error;
          uint32_t first_id = 0;
          uint64_t pending = 0;
          while (!mgr.Ingest(ids[s], b.coords, static_cast<uint32_t>(dim),
                             b.removes, &first_id, &pending, &code,
                             &error)) {
            if (code != serve::ErrorCode::kBackpressure) {
              std::fprintf(stderr, "ingest failed: %s\n", error.c_str());
              return 1;
            }
            mgr.DrainDirtySessions();  // help out instead of spinning
          }
          if (++ingests % query_every == 0) {
            const uint64_t target = ids[ingests % sessions];
            Timer q;
            std::shared_ptr<const serve::ServeSnapshot> snap =
                mgr.Read(target);
            // Touch the labels so lazy page faults count as query cost.
            volatile int32_t sink =
                snap->labels.label.empty() ? 0 : snap->labels.label.back();
            (void)sink;
            query_ms.push_back(q.ElapsedMillis());
          }
        }
      }
      for (size_t s = 0; s < sessions; ++s) {
        serve::ErrorCode code;
        std::string error;
        uint64_t epoch = 0, applied = 0;
        if (!mgr.Flush(ids[s], &epoch, &applied, &code, &error)) {
          std::fprintf(stderr, "flush failed: %s\n", error.c_str());
          return 1;
        }
      }
      const double serve_ms = serve_timer.ElapsedMillis();
      logger.EndRun(name, "serve",
                    {{"sessions", std::to_string(sessions)},
                     {"n", std::to_string(n)}},
                    serve_ms / 1000.0);

      // Bit-identical check against the solo replays before reporting.
      for (size_t s = 0; s < sessions; ++s) {
        std::shared_ptr<const serve::ServeSnapshot> snap = mgr.Read(ids[s]);
        if (snap == nullptr || snap->labels.label != want[s].label ||
            snap->labels.is_core != want[s].is_core) {
          std::fprintf(stderr,
                       "FATAL: session %zu diverged from its solo replay "
                       "(%s)\n",
                       s, name.c_str());
          return 1;
        }
      }

      std::sort(query_ms.begin(), query_ms.end());
      Result res;
      res.dataset = name;
      res.dim = dim;
      res.n = n;
      res.sessions = sessions;
      res.total_ops = total_ops;
      res.serve_wall_ms = serve_ms;
      res.direct_wall_ms = direct_ms;
      res.efficiency = serve_ms > 0.0 ? direct_ms / serve_ms : 0.0;
      res.updates_per_sec =
          serve_ms > 0.0 ? double(total_ops) / (serve_ms / 1000.0) : 0.0;
      res.queries = query_ms.size();
      res.query_p50_ms = Quantile(query_ms, 0.50);
      res.query_p95_ms = Quantile(query_ms, 0.95);
      res.query_p99_ms = Quantile(query_ms, 0.99);
      results.push_back(res);
      table.AddRow({name, std::to_string(sessions), std::to_string(n),
                    Table::Num(res.serve_wall_ms, 1),
                    Table::Num(res.direct_wall_ms, 1),
                    Table::Num(res.efficiency, 2),
                    Table::Num(res.updates_per_sec, 0),
                    Table::Num(res.query_p50_ms, 3),
                    Table::Num(res.query_p99_ms, 3)});
    }
  }

  table.Print();
  WriteJson(out, results);
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
