// Grid-layout benchmark: times the grid substrate and the grid-based
// pipelines under both memory layouts (legacy per-cell vectors +
// std::unordered_map vs the Morton-ordered CSR + permuted-SoA + flat-hash
// layout, see DESIGN.md "Grid memory layout") and writes
// BENCH_grid_layout.json with per-configuration wall times and the CSR
// speedup over legacy.
//
//   ./build/bench/micro_grid                              # defaults
//   ./build/bench/micro_grid --datasets=ss3d --n=200000 --out=BENCH.json

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "grid/grid.h"
#include "io/table.h"
#include "obs/json.h"
#include "util/timer.h"

namespace adbscan {
namespace {

const char* LayoutName(Grid::Layout layout) {
  return layout == Grid::Layout::kCsr ? "csr" : "legacy";
}

struct Result {
  std::string op;
  std::string dataset;
  int dim;
  size_t n;
  std::string layout;
  double ms;
  uint64_t reps;
  double speedup_vs_legacy;  // 1.0 for the legacy rows
};

// Runs fn repeatedly until it has consumed at least min_ms of wall clock,
// returning (reps, ms per call). The checksum defeats dead-code elimination.
template <typename Fn>
std::pair<uint64_t, double> Measure(double min_ms, double* checksum, Fn&& fn) {
  *checksum += fn();  // warm-up call primes caches and thread pool
  uint64_t reps = 0;
  Timer timer;
  do {
    *checksum += fn();
    ++reps;
  } while (timer.ElapsedSeconds() * 1000.0 < min_ms);
  return {reps, timer.ElapsedSeconds() * 1000.0 / static_cast<double>(reps)};
}

void WriteJson(const std::string& path, const std::vector<Result>& results) {
  bench::EnsureParentDir(path);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_grid\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"op\": \"%s\", \"dataset\": \"%s\", \"dim\": %d, \"n\": %zu, "
        "\"layout\": \"%s\", \"ms\": %s, \"reps\": %llu, "
        "\"speedup_vs_legacy\": %s}%s\n",
        r.op.c_str(), r.dataset.c_str(), r.dim, r.n, r.layout.c_str(),
        obs::JsonNumber(r.ms).c_str(), static_cast<unsigned long long>(r.reps),
        obs::JsonNumber(r.speedup_vs_legacy).c_str(),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace adbscan

int main(int argc, char** argv) {
  using namespace adbscan;
  Flags flags;
  flags.DefineString("datasets", "ss3d,ss5d,ss7d",
                     "comma-separated dataset names (see bench_common.h)")
      .DefineInt("n", 100000, "points per dataset")
      .DefineDouble("eps", bench::kDefaultEps, "DBSCAN radius")
      .DefineInt("min_pts", bench::kDefaultMinPts, "DBSCAN MinPts")
      .DefineDouble("rho", bench::kDefaultRho, "approximation parameter")
      .DefineDouble("min_ms", 200.0, "minimum measured wall time per config")
      .DefineString("out", "",
                    "output JSON path (default out/BENCH_grid_layout.json)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);
  const size_t n = static_cast<size_t>(flags.GetInt("n"));
  const double eps = flags.GetDouble("eps");
  const int min_pts = static_cast<int>(flags.GetInt("min_pts"));
  const double rho = flags.GetDouble("rho");
  const double min_ms = flags.GetDouble("min_ms");
  const int threads = bench::ThreadsFromFlags(flags);
  std::string out = flags.GetString("out");
  if (out.empty()) out = bench::OutPath("BENCH_grid_layout.json");

  const Grid::Layout saved_layout = Grid::DefaultLayout();
  const std::vector<Grid::Layout> layouts = {Grid::Layout::kLegacy,
                                             Grid::Layout::kCsr};
  std::vector<Result> results;
  Table table({"op", "dataset", "layout", "ms", "speedup"});
  double checksum = 0.0;

  for (const std::string& name : bench::SplitNames(flags.GetString("datasets"))) {
    const Dataset data = bench::MakeBenchDataset(name, n, 1);
    const int dim = data.dim();
    const double side = Grid::SideFor(eps, dim);
    const DbscanParams params{eps, min_pts, threads};

    // Substrate ops take the layout explicitly; pipelines read the
    // process-wide default, so each end-to-end measurement brackets its run
    // with SetDefaultLayout.
    using BenchFn = std::function<double()>;
    std::vector<std::pair<std::string, std::function<BenchFn(Grid::Layout)>>>
        ops;
    ops.emplace_back("grid_build", [&](Grid::Layout layout) -> BenchFn {
      return [&, layout] {
        Grid grid(data, side, layout, threads);
        return static_cast<double>(grid.NumCells());
      };
    });
    ops.emplace_back("warm_neighbors", [&](Grid::Layout layout) -> BenchFn {
      return [&, layout] {
        Grid grid(data, side, layout);
        grid.WarmNeighborCache(eps, threads);
        return static_cast<double>(grid.EpsNeighbors(0, eps).size());
      };
    });
    ops.emplace_back("exact_grid", [&](Grid::Layout layout) -> BenchFn {
      return [&, layout] {
        Grid::SetDefaultLayout(layout);
        return static_cast<double>(ExactGridDbscan(data, params).num_clusters);
      };
    });
    ops.emplace_back("approx", [&](Grid::Layout layout) -> BenchFn {
      return [&, layout] {
        Grid::SetDefaultLayout(layout);
        return static_cast<double>(
            ApproxDbscan(data, params, rho).num_clusters);
      };
    });
    if (dim == 2) {
      ops.emplace_back("gunawan2d", [&](Grid::Layout layout) -> BenchFn {
        return [&, layout] {
          Grid::SetDefaultLayout(layout);
          return static_cast<double>(
              Gunawan2dDbscan(data, params).num_clusters);
        };
      });
    }

    for (const auto& [op, make_fn] : ops) {
      double legacy_ms = 0.0;
      for (Grid::Layout layout : layouts) {
        auto [reps, ms] = Measure(min_ms, &checksum, make_fn(layout));
        if (layout == Grid::Layout::kLegacy) legacy_ms = ms;
        const double speedup = legacy_ms / ms;
        results.push_back(
            {op, name, dim, n, LayoutName(layout), ms, reps, speedup});
        table.AddRow({op, name, LayoutName(layout), Table::Num(ms),
                      Table::Num(speedup)});
      }
    }
  }
  Grid::SetDefaultLayout(saved_layout);

  table.Print(stdout);
  std::printf("(checksum %.3g)\n", checksum);
  WriteJson(out, results);
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
