// Grid substrate benchmark: times the grid build, the warm ε-neighbor
// enumeration, and the grid-based pipelines over the Morton-ordered CSR +
// permuted-SoA + flat-hash layout (see DESIGN.md "Grid memory layout") and
// writes BENCH_grid_layout.json with per-configuration wall times.
//
// The pre-CSR per-cell-vector layout was retired once CSR measured at
// least as fast on every (op, dataset) row here; the closing dual-layout
// measurement is frozen in bench/baselines/BENCH_grid_layout_final.json
// and gated in CI (speedup_vs_legacy >= 1.0 on every row).
//
//   ./build/bench/micro_grid                              # defaults
//   ./build/bench/micro_grid --datasets=ss3d --n=200000 --out=BENCH.json

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "grid/grid.h"
#include "io/table.h"
#include "obs/json.h"
#include "util/timer.h"

namespace adbscan {
namespace {

struct Result {
  std::string op;
  std::string dataset;
  int dim;
  size_t n;
  double ms;
  uint64_t reps;
};

void WriteJson(const std::string& path, const std::vector<Result>& results) {
  bench::EnsureParentDir(path);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_grid\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"op\": \"%s\", \"dataset\": \"%s\", \"dim\": %d, \"n\": %zu, "
        "\"layout\": \"csr\", \"ms\": %s, \"reps\": %llu}%s\n",
        r.op.c_str(), r.dataset.c_str(), r.dim, r.n,
        obs::JsonNumber(r.ms).c_str(), static_cast<unsigned long long>(r.reps),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace adbscan

int main(int argc, char** argv) {
  using namespace adbscan;
  Flags flags;
  flags.DefineString("datasets", "ss3d,ss5d,ss7d",
                     "comma-separated dataset names (see bench_common.h)")
      .DefineInt("n", 100000, "points per dataset")
      .DefineDouble("eps", bench::kDefaultEps, "DBSCAN radius")
      .DefineInt("min_pts", bench::kDefaultMinPts, "DBSCAN MinPts")
      .DefineDouble("rho", bench::kDefaultRho, "approximation parameter")
      .DefineDouble("min_ms", 200.0, "minimum measured wall time per config")
      .DefineString("out", "",
                    "output JSON path (default out/BENCH_grid_layout.json)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);
  const size_t n = static_cast<size_t>(flags.GetInt("n"));
  const double eps = flags.GetDouble("eps");
  const int min_pts = static_cast<int>(flags.GetInt("min_pts"));
  const double rho = flags.GetDouble("rho");
  const double min_ms = flags.GetDouble("min_ms");
  const int threads = bench::ThreadsFromFlags(flags);
  std::string out = flags.GetString("out");
  if (out.empty()) out = bench::OutPath("BENCH_grid_layout.json");

  std::vector<Result> results;
  Table table({"op", "dataset", "ms", "reps"});
  double checksum = 0.0;

  for (const std::string& name : bench::SplitNames(flags.GetString("datasets"))) {
    const Dataset data = bench::MakeBenchDataset(name, n, 1);
    const int dim = data.dim();
    const double side = Grid::SideFor(eps, dim);
    const DbscanParams params{eps, min_pts, threads};

    using BenchFn = std::function<double()>;
    std::vector<std::pair<std::string, BenchFn>> ops;
    ops.emplace_back("grid_build", [&] {
      Grid grid(data, side, threads);
      return static_cast<double>(grid.NumCells());
    });
    ops.emplace_back("warm_neighbors", [&] {
      Grid grid(data, side);
      grid.WarmNeighborCache(eps, threads);
      return static_cast<double>(grid.EpsNeighbors(0, eps).size());
    });
    ops.emplace_back("exact_grid", [&] {
      return static_cast<double>(ExactGridDbscan(data, params).num_clusters);
    });
    ops.emplace_back("approx", [&] {
      return static_cast<double>(ApproxDbscan(data, params, rho).num_clusters);
    });
    if (dim == 2) {
      ops.emplace_back("gunawan2d", [&] {
        return static_cast<double>(Gunawan2dDbscan(data, params).num_clusters);
      });
    }

    for (const auto& [op, fn] : ops) {
      auto [reps, ms] = bench::MeasureMs(min_ms, &checksum, fn);
      results.push_back({op, name, dim, n, ms, reps});
      table.AddRow({op, name, Table::Num(ms),
                    std::to_string(static_cast<unsigned long long>(reps))});
    }
  }

  table.Print(stdout);
  std::printf("(checksum %.3g)\n", checksum);
  WriteJson(out, results);
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
