// Microbenchmarks: grid construction and ε-neighbor enumeration — the
// substrate every grid-based algorithm (Sections 2.2/3.2/4.4) stands on.

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "grid/grid.h"

namespace adbscan {
namespace {

void BM_GridBuild(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const Dataset data =
      bench::MakeBenchDataset("ss" + std::to_string(dim) + "d", n, 1);
  const double side = Grid::SideFor(bench::kDefaultEps, dim);
  for (auto _ : state) {
    Grid grid(data, side);
    benchmark::DoNotOptimize(grid.NumCells());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GridBuild)
    ->Args({3, 10000})
    ->Args({3, 100000})
    ->Args({5, 100000})
    ->Args({7, 100000});

void BM_GridEpsNeighbors(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const Dataset data =
      bench::MakeBenchDataset("ss" + std::to_string(dim) + "d", 100000, 1);
  const Grid grid(data, Grid::SideFor(bench::kDefaultEps, dim));
  uint32_t ci = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.EpsNeighbors(ci, bench::kDefaultEps).size());
    ci = (ci + 1) % static_cast<uint32_t>(grid.NumCells());
  }
}
BENCHMARK(BM_GridEpsNeighbors)->Arg(3)->Arg(5)->Arg(7);

void BM_GridCellsTouchingBall(benchmark::State& state) {
  const int dim = static_cast<int>(state.range(0));
  const Dataset data =
      bench::MakeBenchDataset("ss" + std::to_string(dim) + "d", 100000, 1);
  const Grid grid(data, Grid::SideFor(bench::kDefaultEps, dim));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.CellsTouchingBall(data.point(i), bench::kDefaultEps).size());
    i = (i + 997) % data.size();
  }
}
BENCHMARK(BM_GridCellsTouchingBall)->Arg(3)->Arg(7);

}  // namespace
}  // namespace adbscan

BENCHMARK_MAIN();
