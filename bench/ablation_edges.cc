// Ablation (DESIGN.md): the edge-decision step of the core-cell graph G is
// the only difference between the exact algorithm of Theorem 2 and the
// ρ-approximate algorithm of Theorem 4. This bench isolates that choice by
// running the identical pipeline with three edge tests:
//   bcp      — exact BCP decision (OurExact),
//   counter  — Lemma 5 approximate counting (OurApprox),
//   allpairs — naive exhaustive pair scan between the two cells (what a
//              straightforward implementation would do).
// Expected: counter < bcp << allpairs as density grows, which is exactly
// the paper's claim that "the efficiency improvement of our approximate
// algorithm owes to settling for an imprecise BCP solution".

#include <cstdio>
#include <string>
#include <vector>

#include "bcp/bcp.h"
#include "bench_common.h"
#include "core/grid_pipeline.h"
#include "geom/point.h"
#include "io/table.h"
#include "rangecount/approx_range_counter.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace adbscan;
using adbscan::bench::MakeBenchDataset;

namespace {

Clustering RunWithEdgeTest(const Dataset& data, const DbscanParams& params,
                           const std::string& mode, double rho) {
  const CoreCellIndex* cells = nullptr;
  std::vector<ApproxRangeCounter> counters;
  GridPipelineHooks hooks;
  hooks.prepare_cells = [&](const Grid&, const CoreCellIndex& cci) {
    cells = &cci;
    if (mode == "counter") {
      counters.reserve(cci.size());
      for (size_t c = 0; c < cci.size(); ++c) {
        counters.emplace_back(data, cci.core_points[c], params.eps, rho);
      }
    }
  };
  const double eps2 = params.eps * params.eps;
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    if (mode == "bcp") {
      return ExistsPairWithin(data, cells->core_points[c1],
                              cells->core_points[c2], params.eps);
    }
    if (mode == "counter") {
      for (uint32_t p : cells->core_points[c1]) {
        if (counters[c2].QueryNonzero(data.point(p))) return true;
      }
      return false;
    }
    // allpairs: exhaustive, no early structure, the naive O(|c1||c2|) scan
    // (still with the trivial early exit on the first witness).
    for (uint32_t p : cells->core_points[c1]) {
      for (uint32_t q : cells->core_points[c2]) {
        if (SquaredDistance(data.point(p), data.point(q), data.dim()) <=
            eps2) {
          return true;
        }
      }
    }
    return false;
  };
  // All three edge tests are pure functions of the (c1, c2) pair.
  hooks.edge_test_thread_safe = true;
  return RunGridPipeline(data, params, hooks);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.DefineInt("n", 100000, "dataset cardinality")
      .DefineDouble("eps", bench::kDefaultEps, "radius")
      .DefineDouble("rho", bench::kDefaultRho, "approximation ratio")
      .DefineInt("min_pts", bench::kDefaultMinPts, "MinPts")
      .DefineString("datasets", "ss3d,ss5d,ss7d", "datasets")
      .DefineInt("seed", 2025, "generator seed");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);

  const DbscanParams params{flags.GetDouble("eps"),
                            static_cast<int>(flags.GetInt("min_pts")),
                            bench::ThreadsFromFlags(flags)};
  const double rho = flags.GetDouble("rho");
  const size_t n = static_cast<size_t>(flags.GetInt("n"));

  std::printf(
      "Ablation: edge-test strategy for graph G (n=%zu, eps=%.0f, "
      "MinPts=%d, rho=%.3g)\n\n",
      n, params.eps, params.min_pts, rho);
  Table t({"dataset", "allpairs", "bcp (OurExact)", "counter (OurApprox)",
           "clusters (bcp)"});
  for (const std::string& name :
       bench::SplitNames(flags.GetString("datasets"))) {
    const Dataset data = MakeBenchDataset(name, n, flags.GetInt("seed"));
    std::vector<std::string> row{name};
    int clusters = 0;
    for (const char* mode_cstr : {"allpairs", "bcp", "counter"}) {
      const std::string mode = mode_cstr;
      Timer timer;
      const Clustering c = RunWithEdgeTest(data, params, mode, rho);
      row.push_back(Table::Seconds(timer.ElapsedSeconds()));
      if (mode == "bcp") clusters = c.num_clusters;
    }
    row.push_back(std::to_string(clusters));
    t.AddRow(row);
  }
  t.Print();
  std::printf(
      "\nNote: allpairs and bcp produce identical (exact) clusterings; the\n"
      "counter column is the rho-approximate edge rule.\n");
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
