// Streaming benchmark: amortized cost of maintaining the ρ-approximate
// clustering incrementally (DynamicClusterer) versus re-running ApproxDbscan
// from scratch after every update batch. Each round applies one batch of
// update_ratio * n updates (half removals of random surviving points, half
// fresh insertions), re-derives labels incrementally, then times the
// from-scratch run over the same surviving points and verifies the two
// clusterings are identical. Writes BENCH_stream.json with per-round wall
// times, the incremental speedup, and the stream.rebuilds counter.
//
//   ./build/bench/micro_stream                        # defaults (n=1e5, 1%)
//   ./build/bench/micro_stream --n=200000 --update_ratio=0.02 --rounds=8

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "core/approx_dbscan.h"
#include "io/table.h"
#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "stream/dynamic_clusterer.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adbscan {
namespace {

struct Result {
  std::string dataset;
  int dim;
  size_t n;
  int round;  // -1 for the summary row
  size_t updates;
  double incr_ms;
  double scratch_ms;
  double speedup;
  uint64_t rebuilds;
  uint64_t cells_touched;
  uint64_t recompute_frontier;
};

// Re-registers the stream counter schema after a registry Reset() so every
// emitted record carries the same counter names.
void RegisterStreamCounters() {
  ADB_COUNT("stream.updates", 0);
  ADB_COUNT("stream.inserts", 0);
  ADB_COUNT("stream.removes", 0);
  ADB_COUNT("stream.batches", 0);
  ADB_COUNT("stream.cells_touched", 0);
  ADB_COUNT("stream.rebuilds", 0);
  ADB_COUNT("stream.recompute_frontier", 0);
  ADB_COUNT("stream.frontier_fallbacks", 0);
  ADB_COUNT("stream.edge_probes", 0);
  ADB_COUNT("stream.counter_rebuilds", 0);
}

uint64_t CounterOr0(const obs::MetricsSnapshot& snap, const char* name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

void WriteJson(const std::string& path, const std::vector<Result>& results) {
  bench::EnsureParentDir(path);
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"micro_stream\",\n  \"results\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(
        f,
        "    {\"dataset\": \"%s\", \"dim\": %d, \"n\": %zu, \"round\": %d, "
        "\"updates\": %zu, \"incr_ms\": %s, \"scratch_ms\": %s, "
        "\"speedup\": %s, \"rebuilds\": %llu, \"cells_touched\": %llu, "
        "\"recompute_frontier\": %llu}%s\n",
        r.dataset.c_str(), r.dim, r.n, r.round, r.updates,
        obs::JsonNumber(r.incr_ms).c_str(),
        obs::JsonNumber(r.scratch_ms).c_str(),
        obs::JsonNumber(r.speedup).c_str(),
        static_cast<unsigned long long>(r.rebuilds),
        static_cast<unsigned long long>(r.cells_touched),
        static_cast<unsigned long long>(r.recompute_frontier),
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace
}  // namespace adbscan

int main(int argc, char** argv) {
  using namespace adbscan;
  Flags flags;
  flags.DefineString("datasets", "ss3d",
                     "comma-separated dataset names (see bench_common.h)")
      .DefineInt("n", 100000, "initial points per dataset")
      .DefineDouble("eps", bench::kDefaultEps, "DBSCAN radius")
      .DefineInt("min_pts", bench::kDefaultMinPts, "DBSCAN MinPts")
      .DefineDouble("rho", bench::kDefaultRho, "approximation parameter")
      .DefineDouble("update_ratio", 0.01,
                    "updates per round as a fraction of n (half removals, "
                    "half insertions)")
      .DefineInt("rounds", 5, "number of update rounds")
      .DefineString("out", "",
                    "output JSON path (default out/BENCH_stream.json)")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per measured step "
                    "(empty: off)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);
  const size_t n = static_cast<size_t>(flags.GetInt("n"));
  const int rounds = static_cast<int>(flags.GetInt("rounds"));
  const double ratio = flags.GetDouble("update_ratio");
  const double rho = flags.GetDouble("rho");
  DbscanParams params{flags.GetDouble("eps"),
                      static_cast<int>(flags.GetInt("min_pts")),
                      bench::ThreadsFromFlags(flags)};
  std::string out = flags.GetString("out");
  if (out.empty()) out = bench::OutPath("BENCH_stream.json");
  const std::string metrics_json = flags.GetString("metrics_json");

  // The stream counters double as the benchmark's reorganization report, so
  // metrics are always on here (both measured sides pay the same overhead).
  obs::MetricsRegistry::SetEnabled(true);

  const size_t half_batch = std::max<size_t>(1, static_cast<size_t>(
                                                    ratio * double(n) / 2.0));
  std::vector<Result> results;
  Table table(
      {"dataset", "round", "updates", "incr_ms", "scratch_ms", "speedup"});

  auto emit_record = [&](const std::string& dataset, const char* step,
                         size_t count, double total_ms) {
    if (metrics_json.empty()) return;
    obs::RunRecord rec;
    rec.run = "micro_stream";
    rec.dataset = dataset;
    rec.algo = "stream";
    rec.params = {{"step", step},
                  {"n", std::to_string(count)},
                  {"min_pts", std::to_string(params.min_pts)}};
    rec.total_ms = total_ms;
    rec.metrics = obs::MetricsRegistry::Global().Snapshot();
    if (!obs::AppendJsonLine(metrics_json, rec)) {
      std::fprintf(stderr, "failed to write metrics to %s\n",
                   metrics_json.c_str());
      std::exit(1);
    }
  };

  for (const std::string& name :
       bench::SplitNames(flags.GetString("datasets"))) {
    // One generator run provides both the initial load and every later
    // insertion batch, so rounds draw from the same distribution.
    const size_t total_points = n + half_batch * static_cast<size_t>(rounds);
    const Dataset pool = bench::MakeBenchDataset(name, total_points, 1);
    const int dim = pool.dim();

    obs::MetricsRegistry::Global().Reset();
    RegisterStreamCounters();
    DynamicClusterer dyn(dim, params);
    Dataset initial(dim);
    initial.Reserve(n);
    for (uint32_t id = 0; id < n; ++id) initial.Add(pool.point(id));
    Timer load_timer;
    dyn.Insert(initial);
    dyn.Labels();
    const double load_ms = load_timer.ElapsedSeconds() * 1000.0;
    std::printf("%s: loaded %zu points in %.1f ms (%d clusters)\n",
                name.c_str(), n, load_ms, dyn.Labels().num_clusters);
    emit_record(name, "load", n, load_ms);

    // Stream keyed off the dataset's dimension through the shared seed
    // derivation, so per-dataset sequences never collide by arithmetic.
    Rng rng(DeriveSeed(0xbe1, static_cast<uint64_t>(dim)));
    size_t next_insert = n;
    double incr_sum = 0.0;
    double scratch_sum = 0.0;
    uint64_t rebuilds_total = 0;
    for (int round = 0; round < rounds; ++round) {
      // Half the batch tombstones random survivors...
      std::vector<uint32_t> alive;
      alive.reserve(dyn.num_alive());
      for (uint32_t id = 0; id < dyn.num_points(); ++id) {
        if (dyn.alive(id)) alive.push_back(id);
      }
      std::vector<uint32_t> removals(half_batch);
      for (size_t i = 0; i < half_batch; ++i) {
        const size_t j = i + rng.NextBounded(alive.size() - i);
        std::swap(alive[i], alive[j]);
        removals[i] = alive[i];
      }
      // ...and the other half inserts fresh points from the pool.
      Dataset batch(dim);
      batch.Reserve(half_batch);
      for (size_t i = 0; i < half_batch; ++i) {
        batch.Add(pool.point(static_cast<uint32_t>(next_insert + i)));
      }
      next_insert += half_batch;

      obs::MetricsRegistry::Global().Reset();
      RegisterStreamCounters();
      Timer incr_timer;
      dyn.Remove(removals);
      dyn.Insert(batch);
      const Clustering& incremental = dyn.Labels();
      const double incr_ms = incr_timer.ElapsedSeconds() * 1000.0;
      const obs::MetricsSnapshot counters =
          obs::MetricsRegistry::Global().Snapshot();
      emit_record(name, "update", 2 * half_batch, incr_ms);

      DynamicClusterer::SnapshotView snap = dyn.Snapshot();
      obs::MetricsRegistry::Global().Reset();
      Timer scratch_timer;
      const Clustering scratch = ApproxDbscan(snap.points, params, rho);
      const double scratch_ms = scratch_timer.ElapsedSeconds() * 1000.0;
      if (scratch.label != snap.clustering.label ||
          scratch.is_core != snap.clustering.is_core) {
        std::fprintf(stderr,
                     "FATAL: incremental clustering diverged from scratch "
                     "(%s round %d)\n",
                     name.c_str(), round);
        return 1;
      }
      (void)incremental;

      const double speedup = scratch_ms / incr_ms;
      const uint64_t rebuilds = CounterOr0(counters, "stream.rebuilds");
      rebuilds_total += rebuilds;
      incr_sum += incr_ms;
      scratch_sum += scratch_ms;
      results.push_back({name, dim, n, round, 2 * half_batch, incr_ms,
                         scratch_ms, speedup, rebuilds,
                         CounterOr0(counters, "stream.cells_touched"),
                         CounterOr0(counters, "stream.recompute_frontier")});
      char round_label[16], updates_label[24];
      std::snprintf(round_label, sizeof(round_label), "%d", round);
      std::snprintf(updates_label, sizeof(updates_label), "%zu",
                    2 * half_batch);
      table.AddRow({name, round_label, updates_label,
                    Table::Num(incr_ms, 2), Table::Num(scratch_ms, 2),
                    Table::Num(speedup, 1)});
    }
    const double mean_speedup =
        incr_sum > 0.0 ? scratch_sum / incr_sum : 0.0;
    results.push_back({name, dim, n, -1,
                       2 * half_batch * static_cast<size_t>(rounds),
                       incr_sum / rounds, scratch_sum / rounds, mean_speedup,
                       rebuilds_total, 0, 0});
    table.AddRow({name, "mean", "-", Table::Num(incr_sum / rounds, 2),
                  Table::Num(scratch_sum / rounds, 2),
                  Table::Num(mean_speedup, 1)});
  }

  table.Print();
  WriteJson(out, results);
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
