// Figure 11 (a-c): running time vs cardinality n on the SS 3D/5D/7D
// datasets (eps = 5000, rho = 0.001, MinPts = 100) for the four compared
// algorithms.
//
// The paper sweeps n from 100k to 10m with a 12-hour cutoff; the default
// here is laptop-scale with a per-run budget — once an algorithm exceeds the
// budget at some n, larger n are reported as "skipped" (the paper's missing
// KDD96/CIT08 points). Expected shape: OurApprox ~linear and fastest by
// orders of magnitude; OurExact the only exact method that finishes
// everywhere; KDD96 and CIT08 blowing up.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "io/table.h"
#include "util/flags.h"

using namespace adbscan;
using adbscan::bench::BudgetTracker;
using adbscan::bench::MakeBenchDataset;

int main(int argc, char** argv) {
  Flags flags;
  flags
      .DefineString("sizes", "10000,20000,50000,100000,200000",
                    "comma list of n values")
      .DefineDouble("eps", bench::kDefaultEps, "radius")
      .DefineDouble("rho", bench::kDefaultRho, "approximation ratio")
      .DefineInt("min_pts", bench::kDefaultMinPts, "MinPts")
      .DefineDouble("budget_sec", 5.0,
                    "per-run budget; exceeding skips larger n")
      .DefineString("datasets", "ss3d,ss5d,ss7d", "datasets to sweep")
      .DefineInt("seed", 2025, "generator seed")
      .DefineBool("full", false,
                  "paper-scale sweep (100k..10m); may take hours")
      .DefineString("metrics_json", "",
                    "append one JSON metrics record per run (empty: off)");
  bench::DefineThreadsFlag(flags);
  bench::DefineKernelFlag(flags);
  bench::DefineTraceFlag(flags);
  flags.Parse(argc, argv);
  const std::string trace_path = bench::ApplyTraceFlag(flags);
  bench::ApplyKernelFlag(flags);

  std::vector<int64_t> sizes = flags.GetIntList("sizes");
  if (flags.GetBool("full")) {
    sizes = {100000, 500000, 1000000, 2000000, 5000000, 10000000};
  }
  const DbscanParams params{flags.GetDouble("eps"),
                            static_cast<int>(flags.GetInt("min_pts")),
                            bench::ThreadsFromFlags(flags)};
  const double rho = flags.GetDouble("rho");
  bench::MetricsLogger metrics(flags.GetString("metrics_json"),
                               "fig11_scale_n");

  std::printf(
      "Figure 11: running time vs n (eps=%.0f, MinPts=%d, rho=%.3g, "
      "budget %.0fs/run)\n\n",
      params.eps, params.min_pts, rho, flags.GetDouble("budget_sec"));

  for (const std::string& name :
       bench::SplitNames(flags.GetString("datasets"))) {
    std::printf("--- %s ---\n", name.c_str());
    BudgetTracker budget(flags.GetDouble("budget_sec"));
    std::vector<std::string> header{"n"};
    for (const auto& [algo_name, fn] : bench::StandardAlgos(rho)) {
      header.push_back(algo_name);
      (void)fn;
    }
    header.push_back("approx clusters");
    Table t(header);
    for (int64_t n : sizes) {
      const Dataset data =
          MakeBenchDataset(name, static_cast<size_t>(n),
                           flags.GetInt("seed"));
      std::vector<std::string> row{std::to_string(n)};
      int approx_clusters = -1;
      for (const auto& [algo_name, fn] : bench::StandardAlgos(rho)) {
        Clustering result;
        metrics.BeginRun();
        const std::optional<double> elapsed = budget.Run(
            name + "/" + algo_name, [&] { result = fn(data, params); });
        row.push_back(Table::Seconds(elapsed.value_or(-1.0)));
        if (elapsed.has_value()) {
          metrics.EndRun(name, algo_name,
                         {{"n", std::to_string(n)},
                          {"eps", bench::ParamNum(params.eps)},
                          {"min_pts", std::to_string(params.min_pts)},
                          {"rho", bench::ParamNum(rho)},
                          {"threads", std::to_string(params.num_threads)}},
                         *elapsed);
        }
        if (algo_name == "OurApprox" && elapsed.has_value()) {
          approx_clusters = result.num_clusters;
        }
      }
      row.push_back(approx_clusters < 0 ? "-"
                                        : std::to_string(approx_clusters));
      t.AddRow(row);
    }
    t.Print();
    std::printf("\n");
  }
  std::printf(
      "Expected shape (paper, Fig. 11): OurApprox fastest and ~linear in n;"
      "\nOurExact finishes everywhere but grows super-linearly; KDD96/CIT08"
      "\nhit the budget first (the paper's >12h points).\n");
  if (!trace_path.empty()) obs::ExportTrace(trace_path);
  return 0;
}
