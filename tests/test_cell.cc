#include <gtest/gtest.h>

#include <unordered_set>

#include "grid/cell.h"
#include "util/rng.h"

namespace adbscan {
namespace {

TEST(CellCoord, OfComputesFloorIndices) {
  const double p[] = {2.5, -0.1};
  const CellCoord cc = CellCoord::Of(p, 2, 1.0);
  EXPECT_EQ(cc.c[0], 2);
  EXPECT_EQ(cc.c[1], -1);
}

TEST(CellCoord, PointOnBoundaryBelongsToUpperCell) {
  const double p[] = {3.0};
  const CellCoord cc = CellCoord::Of(p, 1, 1.0);
  EXPECT_EQ(cc.c[0], 3);
}

TEST(CellCoord, ToBoxRoundTripContainsPoint) {
  Rng rng(5);
  for (int trial = 0; trial < 500; ++trial) {
    double p[3];
    for (int i = 0; i < 3; ++i) p[i] = rng.NextDouble(-1000.0, 1000.0);
    const double side = rng.NextDouble(0.1, 50.0);
    const CellCoord cc = CellCoord::Of(p, 3, side);
    const Box box = cc.ToBox(side);
    // Half-open cells: lo <= p < hi (ContainsPoint uses closed bounds, which
    // is fine for the lower inclusion).
    for (int i = 0; i < 3; ++i) {
      EXPECT_GE(p[i], box.lo[i] - 1e-9);
      EXPECT_LT(p[i], box.hi[i] + 1e-9);
    }
  }
}

TEST(CellCoord, CellDiameterBoundsPointPairs) {
  // Two points in the same cell of side eps/sqrt(d) are within eps.
  Rng rng(6);
  const int dim = 5;
  const double eps = 10.0;
  const double side = eps / std::sqrt(static_cast<double>(dim));
  for (int trial = 0; trial < 200; ++trial) {
    double a[kMaxDim], b[kMaxDim];
    for (int i = 0; i < dim; ++i) a[i] = rng.NextDouble(-100, 100);
    const CellCoord ca = CellCoord::Of(a, dim, side);
    const Box box = ca.ToBox(side);
    for (int i = 0; i < dim; ++i) {
      b[i] = rng.NextDouble(box.lo[i], box.hi[i]);
    }
    EXPECT_LE(SquaredDistance(a, b, dim), eps * eps * (1 + 1e-12));
  }
}

TEST(CellCoord, EqualityComparesAllUsedLanes) {
  CellCoord a, b;
  a.dim = b.dim = 3;
  a.c = {1, 2, 3};
  b.c = {1, 2, 3};
  EXPECT_TRUE(a == b);
  b.c[2] = 4;
  EXPECT_FALSE(a == b);
}

TEST(CellCoord, CenterIsMidpoint) {
  CellCoord cc;
  cc.dim = 2;
  cc.c = {2, -3};
  double center[2];
  cc.Center(10.0, center);
  EXPECT_DOUBLE_EQ(center[0], 25.0);
  EXPECT_DOUBLE_EQ(center[1], -25.0);
}

TEST(CellCoordHash, FewCollisionsOnDenseLattice) {
  CellCoordHash hash;
  std::unordered_set<size_t> hashes;
  int count = 0;
  for (int x = -10; x < 10; ++x) {
    for (int y = -10; y < 10; ++y) {
      for (int z = -10; z < 10; ++z) {
        CellCoord cc;
        cc.dim = 3;
        cc.c = {x, y, z};
        hashes.insert(hash(cc));
        ++count;
      }
    }
  }
  // All-distinct is not guaranteed, but collisions should be very rare.
  EXPECT_GT(static_cast<int>(hashes.size()), count - 5);
}

TEST(CellCoordHash, DimensionAffectsHash) {
  CellCoordHash hash;
  CellCoord a, b;
  a.dim = 2;
  b.dim = 3;
  a.c = {1, 2, 0};
  b.c = {1, 2, 0};
  EXPECT_NE(hash(a), hash(b));
}

}  // namespace
}  // namespace adbscan
