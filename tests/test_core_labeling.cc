#include <gtest/gtest.h>

#include <vector>

#include "core/core_labeling.h"
#include "geom/point.h"
#include "grid/grid.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

std::vector<char> BruteCoreFlags(const Dataset& data,
                                 const DbscanParams& params) {
  std::vector<char> is_core(data.size(), 0);
  const double eps2 = params.eps * params.eps;
  for (size_t i = 0; i < data.size(); ++i) {
    size_t count = 0;
    for (size_t j = 0; j < data.size(); ++j) {
      count += SquaredDistance(data.point(i), data.point(j), data.dim()) <=
               eps2;
    }
    if (count >= static_cast<size_t>(params.min_pts)) is_core[i] = 1;
  }
  return is_core;
}

struct LabelCase {
  int dim;
  double eps;
  int min_pts;
};

class CoreLabelingTest : public ::testing::TestWithParam<LabelCase> {};

TEST_P(CoreLabelingTest, MatchesBruteForceOnClusteredData) {
  const auto [dim, eps, min_pts] = GetParam();
  const DbscanParams params{eps, min_pts};
  const Dataset data =
      ClusteredDataset(dim, 600, 4, 100.0, 4.0, 179 + dim + min_pts);
  const Grid grid(data, Grid::SideFor(eps, dim));
  EXPECT_EQ(LabelCorePoints(data, grid, params), BruteCoreFlags(data, params));
}

TEST_P(CoreLabelingTest, MatchesBruteForceOnUniformData) {
  const auto [dim, eps, min_pts] = GetParam();
  const DbscanParams params{eps, min_pts};
  const Dataset data = RandomDataset(dim, 400, 0.0, 80.0, 191 + dim);
  const Grid grid(data, Grid::SideFor(eps, dim));
  EXPECT_EQ(LabelCorePoints(data, grid, params), BruteCoreFlags(data, params));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, CoreLabelingTest,
    ::testing::Values(LabelCase{2, 8.0, 5}, LabelCase{2, 3.0, 2},
                      LabelCase{3, 10.0, 10}, LabelCase{3, 25.0, 50},
                      LabelCase{5, 20.0, 4}, LabelCase{7, 40.0, 8},
                      LabelCase{2, 8.0, 1}));

TEST(CoreLabeling, MinPtsOneMakesEverythingCore) {
  const Dataset data = RandomDataset(3, 100, 0.0, 100.0, 193);
  const DbscanParams params{5.0, 1};
  const Grid grid(data, Grid::SideFor(params.eps, 3));
  const std::vector<char> flags = LabelCorePoints(data, grid, params);
  for (char f : flags) EXPECT_EQ(f, 1);
}

TEST(CoreLabeling, IsolatedPointIsNonCore) {
  const Dataset data = MakeDataset({{0.0, 0.0}, {100.0, 100.0}});
  const DbscanParams params{5.0, 2};
  const Grid grid(data, Grid::SideFor(params.eps, 2));
  const std::vector<char> flags = LabelCorePoints(data, grid, params);
  EXPECT_EQ(flags[0], 0);
  EXPECT_EQ(flags[1], 0);
}

TEST(CoreLabeling, DenseCellShortcut) {
  // 50 coincident points with MinPts=50: the dense-cell path must fire.
  Dataset data(2);
  for (int i = 0; i < 50; ++i) data.Add({1.0, 1.0});
  const DbscanParams params{2.0, 50};
  const Grid grid(data, Grid::SideFor(params.eps, 2));
  for (char f : LabelCorePoints(data, grid, params)) EXPECT_EQ(f, 1);
}

TEST(CoreLabeling, CrossCellNeighborhoodCounts) {
  // Points straddling a cell boundary: each alone in its cell, core only
  // thanks to the neighbor cell's points.
  const double eps = 2.0;
  const Dataset data = MakeDataset({{0.9, 0.0}, {1.1, 0.0}, {1.3, 0.0}});
  const DbscanParams params{eps, 3};
  const Grid grid(data, Grid::SideFor(eps, 2));
  for (char f : LabelCorePoints(data, grid, params)) EXPECT_EQ(f, 1);
}

TEST(CoreCellIndex, IndexesExactlyCoreOwningCells) {
  const Dataset data =
      MakeDataset({{0.0, 0.0}, {0.5, 0.0}, {0.6, 0.0}, {50.0, 50.0}});
  const DbscanParams params{1.0, 3};
  const Grid grid(data, Grid::SideFor(params.eps, 2));
  const std::vector<char> is_core = LabelCorePoints(data, grid, params);
  const CoreCellIndex cci = BuildCoreCellIndex(grid, is_core);
  size_t core_points_total = 0;
  for (const auto& pts : cci.core_points) {
    EXPECT_FALSE(pts.empty());
    for (uint32_t id : pts) EXPECT_TRUE(is_core[id]);
    core_points_total += pts.size();
  }
  size_t expected = 0;
  for (char f : is_core) expected += (f != 0);
  EXPECT_EQ(core_points_total, expected);
  // Reverse mapping is consistent.
  for (uint32_t cc = 0; cc < cci.size(); ++cc) {
    EXPECT_EQ(cci.core_cell_of_grid_cell[cci.grid_cell[cc]], cc);
  }
}

}  // namespace
}  // namespace adbscan
