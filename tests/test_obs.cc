#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/parallel.h"

namespace adbscan {
namespace obs {
namespace {

// Every test runs with metrics enabled and a clean registry; the registry
// is process-global, so tests must not assume absent counters, only values.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::SetEnabled(true);
    MetricsRegistry::Global().Reset();
  }
  void TearDown() override {
    MetricsRegistry::Global().Reset();
    MetricsRegistry::SetEnabled(false);
  }
};

// Macro-driven behavior only exists when instrumentation is compiled in;
// test_obs_disabled.cc covers the ADBSCAN_METRICS=0 side.
#if ADBSCAN_METRICS

TEST_F(ObsTest, CounterAccumulatesDeltas) {
  ADB_COUNT("test.basic", 3);
  ADB_COUNT("test.basic", 4);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(snap.counters.count("test.basic"));
  EXPECT_EQ(snap.counters.at("test.basic"), 7u);
}

TEST_F(ObsTest, ZeroDeltaRegistersCounter) {
  ADB_COUNT("test.zero_registered", 0);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(snap.counters.count("test.zero_registered"));
  EXPECT_EQ(snap.counters.at("test.zero_registered"), 0u);
}

TEST_F(ObsTest, DisabledSitesRecordNothing) {
  ADB_COUNT("test.disabled", 5);
  MetricsRegistry::SetEnabled(false);
  ADB_COUNT("test.disabled", 100);
  MetricsRegistry::SetEnabled(true);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counters.at("test.disabled"), 5u);
}

TEST_F(ObsTest, CrossThreadCountsAggregateLosslessly) {
  // 1000 increments spread over ParallelFor workers; the join guarantees
  // every worker shard has flushed (thread exit) before Snapshot.
  ParallelFor(1000, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) ADB_COUNT("test.parallel", 1);
  });
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counters.at("test.parallel"), 1000u);
}

TEST_F(ObsTest, ResetZeroesValuesButKeepsRegistration) {
  ADB_COUNT("test.reset", 9);
  MetricsRegistry::Global().Reset();
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(snap.counters.count("test.reset"));
  EXPECT_EQ(snap.counters.at("test.reset"), 0u);
}

TEST_F(ObsTest, DistributionTracksCountSumMinMax) {
  ADB_RECORD("test.dist", 4.0);
  ADB_RECORD("test.dist", 1.0);
  ADB_RECORD("test.dist", 10.0);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_TRUE(snap.distributions.count("test.dist"));
  const DistStats& d = snap.distributions.at("test.dist");
  EXPECT_EQ(d.count, 3u);
  EXPECT_DOUBLE_EQ(d.sum, 15.0);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 10.0);
}

TEST_F(ObsTest, EmptyDistributionsAreOmitted) {
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.distributions.count("test.never_recorded"), 0u);
}

TEST_F(ObsTest, NestedPhasesFormATree) {
  {
    ADB_PHASE("outer");
    { ADB_PHASE("inner_a"); }
    { ADB_PHASE("inner_b"); }
  }
  { ADB_PHASE("second_root"); }
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(snap.phases.size(), 2u);
  EXPECT_EQ(snap.phases[0].name, "outer");
  EXPECT_EQ(snap.phases[0].count, 1u);
  ASSERT_EQ(snap.phases[0].children.size(), 2u);
  EXPECT_EQ(snap.phases[0].children[0].name, "inner_a");
  EXPECT_EQ(snap.phases[0].children[1].name, "inner_b");
  EXPECT_EQ(snap.phases[1].name, "second_root");
  EXPECT_TRUE(snap.phases[1].children.empty());
}

TEST_F(ObsTest, ReenteredPhaseAccumulatesIntoOneNode) {
  for (int i = 0; i < 3; ++i) {
    ADB_PHASE("repeated");
  }
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(snap.phases.size(), 1u);
  EXPECT_EQ(snap.phases[0].name, "repeated");
  EXPECT_EQ(snap.phases[0].count, 3u);
  EXPECT_GE(snap.phases[0].ms, 0.0);
}

#if GTEST_HAS_DEATH_TEST
// Resetting while a ScopedPhase is still open would leave the destructor
// with a dangling node pointer; the abort message must name the offending
// phase so the bug is debuggable from CI logs alone.
TEST_F(ObsTest, ResetWithOpenPhaseAbortsNamingThePhase) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ADB_PHASE("doomed_phase");
        MetricsRegistry::Global().Reset();
      },
      "open phase span.*'doomed_phase' opened on thread");
}
#endif  // GTEST_HAS_DEATH_TEST

#endif  // ADBSCAN_METRICS

TEST_F(ObsTest, TotalPhaseMsSumsRootsOnly) {
  MetricsSnapshot snap;
  PhaseNode root1;
  root1.ms = 2.0;
  PhaseNode child;
  child.ms = 100.0;  // child time is already inside the root's span
  root1.children.push_back(child);
  PhaseNode root2;
  root2.ms = 3.0;
  snap.phases = {root1, root2};
  EXPECT_DOUBLE_EQ(snap.TotalPhaseMs(), 5.0);
}

TEST_F(ObsTest, RunRecordJsonRoundTrips) {
  // Direct registry calls (not macros) so this test also runs in
  // ADBSCAN_METRICS=0 builds, where the exporters must keep working.
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Add(reg.CounterId("test.roundtrip"), 42);
  reg.Record(reg.DistributionId("test.roundtrip_dist"), 7.5);
  void* outer = reg.EnterPhase("build");
  void* inner = reg.EnterPhase("sub");
  reg.ExitPhase(inner, 0.5);
  reg.ExitPhase(outer, 1.5);
  RunRecord rec;
  rec.run = "test_run";
  rec.dataset = "ss3d";
  rec.algo = "OurApprox";
  rec.params = {{"eps", "5000"}, {"rho", "0.001"}};
  rec.total_ms = 12.5;
  rec.metrics = MetricsRegistry::Global().Snapshot();

  const std::string json = ToJson(rec);
  const std::optional<RunRecord> parsed = RunRecordFromJson(json);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->run, "test_run");
  EXPECT_EQ(parsed->dataset, "ss3d");
  EXPECT_EQ(parsed->algo, "OurApprox");
  ASSERT_EQ(parsed->params.size(), 2u);
  EXPECT_EQ(parsed->params[0].first, "eps");
  EXPECT_EQ(parsed->params[0].second, "5000");
  EXPECT_DOUBLE_EQ(parsed->total_ms, 12.5);
  EXPECT_EQ(parsed->metrics_enabled, rec.metrics_enabled);
  EXPECT_EQ(parsed->metrics.counters.at("test.roundtrip"), 42u);
  ASSERT_TRUE(parsed->metrics.distributions.count("test.roundtrip_dist"));
  EXPECT_DOUBLE_EQ(
      parsed->metrics.distributions.at("test.roundtrip_dist").sum, 7.5);
  bool found_build = false;
  for (const PhaseNode& p : parsed->metrics.phases) {
    if (p.name != "build") continue;
    found_build = true;
    ASSERT_EQ(p.children.size(), 1u);
    EXPECT_EQ(p.children[0].name, "sub");
  }
  EXPECT_TRUE(found_build);
}

TEST_F(ObsTest, JsonEscapingSurvivesRoundTrip) {
  RunRecord rec;
  rec.run = "quote\"back\\slash";
  rec.dataset = "newline\nand\ttab";
  rec.algo = "ctrl\x01char";
  rec.params = {{"k", "v"}};
  rec.total_ms = 1.0;
  const std::optional<RunRecord> parsed = RunRecordFromJson(ToJson(rec));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->run, rec.run);
  EXPECT_EQ(parsed->dataset, rec.dataset);
  EXPECT_EQ(parsed->algo, rec.algo);
}

TEST_F(ObsTest, MalformedJsonIsRejected) {
  EXPECT_FALSE(RunRecordFromJson("").has_value());
  EXPECT_FALSE(RunRecordFromJson("{").has_value());
  EXPECT_FALSE(RunRecordFromJson("[1,2]").has_value());
  // Valid JSON but missing required fields.
  EXPECT_FALSE(RunRecordFromJson("{\"run\": \"x\"}").has_value());
}

TEST_F(ObsTest, CsvExportHasOneLinePerMetric) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  reg.Add(reg.CounterId("test.csv_counter"), 5);
  reg.ExitPhase(reg.EnterPhase("csv_phase"), 0.25);
  RunRecord rec;
  rec.run = "r";
  rec.dataset = "d";
  rec.algo = "a";
  rec.total_ms = 2.0;
  rec.metrics = MetricsRegistry::Global().Snapshot();
  const std::string csv = ToCsv(rec);
  EXPECT_NE(csv.find("r,d,a,"), std::string::npos);
  EXPECT_NE(csv.find("counter,test.csv_counter,5"), std::string::npos);
  EXPECT_NE(csv.find("phase,csv_phase,"), std::string::npos);
  EXPECT_EQ(CsvHeader(), "run,dataset,algo,total_ms,kind,name,value");
}

}  // namespace
}  // namespace obs
}  // namespace adbscan
