#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "geom/point.h"
#include "rangecount/approx_range_counter.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::RandomDataset;

size_t ExactCount(const Dataset& data, const std::vector<uint32_t>& ids,
                  const double* q, double radius) {
  size_t count = 0;
  const double r2 = radius * radius;
  for (uint32_t id : ids) {
    count += SquaredDistance(q, data.point(id), data.dim()) <= r2;
  }
  return count;
}

std::vector<uint32_t> AllIds(const Dataset& data) {
  std::vector<uint32_t> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

struct RcCase {
  int dim;
  double rho;
};

class RangeCountTest : public ::testing::TestWithParam<RcCase> {};

// The Lemma 5 guarantee: ans ∈ [ exact(ε), exact(ε(1+ρ)) ].
TEST_P(RangeCountTest, SatisfiesLemma5Guarantee) {
  const auto [dim, rho] = GetParam();
  const double eps = 10.0;
  const Dataset data = ClusteredDataset(dim, 800, 5, 100.0, 6.0, 113 + dim);
  const std::vector<uint32_t> ids = AllIds(data);
  const ApproxRangeCounter counter(data, ids, eps, rho);
  Rng rng(127 + dim);
  for (int trial = 0; trial < 60; ++trial) {
    double q[kMaxDim];
    for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(-5.0, 105.0);
    const size_t lo = ExactCount(data, ids, q, eps);
    const size_t hi = ExactCount(data, ids, q, eps * (1.0 + rho));
    const size_t ans = counter.Query(q);
    EXPECT_GE(ans, lo) << "under-count at trial " << trial;
    EXPECT_LE(ans, hi) << "over-count at trial " << trial;
  }
}

// Queries centered exactly on data points stress the boundary cases.
TEST_P(RangeCountTest, GuaranteeHoldsOnDataPoints) {
  const auto [dim, rho] = GetParam();
  const double eps = 8.0;
  const Dataset data = RandomDataset(dim, 500, 0.0, 60.0, 131 + dim);
  const std::vector<uint32_t> ids = AllIds(data);
  const ApproxRangeCounter counter(data, ids, eps, rho);
  for (size_t i = 0; i < data.size(); i += 7) {
    const double* q = data.point(i);
    const size_t lo = ExactCount(data, ids, q, eps);
    const size_t hi = ExactCount(data, ids, q, eps * (1.0 + rho));
    const size_t ans = counter.Query(q);
    EXPECT_GE(ans, lo);
    EXPECT_LE(ans, hi);
    EXPECT_GE(ans, 1u);  // the point itself is always inside B(q, eps)
  }
}

TEST_P(RangeCountTest, NonzeroConsistentWithQuery) {
  const auto [dim, rho] = GetParam();
  const double eps = 5.0;
  const Dataset data = RandomDataset(dim, 300, 0.0, 200.0, 137 + dim);
  const ApproxRangeCounter counter(data, AllIds(data), eps, rho);
  Rng rng(139 + dim);
  for (int trial = 0; trial < 80; ++trial) {
    double q[kMaxDim];
    for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(0.0, 200.0);
    const size_t ans = counter.Query(q);
    const bool nonzero = counter.QueryNonzero(q);
    if (ans > 0) {
      EXPECT_TRUE(nonzero);
    }
    // QueryNonzero may legally differ from Query == 0 only inside the
    // (ε, ε(1+ρ)] slack band; verify against the exact bands instead.
    const size_t lo = ExactCount(data, AllIds(data), q, eps);
    const size_t hi =
        ExactCount(data, AllIds(data), q, eps * (1.0 + rho));
    if (lo > 0) EXPECT_TRUE(nonzero);
    if (hi == 0) EXPECT_FALSE(nonzero);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndRhos, RangeCountTest,
    ::testing::Values(RcCase{2, 0.001}, RcCase{2, 0.1}, RcCase{3, 0.01},
                      RcCase{5, 0.05}, RcCase{7, 0.1}, RcCase{3, 1.0},
                      RcCase{2, 2.0}));

TEST(RangeCount, QueryAtLeastConsistentWithBands) {
  const int dim = 3;
  const double eps = 10.0, rho = 0.02;
  const Dataset data = ClusteredDataset(dim, 600, 4, 80.0, 5.0, 171);
  const std::vector<uint32_t> ids = AllIds(data);
  const ApproxRangeCounter counter(data, ids, eps, rho);
  Rng rng(173);
  for (int trial = 0; trial < 50; ++trial) {
    double q[kMaxDim];
    for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(0.0, 80.0);
    const size_t lo = ExactCount(data, ids, q, eps);
    const size_t hi = ExactCount(data, ids, q, eps * (1.0 + rho));
    for (size_t threshold : {size_t(1), size_t(5), size_t(50), size_t(500)}) {
      const bool at_least = counter.QueryAtLeast(q, threshold);
      if (lo >= threshold) EXPECT_TRUE(at_least);
      if (hi < threshold) EXPECT_FALSE(at_least);
    }
    EXPECT_TRUE(counter.QueryAtLeast(q, 0));
  }
}

TEST(RangeCount, LevelCountMatchesFormula) {
  const Dataset data = RandomDataset(2, 50, 0.0, 10.0, 149);
  std::vector<uint32_t> ids = AllIds(data);
  EXPECT_EQ(ApproxRangeCounter(data, ids, 1.0, 0.001).num_levels(),
            1 + static_cast<int>(std::ceil(std::log2(1000.0))));
  EXPECT_EQ(ApproxRangeCounter(data, ids, 1.0, 0.5).num_levels(), 2);
  EXPECT_EQ(ApproxRangeCounter(data, ids, 1.0, 1.0).num_levels(), 1);
  EXPECT_EQ(ApproxRangeCounter(data, ids, 1.0, 4.0).num_levels(), 1);
}

TEST(RangeCount, EmptySubset) {
  const Dataset data = RandomDataset(2, 10, 0.0, 10.0, 151);
  const ApproxRangeCounter counter(data, {}, 1.0, 0.01);
  const double q[] = {5.0, 5.0};
  EXPECT_EQ(counter.Query(q), 0u);
  EXPECT_FALSE(counter.QueryNonzero(q));
}

TEST(RangeCount, SubsetOnlyCountsSubset) {
  Dataset data(2);
  for (int i = 0; i < 10; ++i) data.Add({0.0, 0.0});
  for (int i = 0; i < 5; ++i) data.Add({0.1, 0.1});
  const ApproxRangeCounter counter(data, {0, 1, 2}, 1.0, 0.01);
  const double q[] = {0.0, 0.0};
  EXPECT_EQ(counter.Query(q), 3u);
}

TEST(RangeCount, FarQueryIsZero) {
  const Dataset data = RandomDataset(3, 200, 0.0, 10.0, 157);
  const ApproxRangeCounter counter(data, AllIds(data), 2.0, 0.001);
  const double q[] = {1000.0, 1000.0, 1000.0};
  EXPECT_EQ(counter.Query(q), 0u);
  EXPECT_FALSE(counter.QueryNonzero(q));
}

TEST(RangeCount, WholeSetInsideBigBall) {
  const Dataset data = RandomDataset(2, 300, 0.0, 10.0, 163);
  const ApproxRangeCounter counter(data, AllIds(data), 100.0, 0.01);
  const double q[] = {5.0, 5.0};
  EXPECT_EQ(counter.Query(q), 300u);
}

TEST(RangeCount, ManyRootsPathAgrees) {
  // Spread data so the level-0 grid has > 32 roots, exercising the kd-tree
  // root lookup path.
  const Dataset data = RandomDataset(2, 2000, 0.0, 10000.0, 167);
  const double eps = 50.0;
  const double rho = 0.01;
  const std::vector<uint32_t> ids = AllIds(data);
  const ApproxRangeCounter counter(data, ids, eps, rho);
  Rng rng(173);
  for (int trial = 0; trial < 40; ++trial) {
    double q[2] = {rng.NextDouble(0, 10000), rng.NextDouble(0, 10000)};
    const size_t ans = counter.Query(q);
    EXPECT_GE(ans, ExactCount(data, ids, q, eps));
    EXPECT_LE(ans, ExactCount(data, ids, q, eps * (1 + rho)));
  }
}

TEST(RangeCount, CoincidentPoints) {
  Dataset data(4);
  for (int i = 0; i < 64; ++i) data.Add({1.0, 1.0, 1.0, 1.0});
  const ApproxRangeCounter counter(data, AllIds(data), 0.5, 0.001);
  const double q[] = {1.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(counter.Query(q), 64u);
  const double far[] = {3.0, 1.0, 1.0, 1.0};
  EXPECT_EQ(counter.Query(far), 0u);
}

}  // namespace
}  // namespace adbscan
