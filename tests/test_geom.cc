#include <gtest/gtest.h>

#include <cmath>

#include "geom/box.h"
#include "geom/point.h"
#include "util/rng.h"

namespace adbscan {
namespace {

TEST(Point, DistanceMatchesHandComputation) {
  const double a[] = {0.0, 0.0, 0.0};
  const double b[] = {1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, b, 3), 9.0);
  EXPECT_DOUBLE_EQ(Distance(a, b, 3), 3.0);
}

TEST(Point, DistanceToSelfIsZero) {
  const double a[] = {3.5, -2.0, 7.0, 1.0};
  EXPECT_DOUBLE_EQ(SquaredDistance(a, a, 4), 0.0);
}

TEST(Point, WithinDistanceBoundaryIsClosed) {
  const double a[] = {0.0, 0.0};
  const double b[] = {3.0, 4.0};
  EXPECT_TRUE(WithinDistance(a, b, 2, 5.0));
  EXPECT_FALSE(WithinDistance(a, b, 2, 4.999999));
}

TEST(Point, SymmetricDistance) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    double a[5], b[5];
    for (int i = 0; i < 5; ++i) {
      a[i] = rng.NextDouble(-100, 100);
      b[i] = rng.NextDouble(-100, 100);
    }
    EXPECT_DOUBLE_EQ(SquaredDistance(a, b, 5), SquaredDistance(b, a, 5));
  }
}

Box MakeBox2D(double x0, double y0, double x1, double y1) {
  Box b = Box::Empty(2);
  const double lo[] = {x0, y0};
  const double hi[] = {x1, y1};
  b.ExpandToPoint(lo);
  b.ExpandToPoint(hi);
  return b;
}

TEST(Box, EmptyContainsNothing) {
  const Box b = Box::Empty(2);
  const double p[] = {0.0, 0.0};
  EXPECT_FALSE(b.ContainsPoint(p));
}

TEST(Box, ExpandToPointGrowsBounds) {
  Box b = Box::Empty(2);
  const double p[] = {1.0, 2.0};
  b.ExpandToPoint(p);
  EXPECT_TRUE(b.ContainsPoint(p));
  EXPECT_DOUBLE_EQ(b.lo[0], 1.0);
  EXPECT_DOUBLE_EQ(b.hi[1], 2.0);
}

TEST(Box, MinDistZeroInside) {
  const Box b = MakeBox2D(0, 0, 10, 10);
  const double p[] = {5.0, 5.0};
  EXPECT_DOUBLE_EQ(b.MinSquaredDistToPoint(p), 0.0);
}

TEST(Box, MinDistToOutsidePoint) {
  const Box b = MakeBox2D(0, 0, 10, 10);
  const double p[] = {13.0, 14.0};
  EXPECT_DOUBLE_EQ(b.MinSquaredDistToPoint(p), 9.0 + 16.0);
}

TEST(Box, MaxDistIsFarthestCorner) {
  const Box b = MakeBox2D(0, 0, 10, 10);
  const double p[] = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(b.MaxSquaredDistToPoint(p), 81.0 + 81.0);
}

TEST(Box, BoxBoxMinDistDisjoint) {
  const Box a = MakeBox2D(0, 0, 1, 1);
  const Box b = MakeBox2D(4, 5, 6, 7);
  EXPECT_DOUBLE_EQ(a.MinSquaredDistToBox(b), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(b.MinSquaredDistToBox(a), 9.0 + 16.0);
}

TEST(Box, BoxBoxMinDistOverlapping) {
  const Box a = MakeBox2D(0, 0, 5, 5);
  const Box b = MakeBox2D(3, 3, 8, 8);
  EXPECT_DOUBLE_EQ(a.MinSquaredDistToBox(b), 0.0);
}

TEST(Box, IntersectsBallBoundary) {
  const Box b = MakeBox2D(3, 0, 5, 1);
  const double q[] = {0.0, 0.0};
  EXPECT_TRUE(b.IntersectsBall(q, 3.0));
  EXPECT_FALSE(b.IntersectsBall(q, 2.999));
}

TEST(Box, InsideBallRequiresAllCorners) {
  const Box b = MakeBox2D(0, 0, 1, 1);
  const double q[] = {0.0, 0.0};
  EXPECT_TRUE(b.InsideBall(q, std::sqrt(2.0) + 1e-12));
  EXPECT_FALSE(b.InsideBall(q, 1.2));
}

TEST(Box, VolumeAndMargin) {
  const Box b = MakeBox2D(0, 0, 2, 3);
  EXPECT_DOUBLE_EQ(b.Volume(), 6.0);
  EXPECT_DOUBLE_EQ(b.Margin(), 5.0);
  EXPECT_DOUBLE_EQ(b.MaxExtent(), 3.0);
}

TEST(Box, OverlapVolume) {
  const Box a = MakeBox2D(0, 0, 4, 4);
  const Box b = MakeBox2D(2, 2, 6, 6);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(b), 4.0);
  const Box c = MakeBox2D(10, 10, 11, 11);
  EXPECT_DOUBLE_EQ(a.OverlapVolume(c), 0.0);
}

TEST(Box, RandomizedMinMaxConsistency) {
  Rng rng(21);
  for (int trial = 0; trial < 200; ++trial) {
    Box b = Box::Empty(3);
    double p1[3], p2[3], q[3];
    for (int i = 0; i < 3; ++i) {
      p1[i] = rng.NextDouble(-50, 50);
      p2[i] = rng.NextDouble(-50, 50);
      q[i] = rng.NextDouble(-100, 100);
    }
    b.ExpandToPoint(p1);
    b.ExpandToPoint(p2);
    EXPECT_LE(b.MinSquaredDistToPoint(q), SquaredDistance(q, p1, 3));
    EXPECT_GE(b.MaxSquaredDistToPoint(q), SquaredDistance(q, p2, 3));
    EXPECT_LE(b.MinSquaredDistToPoint(q), b.MaxSquaredDistToPoint(q));
  }
}

}  // namespace
}  // namespace adbscan
