// Fuzz-style robustness tests for io/dataset_io.cc: malformed, truncated,
// and randomly corrupted inputs must produce a clean error from the TryRead*
// entry points — never a crash, hang, or silently misparsed dataset. The
// whole file is valuable under the asan-ubsan preset, where any buffer
// overrun or UB in the parsers turns into a hard failure.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "geom/dataset.h"
#include "geom/point.h"
#include "io/dataset_io.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace adbscan {
namespace {

using testing_helpers::RandomDataset;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void WriteFile(const std::string& path, const std::string& bytes) {
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  if (!bytes.empty()) {
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  }
  std::fclose(f);
}

std::string ReadFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  if (f == nullptr) return "";
  std::string bytes;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) bytes.append(buf, n);
  std::fclose(f);
  return bytes;
}

// Every outcome is acceptable except a crash or a malformed "success":
// either a populated error and nullopt, or a structurally valid dataset.
void ExpectCleanCsvOutcome(const std::string& path, int dim) {
  std::string error;
  std::optional<Dataset> data = TryReadCsv(path, dim, &error);
  if (data.has_value()) {
    EXPECT_EQ(data->dim(), dim);
    EXPECT_GT(data->size(), 0u);
    for (size_t i = 0; i < data->size(); ++i) {
      for (int j = 0; j < dim; ++j) {
        EXPECT_TRUE(std::isfinite(data->point(i)[j]));
      }
    }
  } else {
    EXPECT_FALSE(error.empty());
    EXPECT_NE(error.find(path), std::string::npos)
        << "error must name the path: " << error;
  }
}

void ExpectCleanBinaryOutcome(const std::string& path) {
  std::string error;
  std::optional<Dataset> data = TryReadBinary(path, &error);
  if (data.has_value()) {
    EXPECT_GE(data->dim(), 1);
    EXPECT_LE(data->dim(), kMaxDim);
  } else {
    EXPECT_FALSE(error.empty());
  }
}

TEST(DatasetIoFuzz, CsvHandWrittenMalformedInputs) {
  const std::string path = TempPath("malformed.csv");
  const struct {
    const char* name;
    std::string content;
    bool ok;  // should parse as a valid 3-d dataset
  } cases[] = {
      {"empty file", "", false},
      {"only blank lines", "\n\n  \n\t\n", false},
      {"valid single row", "1,2,3\n", true},
      {"valid no trailing newline", "1,2,3", true},
      {"crlf endings", "1,2,3\r\n4,5,6\r\n", true},
      {"spaces around fields", " 1 , 2 , 3 \n", true},
      {"blank line between rows", "1,2,3\n\n4,5,6\n", true},
      {"scientific notation", "1e3,-2.5E-2,+3.25\n", true},
      {"truncated row", "1,2\n", false},
      {"truncated row after valid", "1,2,3\n4,5\n", false},
      {"extra column", "1,2,3,4\n", false},
      {"trailing comma", "1,2,3,\n", false},
      {"double comma", "1,,3\n", false},
      {"non-numeric token", "1,two,3\n", false},
      {"non-numeric garbage", "hello world\n", false},
      {"number then garbage", "1,2,3abc\n", false},
      {"inf coordinate", "1,inf,3\n", false},
      {"nan coordinate", "nan,2,3\n", false},
      {"null bytes", std::string("1,2,3\0\n", 7), false},
      {"header row", "x,y,z\n1,2,3\n", false},
  };
  for (const auto& c : cases) {
    WriteFile(path, c.content);
    std::string error;
    std::optional<Dataset> data = TryReadCsv(path, 3, &error);
    EXPECT_EQ(data.has_value(), c.ok) << c.name << ": " << error;
    if (!c.ok) {
      EXPECT_FALSE(error.empty()) << c.name;
    }
  }
  // Nonexistent path and bad dimensionality.
  std::string error;
  EXPECT_FALSE(
      TryReadCsv(TempPath("does_not_exist.csv"), 3, &error).has_value());
  WriteFile(path, "1,2,3\n");
  EXPECT_FALSE(TryReadCsv(path, 0, &error).has_value());
  EXPECT_FALSE(TryReadCsv(path, kMaxDim + 1, &error).has_value());
  // A null error pointer must be tolerated.
  WriteFile(path, "garbage\n");
  EXPECT_FALSE(TryReadCsv(path, 3, nullptr).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, CsvInconsistentDimensionality) {
  const std::string path = TempPath("dims.csv");
  // Row width flips between 2 and 3: must fail for BOTH requested dims
  // rather than silently gluing tokens across rows (the old fixed-buffer
  // reader's failure mode).
  WriteFile(path, "1,2\n1,2,3\n4,5\n");
  std::string error;
  EXPECT_FALSE(TryReadCsv(path, 2, &error).has_value());
  EXPECT_FALSE(TryReadCsv(path, 3, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, CsvVeryLongLinesDoNotSplit) {
  // Lines longer than any plausible internal buffer: a correct parser sees
  // one over-wide row and rejects it; a buffer-truncating parser would split
  // it into several "valid" rows and silently fabricate points.
  const std::string path = TempPath("long.csv");
  std::string line;
  for (int i = 0; i < 4000; ++i) {
    if (i > 0) line += ',';
    line += "1.5";
  }
  WriteFile(path, line + "\n");
  std::string error;
  EXPECT_FALSE(TryReadCsv(path, 3, &error).has_value()) << error;
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, CsvRandomizedGarbage) {
  const std::string path = TempPath("garbage.csv");
  Rng rng(20260805);
  const std::string alphabet = "0123456789.,-+eE \t\nabcXYZ%$#\r";
  for (int round = 0; round < 200; ++round) {
    const size_t len = rng.NextBounded(400);
    std::string content;
    content.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      content += alphabet[rng.NextBounded(alphabet.size())];
    }
    WriteFile(path, content);
    ExpectCleanCsvOutcome(path, 1 + static_cast<int>(rng.NextBounded(5)));
  }
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, CsvRoundTripSurvivesStrictParser) {
  // The strict parser must still accept everything WriteCsv emits.
  const std::string path = TempPath("strict_roundtrip.csv");
  for (int dim : {1, 2, 7}) {
    const Dataset original = RandomDataset(dim, 83, -1e6, 1e6, 9000 + dim);
    WriteCsv(original, path);
    std::string error;
    std::optional<Dataset> loaded = TryReadCsv(path, dim, &error);
    ASSERT_TRUE(loaded.has_value()) << error;
    ASSERT_EQ(loaded->size(), original.size());
  }
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, BinaryTruncationSweep) {
  const std::string path = TempPath("trunc.bin");
  const Dataset original = RandomDataset(3, 17, -10.0, 10.0, 9100);
  WriteBinary(original, path);
  const std::string full = ReadFile(path);
  ASSERT_EQ(full.size(), 16 + 17 * 3 * sizeof(double));
  // Every strict prefix must fail cleanly; only the full file round-trips.
  for (size_t keep = 0; keep < full.size(); ++keep) {
    WriteFile(path, full.substr(0, keep));
    std::string error;
    EXPECT_FALSE(TryReadBinary(path, &error).has_value())
        << "prefix of " << keep << " bytes parsed";
    EXPECT_FALSE(error.empty());
  }
  WriteFile(path, full);
  std::string error;
  std::optional<Dataset> loaded = TryReadBinary(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  EXPECT_EQ(loaded->coords(), original.coords());
  // Trailing bytes are rejected, not ignored.
  WriteFile(path, full + "x");
  EXPECT_FALSE(TryReadBinary(path, &error).has_value());
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, BinaryHeaderCorruption) {
  const std::string path = TempPath("corrupt.bin");
  const Dataset original = RandomDataset(2, 5, 0.0, 1.0, 9200);
  WriteBinary(original, path);
  const std::string full = ReadFile(path);
  Rng rng(20260806);
  // Random single-byte corruptions across the whole file. Header bits flip
  // the magic / dim / count into invalid combinations; payload bits only
  // change coordinate values — either way the reader must stay clean.
  for (int round = 0; round < 300; ++round) {
    std::string bytes = full;
    const size_t pos = rng.NextBounded(bytes.size());
    bytes[pos] = static_cast<char>(bytes[pos] ^ (1u << rng.NextBounded(8)));
    WriteFile(path, bytes);
    ExpectCleanBinaryOutcome(path);
  }
  // Targeted headers: huge n with no payload must not attempt a huge
  // allocation (the reader validates against the file size first).
  std::string bytes = full.substr(0, 16);
  const uint64_t huge = UINT64_MAX / 16;
  std::memcpy(&bytes[8], &huge, sizeof(huge));
  WriteFile(path, bytes);
  std::string error;
  EXPECT_FALSE(TryReadBinary(path, &error).has_value());
  // dim = 0 and dim > kMaxDim.
  for (uint32_t bad_dim : {0u, static_cast<uint32_t>(kMaxDim) + 1, 1u << 30}) {
    bytes = full;
    std::memcpy(&bytes[4], &bad_dim, sizeof(bad_dim));
    WriteFile(path, bytes);
    EXPECT_FALSE(TryReadBinary(path, &error).has_value()) << bad_dim;
  }
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, BinaryRandomGarbage) {
  const std::string path = TempPath("garbage.bin");
  Rng rng(20260807);
  for (int round = 0; round < 200; ++round) {
    const size_t len = rng.NextBounded(128);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.NextBounded(256));
    WriteFile(path, bytes);
    ExpectCleanBinaryOutcome(path);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// TryMapBinary: the mmap loader must accept exactly the files TryReadBinary
// accepts, yield bit-identical coordinates, and reject everything else with
// a clean error through the non-aborting path — never a crash or a SIGBUS
// waiting to happen.

TEST(DatasetIoFuzz, MmapMatchesInRamRead) {
  const std::string path = TempPath("mmap_roundtrip.bin");
  for (int dim : {1, 3, 7}) {
    const Dataset original = RandomDataset(dim, 61, -1e5, 1e5, 9300 + dim);
    WriteBinary(original, path);
    std::string map_error, read_error;
    std::optional<Dataset> mapped = TryMapBinary(path, &map_error);
    std::optional<Dataset> read = TryReadBinary(path, &read_error);
    ASSERT_TRUE(mapped.has_value()) << map_error;
    ASSERT_TRUE(read.has_value()) << read_error;
    EXPECT_TRUE(mapped->external());
    EXPECT_FALSE(read->external());
    ASSERT_EQ(mapped->dim(), read->dim());
    ASSERT_EQ(mapped->size(), read->size());
    EXPECT_EQ(std::memcmp(mapped->raw(), read->raw(),
                          mapped->size() * dim * sizeof(double)),
              0);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, MmapTruncationSweepAgreesWithInRamRead) {
  // Truncated and odd-length prefixes: both loaders must agree on every
  // accept/reject decision (only the full file parses) and both must report
  // failures through the non-aborting Try* path.
  const std::string path = TempPath("mmap_trunc.bin");
  const Dataset original = RandomDataset(2, 9, -4.0, 4.0, 9400);
  WriteBinary(original, path);
  const std::string full = ReadFile(path);
  for (size_t keep = 0; keep <= full.size(); ++keep) {
    WriteFile(path, full.substr(0, keep));
    std::string map_error, read_error;
    std::optional<Dataset> mapped = TryMapBinary(path, &map_error);
    std::optional<Dataset> read = TryReadBinary(path, &read_error);
    ASSERT_EQ(mapped.has_value(), read.has_value()) << "at " << keep;
    if (!mapped.has_value()) {
      EXPECT_FALSE(map_error.empty()) << "at " << keep;
      EXPECT_EQ(map_error, read_error) << "at " << keep;
    }
  }
  WriteFile(path, full + "zz");
  std::string error;
  EXPECT_FALSE(TryMapBinary(path, &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, MmapRandomGarbageAndCorruption) {
  const std::string path = TempPath("mmap_garbage.bin");
  Rng rng(20260808);
  for (int round = 0; round < 200; ++round) {
    const size_t len = rng.NextBounded(160);
    std::string bytes(len, '\0');
    for (char& c : bytes) c = static_cast<char>(rng.NextBounded(256));
    WriteFile(path, bytes);
    std::string map_error, read_error;
    std::optional<Dataset> mapped = TryMapBinary(path, &map_error);
    std::optional<Dataset> read = TryReadBinary(path, &read_error);
    ASSERT_EQ(mapped.has_value(), read.has_value()) << "round " << round;
    if (mapped.has_value()) {
      EXPECT_EQ(mapped->size(), read->size());
    } else {
      EXPECT_FALSE(map_error.empty());
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetIoFuzz, MmapRejectsUnreadableInputs) {
  std::string error;
  // Nonexistent path.
  EXPECT_FALSE(
      TryMapBinary(TempPath("mmap_does_not_exist.bin"), &error).has_value());
  EXPECT_FALSE(error.empty());
  // A directory is not mappable dataset bytes.
  error.clear();
  EXPECT_FALSE(TryMapBinary(::testing::TempDir(), &error).has_value());
  EXPECT_NE(error.find("not a regular file"), std::string::npos) << error;
  // Permission-denied file (root bypasses mode bits, so only enforceable
  // for unprivileged runs).
  if (::geteuid() != 0) {
    const std::string path = TempPath("mmap_unreadable.bin");
    WriteFile(path, "x");
    ASSERT_EQ(::chmod(path.c_str(), 0), 0);
    error.clear();
    EXPECT_FALSE(TryMapBinary(path, &error).has_value());
    EXPECT_FALSE(error.empty());
    ::chmod(path.c_str(), 0600);
    std::remove(path.c_str());
  }
}

TEST(DatasetIoFuzz, MmapEmptyDatasetAndCopies) {
  const std::string path = TempPath("mmap_empty.bin");
  WriteBinary(Dataset(4), path);
  std::string error;
  std::optional<Dataset> empty = TryMapBinary(path, &error);
  ASSERT_TRUE(empty.has_value()) << error;
  EXPECT_EQ(empty->size(), 0u);
  EXPECT_EQ(empty->dim(), 4);

  // The mapping must outlive the Dataset that created it via copies/moves:
  // copies share the keepalive, and dropping the original keeps pages valid.
  const Dataset original = RandomDataset(3, 33, -1.0, 1.0, 9500);
  WriteBinary(original, path);
  std::optional<Dataset> mapped = TryMapBinary(path, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  Dataset copy = *mapped;
  Dataset moved = std::move(*mapped);
  mapped.reset();
  ASSERT_EQ(copy.size(), original.size());
  ASSERT_EQ(moved.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(copy.point(i)[j], original.point(i)[j]);
      EXPECT_EQ(moved.point(i)[j], original.point(i)[j]);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace adbscan
