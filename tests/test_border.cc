#include <gtest/gtest.h>

#include "core/border.h"
#include "core/core_labeling.h"
#include "core/exact_grid.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::MakeDataset;

// Border semantics are exercised end-to-end through ExactGridDbscan, which
// wires AssignBorderPoints into the grid pipeline.

TEST(Border, SharedBorderPointJoinsBothClusters) {
  // Two clusters radiating away from a shared border point at the origin,
  // which touches exactly one core point of each (2 + itself = 3 < MinPts).
  const Dataset data = MakeDataset({
      {0.9, 0.0}, {1.2, 0.0}, {1.2, 0.3}, {1.5, 0.0},       // cluster 0
      {0.0, 0.0},                                            // shared border
      {-0.9, 0.0}, {-1.2, 0.0}, {-1.2, 0.3}, {-1.5, 0.0},   // cluster 1
  });
  const DbscanParams params{1.0, 4};
  const Clustering c = ExactGridDbscan(data, params);
  ASSERT_EQ(c.num_clusters, 2);
  EXPECT_FALSE(c.is_core[4]);
  // Primary label is the smaller cluster id; the other is an extra.
  EXPECT_EQ(c.label[4], 0);
  ASSERT_EQ(c.extra_memberships.size(), 1u);
  EXPECT_EQ(c.extra_memberships[0],
            (std::pair<uint32_t, int32_t>{4u, 1}));
}

TEST(Border, BorderExactlyAtEps) {
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {-0.1, 0.0}, {0.0, -0.1}, {-0.1, -0.1},
      {3.0, 0.0},  // exactly eps from (0,0), farther from the rest
  });
  const Clustering c = ExactGridDbscan(data, DbscanParams{3.0, 4});
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.label[4], 0);
  EXPECT_FALSE(c.is_core[4]);
}

TEST(Border, JustBeyondEpsIsNoise) {
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1}, {0.1, 0.1},
      {3.2, 0.0},
  });
  const Clustering c = ExactGridDbscan(data, DbscanParams{3.0, 4});
  EXPECT_EQ(c.label[4], kNoise);
}

TEST(Border, BorderNearNonCorePointOnlyIsNoise) {
  // Chain: dense block - border b1 - faraway b2. b2 is within eps of b1
  // only; since b1 is not core, b2 stays noise.
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {0.2, 0.0}, {0.0, 0.2}, {0.2, 0.2}, {0.1, 0.1},  // block
      {1.15, 0.0},  // b1: 2 block cores + b2 + self = 4 < MinPts = 5
      {2.1, 0.0},   // b2: within eps of b1 only
  });
  const Clustering c = ExactGridDbscan(data, DbscanParams{1.0, 5});
  EXPECT_FALSE(c.is_core[5]);
  EXPECT_EQ(c.label[5], 0);
  EXPECT_EQ(c.label[6], kNoise);
}

TEST(Border, ExtrasAreSortedAndUnique) {
  // Three clusters radiating away from a central border point. The center
  // touches exactly one core point per cluster (3 neighbors + itself = 4 <
  // MinPts = 5), so it is a border point of all three clusters.
  const Dataset data = MakeDataset({
      // Cluster A: extends to the right; nearest point (0.9, 0).
      {0.9, 0.0}, {1.2, 0.0}, {1.2, 0.3}, {1.5, 0.0}, {1.5, 0.3},
      // Cluster B: mirrored to the left.
      {-0.9, 0.0}, {-1.2, 0.0}, {-1.2, 0.3}, {-1.5, 0.0}, {-1.5, 0.3},
      // Cluster C: extends upward.
      {0.0, 0.9}, {0.0, 1.2}, {0.3, 1.2}, {0.0, 1.5}, {0.3, 1.5},
      // Central border point.
      {0.0, 0.0},
  });
  const Clustering c = ExactGridDbscan(data, DbscanParams{1.0, 5});
  ASSERT_EQ(c.num_clusters, 3);
  EXPECT_FALSE(c.is_core[15]);
  EXPECT_EQ(c.label[15], 0);
  ASSERT_EQ(c.extra_memberships.size(), 2u);
  EXPECT_EQ(c.extra_memberships[0],
            (std::pair<uint32_t, int32_t>{15u, 1}));
  EXPECT_EQ(c.extra_memberships[1],
            (std::pair<uint32_t, int32_t>{15u, 2}));
}

}  // namespace
}  // namespace adbscan
