#include <gtest/gtest.h>

#include "core/approx_dbscan.h"
#include "core/exact_grid.h"
#include "eval/collapse.h"
#include "eval/compare.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::MakeDataset;

TEST(CollapsingRadius, TwoBlobsCollapseAtTheirGap) {
  // Two tight blobs 100 apart (MinPts=3): below ~100 two clusters, above
  // one. The collapsing radius must land near the gap.
  Dataset data(2);
  for (int i = 0; i < 10; ++i) {
    data.Add({i * 0.1, 0.0});
    data.Add({100.0 + i * 0.1, 0.0});
  }
  CollapseOptions opts;
  opts.eps_lo = 1.0;
  opts.use_approx = false;
  const double r = FindCollapsingRadius(data, 3, opts);
  EXPECT_GT(r, 90.0);
  EXPECT_LT(r, 101.0);
  // Verify the defining property on both sides of the returned radius.
  EXPECT_EQ(ExactGridDbscan(data, {r * 1.01, 3}).num_clusters, 1);
  EXPECT_GE(ExactGridDbscan(data, {r * 0.9, 3}).num_clusters, 2);
}

TEST(CollapsingRadius, AlreadyCollapsedReturnsLowerBracket) {
  Dataset data(2);
  for (int i = 0; i < 20; ++i) data.Add({i * 0.01, 0.0});
  CollapseOptions opts;
  opts.eps_lo = 5.0;
  opts.use_approx = false;
  EXPECT_DOUBLE_EQ(FindCollapsingRadius(data, 3, opts), 5.0);
}

TEST(CollapsingRadius, ApproxAndExactModesAgreeRoughly) {
  Dataset data(2);
  for (int i = 0; i < 15; ++i) {
    data.Add({i * 1.0, 0.0});
    data.Add({500.0 + i * 1.0, 300.0});
  }
  CollapseOptions exact_opts, approx_opts;
  exact_opts.use_approx = false;
  exact_opts.eps_lo = 10.0;
  approx_opts.use_approx = true;
  approx_opts.eps_lo = 10.0;
  const double re = FindCollapsingRadius(data, 3, exact_opts);
  const double ra = FindCollapsingRadius(data, 3, approx_opts);
  EXPECT_NEAR(re, ra, re * 0.05);
}

TEST(MaxLegalRho, LargeForWellSeparatedClusters) {
  // Gap = 50x eps: any rho up to the cap keeps the same clusters.
  Dataset data(2);
  for (int i = 0; i < 8; ++i) {
    data.Add({i * 0.5, 0.0});
    data.Add({500.0 + i * 0.5, 0.0});
  }
  const DbscanParams params{10.0, 3};
  const double max_rho = MaxLegalRho(data, params);
  EXPECT_DOUBLE_EQ(max_rho, MaxLegalRhoOptions{}.rho_hi);
}

TEST(MaxLegalRho, SmallNearAMergeBoundary) {
  // Gap barely above eps: already rho slightly above gap/eps - 1 may merge,
  // so the maximum legal rho must be below that.
  Dataset data(2);
  for (int i = 0; i < 8; ++i) data.Add({i * 0.5, 0.0});       // block A ends at 3.5
  for (int i = 0; i < 8; ++i) data.Add({14.0 + i * 0.5, 0.0});  // gap 10.5
  const DbscanParams params{10.0, 3};  // gap/eps - 1 = 0.05
  const double max_rho = MaxLegalRho(data, params);
  // Below 0.05 the guarantee forbids merging (gap > eps(1+rho)), so the
  // bisection must reach at least ~0.05; in the don't-care band the merge
  // kicks in once a counting cell straddles the eps boundary, which happens
  // by rho ~ 0.15 for this geometry (singleton-path compression places the
  // isolated block points in deepest-level cells, so the straddle starts a
  // little later than the pre-compression ~0.08).
  EXPECT_GE(max_rho, 0.0495);
  EXPECT_LE(max_rho, 0.15);
  // The returned value must itself be legal.
  const Clustering exact = ExactGridDbscan(data, params);
  EXPECT_TRUE(SameClusters(exact, ApproxDbscan(data, params, max_rho)));
}

TEST(MaxLegalRho, ZeroWhenEvenTinyRhoChangesResult) {
  // Gap in (eps, eps(1+rho_lo)]: the approximation may merge at every rho —
  // whether it does depends on the algorithm, so just check the contract:
  // the result is 0 iff rho_lo itself is illegal, and any positive return
  // is legal.
  Dataset data(2);
  for (int i = 0; i < 8; ++i) data.Add({i * 0.5, 0.0});
  for (int i = 0; i < 8; ++i) data.Add({13.50005 + i * 0.5, 0.0});
  const DbscanParams params{10.0, 3};  // gap = 10.00005 = eps * (1 + 5e-6)
  MaxLegalRhoOptions opts;
  opts.rho_lo = 1e-3;
  const double max_rho = MaxLegalRho(data, params, opts);
  const Clustering exact = ExactGridDbscan(data, params);
  if (max_rho == 0.0) {
    EXPECT_FALSE(SameClusters(exact, ApproxDbscan(data, params, opts.rho_lo)));
  } else {
    EXPECT_TRUE(SameClusters(exact, ApproxDbscan(data, params, max_rho)));
  }
}

}  // namespace
}  // namespace adbscan
