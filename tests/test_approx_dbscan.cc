#include <gtest/gtest.h>

#include "core/approx_dbscan.h"
#include "core/brute_reference.h"
#include "core/exact_grid.h"
#include "eval/compare.h"
#include "gen/seed_spreader.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

TEST(ApproxDbscan, TinyRhoMatchesExactOnWellSeparatedClusters) {
  // Clusters separated by much more than ε(1+ρ): the approximation cannot
  // merge anything, so the result must equal exact DBSCAN.
  Dataset data(2);
  Rng rng(301);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 100; ++i) {
      data.Add({c * 1000.0 + rng.NextDouble(0, 20),
                c * 1000.0 + rng.NextDouble(0, 20)});
    }
  }
  const DbscanParams params{5.0, 4};
  const Clustering exact = ExactGridDbscan(data, params);
  EXPECT_EQ(exact.num_clusters, 3);
  for (double rho : {0.001, 0.01, 0.1, 1.0}) {
    EXPECT_TRUE(SameClusters(exact, ApproxDbscan(data, params, rho)))
        << "rho " << rho;
  }
}

TEST(ApproxDbscan, ProducesLegalRhoApproximateResult) {
  // Problem 2 requirements: every core point in exactly one cluster; every
  // cluster non-empty and owning a core point.
  const Dataset data = ClusteredDataset(3, 500, 4, 100.0, 5.0, 307);
  const DbscanParams params{8.0, 5};
  const Clustering c = ApproxDbscan(data, params, 0.05);
  std::vector<int> core_cluster_count(c.num_clusters, 0);
  for (size_t i = 0; i < data.size(); ++i) {
    if (c.is_core[i]) {
      ASSERT_NE(c.label[i], kNoise) << "core point marked noise";
      ++core_cluster_count[c.label[i]];
    }
  }
  for (int cl = 0; cl < c.num_clusters; ++cl) {
    EXPECT_GT(core_cluster_count[cl], 0) << "cluster without core points";
  }
  // Core points never appear in extra memberships (only borders may).
  for (const auto& [point, cluster] : c.extra_memberships) {
    EXPECT_FALSE(c.is_core[point]);
  }
}

TEST(ApproxDbscan, MergesOnlyWithinInflatedRadius) {
  // Two 2-point groups at gap g. With MinPts=2 both groups are core-only
  // clusters. For eps < g <= eps(1+rho) the approximation MAY merge; for
  // g > eps(1+rho) it must NOT.
  const double eps = 10.0;
  auto run = [&](double gap, double rho) {
    const Dataset data = MakeDataset(
        {{0.0, 0.0}, {1.0, 0.0}, {1.0 + gap, 0.0}, {2.0 + gap, 0.0}});
    return ApproxDbscan(data, DbscanParams{eps, 2}, rho).num_clusters;
  };
  // gap far beyond eps(1+rho): must stay 2 clusters.
  EXPECT_EQ(run(eps * 1.5, 0.1), 2);
  // gap within eps: must be 1 cluster.
  EXPECT_EQ(run(eps * 0.8, 0.1), 1);
  // gap in the don't-care band (eps, eps(1+rho)]: either 1 or 2 is legal.
  const int in_band = run(eps * 1.05, 0.1);
  EXPECT_TRUE(in_band == 1 || in_band == 2);
}

TEST(ApproxDbscan, BorderPointsFollowCoreAssignment) {
  // A border point adjacent to one cluster only must land in it.
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0},  // dense core block
      {2.5, 0.5},                                       // border
      {100.0, 100.0},                                   // noise
  });
  const DbscanParams params{2.0, 4};
  const Clustering c = ApproxDbscan(data, params, 0.001);
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_FALSE(c.is_core[4]);
  EXPECT_EQ(c.label[4], c.label[0]);
  EXPECT_EQ(c.label[5], kNoise);
}

TEST(ApproxDbscan, AgreesWithBruteForceOnRandomStableInstances) {
  // On random data, rho = tiny only disagrees with exact DBSCAN when some
  // inter-point distance falls inside (ε, ε(1+ρ)] — essentially never for
  // random reals. Verify exact agreement across seeds.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const Dataset data = RandomDataset(3, 150, 0.0, 60.0, 400 + seed);
    const DbscanParams params{9.0, 4};
    EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                             ApproxDbscan(data, params, 1e-9)))
        << "seed " << seed;
  }
}

TEST(ApproxDbscan, EmptyAndSingleton) {
  Dataset empty(2);
  const Clustering c0 = ApproxDbscan(empty, DbscanParams{1.0, 1}, 0.01);
  EXPECT_EQ(c0.num_clusters, 0);

  Dataset one(2);
  one.Add({5.0, 5.0});
  const Clustering c1 = ApproxDbscan(one, DbscanParams{1.0, 1}, 0.01);
  EXPECT_EQ(c1.num_clusters, 1);
  EXPECT_EQ(c1.label[0], 0);

  const Clustering c2 = ApproxDbscan(one, DbscanParams{1.0, 2}, 0.01);
  EXPECT_EQ(c2.num_clusters, 0);
  EXPECT_EQ(c2.label[0], kNoise);
}

TEST(ApproxDbscanCoreCounting, CoreFlagsAreSandwiched) {
  // Journal-version mode: a point core at ε must stay core; a point
  // non-core even at ε(1+ρ) must stay non-core.
  const Dataset data = ClusteredDataset(3, 500, 4, 100.0, 5.0, 311);
  const DbscanParams params{8.0, 5};
  const double rho = 0.05;
  ApproxDbscanOptions opts;
  opts.approximate_core_counting = true;
  const Clustering approx = ApproxDbscan(data, params, rho, opts);
  const Clustering exact_lo = ExactGridDbscan(data, params);
  const Clustering exact_hi =
      ExactGridDbscan(data, {params.eps * (1.0 + rho), params.min_pts});
  for (size_t i = 0; i < data.size(); ++i) {
    if (exact_lo.is_core[i]) {
      EXPECT_TRUE(approx.is_core[i]) << "lost an exact core point";
    }
    if (!exact_hi.is_core[i]) {
      EXPECT_FALSE(approx.is_core[i]) << "fabricated a core point";
    }
  }
}

TEST(ApproxDbscanCoreCounting, StillSandwichedAsClustering) {
  // With approximate cores the result is still between DBSCAN(ε) and
  // DBSCAN(ε(1+ρ)) in the Theorem 3 sense.
  const Dataset data = ClusteredDataset(2, 400, 4, 90.0, 4.0, 313);
  const DbscanParams params{6.0, 5};
  const double rho = 0.1;
  ApproxDbscanOptions opts;
  opts.approximate_core_counting = true;
  const Clustering approx = ApproxDbscan(data, params, rho, opts);
  const Clustering lo = ExactGridDbscan(data, params);
  const Clustering hi =
      ExactGridDbscan(data, {params.eps * (1.0 + rho), params.min_pts});
  EXPECT_TRUE(SatisfiesSandwich(lo, approx, hi));
}

TEST(ApproxDbscanCoreCounting, TinyRhoMatchesExactMode) {
  const Dataset data = ClusteredDataset(3, 300, 3, 80.0, 4.0, 317);
  const DbscanParams params{7.0, 4};
  ApproxDbscanOptions opts;
  opts.approximate_core_counting = true;
  EXPECT_TRUE(SameClusters(ApproxDbscan(data, params, 1e-9),
                           ApproxDbscan(data, params, 1e-9, opts)));
}

TEST(ApproxDbscanDeath, RejectsNonPositiveRho) {
  Dataset data(2);
  data.Add({0.0, 0.0});
  EXPECT_DEATH(ApproxDbscan(data, DbscanParams{1.0, 1}, 0.0), "");
  EXPECT_DEATH(ApproxDbscan(data, DbscanParams{1.0, 1}, -0.5), "");
}

}  // namespace
}  // namespace adbscan
