#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "grid/morton.h"
#include "util/rng.h"

namespace adbscan {
namespace {

// Random coordinate tuple inside the representable window of the truncated
// key: [-2^(B-1), 2^(B-1)) per axis, B = 64/dim.
std::vector<int64_t> RandomCoords(Rng* rng, int dim) {
  const int bits = MortonBitsPerDim(dim);
  const int64_t half = int64_t{1} << (bits - 1);
  std::vector<int64_t> c(dim);
  for (int i = 0; i < dim; ++i) {
    c[i] = static_cast<int64_t>(
        rng->NextDouble(static_cast<double>(-half),
                        static_cast<double>(half - 1)));
  }
  return c;
}

TEST(Morton, BiasIsMonotoneOnWindow) {
  const int bits = 9;  // the d = 7 window
  const int64_t half = int64_t{1} << (bits - 1);
  uint64_t prev = 0;
  for (int64_t c = -half; c < half; ++c) {
    const uint64_t biased = MortonBias(c, bits);
    if (c > -half) {
      EXPECT_GT(biased, prev) << "c=" << c;
    }
    EXPECT_EQ(MortonUnbias(biased, bits), c);
    prev = biased;
  }
}

TEST(Morton, InterleaveDeinterleaveRoundTrip) {
  Rng rng(42);
  for (int dim : {2, 3, 5, 7, 16}) {
    for (int trial = 0; trial < 200; ++trial) {
      const std::vector<int64_t> c = RandomCoords(&rng, dim);
      const uint64_t key = MortonInterleave(c.data(), dim);
      std::vector<int64_t> back(dim);
      MortonDeinterleave(key, dim, back.data());
      EXPECT_EQ(back, c) << "dim " << dim;
    }
  }
}

TEST(Morton, RoundTripAtWindowEdgesAndNegatives) {
  for (int dim : {2, 3, 5, 7}) {
    const int bits = MortonBitsPerDim(dim);
    const int64_t half = int64_t{1} << (bits - 1);
    for (int64_t v : {-half, -half + 1, int64_t{-1}, int64_t{0}, int64_t{1},
                      half - 2, half - 1}) {
      std::vector<int64_t> c(dim, v);
      c[0] = -v - 1;  // mix signs across axes
      std::vector<int64_t> back(dim);
      MortonDeinterleave(MortonInterleave(c.data(), dim), dim, back.data());
      EXPECT_EQ(back, c) << "dim " << dim << " v " << v;
    }
  }
}

TEST(Morton, LessAgreesWithInterleavedKeysOnWindow) {
  Rng rng(7);
  for (int dim : {2, 3, 5, 7}) {
    for (int trial = 0; trial < 500; ++trial) {
      const std::vector<int64_t> a = RandomCoords(&rng, dim);
      const std::vector<int64_t> b = RandomCoords(&rng, dim);
      const uint64_t ka = MortonInterleave(a.data(), dim);
      const uint64_t kb = MortonInterleave(b.data(), dim);
      EXPECT_EQ(MortonLess(a.data(), b.data(), dim), ka < kb)
          << "dim " << dim;
    }
  }
}

TEST(Morton, LessIsIrreflexiveAndHandlesHugeCoordinates) {
  // Coordinates way outside any truncated window: the comparator is exact.
  const std::vector<int64_t> a = {int64_t{1} << 40, -(int64_t{1} << 50), 3};
  const std::vector<int64_t> b = {int64_t{1} << 40, -(int64_t{1} << 50), 4};
  EXPECT_FALSE(MortonLess(a.data(), a.data(), 3));
  EXPECT_TRUE(MortonLess(a.data(), b.data(), 3));
  EXPECT_FALSE(MortonLess(b.data(), a.data(), 3));
  // Negative < positive on the most significant differing axis.
  const std::vector<int64_t> neg = {-1, int64_t{1} << 60};
  const std::vector<int64_t> pos = {0, -(int64_t{1} << 60)};
  EXPECT_TRUE(MortonLess(neg.data(), pos.data(), 2));
}

TEST(Morton, SortIsAStrictWeakOrder) {
  Rng rng(11);
  std::vector<std::vector<int64_t>> coords;
  for (int trial = 0; trial < 300; ++trial) {
    coords.push_back(RandomCoords(&rng, 3));
  }
  std::sort(coords.begin(), coords.end(),
            [](const std::vector<int64_t>& a, const std::vector<int64_t>& b) {
              return MortonLess(a.data(), b.data(), 3);
            });
  for (size_t i = 1; i < coords.size(); ++i) {
    EXPECT_FALSE(MortonLess(coords[i].data(), coords[i - 1].data(), 3));
    EXPECT_EQ(MortonLess(coords[i - 1].data(), coords[i].data(), 3),
              MortonInterleave(coords[i - 1].data(), 3) <
                  MortonInterleave(coords[i].data(), 3));
  }
}

}  // namespace
}  // namespace adbscan
