#include <gtest/gtest.h>

#include "core/brute_reference.h"
#include "core/gunawan2d.h"
#include "eval/compare.h"
#include "gen/seed_spreader.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

TEST(Gunawan2d, MatchesReferenceAcrossSeeds) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const Dataset data = ClusteredDataset(2, 300, 4, 100.0, 4.0, 600 + seed);
    const DbscanParams params{6.0, 5};
    EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                             Gunawan2dDbscan(data, params)))
        << "seed " << seed;
  }
}

TEST(Gunawan2d, MatchesReferenceOnSeedSpreader) {
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 600;
  p.domain_hi = 2000.0;
  p.point_radius = 15.0;
  p.shift_distance = 10.0;
  p.counter_reset = 30;
  p.noise_fraction = 0.05;
  const Dataset data = GenerateSeedSpreader(p, 601);
  for (double eps : {10.0, 25.0, 60.0, 200.0}) {
    const DbscanParams params{eps, 8};
    EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                             Gunawan2dDbscan(data, params)))
        << "eps " << eps;
  }
}

TEST(Gunawan2d, EdgeRequiresCorePointProximity) {
  // Two core blocks whose *border* points are close, but whose core points
  // are farther than eps: the blocks must stay separate clusters even
  // though the cells are ε-neighbors. (The graph edges are defined on core
  // points only.)
  const Dataset data = MakeDataset({
      // Block A: 5 mutually-close core points around x=0.
      {0.0, 0.0}, {0.3, 0.0}, {0.0, 0.3}, {0.3, 0.3}, {0.15, 0.15},
      // Bridge borders: within eps of each other and of 2 core points each,
      // so each counts only 4 < MinPts neighbors and stays non-core.
      {1.5, 0.15},
      {2.8, 0.15},
      // Block B: 5 mutually-close core points around x=4.
      {4.0, 0.0}, {4.3, 0.0}, {4.0, 0.3}, {4.3, 0.3}, {4.15, 0.15},
  });
  const DbscanParams params{1.3, 5};
  const Clustering c = Gunawan2dDbscan(data, params);
  const Clustering ref = BruteForceDbscan(data, params);
  EXPECT_TRUE(SameClusters(ref, c));
  EXPECT_EQ(c.num_clusters, 2);
  // The bridge points are borders of their own blocks only: their mutual
  // distance (1.3) ties them to each other but neither is core.
  EXPECT_FALSE(c.is_core[5]);
  EXPECT_FALSE(c.is_core[6]);
  EXPECT_NE(c.label[5], c.label[6]);
}

TEST(Gunawan2d, SingleDenseCellCluster) {
  Dataset data(2);
  for (int i = 0; i < 30; ++i) data.Add({10.0 + i * 0.001, 10.0});
  const Clustering c = Gunawan2dDbscan(data, DbscanParams{1.0, 10});
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.NumCorePoints(), 30u);
}

TEST(Gunawan2dDeath, RejectsNon2dInput) {
  Dataset data(3);
  data.Add({0.0, 0.0, 0.0});
  EXPECT_DEATH(Gunawan2dDbscan(data, DbscanParams{1.0, 1}), "");
}

}  // namespace
}  // namespace adbscan
