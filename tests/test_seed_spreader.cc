#include <gtest/gtest.h>

#include "core/approx_dbscan.h"
#include "gen/seed_spreader.h"
#include "gen/uniform.h"
#include "geom/point.h"

namespace adbscan {
namespace {

TEST(SeedSpreader, ProducesRequestedCardinalityAndDim) {
  SeedSpreaderParams p;
  p.dim = 3;
  p.n = 5000;
  const Dataset data = GenerateSeedSpreader(p, 1);
  EXPECT_EQ(data.size(), 5000u);
  EXPECT_EQ(data.dim(), 3);
}

TEST(SeedSpreader, DeterministicForFixedSeed) {
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 1000;
  const Dataset a = GenerateSeedSpreader(p, 42);
  const Dataset b = GenerateSeedSpreader(p, 42);
  EXPECT_EQ(a.coords(), b.coords());
  const Dataset c = GenerateSeedSpreader(p, 43);
  EXPECT_NE(a.coords(), c.coords());
}

TEST(SeedSpreader, StaysInsideDomain) {
  SeedSpreaderParams p;
  p.dim = 5;
  p.n = 3000;
  const Dataset data = GenerateSeedSpreader(p, 7);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int j = 0; j < 5; ++j) {
      EXPECT_GE(data.point(i)[j], p.domain_lo);
      EXPECT_LE(data.point(i)[j], p.domain_hi);
    }
  }
}

TEST(SeedSpreader, ForcedRestartsProduceExactClusterCount) {
  // The Figure 8 configuration: n = 1000, forced restart every 250 steps
  // => exactly 4 clusters.
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 1000;
  p.forced_restart_every = 250;
  p.noise_fraction = 0.0;
  size_t restarts = 0;
  const Dataset data = GenerateSeedSpreader(p, 11, &restarts);
  EXPECT_EQ(restarts, 4u);
  EXPECT_EQ(data.size(), 1000u);
}

TEST(SeedSpreader, RandomRestartCountIsNearExpectation) {
  // restart_prob defaults to 10/steps: ~10 restarts in expectation.
  SeedSpreaderParams p;
  p.dim = 3;
  p.n = 100000;
  size_t restarts = 0;
  GenerateSeedSpreader(p, 13, &restarts);
  EXPECT_GE(restarts, 3u);
  EXPECT_LE(restarts, 25u);
}

TEST(SeedSpreader, EmittedPointsHugTheWalkPath) {
  // Without noise, consecutive cluster points are within point_radius*2 +
  // shift of each other (same or adjacent spreader location).
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 500;
  p.noise_fraction = 0.0;
  p.forced_restart_every = 0;
  p.restart_prob = 0.0;  // single cluster
  const Dataset data = GenerateSeedSpreader(p, 17);
  size_t restarts = 0;
  (void)restarts;
  const double bound = 2.0 * p.point_radius + 50.0 * p.dim;
  for (size_t i = 1; i < data.size(); ++i) {
    EXPECT_LE(Distance(data.point(i - 1), data.point(i), 2),
              bound * 1.0001)
        << "at " << i;
  }
}

TEST(SeedSpreader, ClustersAreRecoverableByDbscan) {
  // End-to-end sanity: a 2D spreader dataset with 4 forced clusters should
  // be recovered (approximately — clusters may merge if walks collide) by
  // DBSCAN with a modest eps.
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 2000;
  p.forced_restart_every = 500;
  p.noise_fraction = 0.0;
  const Dataset data = GenerateSeedSpreader(p, 19);
  const Clustering c = ApproxDbscan(data, DbscanParams{5000.0, 20}, 0.001);
  EXPECT_GE(c.num_clusters, 1);
  EXPECT_LE(c.num_clusters, 4);
  EXPECT_LT(c.NumNoisePoints(), 100u);
}

TEST(SeedSpreader, NoiseFractionRespected) {
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 10000;
  p.noise_fraction = 0.1;
  const Dataset data = GenerateSeedSpreader(p, 23);
  EXPECT_EQ(data.size(), 10000u);
  // The last 1000 points are the uniform noise block by construction; they
  // should spread across the domain rather than hug a walk.
  double spread = 0.0;
  for (size_t i = 9000; i < 10000; ++i) {
    spread += Distance(data.point(i), data.point(9000), 2);
  }
  EXPECT_GT(spread / 1000.0, 1e4);  // average pairwise-ish distance is large
}

TEST(UniformGenerators, RespectBounds) {
  const Dataset u = GenerateUniform(3, 1000, -5.0, 5.0, 29);
  EXPECT_EQ(u.size(), 1000u);
  for (size_t i = 0; i < u.size(); ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_GE(u.point(i)[j], -5.0);
      EXPECT_LE(u.point(i)[j], 5.0);
    }
  }
  const double center[] = {10.0, 10.0, 10.0};
  const Dataset b = GenerateUniformBall(3, 1000, center, 2.0, 31);
  for (size_t i = 0; i < b.size(); ++i) {
    EXPECT_LE(Distance(b.point(i), center, 3), 2.0 * 1.0000001);
  }
}

}  // namespace
}  // namespace adbscan
