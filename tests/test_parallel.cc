// Multi-threaded execution must be a pure performance knob: for every
// thread count, every algorithm returns exactly the single-threaded result.

#include <gtest/gtest.h>

#include "core/adbscan.h"
#include "eval/compare.h"
#include "gen/realdata_sim.h"
#include "gen/seed_spreader.h"
#include "test_helpers.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 3, 8, 300}) {
    std::vector<int> hits(1000, 0);
    ParallelFor(hits.size(), threads, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) ++hits[i];
    });
    for (int h : hits) EXPECT_EQ(h, 1) << "threads " << threads;
  }
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(0, 4, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(HardwareThreadsSanity, AtLeastOne) {
  EXPECT_GE(HardwareThreads(), 1);
}

class ParallelEqualityTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelEqualityTest, ExactGridMatchesSerial) {
  const int threads = GetParam();
  const Dataset data = ClusteredDataset(3, 2000, 5, 100.0, 4.0, 1901);
  const DbscanParams serial{8.0, 5, 1};
  const DbscanParams parallel{8.0, 5, threads};
  const Clustering a = ExactGridDbscan(data, serial);
  const Clustering b = ExactGridDbscan(data, parallel);
  EXPECT_TRUE(SameClusters(a, b));
  EXPECT_TRUE(SameCoreFlags(a, b));
  EXPECT_EQ(a.label, b.label);  // even the numbering is identical
  EXPECT_EQ(a.extra_memberships, b.extra_memberships);
}

TEST_P(ParallelEqualityTest, ApproxMatchesSerial) {
  const int threads = GetParam();
  SeedSpreaderParams p;
  p.dim = 3;
  p.n = 20000;
  const Dataset data = GenerateSeedSpreader(p, 1903);
  const DbscanParams serial{5000.0, 100, 1};
  const DbscanParams parallel{5000.0, 100, threads};
  const Clustering a = ApproxDbscan(data, serial, 0.001);
  const Clustering b = ApproxDbscan(data, parallel, 0.001);
  EXPECT_TRUE(SameClusters(a, b));
  EXPECT_EQ(a.label, b.label);
}

TEST_P(ParallelEqualityTest, Gunawan2dMatchesSerial) {
  const int threads = GetParam();
  const Dataset data = ClusteredDataset(2, 1500, 4, 100.0, 4.0, 1905);
  const DbscanParams serial{6.0, 5, 1};
  const DbscanParams parallel{6.0, 5, threads};
  const Clustering a = Gunawan2dDbscan(data, serial);
  const Clustering b = Gunawan2dDbscan(data, parallel);
  EXPECT_TRUE(SameClusters(a, b));
  EXPECT_EQ(a.label, b.label);
}

TEST_P(ParallelEqualityTest, RealStandInWorkload) {
  const int threads = GetParam();
  const Dataset data = Pamap2Like(15000, 1907);
  const DbscanParams serial{5000.0, 100, 1};
  const DbscanParams parallel{5000.0, 100, threads};
  const Clustering a = ExactGridDbscan(data, serial);
  const Clustering b = ExactGridDbscan(data, parallel);
  EXPECT_TRUE(SameClusters(a, b));
  EXPECT_EQ(a.label, b.label);
}

INSTANTIATE_TEST_SUITE_P(Threads, ParallelEqualityTest,
                         ::testing::Values(2, 4, 8));

}  // namespace
}  // namespace adbscan
