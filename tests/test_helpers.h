#ifndef ADBSCAN_TESTS_TEST_HELPERS_H_
#define ADBSCAN_TESTS_TEST_HELPERS_H_

#include <initializer_list>
#include <vector>

#include "geom/dataset.h"
#include "util/rng.h"

namespace adbscan {
namespace testing_helpers {

// Builds a dataset from explicit rows, inferring the dimension from the
// first row.
inline Dataset MakeDataset(
    std::initializer_list<std::initializer_list<double>> rows) {
  const int dim = static_cast<int>(rows.begin()->size());
  Dataset data(dim);
  for (const auto& row : rows) data.Add(row.begin());
  return data;
}

// Uniform random points in [lo, hi]^dim.
inline Dataset RandomDataset(int dim, size_t n, double lo, double hi,
                             uint64_t seed) {
  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(n);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) p[j] = rng.NextDouble(lo, hi);
    data.Add(p);
  }
  return data;
}

// Clustered random points: k gaussian blobs + a sprinkle of uniform noise.
// Produces inputs with genuine DBSCAN structure at moderate eps.
inline Dataset ClusteredDataset(int dim, size_t n, int k, double domain,
                                double sigma, uint64_t seed) {
  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(n);
  std::vector<std::vector<double>> centers(k, std::vector<double>(dim));
  for (auto& c : centers) {
    for (double& x : c) x = rng.NextDouble(0.0, domain);
  }
  std::vector<double> p(dim);
  const size_t noise = n / 20;
  for (size_t i = 0; i + noise < n; ++i) {
    const auto& c = centers[rng.NextBounded(k)];
    for (int j = 0; j < dim; ++j) p[j] = c[j] + rng.NextGaussian() * sigma;
    data.Add(p);
  }
  while (data.size() < n) {
    for (int j = 0; j < dim; ++j) p[j] = rng.NextDouble(0.0, domain);
    data.Add(p);
  }
  return data;
}

}  // namespace testing_helpers
}  // namespace adbscan

#endif  // ADBSCAN_TESTS_TEST_HELPERS_H_
