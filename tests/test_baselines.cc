// Tests for the related-work baselines of Section 1.1/2: they are fast but
// do NOT compute the exact DBSCAN result — these tests both validate their
// behaviour on easy inputs and construct the counterexamples that
// substantiate the paper's (and Gunawan's) inexactness claim.

#include <gtest/gtest.h>

#include "baselines/gf_dbscan.h"
#include "baselines/sampling_dbscan.h"
#include "core/brute_reference.h"
#include "eval/compare.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

// On widely separated dense blobs every sane variant agrees with DBSCAN.
TEST(GfStyleDbscan, MatchesExactOnWellSeparatedBlobs) {
  Dataset data(2);
  Rng rng(1301);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 80; ++i) {
      data.Add({c * 1000.0 + rng.NextGaussian() * 2.0,
                rng.NextGaussian() * 2.0});
    }
  }
  const DbscanParams params{8.0, 5};
  EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                           GfStyleDbscan(data, params)));
}

TEST(GfStyleDbscan, OvercountsSameCellPairs) {
  // Three points in one ε-side cell: two of them are 1.27ε apart, so exact
  // DBSCAN (MinPts=3) sees no core point at all — but the same-cell
  // shortcut counts all three as mutual neighbors and fabricates a cluster.
  const Dataset data = MakeDataset({
      {0.05, 0.05},
      {0.95, 0.95},  // > eps from the first point, same cell
      {0.05, 0.10},
  });
  const DbscanParams params{1.0, 3};
  const Clustering exact = BruteForceDbscan(data, params);
  EXPECT_EQ(exact.num_clusters, 0);  // everything is noise, truly

  const Clustering gf = GfStyleDbscan(data, params);
  EXPECT_EQ(gf.num_clusters, 1);  // the shortcut invents a cluster
  EXPECT_FALSE(SameClusters(exact, gf));
}

TEST(GfStyleDbscan, NeverMissesTrueNeighbors) {
  // The shortcut only ever overcounts: every exact core point must still be
  // core under GF, and exact clusters can only merge/grow, never split.
  const Dataset data = RandomDataset(3, 400, 0.0, 50.0, 1303);
  const DbscanParams params{6.0, 5};
  const Clustering exact = BruteForceDbscan(data, params);
  const Clustering gf = GfStyleDbscan(data, params);
  for (size_t i = 0; i < data.size(); ++i) {
    if (exact.is_core[i]) {
      EXPECT_TRUE(gf.is_core[i]) << "point " << i << " lost core status";
    }
    if (exact.label[i] != kNoise) {
      EXPECT_NE(gf.label[i], kNoise) << "point " << i << " became noise";
    }
  }
}

TEST(SamplingDbscan, MatchesExactOnWellSeparatedBlobs) {
  Dataset data(2);
  Rng rng(1307);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 80; ++i) {
      data.Add({c * 1000.0 + rng.NextGaussian() * 2.0,
                rng.NextGaussian() * 2.0});
    }
  }
  const DbscanParams params{8.0, 5};
  // Generous seed budget: blobs are compact, nothing is missed.
  SamplingDbscanOptions opts;
  opts.max_seeds_per_point = 64;
  EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                           SamplingDbscan(data, params, opts)));
}

TEST(SamplingDbscan, SplitsBranchedClusterWithTightSeedBudget) {
  // A T-shaped chain: the junction (2,0) has branches right and up. With a
  // seed budget of 1, only one branch is expanded from the junction; the
  // other branch's far points are discovered later as a *separate* cluster.
  // Exact DBSCAN: one cluster.
  const Dataset data = MakeDataset({
      {0.0, 0.0},
      {1.0, 0.0},
      {2.0, 0.0},  // junction
      {3.0, 0.0},
      {4.0, 0.0},
      {2.0, 1.0},
      {2.0, 2.0},
      {2.0, 3.0},
  });
  const DbscanParams params{1.1, 2};
  const Clustering exact = BruteForceDbscan(data, params);
  ASSERT_EQ(exact.num_clusters, 1);

  SamplingDbscanOptions tight;
  tight.max_seeds_per_point = 1;
  const Clustering sampled = SamplingDbscan(data, params, tight);
  EXPECT_GE(sampled.num_clusters, 2)
      << "tight seed sampling should split the T";
  EXPECT_FALSE(SameClusters(exact, sampled));
}

TEST(SamplingDbscan, LargeSeedBudgetRecoversExactResult) {
  // With the budget at n, sampling degenerates to classic KDD96 and becomes
  // exact (for primary structure; multi-membership borders excluded by
  // comparing core flags and cluster count).
  const Dataset data = RandomDataset(2, 300, 0.0, 60.0, 1309);
  const DbscanParams params{6.0, 4};
  SamplingDbscanOptions all;
  all.max_seeds_per_point = 300;
  const Clustering exact = BruteForceDbscan(data, params);
  const Clustering sampled = SamplingDbscan(data, params, all);
  EXPECT_TRUE(SameCoreFlags(exact, sampled));
  EXPECT_EQ(exact.num_clusters, sampled.num_clusters);
}

TEST(SamplingDbscan, CoreFlagsNeverFabricated) {
  // Sampling can miss core points (never expanded) but a point it marks
  // core has a genuine full neighborhood (the region query is exact).
  const Dataset data = RandomDataset(2, 300, 0.0, 40.0, 1311);
  const DbscanParams params{5.0, 5};
  const Clustering exact = BruteForceDbscan(data, params);
  SamplingDbscanOptions tight;
  tight.max_seeds_per_point = 2;
  const Clustering sampled = SamplingDbscan(data, params, tight);
  for (size_t i = 0; i < data.size(); ++i) {
    if (sampled.is_core[i]) EXPECT_TRUE(exact.is_core[i]);
  }
}

TEST(Baselines, EmptyInput) {
  Dataset data(2);
  const DbscanParams params{1.0, 2};
  EXPECT_EQ(GfStyleDbscan(data, params).num_clusters, 0);
  EXPECT_EQ(SamplingDbscan(data, params).num_clusters, 0);
}

}  // namespace
}  // namespace adbscan
