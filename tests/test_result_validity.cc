// Structural well-formedness of the Clustering type, enforced across every
// algorithm and several workloads: label ranges, extras canonicalization,
// cluster-id usage, and the core/border/noise partition.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "baselines/gf_dbscan.h"
#include "baselines/sampling_dbscan.h"
#include "core/adbscan.h"
#include "gen/seed_spreader.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::RandomDataset;

void ExpectWellFormed(const Clustering& c, size_t n,
                      const std::string& algo) {
  ASSERT_EQ(c.label.size(), n) << algo;
  ASSERT_EQ(c.is_core.size(), n) << algo;
  ASSERT_GE(c.num_clusters, 0) << algo;

  std::vector<char> cluster_used(c.num_clusters, 0);
  for (size_t i = 0; i < n; ++i) {
    ASSERT_GE(c.label[i], kNoise) << algo << " point " << i;
    ASSERT_LT(c.label[i], c.num_clusters) << algo << " point " << i;
    if (c.label[i] != kNoise) cluster_used[c.label[i]] = 1;
    if (c.is_core[i]) {
      EXPECT_NE(c.label[i], kNoise) << algo << ": core point " << i
                                    << " is noise";
    }
  }
  // Every cluster id in [0, num_clusters) is inhabited.
  for (int32_t k = 0; k < c.num_clusters; ++k) {
    EXPECT_TRUE(cluster_used[k]) << algo << ": empty cluster " << k;
  }
  // Extras: sorted, unique, valid ids, never core points, never duplicating
  // the primary label.
  std::set<std::pair<uint32_t, int32_t>> seen;
  for (const auto& [point, cluster] : c.extra_memberships) {
    ASSERT_LT(point, n) << algo;
    ASSERT_GE(cluster, 0) << algo;
    ASSERT_LT(cluster, c.num_clusters) << algo;
    EXPECT_FALSE(c.is_core[point]) << algo << ": core point with extras";
    EXPECT_NE(c.label[point], kNoise) << algo << ": noise with extras";
    EXPECT_NE(c.label[point], cluster) << algo << ": duplicate membership";
    EXPECT_TRUE(seen.insert({point, cluster}).second)
        << algo << ": repeated extra";
  }
  EXPECT_TRUE(std::is_sorted(c.extra_memberships.begin(),
                             c.extra_memberships.end()))
      << algo;
  // Derived counters agree.
  size_t noise = 0;
  for (int32_t l : c.label) noise += (l == kNoise);
  EXPECT_EQ(c.NumNoisePoints(), noise) << algo;
}

struct ValidityCase {
  std::string name;
  int dim;
  size_t n;
  double eps;
  int min_pts;
};

class ResultValidityTest : public ::testing::TestWithParam<ValidityCase> {};

TEST_P(ResultValidityTest, EveryAlgorithmProducesWellFormedOutput) {
  const ValidityCase c = GetParam();
  const Dataset data = ClusteredDataset(c.dim, c.n, 4, 100.0, 4.0,
                                        2000 + c.dim);
  const DbscanParams params{c.eps, c.min_pts};
  ExpectWellFormed(BruteForceDbscan(data, params), c.n, "brute");
  ExpectWellFormed(Kdd96Dbscan(data, params), c.n, "kdd96");
  ExpectWellFormed(GridbscanDbscan(data, params), c.n, "cit08");
  ExpectWellFormed(ExactGridDbscan(data, params), c.n, "exact");
  ExpectWellFormed(ApproxDbscan(data, params, 0.01), c.n, "approx");
  ExpectWellFormed(GfStyleDbscan(data, params), c.n, "gf");
  ExpectWellFormed(SamplingDbscan(data, params), c.n, "sampling");
  if (c.dim == 2) {
    ExpectWellFormed(Gunawan2dDbscan(data, params), c.n, "gunawan");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ResultValidityTest,
    ::testing::Values(ValidityCase{"d2", 2, 400, 6.0, 5},
                      ValidityCase{"d3", 3, 400, 9.0, 5},
                      ValidityCase{"d5", 5, 300, 15.0, 4},
                      ValidityCase{"d7", 7, 250, 25.0, 4},
                      ValidityCase{"d3_all_noise", 3, 200, 0.01, 3},
                      ValidityCase{"d2_one_blob", 2, 300, 400.0, 5}),
    [](const ::testing::TestParamInfo<ValidityCase>& info) {
      return info.param.name;
    });

TEST(ResultValidity, SpreaderWorkloadAllAlgorithms) {
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 1500;
  p.noise_fraction = 0.05;
  const Dataset data = GenerateSeedSpreader(p, 2025);
  const DbscanParams params{4000.0, 30};
  ExpectWellFormed(ExactGridDbscan(data, params), data.size(), "exact");
  ExpectWellFormed(ApproxDbscan(data, params, 0.001), data.size(), "approx");
  ExpectWellFormed(Gunawan2dDbscan(data, params), data.size(), "gunawan");
  ExpectWellFormed(Kdd96Dbscan(data, params), data.size(), "kdd96");
}

}  // namespace
}  // namespace adbscan
