// Sampled-core tier (src/sample) tests.
//
// The load-bearing guarantees, in order:
//  1. Degenerate envelope: sample_rate = 1.0 makes SampledDbscan
//     cluster-set equivalent to ExactGridDbscan with identical core flags,
//     for either strategy, across dimensions and thread counts.
//  2. Determinism: for any (rate, strategy, seed) the output is bit-for-bit
//     identical across thread counts and repeated runs.
//  3. Semantics at any rate: the pipeline matches a brute-force DBSCAN++
//     reference (cores counted against the full dataset, exact core
//     connectivity, nearest-core-within-ε assignment, full membership
//     sets), on clustered, all-noise, tiny-n, and duplicate-heavy inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/dbscan_types.h"
#include "core/exact_grid.h"
#include "eval/compare.h"
#include "sample/sampled_dbscan.h"
#include "sample/sampler.h"
#include "test_helpers.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

Clustering RunSampled(const Dataset& data, double eps, int min_pts,
                      double rate, SampleStrategy strategy, uint64_t seed,
                      int threads, SampledRunStats* stats = nullptr) {
  DbscanParams params;
  params.eps = eps;
  params.min_pts = min_pts;
  params.num_threads = threads;
  SampledDbscanOptions options;
  options.sample_rate = rate;
  options.strategy = strategy;
  options.seed = seed;
  return SampledDbscan(data, params, options, stats);
}

void ExpectBitIdentical(const Clustering& a, const Clustering& b,
                        const std::string& context) {
  EXPECT_EQ(a.num_clusters, b.num_clusters) << context;
  EXPECT_EQ(a.is_core, b.is_core) << context;
  EXPECT_EQ(a.label, b.label) << context;
  EXPECT_EQ(a.extra_memberships, b.extra_memberships) << context;
}

double SquaredDist(const Dataset& data, uint32_t a, uint32_t b) {
  const double* pa = data.point(a);
  const double* pb = data.point(b);
  double sum = 0.0;
  for (int j = 0; j < data.dim(); ++j) {
    const double d = pa[j] - pb[j];
    sum += d * d;
  }
  return sum;
}

// Brute-force DBSCAN++ reference over an explicit sample: core points by
// full-data ε-counts, single-linkage components over cores within ε,
// clusters numbered by first core in id order, non-cores assigned to the
// nearest core within ε. Returns primary labels + is_core; *memberships
// gets, per point, the full set of clusters owning a core within ε.
Clustering BruteSampledReference(const Dataset& data, double eps, int min_pts,
                                 const std::vector<uint32_t>& sample,
                                 std::vector<std::set<int32_t>>* memberships) {
  const size_t n = data.size();
  const double eps2 = eps * eps;
  Clustering out;
  out.label.assign(n, kNoise);
  out.is_core.assign(n, 0);
  std::vector<uint32_t> cores;
  for (uint32_t s : sample) {
    size_t count = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (SquaredDist(data, s, i) <= eps2) ++count;
    }
    if (count >= static_cast<size_t>(min_pts)) {
      out.is_core[s] = 1;
      cores.push_back(s);
    }
  }
  std::sort(cores.begin(), cores.end());
  // Single-linkage components over the cores (brute union-find).
  std::vector<size_t> parent(cores.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    return parent[x] == x ? x : parent[x] = find(parent[x]);
  };
  for (size_t i = 0; i < cores.size(); ++i) {
    for (size_t j = i + 1; j < cores.size(); ++j) {
      if (SquaredDist(data, cores[i], cores[j]) <= eps2) {
        parent[find(i)] = find(j);
      }
    }
  }
  std::vector<int32_t> component_cluster(cores.size(), kNoise);
  int32_t next = 0;
  std::vector<int32_t> core_cluster(cores.size());
  for (size_t i = 0; i < cores.size(); ++i) {  // cores ascend by id
    int32_t& slot = component_cluster[find(i)];
    if (slot == kNoise) slot = next++;
    core_cluster[i] = slot;
    out.label[cores[i]] = slot;
  }
  out.num_clusters = next;
  memberships->assign(n, {});
  for (uint32_t id = 0; id < n; ++id) {
    if (out.is_core[id]) {
      (*memberships)[id] = {out.label[id]};
      continue;
    }
    double best = eps2;
    int32_t best_cluster = kNoise;
    for (size_t i = 0; i < cores.size(); ++i) {
      const double d2 = SquaredDist(data, id, cores[i]);
      if (d2 <= eps2) (*memberships)[id].insert(core_cluster[i]);
      if (d2 <= best && (best_cluster == kNoise || d2 < best)) {
        best = d2;
        best_cluster = core_cluster[i];
      }
    }
    out.label[id] = best_cluster;
  }
  return out;
}

// Full membership set of each point as reported by the pipeline: primary
// label + extra memberships.
std::vector<std::set<int32_t>> MembershipSets(const Clustering& c) {
  std::vector<std::set<int32_t>> sets(c.label.size());
  for (size_t i = 0; i < c.label.size(); ++i) {
    if (c.label[i] != kNoise) sets[i].insert(c.label[i]);
  }
  for (const auto& [id, cluster] : c.extra_memberships) {
    sets[id].insert(cluster);
  }
  return sets;
}

TEST(SampledDbscan, RateOneMatchesExactPipeline) {
  for (int dim : {2, 3, 5, 7}) {
    const Dataset data = ClusteredDataset(dim, 1500, 4, 100.0, 2.0,
                                          900 + static_cast<uint64_t>(dim));
    const double eps = 4.0;
    const int min_pts = 10;
    DbscanParams params;
    params.eps = eps;
    params.min_pts = min_pts;
    params.num_threads = 1;
    const Clustering exact = ExactGridDbscan(data, params);
    for (SampleStrategy strategy :
         {SampleStrategy::kUniform, SampleStrategy::kKCenter}) {
      for (int threads : {1, HardwareThreads()}) {
        const Clustering sampled = RunSampled(data, eps, min_pts, 1.0,
                                              strategy, 1, threads);
        const std::string context = std::string("dim=") +
                                    std::to_string(dim) + " strategy=" +
                                    SampleStrategyName(strategy) +
                                    " threads=" + std::to_string(threads);
        // Identical cores and cluster numbering (both pipelines number by
        // first core point in id order over the same exact edge relation).
        EXPECT_EQ(sampled.is_core, exact.is_core) << context;
        EXPECT_EQ(sampled.num_clusters, exact.num_clusters) << context;
        // The full partition is equivalent as cluster sets: only the choice
        // of primary label among a multi-member border point's clusters may
        // differ (nearest core here, smallest cluster id there).
        EXPECT_TRUE(SameClusters(exact, sampled)) << context;
        EXPECT_EQ(MembershipSets(exact), MembershipSets(sampled)) << context;
      }
    }
  }
}

TEST(SampledDbscan, BitIdenticalAcrossThreadCountsAndRuns) {
  const int hw = HardwareThreads();
  for (int dim : {2, 5}) {
    const Dataset data = ClusteredDataset(dim, 1200, 3, 80.0, 2.0,
                                          40 + static_cast<uint64_t>(dim));
    for (SampleStrategy strategy :
         {SampleStrategy::kUniform, SampleStrategy::kKCenter}) {
      for (double rate : {0.15, 0.5, 1.0}) {
        const Clustering base =
            RunSampled(data, 4.0, 8, rate, strategy, 77, 1);
        const Clustering repeat =
            RunSampled(data, 4.0, 8, rate, strategy, 77, 1);
        const Clustering parallel =
            RunSampled(data, 4.0, 8, rate, strategy, 77, hw);
        const std::string context = std::string("dim=") +
                                    std::to_string(dim) + " strategy=" +
                                    SampleStrategyName(strategy) +
                                    " rate=" + std::to_string(rate);
        ExpectBitIdentical(base, repeat, context + " (repeat)");
        ExpectBitIdentical(base, parallel, context + " (threads)");
      }
    }
  }
}

TEST(SampledDbscan, MatchesBruteReferenceAtPartialRates) {
  for (int dim : {2, 3, 5, 7}) {
    const Dataset data = ClusteredDataset(dim, 400, 3, 60.0, 2.0,
                                          7000 + static_cast<uint64_t>(dim));
    const double eps = 4.0;
    const int min_pts = 8;
    const double rate = 0.25;
    for (SampleStrategy strategy :
         {SampleStrategy::kUniform, SampleStrategy::kKCenter}) {
      // The pipeline's draw is deterministic, so the reference can re-draw
      // the identical sample.
      const std::vector<uint32_t> sample =
          DrawSample(data, rate, strategy, 5, 1);
      std::vector<std::set<int32_t>> want_memberships;
      const Clustering want = BruteSampledReference(data, eps, min_pts, sample,
                                                    &want_memberships);
      for (int threads : {1, HardwareThreads()}) {
        const Clustering got =
            RunSampled(data, eps, min_pts, rate, strategy, 5, threads);
        const std::string context = std::string("dim=") +
                                    std::to_string(dim) + " strategy=" +
                                    SampleStrategyName(strategy) +
                                    " threads=" + std::to_string(threads);
        EXPECT_EQ(got.is_core, want.is_core) << context;
        EXPECT_EQ(got.num_clusters, want.num_clusters) << context;
        EXPECT_EQ(got.label, want.label) << context;
        EXPECT_EQ(MembershipSets(got), want_memberships) << context;
      }
    }
  }
}

TEST(SampledDbscan, TinySampleBelowMinPtsStillFindsDenseCluster) {
  // n = 40 points inside a radius-0.1 ball; rate 0.1 draws m = 4 < MinPts =
  // 20 samples, yet each sampled point counts all 40 full-data neighbors,
  // so the cluster survives sampling and every point is assigned.
  Dataset data(3);
  Rng rng(123);
  for (int i = 0; i < 40; ++i) {
    double p[3];
    for (double& x : p) x = rng.NextDouble(-0.1, 0.1);
    data.Add(p);
  }
  for (SampleStrategy strategy :
       {SampleStrategy::kUniform, SampleStrategy::kKCenter}) {
    SampledRunStats stats;
    const Clustering c =
        RunSampled(data, 1.0, 20, 0.1, strategy, 3, 1, &stats);
    EXPECT_EQ(stats.sample_size, 4u);
    EXPECT_EQ(stats.num_core, 4u);
    EXPECT_EQ(c.num_clusters, 1);
    EXPECT_EQ(stats.num_noise, 0u);
    for (int32_t label : c.label) EXPECT_EQ(label, 0);
  }
}

TEST(SampledDbscan, TinyNFewerPointsThanMinPtsIsAllNoise) {
  const Dataset data = MakeDataset({{0, 0}, {0.1, 0}, {0, 0.1}, {0.1, 0.1}});
  for (SampleStrategy strategy :
       {SampleStrategy::kUniform, SampleStrategy::kKCenter}) {
    const Clustering c = RunSampled(data, 1.0, 10, 1.0, strategy, 1, 1);
    EXPECT_EQ(c.num_clusters, 0);
    for (int32_t label : c.label) EXPECT_EQ(label, kNoise);
    for (char core : c.is_core) EXPECT_EQ(core, 0);
  }
}

TEST(SampledDbscan, AllNoiseWhenNoNeighborhoodsReachMinPts) {
  const Dataset data = RandomDataset(3, 300, 0.0, 1000.0, 99);
  for (SampleStrategy strategy :
       {SampleStrategy::kUniform, SampleStrategy::kKCenter}) {
    for (double rate : {0.2, 1.0}) {
      SampledRunStats stats;
      const Clustering c =
          RunSampled(data, 0.001, 2, rate, strategy, 9, 1, &stats);
      EXPECT_EQ(c.num_clusters, 0);
      EXPECT_EQ(stats.num_core, 0u);
      EXPECT_EQ(stats.num_noise, data.size());
      for (int32_t label : c.label) EXPECT_EQ(label, kNoise);
    }
  }
}

TEST(SampledDbscan, DuplicatePointsClusterAndStayDeterministic) {
  // Two blobs of identical points: exercises the k-center draw once every
  // distinct location is exhausted (all remaining distances are zero) and
  // the duplicate-heavy grid/assignment paths.
  Dataset data(2);
  for (int i = 0; i < 30; ++i) data.Add({0.0, 0.0});
  for (int i = 0; i < 30; ++i) data.Add({5.0, 5.0});
  const int hw = HardwareThreads();
  for (SampleStrategy strategy :
       {SampleStrategy::kUniform, SampleStrategy::kKCenter}) {
    for (double rate : {0.4, 1.0}) {
      SampledRunStats stats;
      const Clustering c =
          RunSampled(data, 1.0, 10, rate, strategy, 21, 1, &stats);
      const std::string context = std::string("strategy=") +
                                  SampleStrategyName(strategy) +
                                  " rate=" + std::to_string(rate);
      EXPECT_EQ(c.num_clusters, 2) << context;
      EXPECT_EQ(stats.num_noise, 0u) << context;
      for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(c.label[i], i < 30 ? 0 : 1) << context << " i=" << i;
      }
      ExpectBitIdentical(
          c, RunSampled(data, 1.0, 10, rate, strategy, 21, hw), context);
    }
  }
  // Degenerate envelope holds on duplicate-heavy data too.
  DbscanParams params;
  params.eps = 1.0;
  params.min_pts = 10;
  params.num_threads = 1;
  const Clustering exact = ExactGridDbscan(data, params);
  const Clustering sampled =
      RunSampled(data, 1.0, 10, 1.0, SampleStrategy::kUniform, 21, 1);
  EXPECT_TRUE(SameClusters(exact, sampled));
  EXPECT_EQ(exact.is_core, sampled.is_core);
}

TEST(SampledDbscan, AssignsToNearestCoreNotSmallestCluster) {
  // Cluster 0: ten points at x = 0.0..0.9; cluster 1: ten at x = 2.7..3.6
  // (gap 1.8 > eps keeps them apart). The probe at x = 1.82 reaches one
  // core of each cluster — cluster 0's x=0.9 at distance 0.92, cluster 1's
  // x=2.7 at 0.88 — and has only 4 points within eps, so it is never core.
  // Its primary label must follow the NEAREST core (cluster 1), with
  // cluster 0 retained as an extra membership.
  Dataset data(2);
  for (int i = 0; i < 10; ++i) data.Add({0.1 * i, 0.0});
  for (int i = 0; i < 10; ++i) data.Add({2.7 + 0.1 * i, 0.0});
  data.Add({1.82, 0.0});
  const uint32_t probe = 20;
  for (SampleStrategy strategy :
       {SampleStrategy::kUniform, SampleStrategy::kKCenter}) {
    const Clustering c = RunSampled(data, 1.0, 10, 1.0, strategy, 1, 1);
    ASSERT_EQ(c.num_clusters, 2);
    EXPECT_EQ(c.is_core[probe], 0);
    EXPECT_EQ(c.label[probe], 1);
    const std::vector<std::pair<uint32_t, int32_t>> want_extras = {
        {probe, 0}};
    EXPECT_EQ(c.extra_memberships, want_extras);
  }
}

TEST(DrawSample, SortedDistinctAndSeedReproducible) {
  const Dataset data = RandomDataset(3, 500, 0.0, 100.0, 17);
  for (SampleStrategy strategy :
       {SampleStrategy::kUniform, SampleStrategy::kKCenter}) {
    for (double rate : {0.01, 0.3, 1.0}) {
      const std::vector<uint32_t> a = DrawSample(data, rate, strategy, 7, 1);
      EXPECT_EQ(a.size(), SampleSizeFor(data.size(), rate));
      EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
      EXPECT_EQ(std::adjacent_find(a.begin(), a.end()), a.end());
      for (uint32_t id : a) EXPECT_LT(id, data.size());
      // Same seed reproduces the draw at any thread count; the strategies'
      // seed streams are independent, so this holds per strategy.
      EXPECT_EQ(a, DrawSample(data, rate, strategy, 7, 1));
      EXPECT_EQ(a, DrawSample(data, rate, strategy, 7, HardwareThreads()));
    }
    // Rate 1.0 is the identity permutation for either strategy.
    const std::vector<uint32_t> all = DrawSample(data, 1.0, strategy, 3, 1);
    for (uint32_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
  }
  // Different seeds actually move the uniform draw.
  EXPECT_NE(DrawSample(data, 0.3, SampleStrategy::kUniform, 1, 1),
            DrawSample(data, 0.3, SampleStrategy::kUniform, 2, 1));
}

TEST(DrawSample, KCenterSpreadsFartherThanUniform) {
  // Farthest-point traversal must cover the domain: on two widely separated
  // blobs plus far-flung outliers, a small k-center draw hits both blobs
  // and the outliers even when a uniform draw of the same size may not.
  Dataset data(2);
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    data.Add({rng.NextDouble(0.0, 1.0), rng.NextDouble(0.0, 1.0)});
  }
  data.Add({1000.0, 1000.0});
  data.Add({-1000.0, 500.0});
  const std::vector<uint32_t> picks =
      DrawSample(data, 0.05, SampleStrategy::kKCenter, 11, 1);
  EXPECT_TRUE(std::find(picks.begin(), picks.end(), 200u) != picks.end());
  EXPECT_TRUE(std::find(picks.begin(), picks.end(), 201u) != picks.end());
}

}  // namespace
}  // namespace adbscan
