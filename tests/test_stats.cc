#include <gtest/gtest.h>

#include "core/brute_reference.h"
#include "eval/stats.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::MakeDataset;

TEST(Stats, CountsAddUp) {
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {0.2, 0.0}, {0.0, 0.2}, {0.2, 0.2},  // core block
      {1.4, 0.0},  // border: exactly eps from one core, 2 < MinPts total
      {50.0, 50.0},                                     // noise
  });
  const Clustering c = BruteForceDbscan(data, DbscanParams{1.2, 4});
  const ClusteringStats stats = ComputeStats(data, c);
  EXPECT_EQ(stats.clusters.size(), 1u);
  EXPECT_EQ(stats.core_points + stats.border_points + stats.noise_points,
            data.size());
  EXPECT_EQ(stats.noise_points, 1u);
  EXPECT_EQ(stats.border_points, 1u);
  EXPECT_EQ(stats.core_points, 4u);
  EXPECT_NEAR(stats.noise_fraction, 1.0 / 6.0, 1e-12);
}

TEST(Stats, PerClusterGeometry) {
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {2.0, 0.0}, {0.0, 2.0}, {2.0, 2.0},
  });
  const Clustering c = BruteForceDbscan(data, DbscanParams{3.0, 4});
  const ClusteringStats stats = ComputeStats(data, c);
  ASSERT_EQ(stats.clusters.size(), 1u);
  const ClusterStats& cs = stats.clusters[0];
  EXPECT_EQ(cs.size, 4u);
  EXPECT_EQ(cs.core_points, 4u);
  EXPECT_DOUBLE_EQ(cs.centroid[0], 1.0);
  EXPECT_DOUBLE_EQ(cs.centroid[1], 1.0);
  EXPECT_DOUBLE_EQ(cs.bounding_box.MaxExtent(), 2.0);
  EXPECT_NEAR(cs.mean_centroid_dist, std::sqrt(2.0), 1e-12);
}

TEST(Stats, SharedBorderCountedInBothClusters) {
  const Dataset data = MakeDataset({
      {0.9, 0.0}, {1.2, 0.0}, {1.2, 0.3}, {1.5, 0.0},       // cluster 0
      {0.0, 0.0},                                            // shared border
      {-0.9, 0.0}, {-1.2, 0.0}, {-1.2, 0.3}, {-1.5, 0.0},   // cluster 1
  });
  const Clustering c = BruteForceDbscan(data, DbscanParams{1.0, 4});
  ASSERT_EQ(c.num_clusters, 2);
  const ClusteringStats stats = ComputeStats(data, c);
  // The shared border is a member of both cluster point sets.
  EXPECT_EQ(stats.clusters[0].size, 5u);
  EXPECT_EQ(stats.clusters[1].size, 5u);
  EXPECT_EQ(stats.border_points, 1u);
}

TEST(Stats, EmptyClusteringIsAllZero) {
  Dataset data(3);
  Clustering c;
  const ClusteringStats stats = ComputeStats(data, c);
  EXPECT_TRUE(stats.clusters.empty());
  EXPECT_EQ(stats.noise_points, 0u);
  EXPECT_DOUBLE_EQ(stats.noise_fraction, 0.0);
}

TEST(Stats, AllNoise) {
  const Dataset data = MakeDataset({{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}});
  const Clustering c = BruteForceDbscan(data, DbscanParams{1.0, 2});
  const ClusteringStats stats = ComputeStats(data, c);
  EXPECT_EQ(stats.noise_points, 3u);
  EXPECT_DOUBLE_EQ(stats.noise_fraction, 1.0);
}

}  // namespace
}  // namespace adbscan
