// Compile-out guard for the observability layer: this translation unit
// forces ADBSCAN_METRICS=0 before including the headers, so every ADB_*
// macro here must expand to nothing while the obs library API itself stays
// linkable. It then drives all five pipelines with runtime metrics off and
// checks that nothing was recorded — the disabled configuration is inert.

#define ADBSCAN_METRICS 0

#include <gtest/gtest.h>

#include "core/adbscan.h"
#include "gen/seed_spreader.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace adbscan {
namespace {

Dataset SmallDataset(int dim) {
  SeedSpreaderParams p;
  p.dim = dim;
  p.n = 400;
  return GenerateSeedSpreader(p, 7);
}

TEST(ObsDisabled, MacrosAreNoOpsInThisTu) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::MetricsRegistry::Global().Reset();
  ADB_COUNT("disabled_tu.counter", 123);
  ADB_RECORD("disabled_tu.dist", 4.5);
  { ADB_PHASE("disabled_tu.phase"); }
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.counters.count("disabled_tu.counter"), 0u);
  EXPECT_EQ(snap.distributions.count("disabled_tu.dist"), 0u);
  EXPECT_TRUE(snap.phases.empty());
  obs::MetricsRegistry::SetEnabled(false);
}

TEST(ObsDisabled, RunRecordMarksMetricsDisabled) {
  // RunRecord's default comes from this TU's ADBSCAN_METRICS.
  obs::RunRecord rec;
  EXPECT_FALSE(rec.metrics_enabled);
}

TEST(ObsDisabled, AllPipelinesRunInertWithRuntimeMetricsOff) {
  ASSERT_FALSE(obs::MetricsRegistry::Enabled());
  obs::MetricsRegistry::Global().Reset();

  const Dataset data2d = SmallDataset(2);
  const Dataset data3d = SmallDataset(3);
  const DbscanParams params{5000.0, 10};

  const Clustering exact = ExactGridDbscan(data3d, params);
  const Clustering approx = ApproxDbscan(data3d, params, 0.001);
  const Clustering kdd = Kdd96Dbscan(data3d, params);
  const Clustering cit = GridbscanDbscan(data3d, params);
  const Clustering gun = Gunawan2dDbscan(data2d, params);
  EXPECT_EQ(exact.label.size(), data3d.size());
  EXPECT_EQ(approx.label.size(), data3d.size());
  EXPECT_EQ(kdd.label.size(), data3d.size());
  EXPECT_EQ(cit.label.size(), data3d.size());
  EXPECT_EQ(gun.label.size(), data2d.size());

  // Runtime-disabled instrumentation never even registers its counters.
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.distributions.empty());
  EXPECT_TRUE(snap.phases.empty());
}

}  // namespace
}  // namespace adbscan
