#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "sample/sample_flags.h"
#include "sample/sampler.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace adbscan {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int differs = 0;
  for (int i = 0; i < 10; ++i) differs += (a.Next() != b.Next());
  EXPECT_GT(differs, 0);
}

TEST(Rng, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(Rng, NextBoundedHitsAllResidues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespected) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextDouble(-3.0, 9.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 9.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, DeriveSeedIsDeterministic) {
  // A pure function of (seed, stream): the foundation of the sampled tier's
  // bit-for-bit reproducibility contract.
  EXPECT_EQ(DeriveSeed(42, 0), DeriveSeed(42, 0));
  EXPECT_EQ(DeriveSeed(0, 7), DeriveSeed(0, 7));
}

TEST(Rng, DeriveSeedSeparatesStreamsAndSeeds) {
  std::set<uint64_t> seen;
  for (uint64_t seed : {0ull, 1ull, 2ull, 42ull}) {
    for (uint64_t stream : {0ull, 1ull, 2ull, 3ull}) {
      seen.insert(DeriveSeed(seed, stream));
    }
  }
  // Nearby seeds and nearby streams must all land on distinct children.
  EXPECT_EQ(seen.size(), 16u);
  // Child generators of adjacent streams diverge immediately.
  Rng a(DeriveSeed(9, 0)), b(DeriveSeed(9, 1));
  int differs = 0;
  for (int i = 0; i < 10; ++i) differs += (a.Next() != b.Next());
  EXPECT_GT(differs, 0);
}

TEST(Rng, SplitMix64MatchesReferenceVectors) {
  // Reference outputs of the standard SplitMix64 for state = 0 (the
  // published test vector), guarding the constant against typos — Rng
  // seeding, DeriveSeed, and the sampler all build on it.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(&state), 0xe220a8397b1dcdafull);
  EXPECT_EQ(SplitMix64(&state), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(SplitMix64(&state), 0x06c45d188009454full);
}

// Builds a Flags instance carrying the sampled-tier knobs, parses the given
// command line, and validates it with the given cross-flag context.
bool ValidateSampleArgs(std::vector<std::string> args, int num_shards,
                        const std::string& algo, SampleFlagSettings* out,
                        std::string* error) {
  Flags flags;
  DefineSampleFlags(&flags);
  std::vector<std::vector<char>> storage;
  std::vector<char*> argv;
  storage.emplace_back(std::vector<char>{'p', 'r', 'o', 'g', '\0'});
  for (const std::string& arg : args) {
    storage.emplace_back(arg.begin(), arg.end());
    storage.back().push_back('\0');
  }
  for (auto& buf : storage) argv.push_back(buf.data());
  flags.Parse(static_cast<int>(argv.size()), argv.data());
  return ValidateSampleFlags(flags, num_shards, algo, out, error);
}

TEST(SampleFlags, AcceptsDefaultsAndSampledSelection) {
  SampleFlagSettings s;
  std::string error;
  ASSERT_TRUE(ValidateSampleArgs({}, 1, "approx", &s, &error)) << error;
  EXPECT_FALSE(s.sampled);
  ASSERT_TRUE(ValidateSampleArgs({"--pipeline=sampled", "--sample_rate=0.25",
                                  "--sample_strategy=kcenter", "--seed=9"},
                                 1, "approx", &s, &error))
      << error;
  EXPECT_TRUE(s.sampled);
  EXPECT_DOUBLE_EQ(s.options.sample_rate, 0.25);
  EXPECT_EQ(s.options.strategy, SampleStrategy::kKCenter);
  EXPECT_EQ(s.options.seed, 9u);
}

TEST(SampleFlags, RejectsRateOutsideUnitInterval) {
  SampleFlagSettings s;
  std::string error;
  for (const char* rate : {"0", "-0.1", "1.5", "2", "nan", "0.5x"}) {
    error.clear();
    EXPECT_FALSE(ValidateSampleArgs(
        {std::string("--sample_rate=") + rate}, 1, "approx", &s, &error))
        << rate;
    EXPECT_NE(error.find("sample_rate"), std::string::npos) << error;
  }
  // Boundary: exactly 1.0 is legal (the degenerate full-sample envelope).
  EXPECT_TRUE(ValidateSampleArgs({"--sample_rate=1.0"}, 1, "approx", &s,
                                 &error))
      << error;
}

TEST(SampleFlags, RejectsUnknownStrategyAndPipeline) {
  SampleFlagSettings s;
  std::string error;
  EXPECT_FALSE(ValidateSampleArgs({"--sample_strategy=random"}, 1, "approx",
                                  &s, &error));
  EXPECT_NE(error.find("sample_strategy"), std::string::npos) << error;
  EXPECT_FALSE(
      ValidateSampleArgs({"--pipeline=streamed"}, 1, "approx", &s, &error));
  EXPECT_NE(error.find("pipeline"), std::string::npos) << error;
  // Knobs are validated even when --pipeline=batch leaves them unused.
  EXPECT_FALSE(ValidateSampleArgs(
      {"--pipeline=batch", "--sample_rate=7"}, 1, "approx", &s, &error));
}

TEST(SampleFlags, RejectsNegativeOrMalformedSeed) {
  SampleFlagSettings s;
  std::string error;
  for (const char* seed : {"-1", "1.5", "x"}) {
    EXPECT_FALSE(ValidateSampleArgs({std::string("--seed=") + seed}, 1,
                                    "approx", &s, &error))
        << seed;
    EXPECT_NE(error.find("seed"), std::string::npos) << error;
  }
}

TEST(SampleFlags, RejectsIncompatibleCombinations) {
  SampleFlagSettings s;
  std::string error;
  // Sharded runs and explicit --algo choices conflict with the sampled
  // pipeline; both are fine when --pipeline stays batch.
  EXPECT_FALSE(
      ValidateSampleArgs({"--pipeline=sampled"}, 4, "approx", &s, &error));
  EXPECT_NE(error.find("shards"), std::string::npos) << error;
  EXPECT_FALSE(
      ValidateSampleArgs({"--pipeline=sampled"}, 1, "exact", &s, &error));
  EXPECT_NE(error.find("algo"), std::string::npos) << error;
  EXPECT_TRUE(ValidateSampleArgs({}, 4, "exact", &s, &error)) << error;
}

TEST(Timer, ElapsedIsNonNegativeAndMonotonic) {
  Timer t;
  const double a = t.ElapsedSeconds();
  const double b = t.ElapsedSeconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
  t.Reset();
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(Timer, PauseFreezesElapsed) {
  Timer t;
  t.Pause();
  EXPECT_FALSE(t.IsRunning());
  const double frozen = t.ElapsedSeconds();
  // Burn some wall clock; a paused timer must not see it.
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink += static_cast<double>(i);
  EXPECT_DOUBLE_EQ(t.ElapsedSeconds(), frozen);
}

TEST(Timer, ResumeAccumulatesAcrossSegments) {
  Timer t;
  t.Pause();
  const double first = t.ElapsedSeconds();
  t.Resume();
  EXPECT_TRUE(t.IsRunning());
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink += static_cast<double>(i);
  t.Pause();
  const double second = t.ElapsedSeconds();
  // The second segment adds on top of the banked first segment.
  EXPECT_GE(second, first);
  EXPECT_DOUBLE_EQ(t.ElapsedSeconds(), second);  // still paused
}

TEST(Timer, PauseAndResumeAreIdempotent) {
  Timer t;
  t.Pause();
  const double frozen = t.ElapsedSeconds();
  t.Pause();  // second pause: no-op
  EXPECT_DOUBLE_EQ(t.ElapsedSeconds(), frozen);
  t.Resume();
  t.Resume();  // second resume: no-op
  EXPECT_TRUE(t.IsRunning());
  EXPECT_GE(t.ElapsedSeconds(), frozen);
}

TEST(Timer, ResetClearsAccumulation) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 200000; ++i) sink += static_cast<double>(i);
  t.Pause();
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  t.Reset();
  EXPECT_TRUE(t.IsRunning());
  t.Pause();
  // Post-reset elapsed covers only the new (tiny) segment.
  EXPECT_LT(t.ElapsedSeconds(), 10.0);
  EXPECT_GE(t.ElapsedSeconds(), 0.0);
}

TEST(Timer, ElapsedMillisMatchesSeconds) {
  Timer t;
  t.Pause();
  EXPECT_DOUBLE_EQ(t.ElapsedMillis(), t.ElapsedSeconds() * 1000.0);
}

TEST(Flags, DefaultsSurviveEmptyParse) {
  Flags flags;
  flags.DefineInt("n", 100, "count")
      .DefineDouble("eps", 5000.0, "radius")
      .DefineBool("full", false, "paper scale")
      .DefineString("out", "x.csv", "path");
  char prog[] = "prog";
  char* argv[] = {prog};
  flags.Parse(1, argv);
  EXPECT_EQ(flags.GetInt("n"), 100);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps"), 5000.0);
  EXPECT_FALSE(flags.GetBool("full"));
  EXPECT_EQ(flags.GetString("out"), "x.csv");
}

TEST(Flags, ParsesEqualsAndSpaceSyntax) {
  Flags flags;
  flags.DefineInt("n", 1, "").DefineDouble("eps", 0.0, "").DefineBool(
      "full", false, "");
  char prog[] = "prog";
  char a1[] = "--n=42";
  char a2[] = "--eps";
  char a3[] = "123.5";
  char a4[] = "--full";
  char* argv[] = {prog, a1, a2, a3, a4};
  flags.Parse(5, argv);
  EXPECT_EQ(flags.GetInt("n"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("eps"), 123.5);
  EXPECT_TRUE(flags.GetBool("full"));
}

TEST(Flags, RepeatedFlagLastWinsAndWarns) {
  Flags flags;
  flags.DefineInt("n", 1, "").DefineString("out", "a.csv", "");
  char prog[] = "prog";
  char a1[] = "--n=10";
  char a2[] = "--out=b.csv";
  char a3[] = "--n";
  char a4[] = "20";
  char a5[] = "--n=30";
  char* argv[] = {prog, a1, a2, a3, a4, a5};
  flags.Parse(6, argv);
  // The LAST occurrence wins, across both --name=value and --name value
  // syntaxes, and each repeat is reported.
  EXPECT_EQ(flags.GetInt("n"), 30);
  EXPECT_EQ(flags.GetString("out"), "b.csv");
  EXPECT_EQ(flags.repeat_warnings(), 2u);
}

TEST(Flags, NoWarningWithoutRepeats) {
  Flags flags;
  flags.DefineInt("n", 1, "").DefineBool("full", false, "");
  char prog[] = "prog";
  char a1[] = "--n=5";
  char a2[] = "--full";
  char* argv[] = {prog, a1, a2};
  flags.Parse(3, argv);
  EXPECT_EQ(flags.repeat_warnings(), 0u);
}

TEST(Flags, ParsesLists) {
  Flags flags;
  flags.DefineString("eps", "1,2.5,10", "");
  char prog[] = "prog";
  char* argv[] = {prog};
  flags.Parse(1, argv);
  const std::vector<double> values = flags.GetDoubleList("eps");
  ASSERT_EQ(values.size(), 3u);
  EXPECT_DOUBLE_EQ(values[0], 1.0);
  EXPECT_DOUBLE_EQ(values[1], 2.5);
  EXPECT_DOUBLE_EQ(values[2], 10.0);
  const std::vector<int64_t> ints = flags.GetIntList("eps");
  ASSERT_EQ(ints.size(), 3u);
  EXPECT_EQ(ints[2], 10);
}

TEST(Flags, TryGetDoubleRejectsMalformedValues) {
  auto parse_as_eps = [](const char* text, double* out) {
    Flags flags;
    flags.DefineDouble("eps", 0.0, "");
    char prog[] = "prog";
    std::string arg = std::string("--eps=") + text;
    std::vector<char> arg_buf(arg.begin(), arg.end());
    arg_buf.push_back('\0');
    char* argv[] = {prog, arg_buf.data()};
    flags.Parse(2, argv);
    return flags.TryGetDouble("eps", out);
  };
  double v = -1.0;
  EXPECT_TRUE(parse_as_eps("0.5", &v));
  EXPECT_DOUBLE_EQ(v, 0.5);
  EXPECT_TRUE(parse_as_eps("3.5e-2", &v));
  EXPECT_DOUBLE_EQ(v, 3.5e-2);
  EXPECT_TRUE(parse_as_eps("-4", &v));
  EXPECT_DOUBLE_EQ(v, -4.0);
  // The plain getter half-parses these; the strict one must not.
  EXPECT_FALSE(parse_as_eps("0.5x", &v));
  EXPECT_FALSE(parse_as_eps("x", &v));
  EXPECT_FALSE(parse_as_eps("1e999", &v));  // overflows to infinity
  EXPECT_FALSE(parse_as_eps("nan", &v));
  EXPECT_FALSE(parse_as_eps("1,5", &v));
}

TEST(Flags, TryGetIntRejectsMalformedValues) {
  auto parse_as_min_pts = [](const char* text, int64_t* out) {
    Flags flags;
    flags.DefineInt("min_pts", 0, "");
    char prog[] = "prog";
    std::string arg = std::string("--min_pts=") + text;
    std::vector<char> arg_buf(arg.begin(), arg.end());
    arg_buf.push_back('\0');
    char* argv[] = {prog, arg_buf.data()};
    flags.Parse(2, argv);
    return flags.TryGetInt("min_pts", out);
  };
  int64_t v = -1;
  EXPECT_TRUE(parse_as_min_pts("100", &v));
  EXPECT_EQ(v, 100);
  EXPECT_TRUE(parse_as_min_pts("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_as_min_pts("100x", &v));
  EXPECT_FALSE(parse_as_min_pts("1.5", &v));
  EXPECT_FALSE(parse_as_min_pts("ten", &v));
  EXPECT_FALSE(parse_as_min_pts("99999999999999999999", &v));  // overflow
}

// Restores (or clears) ADBSCAN_THREADS when the scope ends, so these tests
// do not leak environment into the rest of the suite.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("ADBSCAN_THREADS");
    if (old != nullptr) saved_ = old;
    had_value_ = old != nullptr;
    if (value == nullptr) {
      unsetenv("ADBSCAN_THREADS");
    } else {
      setenv("ADBSCAN_THREADS", value, 1);
    }
  }
  ~ScopedThreadsEnv() {
    if (had_value_) {
      setenv("ADBSCAN_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("ADBSCAN_THREADS");
    }
  }

 private:
  bool had_value_ = false;
  std::string saved_;
};

// Regression test for the ValidateCommonFlags bypass: the CLI used to
// validate only the --threads flag while ResolveNumThreads silently
// swallowed a malformed ADBSCAN_THREADS (atoi half-parse), so flags
// arriving via environment escaped validation. TryResolveNumThreads must
// validate the merged view.
TEST(Threads, TryResolveRejectsMalformedEnvironment) {
  int threads = -1;
  std::string error;
  for (const char* bad : {"abc", "8x", "-3", "0", "", " 4", "1e2",
                          "99999999999999999999"}) {
    ScopedThreadsEnv env(bad);
    error.clear();
    EXPECT_FALSE(TryResolveNumThreads(0, &threads, &error))
        << "env value \"" << bad << "\" must be rejected";
    EXPECT_NE(error.find("ADBSCAN_THREADS"), std::string::npos) << error;
    // A malformed environment is rejected even when an explicit flag value
    // would shadow it — the merged view is validated as a whole.
    EXPECT_FALSE(TryResolveNumThreads(3, &threads, &error));
  }
}

TEST(Threads, TryResolveMergesFlagAndEnvironment) {
  int threads = -1;
  std::string error;
  {
    ScopedThreadsEnv env("8");
    // Explicit positive flag wins over the environment.
    ASSERT_TRUE(TryResolveNumThreads(3, &threads, &error)) << error;
    EXPECT_EQ(threads, 3);
    // Auto (<= 0) falls back to the validated environment value.
    ASSERT_TRUE(TryResolveNumThreads(0, &threads, &error)) << error;
    EXPECT_EQ(threads, 8);
    ASSERT_TRUE(TryResolveNumThreads(-1, &threads, &error)) << error;
    EXPECT_EQ(threads, 8);
  }
  {
    // No environment: auto resolves to the hardware count.
    ScopedThreadsEnv env(nullptr);
    ASSERT_TRUE(TryResolveNumThreads(0, &threads, &error)) << error;
    EXPECT_EQ(threads, HardwareThreads());
  }
  {
    // Oversized-but-valid values cap at the pool's worker limit rather
    // than failing, matching DefaultThreads().
    ScopedThreadsEnv env("100000");
    ASSERT_TRUE(TryResolveNumThreads(0, &threads, &error)) << error;
    EXPECT_GE(threads, 1);
    EXPECT_LE(threads, 256);
  }
}

}  // namespace
}  // namespace adbscan
