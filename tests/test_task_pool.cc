// Correctness of the persistent work-stealing pool behind ParallelFor:
// every index of [0, n) must execute exactly once for any thread count and
// any work skew, nested regions must run inline (no deadlock, no double
// execution), and all chunk writes must be visible after Run returns.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/parallel.h"
#include "util/task_pool.h"

namespace adbscan {
namespace {

TEST(TaskPool, CoversEveryIndexExactlyOnceAcrossThreadCounts) {
  for (int threads : {2, 3, 7, 16, 300}) {
    const size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    TaskPool::Global().Run(n, threads, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(TaskPool, CoversEveryIndexUnderHeavySkew) {
  // The first chunk is ~1000x more expensive than the rest; stealing must
  // still finish everything exactly once.
  const size_t n = 4096;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  ParallelFor(n, 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      if (i == 0) {
        // Busy work whose result feeds the hit count so it cannot be
        // optimized away.
        volatile double sink = 0.0;
        for (int k = 0; k < 200000; ++k) sink = sink + 1e-9;
        hits[i].fetch_add(sink >= 0.0 ? 1 : 2, std::memory_order_relaxed);
      } else {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPool, NestedParallelForRunsInlineExactlyOnce) {
  const size_t outer = 64, inner = 64;
  std::vector<std::atomic<int>> hits(outer * inner);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  std::atomic<int> nested_seen{0};
  ParallelFor(outer, 4, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      EXPECT_TRUE(TaskPool::InParallelRegion());
      ParallelFor(inner, 4, [&](size_t b2, size_t e2) {
        for (size_t j = b2; j < e2; ++j) {
          hits[i * inner + j].fetch_add(1, std::memory_order_relaxed);
        }
      });
      nested_seen.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_FALSE(TaskPool::InParallelRegion());
  EXPECT_EQ(nested_seen.load(), static_cast<int>(outer));
  for (size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "slot " << i;
  }
}

TEST(TaskPool, TinyAndEmptyRanges) {
  bool called = false;
  TaskPool::Global().Run(0, 8, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);

  for (size_t n : {size_t{1}, size_t{2}, size_t{5}}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    TaskPool::Global().Run(n, 300, [&](size_t begin, size_t end) {
      for (size_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "n " << n << " index " << i;
    }
  }
}

TEST(TaskPool, WritesVisibleAfterReturnWithoutAtomics) {
  // The pool promises happens-before between chunk writes and Run's return,
  // so plain (non-atomic) disjoint writes must be visible to the caller.
  std::vector<size_t> values(5000, 0);
  ParallelFor(values.size(), 8, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) values[i] = i * 3 + 1;
  });
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(values[i], i * 3 + 1);
  }
}

TEST(TaskPool, WorkersPersistAcrossRegions) {
  TaskPool& pool = TaskPool::Global();
  ParallelFor(1000, 3, [](size_t, size_t) {});
  const int after_first = pool.NumSpawnedWorkers();
  EXPECT_GE(after_first, 1);  // 3 participants -> at least 2 pool workers
  for (int round = 0; round < 10; ++round) {
    ParallelFor(1000, 3, [](size_t, size_t) {});
  }
  // No churn: repeat regions at the same width spawn no new threads.
  EXPECT_EQ(pool.NumSpawnedWorkers(), after_first);
}

TEST(TaskPool, ConcurrentSubmittersSerializeSafely) {
  // Top-level regions from different threads must serialize, not corrupt
  // each other: every submitter sees all of its own indices exactly once.
  constexpr int kSubmitters = 4;
  constexpr size_t kN = 2000;
  std::vector<std::vector<int>> hits(kSubmitters, std::vector<int>(kN, 0));
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      ParallelFor(kN, 4, [&, s](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) ++hits[s][i];
      });
    });
  }
  for (std::thread& t : submitters) t.join();
  for (int s = 0; s < kSubmitters; ++s) {
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[s][i], 1) << "submitter " << s << " index " << i;
    }
  }
}

TEST(ResolveNumThreadsContract, PositivePassesThroughZeroMeansAuto) {
  EXPECT_EQ(ResolveNumThreads(1), 1);
  EXPECT_EQ(ResolveNumThreads(7), 7);
  const int auto_threads = ResolveNumThreads(0);
  EXPECT_GE(auto_threads, 1);
  EXPECT_EQ(ResolveNumThreads(-3), auto_threads);
  EXPECT_LE(DefaultThreads(), TaskPool::kMaxWorkers);
}

}  // namespace
}  // namespace adbscan
