// Property tests for Theorem 3 (the sandwich quality guarantee): any result
// of ρ-approximate DBSCAN contains every cluster of DBSCAN(ε) and is
// contained in a cluster of DBSCAN(ε(1+ρ)).

#include <gtest/gtest.h>

#include "core/adbscan.h"
#include "eval/compare.h"
#include "gen/seed_spreader.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::RandomDataset;

struct SandwichCase {
  int dim;
  size_t n;
  double eps;
  int min_pts;
  double rho;
  int distribution;  // 0 clustered, 1 uniform, 2 spreader
  uint64_t seed;
};

Dataset MakeData(const SandwichCase& c) {
  switch (c.distribution) {
    case 0:
      return ClusteredDataset(c.dim, c.n, 5, 100.0, 4.0, c.seed);
    case 1:
      return RandomDataset(c.dim, c.n, 0.0, 100.0, c.seed);
    default: {
      SeedSpreaderParams p;
      p.dim = c.dim;
      p.n = c.n;
      p.domain_hi = 1000.0;
      p.point_radius = 10.0;
      p.shift_distance = 5.0 * c.dim;
      p.counter_reset = 20;
      p.noise_fraction = 0.05;
      return GenerateSeedSpreader(p, c.seed);
    }
  }
}

class SandwichTest : public ::testing::TestWithParam<SandwichCase> {};

TEST_P(SandwichTest, ApproxResultIsSandwiched) {
  const SandwichCase c = GetParam();
  const Dataset data = MakeData(c);
  const DbscanParams params{c.eps, c.min_pts};
  const DbscanParams scaled{c.eps * (1.0 + c.rho), c.min_pts};

  const Clustering exact_eps = ExactGridDbscan(data, params);
  const Clustering exact_scaled = ExactGridDbscan(data, scaled);
  const Clustering approx = ApproxDbscan(data, params, c.rho);

  EXPECT_TRUE(SatisfiesSandwich(exact_eps, approx, exact_scaled))
      << "sandwich violated (dim=" << c.dim << ", rho=" << c.rho << ")";
}

TEST_P(SandwichTest, ApproxCoreFlagsAreExact) {
  // Definition 1 is untouched by the approximation: core status must match
  // exact DBSCAN exactly.
  const SandwichCase c = GetParam();
  const Dataset data = MakeData(c);
  const DbscanParams params{c.eps, c.min_pts};
  EXPECT_TRUE(SameCoreFlags(ExactGridDbscan(data, params),
                            ApproxDbscan(data, params, c.rho)));
}

TEST_P(SandwichTest, ApproxNeverHasMoreClustersThanExact) {
  // Consequence of Theorem 3 statement 1 plus core-point uniqueness: the map
  // from approx clusters to the exact(ε) cluster of any of their core points
  // is injective, so #approx <= #exact(ε). (No lower bound in terms of
  // exact(ε(1+ρ)) holds: a cluster there may contain no ε-core point.)
  const SandwichCase c = GetParam();
  const Dataset data = MakeData(c);
  const DbscanParams params{c.eps, c.min_pts};
  const int exact_count = ExactGridDbscan(data, params).num_clusters;
  const int approx_count = ApproxDbscan(data, params, c.rho).num_clusters;
  EXPECT_LE(approx_count, exact_count);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SandwichTest,
    ::testing::Values(
        SandwichCase{2, 400, 6.0, 5, 0.001, 0, 1},
        SandwichCase{2, 400, 6.0, 5, 0.1, 0, 2},
        SandwichCase{2, 400, 6.0, 5, 1.0, 0, 3},    // huge rho
        SandwichCase{3, 400, 10.0, 6, 0.01, 0, 4},
        SandwichCase{3, 300, 12.0, 4, 0.5, 1, 5},
        SandwichCase{5, 300, 20.0, 4, 0.05, 0, 6},
        SandwichCase{7, 250, 30.0, 4, 0.1, 0, 7},
        SandwichCase{2, 500, 15.0, 5, 0.01, 2, 8},
        SandwichCase{3, 500, 25.0, 8, 0.1, 2, 9},
        SandwichCase{2, 300, 7.0, 4, 0.02, 1, 10},
        SandwichCase{2, 300, 7.0, 1, 0.05, 1, 11},  // MinPts = 1
        SandwichCase{5, 200, 50.0, 3, 0.2, 1, 12}));

// Randomized mini-fuzz across many seeds at small n: the guarantee must
// never break.
TEST(SandwichFuzz, ManyRandomInstances) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    const int dim = 2 + static_cast<int>(seed % 3);
    const Dataset data = RandomDataset(dim, 120, 0.0, 50.0, 1000 + seed);
    const double eps = 3.0 + static_cast<double>(seed % 7);
    const double rho = 0.001 * static_cast<double>(1 + seed % 100);
    const DbscanParams params{eps, 3};
    const DbscanParams scaled{eps * (1.0 + rho), 3};
    EXPECT_TRUE(SatisfiesSandwich(BruteForceDbscan(data, params),
                                  ApproxDbscan(data, params, rho),
                                  BruteForceDbscan(data, scaled)))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace adbscan
