#include <gtest/gtest.h>

#include <vector>

#include "core/adbscan.h"
#include "gen/usec_gen.h"

namespace adbscan {
namespace {

DbscanSolver ExactGridSolver() {
  return [](const Dataset& data, const DbscanParams& params) {
    return ExactGridDbscan(data, params);
  };
}

DbscanSolver Kdd96Solver() {
  return [](const Dataset& data, const DbscanParams& params) {
    return Kdd96Dbscan(data, params);
  };
}

DbscanSolver ApproxSolver(double rho) {
  return [rho](const Dataset& data, const DbscanParams& params) {
    return ApproxDbscan(data, params, rho);
  };
}

TEST(Usec, HandCraftedYes) {
  UsecInstance instance(2);
  instance.radius = 1.0;
  instance.points.Add({0.5, 0.0});
  instance.points.Add({10.0, 10.0});
  instance.ball_centers.Add({0.0, 0.0});
  EXPECT_TRUE(SolveUsecBruteForce(instance));
  EXPECT_TRUE(SolveUsecViaDbscan(instance, ExactGridSolver()));
}

TEST(Usec, HandCraftedNo) {
  UsecInstance instance(2);
  instance.radius = 1.0;
  instance.points.Add({5.0, 0.0});
  instance.ball_centers.Add({0.0, 0.0});
  instance.ball_centers.Add({3.0, 0.0});
  EXPECT_FALSE(SolveUsecBruteForce(instance));
  EXPECT_FALSE(SolveUsecViaDbscan(instance, ExactGridSolver()));
}

TEST(Usec, PointExactlyOnBallBoundaryIsCovered) {
  UsecInstance instance(3);
  instance.radius = 2.0;
  instance.points.Add({2.0, 0.0, 0.0});
  instance.ball_centers.Add({0.0, 0.0, 0.0});
  EXPECT_TRUE(SolveUsecBruteForce(instance));
  EXPECT_TRUE(SolveUsecViaDbscan(instance, ExactGridSolver()));
}

// The trap the reduction must avoid: points chained within radius of each
// other but all far from the balls must NOT produce a yes.
TEST(Usec, ChainedPointsDoNotLeakThroughClusters) {
  UsecInstance instance(2);
  instance.radius = 1.0;
  // Points chained 0.5 apart — one DBSCAN cluster.
  for (int i = 0; i < 10; ++i) instance.points.Add({i * 0.5, 0.0});
  // Ball far from every point.
  instance.ball_centers.Add({100.0, 100.0});
  EXPECT_FALSE(SolveUsecBruteForce(instance));
  EXPECT_FALSE(SolveUsecViaDbscan(instance, ExactGridSolver()));
}

// And the transitive case the proof's Case 1 handles: a point connects to a
// ball center through OTHER ball centers — then some point IS covered by
// some ball (the centers chain), so yes is correct.
TEST(Usec, TransitiveChainThroughCenters) {
  UsecInstance instance(2);
  instance.radius = 1.0;
  instance.points.Add({0.0, 0.0});
  instance.ball_centers.Add({0.9, 0.0});   // covers the point
  instance.ball_centers.Add({1.8, 0.0});   // chains onward
  EXPECT_TRUE(SolveUsecBruteForce(instance));
  EXPECT_TRUE(SolveUsecViaDbscan(instance, ExactGridSolver()));
}

class UsecReductionTest : public ::testing::TestWithParam<int> {};

TEST_P(UsecReductionTest, RandomInstancesAgreeWithBruteForce) {
  const int dim = GetParam();
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const UsecInstance yes =
        GenerateUsecYes(dim, 60, 40, 3000.0, 900 + seed);
    const UsecInstance no = GenerateUsecNo(dim, 60, 40, 3000.0, 950 + seed);
    ASSERT_TRUE(SolveUsecBruteForce(yes));
    ASSERT_FALSE(SolveUsecBruteForce(no));
    std::vector<DbscanSolver> solvers = {ExactGridSolver(), Kdd96Solver(),
                                         ApproxSolver(1e-9)};
    solvers.push_back([](const Dataset& d, const DbscanParams& p) {
      return GridbscanDbscan(d, p);
    });
    if (dim == 2) {
      solvers.push_back([](const Dataset& d, const DbscanParams& p) {
        return Gunawan2dDbscan(d, p);
      });
    }
    for (const auto& solver : solvers) {
      EXPECT_TRUE(SolveUsecViaDbscan(yes, solver)) << "seed " << seed;
      EXPECT_FALSE(SolveUsecViaDbscan(no, solver)) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, UsecReductionTest, ::testing::Values(2, 3, 5));

TEST(Usec, EmptySidesAreNo) {
  UsecInstance instance(2);
  instance.radius = 1.0;
  EXPECT_FALSE(SolveUsecViaDbscan(instance, ExactGridSolver()));
  instance.points.Add({0.0, 0.0});
  EXPECT_FALSE(SolveUsecViaDbscan(instance, ExactGridSolver()));
}

}  // namespace
}  // namespace adbscan
