// End-to-end integration: the full pipeline on realistic (scaled-down)
// versions of the paper's experimental workloads.

#include <gtest/gtest.h>

#include "core/adbscan.h"
#include "eval/collapse.h"
#include "eval/compare.h"
#include "gen/realdata_sim.h"
#include "gen/seed_spreader.h"
#include "gen/usec_gen.h"

namespace adbscan {
namespace {

// The Section 5.2 "2D visualization" setting, scaled: exact and approximate
// results agree for small rho at a stable eps.
TEST(Integration, Figure9StyleAgreementAtStableEps) {
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 1000;
  p.forced_restart_every = 250;
  p.noise_fraction = 0.0;
  const Dataset data = GenerateSeedSpreader(p, 1201);
  const DbscanParams params{5000.0, 20};
  const Clustering exact = ExactGridDbscan(data, params);
  const Clustering approx_small = ApproxDbscan(data, params, 0.001);
  EXPECT_TRUE(SameClusters(exact, approx_small));
  // Exact itself agrees with the other exact algorithms end to end.
  EXPECT_TRUE(SameClusters(exact, Kdd96Dbscan(data, params)));
  EXPECT_TRUE(SameClusters(exact, GridbscanDbscan(data, params)));
  EXPECT_TRUE(SameClusters(exact, Gunawan2dDbscan(data, params)));
}

// Larger-eps behaviour from Figure 9: clusters merge as eps grows; approx
// with rho=0.001 keeps tracking exact.
TEST(Integration, ClusterCountDecreasesWithEps) {
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 1000;
  p.forced_restart_every = 250;
  p.noise_fraction = 0.0;
  const Dataset data = GenerateSeedSpreader(p, 1201);
  int prev = 1 << 20;
  for (double eps : {3000.0, 8000.0, 20000.0, 60000.0}) {
    const Clustering c = ExactGridDbscan(data, {eps, 20});
    EXPECT_LE(c.num_clusters, prev);
    prev = c.num_clusters;
  }
  EXPECT_EQ(prev, 1);  // collapsed at the largest radius
}

// A scaled Figure 10 point: the maximum legal rho at a stable eps clears
// the paper's recommended 0.001 comfortably.
TEST(Integration, RecommendedRhoIsLegalAtStableEps) {
  SeedSpreaderParams p;
  p.dim = 3;
  p.n = 20000;
  const Dataset data = GenerateSeedSpreader(p, 1203);
  const DbscanParams params{5000.0, 100};
  const Clustering exact = ExactGridDbscan(data, params);
  EXPECT_TRUE(SameClusters(exact, ApproxDbscan(data, params, 0.001)));
}

// Collapsing radius pipeline on a spreader dataset: the radius exists, is
// above the default starting eps, and the predicate verifies around it.
TEST(Integration, CollapsingRadiusOnSpreader) {
  SeedSpreaderParams p;
  p.dim = 3;
  p.n = 5000;
  const Dataset data = GenerateSeedSpreader(p, 1205);
  CollapseOptions opts;
  opts.eps_lo = 1000.0;
  const double r = FindCollapsingRadius(data, 100, opts);
  EXPECT_GT(r, opts.eps_lo);
  EXPECT_EQ(ApproxDbscan(data, {r * 1.02, 100}, 0.001).num_clusters, 1);
}

// Full real-data-stand-in pipeline at paper parameters (scaled n): exact
// and approx agree on cluster counts within the sandwich bound.
TEST(Integration, RealStandInsExactVsApprox) {
  for (const Dataset& data :
       {Pamap2Like(20000, 1207), FarmLike(20000, 1209),
        HouseholdLike(20000, 1211)}) {
    const DbscanParams params{5000.0, 100};
    const Clustering exact = ExactGridDbscan(data, params);
    const Clustering approx = ApproxDbscan(data, params, 0.001);
    const Clustering inflated =
        ExactGridDbscan(data, {params.eps * 1.001, params.min_pts});
    EXPECT_TRUE(SatisfiesSandwich(exact, approx, inflated))
        << "dim " << data.dim();
    EXPECT_TRUE(SameCoreFlags(exact, approx));
  }
}

// The hardness-section demo end to end: USEC instances solved through the
// DBSCAN reduction match brute force using the fast approximate algorithm.
TEST(Integration, UsecThroughApproxDbscan) {
  const UsecInstance yes = GenerateUsecYes(3, 500, 300, 2000.0, 1213);
  const UsecInstance no = GenerateUsecNo(3, 500, 300, 2000.0, 1215);
  const DbscanSolver solver = [](const Dataset& d, const DbscanParams& p) {
    return ApproxDbscan(d, p, 1e-9);
  };
  EXPECT_TRUE(SolveUsecViaDbscan(yes, solver));
  EXPECT_FALSE(SolveUsecViaDbscan(no, solver));
}

}  // namespace
}  // namespace adbscan
