#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <vector>

#include "geom/point.h"
#include "index/brute_force.h"
#include "index/kdtree.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::RandomDataset;

std::set<uint32_t> AsSet(const std::vector<uint32_t>& v) {
  return {v.begin(), v.end()};
}

class KdTreeDimTest : public ::testing::TestWithParam<int> {};

TEST_P(KdTreeDimTest, RangeQueryMatchesBruteForce) {
  const int dim = GetParam();
  const Dataset data = RandomDataset(dim, 600, 0.0, 100.0, 11 + dim);
  const KdTree tree(data);
  const BruteForceIndex brute(data);
  Rng rng(100 + dim);
  for (int trial = 0; trial < 40; ++trial) {
    double q[kMaxDim];
    for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(-10.0, 110.0);
    const double radius = rng.NextDouble(1.0, 40.0);
    EXPECT_EQ(AsSet(tree.RangeQuery(q, radius)),
              AsSet(brute.RangeQuery(q, radius)));
  }
}

TEST_P(KdTreeDimTest, CountMatchesBruteForce) {
  const int dim = GetParam();
  const Dataset data = ClusteredDataset(dim, 500, 4, 100.0, 5.0, 17 + dim);
  const KdTree tree(data);
  const BruteForceIndex brute(data);
  Rng rng(200 + dim);
  for (int trial = 0; trial < 40; ++trial) {
    double q[kMaxDim];
    for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(0.0, 100.0);
    const double radius = rng.NextDouble(1.0, 30.0);
    EXPECT_EQ(tree.CountInBall(q, radius, SIZE_MAX),
              brute.CountInBall(q, radius, SIZE_MAX));
  }
}

TEST_P(KdTreeDimTest, NearestMatchesBruteForce) {
  const int dim = GetParam();
  const Dataset data = RandomDataset(dim, 400, 0.0, 100.0, 23 + dim);
  const KdTree tree(data);
  Rng rng(300 + dim);
  for (int trial = 0; trial < 60; ++trial) {
    double q[kMaxDim];
    for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(0.0, 100.0);
    double best = std::numeric_limits<double>::infinity();
    for (size_t p = 0; p < data.size(); ++p) {
      best = std::min(best, SquaredDistance(q, data.point(p), dim));
    }
    const auto nn = tree.Nearest(q);
    ASSERT_TRUE(nn.has_value());
    EXPECT_DOUBLE_EQ(nn->squared_dist, best);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, KdTreeDimTest, ::testing::Values(1, 2, 3, 5, 7));

TEST(KdTree, EmptyTreeBehaves) {
  Dataset data(3);
  const KdTree tree(data);
  EXPECT_TRUE(tree.empty());
  const double q[] = {0.0, 0.0, 0.0};
  EXPECT_TRUE(tree.RangeQuery(q, 10.0).empty());
  EXPECT_EQ(tree.CountInBall(q, 10.0, SIZE_MAX), 0u);
  EXPECT_FALSE(tree.Nearest(q).has_value());
  EXPECT_FALSE(tree.AnyWithin(q, 10.0));
}

TEST(KdTree, SubsetIndexOnlySeesSubset) {
  const Dataset data = RandomDataset(2, 100, 0.0, 10.0, 31);
  std::vector<uint32_t> subset;
  for (uint32_t i = 0; i < 100; i += 2) subset.push_back(i);
  const KdTree tree(data, subset);
  EXPECT_EQ(tree.size(), 50u);
  const double q[] = {5.0, 5.0};
  for (uint32_t id : tree.RangeQuery(q, 100.0)) {
    EXPECT_EQ(id % 2, 0u);
  }
  EXPECT_EQ(tree.RangeQuery(q, 100.0).size(), 50u);
}

TEST(KdTree, CountEarlyStopNeverUndercounts) {
  const Dataset data = RandomDataset(3, 1000, 0.0, 10.0, 37);
  const KdTree tree(data);
  const double q[] = {5.0, 5.0, 5.0};
  const size_t full = tree.CountInBall(q, 5.0, SIZE_MAX);
  ASSERT_GT(full, 100u);
  const size_t capped = tree.CountInBall(q, 5.0, 10);
  EXPECT_GE(capped, 10u);
  EXPECT_LE(capped, full);
}

TEST(KdTree, AnyWithinAgreesWithCount) {
  const Dataset data = RandomDataset(2, 200, 0.0, 100.0, 41);
  const KdTree tree(data);
  Rng rng(43);
  for (int trial = 0; trial < 100; ++trial) {
    double q[2] = {rng.NextDouble(-20, 120), rng.NextDouble(-20, 120)};
    const double radius = rng.NextDouble(0.5, 15.0);
    EXPECT_EQ(tree.AnyWithin(q, radius),
              tree.CountInBall(q, radius, SIZE_MAX) > 0);
  }
}

TEST(KdTree, NearestRespectsBound) {
  Dataset data(1);
  data.Add({0.0});
  data.Add({10.0});
  const KdTree tree(data);
  const double q[] = {6.0};
  // Nearest overall is at distance 4 (squared 16); bound 10 excludes it.
  const auto nn = tree.Nearest(q, 10.0);
  EXPECT_FALSE(nn.has_value());
  const auto nn2 = tree.Nearest(q, 17.0);
  ASSERT_TRUE(nn2.has_value());
  EXPECT_EQ(nn2->id, 1u);
}

TEST(KdTree, DuplicatePointsAllReported) {
  Dataset data(2);
  for (int i = 0; i < 40; ++i) data.Add({1.0, 1.0});
  const KdTree tree(data);
  const double q[] = {1.0, 1.0};
  EXPECT_EQ(tree.RangeQuery(q, 0.1).size(), 40u);
  EXPECT_EQ(tree.CountInBall(q, 0.0, SIZE_MAX), 40u);
}

TEST(KdTree, BoundsCoverData) {
  const Dataset data = RandomDataset(3, 50, -5.0, 5.0, 47);
  const KdTree tree(data);
  const Box& b = tree.bounds();
  for (size_t i = 0; i < data.size(); ++i) {
    EXPECT_TRUE(b.ContainsPoint(data.point(i)));
  }
}

}  // namespace
}  // namespace adbscan
