// Sharded clustering must be a pure partitioning knob: for every shard
// count, thread count, and storage mode (in-RAM or mmap),
// ShardedApproxDbscan returns the monolithic ApproxDbscan clustering
// bit-identically — labels, core flags, numbering, and extra memberships.
// Plus property tests for the ShardPlanner's halo invariant (sufficient and
// minimal) and adversarial datasets with dense clusters straddling
// Morton-range shard boundaries at distances around eps.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/adbscan.h"
#include "geom/box.h"
#include "grid/cell.h"
#include "grid/grid.h"
#include "grid/stencil.h"
#include "io/dataset_io.h"
#include "shard/boundary_merger.h"
#include "shard/shard_planner.h"
#include "shard/sharded_dbscan.h"
#include "test_helpers.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

void ExpectIdentical(const Clustering& mono, const Clustering& sharded,
                     const std::string& what) {
  EXPECT_EQ(mono.num_clusters, sharded.num_clusters) << what;
  EXPECT_EQ(mono.label, sharded.label) << what;
  EXPECT_EQ(mono.is_core, sharded.is_core) << what;
  EXPECT_EQ(mono.extra_memberships, sharded.extra_memberships) << what;
}

struct DiffCase {
  std::string name;
  int dim;
  size_t n;
  double eps;
  int min_pts;
  int distribution;  // 0 clustered, 1 uniform
};

Dataset MakeDiffData(const DiffCase& c, uint64_t seed) {
  if (c.distribution == 0) {
    return ClusteredDataset(c.dim, c.n, 5, 100.0, 4.0, seed);
  }
  return RandomDataset(c.dim, c.n, 0.0, 100.0, seed);
}

class ShardDifferentialTest : public ::testing::TestWithParam<DiffCase> {};

// The core differential sweep: K x threads, all against the serial
// monolithic run (which the determinism and parallel suites already pin
// thread-invariant).
TEST_P(ShardDifferentialTest, MatchesMonolithicEverywhere) {
  const DiffCase c = GetParam();
  const Dataset data = MakeDiffData(c, 3100 + c.dim * 13 + c.min_pts);
  const double rho = 0.001;
  {
    const Clustering mono = ApproxDbscan(data, {c.eps, c.min_pts, 1}, rho);
    for (int shards : {2, 3, 8}) {
      for (int threads : {1, HardwareThreads()}) {
        const DbscanParams params{c.eps, c.min_pts, threads};
        ShardedRunStats stats;
        const Clustering sharded =
            ShardedApproxDbscan(data, params, rho, shards, {}, &stats);
        ExpectIdentical(mono, sharded,
                        c.name + " K=" + std::to_string(shards) +
                            " threads=" + std::to_string(threads));
        EXPECT_EQ(stats.num_shards, shards);
        EXPECT_LE(stats.max_resident_points, data.size() + stats.halo_points);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ShardDifferentialTest,
    ::testing::Values(DiffCase{"clustered2d", 2, 2500, 6.0, 8, 0},
                      DiffCase{"clustered3d", 3, 2500, 8.0, 8, 0},
                      DiffCase{"clustered5d", 5, 2000, 15.0, 6, 0},
                      DiffCase{"clustered7d", 7, 1500, 25.0, 5, 0},
                      DiffCase{"uniform2d", 2, 1500, 5.0, 5, 1},
                      DiffCase{"uniform3d", 3, 1500, 9.0, 5, 1}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return info.param.name;
    });

TEST(ShardDegenerate, EmptyDataset) {
  const Dataset data(3);
  const Clustering sharded = ShardedApproxDbscan(data, {1.0, 5, 1}, 0.001, 4);
  EXPECT_EQ(sharded.num_clusters, 0);
  EXPECT_TRUE(sharded.label.empty());
}

TEST(ShardDegenerate, SingleShardIsMonolithic) {
  const Dataset data = ClusteredDataset(3, 800, 4, 100.0, 4.0, 3301);
  const DbscanParams params{8.0, 5, 1};
  const Clustering mono = ApproxDbscan(data, params, 0.001);
  const Clustering sharded = ShardedApproxDbscan(data, params, 0.001, 1);
  ExpectIdentical(mono, sharded, "K=1");
}

TEST(ShardDegenerate, MoreShardsThanCellsLeavesEmptyShards) {
  // All points coincide: one cell; every shard but one owns nothing.
  Dataset data(2);
  const double p[2] = {42.0, 17.0};
  for (int i = 0; i < 50; ++i) data.Add(p);
  const DbscanParams params{1.0, 10, 1};
  const ShardPlanner plan(data, params.eps, 8);
  ASSERT_EQ(plan.num_cells(), 1u);
  int owners = 0;
  for (int s = 0; s < plan.num_shards(); ++s) {
    if (plan.shard_begin(s + 1) > plan.shard_begin(s)) ++owners;
  }
  EXPECT_EQ(owners, 1);
  const Clustering mono = ApproxDbscan(data, params, 0.001);
  const Clustering sharded = ShardedApproxDbscan(data, params, 0.001, 8);
  ExpectIdentical(mono, sharded, "coincident K=8");
  EXPECT_EQ(sharded.num_clusters, 1);
}

TEST(ShardDegenerate, MoreShardsThanPoints) {
  const Dataset data = RandomDataset(2, 5, 0.0, 100.0, 3307);
  const DbscanParams params{5.0, 2, 1};
  const Clustering mono = ApproxDbscan(data, params, 0.001);
  for (int shards : {7, 32}) {
    const Clustering sharded =
        ShardedApproxDbscan(data, params, 0.001, shards);
    ExpectIdentical(mono, sharded, "n=5 K=" + std::to_string(shards));
  }
}

TEST(ShardDegenerate, DuplicatePointsStraddlingShardBoundary) {
  // Heavy duplication in the two cells around the K=2 Morton cut: the
  // balanced split lands between them, so duplicated coordinates sit on
  // both sides of the shard boundary within eps of each other.
  const double eps = 1.0;
  const double side = Grid::SideFor(eps, 2);
  Dataset data(2);
  for (int rep = 0; rep < 20; ++rep) {
    const double a[2] = {0.5 * side, 0.5 * side};
    const double b[2] = {1.5 * side, 0.5 * side};  // next cell, within eps
    data.Add(a);
    data.Add(b);
  }
  const DbscanParams params{eps, 5, 1};
  const ShardPlanner plan(data, eps, 2);
  ASSERT_EQ(plan.num_cells(), 2u);
  EXPECT_NE(plan.ShardOf(0), plan.ShardOf(1));
  const Clustering mono = ApproxDbscan(data, params, 0.001);
  const Clustering sharded = ShardedApproxDbscan(data, params, 0.001, 2);
  ExpectIdentical(mono, sharded, "duplicates on boundary");
  EXPECT_EQ(sharded.num_clusters, 1);
}

// -------------------------------------------------------------------------
// Halo-correctness property tests: two dense blobs forced into different
// shards, separated by distances around eps. Within eps (and exactly at
// eps) the rho-approximate guarantee demands one cluster; past eps(1+rho)
// it forbids the merge. Each case also re-checks bit-identity with the
// monolithic run, so the halo machinery is proven both sufficient (edges
// found) and conservative (no spurious edges).

// Two 8-point blobs of identical coordinates at `a` and `b`.
Dataset TwoBlobs(const double* a, const double* b) {
  Dataset data(2);
  for (int i = 0; i < 8; ++i) data.Add(a);
  for (int i = 0; i < 8; ++i) data.Add(b);
  return data;
}

void CheckBlobPair(double separation_x, int expected_clusters,
                   const std::string& what) {
  const double eps = 1.0;
  const double a[2] = {0.0, 0.0};
  const double b[2] = {separation_x, 0.0};
  const Dataset data = TwoBlobs(a, b);
  const DbscanParams params{eps, 4, 1};
  const ShardPlanner plan(data, eps, 2);
  ASSERT_EQ(plan.num_cells(), 2u) << what;
  // The balanced K=2 plan must cut between the blobs' cells, or the case
  // would not exercise a shard boundary at all.
  ASSERT_NE(plan.ShardOf(0), plan.ShardOf(1)) << what;
  const Clustering mono = ApproxDbscan(data, params, 0.001);
  const Clustering sharded = ShardedApproxDbscan(data, params, 0.001, 2);
  ExpectIdentical(mono, sharded, what);
  EXPECT_EQ(sharded.num_clusters, expected_clusters) << what;
}

TEST(ShardHalo, DenseBlobsWithinEpsAcrossBoundaryMerge) {
  CheckBlobPair(0.9, 1, "within eps");
}

TEST(ShardHalo, DenseBlobsExactlyAtEpsAcrossBoundaryMerge) {
  // dist == eps: inside the guaranteed range of the approximate counter.
  CheckBlobPair(1.0, 1, "exactly at eps");
}

TEST(ShardHalo, DenseBlobsJustPastEpsStaySeparate) {
  // dist = 1.2 eps > eps(1+rho): the counter must never see it.
  CheckBlobPair(1.2, 2, "just past eps(1+rho)");
}

TEST(ShardHalo, NonAdjacentCellsWithinEpsAreStitched) {
  // Blobs two cell columns apart with an EMPTY cell between them, yet
  // point distance < eps: the halo must reach past immediate neighbors
  // (radius is eps in box distance, not one ring).
  const double eps = 1.0;
  const double side = Grid::SideFor(eps, 2);  // eps/sqrt(2)
  const double a[2] = {0.99 * side, 0.5 * side};       // cell (0, 0)
  const double b[2] = {0.99 * side + 0.95, 0.5 * side};  // cell (2, 0)
  const Dataset data = TwoBlobs(a, b);
  const DbscanParams params{eps, 4, 1};
  const ShardPlanner plan(data, eps, 2);
  ASSERT_EQ(plan.num_cells(), 2u);
  ASSERT_NE(plan.ShardOf(0), plan.ShardOf(1));
  // Each shard's halo contains the other's (non-adjacent) cell.
  EXPECT_TRUE(plan.InHalo(plan.ShardOf(1), 0));
  EXPECT_TRUE(plan.InHalo(plan.ShardOf(0), 1));
  const Clustering mono = ApproxDbscan(data, params, 0.001);
  const Clustering sharded = ShardedApproxDbscan(data, params, 0.001, 2);
  ExpectIdentical(mono, sharded, "non-adjacent stitch");
  EXPECT_EQ(sharded.num_clusters, 1);
}

TEST(ShardHalo, CellsPastEpsAreNotInHalo) {
  // Minimality: cells whose box distance exceeds eps never enter a halo —
  // no point pair across them can be within eps, so hauling them into the
  // shard working set would be pure waste.
  const double eps = 1.0;
  const double side = Grid::SideFor(eps, 2);
  const double a[2] = {0.5 * side, 0.5 * side};  // cell (0, 0)
  const double b[2] = {3.5 * side, 0.5 * side};  // cell (3, 0), gap 2*side
  const Dataset data = TwoBlobs(a, b);
  const ShardPlanner plan(data, eps, 2);
  ASSERT_EQ(plan.num_cells(), 2u);
  ASSERT_NE(plan.ShardOf(0), plan.ShardOf(1));
  EXPECT_FALSE(plan.InHalo(plan.ShardOf(1), 0));
  EXPECT_FALSE(plan.InHalo(plan.ShardOf(0), 1));
  EXPECT_EQ(plan.HaloPoints(plan.ShardOf(0)), 0u);
  EXPECT_EQ(plan.HaloPoints(plan.ShardOf(1)), 0u);
}

// -------------------------------------------------------------------------
// Plan invariants, brute-force checked on moderate inputs.

TEST(ShardPlan, InvariantsHoldOnRandomInputs) {
  for (int dim : {2, 3, 5}) {
    const Dataset data =
        ClusteredDataset(dim, 1200, 4, 100.0, 4.0, 3400 + dim);
    const double eps = 3.0 * dim;
    const double eps2 = eps * eps;
    for (int K : {2, 3, 8}) {
      const ShardPlanner plan(data, eps, K, 4);
      const std::string what =
          "dim=" + std::to_string(dim) + " K=" + std::to_string(K);
      // Contiguous, exhaustive, monotone Morton ranges.
      ASSERT_EQ(plan.shard_begin(0), 0u) << what;
      ASSERT_EQ(plan.shard_begin(K), plan.num_cells()) << what;
      size_t owned_cells = 0, owned_points = 0, cell_points = 0;
      for (int s = 0; s < K; ++s) {
        ASSERT_LE(plan.shard_begin(s), plan.shard_begin(s + 1)) << what;
        owned_cells += plan.shard_begin(s + 1) - plan.shard_begin(s);
        owned_points += plan.OwnedPoints(s);
      }
      EXPECT_EQ(owned_cells, plan.num_cells()) << what;
      EXPECT_EQ(owned_points, data.size()) << what;
      for (uint32_t r = 0; r < plan.num_cells(); ++r) {
        cell_points += plan.CellCount(r);
        EXPECT_TRUE(plan.Owns(plan.ShardOf(r), r)) << what;
        EXPECT_EQ(plan.RankOf(plan.CellAt(r)), r) << what;
      }
      EXPECT_EQ(cell_points, data.size()) << what;

      // Halo sufficiency and minimality against the O(cells^2) definition:
      // a non-owned cell is in shard s's halo iff its corner distance
      // (CellPairDist2 — the same canonical predicate the grid's
      // ε-neighbor enumeration uses) to some owned cell is within eps.
      const double side = plan.side();
      for (int s = 0; s < K; ++s) {
        for (uint32_t b = 0; b < plan.num_cells(); ++b) {
          if (plan.Owns(s, b)) {
            EXPECT_FALSE(plan.InHalo(s, b)) << what;
            continue;
          }
          bool close = false;
          for (uint32_t a = plan.shard_begin(s);
               a < plan.shard_begin(s + 1) && !close; ++a) {
            close = CellPairDist2(plan.CellAt(a), plan.CellAt(b), side) <= eps2;
          }
          EXPECT_EQ(plan.InHalo(s, b), close)
              << what << " cell rank " << b << " shard " << s;
        }
        // Reported halo point counts match the cell counts.
        size_t halo_points = 0;
        for (uint32_t r : plan.Halo(s)) halo_points += plan.CellCount(r);
        EXPECT_EQ(plan.HaloPoints(s), halo_points) << what;
      }
    }
  }
}

TEST(ShardPlan, IdenticalForEveryThreadCount) {
  const Dataset data = ClusteredDataset(3, 3000, 5, 100.0, 4.0, 3501);
  const ShardPlanner serial(data, 8.0, 4, 1);
  for (int threads : {2, 8}) {
    const ShardPlanner parallel(data, 8.0, 4, threads);
    ASSERT_EQ(parallel.num_cells(), serial.num_cells());
    for (uint32_t r = 0; r < serial.num_cells(); ++r) {
      ASSERT_TRUE(parallel.CellAt(r) == serial.CellAt(r)) << r;
      ASSERT_EQ(parallel.CellCount(r), serial.CellCount(r)) << r;
    }
    for (int s = 0; s <= 4; ++s) {
      EXPECT_EQ(parallel.shard_begin(s), serial.shard_begin(s)) << s;
    }
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(parallel.Halo(s), serial.Halo(s)) << s;
    }
  }
}

// -------------------------------------------------------------------------
// Storage-mode equivalence: an mmap-backed dataset must produce the same
// bits as the in-RAM one, monolithic and sharded.

TEST(ShardMmap, MmapBackedRunsAreBitIdentical) {
  const std::string path = ::testing::TempDir() + "/shard_mmap.bin";
  const Dataset data = ClusteredDataset(3, 2000, 5, 100.0, 4.0, 3601);
  WriteBinary(data, path);
  std::string error;
  std::optional<Dataset> mapped = TryMapBinary(path, &error);
  ASSERT_TRUE(mapped.has_value()) << error;
  ASSERT_TRUE(mapped->external());
  const DbscanParams params{8.0, 8, 2};
  const Clustering mono = ApproxDbscan(data, params, 0.001);
  const Clustering mono_mapped = ApproxDbscan(*mapped, params, 0.001);
  ExpectIdentical(mono, mono_mapped, "monolithic over mmap");
  for (int shards : {2, 8}) {
    const Clustering sharded =
        ShardedApproxDbscan(*mapped, params, 0.001, shards);
    ExpectIdentical(mono, sharded,
                    "sharded over mmap K=" + std::to_string(shards));
  }
  std::remove(path.c_str());
}

// Sharding composes with the parallel grid build: the 3-arg Grid ctor must
// be thread-count-invariant, pinned here where the shard driver uses it.
TEST(ShardGrid, ParallelCsrBuildMatchesSerial) {
  const Dataset data = ClusteredDataset(3, 5000, 5, 100.0, 4.0, 3701);
  const double side = Grid::SideFor(8.0, 3);
  const Grid serial(data, side, 1);
  for (int threads : {2, 3, 8}) {
    const Grid parallel(data, side, threads);
    ASSERT_EQ(parallel.NumCells(), serial.NumCells()) << threads;
    for (uint32_t c = 0; c < serial.NumCells(); ++c) {
      ASSERT_TRUE(parallel.CellCoordOf(c) == serial.CellCoordOf(c))
          << "cell " << c << " threads " << threads;
      const Grid::IdSpan sp = serial.cell_points(c);
      const Grid::IdSpan pp = parallel.cell_points(c);
      ASSERT_EQ(pp.size(), sp.size()) << "cell " << c;
      for (size_t i = 0; i < sp.size(); ++i) {
        ASSERT_EQ(pp[i], sp[i]) << "cell " << c << " slot " << i;
      }
    }
  }
}

}  // namespace
}  // namespace adbscan
