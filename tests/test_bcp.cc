#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "bcp/bcp.h"
#include "geom/point.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace adbscan {
namespace {

using testing_helpers::RandomDataset;

// Reference: exhaustive closest pair.
double BruteMinSquaredDist(const Dataset& data,
                           const std::vector<uint32_t>& a,
                           const std::vector<uint32_t>& b) {
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t pa : a) {
    for (uint32_t pb : b) {
      best = std::min(best, SquaredDistance(data.point(pa), data.point(pb),
                                            data.dim()));
    }
  }
  return best;
}

struct BcpCase {
  int dim;
  size_t size_a;
  size_t size_b;
};

class BcpTest : public ::testing::TestWithParam<BcpCase> {};

TEST_P(BcpTest, PairMatchesBruteForce) {
  const BcpCase c = GetParam();
  const Dataset data =
      RandomDataset(c.dim, c.size_a + c.size_b, 0.0, 100.0, 97 + c.dim);
  std::vector<uint32_t> a, b;
  for (uint32_t i = 0; i < c.size_a; ++i) a.push_back(i);
  for (uint32_t i = 0; i < c.size_b; ++i) {
    b.push_back(static_cast<uint32_t>(c.size_a + i));
  }
  const auto pair = BichromaticClosestPair(data, a, b);
  ASSERT_TRUE(pair.has_value());
  EXPECT_DOUBLE_EQ(pair->squared_dist, BruteMinSquaredDist(data, a, b));
  // The reported pair must realize the reported distance and come from the
  // right sides.
  EXPECT_DOUBLE_EQ(
      SquaredDistance(data.point(pair->a), data.point(pair->b), c.dim),
      pair->squared_dist);
  EXPECT_LT(pair->a, c.size_a);
  EXPECT_GE(pair->b, c.size_a);
}

TEST_P(BcpTest, DecisionConsistentWithExactPair) {
  const BcpCase c = GetParam();
  const Dataset data =
      RandomDataset(c.dim, c.size_a + c.size_b, 0.0, 100.0, 101 + c.dim);
  std::vector<uint32_t> a, b;
  for (uint32_t i = 0; i < c.size_a; ++i) a.push_back(i);
  for (uint32_t i = 0; i < c.size_b; ++i) {
    b.push_back(static_cast<uint32_t>(c.size_a + i));
  }
  const double min_dist =
      std::sqrt(BruteMinSquaredDist(data, a, b));
  EXPECT_TRUE(ExistsPairWithin(data, a, b, min_dist * 1.0000001));
  EXPECT_FALSE(ExistsPairWithin(data, a, b, min_dist * 0.9999999));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BcpTest,
    ::testing::Values(BcpCase{2, 5, 5},       // brute-force path
                      BcpCase{2, 200, 300},   // kd-tree path
                      BcpCase{3, 40, 50},     // boundary-ish product
                      BcpCase{3, 500, 100},   // asymmetric, tree on A
                      BcpCase{5, 100, 500},   // asymmetric, tree on B
                      BcpCase{7, 300, 300})); // higher dimension

TEST(Bcp, EmptySetsYieldNoPair) {
  const Dataset data = RandomDataset(2, 10, 0.0, 10.0, 103);
  std::vector<uint32_t> a{0, 1, 2}, empty;
  EXPECT_FALSE(BichromaticClosestPair(data, a, empty).has_value());
  EXPECT_FALSE(BichromaticClosestPair(data, empty, a).has_value());
  EXPECT_FALSE(ExistsPairWithin(data, a, empty, 100.0));
}

TEST(Bcp, IdenticalPointsAcrossSets) {
  Dataset data(2);
  data.Add({1.0, 1.0});
  data.Add({1.0, 1.0});
  const auto pair = BichromaticClosestPair(data, {0}, {1});
  ASSERT_TRUE(pair.has_value());
  EXPECT_DOUBLE_EQ(pair->squared_dist, 0.0);
  EXPECT_TRUE(ExistsPairWithin(data, {0}, {1}, 0.0));
}

TEST(Bcp, OverlappingIdSetsAllowed) {
  // The same point id in both sets means distance zero is reachable.
  const Dataset data = RandomDataset(3, 20, 0.0, 100.0, 107);
  std::vector<uint32_t> ids;
  for (uint32_t i = 0; i < 20; ++i) ids.push_back(i);
  const auto pair = BichromaticClosestPair(data, ids, ids);
  ASSERT_TRUE(pair.has_value());
  EXPECT_DOUBLE_EQ(pair->squared_dist, 0.0);
}

TEST(Bcp, LargeSetsEarlyExitDecision) {
  // Two far-apart groups plus one planted close pair; the decision must
  // find it.
  Dataset data(2);
  Rng rng(109);
  std::vector<uint32_t> a, b;
  for (int i = 0; i < 2000; ++i) {
    a.push_back(data.Add({rng.NextDouble(0, 10), rng.NextDouble(0, 10)}));
  }
  for (int i = 0; i < 2000; ++i) {
    b.push_back(data.Add({rng.NextDouble(100, 110), rng.NextDouble(0, 10)}));
  }
  EXPECT_FALSE(ExistsPairWithin(data, a, b, 50.0));
  b.push_back(data.Add({10.5, 5.0}));  // within 50 of group a
  EXPECT_TRUE(ExistsPairWithin(data, a, b, 50.0));
}

}  // namespace
}  // namespace adbscan
