#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/exact_grid.h"
#include "eval/kdist.h"
#include "geom/point.h"
#include "index/kdtree.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

// Brute-force k-distance of one point.
double BruteKDist(const Dataset& data, size_t i, int k) {
  std::vector<double> d;
  d.reserve(data.size());
  for (size_t j = 0; j < data.size(); ++j) {
    d.push_back(SquaredDistance(data.point(i), data.point(j), data.dim()));
  }
  std::nth_element(d.begin(), d.begin() + (k - 1), d.end());
  return std::sqrt(d[k - 1]);
}

TEST(KNearest, MatchesBruteForce) {
  const Dataset data = RandomDataset(3, 300, 0.0, 50.0, 1601);
  const KdTree tree(data);
  Rng rng(1603);
  for (int trial = 0; trial < 30; ++trial) {
    double q[3] = {rng.NextDouble(0, 50), rng.NextDouble(0, 50),
                   rng.NextDouble(0, 50)};
    const size_t k = 1 + rng.NextBounded(20);
    const auto knn = tree.KNearest(q, k);
    ASSERT_EQ(knn.size(), k);
    // Ascending and matching an exhaustive sort.
    std::vector<double> all;
    for (size_t j = 0; j < data.size(); ++j) {
      all.push_back(SquaredDistance(q, data.point(j), 3));
    }
    std::sort(all.begin(), all.end());
    for (size_t j = 0; j < k; ++j) {
      EXPECT_DOUBLE_EQ(knn[j].squared_dist, all[j]);
      if (j > 0) EXPECT_GE(knn[j].squared_dist, knn[j - 1].squared_dist);
    }
  }
}

TEST(KNearest, KLargerThanIndexReturnsAll) {
  const Dataset data = RandomDataset(2, 10, 0.0, 10.0, 1605);
  const KdTree tree(data);
  const double q[] = {5.0, 5.0};
  EXPECT_EQ(tree.KNearest(q, 25).size(), 10u);
  EXPECT_TRUE(tree.KNearest(q, 0).empty());
}

TEST(KDistances, MatchesBruteForceAndSortedDescending) {
  const Dataset data = ClusteredDataset(2, 200, 3, 50.0, 3.0, 1607);
  const int k = 5;
  const std::vector<double> kdist = KDistances(data, k);
  ASSERT_EQ(kdist.size(), data.size());
  for (size_t i = 1; i < kdist.size(); ++i) {
    EXPECT_LE(kdist[i], kdist[i - 1]);
  }
  // Multiset equality with brute force.
  std::vector<double> brute;
  for (size_t i = 0; i < data.size(); ++i) {
    brute.push_back(BruteKDist(data, i, k));
  }
  std::sort(brute.begin(), brute.end(), std::greater<double>());
  for (size_t i = 0; i < brute.size(); ++i) {
    EXPECT_NEAR(kdist[i], brute[i], 1e-9);
  }
}

TEST(KDistances, KOneIsAllZeros) {
  // 1-distance: every point's nearest neighbor is itself.
  const Dataset data = RandomDataset(2, 50, 0.0, 10.0, 1609);
  for (double v : KDistances(data, 1)) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(SuggestEps, SeparatesClusterScaleFromNoiseScale) {
  // Dense blobs + sparse noise: the suggested eps (quantile 0.9) should be
  // on the blob scale — clustering with it must recover the blobs.
  Dataset data(2);
  Rng rng(1611);
  for (int c = 0; c < 3; ++c) {
    for (int i = 0; i < 150; ++i) {
      data.Add({c * 500.0 + rng.NextGaussian() * 3.0,
                rng.NextGaussian() * 3.0});
    }
  }
  for (int i = 0; i < 30; ++i) {
    data.Add({rng.NextDouble(0, 1000), rng.NextDouble(100, 1000)});
  }
  const int min_pts = 10;
  const double eps = SuggestEps(data, min_pts, 0.9);
  EXPECT_GT(eps, 0.5);
  EXPECT_LT(eps, 100.0);
  const Clustering c = ExactGridDbscan(data, {eps, min_pts});
  EXPECT_EQ(c.num_clusters, 3);
}

TEST(SuggestEps, QuantileMonotone) {
  const Dataset data = ClusteredDataset(3, 300, 4, 80.0, 4.0, 1613);
  const double lo = SuggestEps(data, 5, 0.5);
  const double hi = SuggestEps(data, 5, 0.99);
  EXPECT_LE(lo, hi);
}

TEST(KDistancesDeath, RejectsKBeyondN) {
  const Dataset data = RandomDataset(2, 5, 0.0, 1.0, 1615);
  EXPECT_DEATH(KDistances(data, 6), "");
}

}  // namespace
}  // namespace adbscan
