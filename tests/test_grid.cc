#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "geom/point.h"
#include "grid/grid.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::RandomDataset;

TEST(Grid, SideForMatchesPaper) {
  EXPECT_DOUBLE_EQ(Grid::SideFor(10.0, 2), 10.0 / std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(Grid::SideFor(6.0, 4), 3.0);
}

TEST(Grid, EveryPointAssignedToExactlyOneCell) {
  const Dataset data = RandomDataset(3, 500, 0.0, 100.0, 1);
  const Grid grid(data, Grid::SideFor(10.0, 3));
  size_t total = 0;
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    total += grid.cell(ci).points.size();
    for (uint32_t id : grid.cell(ci).points) {
      EXPECT_EQ(grid.CellOfPoint(id), ci);
    }
  }
  EXPECT_EQ(total, data.size());
}

TEST(Grid, PointsLieInTheirCellBox) {
  const Dataset data = RandomDataset(4, 300, -50.0, 50.0, 2);
  const Grid grid(data, Grid::SideFor(7.0, 4));
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const Box box = grid.CellBoxOf(ci);
    for (uint32_t id : grid.cell(ci).points) {
      EXPECT_LE(box.MinSquaredDistToPoint(data.point(id)), 1e-18);
    }
  }
}

TEST(Grid, SameCellPointsWithinEps) {
  const double eps = 12.0;
  const Dataset data = RandomDataset(5, 400, 0.0, 60.0, 3);
  const Grid grid(data, Grid::SideFor(eps, 5));
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const auto& pts = grid.cell(ci).points;
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        EXPECT_TRUE(WithinDistance(data.point(pts[i]), data.point(pts[j]), 5,
                                   eps * (1 + 1e-12)));
      }
    }
  }
}

// Reference ε-neighbor computation: all pairs of cells, box-to-box distance.
std::vector<std::set<uint32_t>> BruteNeighbors(const Grid& grid, double eps) {
  std::vector<std::set<uint32_t>> out(grid.NumCells());
  for (uint32_t a = 0; a < grid.NumCells(); ++a) {
    for (uint32_t b = a + 1; b < grid.NumCells(); ++b) {
      if (grid.CellBoxOf(a).MinSquaredDistToBox(grid.CellBoxOf(b)) <=
          eps * eps) {
        out[a].insert(b);
        out[b].insert(a);
      }
    }
  }
  return out;
}

TEST(Grid, EpsNeighborsMatchBruteForce2D) {
  const double eps = 9.0;
  const Dataset data = RandomDataset(2, 250, 0.0, 120.0, 4);
  const Grid grid(data, Grid::SideFor(eps, 2));
  const auto expected = BruteNeighbors(grid, eps);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    std::vector<uint32_t> got = grid.EpsNeighbors(ci, eps);
    std::set<uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected[ci]) << "cell " << ci;
    EXPECT_EQ(got_set.count(ci), 0u) << "self must be excluded";
  }
}

TEST(Grid, EpsNeighborsMatchBruteForce5D) {
  const double eps = 25.0;
  const Dataset data = RandomDataset(5, 150, 0.0, 80.0, 5);
  const Grid grid(data, Grid::SideFor(eps, 5));
  const auto expected = BruteNeighbors(grid, eps);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    std::vector<uint32_t> got = grid.EpsNeighbors(ci, eps);
    std::set<uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected[ci]) << "cell " << ci;
  }
}

TEST(Grid, NeighborBoundIn2D) {
  // Section 2.2 cites at most 21 ε-neighbors per 2D cell. That figure
  // excludes the 4 diagonal cells of the 5x5 block whose minimum box
  // distance is EXACTLY ε (side = ε/√2 makes the corner gap √2·side = ε).
  // DBSCAN uses closed balls, so two points placed precisely at those
  // touching corners are ε-reachable and the corner cells must count as
  // neighbors: the correct closed-ball bound is 24.
  const double eps = 10.0;
  const Dataset data = RandomDataset(2, 5000, 0.0, 100.0, 6);
  const Grid grid(data, Grid::SideFor(eps, 2));
  size_t max_neighbors = 0;
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    max_neighbors =
        std::max(max_neighbors, grid.EpsNeighbors(ci, eps).size());
  }
  EXPECT_LE(max_neighbors, 24u);
  EXPECT_GE(max_neighbors, 15u);  // interior cells should get close to it
}

TEST(Grid, CellsTouchingBallFindsExactlyIntersectingCells) {
  const double eps = 15.0;
  const Dataset data = RandomDataset(3, 400, 0.0, 100.0, 7);
  const Grid grid(data, Grid::SideFor(eps, 3));
  Rng rng(8);
  for (int trial = 0; trial < 50; ++trial) {
    double q[3];
    for (int i = 0; i < 3; ++i) q[i] = rng.NextDouble(0.0, 100.0);
    std::set<uint32_t> expected;
    for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
      if (grid.CellBoxOf(ci).MinSquaredDistToPoint(q) <= eps * eps) {
        expected.insert(ci);
      }
    }
    std::vector<uint32_t> got = grid.CellsTouchingBall(q, eps);
    EXPECT_EQ(std::set<uint32_t>(got.begin(), got.end()), expected);
  }
}

TEST(Grid, FindCellLocatesExistingCells) {
  const Dataset data = RandomDataset(2, 100, 0.0, 50.0, 9);
  const Grid grid(data, 5.0);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    EXPECT_EQ(grid.FindCell(grid.cell(ci).coord), ci);
  }
  CellCoord far;
  far.dim = 2;
  far.c = {1000000, 1000000};
  EXPECT_EQ(grid.FindCell(far), Grid::kNoCell);
}

TEST(Grid, WarmCacheMatchesLazyEnumeration) {
  const double eps = 11.0;
  const Dataset data = RandomDataset(3, 400, 0.0, 120.0, 10);
  const Grid lazy(data, Grid::SideFor(eps, 3));
  const Grid warmed(data, Grid::SideFor(eps, 3));
  warmed.WarmNeighborCache(eps, 4);
  for (uint32_t ci = 0; ci < lazy.NumCells(); ++ci) {
    EXPECT_EQ(lazy.EpsNeighbors(ci, eps), warmed.EpsNeighbors(ci, eps))
        << "cell " << ci;
  }
}

TEST(Grid, NeighborListsSortedByBoxDistance) {
  const double eps = 9.0;
  const Dataset data = RandomDataset(2, 500, 0.0, 90.0, 11);
  const Grid grid(data, Grid::SideFor(eps, 2));
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const Box my_box = grid.CellBoxOf(ci);
    double prev = -1.0;
    for (uint32_t cj : grid.EpsNeighbors(ci, eps)) {
      const double d2 = my_box.MinSquaredDistToBox(grid.CellBoxOf(cj));
      EXPECT_GE(d2, prev);
      prev = d2;
    }
  }
}

TEST(Grid, ChangingEpsResetsCacheCorrectly) {
  const Dataset data = RandomDataset(2, 300, 0.0, 60.0, 12);
  const Grid grid(data, Grid::SideFor(5.0, 2));
  // Query with one eps, then another: results must match fresh grids.
  const std::vector<uint32_t> small = grid.EpsNeighbors(0, 5.0);
  const std::vector<uint32_t> large = grid.EpsNeighbors(0, 20.0);
  EXPECT_GE(large.size(), small.size());
  const Grid fresh(data, Grid::SideFor(5.0, 2));
  EXPECT_EQ(fresh.EpsNeighbors(0, 20.0), large);
}

TEST(Grid, SinglePointDataset) {
  Dataset data(3);
  data.Add({1.0, 2.0, 3.0});
  const Grid grid(data, 1.0);
  EXPECT_EQ(grid.NumCells(), 1u);
  EXPECT_TRUE(grid.EpsNeighbors(0, 1.0).empty());
}

TEST(Grid, CoincidentPointsShareOneCell) {
  Dataset data(2);
  for (int i = 0; i < 10; ++i) data.Add({5.0, 5.0});
  const Grid grid(data, 3.0);
  EXPECT_EQ(grid.NumCells(), 1u);
  EXPECT_EQ(grid.cell(0).points.size(), 10u);
}

}  // namespace
}  // namespace adbscan
