#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <map>
#include <new>
#include <set>
#include <vector>

#include "geom/point.h"
#include "geom/soa.h"
#include "grid/grid.h"
#include "grid/morton.h"
#include "grid/stencil.h"
#include "test_helpers.h"

// Counting allocator hook for the steady-state no-allocation test: every
// global operator new (plain, array, aligned) bumps the counter while
// g_count_allocs is set. Defined at global scope in this TU only (each
// test file is its own binary).
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<size_t> g_alloc_calls{0};
void NoteAlloc() {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_calls.fetch_add(1, std::memory_order_relaxed);
  }
}
}  // namespace

void* operator new(std::size_t n) {
  NoteAlloc();
  void* p = std::malloc(n != 0 ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  NoteAlloc();
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(a), n != 0 ? n : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return ::operator new(n, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace adbscan {
namespace {

using testing_helpers::RandomDataset;

std::vector<uint32_t> ToVec(Grid::IdSpan s) {
  return std::vector<uint32_t>(s.begin(), s.end());
}

// Random points whose coordinates are multiples of `step`, so many land
// EXACTLY on cell boundaries when step divides the side length.
Dataset SnappedDataset(int dim, size_t n, double lo, double hi, double step,
                       uint64_t seed) {
  Rng rng(seed);
  Dataset data(dim);
  data.Reserve(n);
  std::vector<double> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (int j = 0; j < dim; ++j) {
      p[j] = std::round(rng.NextDouble(lo, hi) / step) * step;
    }
    data.Add(p);
  }
  return data;
}

TEST(Grid, SideForMatchesPaper) {
  EXPECT_DOUBLE_EQ(Grid::SideFor(10.0, 2), 10.0 / std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(Grid::SideFor(6.0, 4), 3.0);
}

TEST(Grid, EveryPointAssignedToExactlyOneCell) {
  const Dataset data = RandomDataset(3, 500, 0.0, 100.0, 1);
  const Grid grid(data, Grid::SideFor(10.0, 3));
  size_t total = 0;
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    total += grid.CellSize(ci);
    for (uint32_t id : grid.cell_points(ci)) {
      EXPECT_EQ(grid.CellOfPoint(id), ci);
    }
  }
  EXPECT_EQ(total, data.size());
}

TEST(Grid, PointsLieInTheirCellBox) {
  const Dataset data = RandomDataset(4, 300, -50.0, 50.0, 2);
  const Grid grid(data, Grid::SideFor(7.0, 4));
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const Box box = grid.CellBoxOf(ci);
    for (uint32_t id : grid.cell_points(ci)) {
      EXPECT_LE(box.MinSquaredDistToPoint(data.point(id)), 1e-18);
    }
  }
}

TEST(Grid, SameCellPointsWithinEps) {
  const double eps = 12.0;
  const Dataset data = RandomDataset(5, 400, 0.0, 60.0, 3);
  const Grid grid(data, Grid::SideFor(eps, 5));
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const Grid::IdSpan pts = grid.cell_points(ci);
    for (size_t i = 0; i < pts.size(); ++i) {
      for (size_t j = i + 1; j < pts.size(); ++j) {
        EXPECT_TRUE(WithinDistance(data.point(pts[i]), data.point(pts[j]), 5,
                                   eps * (1 + 1e-12)));
      }
    }
  }
}

// Reference ε-neighbor computation: all pairs of cells, the canonical
// corner-distance predicate (CellPairDist2) every enumeration engine
// evaluates bit-for-bit.
std::vector<std::set<uint32_t>> BruteNeighbors(const Grid& grid, double eps) {
  std::vector<std::set<uint32_t>> out(grid.NumCells());
  for (uint32_t a = 0; a < grid.NumCells(); ++a) {
    for (uint32_t b = a + 1; b < grid.NumCells(); ++b) {
      if (CellPairDist2(grid.CellCoordOf(a), grid.CellCoordOf(b),
                        grid.side()) <= eps * eps) {
        out[a].insert(b);
        out[b].insert(a);
      }
    }
  }
  return out;
}

TEST(Grid, EpsNeighborsMatchBruteForce2D) {
  const double eps = 9.0;
  const Dataset data = RandomDataset(2, 250, 0.0, 120.0, 4);
  const Grid grid(data, Grid::SideFor(eps, 2));
  const auto expected = BruteNeighbors(grid, eps);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const std::vector<uint32_t> got = ToVec(grid.EpsNeighbors(ci, eps));
    std::set<uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected[ci]) << "cell " << ci;
    EXPECT_EQ(got_set.count(ci), 0u) << "self must be excluded";
  }
}

TEST(Grid, EpsNeighborsMatchBruteForce5D) {
  const double eps = 25.0;
  const Dataset data = RandomDataset(5, 150, 0.0, 80.0, 5);
  const Grid grid(data, Grid::SideFor(eps, 5));
  const auto expected = BruteNeighbors(grid, eps);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const std::vector<uint32_t> got = ToVec(grid.EpsNeighbors(ci, eps));
    std::set<uint32_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected[ci]) << "cell " << ci;
  }
}

TEST(Grid, NeighborBoundIn2D) {
  // Section 2.2 cites at most 21 ε-neighbors per 2D cell. That figure
  // excludes the 4 diagonal cells of the 5x5 block whose minimum box
  // distance is EXACTLY ε (side = ε/√2 makes the corner gap √2·side = ε).
  // DBSCAN uses closed balls, so two points placed precisely at those
  // touching corners are ε-reachable and the corner cells must count as
  // neighbors: the correct closed-ball bound is 24.
  const double eps = 10.0;
  const Dataset data = RandomDataset(2, 5000, 0.0, 100.0, 6);
  const Grid grid(data, Grid::SideFor(eps, 2));
  size_t max_neighbors = 0;
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    max_neighbors =
        std::max(max_neighbors, grid.EpsNeighbors(ci, eps).size());
  }
  EXPECT_LE(max_neighbors, 24u);
  EXPECT_GE(max_neighbors, 15u);  // interior cells should get close to it
}

// Brute-force sweep for CellsTouchingBall and FindCell over random datasets
// in d ∈ {2,3,5,7}, with every coordinate snapped so many points (and query
// centers) sit exactly on cell boundaries.
class GridBruteForceSweep : public ::testing::TestWithParam<int> {};

TEST_P(GridBruteForceSweep, CellsTouchingBallMatchesBruteForce) {
  const int dim = GetParam();
  const double side = 4.0;
  const double eps = 4.0 * std::sqrt(static_cast<double>(dim));
  const Dataset data =
      SnappedDataset(dim, 300, -40.0, 40.0, side / 2, 100 + dim);
  const Grid grid(data, side);
  Rng rng(200 + dim);
  std::vector<double> q(dim);
  for (int trial = 0; trial < 50; ++trial) {
    for (int i = 0; i < dim; ++i) {
      // Half the queries on exact cell boundaries.
      const double v = rng.NextDouble(-40.0, 40.0);
      q[i] = trial % 2 == 0 ? std::round(v / side) * side : v;
    }
    std::set<uint32_t> expected;
    for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
      if (grid.CellBoxOf(ci).MinSquaredDistToPoint(q.data()) <= eps * eps) {
        expected.insert(ci);
      }
    }
    const std::vector<uint32_t> got = grid.CellsTouchingBall(q.data(), eps);
    EXPECT_EQ(std::set<uint32_t>(got.begin(), got.end()), expected)
        << "dim " << dim << " trial " << trial;
  }
}

TEST_P(GridBruteForceSweep, FindCellMatchesBruteForceEnumeration) {
  const int dim = GetParam();
  const double side = 3.0;
  const Dataset data =
      SnappedDataset(dim, 400, -30.0, 30.0, side / 2, 300 + dim);
  const Grid grid(data, side);

  // Reference map from coordinates to sorted member ids, built straight
  // from CellCoord::Of — independent of the grid's hash and cell order.
  const auto coord_less = [](const CellCoord& a, const CellCoord& b) {
    return std::lexicographical_compare(a.c.begin(), a.c.begin() + a.dim,
                                        b.c.begin(), b.c.begin() + b.dim);
  };
  std::map<CellCoord, std::vector<uint32_t>, decltype(coord_less)> expected(
      coord_less);
  for (uint32_t i = 0; i < data.size(); ++i) {
    expected[CellCoord::Of(data.point(i), dim, side)].push_back(i);
  }

  ASSERT_EQ(grid.NumCells(), expected.size());
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const auto it = expected.find(grid.CellCoordOf(ci));
    ASSERT_NE(it, expected.end());
    EXPECT_EQ(ToVec(grid.cell_points(ci)), it->second);
    EXPECT_EQ(grid.FindCell(grid.CellCoordOf(ci)), ci);
  }
  // Probe absent coordinates next to every existing cell: each axis +1.
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    for (int axis = 0; axis < dim; ++axis) {
      CellCoord cc = grid.CellCoordOf(ci);
      cc.c[axis] += 1;
      const uint32_t found = grid.FindCell(cc);
      if (expected.count(cc) == 0) {
        EXPECT_EQ(found, Grid::kNoCell);
      } else {
        EXPECT_EQ(grid.CellCoordOf(found), cc);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, GridBruteForceSweep,
                         ::testing::Values(2, 3, 5, 7));

TEST(Grid, FindCellLocatesExistingCells) {
  const Dataset data = RandomDataset(2, 100, 0.0, 50.0, 9);
  const Grid grid(data, 5.0);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    EXPECT_EQ(grid.FindCell(grid.CellCoordOf(ci)), ci);
  }
  CellCoord far;
  far.dim = 2;
  far.c = {1000000, 1000000};
  EXPECT_EQ(grid.FindCell(far), Grid::kNoCell);
}

TEST(Grid, CsrCellsAreMortonSorted) {
  const Dataset data = RandomDataset(3, 600, -80.0, 80.0, 13);
  const Grid grid(data, 6.0);
  for (uint32_t ci = 1; ci < grid.NumCells(); ++ci) {
    EXPECT_TRUE(MortonLess(grid.CellCoordOf(ci - 1).c.data(),
                           grid.CellCoordOf(ci).c.data(), 3))
        << "cells " << ci - 1 << ", " << ci;
  }
}

TEST(Grid, CellPointsAscendWithinEachCell) {
  const Dataset data = RandomDataset(3, 500, 0.0, 50.0, 14);
  const Grid grid(data, 4.0);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const std::vector<uint32_t> pts = ToVec(grid.cell_points(ci));
    EXPECT_TRUE(std::is_sorted(pts.begin(), pts.end()));
  }
}

// CellBlock lane contract: count matches the cell, lanes hold the cell's
// points in cell_points order, and the CSR span starts lane-aligned inside
// the shared permuted SoA.
TEST(Grid, CellBlockMatchesCellPoints) {
  const Dataset data = RandomDataset(5, 400, 0.0, 70.0, 16);
  const Grid grid(data, 6.0);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const Grid::IdSpan pts = grid.cell_points(ci);
    const simd::SoaSpan span = grid.CellBlock(ci);
    ASSERT_EQ(span.count, pts.size());
    EXPECT_EQ(span.dim, 5);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(span.base) %
                  (simd::kLaneWidth * sizeof(double)),
              0u);
    for (size_t j = 0; j < span.count; ++j) {
      for (int i = 0; i < span.dim; ++i) {
        EXPECT_EQ(span.base[i * span.stride + j], data.point(pts[j])[i]);
      }
    }
    // Padding lanes replicate the last point (finite, same cell).
    for (size_t j = span.count; j < simd::PaddedCount(span.count); ++j) {
      for (int i = 0; i < span.dim; ++i) {
        EXPECT_EQ(span.base[i * span.stride + j],
                  data.point(pts[pts.size() - 1])[i]);
      }
    }
  }
}

TEST(Grid, WarmCacheMatchesLazyEnumeration) {
  const double eps = 11.0;
  const Dataset data = RandomDataset(3, 400, 0.0, 120.0, 10);
  const Grid lazy(data, Grid::SideFor(eps, 3));
  const Grid warmed(data, Grid::SideFor(eps, 3));
  warmed.WarmNeighborCache(eps, 4);
  for (uint32_t ci = 0; ci < lazy.NumCells(); ++ci) {
    EXPECT_EQ(ToVec(lazy.EpsNeighbors(ci, eps)),
              ToVec(warmed.EpsNeighbors(ci, eps)))
        << "cell " << ci;
  }
}

TEST(Grid, NeighborListsSortedByCornerDistance) {
  const double eps = 9.0;
  const Dataset data = RandomDataset(2, 500, 0.0, 90.0, 11);
  const Grid grid(data, Grid::SideFor(eps, 2));
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    double prev_d2 = -1.0;
    uint32_t prev_cj = 0;
    for (uint32_t cj : grid.EpsNeighbors(ci, eps)) {
      const double d2 =
          CellPairDist2(grid.CellCoordOf(ci), grid.CellCoordOf(cj),
                        grid.side());
      EXPECT_GE(d2, prev_d2);
      if (d2 == prev_d2) EXPECT_GT(cj, prev_cj) << "ties ascend by index";
      prev_d2 = d2;
      prev_cj = cj;
    }
  }
}

TEST(Grid, ChangingEpsResetsCacheCorrectly) {
  const Dataset data = RandomDataset(2, 300, 0.0, 60.0, 12);
  const Grid grid(data, Grid::SideFor(5.0, 2));
  // Query with one eps, then another (legal while the cache is lazy; a
  // WARMED cache must never be reset — see the single-eps contract).
  const std::vector<uint32_t> small = ToVec(grid.EpsNeighbors(0, 5.0));
  const std::vector<uint32_t> large = ToVec(grid.EpsNeighbors(0, 20.0));
  EXPECT_GE(large.size(), small.size());
  const Grid fresh(data, Grid::SideFor(5.0, 2));
  EXPECT_EQ(ToVec(fresh.EpsNeighbors(0, 20.0)), large);
}

TEST(Grid, SinglePointDataset) {
  Dataset data(3);
  data.Add({1.0, 2.0, 3.0});
  const Grid grid(data, 1.0);
  EXPECT_EQ(grid.NumCells(), 1u);
  EXPECT_TRUE(grid.EpsNeighbors(0, 1.0).empty());
}

TEST(Grid, CoincidentPointsShareOneCell) {
  Dataset data(2);
  for (int i = 0; i < 10; ++i) data.Add({5.0, 5.0});
  const Grid grid(data, 3.0);
  EXPECT_EQ(grid.NumCells(), 1u);
  EXPECT_EQ(grid.CellSize(0), 10u);
}

TEST(Grid, CsrBytesNonZero) {
  const Dataset data = RandomDataset(2, 200, 0.0, 40.0, 17);
  const Grid grid(data, 4.0);
  EXPECT_GT(grid.CsrBytes(), 0u);
}

// Differential sweep of the two ε-neighbor engines (stencil hash-walk vs
// axis-0 window scan) against the brute O(cells²) reference, in
// d ∈ {2,3,5,7}, with boundary-straddling points (coordinates snapped to
// half a cell side) and eps placed at and just past the corner-distance
// thresholds where whole diagonal rings of the stencil shell flip between
// included and pruned. Both engines must produce bit-identical sequences
// (ascending corner distance, ties by ascending index), equal as sets to
// the reference.
class NeighborEngineDifferential : public ::testing::TestWithParam<int> {};

TEST_P(NeighborEngineDifferential, EnginesMatchEachOtherAndBruteForce) {
  const int dim = GetParam();
  const double side = 4.0;
  const Dataset data =
      SnappedDataset(dim, 350, -40.0, 40.0, side / 2, 500 + dim);
  // CellPairDist2 thresholds: a delta-2 gap on one axis contributes side²,
  // on all axes dim·side². eps exactly AT a threshold keeps the ring
  // (closed predicate); a hair below drops it.
  const double corner = side * std::sqrt(static_cast<double>(dim));
  const std::vector<double> eps_values = {
      side,
      side * (1.0 - 1e-12),
      corner,
      corner * (1.0 + 1e-12),
      2.5 * side,
  };
  for (double eps : eps_values) {
    std::vector<std::vector<uint32_t>> lists[2];
    for (int e = 0; e < 2; ++e) {
      // Force BEFORE the first query for this eps: the engine choice is
      // fixed per (grid, eps) when its stencil slot is resolved.
      Grid::ForceNeighborPathForTest(e == 0 ? Grid::NeighborPath::kStencil
                                            : Grid::NeighborPath::kScan);
      const Grid grid(data, side);
      lists[e].resize(grid.NumCells());
      for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
        lists[e][ci] = ToVec(grid.EpsNeighbors(ci, eps));
      }
    }
    Grid::ForceNeighborPathForTest(Grid::NeighborPath::kAuto);
    // Cell numbering is a pure function of (data, side) — Morton order —
    // so indices are comparable across the two grids.
    ASSERT_EQ(lists[0].size(), lists[1].size());
    const Grid grid(data, side);
    const auto expected = BruteNeighbors(grid, eps);
    ASSERT_EQ(lists[0].size(), expected.size());
    for (uint32_t ci = 0; ci < expected.size(); ++ci) {
      EXPECT_EQ(lists[0][ci], lists[1][ci])
          << "engines disagree, dim " << dim << " eps " << eps << " cell "
          << ci;
      EXPECT_EQ(std::set<uint32_t>(lists[0][ci].begin(), lists[0][ci].end()),
                expected[ci])
          << "dim " << dim << " eps " << eps << " cell " << ci;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, NeighborEngineDifferential,
                         ::testing::Values(2, 3, 5, 7));

// Steady state allocates nothing: once the neighbor cache is warm, the
// lazy SoA is gathered, and the worker-scratch buffers have seen one warm
// pass, repeated EpsNeighbors / CellBlock / CellsTouchingBall queries must
// never touch the heap (counted by the global operator new hook above).
TEST(Grid, SteadyStateQueriesAllocationFree) {
  const double eps = 10.0;
  const Dataset data = RandomDataset(3, 2000, 0.0, 100.0, 21);
  const Grid grid(data, Grid::SideFor(eps, 3));
  grid.WarmNeighborCache(eps, 1);
  std::vector<uint32_t> touching;
  double checksum = 0.0;
  auto pass = [&] {
    for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
      const Grid::IdSpan nbrs = grid.EpsNeighbors(ci, eps);
      checksum += static_cast<double>(nbrs.size());
      checksum += grid.CellBlock(ci).count;
    }
    for (uint32_t id = 0; id < 64; ++id) {
      grid.CellsTouchingBall(data.point(id * 31), eps, &touching);
      checksum += static_cast<double>(touching.size());
    }
  };
  pass();  // warm pass: gathers the SoA, sizes every scratch buffer
  g_alloc_calls.store(0);
  g_count_allocs.store(true);
  for (int trial = 0; trial < 3; ++trial) pass();
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_calls.load(), 0u) << "(checksum " << checksum << ")";
}

}  // namespace
}  // namespace adbscan
