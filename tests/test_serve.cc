// Serving-runtime tests (src/serve/): wire-protocol round-trips and fuzz
// robustness, multi-tenant session isolation (interleaved tenants must be
// bit-identical to solo DynamicClusterer replays), snapshot-vs-writer
// races (the file is valuable under the tsan preset), ingest backpressure,
// and the full TCP server/client loop on a loopback socket.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.h"
#include "serve/server.h"
#include "serve/session_manager.h"
#include "serve/wire.h"
#include "stream/dynamic_clusterer.h"
#include "util/rng.h"

namespace adbscan {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// Wire protocol

// Feeds `bytes` to an assembler in chunks of `chunk` and expects exactly
// one clean frame.
Frame AssembleOne(const std::vector<uint8_t>& bytes, size_t chunk) {
  FrameAssembler assembler;
  Frame frame;
  std::string error;
  size_t fed = 0;
  while (fed < bytes.size()) {
    const size_t take = std::min(chunk, bytes.size() - fed);
    assembler.Feed(bytes.data() + fed, take);
    fed += take;
    const FrameStatus status = assembler.Next(&frame, &error);
    if (fed < bytes.size()) {
      EXPECT_EQ(status, FrameStatus::kNeedMore) << error;
    } else {
      EXPECT_EQ(status, FrameStatus::kFrame) << error;
    }
  }
  EXPECT_EQ(assembler.buffered_bytes(), 0u);
  return frame;
}

TEST(Wire, RoundTripAllMessageTypes) {
  // One frame of every type on a single stream, assembled byte-by-byte:
  // the hardest framing case must still produce exact decodes.
  CreateReq create{3, 0.25, 7, 0.01};
  IngestReq ingest;
  ingest.session = 0x1122334455667788ull;
  ingest.dim = 2;
  ingest.coords = {1.5, -2.5, 3.25, 4.0};
  ingest.removes = {0, 3, 17};
  QueryReq query;
  query.session = 9;
  query.ids = {5, 0, 1000000};
  QueryResp query_resp;
  query_resp.epoch = 12;
  query_resp.num_points = 100;
  query_resp.num_alive = 90;
  query_resp.num_clusters = 4;
  query_resp.labels = {0, -1, 3};
  query_resp.is_core = {1, 0, 0};
  SnapshotResp snap_resp;
  snap_resp.epoch = 2;
  snap_resp.num_clusters = 1;
  snap_resp.ids = {0, 2};
  snap_resp.labels = {0, 0};
  snap_resp.is_core = {1, 1};
  ErrorResp err;
  err.code = ErrorCode::kBackpressure;
  err.message = "queue full";

  std::vector<uint8_t> stream;
  EncodeCreateReq(create, &stream);
  EncodeCreateResp(CreateResp{42}, &stream);
  EncodeIngestReq(ingest, &stream);
  EncodeIngestResp(IngestResp{7, 512}, &stream);
  EncodeFlushReq(FlushReq{42}, &stream);
  EncodeFlushResp(FlushResp{3, 1000}, &stream);
  EncodeQueryReq(query, &stream);
  EncodeQueryResp(query_resp, &stream);
  EncodeSnapshotReq(SnapshotReq{42}, &stream);
  EncodeSnapshotResp(snap_resp, &stream);
  EncodeDropReq(DropReq{42}, &stream);
  EncodeDropResp(&stream);
  EncodeErrorResp(err, &stream);

  FrameAssembler assembler;
  // Byte-at-a-time feed; collect all 13 frames.
  std::vector<Frame> frames;
  for (uint8_t b : stream) {
    assembler.Feed(&b, 1);
    Frame frame;
    std::string error;
    while (assembler.Next(&frame, &error) == FrameStatus::kFrame) {
      frames.push_back(frame);
    }
  }
  ASSERT_EQ(frames.size(), 13u);

  std::string error;
  CreateReq create2;
  ASSERT_TRUE(DecodeCreateReq(frames[0], &create2, &error)) << error;
  EXPECT_EQ(create2.dim, create.dim);
  EXPECT_EQ(create2.eps, create.eps);
  EXPECT_EQ(create2.min_pts, create.min_pts);
  EXPECT_EQ(create2.rho, create.rho);

  CreateResp created;
  ASSERT_TRUE(DecodeCreateResp(frames[1], &created, &error)) << error;
  EXPECT_EQ(created.session, 42u);

  IngestReq ingest2;
  ASSERT_TRUE(DecodeIngestReq(frames[2], &ingest2, &error)) << error;
  EXPECT_EQ(ingest2.session, ingest.session);
  EXPECT_EQ(ingest2.dim, ingest.dim);
  EXPECT_EQ(ingest2.coords, ingest.coords);
  EXPECT_EQ(ingest2.removes, ingest.removes);

  IngestResp acked;
  ASSERT_TRUE(DecodeIngestResp(frames[3], &acked, &error)) << error;
  EXPECT_EQ(acked.first_id, 7u);
  EXPECT_EQ(acked.pending_ops, 512u);

  FlushReq flush2;
  ASSERT_TRUE(DecodeFlushReq(frames[4], &flush2, &error)) << error;
  EXPECT_EQ(flush2.session, 42u);

  FlushResp flushed;
  ASSERT_TRUE(DecodeFlushResp(frames[5], &flushed, &error)) << error;
  EXPECT_EQ(flushed.epoch, 3u);
  EXPECT_EQ(flushed.applied_updates, 1000u);

  QueryReq query2;
  ASSERT_TRUE(DecodeQueryReq(frames[6], &query2, &error)) << error;
  EXPECT_EQ(query2.session, query.session);
  EXPECT_EQ(query2.ids, query.ids);

  QueryResp qresp2;
  ASSERT_TRUE(DecodeQueryResp(frames[7], &qresp2, &error)) << error;
  EXPECT_EQ(qresp2.epoch, query_resp.epoch);
  EXPECT_EQ(qresp2.num_points, query_resp.num_points);
  EXPECT_EQ(qresp2.num_alive, query_resp.num_alive);
  EXPECT_EQ(qresp2.num_clusters, query_resp.num_clusters);
  EXPECT_EQ(qresp2.labels, query_resp.labels);
  EXPECT_EQ(qresp2.is_core, query_resp.is_core);

  SnapshotReq sreq2;
  ASSERT_TRUE(DecodeSnapshotReq(frames[8], &sreq2, &error)) << error;
  EXPECT_EQ(sreq2.session, 42u);

  SnapshotResp sresp2;
  ASSERT_TRUE(DecodeSnapshotResp(frames[9], &sresp2, &error)) << error;
  EXPECT_EQ(sresp2.epoch, snap_resp.epoch);
  EXPECT_EQ(sresp2.ids, snap_resp.ids);
  EXPECT_EQ(sresp2.labels, snap_resp.labels);
  EXPECT_EQ(sresp2.is_core, snap_resp.is_core);

  DropReq drop2;
  ASSERT_TRUE(DecodeDropReq(frames[10], &drop2, &error)) << error;
  EXPECT_EQ(drop2.session, 42u);
  ASSERT_TRUE(DecodeDropResp(frames[11], &error)) << error;

  ErrorResp err2;
  ASSERT_TRUE(DecodeErrorResp(frames[12], &err2, &error)) << error;
  EXPECT_EQ(err2.code, err.code);
  EXPECT_EQ(err2.message, err.message);
}

TEST(Wire, AssemblerChunkSizesAgree) {
  IngestReq ingest;
  ingest.session = 5;
  ingest.dim = 3;
  for (int i = 0; i < 99; ++i) ingest.coords.push_back(i * 0.5);
  std::vector<uint8_t> bytes;
  EncodeIngestReq(ingest, &bytes);
  for (size_t chunk : {size_t{1}, size_t{2}, size_t{7}, bytes.size()}) {
    const Frame frame = AssembleOne(bytes, chunk);
    IngestReq out;
    std::string error;
    ASSERT_TRUE(DecodeIngestReq(frame, &out, &error)) << error;
    EXPECT_EQ(out.coords, ingest.coords);
  }
}

TEST(Wire, TruncatedPayloadsFailCleanly) {
  // Every strict prefix of a valid frame, when terminated by a fresh valid
  // frame header claiming the remaining length, must decode-fail without
  // crashing; a bare prefix must report kNeedMore.
  QueryResp resp;
  resp.epoch = 1;
  resp.num_points = 3;
  resp.num_alive = 3;
  resp.num_clusters = 1;
  resp.labels = {0, 0, -1};
  resp.is_core = {1, 1, 0};
  std::vector<uint8_t> bytes;
  EncodeQueryResp(resp, &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    FrameAssembler assembler;
    assembler.Feed(bytes.data(), cut);
    Frame frame;
    std::string error;
    EXPECT_EQ(assembler.Next(&frame, &error), FrameStatus::kNeedMore);
  }
  // Truncate the PAYLOAD but fix up the length prefix: the frame assembles
  // but the decoder must reject it (truncated array / trailing garbage).
  for (size_t cut = 5; cut + 1 < bytes.size(); ++cut) {
    std::vector<uint8_t> clipped(bytes.begin(), bytes.begin() + cut);
    const uint32_t new_len = static_cast<uint32_t>(clipped.size() - 4);
    std::memcpy(clipped.data(), &new_len, 4);
    FrameAssembler assembler;
    assembler.Feed(clipped.data(), clipped.size());
    Frame frame;
    std::string error;
    ASSERT_EQ(assembler.Next(&frame, &error), FrameStatus::kFrame);
    QueryResp out;
    EXPECT_FALSE(DecodeQueryResp(frame, &out, &error));
    EXPECT_FALSE(error.empty());
  }
}

TEST(Wire, GarbagePoisonsTheStream) {
  // Unknown type byte.
  {
    FrameAssembler assembler;
    const uint8_t bad_type[] = {2, 0, 0, 0, 0xee, 0x00};
    assembler.Feed(bad_type, sizeof(bad_type));
    Frame frame;
    std::string error;
    EXPECT_EQ(assembler.Next(&frame, &error), FrameStatus::kError);
    EXPECT_FALSE(error.empty());
    // Poisoned: even a now-valid frame is rejected with the same error.
    std::vector<uint8_t> good;
    EncodeFlushReq(FlushReq{1}, &good);
    assembler.Feed(good.data(), good.size());
    EXPECT_EQ(assembler.Next(&frame, &error), FrameStatus::kError);
  }
  // Zero length (cannot even hold the type byte).
  {
    FrameAssembler assembler;
    const uint8_t zero_len[] = {0, 0, 0, 0};
    assembler.Feed(zero_len, sizeof(zero_len));
    Frame frame;
    std::string error;
    EXPECT_EQ(assembler.Next(&frame, &error), FrameStatus::kError);
  }
  // Oversized length: rejected before any allocation happens.
  {
    FrameAssembler assembler;
    const uint32_t huge = kMaxFrameBytes + 1;
    uint8_t header[5] = {0, 0, 0, 0, 1};
    std::memcpy(header, &huge, 4);
    assembler.Feed(header, sizeof(header));
    Frame frame;
    std::string error;
    EXPECT_EQ(assembler.Next(&frame, &error), FrameStatus::kError);
  }
}

TEST(Wire, FuzzRandomCorruption) {
  // Random single-byte corruptions of valid frames: every outcome is
  // acceptable except a crash — clean frame + decode success (the byte was
  // benign or in a value field), clean decode failure, or a poisoned
  // stream. Under asan/ubsan this hunts parser overruns.
  IngestReq ingest;
  ingest.session = 77;
  ingest.dim = 2;
  for (int i = 0; i < 40; ++i) ingest.coords.push_back(i * 1.25);
  ingest.removes = {1, 2, 3};
  std::vector<uint8_t> bytes;
  EncodeIngestReq(ingest, &bytes);

  Rng rng(0xf022);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<uint8_t> corrupt = bytes;
    const size_t pos = rng.NextBounded(corrupt.size());
    corrupt[pos] ^= static_cast<uint8_t>(1 + rng.NextBounded(255));
    FrameAssembler assembler;
    assembler.Feed(corrupt.data(), corrupt.size());
    Frame frame;
    std::string error;
    const FrameStatus status = assembler.Next(&frame, &error);
    if (status == FrameStatus::kFrame) {
      IngestReq out;
      (void)DecodeIngestReq(frame, &out, &error);  // must not crash
    }
  }
  // Pure random byte soup.
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> soup(rng.NextBounded(200));
    for (auto& b : soup) b = static_cast<uint8_t>(rng.NextBounded(256));
    FrameAssembler assembler;
    assembler.Feed(soup.data(), soup.size());
    Frame frame;
    std::string error;
    for (int i = 0; i < 8; ++i) {
      if (assembler.Next(&frame, &error) != FrameStatus::kFrame) break;
      IngestReq out;
      (void)DecodeIngestReq(frame, &out, &error);
    }
  }
}

// ---------------------------------------------------------------------------
// SessionManager

// Deterministic clustered batch around a few fixed centers.
std::vector<double> MakeBatch(Rng& rng, int dim, size_t n) {
  std::vector<double> coords;
  coords.reserve(n * dim);
  for (size_t i = 0; i < n; ++i) {
    const double cx = 10.0 * double(rng.NextBounded(4));
    for (int d = 0; d < dim; ++d) {
      coords.push_back(cx + rng.NextGaussian() * 1.5);
    }
  }
  return coords;
}

DbscanParams TestParams() {
  DbscanParams p;
  p.eps = 2.0;
  p.min_pts = 4;
  p.num_threads = 2;
  return p;
}

TEST(SessionManager, InterleavedTenantsMatchSoloReplayBitIdentically) {
  // 4 tenants with distinct streams, ingested round-robin in interleaved
  // batches through one manager; every tenant's final labels must equal a
  // solo DynamicClusterer replay of its own stream, bit for bit.
  const int kTenants = 4;
  const int kRounds = 6;
  const size_t kBatch = 60;
  ServeOptions opts;
  opts.num_threads = 2;
  opts.start_drainer = false;  // drains driven explicitly, deterministic
  SessionManager mgr(opts);

  DbscanParams params = TestParams();
  std::vector<uint64_t> ids;
  std::vector<std::unique_ptr<DynamicClusterer>> solo;
  std::vector<Rng> rngs;
  for (int t = 0; t < kTenants; ++t) {
    ErrorCode code;
    std::string error;
    const uint64_t id = mgr.CreateSession(2, params, 0.001, &code, &error);
    ASSERT_NE(id, 0u) << error;
    ids.push_back(id);
    DynamicClustererOptions dyn;
    dyn.rho = 0.001;
    solo.push_back(std::make_unique<DynamicClusterer>(2, params, dyn));
    rngs.emplace_back(1000 + t);
  }

  std::vector<std::vector<uint32_t>> alive(kTenants);
  for (int round = 0; round < kRounds; ++round) {
    for (int t = 0; t < kTenants; ++t) {
      const std::vector<double> coords = MakeBatch(rngs[t], 2, kBatch);
      std::vector<uint32_t> removes;
      if (!alive[t].empty()) {
        for (size_t i = 0; i < kBatch / 4; ++i) {
          const size_t pick = rngs[t].NextBounded(alive[t].size());
          removes.push_back(alive[t][pick]);
          alive[t][pick] = alive[t].back();
          alive[t].pop_back();
        }
      }
      uint32_t first_id = 0;
      uint64_t pending = 0;
      ErrorCode code;
      std::string error;
      ASSERT_TRUE(mgr.Ingest(ids[t], coords, 2, removes, &first_id,
                             &pending, &code, &error))
          << error;
      // Predicted dense id assignment.
      EXPECT_EQ(first_id, solo[t]->num_points());
      solo[t]->Insert(Dataset(2, coords));
      if (!removes.empty()) solo[t]->Remove(removes);
      for (size_t i = 0; i < kBatch; ++i) {
        alive[t].push_back(first_id + static_cast<uint32_t>(i));
      }
    }
    // Drain mid-stream every other round so sessions are at different
    // epochs; correctness must not depend on drain timing.
    if (round % 2 == 0) mgr.DrainDirtySessions();
  }

  for (int t = 0; t < kTenants; ++t) {
    ErrorCode code;
    std::string error;
    uint64_t epoch = 0, applied = 0;
    ASSERT_TRUE(mgr.Flush(ids[t], &epoch, &applied, &code, &error)) << error;
    EXPECT_GT(epoch, 0u);
    const Clustering& want = solo[t]->Labels();
    std::shared_ptr<const ServeSnapshot> snap = mgr.Read(ids[t]);
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->applied_updates, applied);
    EXPECT_EQ(snap->num_points, solo[t]->num_points());
    EXPECT_EQ(snap->num_alive, solo[t]->num_alive());
    EXPECT_EQ(snap->labels.num_clusters, want.num_clusters);
    EXPECT_EQ(snap->labels.label, want.label);
    EXPECT_EQ(snap->labels.is_core, want.is_core);
    EXPECT_EQ(snap->labels.extra_memberships, want.extra_memberships);
  }
}

TEST(SessionManager, SnapshotsAreImmutableUnderLaterWrites) {
  ServeOptions opts;
  opts.start_drainer = false;
  SessionManager mgr(opts);
  ErrorCode code;
  std::string error;
  const uint64_t id = mgr.CreateSession(2, TestParams(), 0.001, &code, &error);
  ASSERT_NE(id, 0u);

  Rng rng(7);
  ASSERT_TRUE(mgr.Ingest(id, MakeBatch(rng, 2, 100), 2, {}, nullptr,
                         nullptr, &code, &error));
  uint64_t epoch = 0, applied = 0;
  ASSERT_TRUE(mgr.Flush(id, &epoch, &applied, &code, &error));
  std::shared_ptr<const ServeSnapshot> before = mgr.Read(id);
  ASSERT_NE(before, nullptr);
  const Clustering copy = before->labels;  // deep copy to compare against

  // Heavy later writes must not disturb the old snapshot object.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(mgr.Ingest(id, MakeBatch(rng, 2, 200), 2, {}, nullptr,
                           nullptr, &code, &error));
    ASSERT_TRUE(mgr.Flush(id, &epoch, &applied, &code, &error));
  }
  std::shared_ptr<const ServeSnapshot> after = mgr.Read(id);
  ASSERT_NE(after, nullptr);
  EXPECT_GT(after->epoch, before->epoch);
  EXPECT_EQ(before->labels.label, copy.label);
  EXPECT_EQ(before->labels.is_core, copy.is_core);
  EXPECT_EQ(before->num_points, copy.label.size());
}

TEST(SessionManager, SnapshotReadsRaceWriterCleanly) {
  // One writer ingesting + flushing, two readers spinning on Read() and
  // scanning whatever snapshot they get. Under tsan this is the
  // epoch-publication correctness proof; under plain builds it still
  // checks internal consistency of every observed snapshot.
  ServeOptions opts;
  opts.num_threads = 2;
  opts.drain_batch_ops = 64;  // background drainer takes part too
  SessionManager mgr(opts);
  ErrorCode code;
  std::string error;
  const uint64_t id = mgr.CreateSession(2, TestParams(), 0.001, &code, &error);
  ASSERT_NE(id, 0u);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> max_epoch_seen{0};
  auto reader = [&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::shared_ptr<const ServeSnapshot> snap = mgr.Read(id);
      ASSERT_NE(snap, nullptr);
      // Internal consistency of the immutable snapshot.
      ASSERT_EQ(snap->labels.label.size(), snap->num_points);
      ASSERT_EQ(snap->labels.is_core.size(), snap->num_points);
      ASSERT_EQ(snap->alive.size(), snap->num_points);
      size_t alive = 0;
      for (size_t i = 0; i < snap->num_points; ++i) {
        if (snap->alive[i]) {
          ++alive;
        } else {
          ASSERT_EQ(snap->labels.label[i], kNoise);
        }
        ASSERT_LT(snap->labels.label[i], snap->labels.num_clusters);
      }
      ASSERT_EQ(alive, snap->num_alive);
      uint64_t seen = max_epoch_seen.load(std::memory_order_relaxed);
      while (snap->epoch > seen && !max_epoch_seen.compare_exchange_weak(
                                       seen, snap->epoch,
                                       std::memory_order_relaxed)) {
      }
    }
  };
  std::thread r1(reader), r2(reader);

  Rng rng(99);
  uint64_t last_epoch = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<uint32_t> removes;
    if (round > 2) removes = {static_cast<uint32_t>(round)};
    ASSERT_TRUE(mgr.Ingest(id, MakeBatch(rng, 2, 80), 2, removes, nullptr,
                           nullptr, &code, &error))
        << error;
    if (round % 3 == 2) {
      uint64_t applied = 0;
      ASSERT_TRUE(mgr.Flush(id, &last_epoch, &applied, &code, &error));
    }
  }
  uint64_t applied = 0;
  ASSERT_TRUE(mgr.Flush(id, &last_epoch, &applied, &code, &error));
  stop.store(true, std::memory_order_relaxed);
  r1.join();
  r2.join();
  // Epochs only ever advance, and readers observed the progression.
  EXPECT_LE(max_epoch_seen.load(), last_epoch);
  EXPECT_EQ(mgr.Read(id)->epoch, last_epoch);
}

TEST(SessionManager, BackpressureRejectsAndRecovers) {
  ServeOptions opts;
  opts.start_drainer = false;  // nothing drains on its own
  opts.max_pending_ops = 100;
  SessionManager mgr(opts);
  ErrorCode code;
  std::string error;
  const uint64_t id = mgr.CreateSession(2, TestParams(), 0.001, &code, &error);
  ASSERT_NE(id, 0u);

  Rng rng(3);
  const std::vector<double> batch = MakeBatch(rng, 2, 40);  // 40 ops
  uint64_t pending = 0;
  ASSERT_TRUE(mgr.Ingest(id, batch, 2, {}, nullptr, &pending, &code, &error));
  EXPECT_EQ(pending, 40u);
  ASSERT_TRUE(mgr.Ingest(id, batch, 2, {}, nullptr, &pending, &code, &error));
  EXPECT_EQ(pending, 80u);
  // 80 + 40 > 100: rejected, queue unchanged.
  ASSERT_FALSE(
      mgr.Ingest(id, batch, 2, {}, nullptr, &pending, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBackpressure);
  EXPECT_EQ(pending, 80u);
  EXPECT_FALSE(error.empty());

  // Draining frees the queue and the same ingest then succeeds.
  uint64_t epoch = 0, applied = 0;
  ASSERT_TRUE(mgr.Flush(id, &epoch, &applied, &code, &error));
  EXPECT_EQ(applied, 80u);
  ASSERT_TRUE(mgr.Ingest(id, batch, 2, {}, nullptr, &pending, &code, &error));
  EXPECT_EQ(pending, 40u);
}

TEST(SessionManager, RejectsBadArgumentsWithoutSideEffects) {
  ServeOptions opts;
  opts.start_drainer = false;
  opts.max_sessions = 2;
  SessionManager mgr(opts);
  ErrorCode code;
  std::string error;

  // Bad create parameters.
  DbscanParams params = TestParams();
  EXPECT_EQ(mgr.CreateSession(0, params, 0.001, &code, &error), 0u);
  EXPECT_EQ(code, ErrorCode::kBadArgument);
  EXPECT_EQ(mgr.CreateSession(2, DbscanParams{}, 0.001, &code, &error), 0u);
  EXPECT_EQ(code, ErrorCode::kBadArgument);  // eps = 0
  EXPECT_EQ(mgr.CreateSession(2, params, 0.0, &code, &error), 0u);
  EXPECT_EQ(code, ErrorCode::kBadArgument);  // rho = 0

  const uint64_t id = mgr.CreateSession(2, params, 0.001, &code, &error);
  ASSERT_NE(id, 0u);

  // Session cap.
  ASSERT_NE(mgr.CreateSession(2, params, 0.001, &code, &error), 0u);
  EXPECT_EQ(mgr.CreateSession(2, params, 0.001, &code, &error), 0u);
  EXPECT_EQ(code, ErrorCode::kTooManySessions);

  // Unknown session.
  EXPECT_FALSE(mgr.Ingest(999, {1.0, 2.0}, 2, {}, nullptr, nullptr, &code,
                          &error));
  EXPECT_EQ(code, ErrorCode::kUnknownSession);
  EXPECT_FALSE(mgr.Flush(999, nullptr, nullptr, &code, &error));
  EXPECT_EQ(mgr.Read(999), nullptr);
  EXPECT_FALSE(mgr.DropSession(999));

  // Dim mismatch.
  EXPECT_FALSE(mgr.Ingest(id, {1.0, 2.0, 3.0}, 3, {}, nullptr, nullptr,
                          &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadArgument);

  // Remove of a never-inserted id; then insert 2 points and remove one of
  // them twice in one request (duplicate), then a clean remove of an id
  // from the same request (allowed).
  EXPECT_FALSE(
      mgr.Ingest(id, {}, 0, {5}, nullptr, nullptr, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadArgument);
  EXPECT_FALSE(mgr.Ingest(id, {0.0, 0.0, 1.0, 1.0}, 2, {0, 0}, nullptr,
                          nullptr, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadArgument);
  // The failed requests enqueued nothing: ids still start at 0.
  uint32_t first_id = 123;
  ASSERT_TRUE(mgr.Ingest(id, {0.0, 0.0, 1.0, 1.0}, 2, {0}, &first_id,
                         nullptr, &code, &error))
      << error;
  EXPECT_EQ(first_id, 0u);
  // Removing id 0 again in a later request is rejected at enqueue time.
  EXPECT_FALSE(mgr.Ingest(id, {}, 0, {0}, nullptr, nullptr, &code, &error));
  EXPECT_EQ(code, ErrorCode::kBadArgument);

  uint64_t epoch = 0, applied = 0;
  ASSERT_TRUE(mgr.Flush(id, &epoch, &applied, &code, &error));
  EXPECT_EQ(applied, 3u);  // 2 inserts + 1 remove
  std::shared_ptr<const ServeSnapshot> snap = mgr.Read(id);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->num_points, 2u);
  EXPECT_EQ(snap->num_alive, 1u);

  // Dropped sessions stop resolving, but a held snapshot stays valid.
  ASSERT_TRUE(mgr.DropSession(id));
  EXPECT_EQ(mgr.Read(id), nullptr);
  EXPECT_EQ(snap->num_alive, 1u);
}

TEST(SessionManager, BackgroundDrainerAppliesWithoutFlush) {
  ServeOptions opts;
  opts.drain_batch_ops = 50;  // one 80-point batch crosses the trigger
  SessionManager mgr(opts);
  ErrorCode code;
  std::string error;
  const uint64_t id = mgr.CreateSession(2, TestParams(), 0.001, &code, &error);
  ASSERT_NE(id, 0u);
  Rng rng(11);
  ASSERT_TRUE(mgr.Ingest(id, MakeBatch(rng, 2, 80), 2, {}, nullptr, nullptr,
                         &code, &error));
  // No Flush: the background drainer must pick the batch up on its own.
  // Single-core boxes may schedule the drainer late; poll generously.
  for (int i = 0; i < 2000; ++i) {
    if (mgr.Read(id)->epoch > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::shared_ptr<const ServeSnapshot> snap = mgr.Read(id);
  EXPECT_GT(snap->epoch, 0u);
  EXPECT_EQ(snap->num_points, 80u);
}

// ---------------------------------------------------------------------------
// End-to-end over a loopback socket

TEST(WireServer, EndToEndOverLoopback) {
  ServerOptions options;
  options.serve.num_threads = 2;
  WireServer server(options);
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;
  ASSERT_GT(server.port(), 0);

  WireClient client;
  ASSERT_TRUE(client.Connect(server.port(), &error)) << error;

  CreateReq create;
  create.dim = 2;
  create.eps = 2.0;
  create.min_pts = 4;
  create.rho = 0.001;
  uint64_t session = 0;
  ErrorCode code;
  ASSERT_TRUE(client.Create(create, &session, &code, &error)) << error;
  ASSERT_NE(session, 0u);

  DbscanParams params = TestParams();
  DynamicClustererOptions dyn;
  dyn.rho = 0.001;
  DynamicClusterer local(2, params, dyn);

  Rng rng(2024);
  uint32_t next_id = 0;
  for (int round = 0; round < 4; ++round) {
    IngestReq ingest;
    ingest.session = session;
    ingest.dim = 2;
    ingest.coords = MakeBatch(rng, 2, 70);
    if (round > 0) ingest.removes = {static_cast<uint32_t>(round * 3)};
    IngestResp ack;
    ASSERT_TRUE(client.Ingest(ingest, &ack, &code, &error)) << error;
    EXPECT_EQ(ack.first_id, next_id);
    local.Insert(Dataset(2, ingest.coords));
    if (!ingest.removes.empty()) local.Remove(ingest.removes);
    next_id += 70;
  }

  FlushResp flushed;
  ASSERT_TRUE(client.Flush(session, &flushed, &code, &error)) << error;
  const Clustering& want = local.Labels();
  EXPECT_EQ(flushed.applied_updates, next_id + 3);

  std::vector<uint32_t> all_ids(next_id);
  for (uint32_t i = 0; i < next_id; ++i) all_ids[i] = i;
  QueryResp qresp;
  ASSERT_TRUE(client.Query(session, all_ids, &qresp, &code, &error)) << error;
  EXPECT_EQ(qresp.num_points, local.num_points());
  EXPECT_EQ(qresp.num_alive, local.num_alive());
  ASSERT_EQ(qresp.labels.size(), all_ids.size());
  for (uint32_t i = 0; i < next_id; ++i) {
    EXPECT_EQ(qresp.labels[i], want.label[i]);
    EXPECT_EQ(qresp.is_core[i] != 0, want.is_core[i] != 0);
  }

  SnapshotResp sresp;
  ASSERT_TRUE(client.Snapshot(session, &sresp, &code, &error)) << error;
  EXPECT_EQ(sresp.ids.size(), local.num_alive());

  // Application-level errors keep the connection usable...
  IngestReq bad;
  bad.session = session + 999;
  bad.dim = 2;
  bad.coords = {0.0, 0.0};
  EXPECT_FALSE(client.Ingest(bad, nullptr, &code, &error));
  EXPECT_EQ(code, ErrorCode::kUnknownSession);
  ASSERT_TRUE(client.Drop(session, &code, &error)) << error;
  EXPECT_FALSE(client.Drop(session, &code, &error));  // already gone
  EXPECT_EQ(code, ErrorCode::kUnknownSession);

  server.Stop();
}

TEST(WireServer, MultipleConnectionsShareTheManager) {
  WireServer server;
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  // Client A creates and fills a session; client B reads it.
  WireClient a, b;
  ASSERT_TRUE(a.Connect(server.port(), &error)) << error;
  ASSERT_TRUE(b.Connect(server.port(), &error)) << error;
  CreateReq create;
  create.dim = 2;
  create.eps = 2.0;
  create.min_pts = 3;
  create.rho = 0.001;
  uint64_t session = 0;
  ErrorCode code;
  ASSERT_TRUE(a.Create(create, &session, &code, &error)) << error;
  IngestReq ingest;
  ingest.session = session;
  ingest.dim = 2;
  Rng rng(5);
  ingest.coords = MakeBatch(rng, 2, 50);
  ASSERT_TRUE(a.Ingest(ingest, nullptr, &code, &error)) << error;
  FlushResp flushed;
  ASSERT_TRUE(a.Flush(session, &flushed, &code, &error)) << error;

  QueryResp qresp;
  ASSERT_TRUE(b.Query(session, {0, 1, 2}, &qresp, &code, &error)) << error;
  EXPECT_EQ(qresp.num_points, 50u);
  server.Stop();
}

TEST(WireServer, GarbageBytesGetErrorRespAndClose) {
  WireServer server;
  std::string error;
  ASSERT_TRUE(server.Start(&error)) << error;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const uint8_t garbage[] = {0xff, 0xff, 0xff, 0xff, 0xde, 0xad, 0xbe, 0xef};
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));

  // The server must answer with a well-formed ErrorResp{kBadFrame} frame
  // and then close the connection.
  FrameAssembler assembler;
  uint8_t buf[4096];
  bool got_error_resp = false, closed = false;
  for (int i = 0; i < 100 && !closed; ++i) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      closed = true;
      break;
    }
    assembler.Feed(buf, static_cast<size_t>(n));
    Frame frame;
    std::string frame_error;
    while (assembler.Next(&frame, &frame_error) == FrameStatus::kFrame) {
      ASSERT_EQ(frame.type, MsgType::kErrorResp);
      ErrorResp resp;
      ASSERT_TRUE(DecodeErrorResp(frame, &resp, &frame_error)) << frame_error;
      EXPECT_EQ(resp.code, ErrorCode::kBadFrame);
      got_error_resp = true;
    }
  }
  EXPECT_TRUE(got_error_resp);
  EXPECT_TRUE(closed);
  ::close(fd);
  server.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace adbscan
