#include <gtest/gtest.h>

#include "core/brute_reference.h"
#include "core/gridbscan.h"
#include "eval/compare.h"
#include "gen/seed_spreader.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

TEST(Gridbscan, PartitionGranularityDoesNotChangeResult) {
  const Dataset data = ClusteredDataset(2, 500, 5, 200.0, 5.0, 701);
  const DbscanParams params{8.0, 5};
  const Clustering ref = BruteForceDbscan(data, params);
  for (uint32_t target : {10u, 50u, 200u, 100000u}) {
    GridbscanOptions opts;
    opts.target_partition_size = target;
    EXPECT_TRUE(SameClusters(ref, GridbscanDbscan(data, params, opts)))
        << "target " << target;
  }
}

TEST(Gridbscan, ClusterSpanningManyPartitionsIsMerged) {
  // A single long snake crossing the whole domain: every partition sees a
  // piece, and the merge phase must reassemble exactly one cluster.
  Dataset data(2);
  for (int i = 0; i < 1000; ++i) data.Add({i * 1.0, 50.0});
  const DbscanParams params{2.0, 3};
  GridbscanOptions opts;
  opts.target_partition_size = 50;  // many partitions along the snake
  const Clustering c = GridbscanDbscan(data, params, opts);
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.NumNoisePoints(), 0u);
}

TEST(Gridbscan, HaloMakesBoundaryCoreStatusExact) {
  // Dense blob straddling a partition boundary; miscounted neighborhoods
  // would flip core flags near the cut.
  Dataset data(2);
  Rng rng(703);
  for (int i = 0; i < 400; ++i) {
    data.Add({500.0 + rng.NextGaussian() * 3.0,
              500.0 + rng.NextGaussian() * 3.0});
  }
  // Spread more points so the partitioner actually cuts.
  for (int i = 0; i < 400; ++i) {
    data.Add({rng.NextDouble(0, 1000), rng.NextDouble(0, 1000)});
  }
  const DbscanParams params{4.0, 10};
  GridbscanOptions opts;
  opts.target_partition_size = 100;
  const Clustering c = GridbscanDbscan(data, params, opts);
  const Clustering ref = BruteForceDbscan(data, params);
  EXPECT_TRUE(SameCoreFlags(ref, c));
  EXPECT_TRUE(SameClusters(ref, c));
}

TEST(Gridbscan, HighDimensionalPartitioning) {
  const Dataset data = ClusteredDataset(7, 300, 3, 100.0, 5.0, 707);
  const DbscanParams params{25.0, 4};
  GridbscanOptions opts;
  opts.target_partition_size = 30;
  EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                           GridbscanDbscan(data, params, opts)));
}

TEST(Gridbscan, BorderPointOnPartitionBoundary) {
  // A border point whose core neighbors live on the other side of a cut.
  Dataset data(2);
  // Dense core block left of x=500 (span 0.95: all mutually within eps).
  for (int i = 0; i < 20; ++i) data.Add({498.6 - 0.05 * i, 100.0});
  // Border point right of the cut, within eps of the block's near edge.
  data.Add({499.5, 100.0});
  // Enough mass elsewhere to force a cut near x=500.
  Rng rng(709);
  for (int i = 0; i < 200; ++i) {
    data.Add({rng.NextDouble(0, 1000), rng.NextDouble(0, 1000)});
  }
  const DbscanParams params{1.0, 10};
  GridbscanOptions opts;
  opts.target_partition_size = 40;
  const Clustering c = GridbscanDbscan(data, params, opts);
  const Clustering ref = BruteForceDbscan(data, params);
  EXPECT_TRUE(SameClusters(ref, c));
  EXPECT_NE(c.label[20], kNoise);
}

TEST(Gridbscan, TinyDatasetSinglePartition) {
  const Dataset data = MakeDataset({{0.0, 0.0}, {0.5, 0.0}, {0.2, 0.2}});
  const DbscanParams params{1.0, 3};
  const Clustering c = GridbscanDbscan(data, params);
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.NumCorePoints(), 3u);
}

TEST(Gridbscan, MatchesReferenceOnSpreaderAcrossEps) {
  SeedSpreaderParams p;
  p.dim = 3;
  p.n = 500;
  p.domain_hi = 2000.0;
  p.point_radius = 20.0;
  p.shift_distance = 15.0;
  p.counter_reset = 25;
  p.noise_fraction = 0.05;
  const Dataset data = GenerateSeedSpreader(p, 711);
  GridbscanOptions opts;
  opts.target_partition_size = 60;
  for (double eps : {15.0, 40.0, 120.0}) {
    const DbscanParams params{eps, 6};
    EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                             GridbscanDbscan(data, params, opts)))
        << "eps " << eps;
  }
}

}  // namespace
}  // namespace adbscan
