#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "index/brute_force.h"
#include "index/rtree.h"
#include "test_helpers.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::RandomDataset;

std::set<uint32_t> AsSet(const std::vector<uint32_t>& v) {
  return {v.begin(), v.end()};
}

class RTreeDimTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeDimTest, BulkLoadedRangeQueryMatchesBruteForce) {
  const int dim = GetParam();
  const Dataset data = RandomDataset(dim, 700, 0.0, 100.0, 53 + dim);
  const RTree tree(data);
  tree.CheckInvariants();
  const BruteForceIndex brute(data);
  Rng rng(61 + dim);
  for (int trial = 0; trial < 40; ++trial) {
    double q[kMaxDim];
    for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(-10.0, 110.0);
    const double radius = rng.NextDouble(1.0, 35.0);
    EXPECT_EQ(AsSet(tree.RangeQuery(q, radius)),
              AsSet(brute.RangeQuery(q, radius)));
  }
}

TEST_P(RTreeDimTest, InsertBuiltRangeQueryMatchesBruteForce) {
  const int dim = GetParam();
  const Dataset data = ClusteredDataset(dim, 400, 3, 100.0, 4.0, 67 + dim);
  RTree tree = RTree::CreateEmpty(data);
  for (uint32_t i = 0; i < data.size(); ++i) tree.Insert(i);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), data.size());
  const BruteForceIndex brute(data);
  Rng rng(71 + dim);
  for (int trial = 0; trial < 30; ++trial) {
    double q[kMaxDim];
    for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(0.0, 100.0);
    const double radius = rng.NextDouble(1.0, 25.0);
    EXPECT_EQ(AsSet(tree.RangeQuery(q, radius)),
              AsSet(brute.RangeQuery(q, radius)));
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, RTreeDimTest, ::testing::Values(2, 3, 5, 7));

TEST(RTree, EmptyTree) {
  Dataset data(2);
  const RTree tree(data);
  const double q[] = {0.0, 0.0};
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_TRUE(tree.RangeQuery(q, 5.0).empty());
  EXPECT_FALSE(tree.AnyWithin(q, 5.0));
  EXPECT_EQ(tree.Height(), 0);
  tree.CheckInvariants();
}

TEST(RTree, SinglePoint) {
  Dataset data(3);
  data.Add({1.0, 2.0, 3.0});
  const RTree tree(data);
  EXPECT_EQ(tree.Height(), 1);
  const double q[] = {1.0, 2.0, 3.5};
  EXPECT_EQ(tree.RangeQuery(q, 1.0).size(), 1u);
  EXPECT_TRUE(tree.RangeQuery(q, 0.4).empty());
}

TEST(RTree, HeightGrowsLogarithmically) {
  const Dataset data = RandomDataset(2, 10000, 0.0, 1000.0, 73);
  const RTree tree(data);
  // 10000 points, fan-out 32: height 3 expected for STR packing.
  EXPECT_GE(tree.Height(), 2);
  EXPECT_LE(tree.Height(), 4);
}

TEST(RTree, CountWithEarlyStop) {
  const Dataset data = RandomDataset(2, 500, 0.0, 10.0, 79);
  const RTree tree(data);
  const double q[] = {5.0, 5.0};
  const size_t full = tree.CountInBall(q, 3.0, SIZE_MAX);
  const BruteForceIndex brute(data);
  EXPECT_EQ(full, brute.CountInBall(q, 3.0, SIZE_MAX));
  EXPECT_GE(tree.CountInBall(q, 3.0, 5), 5u);
}

TEST(RTree, SubsetConstructor) {
  const Dataset data = RandomDataset(2, 100, 0.0, 10.0, 83);
  std::vector<uint32_t> odd;
  for (uint32_t i = 1; i < 100; i += 2) odd.push_back(i);
  const RTree tree(data, odd);
  EXPECT_EQ(tree.size(), 50u);
  const double q[] = {5.0, 5.0};
  for (uint32_t id : tree.RangeQuery(q, 100.0)) EXPECT_EQ(id % 2, 1u);
}

TEST(RTree, DuplicatePointsInsertAndQuery) {
  Dataset data(2);
  for (int i = 0; i < 100; ++i) data.Add({3.0, 3.0});
  RTree tree = RTree::CreateEmpty(data);
  for (uint32_t i = 0; i < 100; ++i) tree.Insert(i);
  tree.CheckInvariants();
  const double q[] = {3.0, 3.0};
  EXPECT_EQ(tree.RangeQuery(q, 0.0).size(), 100u);
}

class RTreeSplitPolicyTest
    : public ::testing::TestWithParam<RTreeOptions::Split> {};

TEST_P(RTreeSplitPolicyTest, InsertBuiltTreeMatchesBruteForce) {
  RTreeOptions options;
  options.split = GetParam();
  const Dataset data = ClusteredDataset(3, 600, 4, 100.0, 5.0, 91);
  RTree tree = RTree::CreateEmpty(data, options);
  for (uint32_t i = 0; i < data.size(); ++i) tree.Insert(i);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), data.size());
  const BruteForceIndex brute(data);
  Rng rng(93);
  for (int trial = 0; trial < 30; ++trial) {
    double q[3];
    for (int i = 0; i < 3; ++i) q[i] = rng.NextDouble(0, 100);
    const double radius = rng.NextDouble(1.0, 25.0);
    EXPECT_EQ(AsSet(tree.RangeQuery(q, radius)),
              AsSet(brute.RangeQuery(q, radius)));
  }
}

TEST_P(RTreeSplitPolicyTest, SortedInsertionOrder) {
  // Sorted insertions are the classic worst case for naive splits; both
  // policies must stay correct.
  RTreeOptions options;
  options.split = GetParam();
  Dataset data(2);
  for (int i = 0; i < 500; ++i) data.Add({i * 1.0, i * 0.5});
  RTree tree = RTree::CreateEmpty(data, options);
  for (uint32_t i = 0; i < data.size(); ++i) tree.Insert(i);
  tree.CheckInvariants();
  const BruteForceIndex brute(data);
  const double q[] = {250.0, 125.0};
  EXPECT_EQ(AsSet(tree.RangeQuery(q, 40.0)),
            AsSet(brute.RangeQuery(q, 40.0)));
}

INSTANTIATE_TEST_SUITE_P(Policies, RTreeSplitPolicyTest,
                         ::testing::Values(RTreeOptions::Split::kQuadratic,
                                           RTreeOptions::Split::kRStar),
                         [](const auto& info) {
                           return info.param == RTreeOptions::Split::kRStar
                                      ? "RStar"
                                      : "Quadratic";
                         });

TEST(RTree, ForcedReinsertionCanBeDisabled) {
  RTreeOptions options;
  options.split = RTreeOptions::Split::kRStar;
  options.reinsert_fraction = 0.0;
  const Dataset data = RandomDataset(2, 400, 0.0, 100.0, 95);
  RTree tree = RTree::CreateEmpty(data, options);
  for (uint32_t i = 0; i < data.size(); ++i) tree.Insert(i);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), data.size());
  const BruteForceIndex brute(data);
  const double q[] = {50.0, 50.0};
  EXPECT_EQ(AsSet(tree.RangeQuery(q, 30.0)),
            AsSet(brute.RangeQuery(q, 30.0)));
}

TEST(RTree, MixedBulkAndInsert) {
  Dataset data(3);
  Rng rng(89);
  for (int i = 0; i < 300; ++i) {
    data.Add({rng.NextDouble(0, 50), rng.NextDouble(0, 50),
              rng.NextDouble(0, 50)});
  }
  std::vector<uint32_t> first_half;
  for (uint32_t i = 0; i < 150; ++i) first_half.push_back(i);
  RTree tree(data, first_half);
  for (uint32_t i = 150; i < 300; ++i) tree.Insert(i);
  tree.CheckInvariants();
  EXPECT_EQ(tree.size(), 300u);
  const BruteForceIndex brute(data);
  const double q[] = {25.0, 25.0, 25.0};
  EXPECT_EQ(AsSet(tree.RangeQuery(q, 20.0)), AsSet(brute.RangeQuery(q, 20.0)));
}

// The leaf SoA block is invalidated by Insert() and lazily rebuilt by the
// next query. Interleaving serial insert phases with multi-threaded query
// phases makes many threads race into EnsureLeafSoa right after each
// invalidation — under TSan this is the regression test for the
// double-checked rebuild; everywhere it also verifies results against
// brute force.
TEST(RTree, ConcurrentQueriesAfterInsertRebuildLeafSoaOnce) {
  const int dim = 3;
  const Dataset data = ClusteredDataset(dim, 600, 4, 100.0, 5.0, 97);
  RTree tree = RTree::CreateEmpty(data);
  const int threads = std::max(2, HardwareThreads());
  uint32_t inserted = 0;
  for (int phase = 0; phase < 6; ++phase) {
    // Serial mutation phase: grow the tree (invalidates the SoA block).
    const uint32_t grow = phase == 0 ? 150 : 90;
    for (uint32_t i = 0; i < grow && inserted < data.size(); ++i) {
      tree.Insert(inserted++);
    }
    // Parallel read phase: every worker's first query may hit the rebuild.
    std::vector<uint32_t> ids(inserted);
    for (uint32_t i = 0; i < inserted; ++i) ids[i] = i;
    const BruteForceIndex brute(data, ids);
    std::atomic<int> mismatches{0};
    ParallelFor(64, threads, [&](size_t begin, size_t end) {
      Rng rng(1000 + begin);
      for (size_t trial = begin; trial < end; ++trial) {
        double q[kMaxDim];
        for (int i = 0; i < dim; ++i) q[i] = rng.NextDouble(0.0, 100.0);
        const double radius = rng.NextDouble(2.0, 25.0);
        if (AsSet(tree.RangeQuery(q, radius)) !=
            AsSet(brute.RangeQuery(q, radius))) {
          mismatches.fetch_add(1);
        }
        const size_t count = tree.CountInBall(q, radius, data.size());
        if (count != brute.RangeQuery(q, radius).size()) {
          mismatches.fetch_add(1);
        }
      }
    });
    ASSERT_EQ(mismatches.load(), 0) << "phase " << phase;
  }
  EXPECT_EQ(tree.size(), data.size());
  tree.CheckInvariants();
}

}  // namespace
}  // namespace adbscan
