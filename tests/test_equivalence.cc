// Cross-algorithm equivalence: every exact algorithm must produce the unique
// DBSCAN clustering of Problem 1, verified against the trusted O(n²)
// reference over a parameterized sweep of dimensionalities, distributions,
// and parameters.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/adbscan.h"
#include "eval/compare.h"
#include "geom/kernels.h"
#include "gen/seed_spreader.h"
#include "grid/grid.h"
#include "test_helpers.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

struct EqCase {
  std::string name;
  int dim;
  size_t n;
  double eps;
  int min_pts;
  int distribution;  // 0 clustered, 1 uniform, 2 seed spreader, 3 coincident
};

Dataset MakeData(const EqCase& c, uint64_t seed) {
  switch (c.distribution) {
    case 0:
      return ClusteredDataset(c.dim, c.n, 4, 100.0, 4.0, seed);
    case 1:
      return RandomDataset(c.dim, c.n, 0.0, 100.0, seed);
    case 2: {
      SeedSpreaderParams p;
      p.dim = c.dim;
      p.n = c.n;
      p.domain_hi = 1000.0;
      p.point_radius = 10.0;
      p.shift_distance = 5.0 * c.dim;
      p.counter_reset = 20;
      p.noise_fraction = 0.05;
      return GenerateSeedSpreader(p, seed);
    }
    case 3: {
      // Everything coincident: the footnote-1 degenerate input.
      Dataset data(c.dim);
      std::vector<double> p(c.dim, 42.0);
      for (size_t i = 0; i < c.n; ++i) data.Add(p);
      return data;
    }
    case 4: {
      // Integer lattice: every distance is degenerate (ties everywhere,
      // points exactly on cell boundaries).
      Dataset data(c.dim);
      std::vector<double> p(c.dim, 0.0);
      const size_t side = static_cast<size_t>(
          std::ceil(std::pow(static_cast<double>(c.n),
                             1.0 / static_cast<double>(c.dim))));
      size_t emitted = 0;
      std::vector<size_t> idx(c.dim, 0);
      while (emitted < c.n) {
        for (int j = 0; j < c.dim; ++j) p[j] = static_cast<double>(idx[j]);
        data.Add(p);
        ++emitted;
        for (int j = 0; j < c.dim; ++j) {
          if (++idx[j] < side) break;
          idx[j] = 0;
        }
      }
      return data;
    }
    default: {
      // Collinear points along a diagonal (zero-volume boxes, degenerate
      // trees and grids).
      Dataset data(c.dim);
      std::vector<double> p(c.dim);
      for (size_t i = 0; i < c.n; ++i) {
        for (int j = 0; j < c.dim; ++j) p[j] = 0.37 * static_cast<double>(i);
        data.Add(p);
      }
      return data;
    }
  }
}

class ExactEquivalenceTest : public ::testing::TestWithParam<EqCase> {};

TEST_P(ExactEquivalenceTest, AllExactAlgorithmsMatchReference) {
  const EqCase c = GetParam();
  const Dataset data = MakeData(c, 211 + c.dim * 7 + c.min_pts);
  const DbscanParams params{c.eps, c.min_pts};
  const Clustering reference = BruteForceDbscan(data, params);

  const Clustering kdd96 = Kdd96Dbscan(data, params);
  EXPECT_TRUE(SameClusters(reference, kdd96)) << "KDD96 clusters differ";
  EXPECT_TRUE(SameCoreFlags(reference, kdd96)) << "KDD96 core flags differ";

  Kdd96Options kd_opts;
  kd_opts.index = Kdd96Options::IndexKind::kKdTree;
  const Clustering kdd96_kd = Kdd96Dbscan(data, params, kd_opts);
  EXPECT_TRUE(SameClusters(reference, kdd96_kd))
      << "KDD96/kd-tree clusters differ";

  const Clustering cit08 = GridbscanDbscan(data, params);
  EXPECT_TRUE(SameClusters(reference, cit08)) << "CIT08 clusters differ";
  EXPECT_TRUE(SameCoreFlags(reference, cit08)) << "CIT08 core flags differ";

  // Small partitions force heavy halo replication and merging.
  GridbscanOptions small_parts;
  small_parts.target_partition_size = 50;
  const Clustering cit08_fine = GridbscanDbscan(data, params, small_parts);
  EXPECT_TRUE(SameClusters(reference, cit08_fine))
      << "CIT08 (fine partitions) clusters differ";

  const Clustering ours = ExactGridDbscan(data, params);
  EXPECT_TRUE(SameClusters(reference, ours)) << "OurExact clusters differ";
  EXPECT_TRUE(SameCoreFlags(reference, ours)) << "OurExact core flags differ";

  if (c.dim == 2) {
    const Clustering gunawan = Gunawan2dDbscan(data, params);
    EXPECT_TRUE(SameClusters(reference, gunawan))
        << "Gunawan2D clusters differ";
    EXPECT_TRUE(SameCoreFlags(reference, gunawan))
        << "Gunawan2D core flags differ";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ExactEquivalenceTest,
    ::testing::Values(
        EqCase{"clustered2d", 2, 400, 6.0, 5, 0},
        EqCase{"clustered2d_tight", 2, 400, 2.0, 3, 0},
        EqCase{"clustered3d", 3, 400, 8.0, 5, 0},
        EqCase{"clustered5d", 5, 300, 15.0, 4, 0},
        EqCase{"clustered7d", 7, 250, 25.0, 4, 0},
        EqCase{"uniform2d", 2, 300, 7.0, 4, 1},
        EqCase{"uniform3d", 3, 300, 12.0, 4, 1},
        EqCase{"uniform5d_sparse", 5, 200, 10.0, 3, 1},
        EqCase{"spreader2d", 2, 500, 15.0, 5, 2},
        EqCase{"spreader3d", 3, 500, 20.0, 8, 2},
        EqCase{"spreader5d", 5, 400, 40.0, 6, 2},
        EqCase{"coincident2d", 2, 60, 1.0, 10, 3},
        EqCase{"coincident5d", 5, 60, 1.0, 61, 3},  // MinPts > n: all noise
        EqCase{"minpts1_2d", 2, 200, 5.0, 1, 1},
        EqCase{"big_eps_2d", 2, 200, 500.0, 5, 0},
        EqCase{"tiny_eps_3d", 3, 200, 0.01, 2, 0},
        EqCase{"lattice2d", 2, 400, 1.0, 5, 4},
        EqCase{"lattice3d", 3, 350, 1.5, 6, 4},
        EqCase{"lattice5d_exact_eps", 5, 300, 1.0, 4, 4},
        EqCase{"collinear2d", 2, 300, 1.0, 4, 5},
        EqCase{"collinear7d", 7, 200, 2.0, 3, 5}),
    [](const ::testing::TestParamInfo<EqCase>& info) {
      return info.param.name;
    });

TEST(ExactEquivalence, PaperFigure2StyleExample) {
  // Two clusters bridged by a border point, MinPts = 4 (the shape of
  // Figure 2: o10 belongs to both clusters).
  const Dataset data = MakeDataset({
      // Cluster 1: extends right; only its tip (0.9, 0) touches the bridge.
      {0.9, 0.0},
      {1.2, 0.0},
      {1.2, 0.3},
      {1.5, 0.0},
      // Bridge (border point): 2 core neighbors + itself = 3 < MinPts.
      {0.0, 0.0},
      // Cluster 2: mirrored to the left.
      {-0.9, 0.0},
      {-1.2, 0.0},
      {-1.2, 0.3},
      {-1.5, 0.0},
      // Noise: far away.
      {100.0, 100.0},
  });
  const DbscanParams params{1.0, 4};
  const Clustering ref = BruteForceDbscan(data, params);
  EXPECT_EQ(ref.num_clusters, 2);
  EXPECT_EQ(ref.label[9], kNoise);
  EXPECT_FALSE(ref.is_core[4]);  // the bridge is a border point
  // The bridge belongs to both clusters.
  const auto sets = ref.ClusterSets();
  int memberships = 0;
  for (const auto& s : sets) {
    for (uint32_t id : s) memberships += (id == 4);
  }
  EXPECT_EQ(memberships, 2);
  // And all algorithms agree on this structure.
  EXPECT_TRUE(SameClusters(ref, Kdd96Dbscan(data, params)));
  EXPECT_TRUE(SameClusters(ref, GridbscanDbscan(data, params)));
  EXPECT_TRUE(SameClusters(ref, ExactGridDbscan(data, params)));
  EXPECT_TRUE(SameClusters(ref, Gunawan2dDbscan(data, params)));
}

// The SIMD kernels guarantee bit-identical distances (see geom/kernels.h),
// so every pipeline must produce IDENTICAL raw output — labels, core flags,
// extra memberships, numbering and all — under --kernel=scalar and
// --kernel=auto, at any thread count.
TEST(KernelEquivalence, ScalarAndAutoProduceIdenticalClusterings) {
  const simd::KernelKind saved = simd::ActiveKernel();
  using Runner = std::function<Clustering(const Dataset&, const DbscanParams&)>;
  const std::vector<std::pair<std::string, Runner>> pipelines = {
      {"KDD96",
       [](const Dataset& d, const DbscanParams& p) {
         return Kdd96Dbscan(d, p);
       }},
      {"GriDBSCAN",
       [](const Dataset& d, const DbscanParams& p) {
         return GridbscanDbscan(d, p);
       }},
      {"ExactGrid",
       [](const Dataset& d, const DbscanParams& p) {
         return ExactGridDbscan(d, p);
       }},
      {"Approx(rho=0.01)",
       [](const Dataset& d, const DbscanParams& p) {
         return ApproxDbscan(d, p, 0.01);
       }},
      {"Gunawan2D",
       [](const Dataset& d, const DbscanParams& p) {
         return Gunawan2dDbscan(d, p);
       }},
  };
  for (int dim : {2, 3, 5, 7}) {
    SeedSpreaderParams sp;
    sp.dim = dim;
    sp.n = 2500;
    sp.forced_restart_every = sp.n / 4;
    const Dataset data = GenerateSeedSpreader(sp, 9200 + dim);
    for (int threads : {1, HardwareThreads()}) {
      const DbscanParams params{5000.0, 20, threads};
      for (const auto& [name, run] : pipelines) {
        if (name == "Gunawan2D" && dim != 2) continue;
        // Baseline: the scalar kernel. Every other kernel choice must
        // reproduce it bit-identically.
        ASSERT_TRUE(simd::SetKernel(simd::KernelKind::kScalar));
        const Clustering base = run(data, params);
        EXPECT_GT(base.num_clusters, 0)
            << name << " dim=" << dim << " (vacuous input)";
        for (simd::KernelKind kind :
             {simd::KernelKind::kScalar, simd::KernelKind::kAuto}) {
          ASSERT_TRUE(simd::SetKernel(kind));
          const Clustering other = run(data, params);
          const std::string context =
              name + " dim=" + std::to_string(dim) +
              " threads=" + std::to_string(threads) +
              " kernel=" + simd::KernelName(kind);
          EXPECT_EQ(base.num_clusters, other.num_clusters) << context;
          EXPECT_EQ(base.label, other.label) << context;
          EXPECT_EQ(base.is_core, other.is_core) << context;
          EXPECT_EQ(base.extra_memberships, other.extra_memberships)
              << context;
          EXPECT_TRUE(SameClusters(base, other)) << context;
        }
      }
    }
  }
  simd::SetKernel(saved);
}

TEST(ExactEquivalence, EmptyDataset) {
  Dataset data(3);
  const DbscanParams params{1.0, 3};
  for (const Clustering& c :
       {Kdd96Dbscan(data, params), GridbscanDbscan(data, params),
        ExactGridDbscan(data, params), BruteForceDbscan(data, params)}) {
    EXPECT_EQ(c.num_clusters, 0);
    EXPECT_TRUE(c.label.empty());
  }
}

}  // namespace
}  // namespace adbscan
