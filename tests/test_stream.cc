// Differential validation of the dynamic clustering subsystem: after any
// random interleaving of Insert/Remove batches, DynamicClusterer::Snapshot()
// must be IDENTICAL — raw labels, core flags, extra memberships, cluster
// numbering — to a from-scratch ApproxDbscan run over the surviving points
// with the same eps / MinPts / rho / thread count.
//
// The sequence count per threads block is tunable through the
// STREAM_DIFF_SEQUENCES environment variable (default 50, giving the
// documented 200 interleavings per dimension across the four blocks);
// sanitizer CI jobs set it lower.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/approx_dbscan.h"
#include "geom/dataset.h"
#include "grid/grid.h"
#include "stream/dynamic_clusterer.h"
#include "stream/update_log.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace adbscan {
namespace {

int SequencesPerBlock() {
  const char* env = std::getenv("STREAM_DIFF_SEQUENCES");
  if (env != nullptr) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 50;
}

// Mixture of Gaussian blobs plus uniform background noise in [0, 1]^d —
// dense cores, sparse borders, and isolated noise all show up, which is
// what exercises every labeling path.
void AddRandomPoints(Rng* rng, int dim, size_t count, Dataset* out) {
  std::vector<double> centers(3 * static_cast<size_t>(dim));
  for (double& c : centers) c = rng->NextDouble();
  std::vector<double> p(static_cast<size_t>(dim));
  for (size_t i = 0; i < count; ++i) {
    if (rng->NextBernoulli(0.2)) {
      for (int k = 0; k < dim; ++k) p[k] = rng->NextDouble();
    } else {
      const size_t blob = rng->NextBounded(3);
      for (int k = 0; k < dim; ++k) {
        p[k] = centers[blob * dim + k] + 0.05 * rng->NextGaussian();
      }
    }
    out->Add(p.data());
  }
}

void ExpectIdentical(const Clustering& want, const Clustering& got,
                     const std::string& context) {
  ASSERT_EQ(want.num_clusters, got.num_clusters) << context;
  ASSERT_EQ(want.is_core, got.is_core) << context;
  ASSERT_EQ(want.label, got.label) << context;
  ASSERT_EQ(want.extra_memberships, got.extra_memberships) << context;
}

void RunDifferentialBlock(int threads) {
  const int sequences = SequencesPerBlock();
  for (int dim : {2, 3, 5, 7}) {
    for (int seq = 0; seq < sequences; ++seq) {
      Rng rng(0x5eedull * 1000003 + static_cast<uint64_t>(dim) * 7919 +
              static_cast<uint64_t>(seq) * 31 +
              static_cast<uint64_t>(threads) * 2);
      DbscanParams params;
      params.eps = rng.NextDouble(0.08, 0.25);
      params.min_pts = 2 + static_cast<int>(rng.NextBounded(6));
      params.num_threads = threads;
      DynamicClustererOptions opts;
      // Randomize the reorganization knobs so compaction, the overlay
      // index, the localized recompute, and its full-rebuild fallback all
      // fire across the block.
      opts.rho = rng.NextBernoulli(0.5) ? 0.001 : 0.1;
      opts.rebuild_threshold = rng.NextDouble(0.05, 0.5);
      opts.min_rebuild_ops = 1 + rng.NextBounded(32);
      opts.recompute_frontier_limit = rng.NextDouble() < 0.34 ? 0.0 : rng.NextDouble();
      DynamicClusterer dyn(dim, params, opts);

      const int steps = 4 + static_cast<int>(rng.NextBounded(3));
      for (int step = 0; step < steps; ++step) {
        const bool removing =
            step > 0 && dyn.num_alive() > 20 && rng.NextBernoulli(0.45);
        if (removing) {
          std::vector<uint32_t> alive;
          for (uint32_t id = 0; id < dyn.num_points(); ++id) {
            if (dyn.alive(id)) alive.push_back(id);
          }
          // Random distinct subset via partial Fisher-Yates.
          const size_t take = 1 + rng.NextBounded(alive.size() / 2);
          for (size_t i = 0; i < take; ++i) {
            const size_t j = i + rng.NextBounded(alive.size() - i);
            std::swap(alive[i], alive[j]);
          }
          alive.resize(take);
          dyn.Remove(alive);
        } else {
          Dataset batch(dim);
          const size_t count =
              step == 0 ? 60 + rng.NextBounded(90) : 10 + rng.NextBounded(30);
          AddRandomPoints(&rng, dim, count, &batch);
          dyn.Insert(batch);
        }

        DynamicClusterer::SnapshotView snap = dyn.Snapshot();
        ASSERT_EQ(snap.points.size(), dyn.num_alive());
        const Clustering scratch = ApproxDbscan(snap.points, params, opts.rho);
        char context[160];
        std::snprintf(context, sizeof(context),
                      "threads=%d dim=%d seq=%d step=%d n=%zu "
                      "eps=%.6g min_pts=%d",
                      threads, dim, seq, step, snap.points.size(), params.eps,
                      params.min_pts);
        ExpectIdentical(scratch, snap.clustering, context);
        if (::testing::Test::HasFatalFailure()) return;

        // The global-id view agrees with the compacted one: dead points are
        // noise and never core, survivors carry the compacted labels.
        const Clustering& global = dyn.Labels();
        size_t row = 0;
        for (uint32_t id = 0; id < dyn.num_points(); ++id) {
          if (dyn.alive(id)) {
            ASSERT_EQ(global.label[id], snap.clustering.label[row]) << context;
            ASSERT_EQ(global.is_core[id], snap.clustering.is_core[row])
                << context;
            ++row;
          } else {
            ASSERT_EQ(global.label[id], kNoise) << context;
            ASSERT_FALSE(global.is_core[id]) << context;
          }
        }
      }
    }
  }
}

TEST(StreamDifferential, SingleThread) { RunDifferentialBlock(1); }

TEST(StreamDifferential, Parallel) { RunDifferentialBlock(HardwareThreads()); }

TEST(DynamicClusterer, EmptyAndFullDrain) {
  DbscanParams params;
  params.eps = 0.1;
  params.min_pts = 3;
  DynamicClusterer dyn(2, params);
  EXPECT_EQ(dyn.num_points(), 0u);
  EXPECT_EQ(dyn.Labels().num_clusters, 0);
  EXPECT_TRUE(dyn.Snapshot().ids.empty());

  Dataset batch(2);
  Rng rng(7);
  AddRandomPoints(&rng, 2, 80, &batch);
  const uint32_t first = dyn.Insert(batch);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(dyn.num_alive(), 80u);

  std::vector<uint32_t> all(80);
  for (uint32_t id = 0; id < 80; ++id) all[id] = id;
  dyn.Remove(all);
  EXPECT_EQ(dyn.num_alive(), 0u);
  EXPECT_EQ(dyn.num_points(), 80u);  // ids are never recycled
  const Clustering& labels = dyn.Labels();
  EXPECT_EQ(labels.num_clusters, 0);
  for (uint32_t id = 0; id < 80; ++id) {
    EXPECT_EQ(labels.label[id], kNoise);
    EXPECT_FALSE(labels.is_core[id]);
  }

  // Refill after the drain (a compaction may have run in between): the
  // structure must come back to life on the same id space.
  Dataset again(2);
  AddRandomPoints(&rng, 2, 50, &again);
  EXPECT_EQ(dyn.Insert(again), 80u);
  EXPECT_EQ(dyn.num_alive(), 50u);
  DynamicClusterer::SnapshotView snap = dyn.Snapshot();
  const Clustering scratch =
      ApproxDbscan(snap.points, params, dyn.options().rho);
  EXPECT_EQ(scratch.label, snap.clustering.label);
  EXPECT_EQ(scratch.is_core, snap.clustering.is_core);
}

TEST(DynamicClusterer, IdsAreDenseAndStable) {
  DbscanParams params;
  params.eps = 0.2;
  params.min_pts = 2;
  DynamicClusterer dyn(3, params);
  Dataset a(3);
  Rng rng(11);
  AddRandomPoints(&rng, 3, 10, &a);
  EXPECT_EQ(dyn.Insert(a), 0u);
  Dataset b(3);
  AddRandomPoints(&rng, 3, 5, &b);
  EXPECT_EQ(dyn.Insert(b), 10u);
  dyn.Remove({3, 7});
  EXPECT_FALSE(dyn.alive(3));
  EXPECT_TRUE(dyn.alive(4));
  // Tombstoned coordinates stay addressable.
  EXPECT_EQ(dyn.point(3)[0], a.point(3)[0]);
  Dataset c(3);
  AddRandomPoints(&rng, 3, 2, &c);
  EXPECT_EQ(dyn.Insert(c), 15u);
  const DynamicClusterer::SnapshotView snap = dyn.Snapshot();
  EXPECT_EQ(snap.ids.size(), 15u);
  EXPECT_TRUE(std::is_sorted(snap.ids.begin(), snap.ids.end()));
}

TEST(UpdateLogParser, ParsesAllOps) {
  const std::string path = ::testing::TempDir() + "/stream_ops.log";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("# comment\n\na 0.5 0.25\na 1 2\nf\nr 0\na 3.5e-1 .75\nf\n", f);
  std::fclose(f);
  std::string error;
  std::optional<UpdateLog> log = TryReadUpdateLog(path, 2, &error);
  ASSERT_TRUE(log.has_value()) << error;
  EXPECT_EQ(log->num_inserts, 3u);
  EXPECT_EQ(log->num_removes, 1u);
  ASSERT_EQ(log->ops.size(), 6u);
  EXPECT_EQ(log->ops[0].kind, UpdateOp::Kind::kInsert);
  EXPECT_EQ(log->ops[0].coords, (std::vector<double>{0.5, 0.25}));
  EXPECT_EQ(log->ops[2].kind, UpdateOp::Kind::kFlush);
  EXPECT_EQ(log->ops[3].kind, UpdateOp::Kind::kRemove);
  EXPECT_EQ(log->ops[3].id, 0u);
}

TEST(UpdateLogParser, RejectsMalformedInput) {
  const struct {
    const char* content;
    const char* reason;
  } kCases[] = {
      {"a 0.5\n", "missing coordinate"},
      {"a 0.5 abc\n", "non-numeric coordinate"},
      {"a 0.5 0.5 0.5\n", "trailing token"},
      {"r 0\n", "remove before insert"},
      {"a 1 1\nr 0\nr 0\n", "duplicate removal"},
      {"a 1 1\nr -1\n", "negative id"},
      {"x 1 1\n", "unknown op"},
  };
  for (const auto& c : kCases) {
    const std::string path = ::testing::TempDir() + "/stream_bad.log";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(c.content, f);
    std::fclose(f);
    std::string error;
    EXPECT_FALSE(TryReadUpdateLog(path, 2, &error).has_value()) << c.reason;
    EXPECT_FALSE(error.empty()) << c.reason;
  }
  std::string error;
  EXPECT_FALSE(TryReadUpdateLog("/nonexistent/stream.log", 2, &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace adbscan
