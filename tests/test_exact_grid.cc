#include <gtest/gtest.h>

#include "core/brute_reference.h"
#include "core/exact_grid.h"
#include "eval/compare.h"
#include "gen/realdata_sim.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

TEST(ExactGrid, MatchesReferenceAcrossDimsAndEps) {
  for (int dim : {2, 3, 4, 5, 6, 7}) {
    const Dataset data = ClusteredDataset(dim, 300, 3, 100.0, 5.0, 800 + dim);
    for (double eps : {5.0, 12.0, 30.0}) {
      const DbscanParams params{eps, 4};
      EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                               ExactGridDbscan(data, params)))
          << "dim " << dim << " eps " << eps;
    }
  }
}

TEST(ExactGrid, EdgeExactlyAtEps) {
  // Core points at distance exactly eps must be joined (closed ball).
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1},   // block A
      {5.0, 0.0}, {5.1, 0.0}, {5.0, 0.1},   // block B
  });
  // dist((0.1,0), (5.0,0)) = 4.9: choose eps = 4.9 exactly.
  const Clustering joined = ExactGridDbscan(data, DbscanParams{4.9, 3});
  EXPECT_EQ(joined.num_clusters, 1);
  const Clustering split = ExactGridDbscan(data, DbscanParams{4.89, 3});
  EXPECT_EQ(split.num_clusters, 2);
}

TEST(ExactGrid, NonNeighborCellsNeverJoined) {
  // Distance just above eps between two dense blocks.
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1},
      {10.001, 0.0}, {10.1, 0.0}, {10.0, 0.1},
  });
  const Clustering c = ExactGridDbscan(data, DbscanParams{9.9, 3});
  EXPECT_EQ(c.num_clusters, 2);
}

TEST(ExactGrid, NoisePercentageOnUniformSparseData) {
  // Very sparse uniform data: nearly everything should be noise.
  const Dataset data = RandomDataset(5, 300, 0.0, 1000.0, 801);
  const Clustering c = ExactGridDbscan(data, DbscanParams{5.0, 4});
  EXPECT_EQ(c.num_clusters, 0);
  EXPECT_EQ(c.NumNoisePoints(), 300u);
}

TEST(ExactGrid, RealDataStandInsSmall) {
  // Small instances of the PAMAP2/Farm/Household stand-ins against the
  // reference (the real experiments use millions; correctness shown here).
  const DbscanParams params{4000.0, 10};
  for (const Dataset& data :
       {Pamap2Like(400, 803), FarmLike(400, 804), HouseholdLike(400, 805)}) {
    EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                             ExactGridDbscan(data, params)))
        << "dim " << data.dim();
  }
}

TEST(ExactGrid, AllPointsIdentical) {
  Dataset data(3);
  for (int i = 0; i < 100; ++i) data.Add({7.0, 7.0, 7.0});
  const Clustering c = ExactGridDbscan(data, DbscanParams{1.0, 100});
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.NumCorePoints(), 100u);
}

TEST(ExactGrid, ClusterCountMonotoneReasonableInEps) {
  // Larger eps never creates noise out of clustered points.
  const Dataset data = ClusteredDataset(3, 400, 5, 100.0, 4.0, 807);
  size_t prev_noise = data.size();
  for (double eps : {2.0, 4.0, 8.0, 16.0, 32.0}) {
    const Clustering c = ExactGridDbscan(data, DbscanParams{eps, 5});
    EXPECT_LE(c.NumNoisePoints(), prev_noise) << "eps " << eps;
    prev_noise = c.NumNoisePoints();
  }
}

}  // namespace
}  // namespace adbscan
