// Metamorphic property tests: transformations of the input with a known
// effect on the output. DBSCAN is defined purely through Euclidean
// distances, so clusterings must be invariant under rigid motions, scale
// together with ε, and be independent of point order (modulo ids).

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "core/adbscan.h"
#include "eval/compare.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;

struct AlgoCase {
  const char* name;
  Clustering (*run)(const Dataset&, const DbscanParams&);
};

Clustering RunKdd96Wrap(const Dataset& d, const DbscanParams& p) {
  return Kdd96Dbscan(d, p);
}
Clustering RunGridbscanWrap(const Dataset& d, const DbscanParams& p) {
  return GridbscanDbscan(d, p);
}
Clustering RunExactWrap(const Dataset& d, const DbscanParams& p) {
  return ExactGridDbscan(d, p);
}
Clustering RunApproxWrap(const Dataset& d, const DbscanParams& p) {
  // Tiny rho: behaves exactly on generic (non-adversarial) inputs, so the
  // metamorphic identities must hold as well.
  return ApproxDbscan(d, p, 1e-9);
}

class MetamorphicTest : public ::testing::TestWithParam<AlgoCase> {};

Dataset Translate(const Dataset& data, const std::vector<double>& offset) {
  Dataset out(data.dim());
  out.Reserve(data.size());
  std::vector<double> p(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int j = 0; j < data.dim(); ++j) {
      p[j] = data.point(i)[j] + offset[j];
    }
    out.Add(p);
  }
  return out;
}

Dataset Scale(const Dataset& data, double factor) {
  Dataset out(data.dim());
  out.Reserve(data.size());
  std::vector<double> p(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int j = 0; j < data.dim(); ++j) p[j] = data.point(i)[j] * factor;
    out.Add(p);
  }
  return out;
}

// Axis permutation is a rigid motion the grid is NOT aligned-invariant to
// internally, but results must match.
Dataset SwapAxes(const Dataset& data, int a, int b) {
  Dataset out(data.dim());
  out.Reserve(data.size());
  std::vector<double> p(data.dim());
  for (size_t i = 0; i < data.size(); ++i) {
    for (int j = 0; j < data.dim(); ++j) p[j] = data.point(i)[j];
    std::swap(p[a], p[b]);
    out.Add(p);
  }
  return out;
}

TEST_P(MetamorphicTest, TranslationInvariance) {
  const AlgoCase algo = GetParam();
  const Dataset data = ClusteredDataset(3, 300, 4, 80.0, 3.0, 1501);
  const DbscanParams params{7.0, 5};
  const Clustering base = algo.run(data, params);
  for (const std::vector<double>& offset :
       {std::vector<double>{1000.0, -500.0, 250.0},
        std::vector<double>{-1e6, -1e6, -1e6},
        std::vector<double>{0.123456, 7.891011, -3.1415}}) {
    const Clustering moved = algo.run(Translate(data, offset), params);
    EXPECT_TRUE(SameClusters(base, moved)) << algo.name;
    EXPECT_TRUE(SameCoreFlags(base, moved)) << algo.name;
  }
}

TEST_P(MetamorphicTest, ScaleInvarianceWithScaledEps) {
  const AlgoCase algo = GetParam();
  const Dataset data = ClusteredDataset(2, 300, 4, 80.0, 3.0, 1503);
  const DbscanParams params{6.0, 5};
  const Clustering base = algo.run(data, params);
  for (double factor : {0.001, 10.0, 12345.0}) {
    const DbscanParams scaled{params.eps * factor, params.min_pts};
    const Clustering result = algo.run(Scale(data, factor), scaled);
    EXPECT_TRUE(SameClusters(base, result))
        << algo.name << " at scale " << factor;
  }
}

TEST_P(MetamorphicTest, AxisPermutationInvariance) {
  const AlgoCase algo = GetParam();
  const Dataset data = ClusteredDataset(5, 250, 3, 60.0, 3.0, 1505);
  const DbscanParams params{10.0, 4};
  const Clustering base = algo.run(data, params);
  const Clustering swapped = algo.run(SwapAxes(data, 0, 4), params);
  EXPECT_TRUE(SameClusters(base, swapped)) << algo.name;
  EXPECT_TRUE(SameCoreFlags(base, swapped)) << algo.name;
}

TEST_P(MetamorphicTest, PointOrderIndependence) {
  const AlgoCase algo = GetParam();
  const Dataset data = ClusteredDataset(3, 300, 4, 70.0, 3.0, 1507);
  const DbscanParams params{8.0, 5};
  const Clustering base = algo.run(data, params);

  // Shuffle ids, cluster, then map the result back to original ids.
  std::vector<uint32_t> perm(data.size());
  std::iota(perm.begin(), perm.end(), 0u);
  Rng rng(1509);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  Dataset shuffled(data.dim());
  shuffled.Reserve(data.size());
  for (uint32_t id : perm) shuffled.Add(data.point(id));

  const Clustering shuffled_result = algo.run(shuffled, params);
  // Map back: position k in `shuffled` is original point perm[k].
  Clustering mapped;
  mapped.num_clusters = shuffled_result.num_clusters;
  mapped.label.assign(data.size(), kNoise);
  mapped.is_core.assign(data.size(), 0);
  for (size_t k = 0; k < perm.size(); ++k) {
    mapped.label[perm[k]] = shuffled_result.label[k];
    mapped.is_core[perm[k]] = shuffled_result.is_core[k];
  }
  for (const auto& [point, cluster] : shuffled_result.extra_memberships) {
    mapped.extra_memberships.emplace_back(perm[point], cluster);
  }
  std::sort(mapped.extra_memberships.begin(),
            mapped.extra_memberships.end());
  EXPECT_TRUE(SameClusters(base, mapped)) << algo.name;
  EXPECT_TRUE(SameCoreFlags(base, mapped)) << algo.name;
}

TEST_P(MetamorphicTest, DuplicatingAPointNeverShrinksClusters) {
  // Adding a copy of an existing point can only add density: no clustered
  // point may become noise and no core point may lose core status.
  const AlgoCase algo = GetParam();
  const Dataset data = ClusteredDataset(2, 250, 3, 60.0, 3.0, 1511);
  const DbscanParams params{6.0, 5};
  const Clustering base = algo.run(data, params);

  Dataset bigger = data;
  bigger.Add(data.point(0));
  const Clustering grown = algo.run(bigger, params);
  for (size_t i = 0; i < data.size(); ++i) {
    if (base.is_core[i]) EXPECT_TRUE(grown.is_core[i]) << algo.name;
    if (base.label[i] != kNoise) {
      EXPECT_NE(grown.label[i], kNoise) << algo.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Algos, MetamorphicTest,
    ::testing::Values(AlgoCase{"KDD96", RunKdd96Wrap},
                      AlgoCase{"CIT08", RunGridbscanWrap},
                      AlgoCase{"OurExact", RunExactWrap},
                      AlgoCase{"OurApprox", RunApproxWrap}),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace adbscan
