// Differential test of the batched distance kernels (geom/kernels.h): every
// SIMD dispatch path must return results BIT-IDENTICAL to the scalar
// reference (geom/point.h SquaredDistance) across dimensions, batch sizes
// covering all tail remainders, gathered/duplicated/degenerate inputs, and
// near-overflow coordinates. This is the lockdown for the determinism
// contract the clustering pipelines rely on.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "geom/dataset.h"
#include "geom/kernels.h"
#include "geom/point.h"
#include "geom/soa.h"
#include "obs/metrics.h"
#include "test_helpers.h"
#include "util/rng.h"

namespace adbscan {
namespace simd {
namespace {

using testing_helpers::RandomDataset;

// All kernel kinds this binary + CPU can run, scalar always first.
std::vector<KernelKind> SupportedKernels() {
  std::vector<KernelKind> kinds{KernelKind::kScalar};
  for (KernelKind k : {KernelKind::kAvx2, KernelKind::kNeon}) {
    if (KernelSupported(k)) kinds.push_back(k);
  }
  return kinds;
}

// Restores the process-wide kernel selection when a test scope ends.
class KernelGuard {
 public:
  KernelGuard() : saved_(ActiveKernel()) {}
  ~KernelGuard() { SetKernel(saved_); }

 private:
  KernelKind saved_;
};

uint64_t Bits(double x) { return std::bit_cast<uint64_t>(x); }

// Reference: the shared scalar distance everyone in the repo uses.
std::vector<double> ReferenceDists(const double* q, const Dataset& data,
                                   const std::vector<uint32_t>& ids) {
  std::vector<double> out;
  out.reserve(ids.size());
  for (uint32_t id : ids) {
    out.push_back(SquaredDistance(q, data.point(id), data.dim()));
  }
  return out;
}

void ExpectBitIdentical(const std::vector<double>& expected,
                        const double* actual, const std::string& context) {
  for (size_t j = 0; j < expected.size(); ++j) {
    ASSERT_EQ(Bits(expected[j]), Bits(actual[j]))
        << context << " lane " << j << ": expected " << expected[j] << " got "
        << actual[j];
  }
}

// Batch sizes covering every remainder mod the lane width around the chunk
// boundaries a scalar loop never sees.
const size_t kBatchSizes[] = {1,  2,  3,  4,   5,   6,   7,   8,   9,
                              15, 16, 17, 31,  32,  33,  63,  64,  65,
                              127, 128, 129, 255, 256, 257};

TEST(Kernels, AllPathsBitIdenticalToScalarReference) {
  KernelGuard guard;
  for (int dim = 2; dim <= 10; ++dim) {
    const Dataset data = RandomDataset(dim, 300, -1e4, 1e4, 7000 + dim);
    const SoaBlock block(data);
    std::vector<uint32_t> all_ids(data.size());
    for (size_t i = 0; i < data.size(); ++i) all_ids[i] = i;
    std::vector<double> out(PaddedCount(data.size()));
    const double* q = data.point(dim);  // a real point as the query
    const std::vector<double> expected = ReferenceDists(q, data, all_ids);
    for (KernelKind kind : SupportedKernels()) {
      ASSERT_TRUE(SetKernel(kind));
      for (size_t n : kBatchSizes) {
        if (n > data.size()) continue;
        SquaredDists(q, SoaSpan{block.span().base, block.stride(), dim, n},
                     out.data());
        ExpectBitIdentical(
            {expected.begin(), expected.begin() + n}, out.data(),
            std::string(KernelName(kind)) + " dim=" + std::to_string(dim) +
                " n=" + std::to_string(n));
      }
    }
  }
}

TEST(Kernels, GatheredSubsetsAndUnalignedQueries) {
  KernelGuard guard;
  for (int dim : {2, 5, 10}) {
    const Dataset data = RandomDataset(dim, 300, -1e3, 1e3, 7100 + dim);
    // Odd-id gather: the SoA block's memory layout has no relation to the
    // dataset's, exercising the (data, ids, count) constructor.
    std::vector<uint32_t> odd_ids;
    for (uint32_t i = 1; i < data.size(); i += 2) odd_ids.push_back(i);
    const SoaBlock block(data, odd_ids.data(), odd_ids.size());
    // The query comes from a deliberately misaligned buffer: kernels demand
    // alignment of the SoA block only, never of q or out.
    std::vector<double> raw(dim + 1);
    double* q = raw.data() + 1;
    for (int i = 0; i < dim; ++i) q[i] = data.point(2)[i];
    const std::vector<double> expected = ReferenceDists(q, data, odd_ids);
    std::vector<double> out(PaddedCount(odd_ids.size()) + 1);
    for (KernelKind kind : SupportedKernels()) {
      ASSERT_TRUE(SetKernel(kind));
      // Unaligned out pointer as well.
      SquaredDists(q, block.span(), out.data() + 1);
      ExpectBitIdentical(expected, out.data() + 1,
                         std::string(KernelName(kind)) +
                             " gathered dim=" + std::to_string(dim));
    }
  }
}

TEST(Kernels, DuplicatesZerosAndNearOverflowCoordinates) {
  KernelGuard guard;
  const int dim = 4;
  Dataset data(dim);
  // Duplicates of one point, the origin, and coordinates so large their
  // squared differences overflow to infinity — the kernels must agree with
  // the scalar reference even on inf (bitwise: same sign, same payload).
  for (int rep = 0; rep < 7; ++rep) data.Add({1.5, -2.5, 3.5, -4.5});
  data.Add({0.0, 0.0, 0.0, 0.0});
  data.Add({1e200, -1e200, 1e200, -1e200});
  data.Add({-1e200, 1e200, -1e200, 1e200});
  data.Add({std::numeric_limits<double>::max(), 0.0, 0.0, 0.0});
  const SoaBlock block(data);
  std::vector<uint32_t> all_ids(data.size());
  for (size_t i = 0; i < data.size(); ++i) all_ids[i] = i;
  std::vector<double> out(PaddedCount(data.size()));
  for (size_t qi : {size_t{0}, data.size() - 3, data.size() - 1}) {
    const double* q = data.point(qi);
    const std::vector<double> expected = ReferenceDists(q, data, all_ids);
    for (KernelKind kind : SupportedKernels()) {
      ASSERT_TRUE(SetKernel(kind));
      SquaredDists(q, block.span(), out.data());
      ExpectBitIdentical(expected, out.data(),
                         std::string(KernelName(kind)) +
                             " degenerate q=" + std::to_string(qi));
    }
  }
}

TEST(Kernels, CountWithinMatchesScalarEarlyExit) {
  KernelGuard guard;
  const Dataset data = RandomDataset(3, 600, 0.0, 100.0, 7300);
  const SoaBlock block(data);
  const double* q = data.point(0);
  const double eps2 = 30.0 * 30.0;
  // Reference: scalar loop with early exit at stop_at.
  auto reference = [&](size_t stop_at) {
    size_t count = 0;
    for (size_t j = 0; j < data.size() && count < stop_at; ++j) {
      if (SquaredDistance(q, data.point(j), 3) <= eps2) ++count;
    }
    return count;
  };
  for (KernelKind kind : SupportedKernels()) {
    ASSERT_TRUE(SetKernel(kind));
    for (size_t stop_at : {size_t{1}, size_t{5}, size_t{100}, SIZE_MAX}) {
      EXPECT_EQ(CountWithin(q, block.span(), eps2, stop_at),
                reference(stop_at))
          << KernelName(kind) << " stop_at=" << stop_at;
    }
    EXPECT_EQ(CountWithin(q, block.span(), eps2, 0), 0u);
    EXPECT_EQ(AnyWithin(q, block.span(), eps2), reference(1) > 0);
    EXPECT_FALSE(AnyWithin(q, block.span(), -1.0));
  }
}

TEST(Kernels, CollectWithinPreservesScanOrder) {
  KernelGuard guard;
  const Dataset data = RandomDataset(5, 500, 0.0, 10.0, 7400);
  const SoaBlock block(data);
  std::vector<uint32_t> ids(data.size());
  for (size_t i = 0; i < data.size(); ++i) ids[i] = 1000 + i;  // remapped
  const double* q = data.point(7);
  const double eps2 = 3.0 * 3.0;
  std::vector<uint32_t> expected;
  for (size_t j = 0; j < data.size(); ++j) {
    if (SquaredDistance(q, data.point(j), 5) <= eps2) {
      expected.push_back(ids[j]);
    }
  }
  ASSERT_FALSE(expected.empty());
  for (KernelKind kind : SupportedKernels()) {
    ASSERT_TRUE(SetKernel(kind));
    std::vector<uint32_t> out;
    CollectWithin(q, block.span(), eps2, ids.data(), &out);
    EXPECT_EQ(out, expected) << KernelName(kind);
  }
}

TEST(Kernels, NearestInBlockFindsFirstStrictMinimum) {
  KernelGuard guard;
  Dataset data(2);
  // Two points at the exact same distance from the query: the FIRST must
  // win, as in a scalar `if (d2 < best)` scan.
  data.Add({5.0, 0.0});
  data.Add({3.0, 0.0});   // d2 = 9, the unique min, index 1
  data.Add({-3.0, 0.0});  // d2 = 9 as well, must lose to index 1
  data.Add({4.0, 0.0});
  const SoaBlock block(data);
  const double q[2] = {0.0, 0.0};
  for (KernelKind kind : SupportedKernels()) {
    ASSERT_TRUE(SetKernel(kind));
    const BlockNearest bn = NearestInBlock(q, block.span());
    EXPECT_EQ(bn.index, 1u) << KernelName(kind);
    EXPECT_EQ(Bits(bn.squared_dist), Bits(9.0)) << KernelName(kind);
  }
  // Empty span: index == count, infinite distance.
  const BlockNearest none = NearestInBlock(q, SoaSpan{});
  EXPECT_EQ(none.index, 0u);
  EXPECT_TRUE(std::isinf(none.squared_dist));
}

TEST(Kernels, BlockVsBlockMatchesRowByRowReference) {
  KernelGuard guard;
  for (int dim : {2, 7}) {
    const Dataset da = RandomDataset(dim, 13, -50.0, 50.0, 7500 + dim);
    const Dataset db = RandomDataset(dim, 21, -50.0, 50.0, 7600 + dim);
    const SoaBlock ba(da);
    const SoaBlock bb(db);
    const size_t row = PaddedCount(db.size());
    std::vector<double> out(da.size() * row);
    for (KernelKind kind : SupportedKernels()) {
      ASSERT_TRUE(SetKernel(kind));
      BlockVsBlock(ba.span(), bb.span(), out.data());
      for (size_t ja = 0; ja < da.size(); ++ja) {
        for (size_t jb = 0; jb < db.size(); ++jb) {
          ASSERT_EQ(
              Bits(SquaredDistance(da.point(ja), db.point(jb), dim)),
              Bits(out[ja * row + jb]))
              << KernelName(kind) << " dim=" << dim << " (" << ja << ","
              << jb << ")";
        }
      }
    }
  }
}

TEST(Kernels, SoaBlockLayoutAndPadding) {
  const Dataset data = RandomDataset(3, 10, 0.0, 1.0, 7700);
  const SoaBlock block(data);
  EXPECT_EQ(block.count(), 10u);
  EXPECT_EQ(block.stride(), PaddedCount(10));  // 12
  EXPECT_EQ(reinterpret_cast<uintptr_t>(block.span().base) % kSoaAlignment,
            0u);
  for (int i = 0; i < 3; ++i) {
    for (size_t j = 0; j < block.count(); ++j) {
      EXPECT_EQ(Bits(block.at(i, j)), Bits(data.point(j)[i]));
    }
    // Padding replicates the last real point (finite, overflow-safe).
    for (size_t j = block.count(); j < block.stride(); ++j) {
      EXPECT_EQ(Bits(block.span().base[i * block.stride() + j]),
                Bits(data.point(9)[i]));
    }
  }
  // Deep copy is independent of the original.
  SoaBlock copy(block);
  EXPECT_NE(copy.span().base, block.span().base);
  EXPECT_EQ(Bits(copy.at(2, 9)), Bits(block.at(2, 9)));
}

TEST(Kernels, DatasetSharedSoaViewInvalidatesOnAdd) {
  Dataset data(2);
  data.Add({1.0, 2.0});
  auto soa1 = data.Soa();
  EXPECT_EQ(soa1->count(), 1u);
  data.Add({3.0, 4.0});
  auto soa2 = data.Soa();
  EXPECT_EQ(soa2->count(), 2u);
  EXPECT_EQ(soa1->count(), 1u);  // old view still valid, just stale
  EXPECT_EQ(data.Soa().get(), soa2.get());  // cached until the next Add
}

TEST(Kernels, SelectionApiAndNames) {
  KernelGuard guard;
  EXPECT_TRUE(KernelSupported(KernelKind::kScalar));
  EXPECT_TRUE(KernelSupported(KernelKind::kAuto));
  EXPECT_TRUE(SetKernel(KernelKind::kAuto));
  EXPECT_NE(ActiveKernel(), KernelKind::kAuto);  // always resolved
  EXPECT_TRUE(SetKernel(KernelKind::kScalar));
  EXPECT_EQ(ActiveKernel(), KernelKind::kScalar);
  // An unsupported kind is refused and leaves the selection unchanged.
  for (KernelKind k : {KernelKind::kAvx2, KernelKind::kNeon}) {
    if (!KernelSupported(k)) {
      EXPECT_FALSE(SetKernel(k));
      EXPECT_EQ(ActiveKernel(), KernelKind::kScalar);
    }
  }
  KernelKind parsed;
  EXPECT_TRUE(ParseKernelKind("scalar", &parsed));
  EXPECT_EQ(parsed, KernelKind::kScalar);
  EXPECT_TRUE(ParseKernelKind("avx2", &parsed));
  EXPECT_TRUE(ParseKernelKind("neon", &parsed));
  EXPECT_TRUE(ParseKernelKind("auto", &parsed));
  EXPECT_FALSE(ParseKernelKind("sse9", &parsed));
  EXPECT_FALSE(ParseKernelKind("", &parsed));
  EXPECT_STREQ(KernelName(KernelKind::kAvx2), "avx2");
}

TEST(Kernels, EmitsBatchCallAndLaneMetrics) {
  KernelGuard guard;
  ASSERT_TRUE(SetKernel(KernelKind::kScalar));
  const Dataset data = RandomDataset(3, 37, 0.0, 1.0, 7800);
  const SoaBlock block(data);
  obs::MetricsRegistry::Global().Reset();
  obs::MetricsRegistry::SetEnabled(true);
  std::vector<double> out(PaddedCount(data.size()));
  SquaredDists(data.point(0), block.span(), out.data());
  CountWithin(data.point(0), block.span(), 0.5, SIZE_MAX);
  obs::MetricsSnapshot snap = obs::MetricsRegistry::Global().Snapshot();
  obs::MetricsRegistry::SetEnabled(false);
  EXPECT_EQ(snap.counters.at("kernel.batch_calls"), 2u);
  EXPECT_EQ(snap.counters.at("kernel.lanes_filled"), 2u * 37u);
  EXPECT_EQ(snap.counters.at("kernel.lanes_padded"), PaddedCount(37) - 37);
}

}  // namespace
}  // namespace simd
}  // namespace adbscan
