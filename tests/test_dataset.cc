#include <gtest/gtest.h>

#include "geom/dataset.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::MakeDataset;

TEST(Dataset, StartsEmpty) {
  Dataset data(3);
  EXPECT_TRUE(data.empty());
  EXPECT_EQ(data.size(), 0u);
  EXPECT_EQ(data.dim(), 3);
}

TEST(Dataset, AddReturnsSequentialIds) {
  Dataset data(2);
  EXPECT_EQ(data.Add({1.0, 2.0}), 0u);
  EXPECT_EQ(data.Add({3.0, 4.0}), 1u);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_DOUBLE_EQ(data.point(1)[0], 3.0);
  EXPECT_DOUBLE_EQ(data.point(1)[1], 4.0);
}

TEST(Dataset, FlatConstructor) {
  Dataset data(2, {0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  ASSERT_EQ(data.size(), 3u);
  EXPECT_DOUBLE_EQ(data.point(2)[0], 4.0);
  EXPECT_DOUBLE_EQ(data.point(2)[1], 5.0);
}

TEST(Dataset, BoundingBoxCoversAllPoints) {
  const Dataset data = MakeDataset({{1.0, 5.0}, {-2.0, 3.0}, {4.0, -1.0}});
  const Box b = data.BoundingBox();
  EXPECT_DOUBLE_EQ(b.lo[0], -2.0);
  EXPECT_DOUBLE_EQ(b.hi[0], 4.0);
  EXPECT_DOUBLE_EQ(b.lo[1], -1.0);
  EXPECT_DOUBLE_EQ(b.hi[1], 5.0);
}

TEST(Dataset, BoundingBoxOfSinglePointIsDegenerate) {
  const Dataset data = MakeDataset({{7.0, 8.0, 9.0}});
  const Box b = data.BoundingBox();
  for (int i = 0; i < 3; ++i) EXPECT_DOUBLE_EQ(b.lo[i], b.hi[i]);
}

TEST(Dataset, CopyIsIndependent) {
  Dataset a(1);
  a.Add({1.0});
  Dataset b = a;
  b.Add({2.0});
  EXPECT_EQ(a.size(), 1u);
  EXPECT_EQ(b.size(), 2u);
}

TEST(DatasetDeath, RejectsInvalidDimension) {
  EXPECT_DEATH(Dataset(0), "");
  EXPECT_DEATH(Dataset(kMaxDim + 1), "");
}

TEST(DatasetDeath, RejectsMisalignedFlatArray) {
  EXPECT_DEATH(Dataset(3, {1.0, 2.0}), "");
}

TEST(DatasetDeath, RejectsWrongArityAdd) {
  Dataset data(2);
  EXPECT_DEATH(data.Add({1.0, 2.0, 3.0}), "");
}

}  // namespace
}  // namespace adbscan
