#include <gtest/gtest.h>

#include <algorithm>

#include "core/brute_reference.h"
#include "core/kdd96.h"
#include "eval/compare.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;

TEST(Kdd96, AllIndexBackendsAgree) {
  const Dataset data = ClusteredDataset(3, 400, 4, 100.0, 5.0, 501);
  const DbscanParams params{8.0, 5};
  Kdd96Options rtree_opts, kdtree_opts, brute_opts;
  rtree_opts.index = Kdd96Options::IndexKind::kRTree;
  kdtree_opts.index = Kdd96Options::IndexKind::kKdTree;
  brute_opts.index = Kdd96Options::IndexKind::kBruteForce;
  const Clustering a = Kdd96Dbscan(data, params, rtree_opts);
  const Clustering b = Kdd96Dbscan(data, params, kdtree_opts);
  const Clustering c = Kdd96Dbscan(data, params, brute_opts);
  EXPECT_TRUE(SameClusters(a, b));
  EXPECT_TRUE(SameClusters(a, c));
  EXPECT_TRUE(SameCoreFlags(a, b));
  EXPECT_TRUE(SameCoreFlags(a, c));
}

TEST(Kdd96, ClassicModeKeepsFirstClusterOnly) {
  // Border point 4 is reachable from both clusters; classic mode reports it
  // in exactly one, faithful mode in both.
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {1.0, 0.0}, {0.5, 0.5}, {0.5, -0.5},   // cluster A
      {2.5, 0.0},                                         // shared border
      {4.0, 0.0}, {5.0, 0.0}, {4.5, 0.5}, {4.5, -0.5},   // cluster B
  });
  const DbscanParams params{1.6, 4};
  Kdd96Options classic;
  classic.assign_border_to_all = false;
  const Clustering c_classic = Kdd96Dbscan(data, params, classic);
  const Clustering c_faithful = Kdd96Dbscan(data, params);
  EXPECT_EQ(c_classic.num_clusters, 2);
  EXPECT_EQ(c_faithful.num_clusters, 2);
  EXPECT_TRUE(c_classic.extra_memberships.empty());
  ASSERT_EQ(c_faithful.extra_memberships.size(), 1u);
  EXPECT_EQ(c_faithful.extra_memberships[0].first, 4u);
  // Primary labels of everything except the shared border agree with the
  // reference either way.
  EXPECT_TRUE(SameClusters(c_faithful, BruteForceDbscan(data, params)));
}

TEST(Kdd96, NoiseStaysNoise) {
  const Dataset data = MakeDataset(
      {{0.0, 0.0}, {50.0, 50.0}, {100.0, 0.0}});
  const Clustering c = Kdd96Dbscan(data, DbscanParams{5.0, 2});
  EXPECT_EQ(c.num_clusters, 0);
  for (int32_t l : c.label) EXPECT_EQ(l, kNoise);
}

TEST(Kdd96, NoiseUpgradedToBorderDuringExpansion) {
  // Point 0 (isolated-looking, processed first) is labeled noise, then the
  // cluster grown from the dense block reclaims it as border.
  const Dataset data = MakeDataset({
      {-1.2, 0.0},                                      // border, seen first
      {0.0, 0.0}, {1.0, 0.0}, {0.0, 1.0}, {1.0, 1.0},   // dense block
  });
  const DbscanParams params{1.5, 4};
  const Clustering c = Kdd96Dbscan(data, params);
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.label[0], 0);
  EXPECT_FALSE(c.is_core[0]);
}

TEST(Kdd96, DegenerateAllWithinEps) {
  // The footnote-1 input: every point within ε of every other. One cluster,
  // everything core.
  Dataset data(3);
  Rng rng(503);
  for (int i = 0; i < 200; ++i) {
    data.Add({rng.NextDouble(0, 1), rng.NextDouble(0, 1),
              rng.NextDouble(0, 1)});
  }
  const Clustering c = Kdd96Dbscan(data, DbscanParams{10.0, 100});
  EXPECT_EQ(c.num_clusters, 1);
  EXPECT_EQ(c.NumCorePoints(), 200u);
  EXPECT_EQ(c.NumNoisePoints(), 0u);
}

TEST(Kdd96, ClassicAndFaithfulAgreeUpToSharedBorders) {
  // The two modes differ only in border multi-membership: identical core
  // flags, identical cluster count, and the classic labeling is a
  // restriction of the faithful cluster sets.
  const Dataset data = ClusteredDataset(2, 400, 4, 80.0, 4.0, 505);
  const DbscanParams params{6.0, 5};
  Kdd96Options classic;
  classic.assign_border_to_all = false;
  const Clustering c = Kdd96Dbscan(data, params, classic);
  const Clustering f = Kdd96Dbscan(data, params);
  EXPECT_TRUE(SameCoreFlags(c, f));
  EXPECT_EQ(c.num_clusters, f.num_clusters);
  const auto faithful_sets = f.ClusterSets();
  for (size_t i = 0; i < data.size(); ++i) {
    if (c.label[i] == kNoise) {
      EXPECT_EQ(f.label[i], kNoise);
      continue;
    }
    // The classic cluster of i must be one of i's faithful clusters.
    bool found = false;
    for (const auto& set : faithful_sets) {
      if (std::binary_search(set.begin(), set.end(),
                             static_cast<uint32_t>(i))) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "point " << i;
  }
}

TEST(Kdd96, MinPtsOneEveryPointClustered) {
  const Dataset data = MakeDataset({{0.0, 0.0}, {100.0, 0.0}, {0.5, 0.0}});
  const Clustering c = Kdd96Dbscan(data, DbscanParams{1.0, 1});
  EXPECT_EQ(c.num_clusters, 2);
  EXPECT_EQ(c.NumNoisePoints(), 0u);
  EXPECT_EQ(c.label[0], c.label[2]);
  EXPECT_NE(c.label[0], c.label[1]);
}

}  // namespace
}  // namespace adbscan
