#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <set>
#include <vector>

#include "core/brute_reference.h"
#include "core/gunawan2d.h"
#include "eval/compare.h"
#include "gen/seed_spreader.h"
#include "geom/delaunay2d.h"
#include "geom/point.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

std::vector<uint32_t> AllIds(const Dataset& data) {
  std::vector<uint32_t> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0u);
  return ids;
}

double BruteNearestSq(const Dataset& data, const double* q) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < data.size(); ++i) {
    best = std::min(best, SquaredDistance(q, data.point(i), 2));
  }
  return best;
}

TEST(Delaunay2d, TriangleCountMatchesEulerBound) {
  // For n sites with h on the convex hull: triangles = 2n - 2 - h.
  const Dataset data = MakeDataset({
      {0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}, {10.0, 10.0}, {5.0, 5.0},
  });
  const Delaunay2d dt(data, AllIds(data));
  // 5 sites, 4 on the hull: 2*5 - 2 - 4 = 4 triangles.
  EXPECT_EQ(dt.num_triangles(), 4u);
  EXPECT_EQ(dt.num_sites(), 5u);
  // The center connects to all four corners.
  EXPECT_EQ(dt.adjacency()[4].size(), 4u);
}

TEST(Delaunay2d, EmptyCircumcircleProperty) {
  // No site may lie strictly inside the circumcircle of any triangle;
  // verified indirectly: each site's Delaunay neighbors must include its
  // nearest other site (a classic Delaunay consequence).
  const Dataset data = RandomDataset(2, 150, 0.0, 100.0, 1701);
  const Delaunay2d dt(data, AllIds(data));
  for (uint32_t s = 0; s < data.size(); ++s) {
    double best = std::numeric_limits<double>::infinity();
    uint32_t nearest = s;
    for (uint32_t t = 0; t < data.size(); ++t) {
      if (t == s) continue;
      const double d2 = SquaredDistance(data.point(s), data.point(t), 2);
      if (d2 < best) {
        best = d2;
        nearest = t;
      }
    }
    const auto& nbs = dt.adjacency()[s];
    EXPECT_NE(std::find(nbs.begin(), nbs.end(), nearest), nbs.end())
        << "site " << s << " misses its nearest neighbor in the graph";
  }
}

TEST(Delaunay2d, GreedyNearestMatchesBruteForce) {
  const Dataset data = RandomDataset(2, 300, 0.0, 100.0, 1703);
  const Delaunay2d dt(data, AllIds(data));
  Rng rng(1705);
  for (int trial = 0; trial < 200; ++trial) {
    double q[2] = {rng.NextDouble(-20, 120), rng.NextDouble(-20, 120)};
    EXPECT_DOUBLE_EQ(dt.Nearest(q).squared_dist, BruteNearestSq(data, q))
        << "trial " << trial;
  }
}

TEST(Delaunay2d, NearestOnClusteredData) {
  const Dataset data = ClusteredDataset(2, 250, 4, 100.0, 3.0, 1707);
  const Delaunay2d dt(data, AllIds(data));
  Rng rng(1709);
  for (int trial = 0; trial < 200; ++trial) {
    double q[2] = {rng.NextDouble(0, 100), rng.NextDouble(0, 100)};
    EXPECT_DOUBLE_EQ(dt.Nearest(q).squared_dist, BruteNearestSq(data, q));
  }
}

TEST(Delaunay2d, QueriesAtSitesReturnZero) {
  const Dataset data = RandomDataset(2, 100, 0.0, 50.0, 1711);
  const Delaunay2d dt(data, AllIds(data));
  for (size_t i = 0; i < data.size(); ++i) {
    const auto nn = dt.Nearest(data.point(i));
    EXPECT_DOUBLE_EQ(nn.squared_dist, 0.0);
  }
}

TEST(Delaunay2d, HandlesDuplicatesAndTinySets) {
  Dataset data(2);
  data.Add({1.0, 1.0});
  data.Add({1.0, 1.0});
  data.Add({2.0, 2.0});
  const Delaunay2d dt(data, AllIds(data));
  EXPECT_EQ(dt.num_sites(), 2u);  // duplicates collapsed
  const double q[] = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(dt.Nearest(q).squared_dist, 2.0);

  Dataset one(2);
  one.Add({5.0, 5.0});
  const Delaunay2d single(one, {0});
  EXPECT_DOUBLE_EQ(single.Nearest(q).squared_dist, 50.0);
}

TEST(Delaunay2d, CollinearInputFallsBackCorrectly) {
  Dataset data(2);
  for (int i = 0; i < 20; ++i) data.Add({i * 1.0, 3.0});
  const Delaunay2d dt(data, AllIds(data));
  EXPECT_EQ(dt.num_triangles(), 0u);
  Rng rng(1713);
  for (int trial = 0; trial < 50; ++trial) {
    double q[2] = {rng.NextDouble(-5, 25), rng.NextDouble(-5, 10)};
    EXPECT_DOUBLE_EQ(dt.Nearest(q).squared_dist, BruteNearestSq(data, q));
  }
}

TEST(Delaunay2d, GridAlignedPointsAreRobust) {
  // Cocircular degeneracies everywhere: a perfect lattice.
  Dataset data(2);
  for (int x = 0; x < 12; ++x) {
    for (int y = 0; y < 12; ++y) data.Add({x * 1.0, y * 1.0});
  }
  const Delaunay2d dt(data, AllIds(data));
  Rng rng(1715);
  for (int trial = 0; trial < 100; ++trial) {
    double q[2] = {rng.NextDouble(-2, 14), rng.NextDouble(-2, 14)};
    EXPECT_DOUBLE_EQ(dt.Nearest(q).squared_dist, BruteNearestSq(data, q))
        << "trial " << trial;
  }
}

TEST(Gunawan2dDelaunay, MatchesKdTreeBackendAndReference) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    const Dataset data = ClusteredDataset(2, 300, 4, 100.0, 4.0, 1800 + seed);
    const DbscanParams params{6.0, 5};
    const Clustering ref = BruteForceDbscan(data, params);
    Gunawan2dOptions delaunay;
    delaunay.backend = Gunawan2dOptions::NnBackend::kDelaunay;
    EXPECT_TRUE(SameClusters(ref, Gunawan2dDbscan(data, params, delaunay)))
        << "seed " << seed;
  }
}

TEST(Gunawan2dDelaunay, SpreaderWorkload) {
  SeedSpreaderParams p;
  p.dim = 2;
  p.n = 800;
  p.domain_hi = 2000.0;
  p.point_radius = 15.0;
  p.shift_distance = 10.0;
  p.counter_reset = 30;
  p.noise_fraction = 0.05;
  const Dataset data = GenerateSeedSpreader(p, 1807);
  const DbscanParams params{30.0, 8};
  Gunawan2dOptions delaunay;
  delaunay.backend = Gunawan2dOptions::NnBackend::kDelaunay;
  EXPECT_TRUE(SameClusters(BruteForceDbscan(data, params),
                           Gunawan2dDbscan(data, params, delaunay)));
}

}  // namespace
}  // namespace adbscan
