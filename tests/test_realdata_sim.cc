#include <gtest/gtest.h>

#include "core/approx_dbscan.h"
#include "gen/realdata_sim.h"

namespace adbscan {
namespace {

TEST(RealDataSim, DimensionsMatchTheRealDatasets) {
  EXPECT_EQ(Pamap2Like(100, 1).dim(), 4);     // PAMAP2: 4 PCA components
  EXPECT_EQ(FarmLike(100, 1).dim(), 5);       // Farm: 5D VZ-features
  EXPECT_EQ(HouseholdLike(100, 1).dim(), 7);  // Household: 7 attributes
}

TEST(RealDataSim, CardinalityAndDeterminism) {
  for (auto gen : {Pamap2Like, FarmLike, HouseholdLike}) {
    const Dataset a = gen(5000, 42);
    EXPECT_EQ(a.size(), 5000u);
    const Dataset b = gen(5000, 42);
    EXPECT_EQ(a.coords(), b.coords());
    const Dataset c = gen(5000, 43);
    EXPECT_NE(a.coords(), c.coords());
  }
}

TEST(RealDataSim, StaysInNormalizedDomain) {
  for (auto gen : {Pamap2Like, FarmLike, HouseholdLike}) {
    const Dataset data = gen(3000, 7);
    for (size_t i = 0; i < data.size(); ++i) {
      for (int j = 0; j < data.dim(); ++j) {
        EXPECT_GE(data.point(i)[j], 0.0);
        EXPECT_LE(data.point(i)[j], 1e5);
      }
    }
  }
}

TEST(RealDataSim, HasDensityStructureNotUniform) {
  // DBSCAN at the paper's default (eps=5000, MinPts=100, scaled-down n)
  // should find several clusters and leave some noise — i.e. the stand-ins
  // are neither one blob nor uniform dust.
  struct Expectation {
    Dataset data;
    const char* name;
  };
  const Expectation cases[] = {
      {Pamap2Like(30000, 11), "pamap2"},
      {FarmLike(30000, 12), "farm"},
      {HouseholdLike(30000, 13), "household"},
  };
  for (const auto& [data, name] : cases) {
    const Clustering c = ApproxDbscan(data, DbscanParams{5000.0, 100}, 0.001);
    EXPECT_GE(c.num_clusters, 2) << name;
    EXPECT_LT(c.num_clusters, 100) << name;
    EXPECT_GT(c.NumNoisePoints(), 0u) << name;
    EXPECT_LT(c.NumNoisePoints(), data.size() / 2) << name;
  }
}

}  // namespace
}  // namespace adbscan
