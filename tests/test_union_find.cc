#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "ds/union_find.h"
#include "util/rng.h"

namespace adbscan {
namespace {

TEST(UnionFind, StartsFullyDisjoint) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFind, UnionMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_EQ(uf.SetSize(0), 2u);
}

TEST(UnionFind, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SetSize(3), 4u);
  EXPECT_FALSE(uf.Connected(0, 4));
}

TEST(UnionFind, ComponentIdsAreDenseAndOrdered) {
  UnionFind uf(5);
  uf.Union(3, 4);
  uf.Union(1, 3);
  const std::vector<uint32_t> ids = uf.ComponentIds();
  // First appearance order: 0 -> 0; 1 (with 3,4) -> 1; 2 -> 2.
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 1u);
  EXPECT_EQ(ids[2], 2u);
  EXPECT_EQ(ids[3], 1u);
  EXPECT_EQ(ids[4], 1u);
}

TEST(UnionFind, MatchesNaiveReferenceOnRandomOperations) {
  const uint32_t n = 200;
  UnionFind uf(n);
  std::vector<uint32_t> naive(n);
  for (uint32_t i = 0; i < n; ++i) naive[i] = i;
  auto naive_union = [&](uint32_t a, uint32_t b) {
    const uint32_t ra = naive[a], rb = naive[b];
    if (ra == rb) return;
    for (uint32_t i = 0; i < n; ++i) {
      if (naive[i] == rb) naive[i] = ra;
    }
  };
  Rng rng(123);
  for (int op = 0; op < 500; ++op) {
    const uint32_t a = static_cast<uint32_t>(rng.NextBounded(n));
    const uint32_t b = static_cast<uint32_t>(rng.NextBounded(n));
    uf.Union(a, b);
    naive_union(a, b);
  }
  std::set<uint32_t> distinct;
  for (uint32_t i = 0; i < n; ++i) {
    distinct.insert(naive[i]);
    for (uint32_t j = 0; j < n; ++j) {
      EXPECT_EQ(uf.Connected(i, j), naive[i] == naive[j])
          << "mismatch at " << i << "," << j;
    }
  }
  EXPECT_EQ(uf.NumSets(), distinct.size());
}

TEST(UnionFind, SingletonUniverse) {
  UnionFind uf(1);
  EXPECT_EQ(uf.Find(0), 0u);
  EXPECT_FALSE(uf.Union(0, 0));
  EXPECT_EQ(uf.NumSets(), 1u);
}

TEST(UnionFindConcurrent, SequentialUseMatchesSequentialProtocol) {
  // The concurrent entry points must be drop-in replacements when called
  // from one thread.
  UnionFind uf(6);
  EXPECT_TRUE(uf.UniteConcurrent(0, 1));
  EXPECT_FALSE(uf.UniteConcurrent(1, 0));
  EXPECT_TRUE(uf.UniteConcurrent(2, 3));
  EXPECT_TRUE(uf.UniteConcurrent(1, 2));
  EXPECT_EQ(uf.FindConcurrent(0), uf.FindConcurrent(3));
  EXPECT_NE(uf.FindConcurrent(0), uf.FindConcurrent(4));
  EXPECT_EQ(uf.NumSets(), 3u);
}

// The property the DBSCAN merge phases rely on: for ANY interleaving of
// concurrent unions, the resulting partition equals the sequential result
// of the same union set (components are union-order-blind), and NumSets
// stays exact. Several rounds with different seeds and thread counts.
TEST(UnionFindConcurrent, StressMatchesSequentialReference) {
  for (uint64_t round = 0; round < 6; ++round) {
    const uint32_t n = 600;
    const int num_threads = 2 + static_cast<int>(round % 3);  // 2..4
    // A union workload with genuine contention: few components, many
    // redundant edges, plus some long chains.
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    Rng rng(1000 + round);
    for (int e = 0; e < 2500; ++e) {
      edges.emplace_back(static_cast<uint32_t>(rng.NextBounded(n)),
                         static_cast<uint32_t>(rng.NextBounded(n / 4 + 1)));
    }
    for (uint32_t i = 0; i + 1 < n / 3; ++i) edges.emplace_back(i, i + 1);

    UnionFind reference(n);
    for (const auto& [a, b] : edges) reference.Union(a, b);

    UnionFind concurrent(n);
    std::atomic<size_t> next{0};
    std::atomic<uint32_t> performed{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < num_threads; ++t) {
      threads.emplace_back([&] {
        uint32_t mine = 0;
        size_t i;
        while ((i = next.fetch_add(1, std::memory_order_relaxed)) <
               edges.size()) {
          if (concurrent.UniteConcurrent(edges[i].first, edges[i].second)) {
            ++mine;
          }
          // Interleave finds so halving races with linking.
          (void)concurrent.FindConcurrent(edges[i].second);
        }
        performed.fetch_add(mine, std::memory_order_relaxed);
      });
    }
    for (std::thread& t : threads) t.join();

    // Exactly one UniteConcurrent call wins per component reduction.
    EXPECT_EQ(performed.load(), n - concurrent.NumSets()) << "round " << round;
    EXPECT_EQ(concurrent.NumSets(), reference.NumSets()) << "round " << round;
    // Identical partition AND identical canonical numbering.
    EXPECT_EQ(concurrent.ComponentIds(), reference.ComponentIds())
        << "round " << round;
  }
}

}  // namespace
}  // namespace adbscan
