#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "core/brute_reference.h"
#include "core/optics.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;
using testing_helpers::MakeDataset;
using testing_helpers::RandomDataset;

// Partition of the exact-DBSCAN core points induced by a clustering's
// primary labels (border semantics differ between OPTICS extraction and
// DBSCAN, core semantics must not).
std::set<std::vector<uint32_t>> CorePartition(const Clustering& c,
                                              const std::vector<char>& core) {
  std::map<int32_t, std::vector<uint32_t>> groups;
  for (uint32_t i = 0; i < c.label.size(); ++i) {
    if (core[i]) groups[c.label[i]].push_back(i);
  }
  std::set<std::vector<uint32_t>> out;
  for (auto& [label, members] : groups) {
    std::sort(members.begin(), members.end());
    out.insert(std::move(members));
  }
  return out;
}

TEST(Optics, OrderIsAPermutation) {
  const Dataset data = RandomDataset(2, 200, 0.0, 50.0, 1401);
  const OpticsResult r = RunOptics(data, DbscanParams{10.0, 5});
  ASSERT_EQ(r.order.size(), data.size());
  std::vector<char> seen(data.size(), 0);
  for (uint32_t p : r.order) {
    EXPECT_LT(p, data.size());
    EXPECT_FALSE(seen[p]) << "duplicate in order";
    seen[p] = 1;
  }
}

TEST(Optics, DistancesRespectEps) {
  const DbscanParams params{8.0, 5};
  const Dataset data = ClusteredDataset(2, 300, 3, 80.0, 3.0, 1403);
  const OpticsResult r = RunOptics(data, params);
  for (size_t i = 0; i < data.size(); ++i) {
    if (r.core_distance[i] != OpticsResult::kUndefined) {
      EXPECT_LE(r.core_distance[i], params.eps);
      EXPECT_GE(r.core_distance[i], 0.0);
    }
    if (r.reachability[i] != OpticsResult::kUndefined) {
      EXPECT_LE(r.reachability[i], params.eps);
      // Reachability is lower-bounded by some predecessor's core distance,
      // hence nonnegative.
      EXPECT_GE(r.reachability[i], 0.0);
    }
  }
  // The very first point of the order always starts fresh.
  EXPECT_EQ(r.reachability[r.order.front()], OpticsResult::kUndefined);
}

TEST(Optics, CoreDistanceMatchesDefinition) {
  const DbscanParams params{10.0, 4};
  const Dataset data = RandomDataset(2, 150, 0.0, 40.0, 1405);
  const OpticsResult r = RunOptics(data, params);
  const Clustering exact = BruteForceDbscan(data, params);
  for (size_t i = 0; i < data.size(); ++i) {
    // core-distance defined (<= eps) iff the point is a DBSCAN core point.
    EXPECT_EQ(r.core_distance[i] != OpticsResult::kUndefined,
              static_cast<bool>(exact.is_core[i]))
        << "point " << i;
  }
}

TEST(Optics, SeparatedBlobsStartFreshComponents) {
  Dataset data(2);
  Rng rng(1407);
  for (int c = 0; c < 2; ++c) {
    for (int i = 0; i < 50; ++i) {
      data.Add({c * 1000.0 + rng.NextGaussian() * 2.0,
                rng.NextGaussian() * 2.0});
    }
  }
  const OpticsResult r = RunOptics(data, DbscanParams{10.0, 5});
  size_t undefined = 0;
  for (double v : r.reachability) {
    undefined += (v == OpticsResult::kUndefined);
  }
  EXPECT_EQ(undefined, 2u);  // one fresh start per blob
}

class OpticsExtractionTest : public ::testing::TestWithParam<double> {};

TEST_P(OpticsExtractionTest, ExtractionMatchesDbscanOnCorePoints) {
  const double eps_prime = GetParam();
  const DbscanParams optics_params{20.0, 5};
  const Dataset data = ClusteredDataset(2, 400, 4, 100.0, 3.0, 1409);
  const OpticsResult r = RunOptics(data, optics_params);
  const Clustering extracted =
      ExtractDbscanClustering(data, r, optics_params, eps_prime);
  const Clustering exact =
      BruteForceDbscan(data, DbscanParams{eps_prime, optics_params.min_pts});
  // Core flags at eps' agree exactly.
  EXPECT_EQ(extracted.is_core, exact.is_core);
  // Core points carry the identical partition.
  EXPECT_EQ(CorePartition(extracted, exact.is_core),
            CorePartition(exact, exact.is_core));
  EXPECT_EQ(extracted.num_clusters, exact.num_clusters);
}

INSTANTIATE_TEST_SUITE_P(EpsPrimes, OpticsExtractionTest,
                         ::testing::Values(3.0, 6.0, 12.0, 20.0));

TEST(Optics, ExtractionBordersLandInAdjacentCluster) {
  // Border handling differs from DBSCAN (single membership), but a border
  // must end up in SOME cluster whose core points are within eps.
  const Dataset data = MakeDataset({
      {0.9, 0.0}, {1.2, 0.0}, {1.2, 0.3}, {1.5, 0.0},    // cluster A
      {0.0, 0.0},                                         // shared border
      {-0.9, 0.0}, {-1.2, 0.0}, {-1.2, 0.3}, {-1.5, 0.0}, // cluster B
  });
  const DbscanParams params{1.0, 4};
  const OpticsResult r = RunOptics(data, params);
  const Clustering c = ExtractDbscanClustering(data, r, params, 1.0);
  EXPECT_EQ(c.num_clusters, 2);
  EXPECT_FALSE(c.is_core[4]);
  EXPECT_NE(c.label[4], kNoise);
}

TEST(Optics, EmptyAndSingleton) {
  Dataset empty(2);
  const OpticsResult r0 = RunOptics(empty, DbscanParams{1.0, 2});
  EXPECT_TRUE(r0.order.empty());

  Dataset one(2);
  one.Add({3.0, 3.0});
  const OpticsResult r1 = RunOptics(one, DbscanParams{1.0, 1});
  ASSERT_EQ(r1.order.size(), 1u);
  EXPECT_EQ(r1.core_distance[0], 0.0);  // its own 1st NN is itself
  const Clustering c = ExtractDbscanClustering(one, r1, {1.0, 1}, 1.0);
  EXPECT_EQ(c.num_clusters, 1);
}

TEST(Optics, ReachabilityPlotSeparatesDenseAndSparse) {
  // Points inside a dense blob have small reachability; the noise point
  // processed after it has large-or-undefined reachability. This is the
  // "valleys = clusters" property the eps-selection story relies on.
  Dataset data(2);
  Rng rng(1411);
  for (int i = 0; i < 100; ++i) {
    data.Add({rng.NextGaussian() * 1.0, rng.NextGaussian() * 1.0});
  }
  data.Add({500.0, 500.0});  // lone outlier
  const OpticsResult r = RunOptics(data, DbscanParams{50.0, 5});
  // The outlier cannot be reached within eps of anything.
  EXPECT_EQ(r.reachability[100], OpticsResult::kUndefined);
  // Blob members (except the start) have small reachability.
  size_t small = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (r.reachability[i] != OpticsResult::kUndefined &&
        r.reachability[i] < 3.0) {
      ++small;
    }
  }
  EXPECT_GE(small, 95u);
}

}  // namespace
}  // namespace adbscan
