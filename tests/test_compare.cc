#include <gtest/gtest.h>

#include "core/brute_reference.h"
#include "eval/compare.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::ClusteredDataset;

Clustering MakeClustering(int num_clusters, std::vector<int32_t> labels,
                          std::vector<std::pair<uint32_t, int32_t>> extras = {}) {
  Clustering c;
  c.num_clusters = num_clusters;
  c.label = std::move(labels);
  c.is_core.assign(c.label.size(), 1);
  c.extra_memberships = std::move(extras);
  return c;
}

TEST(SameClusters, IdenticalResultsMatch) {
  const Clustering a = MakeClustering(2, {0, 0, 1, 1, kNoise});
  EXPECT_TRUE(SameClusters(a, a));
}

TEST(SameClusters, LabelPermutationIsIrrelevant) {
  const Clustering a = MakeClustering(2, {0, 0, 1, 1});
  const Clustering b = MakeClustering(2, {1, 1, 0, 0});
  EXPECT_TRUE(SameClusters(a, b));
}

TEST(SameClusters, DifferentMembershipDetected) {
  const Clustering a = MakeClustering(2, {0, 0, 1, 1});
  const Clustering b = MakeClustering(2, {0, 1, 1, 0});
  EXPECT_FALSE(SameClusters(a, b));
}

TEST(SameClusters, NoiseVsClusteredDetected) {
  const Clustering a = MakeClustering(1, {0, 0, kNoise});
  const Clustering b = MakeClustering(1, {0, 0, 0});
  EXPECT_FALSE(SameClusters(a, b));
}

TEST(SameClusters, ExtraMembershipsCount) {
  // Point 2 in both clusters vs only one: different cluster sets.
  const Clustering a = MakeClustering(2, {0, 1, 0}, {{2u, 1}});
  const Clustering b = MakeClustering(2, {0, 1, 0});
  EXPECT_FALSE(SameClusters(a, b));
  const Clustering c = MakeClustering(2, {0, 1, 1}, {{2u, 0}});
  EXPECT_TRUE(SameClusters(a, c));  // same sets, different primaries
}

TEST(SameClusters, DifferentSizesNeverMatch) {
  const Clustering a = MakeClustering(1, {0, 0});
  const Clustering b = MakeClustering(1, {0, 0, 0});
  EXPECT_FALSE(SameClusters(a, b));
}

TEST(SameCoreFlags, DetectsFlip) {
  Clustering a = MakeClustering(1, {0, 0});
  Clustering b = a;
  EXPECT_TRUE(SameCoreFlags(a, b));
  b.is_core[1] = 0;
  EXPECT_FALSE(SameCoreFlags(a, b));
}

TEST(Sandwich, HoldsForNestedClusterings) {
  // c1: {0,1} {2,3}; approx: {0,1,2,3}; c2: {0,1,2,3,4}.
  const Clustering c1 = MakeClustering(2, {0, 0, 1, 1, kNoise});
  const Clustering mid = MakeClustering(1, {0, 0, 0, 0, kNoise});
  const Clustering c2 = MakeClustering(1, {0, 0, 0, 0, 0});
  EXPECT_TRUE(SatisfiesSandwich(c1, mid, c2));
  // Reversed roles must fail: c2's cluster is not inside any c1 cluster.
  EXPECT_FALSE(SatisfiesSandwich(c2, mid, c1));
}

TEST(Sandwich, ViolationDetected) {
  // approx splits a c1 cluster: statement 1 violated.
  const Clustering c1 = MakeClustering(1, {0, 0, 0});
  const Clustering approx = MakeClustering(2, {0, 0, 1});
  const Clustering c2 = MakeClustering(1, {0, 0, 0});
  EXPECT_FALSE(SatisfiesSandwich(c1, approx, c2));
}

TEST(AdjustedRandIndex, PerfectAgreementIsOne) {
  const Clustering a = MakeClustering(2, {0, 0, 1, 1, kNoise});
  const Clustering b = MakeClustering(2, {1, 1, 0, 0, kNoise});
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(a, b), 1.0);
}

TEST(AdjustedRandIndex, SymmetricAndBounded) {
  const Clustering a = MakeClustering(2, {0, 0, 1, 1, 0, 1});
  const Clustering b = MakeClustering(3, {0, 1, 1, 2, 2, 0});
  const double ab = AdjustedRandIndex(a, b);
  const double ba = AdjustedRandIndex(b, a);
  EXPECT_DOUBLE_EQ(ab, ba);
  EXPECT_LE(ab, 1.0);
  EXPECT_GE(ab, -1.0);
  EXPECT_LT(ab, 0.99);  // clearly not identical
}

TEST(AdjustedRandIndex, RealClusteringsAgree) {
  const Dataset data = ClusteredDataset(2, 300, 4, 100.0, 4.0, 1001);
  const DbscanParams params{6.0, 5};
  const Clustering c = BruteForceDbscan(data, params);
  EXPECT_DOUBLE_EQ(AdjustedRandIndex(c, c), 1.0);
}

}  // namespace
}  // namespace adbscan
