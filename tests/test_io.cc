#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "core/brute_reference.h"
#include "io/dataset_io.h"
#include "io/table.h"
#include "test_helpers.h"

namespace adbscan {
namespace {

using testing_helpers::RandomDataset;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DatasetIo, BinaryRoundTripIsExact) {
  const Dataset original = RandomDataset(5, 1234, -1e5, 1e5, 1101);
  const std::string path = TempPath("roundtrip.bin");
  WriteBinary(original, path);
  const Dataset loaded = ReadBinary(path);
  EXPECT_EQ(loaded.dim(), original.dim());
  EXPECT_EQ(loaded.coords(), original.coords());
  std::remove(path.c_str());
}

TEST(DatasetIo, BinaryRoundTripEmpty) {
  Dataset original(3);
  const std::string path = TempPath("empty.bin");
  WriteBinary(original, path);
  const Dataset loaded = ReadBinary(path);
  EXPECT_EQ(loaded.dim(), 3);
  EXPECT_TRUE(loaded.empty());
  std::remove(path.c_str());
}

TEST(DatasetIo, CsvRoundTripPreservesValues) {
  const Dataset original = RandomDataset(3, 200, 0.0, 1e5, 1103);
  const std::string path = TempPath("roundtrip.csv");
  WriteCsv(original, path);
  const Dataset loaded = ReadCsv(path, 3);
  ASSERT_EQ(loaded.size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(loaded.point(i)[j], original.point(i)[j],
                  1e-4 + 1e-9 * std::abs(original.point(i)[j]));
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetIo, LabeledCsvHasLabelColumn) {
  Dataset data(2);
  data.Add({0.0, 0.0});
  data.Add({0.1, 0.0});
  data.Add({50.0, 50.0});
  const Clustering c = BruteForceDbscan(data, DbscanParams{1.0, 2});
  const std::string path = TempPath("labeled.csv");
  WriteLabeledCsv(data, c, path);
  FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[256];
  int rows = 0;
  while (std::fgets(line, sizeof(line), f)) {
    ++rows;
    // Each line has exactly two commas (x,y,label).
    int commas = 0;
    for (const char* p = line; *p; ++p) commas += (*p == ',');
    EXPECT_EQ(commas, 2);
  }
  std::fclose(f);
  EXPECT_EQ(rows, 3);
  std::remove(path.c_str());
}

TEST(DatasetIo, ClusteringRoundTripIsExact) {
  const Dataset data = RandomDataset(2, 400, 0.0, 50.0, 1107);
  const Clustering original = BruteForceDbscan(data, DbscanParams{4.0, 5});
  const std::string path = TempPath("clustering.bin");
  WriteClustering(original, path);
  const Clustering loaded = ReadClustering(path);
  EXPECT_EQ(loaded.num_clusters, original.num_clusters);
  EXPECT_EQ(loaded.label, original.label);
  EXPECT_EQ(loaded.is_core, original.is_core);
  EXPECT_EQ(loaded.extra_memberships, original.extra_memberships);
  std::remove(path.c_str());
}

TEST(DatasetIo, EmptyClusteringRoundTrip) {
  Clustering empty;
  const std::string path = TempPath("empty_clustering.bin");
  WriteClustering(empty, path);
  const Clustering loaded = ReadClustering(path);
  EXPECT_EQ(loaded.num_clusters, 0);
  EXPECT_TRUE(loaded.label.empty());
  EXPECT_TRUE(loaded.extra_memberships.empty());
  std::remove(path.c_str());
}

TEST(Table, AlignsAndPrintsAllRows) {
  Table t({"algo", "time"});
  t.AddRow({"KDD96", "12.0s"});
  t.AddRow({"OurApprox", "0.5s"});
  const std::string path = TempPath("table.txt");
  FILE* f = std::fopen(path.c_str(), "w");
  t.Print(f);
  std::fclose(f);
  f = std::fopen(path.c_str(), "r");
  char buffer[4096];
  const size_t n = std::fread(buffer, 1, sizeof(buffer) - 1, f);
  buffer[n] = '\0';
  std::fclose(f);
  const std::string text = buffer;
  EXPECT_NE(text.find("KDD96"), std::string::npos);
  EXPECT_NE(text.find("OurApprox"), std::string::npos);
  EXPECT_NE(text.find("algo"), std::string::npos);
  // 4 lines: header, rule, two rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  std::remove(path.c_str());
}

TEST(Table, FormattingHelpers) {
  EXPECT_EQ(Table::Seconds(-1.0), "skipped");
  EXPECT_EQ(Table::Seconds(1.5), "1.500s");
  EXPECT_EQ(Table::Num(0.001), "0.001");
  EXPECT_EQ(Table::Num(12345.0, 6), "12345");
}

}  // namespace
}  // namespace adbscan
