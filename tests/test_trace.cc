// Tests for the event-tracing layer (obs/trace.h, obs/trace_export.h):
// ring-buffer wraparound semantics, nested span containment, multi-thread
// recording (the TSan CI job runs this binary under
// -fsanitize=thread), disabled-mode zero recording, Chrome trace-event
// export shape, and the parity contract that every metrics phase name
// also appears as a trace span name.
//
// The container running these tests may report a single hardware thread,
// so every pool test passes an explicit num_threads — ParallelFor would
// otherwise take the inline path and record no pool events at all.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/approx_dbscan.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_export.h"
#include "stream/dynamic_clusterer.h"
#include "test_helpers.h"
#include "util/parallel.h"

namespace adbscan {
namespace obs {
namespace {

using testing_helpers::ClusteredDataset;

// The recorder is process-global; every test starts from a clean, enabled
// recorder at default capacity and leaves tracing off behind itself.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().SetCapacity(TraceRecorder::kDefaultCapacity);
    TraceRecorder::SetEnabled(true);
    TraceRecorder::Global().Reset();
  }
  void TearDown() override {
    TraceRecorder::SetEnabled(false);
    TraceRecorder::Global().SetCapacity(TraceRecorder::kDefaultCapacity);
    TraceRecorder::Global().Reset();
  }

  // The calling thread's slice of a fresh snapshot (the only non-empty one
  // in single-threaded tests).
  static ThreadTrace OwnEvents() {
    TraceSnapshot snap = TraceRecorder::Global().Snapshot();
    for (ThreadTrace& t : snap.threads) {
      if (!t.events.empty()) return std::move(t);
    }
    return {};
  }

  static std::set<std::string> SpanNames(const TraceSnapshot& snap) {
    std::set<std::string> names;
    for (const ThreadTrace& t : snap.threads) {
      for (const TraceEvent& e : t.events) {
        if (e.kind == TraceEventKind::kSpan) names.insert(e.name);
      }
    }
    return names;
  }
};

TEST_F(TraceTest, RecordsSpansInstantsAndCounters) {
  {
    ADB_TRACE_SPAN("unit.span");
    ADB_TRACE_INSTANT("unit.instant");
    ADB_TRACE_COUNTER("unit.counter", 42);
  }
  const ThreadTrace own = OwnEvents();
  ASSERT_EQ(own.events.size(), 3u);
  EXPECT_EQ(own.dropped, 0u);
  // The span closes after the instant and counter, so it is recorded last.
  EXPECT_EQ(std::string(own.events[0].name), "unit.instant");
  EXPECT_EQ(own.events[0].kind, TraceEventKind::kInstant);
  EXPECT_EQ(std::string(own.events[1].name), "unit.counter");
  EXPECT_EQ(own.events[1].kind, TraceEventKind::kCounter);
  EXPECT_DOUBLE_EQ(own.events[1].value, 42.0);
  EXPECT_EQ(std::string(own.events[2].name), "unit.span");
  EXPECT_EQ(own.events[2].kind, TraceEventKind::kSpan);
  // Span covers both point events.
  EXPECT_LE(own.events[2].ts_ns, own.events[0].ts_ns);
  EXPECT_GE(own.events[2].ts_ns + own.events[2].dur_ns, own.events[1].ts_ns);
}

TEST_F(TraceTest, RingBufferDropsOldestAndCountsDrops) {
  TraceRecorder::Global().SetCapacity(8);
  TraceRecorder::Global().Reset();  // applies the capacity to live rings
  EXPECT_EQ(TraceRecorder::Global().capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    ADB_TRACE_COUNTER("wrap.counter", i);
  }
  const ThreadTrace own = OwnEvents();
  ASSERT_EQ(own.events.size(), 8u);
  EXPECT_EQ(own.dropped, 12u);
  // Drop-oldest: the survivors are the last 8 samples, oldest first.
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(own.events[i].value, 12.0 + i) << "slot " << i;
  }
  TraceSnapshot snap = TraceRecorder::Global().Snapshot();
  EXPECT_EQ(snap.TotalDropped(), 12u);
}

TEST_F(TraceTest, CapacityRoundsUpToPowerOfTwo) {
  TraceRecorder::Global().SetCapacity(5);
  TraceRecorder::Global().Reset();
  EXPECT_EQ(TraceRecorder::Global().capacity(), 8u);
}

TEST_F(TraceTest, NestedSpansAreContainedInTheirParent) {
  {
    ADB_TRACE_SPAN("outer");
    {
      ADB_TRACE_SPAN("inner");
    }
  }
  const ThreadTrace own = OwnEvents();
  ASSERT_EQ(own.events.size(), 2u);
  // Spans record at scope exit: inner first.
  const TraceEvent& inner = own.events[0];
  const TraceEvent& outer = own.events[1];
  EXPECT_EQ(std::string(inner.name), "inner");
  EXPECT_EQ(std::string(outer.name), "outer");
  EXPECT_LE(outer.ts_ns, inner.ts_ns);
  EXPECT_GE(outer.ts_ns + outer.dur_ns, inner.ts_ns + inner.dur_ns);
}

TEST_F(TraceTest, DisabledRecordsNothing) {
  TraceRecorder::SetEnabled(false);
  {
    ADB_TRACE_SPAN("off.span");
    ADB_TRACE_INSTANT("off.instant");
    ADB_TRACE_COUNTER("off.counter", 1);
  }
  TraceSnapshot snap = TraceRecorder::Global().Snapshot();
  EXPECT_EQ(snap.TotalEvents(), 0u);
  EXPECT_EQ(snap.TotalDropped(), 0u);
}

TEST_F(TraceTest, ResetClearsEventsAndRearmsEpoch) {
  ADB_TRACE_INSTANT("before.reset");
  TraceRecorder::Global().Reset();
  EXPECT_EQ(TraceRecorder::Global().Snapshot().TotalEvents(), 0u);
  ADB_TRACE_INSTANT("after.reset");
  const ThreadTrace own = OwnEvents();
  ASSERT_EQ(own.events.size(), 1u);
  EXPECT_EQ(std::string(own.events[0].name), "after.reset");
  // The epoch re-armed: the post-Reset event's timestamp is near zero
  // (well under a second, even on a loaded machine).
  EXPECT_LT(own.events[0].ts_ns, uint64_t{1} * 1000 * 1000 * 1000);
}

// The TSan CI job runs this binary with -fsanitize=thread; this test is
// the data-race probe for concurrent recording plus the retired-buffer
// path (all four threads exit before the snapshot).
TEST_F(TraceTest, MultiThreadRecordingKeepsPerThreadStreamsAndLabels) {
  constexpr int kThreads = 4;
  constexpr int kEvents = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      SetTraceThreadLabel("probe-" + std::to_string(t));
      for (int i = 0; i < kEvents; ++i) {
        ADB_TRACE_COUNTER("mt.counter", t * kEvents + i);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  TraceSnapshot snap = TraceRecorder::Global().Snapshot();
  int probes = 0;
  for (const ThreadTrace& t : snap.threads) {
    if (t.label.rfind("probe-", 0) != 0) continue;
    ++probes;
    EXPECT_EQ(t.events.size(), static_cast<size_t>(kEvents)) << t.label;
    EXPECT_EQ(t.dropped, 0u) << t.label;
    // Single-writer ring: each thread's samples survive in record order.
    for (size_t i = 1; i < t.events.size(); ++i) {
      EXPECT_EQ(t.events[i].value, t.events[i - 1].value + 1.0);
      EXPECT_GE(t.events[i].ts_ns, t.events[i - 1].ts_ns);
    }
  }
  EXPECT_EQ(probes, kThreads);
  // Snapshot is sorted by tid.
  for (size_t i = 1; i < snap.threads.size(); ++i) {
    EXPECT_LT(snap.threads[i - 1].tid, snap.threads[i].tid);
  }
}

TEST_F(TraceTest, PoolWorkersRecordChunkSpansUnderExplicitThreadCount) {
  // On a single-core machine the main thread can drain every chunk before
  // a freshly woken worker claims one, so a single region recording no
  // worker span is a legal schedule. Chunks sleep ~1ms to give workers a
  // window, and the region retries a few times before the test concludes
  // workers really never recorded.
  std::vector<std::atomic<uint32_t>> out(256);
  bool worker_recorded = false;
  for (int attempt = 0; attempt < 10 && !worker_recorded; ++attempt) {
    ParallelFor(out.size(), /*num_threads=*/4,
                [&](size_t begin, size_t end) {
                  std::this_thread::sleep_for(std::chrono::milliseconds(1));
                  for (size_t i = begin; i < end; ++i) {
                    out[i].store(static_cast<uint32_t>(i),
                                 std::memory_order_relaxed);
                  }
                });
    for (const ThreadTrace& t : TraceRecorder::Global().Snapshot().threads) {
      if (t.label.rfind("pool-worker-", 0) == 0 && !t.events.empty()) {
        worker_recorded = true;
      }
    }
  }
  TraceSnapshot snap = TraceRecorder::Global().Snapshot();
  const std::set<std::string> names = SpanNames(snap);
  EXPECT_TRUE(names.count("pool.region"));
  EXPECT_TRUE(names.count("pool.chunk"));
  EXPECT_TRUE(worker_recorded);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i].load(std::memory_order_relaxed),
              static_cast<uint32_t>(i));
  }
}

TEST_F(TraceTest, DynamicClustererEmitsPerBatchSpansAndCounters) {
  DbscanParams params;
  params.eps = 0.15;
  params.min_pts = 4;
  DynamicClusterer dyn(2, params, {});
  dyn.Insert(ClusteredDataset(2, 400, 3, 1.0, 0.03, 77));
  std::vector<uint32_t> victims;
  for (uint32_t id = 0; id < 50; ++id) victims.push_back(id);
  dyn.Remove(victims);

  TraceSnapshot snap = TraceRecorder::Global().Snapshot();
  const std::set<std::string> names = SpanNames(snap);
  EXPECT_TRUE(names.count("stream.insert"));
  EXPECT_TRUE(names.count("stream.remove"));
  EXPECT_TRUE(names.count("stream.refresh"));
  bool cells_counter = false;
  for (const ThreadTrace& t : snap.threads) {
    for (const TraceEvent& e : t.events) {
      if (e.kind == TraceEventKind::kCounter &&
          std::string(e.name) == "stream.cells_touched" && e.value > 0.0) {
        cells_counter = true;
      }
    }
  }
  EXPECT_TRUE(cells_counter);
}

TEST_F(TraceTest, ChromeExportIsWellFormedJson) {
  {
    ADB_TRACE_SPAN("export.span");
    ADB_TRACE_INSTANT("export.instant");
    ADB_TRACE_COUNTER("export.counter", 7);
  }
  SetTraceThreadLabel("export-test");
  TraceSnapshot snap = TraceRecorder::Global().Snapshot();
  const std::string json = ToChromeTraceJson(snap);
  const std::optional<JsonValue> doc = ParseJson(json);
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->IsObject());
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->IsArray());

  bool process_meta = false;
  bool thread_meta = false;
  bool saw_span = false;
  bool saw_instant = false;
  bool saw_counter = false;
  double last_ts = -1.0;
  for (const JsonValue& e : events->array) {
    ASSERT_TRUE(e.IsObject());
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->IsString());
    const JsonValue* name = e.Find("name");
    ASSERT_NE(name, nullptr);
    if (ph->string == "M") {
      if (name->string == "process_name") process_meta = true;
      if (name->string == "thread_name") thread_meta = true;
      continue;
    }
    const JsonValue* ts = e.Find("ts");
    ASSERT_NE(ts, nullptr);
    ASSERT_TRUE(ts->IsNumber());
    // Single-thread snapshot: ts must be monotone across the whole array.
    EXPECT_GE(ts->number, last_ts);
    last_ts = ts->number;
    if (ph->string == "X" && name->string == "export.span") {
      saw_span = true;
      const JsonValue* dur = e.Find("dur");
      ASSERT_NE(dur, nullptr);
      EXPECT_GE(dur->number, 0.0);
    }
    if (ph->string == "i" && name->string == "export.instant") {
      saw_instant = true;
    }
    if (ph->string == "C" && name->string == "export.counter") {
      saw_counter = true;
      const JsonValue* args = e.Find("args");
      ASSERT_NE(args, nullptr);
      const JsonValue* value = args->Find("value");
      ASSERT_NE(value, nullptr);
      EXPECT_DOUBLE_EQ(value->number, 7.0);
    }
  }
  EXPECT_TRUE(process_meta);
  EXPECT_TRUE(thread_meta);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

TEST_F(TraceTest, TracingDoesNotChangeClusteringOutput) {
  const Dataset data = ClusteredDataset(2, 600, 4, 1.0, 0.03, 13);
  DbscanParams params;
  params.eps = 0.1;
  params.min_pts = 5;

  TraceRecorder::SetEnabled(false);
  const Clustering off = ApproxDbscan(data, params, 0.01);
  TraceRecorder::SetEnabled(true);
  TraceRecorder::Global().Reset();
  const Clustering on = ApproxDbscan(data, params, 0.01);

  EXPECT_EQ(off.num_clusters, on.num_clusters);
  EXPECT_EQ(off.label, on.label);
  EXPECT_EQ(off.is_core, on.is_core);
  EXPECT_GT(TraceRecorder::Global().Snapshot().TotalEvents(), 0u);
}

#if ADBSCAN_METRICS
void CollectPhaseNames(const PhaseNode& node, std::set<std::string>* out) {
  out->insert(node.name);
  for (const PhaseNode& child : node.children) CollectPhaseNames(child, out);
}

// Dual emission contract: ADB_PHASE records the same literal into both the
// metrics tree and the trace, so a timeline span can always be matched to
// its aggregate row. Run a real pipeline with both layers on and check
// every metrics phase name shows up as a trace span name.
TEST_F(TraceTest, MetricsPhaseNamesAppearAsTraceSpans) {
  MetricsRegistry::SetEnabled(true);
  MetricsRegistry::Global().Reset();
  const Dataset data = ClusteredDataset(3, 800, 4, 1.0, 0.03, 29);
  DbscanParams params;
  params.eps = 0.1;
  params.min_pts = 5;
  ApproxDbscan(data, params, 0.01);

  const MetricsSnapshot metrics = MetricsRegistry::Global().Snapshot();
  std::set<std::string> phase_names;
  for (const PhaseNode& root : metrics.phases) {
    CollectPhaseNames(root, &phase_names);
  }
  ASSERT_FALSE(phase_names.empty());

  const std::set<std::string> span_names =
      SpanNames(TraceRecorder::Global().Snapshot());
  for (const std::string& phase : phase_names) {
    EXPECT_TRUE(span_names.count(phase))
        << "metrics phase '" << phase << "' has no trace span";
  }
  MetricsRegistry::Global().Reset();
  MetricsRegistry::SetEnabled(false);
}
#endif  // ADBSCAN_METRICS

}  // namespace
}  // namespace obs
}  // namespace adbscan
