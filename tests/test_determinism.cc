// Thread-count determinism: every pipeline must return the same clustering
// for threads = 1, 2, and HardwareThreads() — not merely the same partition,
// but identical output after canonical relabeling (and, for this library's
// pipelines, identical raw labels: cluster numbering is defined by first
// core point in id order, which no interleaving can change).

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/adbscan.h"
#include "gen/seed_spreader.h"
#include "grid/grid.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

// Renumbers clusters by first appearance in point-id order (primary labels
// first, then extra memberships), so two clusterings that differ only in
// label numbering still compare equal.
Clustering Canonicalized(const Clustering& in) {
  Clustering out = in;
  std::vector<int32_t> remap(static_cast<size_t>(in.num_clusters), -1);
  int32_t next = 0;
  auto canon = [&](int32_t label) {
    if (label == kNoise) return kNoise;
    int32_t& slot = remap[static_cast<size_t>(label)];
    if (slot < 0) slot = next++;
    return slot;
  };
  for (int32_t& label : out.label) label = canon(label);
  for (auto& membership : out.extra_memberships) {
    membership.second = canon(membership.second);
  }
  std::sort(out.extra_memberships.begin(), out.extra_memberships.end());
  return out;
}

void ExpectIdentical(const Clustering& base, const Clustering& other,
                     const std::string& context) {
  EXPECT_EQ(base.num_clusters, other.num_clusters) << context;
  EXPECT_EQ(base.is_core, other.is_core) << context;
  // The canonical forms must match for any correct parallelization...
  const Clustering a = Canonicalized(base);
  const Clustering b = Canonicalized(other);
  EXPECT_EQ(a.label, b.label) << context;
  EXPECT_EQ(a.extra_memberships, b.extra_memberships) << context;
  // ...and this library additionally promises identical raw numbering.
  EXPECT_EQ(base.label, other.label) << context;
  EXPECT_EQ(base.extra_memberships, other.extra_memberships) << context;
}

TEST(ThreadDeterminism, AllPipelinesIdenticalAcrossThreadCounts) {
  SeedSpreaderParams p;
  p.dim = 2;  // 2D so Gunawan2dDbscan participates
  p.n = 4000;
  p.forced_restart_every = p.n / 4;
  const Dataset data = GenerateSeedSpreader(p, 7001);
  const double eps = 5000.0;
  const int min_pts = 20;

  using Runner = std::function<Clustering(const DbscanParams&)>;
  const std::vector<std::pair<std::string, Runner>> pipelines = {
      {"KDD96",
       [&](const DbscanParams& dp) { return Kdd96Dbscan(data, dp); }},
      {"GriDBSCAN",
       [&](const DbscanParams& dp) { return GridbscanDbscan(data, dp); }},
      {"ExactGrid",
       [&](const DbscanParams& dp) { return ExactGridDbscan(data, dp); }},
      {"Approx(rho=0.01)",
       [&](const DbscanParams& dp) { return ApproxDbscan(data, dp, 0.01); }},
      {"Gunawan2D",
       [&](const DbscanParams& dp) { return Gunawan2dDbscan(data, dp); }},
  };

  std::vector<int> thread_counts = {1, 2, HardwareThreads()};
  for (const auto& [name, run] : pipelines) {
    const Clustering base = run(DbscanParams{eps, min_pts, 1});
    EXPECT_GT(base.num_clusters, 0) << name;
    for (int threads : thread_counts) {
      const Clustering other = run(DbscanParams{eps, min_pts, threads});
      ExpectIdentical(base, other,
                      name + " threads=" + std::to_string(threads));
    }
  }
}

TEST(ThreadDeterminism, RepeatedParallelRunsAreStable) {
  // Same thread count, repeated runs: scheduling differences between runs
  // must not leak into the output either.
  SeedSpreaderParams p;
  p.dim = 3;
  p.n = 5000;
  const Dataset data = GenerateSeedSpreader(p, 7003);
  const DbscanParams params{5000.0, 50, 4};
  const Clustering first = ExactGridDbscan(data, params);
  for (int rep = 0; rep < 3; ++rep) {
    const Clustering again = ExactGridDbscan(data, params);
    EXPECT_EQ(first.label, again.label) << "rep " << rep;
    EXPECT_EQ(first.is_core, again.is_core) << "rep " << rep;
    EXPECT_EQ(first.extra_memberships, again.extra_memberships)
        << "rep " << rep;
  }
}

}  // namespace
}  // namespace adbscan
