#include "geom/dataset.h"

#include <mutex>
#include <utility>

#include "util/check.h"

namespace adbscan {
namespace {

// Guards lazy construction of the per-dataset SoA cache. A single global
// mutex keeps Dataset copyable; contention is negligible because callers
// fetch the view once per index/pipeline construction, not per query.
std::mutex soa_build_mutex;

}  // namespace

Dataset::Dataset(int dim) : dim_(dim) {
  ADB_CHECK(dim >= 1 && dim <= kMaxDim);
  base_ = coords_.data();
}

Dataset::Dataset(int dim, std::vector<double> coords)
    : dim_(dim), coords_(std::move(coords)) {
  ADB_CHECK(dim >= 1 && dim <= kMaxDim);
  ADB_CHECK(coords_.size() % dim_ == 0);
  n_ = coords_.size() / dim_;
  base_ = coords_.data();
}

Dataset::Dataset(int dim, const double* coords, size_t n,
                 std::shared_ptr<const void> keepalive)
    : dim_(dim), n_(n), base_(coords), keepalive_(std::move(keepalive)) {
  ADB_CHECK(dim >= 1 && dim <= kMaxDim);
  ADB_CHECK(n == 0 || coords != nullptr);
  ADB_CHECK(keepalive_ != nullptr);
}

// Copies and moves must re-point base_ at the new instance's vector in owning
// mode (the default member-wise copy would alias the source's storage).
Dataset::Dataset(const Dataset& other)
    : dim_(other.dim_),
      n_(other.n_),
      base_(other.base_),
      coords_(other.coords_),
      keepalive_(other.keepalive_),
      soa_(other.soa_) {
  if (keepalive_ == nullptr) base_ = coords_.data();
}

Dataset& Dataset::operator=(const Dataset& other) {
  if (this == &other) return *this;
  dim_ = other.dim_;
  n_ = other.n_;
  coords_ = other.coords_;
  keepalive_ = other.keepalive_;
  soa_ = other.soa_;
  base_ = keepalive_ != nullptr ? other.base_ : coords_.data();
  return *this;
}

Dataset::Dataset(Dataset&& other) noexcept
    : dim_(other.dim_),
      n_(other.n_),
      base_(other.base_),
      coords_(std::move(other.coords_)),
      keepalive_(std::move(other.keepalive_)),
      soa_(std::move(other.soa_)) {
  if (keepalive_ == nullptr) base_ = coords_.data();
  other.n_ = 0;
  other.base_ = other.coords_.data();
}

Dataset& Dataset::operator=(Dataset&& other) noexcept {
  if (this == &other) return *this;
  dim_ = other.dim_;
  n_ = other.n_;
  coords_ = std::move(other.coords_);
  keepalive_ = std::move(other.keepalive_);
  soa_ = std::move(other.soa_);
  base_ = keepalive_ != nullptr ? other.base_ : coords_.data();
  other.n_ = 0;
  other.keepalive_.reset();
  other.base_ = other.coords_.data();
  return *this;
}

const std::vector<double>& Dataset::coords() const {
  ADB_CHECK_MSG(!external(),
                "Dataset::coords() on external storage; use raw()");
  return coords_;
}

uint32_t Dataset::Add(const double* p) {
  ADB_CHECK_MSG(!external(), "Dataset::Add on immutable external storage");
  const uint32_t id = static_cast<uint32_t>(size());
  coords_.insert(coords_.end(), p, p + dim_);
  ++n_;
  base_ = coords_.data();  // insert may reallocate
  soa_.reset();  // the cached SoA view no longer covers all points
  return id;
}

std::shared_ptr<const simd::SoaBlock> Dataset::Soa() const {
  const std::lock_guard<std::mutex> lock(soa_build_mutex);
  if (soa_ == nullptr) soa_ = std::make_shared<const simd::SoaBlock>(*this);
  return soa_;
}

uint32_t Dataset::Add(std::initializer_list<double> p) {
  ADB_CHECK(static_cast<int>(p.size()) == dim_);
  return Add(p.begin());
}

uint32_t Dataset::Add(const std::vector<double>& p) {
  ADB_CHECK(static_cast<int>(p.size()) == dim_);
  return Add(p.data());
}

Box Dataset::BoundingBox() const {
  ADB_CHECK(!empty());
  Box b = Box::Empty(dim_);
  for (size_t i = 0; i < size(); ++i) b.ExpandToPoint(point(i));
  return b;
}

}  // namespace adbscan
