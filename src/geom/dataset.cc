#include "geom/dataset.h"

#include <mutex>

#include "util/check.h"

namespace adbscan {
namespace {

// Guards lazy construction of the per-dataset SoA cache. A single global
// mutex keeps Dataset copyable; contention is negligible because callers
// fetch the view once per index/pipeline construction, not per query.
std::mutex soa_build_mutex;

}  // namespace

Dataset::Dataset(int dim) : dim_(dim) {
  ADB_CHECK(dim >= 1 && dim <= kMaxDim);
}

Dataset::Dataset(int dim, std::vector<double> coords)
    : dim_(dim), coords_(std::move(coords)) {
  ADB_CHECK(dim >= 1 && dim <= kMaxDim);
  ADB_CHECK(coords_.size() % dim_ == 0);
}

uint32_t Dataset::Add(const double* p) {
  const uint32_t id = static_cast<uint32_t>(size());
  coords_.insert(coords_.end(), p, p + dim_);
  soa_.reset();  // the cached SoA view no longer covers all points
  return id;
}

std::shared_ptr<const simd::SoaBlock> Dataset::Soa() const {
  const std::lock_guard<std::mutex> lock(soa_build_mutex);
  if (soa_ == nullptr) soa_ = std::make_shared<const simd::SoaBlock>(*this);
  return soa_;
}

uint32_t Dataset::Add(std::initializer_list<double> p) {
  ADB_CHECK(static_cast<int>(p.size()) == dim_);
  return Add(p.begin());
}

uint32_t Dataset::Add(const std::vector<double>& p) {
  ADB_CHECK(static_cast<int>(p.size()) == dim_);
  return Add(p.data());
}

Box Dataset::BoundingBox() const {
  ADB_CHECK(!empty());
  Box b = Box::Empty(dim_);
  for (size_t i = 0; i < size(); ++i) b.ExpandToPoint(point(i));
  return b;
}

}  // namespace adbscan
