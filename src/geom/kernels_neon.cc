// NEON batch distance kernel (aarch64; NEON is baseline there, so no extra
// compile flags are needed). Two 128-bit vectors per kLaneWidth group.

#if defined(__aarch64__)

#include <arm_neon.h>

#include "geom/kernels_internal.h"
#include "geom/soa.h"

namespace adbscan {
namespace simd {
namespace internal {

void OneVsManyNeon(const double* q, const double* soa, size_t stride,
                   int dim, size_t padded_n, double* out) {
  static_assert(kLaneWidth == 4, "NEON path assumes 4-double groups");
  for (size_t j = 0; j < padded_n; j += 4) {
    float64x2_t acc0 = vdupq_n_f64(0.0);
    float64x2_t acc1 = vdupq_n_f64(0.0);
    for (int i = 0; i < dim; ++i) {
      const double* row = soa + i * stride + j;
      const float64x2_t qi = vdupq_n_f64(q[i]);
      const float64x2_t d0 = vsubq_f64(qi, vld1q_f64(row));
      const float64x2_t d1 = vsubq_f64(qi, vld1q_f64(row + 2));
      // vmul + vadd, never vfma: fused rounding would diverge from the
      // scalar reference and break the bit-identical dispatch guarantee.
      acc0 = vaddq_f64(acc0, vmulq_f64(d0, d0));
      acc1 = vaddq_f64(acc1, vmulq_f64(d1, d1));
    }
    vst1q_f64(out + j, acc0);
    vst1q_f64(out + j + 2, acc1);
  }
}

}  // namespace internal
}  // namespace simd
}  // namespace adbscan

#endif  // aarch64
