#include "geom/kernels.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "geom/kernels_internal.h"
#include "geom/point.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace adbscan {
namespace simd {
namespace {

using internal::BatchDistFn;

// Helpers chunk long spans through a stack buffer so early-exit scans
// (CountWithin, AnyWithin) stop within one chunk of where a scalar loop
// would, while the per-chunk kernel call stays full-width and aligned.
constexpr size_t kChunk = 256;
static_assert(kChunk % kLaneWidth == 0);

struct Dispatch {
  std::atomic<KernelKind> kind;
  std::atomic<BatchDistFn> fn;
};

BatchDistFn FnFor(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return &internal::OneVsManyScalar;
#if defined(__x86_64__) || defined(_M_X64)
    case KernelKind::kAvx2:
      return &internal::OneVsManyAvx2;
#endif
#if defined(__aarch64__)
    case KernelKind::kNeon:
      return &internal::OneVsManyNeon;
#endif
    default:
      return nullptr;
  }
}

// Marks a dispatch decision on the trace timeline, so a profile shows
// which kernel the run selected (and when an override flipped it).
void TraceDispatchDecision(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      ADB_TRACE_INSTANT("kernel.dispatch.scalar");
      break;
    case KernelKind::kAvx2:
      ADB_TRACE_INSTANT("kernel.dispatch.avx2");
      break;
    case KernelKind::kNeon:
      ADB_TRACE_INSTANT("kernel.dispatch.neon");
      break;
    case KernelKind::kAuto:
      break;  // never stored as the active kind
  }
}

KernelKind ResolveAuto() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) return KernelKind::kAvx2;
#elif defined(__aarch64__)
  return KernelKind::kNeon;
#endif
  return KernelKind::kScalar;
}

Dispatch& GlobalDispatch() {
  static Dispatch dispatch;
  static const bool initialized = [] {
    KernelKind kind = ResolveAuto();
    // ADBSCAN_KERNEL overrides the default for whole processes (tests under
    // CI's kernel matrix); the --kernel flag overrides it again per binary.
    if (const char* env = std::getenv("ADBSCAN_KERNEL");
        env != nullptr && env[0] != '\0') {
      KernelKind parsed;
      if (!ParseKernelKind(env, &parsed)) {
        std::fprintf(stderr, "warning: ignoring ADBSCAN_KERNEL='%s'\n", env);
      } else if (parsed == KernelKind::kAuto) {
        // keep the resolved default
      } else if (!KernelSupported(parsed)) {
        std::fprintf(stderr,
                     "warning: ADBSCAN_KERNEL='%s' unsupported on this CPU; "
                     "using %s\n",
                     env, KernelName(kind));
      } else {
        kind = parsed;
      }
    }
    dispatch.kind.store(kind, std::memory_order_relaxed);
    dispatch.fn.store(FnFor(kind), std::memory_order_relaxed);
    TraceDispatchDecision(kind);
    return true;
  }();
  (void)initialized;
  return dispatch;
}

inline BatchDistFn ActiveFn() {
  return GlobalDispatch().fn.load(std::memory_order_relaxed);
}

}  // namespace

bool KernelSupported(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
    case KernelKind::kAuto:
      return true;
    case KernelKind::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case KernelKind::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool SetKernel(KernelKind kind) {
  if (!KernelSupported(kind)) return false;
  const KernelKind resolved = kind == KernelKind::kAuto ? ResolveAuto() : kind;
  Dispatch& d = GlobalDispatch();
  d.kind.store(resolved, std::memory_order_relaxed);
  d.fn.store(FnFor(resolved), std::memory_order_relaxed);
  TraceDispatchDecision(resolved);
  return true;
}

KernelKind ActiveKernel() {
  return GlobalDispatch().kind.load(std::memory_order_relaxed);
}

const char* KernelName(KernelKind kind) {
  switch (kind) {
    case KernelKind::kScalar:
      return "scalar";
    case KernelKind::kAvx2:
      return "avx2";
    case KernelKind::kNeon:
      return "neon";
    case KernelKind::kAuto:
      return "auto";
  }
  return "?";
}

bool ParseKernelKind(const std::string& name, KernelKind* out) {
  if (name == "scalar") *out = KernelKind::kScalar;
  else if (name == "avx2") *out = KernelKind::kAvx2;
  else if (name == "neon") *out = KernelKind::kNeon;
  else if (name == "auto") *out = KernelKind::kAuto;
  else return false;
  return true;
}

namespace internal {

void OneVsManyScalar(const double* q, const double* soa, size_t stride,
                     int dim, size_t padded_n, double* out) {
  for (size_t j = 0; j < padded_n; ++j) {
    double acc = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double diff = q[i] - soa[i * stride + j];
      acc += diff * diff;
    }
    out[j] = acc;
  }
}

}  // namespace internal

void SquaredDists(const double* q, const SoaSpan& s, double* out) {
  if (s.count == 0) return;
  ADB_COUNT("kernel.batch_calls", 1);
  ADB_COUNT("kernel.lanes_filled", s.count);
  ADB_COUNT("kernel.lanes_padded", PaddedCount(s.count) - s.count);
  ActiveFn()(q, s.base, s.stride, s.dim, PaddedCount(s.count), out);
}

size_t CountWithin(const double* q, const SoaSpan& s, double eps2,
                   size_t stop_at) {
  if (s.count == 0 || stop_at == 0) return 0;
  ADB_COUNT("kernel.batch_calls", 1);
  const BatchDistFn fn = ActiveFn();
  alignas(kSoaAlignment) double buf[kChunk];
  size_t count = 0;
  size_t processed = 0;
  for (size_t begin = 0; begin < s.count; begin += kChunk) {
    const size_t real = std::min(kChunk, s.count - begin);
    fn(q, s.base + begin, s.stride, s.dim, PaddedCount(real), buf);
    processed += real;
    for (size_t j = 0; j < real; ++j) {
      if (buf[j] <= eps2 && ++count >= stop_at) {
        ADB_COUNT("kernel.lanes_filled", processed);
        return count;
      }
    }
  }
  ADB_COUNT("kernel.lanes_filled", processed);
  return count;
}

bool AnyWithin(const double* q, const SoaSpan& s, double eps2) {
  return CountWithin(q, s, eps2, 1) > 0;
}

void CollectWithin(const double* q, const SoaSpan& s, double eps2,
                   const uint32_t* ids, std::vector<uint32_t>* out) {
  if (s.count == 0) return;
  ADB_COUNT("kernel.batch_calls", 1);
  ADB_COUNT("kernel.lanes_filled", s.count);
  const BatchDistFn fn = ActiveFn();
  alignas(kSoaAlignment) double buf[kChunk];
  for (size_t begin = 0; begin < s.count; begin += kChunk) {
    const size_t real = std::min(kChunk, s.count - begin);
    fn(q, s.base + begin, s.stride, s.dim, PaddedCount(real), buf);
    for (size_t j = 0; j < real; ++j) {
      if (buf[j] <= eps2) out->push_back(ids[begin + j]);
    }
  }
}

BlockNearest NearestInBlock(const double* q, const SoaSpan& s) {
  BlockNearest best{s.count, std::numeric_limits<double>::infinity()};
  if (s.count == 0) return best;
  ADB_COUNT("kernel.batch_calls", 1);
  ADB_COUNT("kernel.lanes_filled", s.count);
  const BatchDistFn fn = ActiveFn();
  alignas(kSoaAlignment) double buf[kChunk];
  for (size_t begin = 0; begin < s.count; begin += kChunk) {
    const size_t real = std::min(kChunk, s.count - begin);
    fn(q, s.base + begin, s.stride, s.dim, PaddedCount(real), buf);
    for (size_t j = 0; j < real; ++j) {
      if (buf[j] < best.squared_dist) best = {begin + j, buf[j]};
    }
  }
  return best;
}

void GatherPoint(const SoaSpan& s, size_t j, double* out) {
  ADB_DCHECK(j < s.count);
  for (int i = 0; i < s.dim; ++i) out[i] = s.base[i * s.stride + j];
}

void BlockVsBlock(const SoaSpan& a, const SoaSpan& b, double* out) {
  if (a.count == 0 || b.count == 0) return;
  ADB_COUNT("kernel.batch_calls", 1);
  ADB_COUNT("kernel.lanes_filled", a.count * b.count);
  const BatchDistFn fn = ActiveFn();
  const size_t row = PaddedCount(b.count);
  double q[kMaxDim];
  for (size_t ja = 0; ja < a.count; ++ja) {
    GatherPoint(a, ja, q);
    fn(q, b.base, b.stride, b.dim, row, out + ja * row);
  }
}

}  // namespace simd
}  // namespace adbscan
