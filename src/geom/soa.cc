#include "geom/soa.h"

#include <algorithm>
#include <new>

#include "geom/dataset.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {
namespace simd {

void SoaBlock::AlignedFree::operator()(double* p) const {
  ::operator delete[](p, std::align_val_t(kSoaAlignment));
}

SoaBlock::SoaBlock(const Dataset& data) {
  Fill(data, nullptr, data.size(), 1);
}

SoaBlock::SoaBlock(const Dataset& data, const uint32_t* ids, size_t count) {
  Fill(data, ids, count, 1);
}

SoaBlock::SoaBlock(const Dataset& data, const uint32_t* ids, size_t count,
                   int num_threads) {
  Fill(data, ids, count, num_threads);
}

SoaBlock::SoaBlock(const SoaBlock& other)
    : dim_(other.dim_), count_(other.count_), stride_(other.stride_) {
  if (stride_ == 0) return;
  const size_t total = static_cast<size_t>(dim_) * stride_;
  data_.reset(static_cast<double*>(
      ::operator new[](total * sizeof(double), std::align_val_t(kSoaAlignment))));
  std::copy(other.data_.get(), other.data_.get() + total, data_.get());
}

SoaBlock& SoaBlock::operator=(const SoaBlock& other) {
  if (this != &other) *this = SoaBlock(other);  // copy, then move-assign
  return *this;
}

void SoaBlock::Fill(const Dataset& data, const uint32_t* ids, size_t count,
                    int num_threads) {
  dim_ = data.dim();
  count_ = count;
  stride_ = PaddedCount(count);
  if (stride_ == 0) return;
  data_.reset(static_cast<double*>(::operator new[](
      static_cast<size_t>(dim_) * stride_ * sizeof(double),
      std::align_val_t(kSoaAlignment))));
  ParallelFor(stride_, num_threads, [&](size_t begin, size_t end) {
    for (size_t j = begin; j < end; ++j) {
      // Padding slots replicate the last real point: finite values that keep
      // full-width tail computations exception-free and overflow-safe.
      const size_t src = j < count ? j : count - 1;
      const double* p = data.point(ids == nullptr ? src : ids[src]);
      for (int i = 0; i < dim_; ++i) data_[i * stride_ + j] = p[i];
    }
  });
}

SoaSpan SoaBlock::span(size_t offset, size_t count) const {
  ADB_DCHECK(offset % kLaneWidth == 0);
  ADB_DCHECK(offset + PaddedCount(count) <= stride_);
  return SoaSpan{data_.get() + offset, stride_, dim_, count};
}

}  // namespace simd
}  // namespace adbscan
