#include "geom/delaunay2d.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

#include "geom/point.h"
#include "util/check.h"

namespace adbscan {
namespace {

struct Pt {
  double x, y;
};

// Strictly positive iff d lies inside the circumcircle of the
// counterclockwise triangle (a, b, c). Evaluated in long double after
// translation to d's frame (the standard conditioning trick).
long double InCircle(const Pt& a, const Pt& b, const Pt& c, const Pt& d) {
  const long double ax = static_cast<long double>(a.x) - d.x;
  const long double ay = static_cast<long double>(a.y) - d.y;
  const long double bx = static_cast<long double>(b.x) - d.x;
  const long double by = static_cast<long double>(b.y) - d.y;
  const long double cx = static_cast<long double>(c.x) - d.x;
  const long double cy = static_cast<long double>(c.y) - d.y;
  const long double a2 = ax * ax + ay * ay;
  const long double b2 = bx * bx + by * by;
  const long double c2 = cx * cx + cy * cy;
  return ax * (by * c2 - b2 * cy) - ay * (bx * c2 - b2 * cx) +
         a2 * (bx * cy - by * cx);
}

// Twice the signed area of (a, b, c); positive iff counterclockwise.
long double Orient(const Pt& a, const Pt& b, const Pt& c) {
  return (static_cast<long double>(b.x) - a.x) *
             (static_cast<long double>(c.y) - a.y) -
         (static_cast<long double>(b.y) - a.y) *
             (static_cast<long double>(c.x) - a.x);
}

struct Triangle {
  uint32_t v[3];
  bool alive = true;
};

}  // namespace

Delaunay2d::Delaunay2d(const Dataset& data, const std::vector<uint32_t>& ids)
    : data_(&data) {
  ADB_CHECK_MSG(data.dim() == 2, "Delaunay2d requires 2D data");
  // Deduplicate exact duplicates (they carry no extra Voronoi structure and
  // break the triangulation).
  std::set<std::pair<double, double>> seen;
  sites_.reserve(ids.size());
  for (uint32_t id : ids) {
    const double* p = data.point(id);
    if (seen.insert({p[0], p[1]}).second) sites_.push_back(id);
  }
  Build();
}

void Delaunay2d::Build() {
  const size_t m = sites_.size();
  adjacency_.assign(m, {});
  if (m < 3) {
    degenerate_ = m >= 1;
    return;
  }

  // Local, centroid-translated coordinates; three synthetic super-triangle
  // vertices appended at indices m..m+2.
  std::vector<Pt> pts(m + 3);
  double cx = 0.0, cy = 0.0;
  for (size_t i = 0; i < m; ++i) {
    cx += data_->point(sites_[i])[0];
    cy += data_->point(sites_[i])[1];
  }
  cx /= static_cast<double>(m);
  cy /= static_cast<double>(m);
  double radius = 1.0;
  for (size_t i = 0; i < m; ++i) {
    pts[i] = {data_->point(sites_[i])[0] - cx,
              data_->point(sites_[i])[1] - cy};
    radius = std::max(radius, std::abs(pts[i].x));
    radius = std::max(radius, std::abs(pts[i].y));
  }
  const double big = 64.0 * radius;
  pts[m] = {-big, -big};
  pts[m + 1] = {big, -big};
  pts[m + 2] = {0.0, big};

  std::vector<Triangle> triangles;
  triangles.push_back(
      {{static_cast<uint32_t>(m), static_cast<uint32_t>(m + 1),
        static_cast<uint32_t>(m + 2)},
       true});

  // Bowyer–Watson, simple O(m²) variant: per insertion scan all live
  // triangles for circumcircle violations. Per-cell point sets are small,
  // so the quadratic bound is irrelevant in this library's usage.
  std::map<std::pair<uint32_t, uint32_t>, int> edge_count;
  for (uint32_t i = 0; i < m; ++i) {
    edge_count.clear();
    bool found_cavity = false;
    for (Triangle& t : triangles) {
      if (!t.alive) continue;
      if (InCircle(pts[t.v[0]], pts[t.v[1]], pts[t.v[2]], pts[i]) > 0.0L) {
        t.alive = false;
        found_cavity = true;
        for (int e = 0; e < 3; ++e) {
          uint32_t u = t.v[e], w = t.v[(e + 1) % 3];
          if (u > w) std::swap(u, w);
          ++edge_count[{u, w}];
        }
      }
    }
    if (!found_cavity) {
      // The point duplicates an existing site numerically or lies exactly
      // on a shared edge with zero incircle value; attach it to the closest
      // triangle by forcing the nearest triangle's cavity.
      double best = std::numeric_limits<double>::infinity();
      Triangle* nearest = nullptr;
      for (Triangle& t : triangles) {
        if (!t.alive) continue;
        for (int v = 0; v < 3; ++v) {
          const double dx = pts[t.v[v]].x - pts[i].x;
          const double dy = pts[t.v[v]].y - pts[i].y;
          const double d2 = dx * dx + dy * dy;
          if (d2 < best) {
            best = d2;
            nearest = &t;
          }
        }
      }
      ADB_CHECK(nearest != nullptr);
      nearest->alive = false;
      for (int e = 0; e < 3; ++e) {
        uint32_t u = nearest->v[e], w = nearest->v[(e + 1) % 3];
        if (u > w) std::swap(u, w);
        ++edge_count[{u, w}];
      }
    }
    // Boundary edges (seen once) fan out to the new point.
    for (const auto& [edge, count] : edge_count) {
      if (count != 1) continue;
      Triangle t;
      t.v[0] = edge.first;
      t.v[1] = edge.second;
      t.v[2] = i;
      if (Orient(pts[t.v[0]], pts[t.v[1]], pts[t.v[2]]) < 0.0L) {
        std::swap(t.v[0], t.v[1]);
      }
      triangles.push_back(t);
    }
    // Periodic compaction keeps the scan proportional to live triangles.
    if (triangles.size() > 16 * (i + 2)) {
      std::vector<Triangle> live;
      live.reserve(triangles.size());
      for (const Triangle& t : triangles) {
        if (t.alive) live.push_back(t);
      }
      triangles.swap(live);
    }
  }

  // Real Delaunay edges: edges between two real sites in live triangles.
  std::set<std::pair<uint32_t, uint32_t>> edges;
  for (const Triangle& t : triangles) {
    if (!t.alive) continue;
    bool touches_super = false;
    for (int v = 0; v < 3; ++v) touches_super |= t.v[v] >= m;
    if (!touches_super) ++triangle_count_;
    for (int e = 0; e < 3; ++e) {
      uint32_t u = t.v[e], w = t.v[(e + 1) % 3];
      if (u >= m || w >= m) continue;
      if (u > w) std::swap(u, w);
      edges.insert({u, w});
    }
  }
  for (const auto& [u, w] : edges) {
    adjacency_[u].push_back(w);
    adjacency_[w].push_back(u);
  }
  if (triangle_count_ == 0) {
    // Fully collinear input: the Voronoi structure is 1-dimensional; use
    // linear scans for queries.
    degenerate_ = true;
  }
}

Delaunay2d::Neighbor Delaunay2d::Nearest(const double* q) const {
  ADB_CHECK(!sites_.empty());
  auto dist2 = [&](uint32_t site_idx) {
    return SquaredDistance(q, data_->point(sites_[site_idx]), 2);
  };
  if (degenerate_) {
    uint32_t best = 0;
    double best_d2 = dist2(0);
    for (uint32_t s = 1; s < sites_.size(); ++s) {
      const double d2 = dist2(s);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = s;
      }
    }
    return {sites_[best], best_d2};
  }
  // Greedy walk on the Delaunay graph from the previous answer.
  uint32_t cur = walk_start_ < sites_.size() ? walk_start_ : 0;
  double cur_d2 = dist2(cur);
  for (;;) {
    uint32_t next = cur;
    double next_d2 = cur_d2;
    for (uint32_t nb : adjacency_[cur]) {
      const double d2 = dist2(nb);
      if (d2 < next_d2) {
        next_d2 = d2;
        next = nb;
      }
    }
    if (next == cur) break;
    cur = next;
    cur_d2 = next_d2;
  }
  walk_start_ = cur;
  return {sites_[cur], cur_d2};
}

}  // namespace adbscan
