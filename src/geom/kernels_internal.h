#ifndef ADBSCAN_GEOM_KERNELS_INTERNAL_H_
#define ADBSCAN_GEOM_KERNELS_INTERNAL_H_

// Raw per-ISA batch kernels behind geom/kernels.h. Not a public API.
//
// Signature contract: writes out[j] = Σ_i (q[i] - soa[i*stride + j])² for
// j in [0, padded_n). padded_n is a positive multiple of kLaneWidth, soa is
// kSoaAlignment-aligned, stride is a multiple of kLaneWidth. `out` may be
// unaligned. Accumulation per output is a single chain in dimension order —
// identical IEEE operation sequence on every path.

#include <cstddef>

namespace adbscan {
namespace simd {
namespace internal {

using BatchDistFn = void (*)(const double* q, const double* soa,
                             size_t stride, int dim, size_t padded_n,
                             double* out);

void OneVsManyScalar(const double* q, const double* soa, size_t stride,
                     int dim, size_t padded_n, double* out);

#if defined(__x86_64__) || defined(_M_X64)
// Defined in kernels_avx2.cc (compiled with -mavx2; call only after an
// __builtin_cpu_supports("avx2") check).
void OneVsManyAvx2(const double* q, const double* soa, size_t stride,
                   int dim, size_t padded_n, double* out);
#endif

#if defined(__aarch64__)
// Defined in kernels_neon.cc (NEON is baseline on aarch64).
void OneVsManyNeon(const double* q, const double* soa, size_t stride,
                   int dim, size_t padded_n, double* out);
#endif

}  // namespace internal
}  // namespace simd
}  // namespace adbscan

#endif  // ADBSCAN_GEOM_KERNELS_INTERNAL_H_
