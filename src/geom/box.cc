#include "geom/box.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace adbscan {

Box Box::Empty(int dim) {
  ADB_CHECK(dim >= 1 && dim <= kMaxDim);
  Box b;
  b.dim = dim;
  for (int i = 0; i < dim; ++i) {
    b.lo[i] = std::numeric_limits<double>::infinity();
    b.hi[i] = -std::numeric_limits<double>::infinity();
  }
  return b;
}

void Box::ExpandToPoint(const double* p) {
  for (int i = 0; i < dim; ++i) {
    lo[i] = std::min(lo[i], p[i]);
    hi[i] = std::max(hi[i], p[i]);
  }
}

void Box::ExpandToBox(const Box& other) {
  ADB_DCHECK(dim == other.dim);
  for (int i = 0; i < dim; ++i) {
    lo[i] = std::min(lo[i], other.lo[i]);
    hi[i] = std::max(hi[i], other.hi[i]);
  }
}

bool Box::ContainsPoint(const double* p) const {
  for (int i = 0; i < dim; ++i) {
    if (p[i] < lo[i] || p[i] > hi[i]) return false;
  }
  return true;
}

double Box::MinSquaredDistToPoint(const double* q) const {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    double diff = 0.0;
    if (q[i] < lo[i]) {
      diff = lo[i] - q[i];
    } else if (q[i] > hi[i]) {
      diff = q[i] - hi[i];
    }
    s += diff * diff;
  }
  return s;
}

double Box::MaxSquaredDistToPoint(const double* q) const {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    const double diff = std::max(std::abs(q[i] - lo[i]), std::abs(q[i] - hi[i]));
    s += diff * diff;
  }
  return s;
}

double Box::MinSquaredDistToBox(const Box& other) const {
  ADB_DCHECK(dim == other.dim);
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    double diff = 0.0;
    if (other.hi[i] < lo[i]) {
      diff = lo[i] - other.hi[i];
    } else if (other.lo[i] > hi[i]) {
      diff = other.lo[i] - hi[i];
    }
    s += diff * diff;
  }
  return s;
}

bool Box::IntersectsBall(const double* center, double radius) const {
  return MinSquaredDistToPoint(center) <= radius * radius;
}

bool Box::InsideBall(const double* center, double radius) const {
  return MaxSquaredDistToPoint(center) <= radius * radius;
}

double Box::MaxExtent() const {
  double m = 0.0;
  for (int i = 0; i < dim; ++i) m = std::max(m, hi[i] - lo[i]);
  return m;
}

double Box::Margin() const {
  double m = 0.0;
  for (int i = 0; i < dim; ++i) m += hi[i] - lo[i];
  return m;
}

double Box::Volume() const {
  double v = 1.0;
  for (int i = 0; i < dim; ++i) v *= std::max(0.0, hi[i] - lo[i]);
  return v;
}

double Box::OverlapVolume(const Box& other) const {
  ADB_DCHECK(dim == other.dim);
  double v = 1.0;
  for (int i = 0; i < dim; ++i) {
    const double side =
        std::min(hi[i], other.hi[i]) - std::max(lo[i], other.lo[i]);
    if (side <= 0.0) return 0.0;
    v *= side;
  }
  return v;
}

}  // namespace adbscan
