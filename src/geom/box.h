#ifndef ADBSCAN_GEOM_BOX_H_
#define ADBSCAN_GEOM_BOX_H_

#include <array>

#include "geom/point.h"

namespace adbscan {

// Axis-aligned box in up to kMaxDim dimensions with inline storage.
// Used by the spatial indexes, the grid (cell extents), and the approximate
// range counting structure (Lemma 5 cell/ball classification).
struct Box {
  std::array<double, kMaxDim> lo;
  std::array<double, kMaxDim> hi;
  int dim = 0;

  Box() = default;

  // Creates an "empty" box (inverted bounds) ready for ExpandToPoint.
  static Box Empty(int dim);

  // Smallest box containing both operands / the given point.
  void ExpandToPoint(const double* p);
  void ExpandToBox(const Box& other);

  bool ContainsPoint(const double* p) const;

  // Minimum squared distance from q to any point of the box (0 if inside).
  double MinSquaredDistToPoint(const double* q) const;

  // Maximum squared distance from q to any point of the box.
  double MaxSquaredDistToPoint(const double* q) const;

  // Minimum squared distance between the two boxes (0 if they intersect).
  double MinSquaredDistToBox(const Box& other) const;

  // True iff the box intersects the closed ball B(center, radius).
  bool IntersectsBall(const double* center, double radius) const;

  // True iff the box lies entirely inside the closed ball B(center, radius).
  bool InsideBall(const double* center, double radius) const;

  // Longest side length.
  double MaxExtent() const;

  // Half-perimeter (sum of side lengths); used by the R-tree split heuristic.
  double Margin() const;

  // d-dimensional volume.
  double Volume() const;

  // Volume of the intersection with another box (0 if disjoint).
  double OverlapVolume(const Box& other) const;
};

}  // namespace adbscan

#endif  // ADBSCAN_GEOM_BOX_H_
