#ifndef ADBSCAN_GEOM_POINT_H_
#define ADBSCAN_GEOM_POINT_H_

#include <cmath>

namespace adbscan {

// Maximum dimensionality supported by the library. The paper evaluates
// d ∈ [2, 7]; 16 leaves generous headroom while letting cell coordinates and
// boxes live in fixed-size inline arrays (no per-object heap allocation on
// hot paths).
inline constexpr int kMaxDim = 16;

// Points are stored as rows of a flat coordinate array (see geom/dataset.h);
// these free functions operate on raw coordinate pointers so that every
// subsystem shares one distance implementation.

inline double SquaredDistance(const double* a, const double* b, int dim) {
  double s = 0.0;
  for (int i = 0; i < dim; ++i) {
    const double diff = a[i] - b[i];
    s += diff * diff;
  }
  return s;
}

inline double Distance(const double* a, const double* b, int dim) {
  return std::sqrt(SquaredDistance(a, b, dim));
}

// True iff dist(a, b) <= eps. Uses squared comparison; no sqrt.
inline bool WithinDistance(const double* a, const double* b, int dim,
                           double eps) {
  return SquaredDistance(a, b, dim) <= eps * eps;
}

}  // namespace adbscan

#endif  // ADBSCAN_GEOM_POINT_H_
