#ifndef ADBSCAN_GEOM_SOA_H_
#define ADBSCAN_GEOM_SOA_H_

#include <cstddef>
#include <cstdint>
#include <memory>

namespace adbscan {

class Dataset;

namespace simd {

// Lane geometry shared by every batch kernel (see geom/kernels.h). The SoA
// buffers are padded to kLaneWidth elements and aligned to kSoaAlignment
// bytes so SIMD paths can use aligned full-width loads everywhere — a
// kernel never touches an unaligned or partial tail.
inline constexpr size_t kLaneWidth = 4;       // doubles per 256-bit vector
inline constexpr size_t kSoaAlignment = 32;   // bytes

// Rounds n up to a multiple of kLaneWidth (0 stays 0).
inline constexpr size_t PaddedCount(size_t n) {
  return (n + kLaneWidth - 1) & ~(kLaneWidth - 1);
}

// A non-owning window into a SoaBlock: `count` points whose i-th coordinates
// live at base[i * stride + j], j in [0, count). Invariants, guaranteed by
// SoaBlock: base is kSoaAlignment-aligned, stride is a multiple of
// kLaneWidth, and the padding slots [count, PaddedCount(count)) of every
// dimension are readable and hold finite coordinates (duplicates of a real
// point), so kernels may compute — and discard — full-width tails.
struct SoaSpan {
  const double* base = nullptr;
  size_t stride = 0;
  int dim = 0;
  size_t count = 0;
};

// An owning, padded, aligned structure-of-arrays copy of (a subset of) a
// Dataset: dimension-major, one stride-long array per dimension. This is the
// batch view every distance kernel consumes; see DESIGN.md "Distance
// kernels" for the alignment/padding contract.
class SoaBlock {
 public:
  SoaBlock() = default;

  // All points of `data`, in id order.
  explicit SoaBlock(const Dataset& data);

  // The points `ids[0..count)` of `data`, in that order.
  SoaBlock(const Dataset& data, const uint32_t* ids, size_t count);

  // Same, gathering with up to num_threads workers (bit-identical result —
  // the gather is a pure scatter-free copy over disjoint lane ranges).
  SoaBlock(const Dataset& data, const uint32_t* ids, size_t count,
           int num_threads);

  SoaBlock(const SoaBlock& other);
  SoaBlock& operator=(const SoaBlock& other);
  SoaBlock(SoaBlock&&) = default;
  SoaBlock& operator=(SoaBlock&&) = default;

  int dim() const { return dim_; }
  size_t count() const { return count_; }
  size_t stride() const { return stride_; }
  bool empty() const { return count_ == 0; }

  // Coordinate i of point j.
  double at(int i, size_t j) const { return data_[i * stride_ + j]; }

  // View of the whole block.
  SoaSpan span() const { return SoaSpan{data_.get(), stride_, dim_, count_}; }

  // View of points [offset, offset + count); offset must be a multiple of
  // kLaneWidth so the sub-view keeps the alignment contract. The caller must
  // guarantee the padding slots after `count` are themselves real or padded
  // entries of this block (true for lane-aligned segment layouts such as the
  // kd-tree's per-leaf segments).
  SoaSpan span(size_t offset, size_t count) const;

 private:
  void Fill(const Dataset& data, const uint32_t* ids, size_t count,
            int num_threads);

  struct AlignedFree {
    void operator()(double* p) const;
  };

  int dim_ = 0;
  size_t count_ = 0;
  size_t stride_ = 0;  // PaddedCount(count_)
  std::unique_ptr<double[], AlignedFree> data_;  // dim_ * stride_ doubles
};

}  // namespace simd
}  // namespace adbscan

#endif  // ADBSCAN_GEOM_SOA_H_
