#ifndef ADBSCAN_GEOM_DELAUNAY2D_H_
#define ADBSCAN_GEOM_DELAUNAY2D_H_

#include <cstdint>
#include <vector>

#include "geom/dataset.h"

namespace adbscan {

// 2D Delaunay triangulation (Bowyer–Watson) over a subset of a Dataset —
// the dual of the Voronoi diagram that Gunawan's 2D algorithm [11] builds
// per core cell to answer nearest-core-neighbor queries (Section 2.2
// "Computation of G").
//
// Nearest-neighbor queries walk the Delaunay graph greedily: from the last
// answer, repeatedly step to any neighbor closer to the query; the walk
// ends at the site whose Voronoi cell contains the query, i.e. the nearest
// neighbor (greedy routing on Delaunay triangulations always reaches the
// closest site). Expected O(√m)-ish steps per query on benign data.
//
// Degenerate inputs are handled pragmatically: exact duplicates are
// collapsed onto one site, and fully collinear inputs (no triangles) fall
// back to linear-scan queries.
class Delaunay2d {
 public:
  struct Neighbor {
    uint32_t id;           // dataset point id
    double squared_dist;
  };

  // Builds over the subset `ids` of `data` (which must be 2-dimensional and
  // outlive the structure).
  Delaunay2d(const Dataset& data, const std::vector<uint32_t>& ids);

  // Nearest site to q (nullopt iff the structure is empty).
  // Not thread-safe: reuses the previous answer as the walk start.
  Neighbor Nearest(const double* q) const;

  bool empty() const { return sites_.empty(); }
  size_t num_sites() const { return sites_.size(); }
  size_t num_triangles() const { return triangle_count_; }

  // Test hook: the Delaunay adjacency of site s (indices into sites()).
  const std::vector<std::vector<uint32_t>>& adjacency() const {
    return adjacency_;
  }
  const std::vector<uint32_t>& sites() const { return sites_; }

 private:
  void Build();

  const Dataset* data_;
  std::vector<uint32_t> sites_;                 // deduplicated point ids
  std::vector<std::vector<uint32_t>> adjacency_;  // Delaunay graph
  size_t triangle_count_ = 0;
  bool degenerate_ = false;  // collinear input: fall back to linear scan
  mutable uint32_t walk_start_ = 0;
};

}  // namespace adbscan

#endif  // ADBSCAN_GEOM_DELAUNAY2D_H_
