#ifndef ADBSCAN_GEOM_DATASET_H_
#define ADBSCAN_GEOM_DATASET_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "geom/soa.h"

namespace adbscan {

// An immutable-after-construction set of n points in d-dimensional space,
// stored as one contiguous row-major coordinate array. This is the input type
// of every clustering algorithm in the library.
//
// Point ids are dense indices [0, size()). All algorithms report clusters in
// terms of these ids.
class Dataset {
 public:
  // An empty dataset of the given dimensionality; fill with Add().
  explicit Dataset(int dim);

  // Takes ownership of a flat row-major coordinate array whose length must be
  // a multiple of dim.
  Dataset(int dim, std::vector<double> coords);

  Dataset(const Dataset&) = default;
  Dataset& operator=(const Dataset&) = default;
  Dataset(Dataset&&) = default;
  Dataset& operator=(Dataset&&) = default;

  int dim() const { return dim_; }
  size_t size() const { return coords_.size() / dim_; }
  bool empty() const { return coords_.empty(); }

  // Coordinates of point i.
  const double* point(size_t i) const { return coords_.data() + i * dim_; }
  const std::vector<double>& coords() const { return coords_; }

  void Reserve(size_t n) { coords_.reserve(n * dim_); }

  // Appends a point; p must hold dim() coordinates. Returns its id.
  uint32_t Add(const double* p);
  uint32_t Add(std::initializer_list<double> p);
  uint32_t Add(const std::vector<double>& p);

  // Bounding box of all points; must not be called on an empty dataset.
  Box BoundingBox() const;

  // Padded, 32-byte-aligned structure-of-arrays view of all points in id
  // order — the batch view the SIMD distance kernels consume (geom/kernels.h).
  // Built lazily on first use and cached; Add() invalidates the cache, so
  // callers on hot paths should fetch it once after the dataset is final.
  // Thread-safe; the returned block is immutable and stays alive as long as
  // any caller holds the shared_ptr, even across an Add().
  std::shared_ptr<const simd::SoaBlock> Soa() const;

 private:
  int dim_;
  std::vector<double> coords_;
  // Cache for Soa(). Copied datasets share the snapshot (it is immutable);
  // mutation through Add() drops only the mutating instance's reference.
  mutable std::shared_ptr<const simd::SoaBlock> soa_;
};

}  // namespace adbscan

#endif  // ADBSCAN_GEOM_DATASET_H_
