#ifndef ADBSCAN_GEOM_DATASET_H_
#define ADBSCAN_GEOM_DATASET_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"
#include "geom/soa.h"

namespace adbscan {

// An immutable-after-construction set of n points in d-dimensional space,
// stored as one contiguous row-major coordinate array. This is the input type
// of every clustering algorithm in the library.
//
// Point ids are dense indices [0, size()). All algorithms report clusters in
// terms of these ids.
//
// Two storage modes share the same read interface:
//  - owning: a heap vector filled through Add() (the default);
//  - external: a read-only view over caller-provided storage — typically a
//    file mapping created by MapBinary (io/dataset_io.h) — kept alive by a
//    shared keepalive token. External datasets are immutable (Add aborts)
//    and copies share the mapping. Every algorithm works unchanged on either
//    mode because all access goes through point()/size(); only the pages a
//    pipeline actually touches are faulted in, which is what makes
//    shard-at-a-time processing (src/shard) work on datasets larger than
//    RAM.
class Dataset {
 public:
  // An empty dataset of the given dimensionality; fill with Add().
  explicit Dataset(int dim);

  // Takes ownership of a flat row-major coordinate array whose length must be
  // a multiple of dim.
  Dataset(int dim, std::vector<double> coords);

  // External read-only storage: n points at `coords` (row-major, n * dim
  // doubles). `keepalive` is held for the dataset's lifetime (and by every
  // copy) so the backing storage — e.g. an mmap'ed file — stays valid.
  Dataset(int dim, const double* coords, size_t n,
          std::shared_ptr<const void> keepalive);

  Dataset(const Dataset& other);
  Dataset& operator=(const Dataset& other);
  Dataset(Dataset&& other) noexcept;
  Dataset& operator=(Dataset&& other) noexcept;

  int dim() const { return dim_; }
  size_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  // True when the coordinates live in external (e.g. file-backed) storage.
  bool external() const { return keepalive_ != nullptr; }

  // Coordinates of point i.
  const double* point(size_t i) const { return base_ + i * dim_; }

  // The flat coordinate array (size() * dim() doubles), either storage mode.
  const double* raw() const { return base_; }

  // Owning-mode only: the backing vector (external datasets abort — use
  // raw()).
  const std::vector<double>& coords() const;

  void Reserve(size_t n) { coords_.reserve(n * dim_); }

  // Appends a point; p must hold dim() coordinates. Returns its id.
  // Owning-mode only: external datasets are immutable.
  uint32_t Add(const double* p);
  uint32_t Add(std::initializer_list<double> p);
  uint32_t Add(const std::vector<double>& p);

  // Bounding box of all points; must not be called on an empty dataset.
  Box BoundingBox() const;

  // Padded, 32-byte-aligned structure-of-arrays view of all points in id
  // order — the batch view the SIMD distance kernels consume (geom/kernels.h).
  // Built lazily on first use and cached; Add() invalidates the cache, so
  // callers on hot paths should fetch it once after the dataset is final.
  // Thread-safe; the returned block is immutable and stays alive as long as
  // any caller holds the shared_ptr, even across an Add(). Note the block is
  // an in-RAM copy even for external datasets — whole-dataset consumers that
  // must stay out-of-core gather per-shard subsets instead (src/shard).
  std::shared_ptr<const simd::SoaBlock> Soa() const;

 private:
  int dim_;
  size_t n_ = 0;                 // points
  const double* base_ = nullptr;  // coords_.data() or the external array
  std::vector<double> coords_;
  std::shared_ptr<const void> keepalive_;  // non-null iff external
  // Cache for Soa(). Copied datasets share the snapshot (it is immutable);
  // mutation through Add() drops only the mutating instance's reference.
  mutable std::shared_ptr<const simd::SoaBlock> soa_;
};

}  // namespace adbscan

#endif  // ADBSCAN_GEOM_DATASET_H_
