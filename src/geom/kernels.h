#ifndef ADBSCAN_GEOM_KERNELS_H_
#define ADBSCAN_GEOM_KERNELS_H_

// Batched squared-distance kernels over SoA views (geom/soa.h), with runtime
// CPU dispatch between a scalar reference path and SIMD paths (AVX2 on
// x86-64, NEON on aarch64).
//
// Determinism contract: every dispatch path computes each output distance
// with the SAME sequence of IEEE operations — one accumulator per output
// point, dimensions added in increasing order, diff = q[i] - x[i], no FMA
// contraction (the build sets -ffp-contract=off) — so results are
// bit-identical regardless of the selected kernel, batch size, or chunking.
// The differential suite in tests/test_kernels.cc enforces this bitwise.
//
// Alignment contract: kernels only ever issue aligned full-width loads; the
// SoaBlock padding guarantees the tail lanes are readable, finite
// duplicates whose outputs the helpers discard.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "geom/soa.h"

namespace adbscan {
namespace simd {

enum class KernelKind { kScalar, kAvx2, kNeon, kAuto };

// True iff this binary has the code path AND the CPU supports it. kScalar
// and kAuto are always supported.
bool KernelSupported(KernelKind kind);

// Selects the kernel used by all helpers below. kAuto resolves to the best
// supported SIMD path (falling back to scalar). Returns false — leaving the
// selection unchanged — if the kind is unsupported here. Thread-safe, but
// intended to be called once at startup (flag/env), not concurrently with
// running queries.
bool SetKernel(KernelKind kind);

// The concrete kind currently in use (never kAuto).
KernelKind ActiveKernel();

const char* KernelName(KernelKind kind);

// Parses "scalar" | "avx2" | "neon" | "auto". Returns false on anything else.
bool ParseKernelKind(const std::string& name, KernelKind* out);

// --- Batch helpers (all dispatch through the selected kernel) ---

// out[j] = squared distance from q to point j, for j in [0,
// PaddedCount(s.count)). `out` needs room for the padded count; only the
// first s.count entries are meaningful. `q` has s.dim coordinates and needs
// no particular alignment.
void SquaredDists(const double* q, const SoaSpan& s, double* out);

// Number of points within squared distance eps2 of q, scanning in index
// order and returning as soon as the count reaches stop_at (so the result
// is min-capped exactly like a scalar early-exit loop).
size_t CountWithin(const double* q, const SoaSpan& s, double eps2,
                   size_t stop_at);

bool AnyWithin(const double* q, const SoaSpan& s, double eps2);

// Appends ids[j] to *out for every j with dist²(q, point j) <= eps2, in
// increasing j — identical output order to the scalar loop it replaces.
void CollectWithin(const double* q, const SoaSpan& s, double eps2,
                   const uint32_t* ids, std::vector<uint32_t>* out);

// First index attaining the minimum squared distance (strict-< scan order,
// matching `if (d2 < best)` loops). index == s.count and an infinite
// distance when the span is empty.
struct BlockNearest {
  size_t index;
  double squared_dist;
};
BlockNearest NearestInBlock(const double* q, const SoaSpan& s);

// Copies point j of the span into out[0..dim).
void GatherPoint(const SoaSpan& s, size_t j, double* out);

// Block-vs-block tile: out[ja * PaddedCount(b.count) + jb] = squared
// distance between point ja of `a` and point jb of `b`, ja in [0, a.count),
// jb in [0, PaddedCount(b.count)). `out` needs a.count * PaddedCount(b.count)
// doubles. Row-major, so a row scan reproduces the (a outer, b inner)
// iteration order of a doubly-nested scalar loop.
void BlockVsBlock(const SoaSpan& a, const SoaSpan& b, double* out);

}  // namespace simd
}  // namespace adbscan

#endif  // ADBSCAN_GEOM_KERNELS_H_
