// AVX2 batch distance kernel. This translation unit is the only one compiled
// with -mavx2 (see src/CMakeLists.txt); callers must gate on
// __builtin_cpu_supports("avx2") — the dispatcher in kernels.cc does.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "geom/kernels_internal.h"
#include "geom/soa.h"

namespace adbscan {
namespace simd {
namespace internal {

void OneVsManyAvx2(const double* q, const double* soa, size_t stride,
                   int dim, size_t padded_n, double* out) {
  static_assert(kLaneWidth == 4, "AVX2 path assumes 4 doubles per vector");
  for (size_t j = 0; j < padded_n; j += 4) {
    __m256d acc = _mm256_setzero_pd();
    for (int i = 0; i < dim; ++i) {
      const __m256d x = _mm256_load_pd(soa + i * stride + j);
      const __m256d diff = _mm256_sub_pd(_mm256_set1_pd(q[i]), x);
      // mul + add, never FMA: fused rounding would diverge from the scalar
      // reference and break the bit-identical dispatch guarantee.
      acc = _mm256_add_pd(acc, _mm256_mul_pd(diff, diff));
    }
    _mm256_storeu_pd(out + j, acc);
  }
}

}  // namespace internal
}  // namespace simd
}  // namespace adbscan

#endif  // x86-64
