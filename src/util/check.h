#ifndef ADBSCAN_UTIL_CHECK_H_
#define ADBSCAN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Lightweight runtime assertions that stay on in release builds.
//
// ADB_CHECK(cond) aborts with file/line when cond is false. Use it for
// preconditions on public APIs and for invariants whose violation would
// silently corrupt clustering output. ADB_DCHECK compiles out with NDEBUG
// and is for hot-loop invariants.

#define ADB_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ADB_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define ADB_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "ADB_CHECK failed at %s:%d: %s (%s)\n", __FILE__,\
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define ADB_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define ADB_DCHECK(cond) ADB_CHECK(cond)
#endif

#endif  // ADBSCAN_UTIL_CHECK_H_
