#ifndef ADBSCAN_UTIL_RNG_H_
#define ADBSCAN_UTIL_RNG_H_

#include <cstdint>

namespace adbscan {

// Deterministic, fast pseudo-random generator (xoshiro256** seeded via
// SplitMix64). All data generation and randomized algorithms in this
// repository draw from Rng so that every experiment is reproducible from a
// single integer seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal variate (Box-Muller, uncached).
  double NextGaussian();

  // Bernoulli trial with success probability p.
  bool NextBernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace adbscan

#endif  // ADBSCAN_UTIL_RNG_H_
