#ifndef ADBSCAN_UTIL_RNG_H_
#define ADBSCAN_UTIL_RNG_H_

#include <cstdint>

namespace adbscan {

// One SplitMix64 step: advances *state and returns the next 64-bit output.
// The common seed-expansion primitive behind Rng and DeriveSeed.
uint64_t SplitMix64(uint64_t* state);

// Derives a decorrelated child seed for logical stream `stream` of a master
// `seed` (two SplitMix64 steps over the concatenated pair, so nearby seeds
// and nearby stream ids yield unrelated streams). This is how a run with a
// single --seed hands out independent generators to its components — the
// sampler, per-dataset harness draws, per-round perturbations — keyed by
// *logical* indices only, never by thread id or worker count, so results
// are bit-for-bit reproducible at any thread count:
//
//   Rng sampler(DeriveSeed(seed, 0));
//   Rng jitter(DeriveSeed(seed, dataset_index));
uint64_t DeriveSeed(uint64_t seed, uint64_t stream);

// Deterministic, fast pseudo-random generator (xoshiro256** seeded via
// SplitMix64). All data generation and randomized algorithms in this
// repository draw from Rng so that every experiment is reproducible from a
// single integer seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

  // Uniform 64-bit value.
  uint64_t Next();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  // Standard normal variate (Box-Muller, uncached).
  double NextGaussian();

  // Bernoulli trial with success probability p.
  bool NextBernoulli(double p);

 private:
  uint64_t s_[4];
};

}  // namespace adbscan

#endif  // ADBSCAN_UTIL_RNG_H_
