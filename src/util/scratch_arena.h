#ifndef ADBSCAN_UTIL_SCRATCH_ARENA_H_
#define ADBSCAN_UTIL_SCRATCH_ARENA_H_

#include <cstddef>
#include <vector>

namespace adbscan {

// Reusable per-worker scratch buffers for hot loops that would otherwise
// heap-allocate per cell or per probe. Each (element type, slot) pair names
// one thread-local std::vector that keeps its capacity across calls, so a
// loop that clears and refills it runs allocation-free once warm — the
// property the steady-state tests in tests/test_grid.cc assert for the
// warmed grid paths.
//
// Slot discipline: a call site owns its slot for as long as the reference
// it took is live. Two buffers of the same element type that are live at
// the same time (including across a call into another subsystem) must use
// different slots; the named constants below partition the slot space so
// call sites cannot collide by accident. Taking the same (type, slot) from
// two call frames of the same thread aliases one buffer — that is the bug
// this registry exists to prevent.
//
// Thread-compatibility: the buffers are thread-local, so concurrent workers
// (e.g. ParallelFor chunks) never share one. References must not escape
// the thread that obtained them.
namespace scratch {

// std::vector<uint32_t> slots.
inline constexpr int kRangeCountRoots = 0;      // ApproxRangeCounter: root hits
inline constexpr int kRangeCountStack = 1;      // ApproxRangeCounter: kd DFS
inline constexpr int kBorderCandidateCells = 2; // border: candidate grid cells
inline constexpr int kBorderCoreCells = 3;      // border: core-cell ids
inline constexpr int kBorderGridCells = 4;      // border: grid-cell ids
inline constexpr int kGridBuildSlots = 5;       // Grid build: probe tables
inline constexpr int kSampleCoreCells = 6;      // sample assign: core-cell ids
inline constexpr int kSampleGridCells = 7;      // sample assign: grid-cell ids

// std::vector<std::pair<double, uint32_t>> slots.
inline constexpr int kGridDistKeys = 0;  // Grid: (corner dist, cell) sort keys

// std::vector<double> slots.
inline constexpr int kSampleDistLanes = 0;  // k-center draw: per-block dists

// std::vector<Box> slots.
inline constexpr int kCoreNeighborBoxes = 0;  // core labeling: neighbor boxes
inline constexpr int kBorderCoreBoxes = 1;    // border: candidate core boxes
inline constexpr int kSampleCoreBoxes = 2;    // sample assign: core-cell boxes

// std::vector<simd::SoaSpan> / std::vector<simd::SoaBlock> slots.
inline constexpr int kCoreNeighborViews = 0;  // core labeling: per-cell views
inline constexpr int kBorderCoreViews = 1;    // border: per-candidate views
inline constexpr int kSampleCoreViews = 2;    // sample assign: per-candidate views

}  // namespace scratch

// Ceiling on slots per element type. Fixed so the pool vector NEVER grows:
// growing would move the inner vectors and dangle every reference handed
// out earlier on this thread (call sites routinely hold two slots at once).
inline constexpr int kMaxScratchSlots = 8;

// The slot'th reusable buffer of element type T for the calling thread.
// Never cleared by the arena itself: callers clear() (keeping capacity)
// before refilling.
template <typename T>
inline std::vector<T>& WorkerScratch(int slot = 0) {
  thread_local std::vector<std::vector<T>> pools(kMaxScratchSlots);
  return pools[static_cast<size_t>(slot)];
}

}  // namespace adbscan

#endif  // ADBSCAN_UTIL_SCRATCH_ARENA_H_
