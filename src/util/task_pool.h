#ifndef ADBSCAN_UTIL_TASK_POOL_H_
#define ADBSCAN_UTIL_TASK_POOL_H_

// Persistent work-stealing thread pool behind ParallelFor (util/parallel.h).
//
// Architecture (see DESIGN.md "Concurrency model"):
//   - A lazy process-wide singleton owns the worker threads; workers are
//     spawned on first demand (up to kMaxWorkers) and then persist, parked
//     on a condition variable between parallel regions. Re-using threads
//     removes the per-call spawn/join cost of the old ParallelFor and keeps
//     the obs thread shards (one per worker) stable across a run.
//   - Each parallel region splits [0, n) into chunks of ~n/(threads * 8)
//     indices and deals them into per-participant Chase-Lev-style deques.
//     A participant pops from the bottom of its own deque and, when empty,
//     steals from the top of a victim's. Dynamic chunking + stealing load-
//     balance the highly skewed per-grid-cell work of the DBSCAN pipelines,
//     which a static partition cannot.
//   - The deques hold precomputed chunk ids in a fixed buffer that is only
//     written before the region is published, so the classic Chase-Lev
//     buffer-growth races do not exist here; top/bottom use seq_cst atomics
//     (no standalone fences, so the protocol is exact under TSan).
//   - Nested ParallelFor calls (from inside a chunk) run inline on the
//     calling thread; the pool never deadlocks on re-entry.
//
// The pool size is capped by the ADBSCAN_THREADS environment variable when
// set (see DefaultThreads() in util/parallel.h); per-call num_threads caps
// the number of participants of that region only.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace adbscan {

class TaskPool {
 public:
  // Hard cap on pool workers, matching the old ParallelFor thread cap.
  static constexpr int kMaxWorkers = 256;

  // Chunks dealt per participant; >1 so stealing has something to balance.
  static constexpr size_t kChunksPerParticipant = 8;

  // The process-wide pool. Created on first use; workers are joined at
  // static destruction.
  static TaskPool& Global();

  // Runs chunk_fn over a dynamic partition of [0, n): the calling thread
  // plus up to max_threads - 1 pool workers cooperate via work stealing.
  // Returns after every chunk has executed (all writes made by chunk_fn
  // happen-before the return). Runs inline when max_threads <= 1, n is
  // tiny, or the caller is already inside a parallel region.
  void Run(size_t n, int max_threads,
           const std::function<void(size_t, size_t)>& chunk_fn);

  // True while the calling thread executes inside a Run chunk (used to
  // force nested regions inline).
  static bool InParallelRegion();

  // Number of workers currently spawned (grows on demand; test hook).
  int NumSpawnedWorkers();

  ~TaskPool();

 private:
  // One participant's deque of chunk ids. The buffer is filled by the
  // submitting thread before the job is published and never written again;
  // only top/bottom move afterwards, so steals never race on the payload.
  struct Deque {
    std::vector<size_t> chunks;
    std::atomic<int64_t> top{0};
    std::atomic<int64_t> bottom{0};

    bool Take(size_t* out);   // owner side, LIFO bottom
    bool Steal(size_t* out);  // thief side, FIFO top; false on race or empty
  };

  struct Job;

  TaskPool() = default;
  void EnsureWorkersLocked(int wanted);
  void WorkerLoop(int worker_index);
  static void Participate(Job& job, int slot);

  std::mutex mu_;  // guards workers_, current_job_, generation_
  std::condition_variable wake_cv_;
  std::vector<std::thread> workers_;
  Job* current_job_ = nullptr;
  uint64_t generation_ = 0;
  bool stop_ = false;

  // Serializes top-level parallel regions (one job in flight at a time).
  std::mutex submit_mu_;
};

}  // namespace adbscan

#endif  // ADBSCAN_UTIL_TASK_POOL_H_
