#include "util/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "util/check.h"

namespace adbscan {
namespace {

bool ParseBoolValue(const std::string& text) {
  return text == "1" || text == "true" || text == "yes" || text == "on";
}

}  // namespace

Flags& Flags::DefineInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  flags_[name] = Flag{Type::kInt, std::to_string(default_value), help};
  return *this;
}

Flags& Flags::DefineDouble(const std::string& name, double default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kDouble, std::to_string(default_value), help};
  return *this;
}

Flags& Flags::DefineBool(const std::string& name, bool default_value,
                         const std::string& help) {
  flags_[name] = Flag{Type::kBool, default_value ? "true" : "false", help};
  return *this;
}

Flags& Flags::DefineString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kString, default_value, help};
  return *this;
}

void Flags::Parse(int argc, char** argv) {
  std::set<std::string> seen;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage(argv[0]);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument '%s'\n",
                   arg.c_str());
      PrintUsage(argv[0]);
      std::exit(2);
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    const size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag '--%s'\n", name.c_str());
      PrintUsage(argv[0]);
      std::exit(2);
    }
    if (!has_value) {
      if (it->second.type == Type::kBool) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "flag '--%s' expects a value\n", name.c_str());
        std::exit(2);
      }
    }
    // Repeats are accepted — last occurrence wins — but warn loudly so a
    // scripted sweep that builds command lines by concatenation can't
    // silently drop an earlier setting.
    if (!seen.insert(name).second) {
      ++repeat_warnings_;
      std::fprintf(stderr,
                   "warning: flag '--%s' given multiple times; "
                   "using the last value '%s'\n",
                   name.c_str(), value.c_str());
    }
    it->second.value = value;
  }
}

const Flags::Flag& Flags::Lookup(const std::string& name, Type type) const {
  auto it = flags_.find(name);
  ADB_CHECK_MSG(it != flags_.end(), name.c_str());
  ADB_CHECK_MSG(it->second.type == type, name.c_str());
  return it->second;
}

int64_t Flags::GetInt(const std::string& name) const {
  return std::strtoll(Lookup(name, Type::kInt).value.c_str(), nullptr, 10);
}

bool Flags::TryGetInt(const std::string& name, int64_t* out) const {
  const std::string& text = Lookup(name, Type::kInt).value;
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const int64_t v = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size() || errno == ERANGE) return false;
  *out = v;
  return true;
}

bool Flags::TryGetDouble(const std::string& name, double* out) const {
  const std::string& text = Lookup(name, Type::kDouble).value;
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE ||
      !std::isfinite(v)) {
    return false;
  }
  *out = v;
  return true;
}

double Flags::GetDouble(const std::string& name) const {
  return std::strtod(Lookup(name, Type::kDouble).value.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name) const {
  return ParseBoolValue(Lookup(name, Type::kBool).value);
}

const std::string& Flags::GetString(const std::string& name) const {
  return Lookup(name, Type::kString).value;
}

std::vector<double> Flags::GetDoubleList(const std::string& name) const {
  const std::string& text = Lookup(name, Type::kString).value;
  std::vector<double> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    out.push_back(std::strtod(text.substr(pos, comma - pos).c_str(), nullptr));
    pos = comma + 1;
  }
  return out;
}

std::vector<int64_t> Flags::GetIntList(const std::string& name) const {
  std::vector<int64_t> out;
  for (double v : GetDoubleList(name)) out.push_back(static_cast<int64_t>(v));
  return out;
}

void Flags::PrintUsage(const char* argv0) const {
  std::fprintf(stderr, "usage: %s [flags]\n", argv0);
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%-20s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.value.c_str());
  }
}

}  // namespace adbscan
