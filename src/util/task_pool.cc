#include "util/task_pool.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

// True while the current thread executes chunks of some job (worker or
// submitter); nested ParallelFor calls check this and run inline.
thread_local bool tls_in_parallel_region = false;

}  // namespace

// One parallel region. Stack-allocated by the submitting thread; workers
// only hold a pointer while registered in `active`, and Run() does not
// return before `active` drops to zero, so the pointer never dangles.
struct TaskPool::Job {
  const std::function<void(size_t, size_t)>* chunk_fn;
  size_t n = 0;
  size_t grain = 0;
  size_t num_chunks = 0;
  int participants = 0;  // deque slots; slot 0 is the submitter

  std::vector<Deque> deques;

  // Worker slots handed out (0 .. participants-2 map to slots 1..).
  std::atomic<int> claimed{0};
  // Pool workers currently inside Participate() for this job.
  std::atomic<int> active{0};
  // Chunks not yet fully executed; 0 means all chunk_fn calls returned.
  std::atomic<size_t> remaining{0};

  // Region stats (only maintained when metrics are runtime-enabled).
  std::atomic<size_t> steals{0};
  std::atomic<uint64_t> busy_ns{0};
  bool timed = false;

  std::mutex mu;
  std::condition_variable done_cv;

  Job(const std::function<void(size_t, size_t)>& fn, size_t n_, size_t grain_,
      size_t num_chunks_, int participants_)
      : chunk_fn(&fn),
        n(n_),
        grain(grain_),
        num_chunks(num_chunks_),
        participants(participants_),
        deques(participants_),
        remaining(num_chunks_) {
    // Deal chunk ids in contiguous blocks: participant p owns chunks
    // [p*per, (p+1)*per). Owners pop from the bottom (their block's end),
    // thieves steal from the top, so an owner and its thieves approach each
    // other and collide at most once per block.
    const size_t per = (num_chunks + participants - 1) / participants;
    for (int p = 0; p < participants; ++p) {
      const size_t begin = p * per;
      const size_t end = std::min(num_chunks, begin + per);
      Deque& d = deques[p];
      for (size_t c = begin; c < end; ++c) d.chunks.push_back(c);
      d.bottom.store(static_cast<int64_t>(d.chunks.size()),
                     std::memory_order_relaxed);
    }
  }
};

bool TaskPool::Deque::Take(size_t* out) {
  const int64_t b = bottom.load(std::memory_order_seq_cst) - 1;
  bottom.store(b, std::memory_order_seq_cst);
  int64_t t = top.load(std::memory_order_seq_cst);
  if (t <= b) {
    *out = chunks[static_cast<size_t>(b)];
    if (t == b) {
      // Last element: race the thieves for it.
      const bool won =
          top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst);
      bottom.store(b + 1, std::memory_order_seq_cst);
      return won;
    }
    return true;
  }
  bottom.store(b + 1, std::memory_order_seq_cst);
  return false;
}

bool TaskPool::Deque::Steal(size_t* out) {
  int64_t t = top.load(std::memory_order_seq_cst);
  const int64_t b = bottom.load(std::memory_order_seq_cst);
  if (t >= b) return false;
  const size_t item = chunks[static_cast<size_t>(t)];
  if (top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst)) {
    *out = item;
    return true;
  }
  return false;  // lost the race; caller rescans
}

TaskPool& TaskPool::Global() {
  // Function-local static (not leaked): the destructor parks and joins the
  // workers at process exit so sanitizers see no thread leak.
  static TaskPool pool;
  return pool;
}

TaskPool::~TaskPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool TaskPool::InParallelRegion() { return tls_in_parallel_region; }

int TaskPool::NumSpawnedWorkers() {
  const std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void TaskPool::EnsureWorkersLocked(int wanted) {
  const int target = std::min(wanted, kMaxWorkers - 1);
  while (static_cast<int>(workers_.size()) < target) {
    const int index = static_cast<int>(workers_.size());
    workers_.emplace_back([this, index] { WorkerLoop(index); });
  }
}

void TaskPool::WorkerLoop(int worker_index) {
  obs::SetTraceThreadLabel("pool-worker-" + std::to_string(worker_index));
  uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    wake_cv_.wait(lock, [&] {
      return stop_ || (generation_ != seen_generation && current_job_);
    });
    if (stop_) return;
    seen_generation = generation_;
    Job* job = current_job_;
    int slot = -1;
    if (job != nullptr) {
      const int idx = job->claimed.fetch_add(1, std::memory_order_relaxed);
      if (idx < job->participants - 1) {
        slot = idx + 1;
        // Registered under mu_: Run() clears current_job_ under mu_ before
        // waiting for active == 0, so this registration is either seen by
        // that wait or the job was never visible to us.
        job->active.fetch_add(1, std::memory_order_relaxed);
      } else {
        job = nullptr;  // job already has all its participants
      }
    }
    if (job != nullptr) {
      lock.unlock();
      Participate(*job, slot);
      {
        // Deregister and notify under job->mu: Run() cannot re-check its
        // predicate (and destroy the stack Job) until this block releases
        // the mutex, which is after notify_all has returned.
        const std::lock_guard<std::mutex> done_lock(job->mu);
        job->active.fetch_sub(1, std::memory_order_acq_rel);
        job->done_cv.notify_all();
      }
      lock.lock();
    }
  }
}

void TaskPool::Participate(Job& job, int slot) {
  tls_in_parallel_region = true;
  const int p = job.participants;
  size_t stolen = 0;
  uint64_t busy_ns = 0;
  size_t chunk;
  while (true) {
    bool have = job.deques[slot].Take(&chunk);
    if (!have) {
      // Own deque drained: scan victims round-robin. A failed CAS means
      // contention, not emptiness, so rescan until a full quiet pass.
      bool contended = true;
      while (!have && contended) {
        contended = false;
        for (int v = 1; v < p && !have; ++v) {
          Deque& victim = job.deques[(slot + v) % p];
          if (victim.top.load(std::memory_order_seq_cst) <
              victim.bottom.load(std::memory_order_seq_cst)) {
            if (victim.Steal(&chunk)) {
              have = true;
              ++stolen;
              ADB_TRACE_INSTANT("pool.steal");
            } else {
              contended = true;
            }
          }
        }
      }
      if (!have) break;  // every deque empty: no work left to claim
    }
    const size_t begin = chunk * job.grain;
    const size_t end = std::min(job.n, begin + job.grain);
    {
      obs::TraceSpan chunk_span("pool.chunk");
      if (job.timed) {
        const auto t0 = std::chrono::steady_clock::now();
        (*job.chunk_fn)(begin, end);
        busy_ns += static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
      } else {
        (*job.chunk_fn)(begin, end);
      }
    }
    const size_t before = job.remaining.fetch_sub(1, std::memory_order_acq_rel);
    ADB_TRACE_COUNTER("pool.queue_depth", before - 1);
    if (before == 1) {
      // Notify under job.mu (see WorkerLoop) so the Job outlives the call.
      const std::lock_guard<std::mutex> done_lock(job.mu);
      job.done_cv.notify_all();
    }
  }
  if (job.timed) {
    job.steals.fetch_add(stolen, std::memory_order_relaxed);
    job.busy_ns.fetch_add(busy_ns, std::memory_order_relaxed);
  }
  // All of this thread's trace writes for the region land before the park
  // instant, which itself lands before the worker deregisters under
  // job.mu — the happens-before edge Snapshot() relies on.
  if (slot != 0) ADB_TRACE_INSTANT("pool.park");
  tls_in_parallel_region = false;
}

void TaskPool::Run(size_t n, int max_threads,
                   const std::function<void(size_t, size_t)>& chunk_fn) {
  if (n == 0) return;
  const int effective = static_cast<int>(std::min<size_t>(
      std::max(max_threads, 1), std::min<size_t>(n, kMaxWorkers)));
  if (effective <= 1 || tls_in_parallel_region) {
    chunk_fn(0, n);
    return;
  }

  // Dynamic chunking: aim for kChunksPerParticipant chunks per thread so
  // skewed chunks can be stolen, but never chunks smaller than one index.
  const size_t target_chunks =
      static_cast<size_t>(effective) * kChunksPerParticipant;
  const size_t grain = std::max<size_t>(1, (n + target_chunks - 1) / target_chunks);
  const size_t num_chunks = (n + grain - 1) / grain;
  if (num_chunks <= 1) {
    chunk_fn(0, n);
    return;
  }
  const int participants =
      static_cast<int>(std::min<size_t>(effective, num_chunks));

  const std::lock_guard<std::mutex> submit(submit_mu_);
  obs::TraceSpan region_span("pool.region");
  Job job(chunk_fn, n, grain, num_chunks, participants);
  job.timed = obs::MetricsRegistry::Enabled();
  const auto wall0 = std::chrono::steady_clock::now();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    EnsureWorkersLocked(participants - 1);
    current_job_ = &job;
    ++generation_;
  }
  wake_cv_.notify_all();

  Participate(job, /*slot=*/0);

  // Stop further workers from joining, then wait for (a) every chunk to
  // have finished executing and (b) every joined worker to have left the
  // job, so the stack-allocated Job can die safely.
  {
    const std::lock_guard<std::mutex> lock(mu_);
    current_job_ = nullptr;
  }
  {
    std::unique_lock<std::mutex> done_lock(job.mu);
    job.done_cv.wait(done_lock, [&] {
      return job.remaining.load(std::memory_order_acquire) == 0 &&
             job.active.load(std::memory_order_acquire) == 0;
    });
  }

  if (job.timed) {
    const double wall_ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall0)
            .count());
    const int joined =
        1 + std::min(job.claimed.load(std::memory_order_relaxed),
                     participants - 1);
    ADB_COUNT("pool.regions", 1);
    ADB_COUNT("pool.chunks", num_chunks);
    ADB_COUNT("pool.steals", job.steals.load(std::memory_order_relaxed));
    ADB_RECORD("pool.region_threads", joined);
    if (wall_ns > 0.0 && joined > 0) {
      // Fraction of the region's thread-seconds spent inside chunk_fn;
      // low values mean workers starved (skew the stealing couldn't fix).
      ADB_RECORD("pool.region_utilization",
                 static_cast<double>(
                     job.busy_ns.load(std::memory_order_relaxed)) /
                     (wall_ns * joined));
    }
  }
}

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int DefaultThreads() {
  static const int cached = [] {
    if (const char* env = std::getenv("ADBSCAN_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return std::min(v, TaskPool::kMaxWorkers);
    }
    return HardwareThreads();
  }();
  return cached;
}

int ResolveNumThreads(int requested) {
  return requested > 0 ? requested : DefaultThreads();
}

bool TryResolveNumThreads(int requested, int* out, std::string* error) {
  // Validate the environment half of the merged view unconditionally: a
  // malformed ADBSCAN_THREADS is a configuration error even when an
  // explicit positive flag value would shadow it this run, and reporting
  // it here keeps the behaviour independent of which knob the caller set.
  const char* env = std::getenv("ADBSCAN_THREADS");
  int env_threads = 0;
  if (env != nullptr) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    // Digits only: strtol's leading-whitespace and sign tolerance would let
    // " 4" or "+4" through, which the textual contract does not promise.
    const bool starts_with_digit = *env >= '0' && *env <= '9';
    if (!starts_with_digit || end != env + std::strlen(env) ||
        errno == ERANGE || v <= 0 || v > 0x7fffffff) {
      if (error != nullptr) {
        *error = std::string("ADBSCAN_THREADS must be a positive integer "
                             "(got \"") +
                 env + "\")";
      }
      return false;
    }
    env_threads = static_cast<int>(
        std::min<long>(v, TaskPool::kMaxWorkers));
  }
  if (requested > 0) {
    *out = requested;
  } else if (env_threads > 0) {
    *out = env_threads;
  } else {
    *out = HardwareThreads();
  }
  return true;
}

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& chunk_fn) {
  TaskPool::Global().Run(n, num_threads, chunk_fn);
}

}  // namespace adbscan
