#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace adbscan {
namespace {

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  // Mix the stream id through one step, fold the master seed in, and mix
  // again: both inputs pass through the full avalanche so (seed, stream)
  // and (seed, stream + 1) are decorrelated.
  uint64_t state = stream;
  uint64_t mixed = SplitMix64(&state);
  state = mixed ^ seed;
  return SplitMix64(&state);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  ADB_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  // Box-Muller; avoid log(0) by nudging u1 away from zero.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

}  // namespace adbscan
