#ifndef ADBSCAN_UTIL_PARALLEL_H_
#define ADBSCAN_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace adbscan {

// Number of hardware threads (>= 1).
int HardwareThreads();

// Runs chunk_fn(begin, end) over a static partition of [0, n) on up to
// num_threads std::threads (num_threads <= 1 or n small: runs inline).
// chunk_fn must only perform writes that are disjoint across chunks.
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& chunk_fn);

}  // namespace adbscan

#endif  // ADBSCAN_UTIL_PARALLEL_H_
