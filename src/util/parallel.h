#ifndef ADBSCAN_UTIL_PARALLEL_H_
#define ADBSCAN_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>
#include <string>

namespace adbscan {

// Number of hardware threads (>= 1).
int HardwareThreads();

// Default worker count: the ADBSCAN_THREADS environment variable when set
// to a positive integer, otherwise HardwareThreads(). Read once and cached.
int DefaultThreads();

// Maps a user-facing thread-count knob to an actual count: positive values
// pass through, zero or negative mean "auto" (DefaultThreads()).
int ResolveNumThreads(int requested);

// Strict variant for CLI front-ends: validates the MERGED thread-count view
// — the already range-checked flag value plus the ADBSCAN_THREADS
// environment variable that the "auto" fallback reads. DefaultThreads()
// silently ignores a malformed ADBSCAN_THREADS (atoi("8x") half-parses,
// atoi("abc") turns into the hardware count), so a typo'd environment runs
// under a surprising thread count; this function instead fails with a
// message whenever the variable is set but is not a single positive
// integer. Unlike DefaultThreads() the environment is re-read on every
// call (no cache), so the answer always reflects the current process
// environment. On success *out holds the resolved count (positive
// `requested` passes through; otherwise the validated env value capped at
// TaskPool::kMaxWorkers, else the hardware count).
bool TryResolveNumThreads(int requested, int* out, std::string* error);

// Runs chunk_fn(begin, end) over a dynamic partition of [0, n) using the
// persistent work-stealing pool (util/task_pool.h) with up to num_threads
// participants (num_threads <= 1 or n tiny: runs inline; nested calls from
// inside a chunk also run inline). Chunk sizes adapt to n and stealing
// balances skewed chunks, but every index is still executed exactly once
// and all writes made by chunk_fn happen-before the return.
// chunk_fn must only perform writes that are disjoint across chunks (or
// otherwise synchronized, e.g. UnionFind::UniteConcurrent).
void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& chunk_fn);

}  // namespace adbscan

#endif  // ADBSCAN_UTIL_PARALLEL_H_
