#include "util/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace adbscan {

int HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ParallelFor(size_t n, int num_threads,
                 const std::function<void(size_t, size_t)>& chunk_fn) {
  if (n == 0) return;
  const size_t threads = std::min<size_t>(
      std::max(num_threads, 1), std::min<size_t>(n, 256));
  if (threads <= 1) {
    chunk_fn(0, n);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  const size_t chunk = (n + threads - 1) / threads;
  for (size_t t = 0; t < threads; ++t) {
    const size_t begin = t * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&chunk_fn, begin, end] { chunk_fn(begin, end); });
  }
  for (std::thread& th : pool) th.join();
}

}  // namespace adbscan
