#ifndef ADBSCAN_UTIL_TIMER_H_
#define ADBSCAN_UTIL_TIMER_H_

#include <chrono>

namespace adbscan {

// Monotonic wall-clock stopwatch used by the benchmark harnesses and the
// observability phase spans.
//
// The stopwatch starts running at construction. Pause()/Resume() accumulate
// running time across segments, so a phase measurement can exclude setup
// work:
//   Timer t;            // running
//   t.Pause();          // ... setup excluded from the measurement ...
//   t.Resume();         // ... measured work ...
//   t.ElapsedSeconds(); // sum of the running segments only
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts from zero, running.
  void Reset() {
    accumulated_ = 0.0;
    running_ = true;
    start_ = Clock::now();
  }

  // Stops the clock, banking the current segment. Idempotent.
  void Pause() {
    if (!running_) return;
    accumulated_ += Seconds(Clock::now() - start_);
    running_ = false;
  }

  // Restarts the clock after Pause(); a no-op while already running.
  void Resume() {
    if (running_) return;
    running_ = true;
    start_ = Clock::now();
  }

  bool IsRunning() const { return running_; }

  double ElapsedSeconds() const {
    return accumulated_ +
           (running_ ? Seconds(Clock::now() - start_) : 0.0);
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;

  static double Seconds(Clock::duration d) {
    return std::chrono::duration<double>(d).count();
  }

  Clock::time_point start_;
  double accumulated_ = 0.0;
  bool running_ = true;
};

}  // namespace adbscan

#endif  // ADBSCAN_UTIL_TIMER_H_
