#ifndef ADBSCAN_UTIL_FLAGS_H_
#define ADBSCAN_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace adbscan {

// Minimal command-line flag parser for the bench/example binaries.
//
// Accepted syntaxes: --name=value, --name value, and bare --name for
// booleans. Unknown flags abort with a usage message listing the registered
// flags, so a typo never silently runs the default experiment.
class Flags {
 public:
  Flags() = default;

  // Registration: each returns *this to allow chaining before Parse().
  Flags& DefineInt(const std::string& name, int64_t default_value,
                   const std::string& help);
  Flags& DefineDouble(const std::string& name, double default_value,
                      const std::string& help);
  Flags& DefineBool(const std::string& name, bool default_value,
                    const std::string& help);
  Flags& DefineString(const std::string& name, const std::string& default_value,
                      const std::string& help);

  // Parses argv; aborts with usage on malformed or unknown flags. A flag
  // given multiple times keeps the LAST value and prints a warning for each
  // repeat (see repeat_warnings()).
  void Parse(int argc, char** argv);

  // Number of repeated-flag warnings the last Parse() emitted.
  size_t repeat_warnings() const { return repeat_warnings_; }

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  // Strict accessors: false unless the flag's textual value is a single,
  // fully-consumed numeric token ("0.5" yes; "0.5x", "", "1e999" no — the
  // plain getters above delegate to strtod/strtoll, which silently accept
  // trailing garbage). CLI front-ends use these to reject malformed values
  // with a message instead of clustering under a half-parsed parameter.
  bool TryGetInt(const std::string& name, int64_t* out) const;
  bool TryGetDouble(const std::string& name, double* out) const;

  // Parses a comma-separated list flag, e.g. --eps=5000,10000,15000.
  std::vector<double> GetDoubleList(const std::string& name) const;
  std::vector<int64_t> GetIntList(const std::string& name) const;

  void PrintUsage(const char* argv0) const;

 private:
  enum class Type { kInt, kDouble, kBool, kString };
  struct Flag {
    Type type;
    std::string value;  // textual representation
    std::string help;
  };
  const Flag& Lookup(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  size_t repeat_warnings_ = 0;
};

}  // namespace adbscan

#endif  // ADBSCAN_UTIL_FLAGS_H_
