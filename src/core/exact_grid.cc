#include "core/exact_grid.h"

#include <algorithm>

#include "bcp/bcp.h"
#include "core/grid_pipeline.h"
#include "geom/kernels.h"
#include "obs/metrics.h"

namespace adbscan {

Clustering ExactGridDbscan(const Dataset& data, const DbscanParams& params) {
  // Register BCP counters upfront so the exported schema is stable even on
  // runs whose core-cell graph has no candidate edges.
  ADB_COUNT("exact.edge_bcp_tests", 0);
  ADB_COUNT("bcp.pair_tests", 0);
  ADB_COUNT("bcp.tree_probes", 0);
  ADB_COUNT("dist_evals.bcp", 0);
  const Grid* grid_ptr = nullptr;
  const CoreCellIndex* cells = nullptr;
  GridPipelineHooks hooks;
  hooks.prepare_cells = [&](const Grid& grid, const CoreCellIndex& cci) {
    grid_ptr = &grid;
    cells = &cci;
  };
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    ADB_COUNT("exact.edge_bcp_tests", 1);
    const std::vector<uint32_t>& a = cells->core_points[c1];
    const std::vector<uint32_t>& b = cells->core_points[c2];
    // Gather-free fast path: a fully-core cell's SoA block IS its
    // core-point set, so the brute decision can probe the grid's permuted
    // SoA directly — no gather, and no per-pair kd build. Small pairs are
    // decided outright. For large pairs a bounded probe budget runs first:
    // adjacent dense cells nearly always connect on the first few probes,
    // so the positive answer usually lands before the kd fallback (whose
    // build cost dwarfs one batched scan) is needed.
    {
      const bool a_smaller = a.size() <= b.size();
      const std::vector<uint32_t>& probe = a_smaller ? a : b;
      const uint32_t big = a_smaller ? c2 : c1;
      if (cells->all_core[big]) {
        const simd::SoaSpan block = grid_ptr->CellBlock(cells->grid_cell[big]);
        if (probe.size() * block.count <= kBcpBruteForceThreshold) {
          return ExistsPairWithinBlock(data, probe, block, params.eps);
        }
        const double eps2 = params.eps * params.eps;
        const size_t budget = std::max<size_t>(
            kBcpBruteForceThreshold / std::max<size_t>(block.count, 1), 4);
        size_t dist_evals = 0;
        for (size_t i = 0; i < probe.size() && i < budget; ++i) {
          dist_evals += block.count;
          if (simd::AnyWithin(data.point(probe[i]), block, eps2)) {
            ADB_COUNT("dist_evals.bcp", dist_evals);
            return true;
          }
        }
        ADB_COUNT("dist_evals.bcp", dist_evals);
      }
    }
    return ExistsPairWithin(data, a, b, params.eps);
  };
  hooks.edge_test_thread_safe = true;  // BCP is a pure function of the pair
  return RunGridPipeline(data, params, hooks);
}

}  // namespace adbscan
