#include "core/exact_grid.h"

#include "bcp/bcp.h"
#include "core/grid_pipeline.h"
#include "obs/metrics.h"

namespace adbscan {

Clustering ExactGridDbscan(const Dataset& data, const DbscanParams& params) {
  // Register BCP counters upfront so the exported schema is stable even on
  // runs whose core-cell graph has no candidate edges.
  ADB_COUNT("exact.edge_bcp_tests", 0);
  ADB_COUNT("bcp.pair_tests", 0);
  ADB_COUNT("bcp.tree_probes", 0);
  ADB_COUNT("dist_evals.bcp", 0);
  const CoreCellIndex* cells = nullptr;
  GridPipelineHooks hooks;
  hooks.prepare_cells = [&](const Grid&, const CoreCellIndex& cci) {
    cells = &cci;
  };
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    ADB_COUNT("exact.edge_bcp_tests", 1);
    return ExistsPairWithin(data, cells->core_points[c1],
                            cells->core_points[c2], params.eps);
  };
  hooks.edge_test_thread_safe = true;  // BCP is a pure function of the pair
  return RunGridPipeline(data, params, hooks);
}

}  // namespace adbscan
