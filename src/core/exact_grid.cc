#include "core/exact_grid.h"

#include "bcp/bcp.h"
#include "core/grid_pipeline.h"

namespace adbscan {

Clustering ExactGridDbscan(const Dataset& data, const DbscanParams& params) {
  const CoreCellIndex* cells = nullptr;
  GridPipelineHooks hooks;
  hooks.prepare_cells = [&](const Grid&, const CoreCellIndex& cci) {
    cells = &cci;
  };
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    return ExistsPairWithin(data, cells->core_points[c1],
                            cells->core_points[c2], params.eps);
  };
  hooks.edge_test_thread_safe = true;  // BCP is a pure function of the pair
  return RunGridPipeline(data, params, hooks);
}

}  // namespace adbscan
