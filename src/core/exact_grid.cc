#include "core/exact_grid.h"

#include "bcp/bcp.h"
#include "core/grid_pipeline.h"
#include "obs/metrics.h"

namespace adbscan {

Clustering ExactGridDbscan(const Dataset& data, const DbscanParams& params) {
  // Register BCP counters upfront so the exported schema is stable even on
  // runs whose core-cell graph has no candidate edges.
  ADB_COUNT("exact.edge_bcp_tests", 0);
  ADB_COUNT("bcp.pair_tests", 0);
  ADB_COUNT("bcp.tree_probes", 0);
  ADB_COUNT("dist_evals.bcp", 0);
  const Grid* grid_ptr = nullptr;
  const CoreCellIndex* cells = nullptr;
  GridPipelineHooks hooks;
  hooks.prepare_cells = [&](const Grid& grid, const CoreCellIndex& cci) {
    grid_ptr = &grid;
    cells = &cci;
  };
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    ADB_COUNT("exact.edge_bcp_tests", 1);
    const std::vector<uint32_t>& a = cells->core_points[c1];
    const std::vector<uint32_t>& b = cells->core_points[c2];
    // Gather-free fast path: in the CSR layout a fully-core cell's SoA
    // block IS its core-point set, so the brute decision can probe the
    // grid's permuted SoA directly. Probing the larger side keeps the
    // orientation of ExistsPairWithin's brute branch.
    if (grid_ptr->layout() == Grid::Layout::kCsr &&
        a.size() * b.size() <= kBcpBruteForceThreshold) {
      const bool a_smaller = a.size() <= b.size();
      const uint32_t big = a_smaller ? c2 : c1;
      if (cells->all_core[big]) {
        return ExistsPairWithinBlock(
            data, a_smaller ? a : b,
            grid_ptr->CellBlock(cells->grid_cell[big], nullptr), params.eps);
      }
    }
    return ExistsPairWithin(data, a, b, params.eps);
  };
  hooks.edge_test_thread_safe = true;  // BCP is a pure function of the pair
  return RunGridPipeline(data, params, hooks);
}

}  // namespace adbscan
