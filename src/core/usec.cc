#include "core/usec.h"

#include <vector>

#include "geom/point.h"
#include "util/check.h"

namespace adbscan {

bool SolveUsecBruteForce(const UsecInstance& instance) {
  const int dim = instance.points.dim();
  const double r2 = instance.radius * instance.radius;
  for (size_t i = 0; i < instance.points.size(); ++i) {
    const double* p = instance.points.point(i);
    for (size_t j = 0; j < instance.ball_centers.size(); ++j) {
      if (SquaredDistance(p, instance.ball_centers.point(j), dim) <= r2) {
        return true;
      }
    }
  }
  return false;
}

bool SolveUsecViaDbscan(const UsecInstance& instance,
                        const DbscanSolver& solver) {
  ADB_CHECK(instance.points.dim() == instance.ball_centers.dim());
  ADB_CHECK(instance.radius > 0.0);
  const size_t num_points = instance.points.size();
  const size_t num_balls = instance.ball_centers.size();
  if (num_points == 0 || num_balls == 0) return false;

  // Step 1-2: P = S_pt ∪ ball centers, ε = radius.
  Dataset p(instance.points.dim());
  p.Reserve(num_points + num_balls);
  for (size_t i = 0; i < num_points; ++i) p.Add(instance.points.point(i));
  for (size_t j = 0; j < num_balls; ++j) p.Add(instance.ball_centers.point(j));

  // Step 3: MinPts = 1 makes every point a core point.
  const Clustering clustering = solver(p, DbscanParams{instance.radius, 1});

  // Step 4: yes iff a point and a center share a cluster. With MinPts = 1
  // clusters partition P, so primary labels suffice.
  std::vector<char> cluster_has_point(
      static_cast<size_t>(clustering.num_clusters), 0);
  for (size_t i = 0; i < num_points; ++i) {
    ADB_CHECK(clustering.label[i] != kNoise);  // MinPts=1: no noise
    cluster_has_point[clustering.label[i]] = 1;
  }
  for (size_t j = 0; j < num_balls; ++j) {
    const int32_t label = clustering.label[num_points + j];
    ADB_CHECK(label != kNoise);
    if (cluster_has_point[label]) return true;
  }
  return false;
}

}  // namespace adbscan
