#ifndef ADBSCAN_CORE_GRIDBSCAN_H_
#define ADBSCAN_CORE_GRIDBSCAN_H_

#include <cstdint>

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// "CIT08": GriDBSCAN, Mahran and Mahar, "Using grid for accelerating
// density-based clustering" (CIT 2008) — reference [17] of the paper and its
// strongest exact baseline.
//
// The data space is split into coarse partitions (each at least 2ε wide per
// partitioned axis). Every point is *inner* to exactly one partition and is
// replicated as *halo* into any other partition whose box lies within ε of
// it, so each partition sees the complete ε-neighborhood of its inner
// points. Exact DBSCAN (seed expansion over a per-partition kd-tree) runs
// locally, after which local clusters that share a globally-core point are
// merged with union-find. The output is exactly the unique DBSCAN clustering
// (Problem 1); like KDD96, the approach still degenerates to O(n²) when a
// partition's points are mutually close.
struct GridbscanOptions {
  // Desired number of inner points per partition; the partition grid is
  // coarsened until slabs would drop below 2ε.
  uint32_t target_partition_size = 20000;
  // Hard cap on the number of partitions.
  uint32_t max_partitions = 4096;
};

Clustering GridbscanDbscan(const Dataset& data, const DbscanParams& params,
                           const GridbscanOptions& options = {});

}  // namespace adbscan

#endif  // ADBSCAN_CORE_GRIDBSCAN_H_
