#include "core/core_labeling.h"

#include <memory>

#include "geom/box.h"
#include "geom/kernels.h"
#include "geom/soa.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/scratch_arena.h"

namespace adbscan {
namespace {

// Decides core status for the candidate ids `cands` (all residents of cell
// ci), counting ε-neighborhoods against the full dataset. Shared by the
// full labeler (cands = the whole cell) and the sampled-tier subset labeler
// (cands = the sampled residents). Accumulates kernel-path distance
// evaluations into *dist_evals; the caller batches them into the counter.
void LabelCandidatesOfCell(const Dataset& data, const Grid& grid, double eps,
                           size_t min_pts, uint32_t ci, const uint32_t* cands,
                           size_t num_cands, std::vector<char>* is_core,
                           size_t* dist_evals) {
  const Grid::IdSpan pts = grid.cell_points(ci);
  if (pts.size() >= min_pts) {
    // Dense cell: everything inside is core (any two points of a cell are
    // within ε because the side is ε/√d).
    for (size_t j = 0; j < num_cands; ++j) (*is_core)[cands[j]] = 1;
    return;
  }
  const double eps2 = eps * eps;
  // Sparse cell: count each candidate's ε-neighborhood over the neighbor
  // cells, with early exit at MinPts. The neighbor list is shared by all
  // candidates of the cell. Cell-box tests keep the scan near O(MinPts)
  // even when neighbor cells hold many points: a box fully inside B(p, ε)
  // contributes its whole count, a box outside contributes nothing, and
  // only the boundary shell needs per-point distances.
  const Grid::IdSpan neighbors = grid.EpsNeighbors(ci, eps);
  std::vector<Box>& neighbor_boxes =
      WorkerScratch<Box>(scratch::kCoreNeighborBoxes);
  neighbor_boxes.clear();
  neighbor_boxes.reserve(neighbors.size());
  for (uint32_t cj : neighbors) neighbor_boxes.push_back(grid.CellBoxOf(cj));
  // Boundary-shell cells go through the batch kernels. A neighbor cell's
  // SoA view is fetched on first use and shared by every candidate of this
  // cell — a zero-copy span into the grid's permuted SoA. The
  // worker-scratch vectors keep their capacity across cells, so a warmed
  // pass allocates nothing here.
  std::vector<simd::SoaSpan>& neighbor_span =
      WorkerScratch<simd::SoaSpan>(scratch::kCoreNeighborViews);
  neighbor_span.assign(neighbors.size(), simd::SoaSpan{});
  for (size_t j = 0; j < num_cands; ++j) {
    const uint32_t id = cands[j];
    const double* p = data.point(id);
    size_t count = pts.size();  // own cell: all within ε
    if (count < min_pts) {
      for (size_t k = 0; k < neighbors.size(); ++k) {
        const Box& box = neighbor_boxes[k];
        if (box.MinSquaredDistToPoint(p) > eps2) continue;
        const size_t others = grid.CellSize(neighbors[k]);
        if (box.MaxSquaredDistToPoint(p) <= eps2) {
          count += others;
        } else {
          if (neighbor_span[k].base == nullptr) {
            neighbor_span[k] = grid.CellBlock(neighbors[k]);
          }
          *dist_evals += others;
          // stop_at caps the count exactly like the scalar early-exit
          // loop (scan in index order, stop on reaching min_pts).
          count += simd::CountWithin(p, neighbor_span[k], eps2,
                                     min_pts - count);
        }
        if (count >= min_pts) break;
      }
    }
    if (count >= min_pts) (*is_core)[id] = 1;
  }
}

}  // namespace

std::vector<char> LabelCorePoints(const Dataset& data, const Grid& grid,
                                  const DbscanParams& params) {
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  std::vector<char> is_core(n, 0);
  const size_t min_pts = static_cast<size_t>(params.min_pts);

  // Cells are independent (each writes only its own points' flags), so the
  // loop parallelizes directly once the shared neighbor cache is warm.
  if (params.num_threads > 1) {
    grid.WarmNeighborCache(params.eps, params.num_threads);
  }
  ParallelFor(grid.NumCells(), params.num_threads, [&](size_t begin,
                                                       size_t end) {
  for (uint32_t ci = static_cast<uint32_t>(begin); ci < end; ++ci) {
    const Grid::IdSpan pts = grid.cell_points(ci);
    size_t dist_evals = 0;  // batched into the counter once per cell
    LabelCandidatesOfCell(data, grid, params.eps, min_pts, ci, pts.begin(),
                          pts.size(), &is_core, &dist_evals);
    ADB_COUNT("dist_evals.core_labeling", dist_evals);
  }
  });
  return is_core;
}

std::vector<char> LabelCorePointsAmong(
    const Dataset& data, const Grid& grid, const DbscanParams& params,
    const std::vector<uint32_t>& candidates) {
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  std::vector<char> is_core(n, 0);
  const size_t min_pts = static_cast<size_t>(params.min_pts);

  // Group candidates by cell (counting-sort CSR) so the neighbor list, cell
  // boxes, and SoA views are shared per cell exactly as in LabelCorePoints.
  const size_t num_cells = grid.NumCells();
  std::vector<uint32_t> offsets(num_cells + 1, 0);
  for (uint32_t id : candidates) ++offsets[grid.CellOfPoint(id) + 1];
  for (size_t c = 0; c < num_cells; ++c) offsets[c + 1] += offsets[c];
  std::vector<uint32_t> grouped(candidates.size());
  {
    std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
    for (uint32_t id : candidates) grouped[cursor[grid.CellOfPoint(id)]++] = id;
  }
  std::vector<uint32_t> active;  // cells holding at least one candidate
  for (uint32_t ci = 0; ci < num_cells; ++ci) {
    if (offsets[ci + 1] > offsets[ci]) active.push_back(ci);
  }

  if (params.num_threads > 1) {
    grid.WarmNeighborCache(params.eps, params.num_threads);
  }
  ParallelFor(active.size(), params.num_threads, [&](size_t begin,
                                                     size_t end) {
  for (size_t k = begin; k < end; ++k) {
    const uint32_t ci = active[k];
    size_t dist_evals = 0;
    LabelCandidatesOfCell(data, grid, params.eps, min_pts, ci,
                          grouped.data() + offsets[ci],
                          offsets[ci + 1] - offsets[ci], &is_core,
                          &dist_evals);
    ADB_COUNT("dist_evals.core_labeling", dist_evals);
  }
  });
  return is_core;
}

CoreCellIndex BuildCoreCellIndex(const Grid& grid,
                                 const std::vector<char>& is_core) {
  CoreCellIndex index;
  index.core_cell_of_grid_cell.assign(grid.NumCells(), CoreCellIndex::kNone);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const Grid::IdSpan pts = grid.cell_points(ci);
    std::vector<uint32_t> core_pts;
    for (uint32_t id : pts) {
      if (is_core[id]) core_pts.push_back(id);
    }
    if (core_pts.empty()) continue;
    index.core_cell_of_grid_cell[ci] =
        static_cast<uint32_t>(index.grid_cell.size());
    index.grid_cell.push_back(ci);
    index.all_core.push_back(core_pts.size() == pts.size() ? 1 : 0);
    index.core_points.push_back(std::move(core_pts));
  }
  return index;
}

}  // namespace adbscan
