#include "core/core_labeling.h"

#include <memory>

#include "geom/box.h"
#include "geom/kernels.h"
#include "geom/soa.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {

std::vector<char> LabelCorePoints(const Dataset& data, const Grid& grid,
                                  const DbscanParams& params) {
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  std::vector<char> is_core(n, 0);
  const size_t min_pts = static_cast<size_t>(params.min_pts);
  const double eps2 = params.eps * params.eps;

  // Cells are independent (each writes only its own points' flags), so the
  // loop parallelizes directly once the shared neighbor cache is warm.
  if (params.num_threads > 1) {
    grid.WarmNeighborCache(params.eps, params.num_threads);
  }
  ParallelFor(grid.NumCells(), params.num_threads, [&](size_t begin,
                                                       size_t end) {
  for (uint32_t ci = static_cast<uint32_t>(begin); ci < end; ++ci) {
    const Grid::Cell& cell = grid.cell(ci);
    if (cell.points.size() >= min_pts) {
      // Dense cell: everything inside is core.
      for (uint32_t id : cell.points) is_core[id] = 1;
      continue;
    }
    // Sparse cell: count each point's ε-neighborhood over the neighbor
    // cells, with early exit at MinPts. The neighbor list is shared by all
    // points of the cell. Cell-box tests keep the scan near O(MinPts) even
    // when neighbor cells hold many points: a box fully inside B(p, ε)
    // contributes its whole count, a box outside contributes nothing, and
    // only the boundary shell needs per-point distances.
    const std::vector<uint32_t>& neighbors =
        grid.EpsNeighbors(ci, params.eps);
    std::vector<Box> neighbor_boxes;
    neighbor_boxes.reserve(neighbors.size());
    for (uint32_t cj : neighbors) neighbor_boxes.push_back(grid.CellBoxOf(cj));
    // Boundary-shell cells go through the batch kernels. A neighbor cell's
    // SoA gather is built on first use and shared by every point of this
    // cell (the gather cost amortizes over the cell's points).
    std::vector<std::unique_ptr<simd::SoaBlock>> neighbor_soa(neighbors.size());
    size_t dist_evals = 0;  // batched into the counter once per cell
    for (uint32_t id : cell.points) {
      const double* p = data.point(id);
      size_t count = cell.points.size();  // own cell: all within ε
      if (count < min_pts) {
        for (size_t k = 0; k < neighbors.size(); ++k) {
          const Box& box = neighbor_boxes[k];
          if (box.MinSquaredDistToPoint(p) > eps2) continue;
          const std::vector<uint32_t>& others =
              grid.cell(neighbors[k]).points;
          if (box.MaxSquaredDistToPoint(p) <= eps2) {
            count += others.size();
          } else {
            if (!neighbor_soa[k]) {
              neighbor_soa[k] = std::make_unique<simd::SoaBlock>(
                  data, others.data(), others.size());
            }
            dist_evals += others.size();
            // stop_at caps the count exactly like the scalar early-exit
            // loop (scan in index order, stop on reaching min_pts).
            count += simd::CountWithin(p, neighbor_soa[k]->span(), eps2,
                                       min_pts - count);
          }
          if (count >= min_pts) break;
        }
      }
      if (count >= min_pts) is_core[id] = 1;
    }
    ADB_COUNT("dist_evals.core_labeling", dist_evals);
  }
  });
  return is_core;
}

CoreCellIndex BuildCoreCellIndex(const Grid& grid,
                                 const std::vector<char>& is_core) {
  CoreCellIndex index;
  index.core_cell_of_grid_cell.assign(grid.NumCells(), CoreCellIndex::kNone);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    std::vector<uint32_t> core_pts;
    for (uint32_t id : grid.cell(ci).points) {
      if (is_core[id]) core_pts.push_back(id);
    }
    if (core_pts.empty()) continue;
    index.core_cell_of_grid_cell[ci] =
        static_cast<uint32_t>(index.grid_cell.size());
    index.grid_cell.push_back(ci);
    index.core_points.push_back(std::move(core_pts));
  }
  return index;
}

}  // namespace adbscan
