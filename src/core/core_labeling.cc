#include "core/core_labeling.h"

#include <memory>

#include "geom/box.h"
#include "geom/kernels.h"
#include "geom/soa.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/scratch_arena.h"

namespace adbscan {

std::vector<char> LabelCorePoints(const Dataset& data, const Grid& grid,
                                  const DbscanParams& params) {
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  std::vector<char> is_core(n, 0);
  const size_t min_pts = static_cast<size_t>(params.min_pts);
  const double eps2 = params.eps * params.eps;

  // Cells are independent (each writes only its own points' flags), so the
  // loop parallelizes directly once the shared neighbor cache is warm.
  if (params.num_threads > 1) {
    grid.WarmNeighborCache(params.eps, params.num_threads);
  }
  ParallelFor(grid.NumCells(), params.num_threads, [&](size_t begin,
                                                       size_t end) {
  for (uint32_t ci = static_cast<uint32_t>(begin); ci < end; ++ci) {
    const Grid::IdSpan pts = grid.cell_points(ci);
    if (pts.size() >= min_pts) {
      // Dense cell: everything inside is core.
      for (uint32_t id : pts) is_core[id] = 1;
      continue;
    }
    // Sparse cell: count each point's ε-neighborhood over the neighbor
    // cells, with early exit at MinPts. The neighbor list is shared by all
    // points of the cell. Cell-box tests keep the scan near O(MinPts) even
    // when neighbor cells hold many points: a box fully inside B(p, ε)
    // contributes its whole count, a box outside contributes nothing, and
    // only the boundary shell needs per-point distances.
    const Grid::IdSpan neighbors = grid.EpsNeighbors(ci, params.eps);
    std::vector<Box>& neighbor_boxes =
        WorkerScratch<Box>(scratch::kCoreNeighborBoxes);
    neighbor_boxes.clear();
    neighbor_boxes.reserve(neighbors.size());
    for (uint32_t cj : neighbors) neighbor_boxes.push_back(grid.CellBoxOf(cj));
    // Boundary-shell cells go through the batch kernels. A neighbor cell's
    // SoA view is fetched on first use and shared by every point of this
    // cell — a zero-copy span into the grid's permuted SoA. The
    // worker-scratch vectors keep their capacity across cells, so a warmed
    // pass allocates nothing here.
    std::vector<simd::SoaSpan>& neighbor_span =
        WorkerScratch<simd::SoaSpan>(scratch::kCoreNeighborViews);
    neighbor_span.assign(neighbors.size(), simd::SoaSpan{});
    size_t dist_evals = 0;  // batched into the counter once per cell
    for (uint32_t id : pts) {
      const double* p = data.point(id);
      size_t count = pts.size();  // own cell: all within ε
      if (count < min_pts) {
        for (size_t k = 0; k < neighbors.size(); ++k) {
          const Box& box = neighbor_boxes[k];
          if (box.MinSquaredDistToPoint(p) > eps2) continue;
          const size_t others = grid.CellSize(neighbors[k]);
          if (box.MaxSquaredDistToPoint(p) <= eps2) {
            count += others;
          } else {
            if (neighbor_span[k].base == nullptr) {
              neighbor_span[k] = grid.CellBlock(neighbors[k]);
            }
            dist_evals += others;
            // stop_at caps the count exactly like the scalar early-exit
            // loop (scan in index order, stop on reaching min_pts).
            count += simd::CountWithin(p, neighbor_span[k], eps2,
                                       min_pts - count);
          }
          if (count >= min_pts) break;
        }
      }
      if (count >= min_pts) is_core[id] = 1;
    }
    ADB_COUNT("dist_evals.core_labeling", dist_evals);
  }
  });
  return is_core;
}

CoreCellIndex BuildCoreCellIndex(const Grid& grid,
                                 const std::vector<char>& is_core) {
  CoreCellIndex index;
  index.core_cell_of_grid_cell.assign(grid.NumCells(), CoreCellIndex::kNone);
  for (uint32_t ci = 0; ci < grid.NumCells(); ++ci) {
    const Grid::IdSpan pts = grid.cell_points(ci);
    std::vector<uint32_t> core_pts;
    for (uint32_t id : pts) {
      if (is_core[id]) core_pts.push_back(id);
    }
    if (core_pts.empty()) continue;
    index.core_cell_of_grid_cell[ci] =
        static_cast<uint32_t>(index.grid_cell.size());
    index.grid_cell.push_back(ci);
    index.all_core.push_back(core_pts.size() == pts.size() ? 1 : 0);
    index.core_points.push_back(std::move(core_pts));
  }
  return index;
}

}  // namespace adbscan
