#ifndef ADBSCAN_CORE_ADBSCAN_H_
#define ADBSCAN_CORE_ADBSCAN_H_

// Umbrella header: the public clustering API of the library.
//
//   Dataset data(3);
//   data.Add({x, y, z});
//   ...
//   // The paper's recommendation for large data (Theorem 4):
//   Clustering c = ApproxDbscan(data, {.eps = 5000, .min_pts = 100},
//                               /*rho=*/0.001);
//   // Exact alternatives:
//   Clustering e = ExactGridDbscan(data, {5000, 100});       // Theorem 2
//   Clustering k = Kdd96Dbscan(data, {5000, 100});           // KDD'96
//   Clustering g = GridbscanDbscan(data, {5000, 100});       // CIT'08
//   Clustering g2 = Gunawan2dDbscan(data2d, {5000, 100});    // 2D only
//
// All algorithms return the same Clustering shape; the exact ones produce
// the unique DBSCAN clustering of Problem 1, ApproxDbscan a legal
// ρ-approximate clustering of Problem 2 (sandwiched per Theorem 3).

#include "core/approx_dbscan.h"
#include "core/brute_reference.h"
#include "core/dbscan_types.h"
#include "core/exact_grid.h"
#include "core/gridbscan.h"
#include "core/gunawan2d.h"
#include "core/kdd96.h"
#include "core/usec.h"
#include "geom/dataset.h"

#endif  // ADBSCAN_CORE_ADBSCAN_H_
