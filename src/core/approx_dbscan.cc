#include "core/approx_dbscan.h"

#include <algorithm>
#include <memory>
#include <mutex>
#include <numeric>
#include <vector>

#include "bcp/bcp.h"
#include "core/grid_pipeline.h"
#include "geom/kernels.h"
#include "obs/metrics.h"
#include "rangecount/approx_range_counter.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {

Clustering ApproxDbscan(const Dataset& data, const DbscanParams& params,
                        double rho, const ApproxDbscanOptions& options) {
  ADB_CHECK(rho > 0.0);
  // Register the range-counter counters upfront: degenerate runs (no core
  // cells, no candidate edges) must still export a stable schema.
  ADB_COUNT("rangecount.structures", 0);
  ADB_COUNT("rangecount.probes", 0);
  ADB_COUNT("rangecount.nodes_visited", 0);
  const Grid* grid_ptr = nullptr;
  const CoreCellIndex* cells = nullptr;
  // One Lemma 5 structure per core cell, over that cell's core points —
  // built on first use: the direct-probe short circuit below decides most
  // edge tests on dense data without ever consulting a counter, so a cell
  // touched only by probe-positive tests never pays the build.
  std::vector<std::unique_ptr<ApproxRangeCounter>> counters;
  std::unique_ptr<std::once_flag[]> counter_once;

  GridPipelineHooks hooks;
  hooks.prepare_cells = [&](const Grid& grid, const CoreCellIndex& cci) {
    grid_ptr = &grid;
    cells = &cci;
    counters.resize(cci.size());
    counter_once = std::make_unique<std::once_flag[]>(cci.size());
  };
  auto counter_for = [&](uint32_t c) -> const ApproxRangeCounter& {
    // Edge tests may run concurrently; call_once serializes the build and
    // the slot never moves, so the returned reference stays valid.
    std::call_once(counter_once[c], [&] {
      counters[c] = std::make_unique<ApproxRangeCounter>(
          data, cells->core_points[c], params.eps, rho);
    });
    return *counters[c];
  };
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    // Short circuit: a pair within ε certifies the edge under the exact
    // rule, and the counter — whose answer is never below the exact
    // ε-count — would necessarily agree, so probing the CSR block first
    // cannot change the result, only skip the counter. The probe budget is
    // bounded; adjacent dense cells nearly always connect within it. The
    // block stands in for the cell's core points only when the whole cell
    // is core (same condition as the exact pipeline's fast path).
    {
      const std::vector<uint32_t>& a = cells->core_points[c1];
      const std::vector<uint32_t>& b = cells->core_points[c2];
      const bool a_smaller = a.size() <= b.size();
      const std::vector<uint32_t>& probe = a_smaller ? a : b;
      const uint32_t big = a_smaller ? c2 : c1;
      if (cells->all_core[big]) {
        const simd::SoaSpan block = grid_ptr->CellBlock(cells->grid_cell[big]);
        const double eps2 = params.eps * params.eps;
        const size_t budget = std::max<size_t>(
            kBcpBruteForceThreshold / std::max<size_t>(block.count, 1), 4);
        for (size_t i = 0; i < probe.size() && i < budget; ++i) {
          if (simd::AnyWithin(data.point(probe[i]), block, eps2)) return true;
        }
      }
    }
    // Probe c2's structure with every core point of c1; the first non-zero
    // answer certifies a pair within ε(1+ρ) and adds the edge.
    const ApproxRangeCounter& counter = counter_for(c2);
    for (uint32_t p : cells->core_points[c1]) {
      if (counter.QueryNonzero(data.point(p))) return true;
    }
    return false;
  };
  hooks.edge_test_thread_safe = true;  // counter queries are const & pure
  if (options.approximate_core_counting) {
    // Journal-version labeling: one whole-dataset counter answers the
    // MinPts test with the Lemma 5 guarantee, so a reported core point has
    // at least MinPts neighbors within ε(1+ρ) and every exact-ε core point
    // is reported core.
    hooks.label_core = [&](const Dataset& d, const Grid&,
                           const DbscanParams& p) {
      std::vector<uint32_t> all(d.size());
      std::iota(all.begin(), all.end(), 0u);
      const ApproxRangeCounter whole(d, all, p.eps, rho);
      std::vector<char> is_core(d.size(), 0);
      const size_t min_pts = static_cast<size_t>(p.min_pts);
      // Queries are const & pure and each iteration writes only its own
      // slot, so the bulk probe parallelizes point-wise.
      ParallelFor(d.size(), p.num_threads, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (whole.QueryAtLeast(d.point(i), min_pts)) is_core[i] = 1;
        }
      });
      return is_core;
    };
  }
  return RunGridPipeline(data, params, hooks);
}

}  // namespace adbscan
