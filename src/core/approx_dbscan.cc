#include "core/approx_dbscan.h"

#include <memory>
#include <numeric>
#include <vector>

#include "core/grid_pipeline.h"
#include "obs/metrics.h"
#include "rangecount/approx_range_counter.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {

Clustering ApproxDbscan(const Dataset& data, const DbscanParams& params,
                        double rho, const ApproxDbscanOptions& options) {
  ADB_CHECK(rho > 0.0);
  // Register the range-counter counters upfront: degenerate runs (no core
  // cells, no candidate edges) must still export a stable schema.
  ADB_COUNT("rangecount.structures", 0);
  ADB_COUNT("rangecount.probes", 0);
  ADB_COUNT("rangecount.nodes_visited", 0);
  const CoreCellIndex* cells = nullptr;
  // One Lemma 5 structure per core cell, over that cell's core points.
  std::vector<std::unique_ptr<ApproxRangeCounter>> counters;

  GridPipelineHooks hooks;
  hooks.prepare_cells = [&](const Grid&, const CoreCellIndex& cci) {
    cells = &cci;
    counters.resize(cci.size());
    ParallelFor(cci.size(), params.num_threads,
                [&](size_t begin, size_t end) {
                  for (size_t c = begin; c < end; ++c) {
                    counters[c] = std::make_unique<ApproxRangeCounter>(
                        data, cci.core_points[c], params.eps, rho);
                  }
                });
  };
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    // Probe c2's structure with every core point of c1; the first non-zero
    // answer certifies a pair within ε(1+ρ) and adds the edge.
    const ApproxRangeCounter& counter = *counters[c2];
    for (uint32_t p : cells->core_points[c1]) {
      if (counter.QueryNonzero(data.point(p))) return true;
    }
    return false;
  };
  hooks.edge_test_thread_safe = true;  // counter queries are const & pure
  if (options.approximate_core_counting) {
    // Journal-version labeling: one whole-dataset counter answers the
    // MinPts test with the Lemma 5 guarantee, so a reported core point has
    // at least MinPts neighbors within ε(1+ρ) and every exact-ε core point
    // is reported core.
    hooks.label_core = [&](const Dataset& d, const Grid&,
                           const DbscanParams& p) {
      std::vector<uint32_t> all(d.size());
      std::iota(all.begin(), all.end(), 0u);
      const ApproxRangeCounter whole(d, all, p.eps, rho);
      std::vector<char> is_core(d.size(), 0);
      const size_t min_pts = static_cast<size_t>(p.min_pts);
      // Queries are const & pure and each iteration writes only its own
      // slot, so the bulk probe parallelizes point-wise.
      ParallelFor(d.size(), p.num_threads, [&](size_t begin, size_t end) {
        for (size_t i = begin; i < end; ++i) {
          if (whole.QueryAtLeast(d.point(i), min_pts)) is_core[i] = 1;
        }
      });
      return is_core;
    };
  }
  return RunGridPipeline(data, params, hooks);
}

}  // namespace adbscan
