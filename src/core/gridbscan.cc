#include "core/gridbscan.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "ds/union_find.h"
#include "geom/box.h"
#include "geom/point.h"
#include "index/kdtree.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

constexpr int32_t kLocalUnclassified = -2;

// Partitioning scheme: k_i slabs per axis, slab width >= 2ε where k_i > 1.
struct PartitionGrid {
  Box bounds;
  std::array<uint32_t, kMaxDim> counts{};   // slabs per axis
  std::array<double, kMaxDim> widths{};     // slab width per axis
  int dim = 0;

  uint32_t NumPartitions() const {
    uint32_t p = 1;
    for (int i = 0; i < dim; ++i) p *= counts[i];
    return p;
  }

  uint32_t SlabOf(double x, int axis) const {
    if (widths[axis] <= 0.0) return 0;
    const double rel = (x - bounds.lo[axis]) / widths[axis];
    const int64_t idx = static_cast<int64_t>(std::floor(rel));
    return static_cast<uint32_t>(
        std::clamp<int64_t>(idx, 0, counts[axis] - 1));
  }

  uint32_t PartitionOf(const double* p) const {
    uint32_t id = 0;
    for (int i = 0; i < dim; ++i) id = id * counts[i] + SlabOf(p[i], i);
    return id;
  }

  Box PartitionBox(uint32_t id) const {
    std::array<uint32_t, kMaxDim> idx{};
    for (int i = dim - 1; i >= 0; --i) {
      idx[i] = id % counts[i];
      id /= counts[i];
    }
    Box b = Box::Empty(dim);
    for (int i = 0; i < dim; ++i) {
      b.lo[i] = bounds.lo[i] + idx[i] * widths[i];
      b.hi[i] = (idx[i] + 1 == counts[i]) ? bounds.hi[i]
                                          : bounds.lo[i] + (idx[i] + 1) * widths[i];
    }
    return b;
  }
};

PartitionGrid ChoosePartitions(const Dataset& data, double eps,
                               const GridbscanOptions& options) {
  PartitionGrid grid;
  grid.dim = data.dim();
  grid.bounds = data.BoundingBox();
  for (int i = 0; i < grid.dim; ++i) {
    grid.counts[i] = 1;
    grid.widths[i] = grid.bounds.hi[i] - grid.bounds.lo[i];
  }
  const uint32_t target = std::max<uint32_t>(
      1, static_cast<uint32_t>(data.size() / std::max<uint32_t>(
                                   1, options.target_partition_size)));
  // Greedily add a slab along the axis with the widest current slab, as long
  // as the result keeps slabs at least 2ε wide.
  while (grid.NumPartitions() < std::min(target, options.max_partitions)) {
    int best_axis = -1;
    double best_width = 0.0;
    for (int i = 0; i < grid.dim; ++i) {
      const double extent = grid.bounds.hi[i] - grid.bounds.lo[i];
      const double next_width = extent / (grid.counts[i] + 1);
      if (next_width >= 2.0 * eps && grid.widths[i] > best_width) {
        best_width = grid.widths[i];
        best_axis = i;
      }
    }
    if (best_axis < 0) break;  // no axis can be split further
    grid.counts[best_axis] += 1;
    const double extent =
        grid.bounds.hi[best_axis] - grid.bounds.lo[best_axis];
    grid.widths[best_axis] = extent / grid.counts[best_axis];
  }
  return grid;
}

}  // namespace

Clustering GridbscanDbscan(const Dataset& data, const DbscanParams& params,
                           const GridbscanOptions& options) {
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  const size_t min_pts = static_cast<size_t>(params.min_pts);
  Clustering out;
  out.label.assign(n, kNoise);
  out.is_core.assign(n, 0);
  if (n == 0) return out;

  // Register this pipeline's counter set so every run exports the same
  // schema even when a code path never fires.
  ADB_COUNT("gridbscan.partitions", 0);
  ADB_COUNT("gridbscan.halo_replicas", 0);
  ADB_COUNT("gridbscan.merge_unions_tried", 0);
  ADB_COUNT("index.range_queries", 0);
  ADB_COUNT("index.range_candidates_total", 0);

  std::optional<PartitionGrid> pgrid_storage;
  std::vector<std::vector<uint32_t>> members;  // per partition, global ids
  std::vector<uint32_t> inner_partition(n);
  std::vector<Box> part_box;
  {
  ADB_PHASE("partition");
  pgrid_storage = ChoosePartitions(data, params.eps, options);
  const PartitionGrid& pgrid = *pgrid_storage;
  const uint32_t num_partitions = pgrid.NumPartitions();
  ADB_COUNT("gridbscan.partitions", num_partitions);

  // Membership lists: inner partition per point, plus halo replicas.
  members.resize(num_partitions);
  part_box.resize(num_partitions);
  for (uint32_t p = 0; p < num_partitions; ++p) {
    part_box[p] = pgrid.PartitionBox(p);
  }
  {
    size_t halo_replicas = 0;
    // Per-axis candidate slabs for halo replication: with slab width >= 2ε,
    // a point can touch at most two slabs per axis.
    std::array<std::vector<uint32_t>, kMaxDim> axis_slabs;
    const double eps2 = params.eps * params.eps;
    for (uint32_t id = 0; id < n; ++id) {
      const double* pt = data.point(id);
      const uint32_t inner = pgrid.PartitionOf(pt);
      inner_partition[id] = inner;
      members[inner].push_back(id);
      // Enumerate partitions whose box is within ε of the point.
      uint32_t combos = 1;
      for (int i = 0; i < pgrid.dim; ++i) {
        axis_slabs[i].clear();
        const uint32_t s_lo = pgrid.SlabOf(pt[i] - params.eps, i);
        const uint32_t s_hi = pgrid.SlabOf(pt[i] + params.eps, i);
        for (uint32_t s = s_lo; s <= s_hi; ++s) axis_slabs[i].push_back(s);
        combos *= static_cast<uint32_t>(axis_slabs[i].size());
      }
      if (combos == 1) continue;  // only the inner partition
      std::array<uint32_t, kMaxDim> pick{};
      for (uint32_t combo = 0; combo < combos; ++combo) {
        uint32_t rest = combo;
        uint32_t part = 0;
        for (int i = 0; i < pgrid.dim; ++i) {
          const uint32_t k = rest % axis_slabs[i].size();
          rest /= static_cast<uint32_t>(axis_slabs[i].size());
          pick[i] = axis_slabs[i][k];
          part = part * pgrid.counts[i] + pick[i];
        }
        if (part == inner) continue;
        if (part_box[part].MinSquaredDistToPoint(pt) <= eps2) {
          members[part].push_back(id);  // halo replica
          ++halo_replicas;
        }
      }
    }
    ADB_COUNT("gridbscan.halo_replicas", halo_replicas);
  }
  }
  const PartitionGrid& pgrid = *pgrid_storage;
  const uint32_t num_partitions = pgrid.NumPartitions();

  // Local DBSCAN per partition. Local cluster ids are globally unique
  // ("cluster uid"); memberships feed the merge phase.
  std::vector<int32_t> local_label(n, kLocalUnclassified);  // reset per part
  std::vector<std::pair<uint32_t, uint32_t>> memberships;   // (point, uid)
  uint32_t next_uid = 0;
  std::vector<std::unique_ptr<KdTree>> trees(num_partitions);

  {
  // Per-partition kd-trees are independent; build them all up front in
  // parallel so the sequential expansion below only queries.
  ADB_PHASE("build_trees");
  ParallelFor(num_partitions, params.num_threads,
              [&](size_t begin, size_t end) {
                for (size_t p = begin; p < end; ++p) {
                  if (!members[p].empty()) {
                    trees[p] = std::make_unique<KdTree>(data, members[p]);
                  }
                }
              });
  }

  {
  ADB_PHASE("local_dbscan");
  size_t range_queries = 0;
  size_t range_candidates = 0;
  for (uint32_t p = 0; p < num_partitions; ++p) {
    if (members[p].empty()) continue;
    const KdTree& tree = *trees[p];
    // Reset local state for this partition's members.
    for (uint32_t id : members[p]) local_label[id] = kLocalUnclassified;

    std::deque<uint32_t> seeds;
    for (uint32_t id : members[p]) {
      if (local_label[id] != kLocalUnclassified) continue;
      ++range_queries;
      std::vector<uint32_t> neighbors =
          tree.RangeQuery(data.point(id), params.eps);
      range_candidates += neighbors.size();
      if (neighbors.size() < min_pts) {
        local_label[id] = kNoise;
        continue;
      }
      const int32_t uid = static_cast<int32_t>(next_uid++);
      // A locally-core point is globally core: local neighborhoods are
      // subsets of global ones, and complete for inner points.
      out.is_core[id] = 1;
      memberships.emplace_back(id, uid);
      local_label[id] = uid;
      seeds.clear();
      for (uint32_t r : neighbors) {
        if (r == id) continue;
        if (local_label[r] == kLocalUnclassified) seeds.push_back(r);
        if (local_label[r] == kLocalUnclassified ||
            local_label[r] == kNoise) {
          local_label[r] = uid;
          memberships.emplace_back(r, uid);
        }
      }
      while (!seeds.empty()) {
        const uint32_t q = seeds.front();
        seeds.pop_front();
        ++range_queries;
        std::vector<uint32_t> result =
            tree.RangeQuery(data.point(q), params.eps);
        range_candidates += result.size();
        if (result.size() < min_pts) continue;
        out.is_core[q] = 1;
        for (uint32_t r : result) {
          if (local_label[r] == kLocalUnclassified) {
            seeds.push_back(r);
            local_label[r] = uid;
            memberships.emplace_back(r, uid);
          } else if (local_label[r] == kNoise) {
            local_label[r] = uid;
            memberships.emplace_back(r, uid);
          }
        }
      }
    }
  }
  ADB_COUNT("index.range_queries", range_queries);
  ADB_COUNT("index.range_candidates_total", range_candidates);
  }

  // Merge: local clusters sharing a globally-core point are one cluster.
  UnionFind uf(next_uid);
  {
  ADB_PHASE("merge");
  std::sort(memberships.begin(), memberships.end());
  if (params.num_threads > 1) {
    // Each adjacent pair is an independent union; the lock-free
    // UniteConcurrent makes the whole pass order-free (components are
    // union-order-blind), so the sorted membership list parallelizes.
    std::atomic<size_t> unions_tried{0};
    ParallelFor(memberships.size(), params.num_threads,
                [&](size_t begin, size_t end) {
                  size_t tried = 0;
                  for (size_t i = std::max<size_t>(begin, 1); i < end; ++i) {
                    if (memberships[i].first == memberships[i - 1].first &&
                        out.is_core[memberships[i].first]) {
                      ++tried;
                      uf.UniteConcurrent(memberships[i].second,
                                         memberships[i - 1].second);
                    }
                  }
                  unions_tried.fetch_add(tried, std::memory_order_relaxed);
                });
    ADB_COUNT("gridbscan.merge_unions_tried", unions_tried.load());
  } else {
    size_t unions_tried = 0;
    for (size_t i = 1; i < memberships.size(); ++i) {
      if (memberships[i].first == memberships[i - 1].first &&
          out.is_core[memberships[i].first]) {
        ++unions_tried;
        uf.Union(memberships[i].second, memberships[i - 1].second);
      }
    }
    ADB_COUNT("gridbscan.merge_unions_tried", unions_tried);
  }
  }

  // Core labels: any membership of a core point names its merged component.
  std::vector<uint32_t> point_uid(n, 0xffffffffu);
  for (const auto& [id, uid] : memberships) {
    if (out.is_core[id] && point_uid[id] == 0xffffffffu) point_uid[id] = uid;
  }
  std::vector<int32_t> component_cluster(next_uid, kNoise);
  int32_t next_cluster = 0;
  std::vector<int32_t> core_label(n, kNoise);
  {
  ADB_PHASE("label_components");
  for (uint32_t id = 0; id < n; ++id) {
    if (!out.is_core[id]) continue;
    const uint32_t comp = uf.Find(point_uid[id]);
    if (component_cluster[comp] == kNoise) {
      component_cluster[comp] = next_cluster++;
    }
    core_label[id] = component_cluster[comp];
    out.label[id] = core_label[id];
  }
  }
  out.num_clusters = next_cluster;

  // Border points: resolved in the point's inner partition, whose halo
  // guarantees the complete ε-neighborhood. Point-wise independent (each
  // writes only its own non-core label, reads only core labels), so the
  // loop parallelizes with per-chunk extras merged at the end.
  {
  ADB_PHASE("border_assign");
  std::mutex extras_mutex;
  ParallelFor(n, params.num_threads, [&](size_t begin, size_t end) {
    size_t range_queries = 0;
    size_t range_candidates = 0;
    std::vector<int32_t> found;
    std::vector<std::pair<uint32_t, int32_t>> local_extras;
    for (uint32_t id = static_cast<uint32_t>(begin); id < end; ++id) {
      if (out.is_core[id]) continue;
      const KdTree& tree = *trees[inner_partition[id]];
      found.clear();
      ++range_queries;
      for (uint32_t r : tree.RangeQuery(data.point(id), params.eps)) {
        ++range_candidates;
        if (out.is_core[r]) found.push_back(core_label[r]);
      }
      if (found.empty()) continue;  // noise
      std::sort(found.begin(), found.end());
      found.erase(std::unique(found.begin(), found.end()), found.end());
      out.label[id] = found.front();
      for (size_t k = 1; k < found.size(); ++k) {
        local_extras.emplace_back(id, found[k]);
      }
    }
    ADB_COUNT("index.range_queries", range_queries);
    ADB_COUNT("index.range_candidates_total", range_candidates);
    if (!local_extras.empty()) {
      const std::lock_guard<std::mutex> lock(extras_mutex);
      out.extra_memberships.insert(out.extra_memberships.end(),
                                   local_extras.begin(), local_extras.end());
    }
  });
  std::sort(out.extra_memberships.begin(), out.extra_memberships.end());
  }
  return out;
}

}  // namespace adbscan
