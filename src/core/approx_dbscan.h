#ifndef ADBSCAN_CORE_APPROX_DBSCAN_H_
#define ADBSCAN_CORE_APPROX_DBSCAN_H_

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// "OurApprox" (Section 4, Theorem 4): ρ-approximate DBSCAN in O(n) expected
// time for any fixed d, ε and constant ρ — the paper's primary contribution.
//
// Identical to ExactGridDbscan except for the edge rule of the core-cell
// graph G (Section 4.4):
//   - an edge (c1, c2) IS added when some core point of c1 has a non-zero
//     approximate range count against the core points of c2 (Lemma 5
//     structure, radius ε, slack ρ);
//   - consequently an edge is guaranteed present when the true closest pair
//     is within ε, guaranteed absent when it exceeds ε(1+ρ), and may go
//     either way in between ("don't care").
//
// The result is a legal ρ-approximate clustering (Problem 2) obeying the
// sandwich guarantee of Theorem 3: it contains every DBSCAN(ε) cluster and
// is contained in a DBSCAN(ε(1+ρ)) cluster. Core/non-core status is exact
// by default (Definition 1 is unchanged in the conference paper).
struct ApproxDbscanOptions {
  // When true, the MinPts core test itself uses a Lemma 5 counter over the
  // whole dataset instead of exact counting — the relaxation adopted by the
  // journal version of the paper. Every exact-ε core point stays core and
  // no point that is non-core even at ε(1+ρ) becomes core, so the Theorem 3
  // sandwich still holds; core flags may differ from exact DBSCAN only for
  // points whose ε-count crosses MinPts within the (ε, ε(1+ρ)] band. Keeps
  // the labeling step O(n) even under adversarial cell occupancy.
  bool approximate_core_counting = false;
};

Clustering ApproxDbscan(const Dataset& data, const DbscanParams& params,
                        double rho, const ApproxDbscanOptions& options = {});

}  // namespace adbscan

#endif  // ADBSCAN_CORE_APPROX_DBSCAN_H_
