#include "core/grid_pipeline.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "core/border.h"
#include "ds/union_find.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {

Clustering RunGridPipeline(const Dataset& data, const DbscanParams& params,
                           const GridPipelineHooks& hooks) {
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  Clustering out;
  out.label.assign(n, kNoise);
  out.is_core.assign(n, 0);
  if (n == 0) return out;

  // Register the pipeline's counter set up front so every exported record
  // carries the same names even when a code path never fires (e.g. a run
  // with no core cells has graph.edge_tests = 0, not a missing counter).
  ADB_COUNT("grid.cells", 0);
  ADB_COUNT("grid.csr_bytes", 0);
  ADB_COUNT("grid.hash_probes", 0);
  ADB_COUNT("grid.block_kernel_calls", 0);
  ADB_COUNT("grid.cache_resets", 0);
  ADB_COUNT("graph.nodes", 0);
  ADB_COUNT("graph.candidate_pairs", 0);
  ADB_COUNT("graph.edge_tests", 0);
  ADB_COUNT("graph.edges", 0);
  ADB_COUNT("dist_evals.core_labeling", 0);
  ADB_COUNT("dist_evals.border", 0);
  ADB_COUNT("unionfind.finds", 0);
  ADB_COUNT("unionfind.unions", 0);

  std::optional<Grid> grid_storage;
  {
    ADB_PHASE("grid_build");
    grid_storage.emplace(data, Grid::SideFor(params.eps, data.dim()),
                         params.num_threads);
    if (params.num_threads > 1) {
      grid_storage->WarmNeighborCache(params.eps, params.num_threads);
    }
  }
  const Grid& grid = *grid_storage;
  ADB_COUNT("grid.cells", grid.NumCells());
  ADB_COUNT("grid.csr_bytes", grid.CsrBytes());

  {
    ADB_PHASE("core_labeling");
    out.is_core = hooks.label_core ? hooks.label_core(data, grid, params)
                                   : LabelCorePoints(data, grid, params);
  }
  std::optional<CoreCellIndex> cci_storage;
  {
    ADB_PHASE("core_cell_index");
    cci_storage.emplace(BuildCoreCellIndex(grid, out.is_core));
  }
  const CoreCellIndex& cci = *cci_storage;
  ADB_COUNT("graph.nodes", cci.size());
  if (hooks.prepare_cells) {
    ADB_PHASE("prepare_cells");
    hooks.prepare_cells(grid, cci);
  }

  // Edges of G over unordered ε-neighbor core-cell pairs.
  UnionFind uf(static_cast<uint32_t>(cci.size()));
  {
    ADB_PHASE("edge_graph");
    if (hooks.edge_test_thread_safe && params.num_threads > 1) {
      // Parallel path: each worker walks a dynamic slice of the core cells
      // and unions ε-neighbor pairs in place through the lock-free
      // UniteConcurrent — no edge vector, no sequential merge step. The
      // connected-skip below is sound under concurrency: two cells whose
      // concurrent finds agree are already merged (merged sets never
      // split), so dropping the test cannot lose an edge of a component.
      // Stale (unequal) finds only cost a redundant edge test. Components
      // — and therefore cluster labels — are identical to the serial path
      // for every thread count and interleaving.
      std::atomic<size_t> candidates_total{0};
      std::atomic<size_t> tests_total{0};
      std::atomic<size_t> edges_total{0};
      ParallelFor(cci.size(), params.num_threads, [&](size_t begin,
                                                      size_t end) {
        size_t candidates = 0, tests = 0, edges = 0;
        for (uint32_t c1 = static_cast<uint32_t>(begin); c1 < end; ++c1) {
          for (uint32_t gj :
               grid.EpsNeighbors(cci.grid_cell[c1], params.eps)) {
            const uint32_t c2 = cci.core_cell_of_grid_cell[gj];
            if (c2 == CoreCellIndex::kNone || c2 <= c1) continue;
            ++candidates;
            if (uf.FindConcurrent(c1) == uf.FindConcurrent(c2)) continue;
            ++tests;
            if (hooks.edge_test(c1, c2)) {
              ++edges;
              uf.UniteConcurrent(c1, c2);
            }
          }
        }
        candidates_total.fetch_add(candidates, std::memory_order_relaxed);
        tests_total.fetch_add(tests, std::memory_order_relaxed);
        edges_total.fetch_add(edges, std::memory_order_relaxed);
      });
      ADB_COUNT("graph.candidate_pairs", candidates_total.load());
      ADB_COUNT("graph.edge_tests", tests_total.load());
      ADB_COUNT("graph.edges", edges_total.load());
    } else {
      // Serial path: each pair tested at most once, skipped outright when
      // already connected.
      size_t candidates = 0, tests = 0, edges = 0;
      for (uint32_t c1 = 0; c1 < cci.size(); ++c1) {
        for (uint32_t gj :
             grid.EpsNeighbors(cci.grid_cell[c1], params.eps)) {
          const uint32_t c2 = cci.core_cell_of_grid_cell[gj];
          if (c2 == CoreCellIndex::kNone || c2 <= c1) continue;
          ++candidates;
          if (uf.Connected(c1, c2)) continue;
          ++tests;
          if (hooks.edge_test(c1, c2)) {
            ++edges;
            uf.Union(c1, c2);
          }
        }
      }
      ADB_COUNT("graph.candidate_pairs", candidates);
      ADB_COUNT("graph.edge_tests", tests);
      ADB_COUNT("graph.edges", edges);
    }
  }

  std::vector<int32_t> core_label(n, kNoise);
  {
    ADB_PHASE("label_components");
    std::vector<uint32_t> component = uf.ComponentIds();

    // Number clusters by first core point in id order so labels are
    // deterministic, and write the core labels (Lemma 1: component -> the
    // core points of one cluster).
    std::vector<int32_t> component_to_cluster(cci.size(), kNoise);
    int32_t next_cluster = 0;
    for (uint32_t id = 0; id < n; ++id) {
      if (!out.is_core[id]) continue;
      const uint32_t cc =
          cci.core_cell_of_grid_cell[grid.CellOfPoint(id)];
      ADB_DCHECK(cc != CoreCellIndex::kNone);
      const uint32_t comp = component[cc];
      if (component_to_cluster[comp] == kNoise) {
        component_to_cluster[comp] = next_cluster++;
      }
      core_label[id] = component_to_cluster[comp];
      out.label[id] = core_label[id];
    }
    out.num_clusters = next_cluster;
  }

  {
    ADB_PHASE("border_assign");
    if (hooks.assign_border) {
      hooks.assign_border(data, grid, cci, out.is_core, core_label, &out);
      // AssignBorderPoints sorts its own extras; hooks only append.
      std::sort(out.extra_memberships.begin(), out.extra_memberships.end());
    } else {
      AssignBorderPoints(data, grid, cci, out.is_core, core_label, params.eps,
                         &out, params.num_threads);
    }
  }
  return out;
}

}  // namespace adbscan
