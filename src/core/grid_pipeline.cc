#include "core/grid_pipeline.h"

#include "core/border.h"
#include "ds/union_find.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {

Clustering RunGridPipeline(const Dataset& data, const DbscanParams& params,
                           const GridPipelineHooks& hooks) {
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  Clustering out;
  out.label.assign(n, kNoise);
  out.is_core.assign(n, 0);
  if (n == 0) return out;

  const Grid grid(data, Grid::SideFor(params.eps, data.dim()));
  if (params.num_threads > 1) {
    grid.WarmNeighborCache(params.eps, params.num_threads);
  }
  out.is_core = hooks.label_core ? hooks.label_core(data, grid, params)
                                 : LabelCorePoints(data, grid, params);
  const CoreCellIndex cci = BuildCoreCellIndex(grid, out.is_core);
  if (hooks.prepare_cells) hooks.prepare_cells(grid, cci);

  // Edges of G over unordered ε-neighbor core-cell pairs.
  UnionFind uf(static_cast<uint32_t>(cci.size()));
  if (hooks.edge_test_thread_safe && params.num_threads > 1) {
    // Parallel path: evaluate every candidate pair concurrently, then union
    // sequentially. More tests than the serial path (which skips pairs that
    // are already connected), but the same components.
    std::vector<std::pair<uint32_t, uint32_t>> pairs;
    for (uint32_t c1 = 0; c1 < cci.size(); ++c1) {
      for (uint32_t gj : grid.EpsNeighbors(cci.grid_cell[c1], params.eps)) {
        const uint32_t c2 = cci.core_cell_of_grid_cell[gj];
        if (c2 != CoreCellIndex::kNone && c2 > c1) pairs.emplace_back(c1, c2);
      }
    }
    std::vector<char> has_edge(pairs.size(), 0);
    ParallelFor(pairs.size(), params.num_threads,
                [&](size_t begin, size_t end) {
                  for (size_t i = begin; i < end; ++i) {
                    has_edge[i] =
                        hooks.edge_test(pairs[i].first, pairs[i].second);
                  }
                });
    for (size_t i = 0; i < pairs.size(); ++i) {
      if (has_edge[i]) uf.Union(pairs[i].first, pairs[i].second);
    }
  } else {
    // Serial path: each pair tested at most once, skipped outright when
    // already connected.
    for (uint32_t c1 = 0; c1 < cci.size(); ++c1) {
      for (uint32_t gj : grid.EpsNeighbors(cci.grid_cell[c1], params.eps)) {
        const uint32_t c2 = cci.core_cell_of_grid_cell[gj];
        if (c2 == CoreCellIndex::kNone || c2 <= c1) continue;
        if (uf.Connected(c1, c2)) continue;
        if (hooks.edge_test(c1, c2)) uf.Union(c1, c2);
      }
    }
  }
  std::vector<uint32_t> component = uf.ComponentIds();

  // Number clusters by first core point in id order so labels are
  // deterministic, and write the core labels (Lemma 1: component -> the core
  // points of one cluster).
  std::vector<int32_t> component_to_cluster(cci.size(), kNoise);
  std::vector<int32_t> core_label(n, kNoise);
  int32_t next_cluster = 0;
  for (uint32_t id = 0; id < n; ++id) {
    if (!out.is_core[id]) continue;
    const uint32_t cc =
        cci.core_cell_of_grid_cell[grid.CellOfPoint(id)];
    ADB_DCHECK(cc != CoreCellIndex::kNone);
    const uint32_t comp = component[cc];
    if (component_to_cluster[comp] == kNoise) {
      component_to_cluster[comp] = next_cluster++;
    }
    core_label[id] = component_to_cluster[comp];
    out.label[id] = core_label[id];
  }
  out.num_clusters = next_cluster;

  AssignBorderPoints(data, grid, cci, out.is_core, core_label, params.eps,
                     &out, params.num_threads);
  return out;
}

}  // namespace adbscan
