#ifndef ADBSCAN_CORE_DBSCAN_TYPES_H_
#define ADBSCAN_CORE_DBSCAN_TYPES_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

namespace adbscan {

// Cluster label of points that belong to no cluster (Definition 3 remark).
inline constexpr int32_t kNoise = -1;

// The two DBSCAN parameters of Definition 1, plus an execution knob.
struct DbscanParams {
  double eps = 0.0;  // ε: radius of the density ball
  int min_pts = 1;   // MinPts: density threshold (includes the point itself)

  // Worker threads used by every pipeline: the grid-pipeline algorithms
  // (ExactGridDbscan, ApproxDbscan, Gunawan2dDbscan) parallelize neighbor
  // enumeration, labeling, structure construction, edge tests (unioned in
  // place through the concurrent union-find), and border assignment;
  // Kdd96Dbscan batches each seed frontier's region queries; GridbscanDbscan
  // parallelizes tree construction, the merge pass, and border assignment.
  // The output is identical for every value and every interleaving: the
  // parallel phases evaluate the same deterministic tests, components are
  // union-order-blind, and KDD96 applies batch results in frontier order.
  // Values <= 1 run serially; front-ends map their "auto" setting to a
  // concrete count with ResolveNumThreads() in util/parallel.h (which
  // honors the ADBSCAN_THREADS environment variable).
  int num_threads = 1;
};

// Output of every clustering algorithm in this library.
//
// DBSCAN clusters are not disjoint: a border point belongs to the cluster of
// *every* core point within ε of it (Lemma 2 of [10]: only border points can
// be shared). The result therefore carries a primary label per point plus an
// explicit list of additional memberships, and comparisons between
// algorithms go through ClusterSets(), which is label- and order-invariant.
struct Clustering {
  int32_t num_clusters = 0;

  // Primary cluster of each point in [0, num_clusters), or kNoise.
  std::vector<int32_t> label;

  // Whether each point is a core point (Definition 1).
  std::vector<char> is_core;

  // Additional (point, cluster) memberships of border points beyond their
  // primary label. Sorted lexicographically, no duplicates.
  std::vector<std::pair<uint32_t, int32_t>> extra_memberships;

  // The clusters as canonical point-id sets: cluster -> sorted ids,
  // including extra memberships.
  std::vector<std::vector<uint32_t>> ClusterSets() const {
    std::vector<std::vector<uint32_t>> sets(num_clusters);
    for (uint32_t i = 0; i < label.size(); ++i) {
      if (label[i] != kNoise) sets[label[i]].push_back(i);
    }
    for (const auto& [point, cluster] : extra_memberships) {
      sets[cluster].push_back(point);
    }
    for (auto& s : sets) {
      std::sort(s.begin(), s.end());
    }
    return sets;
  }

  size_t NumNoisePoints() const {
    size_t n = 0;
    for (int32_t l : label) n += (l == kNoise);
    return n;
  }

  size_t NumCorePoints() const {
    size_t n = 0;
    for (char c : is_core) n += (c != 0);
    return n;
  }
};

}  // namespace adbscan

#endif  // ADBSCAN_CORE_DBSCAN_TYPES_H_
