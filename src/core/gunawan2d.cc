#include "core/gunawan2d.h"

#include <memory>
#include <vector>

#include "core/grid_pipeline.h"
#include "geom/delaunay2d.h"
#include "index/kdtree.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {

Clustering Gunawan2dDbscan(const Dataset& data, const DbscanParams& params,
                           const Gunawan2dOptions& options) {
  ADB_CHECK_MSG(data.dim() == 2, "Gunawan's algorithm is 2D-only");
  ADB_COUNT("gunawan.nn_structures", 0);
  ADB_COUNT("gunawan.nn_queries", 0);
  const CoreCellIndex* cells = nullptr;
  // Nearest-neighbor structure over each core cell's core points: either
  // a kd-tree or the Delaunay (Voronoi-dual) structure of [11].
  std::vector<std::unique_ptr<KdTree>> kd;
  std::vector<std::unique_ptr<Delaunay2d>> voronoi;
  const bool use_delaunay =
      options.backend == Gunawan2dOptions::NnBackend::kDelaunay;

  GridPipelineHooks hooks;
  hooks.prepare_cells = [&](const Grid&, const CoreCellIndex& cci) {
    cells = &cci;
    ADB_COUNT("gunawan.nn_structures", cci.size());
    // Per-cell structures are independent, so construction parallelizes.
    if (use_delaunay) {
      voronoi.resize(cci.size());
      ParallelFor(cci.size(), params.num_threads,
                  [&](size_t begin, size_t end) {
                    for (size_t c = begin; c < end; ++c) {
                      voronoi[c] = std::make_unique<Delaunay2d>(
                          data, cci.core_points[c]);
                    }
                  });
    } else {
      kd.resize(cci.size());
      ParallelFor(cci.size(), params.num_threads,
                  [&](size_t begin, size_t end) {
                    for (size_t c = begin; c < end; ++c) {
                      kd[c] = std::make_unique<KdTree>(
                          data, cci.core_points[c]);
                    }
                  });
    }
  };
  const double eps2 = params.eps * params.eps;
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    // For each core point p in c1, find the nearest core point of c2; an
    // edge exists iff some such nearest distance is within ε.
    size_t nn_queries = 0;  // batched into the counter once per edge test
    bool found = false;
    for (uint32_t p : cells->core_points[c1]) {
      ++nn_queries;
      if (use_delaunay) {
        if (voronoi[c2]->Nearest(data.point(p)).squared_dist <= eps2) {
          found = true;
          break;
        }
      } else {
        const auto nearest =
            kd[c2]->Nearest(data.point(p), eps2 * (1.0 + 1e-12));
        if (nearest.has_value() && nearest->squared_dist <= eps2) {
          found = true;
          break;
        }
      }
    }
    ADB_COUNT("gunawan.nn_queries", nn_queries);
    return found;
  };
  // The kd-tree backend's queries are const and pure; the Delaunay walk
  // caches its start vertex, so it must stay serial.
  hooks.edge_test_thread_safe = !use_delaunay;
  return RunGridPipeline(data, params, hooks);
}

}  // namespace adbscan
