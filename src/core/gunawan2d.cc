#include "core/gunawan2d.h"

#include <memory>
#include <vector>

#include "core/grid_pipeline.h"
#include "geom/delaunay2d.h"
#include "geom/kernels.h"
#include "geom/soa.h"
#include "index/kdtree.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

// Core cells at or below this size answer "any core point within ε?" with
// one batch-kernel scan of a gathered SoA block instead of a kd-tree walk;
// by the grid's sparse/dense split most cells land well under this.
constexpr size_t kBlockScanThreshold = 64;

}  // namespace

Clustering Gunawan2dDbscan(const Dataset& data, const DbscanParams& params,
                           const Gunawan2dOptions& options) {
  ADB_CHECK_MSG(data.dim() == 2, "Gunawan's algorithm is 2D-only");
  ADB_COUNT("gunawan.nn_structures", 0);
  ADB_COUNT("gunawan.nn_queries", 0);
  const CoreCellIndex* cells = nullptr;
  // Nearest-neighbor structure over each core cell's core points: either
  // a kd-tree or the Delaunay (Voronoi-dual) structure of [11]. Small cells
  // skip the tree and use a flat kernel scan over an SoA view — zero-copy
  // into the grid's permuted SoA when the cell is fully core (CSR layout),
  // a gathered block otherwise.
  std::vector<std::unique_ptr<KdTree>> kd;
  std::vector<std::unique_ptr<simd::SoaBlock>> blocks;
  std::vector<simd::SoaSpan> spans;  // valid iff base != nullptr
  std::vector<std::unique_ptr<Delaunay2d>> voronoi;
  const bool use_delaunay =
      options.backend == Gunawan2dOptions::NnBackend::kDelaunay;

  GridPipelineHooks hooks;
  hooks.prepare_cells = [&](const Grid& grid, const CoreCellIndex& cci) {
    ADB_PHASE("gunawan.nn_build");
    cells = &cci;
    ADB_COUNT("gunawan.nn_structures", cci.size());
    // Per-cell structures are independent, so construction parallelizes.
    if (use_delaunay) {
      voronoi.resize(cci.size());
      ParallelFor(cci.size(), params.num_threads,
                  [&](size_t begin, size_t end) {
                    for (size_t c = begin; c < end; ++c) {
                      voronoi[c] = std::make_unique<Delaunay2d>(
                          data, cci.core_points[c]);
                    }
                  });
    } else {
      kd.resize(cci.size());
      blocks.resize(cci.size());
      spans.assign(cci.size(), simd::SoaSpan{});
      ParallelFor(cci.size(), params.num_threads,
                  [&](size_t begin, size_t end) {
                    for (size_t c = begin; c < end; ++c) {
                      const std::vector<uint32_t>& pts = cci.core_points[c];
                      if (pts.size() > kBlockScanThreshold) {
                        kd[c] = std::make_unique<KdTree>(data, pts);
                      } else if (cci.all_core[c]) {
                        spans[c] = grid.CellBlock(cci.grid_cell[c]);
                      } else {
                        blocks[c] = std::make_unique<simd::SoaBlock>(
                            data, pts.data(), pts.size());
                        spans[c] = blocks[c]->span();
                      }
                    }
                  });
    }
  };
  const double eps2 = params.eps * params.eps;
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    // For each core point p in c1, find the nearest core point of c2; an
    // edge exists iff some such nearest distance is within ε.
    size_t nn_queries = 0;  // batched into the counter once per edge test
    bool found = false;
    for (uint32_t p : cells->core_points[c1]) {
      ++nn_queries;
      if (use_delaunay) {
        if (voronoi[c2]->Nearest(data.point(p)).squared_dist <= eps2) {
          found = true;
          break;
        }
      } else if (spans[c2].base != nullptr) {
        // Flat batch scan; equivalent to the kd path's "nearest within ε"
        // test since both reduce to min dist² <= eps².
        if (simd::AnyWithin(data.point(p), spans[c2], eps2)) {
          found = true;
          break;
        }
      } else {
        const auto nearest =
            kd[c2]->Nearest(data.point(p), eps2 * (1.0 + 1e-12));
        if (nearest.has_value() && nearest->squared_dist <= eps2) {
          found = true;
          break;
        }
      }
    }
    ADB_COUNT("gunawan.nn_queries", nn_queries);
    return found;
  };
  // The kd-tree backend's queries are const and pure; the Delaunay walk
  // caches its start vertex, so it must stay serial.
  hooks.edge_test_thread_safe = !use_delaunay;
  return RunGridPipeline(data, params, hooks);
}

}  // namespace adbscan
