#ifndef ADBSCAN_CORE_CORE_LABELING_H_
#define ADBSCAN_CORE_CORE_LABELING_H_

#include <cstdint>
#include <vector>

#include "core/dbscan_types.h"
#include "geom/dataset.h"
#include "grid/grid.h"

namespace adbscan {

// The labeling process of Section 2.2, generalized to any dimensionality:
// decides for every point whether it is a core point (Definition 1).
//
// For a cell with at least MinPts points, every point in it is core (any two
// points of a cell are within ε because the side is ε/√d). For sparser
// cells, each point's ε-ball count is accumulated over the cell itself and
// its ε-neighbor cells, stopping as soon as MinPts is reached.
//
// `grid` must have been built over `data` with side ε/√d. Expected time
// O(MinPts · n) for constant d.
std::vector<char> LabelCorePoints(const Dataset& data, const Grid& grid,
                                  const DbscanParams& params);

// Subset variant for the sampled tier (DBSCAN++): decides core status for
// the points listed in `candidates` only — every other point's flag stays 0
// — while ε-ball counts are still taken against the FULL dataset through
// the same cell-box shortcuts and batch kernels as LabelCorePoints. With
// candidates = [0, n) the result is bit-identical to LabelCorePoints.
// `candidates` need not be sorted; duplicates are harmless.
std::vector<char> LabelCorePointsAmong(const Dataset& data, const Grid& grid,
                                       const DbscanParams& params,
                                       const std::vector<uint32_t>& candidates);

// The core cells of a grid (cells covering at least one core point) and
// their core-point lists — the vertex set of the graph G in Sections
// 2.2/3.2/4.4.
struct CoreCellIndex {
  // Grid cell index of each core cell.
  std::vector<uint32_t> grid_cell;
  // Core point ids per core cell (parallel to grid_cell).
  std::vector<std::vector<uint32_t>> core_points;
  // True when EVERY point of the cell is core (parallel to grid_cell), so
  // core_points equals the grid's own membership list and consumers may scan
  // the cell's zero-copy SoA block (Grid::CellBlock) instead of gathering
  // the core subset.
  std::vector<char> all_core;
  // Maps grid cell index -> core cell index, or kNone.
  std::vector<uint32_t> core_cell_of_grid_cell;

  static constexpr uint32_t kNone = 0xffffffffu;
  size_t size() const { return grid_cell.size(); }
};

CoreCellIndex BuildCoreCellIndex(const Grid& grid,
                                 const std::vector<char>& is_core);

}  // namespace adbscan

#endif  // ADBSCAN_CORE_CORE_LABELING_H_
