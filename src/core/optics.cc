#include "core/optics.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "geom/point.h"
#include "index/kdtree.h"
#include "util/check.h"

namespace adbscan {
namespace {

constexpr double kUndefined = OpticsResult::kUndefined;

// Lazy-deletion min-heap entry for the OPTICS seed list.
struct Seed {
  double reachability;
  uint32_t id;
  bool operator>(const Seed& other) const {
    return reachability > other.reachability ||
           (reachability == other.reachability && id > other.id);
  }
};

// Distance to the MinPts-th nearest point among `neighbors` (which include
// the query itself), or kUndefined if there are fewer than MinPts.
double CoreDistance(const Dataset& data, const double* p,
                    const std::vector<uint32_t>& neighbors, size_t min_pts) {
  if (neighbors.size() < min_pts) return kUndefined;
  std::vector<double> dists;
  dists.reserve(neighbors.size());
  for (uint32_t r : neighbors) {
    dists.push_back(SquaredDistance(p, data.point(r), data.dim()));
  }
  std::nth_element(dists.begin(), dists.begin() + (min_pts - 1),
                   dists.end());
  return std::sqrt(dists[min_pts - 1]);
}

}  // namespace

OpticsResult RunOptics(const Dataset& data, const DbscanParams& params) {
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  const size_t min_pts = static_cast<size_t>(params.min_pts);
  OpticsResult result;
  result.reachability.assign(n, kUndefined);
  result.core_distance.assign(n, kUndefined);
  result.order.reserve(n);
  if (n == 0) return result;

  const KdTree index(data);
  std::vector<char> processed(n, 0);
  std::priority_queue<Seed, std::vector<Seed>, std::greater<Seed>> heap;

  auto process = [&](uint32_t p) {
    processed[p] = 1;
    result.order.push_back(p);
    const std::vector<uint32_t> neighbors =
        index.RangeQuery(data.point(p), params.eps);
    const double core_dist =
        CoreDistance(data, data.point(p), neighbors, min_pts);
    result.core_distance[p] = core_dist;
    if (core_dist == kUndefined) return;
    // Update reachability of unprocessed neighbors.
    for (uint32_t r : neighbors) {
      if (processed[r]) continue;
      const double reach = std::max(
          core_dist, Distance(data.point(p), data.point(r), data.dim()));
      if (result.reachability[r] == kUndefined ||
          reach < result.reachability[r]) {
        result.reachability[r] = reach;
        heap.push(Seed{reach, r});  // lazy: stale entries skipped on pop
      }
    }
  };

  for (uint32_t start = 0; start < n; ++start) {
    if (processed[start]) continue;
    process(start);
    while (!heap.empty()) {
      const Seed seed = heap.top();
      heap.pop();
      if (processed[seed.id] ||
          seed.reachability != result.reachability[seed.id]) {
        continue;  // stale entry
      }
      process(seed.id);
    }
  }
  ADB_CHECK(result.order.size() == n);
  return result;
}

Clustering ExtractDbscanClustering(const Dataset& data,
                                   const OpticsResult& optics,
                                   const DbscanParams& params,
                                   double eps_prime) {
  ADB_CHECK(eps_prime > 0.0 && eps_prime <= params.eps);
  const size_t n = data.size();
  Clustering out;
  out.label.assign(n, kNoise);
  out.is_core.assign(n, 0);
  if (n == 0) return out;

  // The ExtractDBSCAN-Clustering scan of [2]: walk the ordering; a point
  // whose reachability exceeds eps' starts a new cluster if it is core at
  // eps', else it is noise; otherwise it continues the current cluster.
  int32_t current = kNoise;
  int32_t next_cluster = 0;
  for (uint32_t p : optics.order) {
    const bool reach_ok = optics.reachability[p] != OpticsResult::kUndefined &&
                          optics.reachability[p] <= eps_prime;
    const bool core_ok = optics.core_distance[p] != OpticsResult::kUndefined &&
                         optics.core_distance[p] <= eps_prime;
    if (!reach_ok) {
      if (core_ok) {
        current = next_cluster++;
        out.label[p] = current;
      } else {
        current = kNoise;
        out.label[p] = kNoise;
      }
    } else {
      out.label[p] = current;
    }
    if (core_ok) out.is_core[p] = 1;
  }
  out.num_clusters = next_cluster;
  return out;
}

}  // namespace adbscan
