#ifndef ADBSCAN_CORE_BORDER_H_
#define ADBSCAN_CORE_BORDER_H_

#include <cstdint>
#include <vector>

#include "core/core_labeling.h"
#include "core/dbscan_types.h"
#include "geom/dataset.h"
#include "grid/grid.h"

namespace adbscan {

// Assigns every non-core point q to the cluster of every core point within
// distance ε of q ("Assigning Border Points", Section 2.2): q's primary
// label becomes the smallest such cluster id, the remaining ones are
// recorded as extra memberships, and points with no core point in range stay
// noise.
//
// `core_label[p]` must hold the cluster id of every core point p;
// `out->label` must already carry those core labels. Non-core entries of
// `core_label` are ignored.
// num_threads > 1 parallelizes over cells (labels are written disjointly;
// extra memberships are collected under a mutex and canonically sorted).
void AssignBorderPoints(const Dataset& data, const Grid& grid,
                        const CoreCellIndex& cci,
                        const std::vector<char>& is_core,
                        const std::vector<int32_t>& core_label, double eps,
                        Clustering* out, int num_threads = 1);

}  // namespace adbscan

#endif  // ADBSCAN_CORE_BORDER_H_
