#ifndef ADBSCAN_CORE_GRID_PIPELINE_H_
#define ADBSCAN_CORE_GRID_PIPELINE_H_

#include <functional>

#include "core/core_labeling.h"
#include "core/dbscan_types.h"
#include "geom/dataset.h"
#include "grid/grid.h"

namespace adbscan {

// The skeleton shared by Gunawan's 2D algorithm, the exact d ≥ 3 algorithm
// (Theorem 2), and the ρ-approximate algorithm (Theorem 4); the three differ
// only in how an edge of the core-cell graph G is decided:
//   1. build the grid with cell side ε/√d;
//   2. label core points (exact, Definition 1);
//   3. build the core-cell index (vertices of G);
//   4. for every unordered pair of ε-neighbor core cells not yet connected,
//      run the algorithm-specific edge test and union the cells on success;
//   5. number the connected components (clusters of core points, Lemma 1);
//   6. assign border points.
//
// `PrepareCells` (optional) is called once with the core-cell index before
// edge generation — the ρ-approximate algorithm uses it to build its
// per-cell counting structures. `EdgeTest(c1, c2)` receives core-cell
// indices with c1 < c2.
struct GridPipelineHooks {
  std::function<void(const Grid&, const CoreCellIndex&)> prepare_cells;
  std::function<bool(uint32_t c1, uint32_t c2)> edge_test;
  // Optional override of step 2; defaults to the exact LabelCorePoints.
  // Used by the journal-version approximate-core-counting mode.
  std::function<std::vector<char>(const Dataset&, const Grid&,
                                  const DbscanParams&)>
      label_core;
  // Optional override of step 6; defaults to the exact AssignBorderPoints.
  // Receives the final core flags and per-core-point cluster labels; must
  // fill out->label (preset to the core labels, kNoise elsewhere) and may
  // append out->extra_memberships (sorted by the pipeline afterwards). The
  // sampled tier uses this to route non-sampled points through its
  // nearest-core kd-tree lookup instead of the candidate-cell scan.
  std::function<void(const Dataset&, const Grid&, const CoreCellIndex&,
                     const std::vector<char>& is_core,
                     const std::vector<int32_t>& core_label,
                     Clustering* out)>
      assign_border;
  // When true AND params.num_threads > 1, candidate cell pairs are
  // evaluated concurrently (the tests must be pure functions of the pair).
  // The result is identical to the serial path: the extra tests a serial
  // union-find would have skipped as already-connected cannot change the
  // connected components.
  bool edge_test_thread_safe = false;
};

Clustering RunGridPipeline(const Dataset& data, const DbscanParams& params,
                           const GridPipelineHooks& hooks);

}  // namespace adbscan

#endif  // ADBSCAN_CORE_GRID_PIPELINE_H_
