#include "core/brute_reference.h"

#include <algorithm>

#include "ds/union_find.h"
#include "geom/point.h"
#include "util/check.h"

namespace adbscan {

Clustering BruteForceDbscan(const Dataset& data, const DbscanParams& params) {
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  const double eps2 = params.eps * params.eps;
  const int dim = data.dim();
  Clustering out;
  out.label.assign(n, kNoise);
  out.is_core.assign(n, 0);
  if (n == 0) return out;

  // Core points by exhaustive counting.
  for (uint32_t i = 0; i < n; ++i) {
    size_t count = 0;
    for (uint32_t j = 0; j < n; ++j) {
      if (SquaredDistance(data.point(i), data.point(j), dim) <= eps2) {
        ++count;
      }
    }
    if (count >= static_cast<size_t>(params.min_pts)) out.is_core[i] = 1;
  }

  // Connected components of the core-core ε-graph.
  UnionFind uf(static_cast<uint32_t>(n));
  for (uint32_t i = 0; i < n; ++i) {
    if (!out.is_core[i]) continue;
    for (uint32_t j = i + 1; j < n; ++j) {
      if (!out.is_core[j]) continue;
      if (SquaredDistance(data.point(i), data.point(j), dim) <= eps2) {
        uf.Union(i, j);
      }
    }
  }
  std::vector<int32_t> core_label(n, kNoise);
  std::vector<int32_t> root_cluster(n, kNoise);
  int32_t next_cluster = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (!out.is_core[i]) continue;
    const uint32_t root = uf.Find(i);
    if (root_cluster[root] == kNoise) root_cluster[root] = next_cluster++;
    core_label[i] = root_cluster[root];
    out.label[i] = core_label[i];
  }
  out.num_clusters = next_cluster;

  // Border points join every cluster owning a core point within ε.
  std::vector<int32_t> found;
  for (uint32_t q = 0; q < n; ++q) {
    if (out.is_core[q]) continue;
    found.clear();
    for (uint32_t i = 0; i < n; ++i) {
      if (!out.is_core[i]) continue;
      if (SquaredDistance(data.point(q), data.point(i), dim) <= eps2) {
        found.push_back(core_label[i]);
      }
    }
    if (found.empty()) continue;
    std::sort(found.begin(), found.end());
    found.erase(std::unique(found.begin(), found.end()), found.end());
    out.label[q] = found.front();
    for (size_t k = 1; k < found.size(); ++k) {
      out.extra_memberships.emplace_back(q, found[k]);
    }
  }
  std::sort(out.extra_memberships.begin(), out.extra_memberships.end());
  return out;
}

}  // namespace adbscan
