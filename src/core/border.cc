#include "core/border.h"

#include <algorithm>
#include <mutex>

#include "geom/box.h"
#include "geom/kernels.h"
#include "geom/point.h"
#include "geom/soa.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/scratch_arena.h"

namespace adbscan {

void AssignBorderPoints(const Dataset& data, const Grid& grid,
                        const CoreCellIndex& cci,
                        const std::vector<char>& is_core,
                        const std::vector<int32_t>& core_label, double eps,
                        Clustering* out, int num_threads) {
  const double eps2 = eps * eps;
  if (num_threads > 1) grid.WarmNeighborCache(eps, num_threads);
  std::mutex extras_mutex;
  // The "any core point within ε?" scan runs through the batch kernels
  // over per-cell SoA views — zero-copy for fully-core cells, one gather
  // per (cell, candidate) otherwise.

  // All core points of one cell belong to one cluster (Lemma 1: the cell is
  // a vertex of G, its core points follow its connected component). So for
  // a candidate core cell, a border point needs only the answer to "is any
  // core point of this cell within ε?" — which allows both an early exit on
  // the first hit and whole-cell box shortcuts.
  std::vector<int32_t> cell_cluster(cci.size());
  for (uint32_t cc = 0; cc < cci.size(); ++cc) {
    cell_cluster[cc] = core_label[cci.core_points[cc].front()];
    ADB_DCHECK(cell_cluster[cc] != kNoise);
  }

  // Process cell by cell so each neighbor list is computed once; cells are
  // independent apart from the extras list.
  ParallelFor(grid.NumCells(), num_threads, [&](size_t begin, size_t end) {
  std::vector<int32_t> memberships;  // clusters found for the current point
  std::vector<std::pair<uint32_t, int32_t>> local_extras;
  size_t dist_evals = 0;  // batched into the counter once per chunk
  for (uint32_t ci = static_cast<uint32_t>(begin); ci < end; ++ci) {
    const Grid::IdSpan cell_pts = grid.cell_points(ci);
    bool has_non_core = false;
    for (uint32_t id : cell_pts) {
      if (!is_core[id]) {
        has_non_core = true;
        break;
      }
    }
    if (!has_non_core) continue;

    // Candidate core cells: the cell itself plus its ε-neighbors. All the
    // per-cell buffers live in the worker arena, so a warmed pass over many
    // cells reuses their capacity instead of reallocating.
    const Grid::IdSpan eps_neighbors = grid.EpsNeighbors(ci, eps);
    std::vector<uint32_t>& candidate_cells =
        WorkerScratch<uint32_t>(scratch::kBorderCandidateCells);
    candidate_cells.assign(eps_neighbors.begin(), eps_neighbors.end());
    candidate_cells.push_back(ci);
    std::vector<uint32_t>& core_cells =
        WorkerScratch<uint32_t>(scratch::kBorderCoreCells);
    core_cells.clear();
    std::vector<Box>& core_boxes = WorkerScratch<Box>(scratch::kBorderCoreBoxes);
    core_boxes.clear();
    std::vector<uint32_t>& core_grid_cells =
        WorkerScratch<uint32_t>(scratch::kBorderGridCells);
    core_grid_cells.clear();
    for (uint32_t cj : candidate_cells) {
      const uint32_t cc = cci.core_cell_of_grid_cell[cj];
      if (cc == CoreCellIndex::kNone) continue;
      core_cells.push_back(cc);
      core_boxes.push_back(grid.CellBoxOf(cj));
      core_grid_cells.push_back(cj);
    }
    // Per-candidate SoA views, built on first use and shared by every
    // border point of this cell.
    std::vector<simd::SoaSpan>& core_spans =
        WorkerScratch<simd::SoaSpan>(scratch::kBorderCoreViews);
    std::vector<simd::SoaBlock>& core_scratch =
        WorkerScratch<simd::SoaBlock>(scratch::kBorderCoreViews);
    core_spans.assign(core_cells.size(), simd::SoaSpan{});
    core_scratch.clear();
    core_scratch.resize(core_cells.size());

    for (uint32_t id : cell_pts) {
      if (is_core[id]) continue;
      const double* q = data.point(id);
      memberships.clear();
      for (size_t k = 0; k < core_cells.size(); ++k) {
        const uint32_t cc = core_cells[k];
        const int32_t cluster = cell_cluster[cc];
        // A cluster already collected needs no second witness.
        if (std::find(memberships.begin(), memberships.end(), cluster) !=
            memberships.end()) {
          continue;
        }
        if (core_boxes[k].MinSquaredDistToPoint(q) > eps2) continue;
        bool hit = core_boxes[k].MaxSquaredDistToPoint(q) <= eps2;
        if (!hit) {
          if (core_spans[k].base == nullptr) {
            if (cci.all_core[cc]) {
              core_spans[k] = grid.CellBlock(core_grid_cells[k]);
            } else {
              core_scratch[k] = simd::SoaBlock(data,
                                               cci.core_points[cc].data(),
                                               cci.core_points[cc].size());
              core_spans[k] = core_scratch[k].span();
            }
          }
          dist_evals += cci.core_points[cc].size();
          hit = simd::AnyWithin(q, core_spans[k], eps2);
        }
        if (hit) memberships.push_back(cluster);
      }
      if (memberships.empty()) continue;  // noise
      std::sort(memberships.begin(), memberships.end());
      out->label[id] = memberships.front();
      for (size_t k = 1; k < memberships.size(); ++k) {
        local_extras.emplace_back(id, memberships[k]);
      }
    }
  }
  ADB_COUNT("dist_evals.border", dist_evals);
  if (!local_extras.empty()) {
    const std::lock_guard<std::mutex> lock(extras_mutex);
    out->extra_memberships.insert(out->extra_memberships.end(),
                                  local_extras.begin(), local_extras.end());
  }
  });
  std::sort(out->extra_memberships.begin(), out->extra_memberships.end());
}

}  // namespace adbscan
