#ifndef ADBSCAN_CORE_OPTICS_H_
#define ADBSCAN_CORE_OPTICS_H_

#include <cstdint>
#include <vector>

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// OPTICS (Ankerst, Breunig, Kriegel, Sander 1999) — reference [2] of the
// paper, which Section 4.2 leans on for the insight that "different ε
// values allow us to view the dataset from various granularities". OPTICS
// computes a single ordering of the points whose reachability plot encodes
// the DBSCAN clustering for EVERY ε' ≤ ε at once, which makes it the
// natural companion tool for choosing a stable ε (Figure 6).
//
// Standard definitions: the core distance of p is the distance to its
// MinPts-th nearest neighbor (undefined if > ε); the reachability distance
// of q from p is max(core-dist(p), dist(p, q)). The algorithm expands a
// priority queue ordered by current reachability.
struct OpticsResult {
  // Permutation of [0, n): the OPTICS ordering.
  std::vector<uint32_t> order;
  // reachability[i] = reachability distance of point i (kUndefined if the
  // point starts a new component).
  std::vector<double> reachability;
  // core_distance[i] (kUndefined if point i is not a core point at ε).
  std::vector<double> core_distance;

  static constexpr double kUndefined = -1.0;
};

OpticsResult RunOptics(const Dataset& data, const DbscanParams& params);

// Extracts the DBSCAN-style clustering at radius eps_prime <= params.eps
// from an OPTICS result (the classic ExtractDBSCAN-Clustering procedure of
// [2]). Core points receive exactly the DBSCAN(eps', MinPts) clusters;
// border points are attached to the cluster that precedes them in the
// ordering (single membership — OPTICS cannot recover multi-membership).
Clustering ExtractDbscanClustering(const Dataset& data,
                                   const OpticsResult& optics,
                                   const DbscanParams& params,
                                   double eps_prime);

}  // namespace adbscan

#endif  // ADBSCAN_CORE_OPTICS_H_
