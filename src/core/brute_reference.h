#ifndef ADBSCAN_CORE_BRUTE_REFERENCE_H_
#define ADBSCAN_CORE_BRUTE_REFERENCE_H_

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// Trusted O(n²) reference DBSCAN, implemented directly from Definitions 1-3
// with no indexing or grid shortcuts:
//   - core points by exhaustive ε-ball counting,
//   - clusters as connected components of the core-core ε-graph,
//   - every non-core point joined to the cluster of every core point within
//     ε of it.
// Used by the test suite as the ground truth all fast algorithms must match.
Clustering BruteForceDbscan(const Dataset& data, const DbscanParams& params);

}  // namespace adbscan

#endif  // ADBSCAN_CORE_BRUTE_REFERENCE_H_
