#ifndef ADBSCAN_CORE_GUNAWAN2D_H_
#define ADBSCAN_CORE_GUNAWAN2D_H_

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// Gunawan's 2D algorithm (Section 2.2, [11]): the first genuinely
// O(n log n) exact DBSCAN algorithm. Requires data.dim() == 2.
//
// Grid of ε/√2 cells (at most 21 ε-neighbors per cell), exact labeling,
// and edges of G decided by nearest-core-neighbor queries: for each core
// point p of c1, find p's nearest core point in c2 and compare with ε.
//
// [11] answers these queries with a Voronoi diagram per cell. Both that
// structure (as its Delaunay dual with greedy walks, geom/delaunay2d.h) and
// a kd-tree with the same O(log n)-per-query behaviour are available; the
// kd-tree is the default (see DESIGN.md's substitution table).
struct Gunawan2dOptions {
  enum class NnBackend {
    kKdTree,    // default
    kDelaunay,  // the Voronoi-dual structure of [11]
  };
  NnBackend backend = NnBackend::kKdTree;
};

Clustering Gunawan2dDbscan(const Dataset& data, const DbscanParams& params,
                           const Gunawan2dOptions& options = {});

}  // namespace adbscan

#endif  // ADBSCAN_CORE_GUNAWAN2D_H_
