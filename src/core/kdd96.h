#ifndef ADBSCAN_CORE_KDD96_H_
#define ADBSCAN_CORE_KDD96_H_

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// The original DBSCAN algorithm of Ester, Kriegel, Sander and Xu (KDD'96),
// reference [10] of the paper: seed-list cluster expansion driven by one
// ε range query per point against a spatial index.
//
// This is the algorithm whose claimed O(n log n) bound the paper refutes:
// it runs in O(n²) worst-case time regardless of ε and MinPts (footnote 1 —
// when all points are within ε of each other, the n range queries alone
// produce Θ(n²) output).
struct Kdd96Options {
  enum class IndexKind {
    kRTree,      // default; stands in for the R*-tree of [10]
    kKdTree,
    kBruteForce,
  };
  IndexKind index = IndexKind::kRTree;

  // When true (default), border points reachable from several clusters are
  // reported in all of them (definition-faithful, comparable across
  // algorithms); when false, they keep only the first cluster that reached
  // them, as the classic implementation did.
  bool assign_border_to_all = true;
};

Clustering Kdd96Dbscan(const Dataset& data, const DbscanParams& params,
                       const Kdd96Options& options = {});

}  // namespace adbscan

#endif  // ADBSCAN_CORE_KDD96_H_
