#ifndef ADBSCAN_CORE_USEC_H_
#define ADBSCAN_CORE_USEC_H_

#include <functional>

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// The unit-spherical emptiness checking (USEC) problem of Section 2.3: given
// points S_pt and equal-radius balls S_ball (represented by their centers),
// decide whether any point is covered by any ball.
//
// USEC is the source of the paper's hardness result: solving it in o(n^{4/3})
// time in 3D is a long-standing open problem, and Lemma 4 shows that any
// T(n)-time DBSCAN algorithm yields a T(n) + O(n) USEC algorithm — hence
// DBSCAN requires Ω(n^{4/3}) for d ≥ 3 under that assumption (Theorem 1).
struct UsecInstance {
  Dataset points;        // S_pt
  Dataset ball_centers;  // centers of S_ball
  double radius = 0.0;   // shared ball radius

  UsecInstance(int dim) : points(dim), ball_centers(dim) {}
};

// O(|S_pt| · |S_ball|) reference answer.
bool SolveUsecBruteForce(const UsecInstance& instance);

// Any DBSCAN solver, e.g. a lambda wrapping ExactGridDbscan.
using DbscanSolver =
    std::function<Clustering(const Dataset&, const DbscanParams&)>;

// The Lemma 4 reduction: P := S_pt ∪ centers(S_ball), ε := radius,
// MinPts := 1; answer yes iff some point of S_pt shares a cluster with some
// ball center.
bool SolveUsecViaDbscan(const UsecInstance& instance,
                        const DbscanSolver& solver);

}  // namespace adbscan

#endif  // ADBSCAN_CORE_USEC_H_
