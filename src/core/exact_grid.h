#ifndef ADBSCAN_CORE_EXACT_GRID_H_
#define ADBSCAN_CORE_EXACT_GRID_H_

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// "OurExact" (Section 3.2, Theorem 2): the exact DBSCAN algorithm for any
// fixed dimensionality d. Extends Gunawan's grid framework with a
// d-dimensional grid of cell side ε/√d and decides each edge of the
// core-cell graph G with a bichromatic-closest-pair test between the core
// points of the two cells.
//
// Expected time O(n^{2 - 2/(⌈d/2⌉+1) + δ}) for d ≥ 4 and O((n log n)^{4/3})
// for d = 3 with the Lemma 2 BCP algorithm; this implementation substitutes
// a kd-tree-pruned BCP decision (see DESIGN.md) with identical output.
Clustering ExactGridDbscan(const Dataset& data, const DbscanParams& params);

}  // namespace adbscan

#endif  // ADBSCAN_CORE_EXACT_GRID_H_
