#include "core/kdd96.h"

#include <algorithm>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "index/brute_force.h"
#include "index/kdtree.h"
#include "index/rtree.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"

namespace adbscan {
namespace {

constexpr int32_t kUnclassified = -2;

std::unique_ptr<SpatialIndex> MakeIndex(const Dataset& data,
                                        Kdd96Options::IndexKind kind) {
  switch (kind) {
    case Kdd96Options::IndexKind::kRTree:
      return std::make_unique<RTree>(data);
    case Kdd96Options::IndexKind::kKdTree:
      return std::make_unique<KdTree>(data);
    case Kdd96Options::IndexKind::kBruteForce:
      return std::make_unique<BruteForceIndex>(data);
  }
  ADB_CHECK_MSG(false, "unknown index kind");
  return nullptr;
}

}  // namespace

Clustering Kdd96Dbscan(const Dataset& data, const DbscanParams& params,
                       const Kdd96Options& options) {
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  const size_t min_pts = static_cast<size_t>(params.min_pts);

  Clustering out;
  out.label.assign(n, kUnclassified);
  out.is_core.assign(n, 0);
  if (n == 0) {
    return out;
  }
  // Register this pipeline's counter set so every run exports the same
  // schema even when a code path never fires.
  ADB_COUNT("index.range_queries", 0);
  ADB_COUNT("index.range_candidates_total", 0);
  ADB_COUNT("kdd96.clusters_started", 0);
  ADB_COUNT("kdd96.seeds_enqueued", 0);
  ADB_COUNT("kdd96.noise_marks", 0);
  ADB_COUNT("kdd96.border_reassigned", 0);

  std::unique_ptr<SpatialIndex> index;
  {
    ADB_PHASE("index_build");
    index = MakeIndex(data, options.index);
  }

  int32_t next_cluster = 0;
  std::deque<uint32_t> seeds;
  const int threads = params.num_threads;
  {
  ADB_PHASE("cluster_expansion");
  size_t range_queries = 0;
  size_t range_candidates = 0;
  size_t seeds_enqueued = 0;
  size_t noise_marks = 0;
  // Batch buffers for the multi-threaded expansion below.
  std::vector<uint32_t> batch;
  std::vector<std::vector<uint32_t>> batch_results;
  for (uint32_t i = 0; i < n; ++i) {
    if (out.label[i] != kUnclassified) continue;
    ++range_queries;
    std::vector<uint32_t> neighbors =
        index->RangeQuery(data.point(i), params.eps);
    range_candidates += neighbors.size();
    ADB_RECORD("index.range_candidates", neighbors.size());
    if (neighbors.size() < min_pts) {
      out.label[i] = kNoise;
      ++noise_marks;
      continue;
    }
    // i starts a new cluster; every neighbor joins, unexpanded ones seed.
    ADB_COUNT("kdd96.clusters_started", 1);
    const int32_t cluster = next_cluster++;
    out.is_core[i] = 1;
    seeds.clear();
    for (uint32_t r : neighbors) {
      if (r == i) {
        out.label[r] = cluster;
        continue;
      }
      if (out.label[r] == kUnclassified) {
        seeds.push_back(r);
        ++seeds_enqueued;
      }
      if (out.label[r] == kUnclassified || out.label[r] == kNoise) {
        out.label[r] = cluster;
      }
    }
    if (threads > 1) {
      // Batched expansion: drain the whole seed frontier, run its region
      // queries in parallel (queries read only the immutable index, never
      // labels), then apply the results in frontier order. The serial loop
      // is FIFO, so seeds discovered while applying would have been
      // processed after the current frontier anyway — the apply order, and
      // with it every label and core flag, is bit-identical to serial.
      while (!seeds.empty()) {
        batch.assign(seeds.begin(), seeds.end());
        seeds.clear();
        batch_results.assign(batch.size(), {});
        ParallelFor(batch.size(), threads, [&](size_t begin, size_t end) {
          for (size_t k = begin; k < end; ++k) {
            batch_results[k] =
                index->RangeQuery(data.point(batch[k]), params.eps);
          }
        });
        for (size_t k = 0; k < batch.size(); ++k) {
          const uint32_t q = batch[k];
          const std::vector<uint32_t>& result = batch_results[k];
          ++range_queries;
          range_candidates += result.size();
          ADB_RECORD("index.range_candidates", result.size());
          if (result.size() < min_pts) continue;  // q is a border point
          out.is_core[q] = 1;
          for (uint32_t r : result) {
            if (out.label[r] == kUnclassified) {
              seeds.push_back(r);
              ++seeds_enqueued;
              out.label[r] = cluster;
            } else if (out.label[r] == kNoise) {
              out.label[r] = cluster;  // noise becomes border; not expanded
            }
          }
        }
      }
    } else {
      while (!seeds.empty()) {
        const uint32_t q = seeds.front();
        seeds.pop_front();
        ++range_queries;
        std::vector<uint32_t> result =
            index->RangeQuery(data.point(q), params.eps);
        range_candidates += result.size();
        ADB_RECORD("index.range_candidates", result.size());
        if (result.size() < min_pts) continue;  // q is a border point
        out.is_core[q] = 1;
        for (uint32_t r : result) {
          if (out.label[r] == kUnclassified) {
            seeds.push_back(r);
            ++seeds_enqueued;
            out.label[r] = cluster;
          } else if (out.label[r] == kNoise) {
            out.label[r] = cluster;  // noise becomes border; not expanded
          }
        }
      }
    }
  }
  ADB_COUNT("index.range_queries", range_queries);
  ADB_COUNT("index.range_candidates_total", range_candidates);
  ADB_COUNT("kdd96.seeds_enqueued", seeds_enqueued);
  ADB_COUNT("kdd96.noise_marks", noise_marks);
  }
  out.num_clusters = next_cluster;

  if (options.assign_border_to_all) {
    // The expansion above hands each border point to the first cluster that
    // reaches it; re-derive the full membership list (and the smallest id as
    // primary) per Definition 3, matching the grid-based algorithms.
    // Border points are independent of each other here: each writes only
    // its own label and reads only core labels, which this phase never
    // touches — so the loop parallelizes point-wise.
    ADB_PHASE("border_reassign");
    std::mutex extras_mutex;
    ParallelFor(n, threads, [&](size_t begin, size_t end) {
      std::vector<int32_t> memberships;
      std::vector<std::pair<uint32_t, int32_t>> local_extras;
      size_t reassigned = 0;
      for (uint32_t q = static_cast<uint32_t>(begin); q < end; ++q) {
        if (out.is_core[q] || out.label[q] == kNoise) continue;
        ++reassigned;
        memberships.clear();
        for (uint32_t r : index->RangeQuery(data.point(q), params.eps)) {
          if (out.is_core[r]) memberships.push_back(out.label[r]);
        }
        ADB_DCHECK(!memberships.empty());
        std::sort(memberships.begin(), memberships.end());
        memberships.erase(
            std::unique(memberships.begin(), memberships.end()),
            memberships.end());
        out.label[q] = memberships.front();
        for (size_t k = 1; k < memberships.size(); ++k) {
          local_extras.emplace_back(q, memberships[k]);
        }
      }
      ADB_COUNT("kdd96.border_reassigned", reassigned);
      ADB_COUNT("index.range_queries", reassigned);
      if (!local_extras.empty()) {
        const std::lock_guard<std::mutex> lock(extras_mutex);
        out.extra_memberships.insert(out.extra_memberships.end(),
                                     local_extras.begin(),
                                     local_extras.end());
      }
    });
    std::sort(out.extra_memberships.begin(), out.extra_memberships.end());
  }
  return out;
}

}  // namespace adbscan
