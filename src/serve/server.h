#ifndef ADBSCAN_SERVE_SERVER_H_
#define ADBSCAN_SERVE_SERVER_H_

// Loopback TCP front-end of the SessionManager: accepts connections on
// 127.0.0.1, speaks the length-prefixed protocol of serve/wire.h, and maps
// each request onto the manager. One OS thread per connection (connections
// are few — clients multiplex sessions over one connection; all heavy
// lifting happens on the shared task pool inside the manager).
//
// Error handling mirrors the wire contract: a malformed frame gets an
// ErrorResp{kBadFrame} and the connection is closed (the stream is
// unrecoverable once framing is lost); application-level failures
// (unknown session, backpressure, bad arguments) get an ErrorResp with the
// matching code and the connection stays up.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/session_manager.h"

namespace adbscan {
namespace serve {

struct ServerOptions {
  ServeOptions serve;
  int port = 0;  // 0 = pick a free port; port() reports the actual one
  int backlog = 64;
};

class WireServer {
 public:
  explicit WireServer(const ServerOptions& options = {});
  ~WireServer();  // implies Stop()

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  // Binds 127.0.0.1:port and starts the accept loop. False + *error on
  // failure (port in use, out of fds).
  bool Start(std::string* error);

  // Stops accepting, closes every connection, and joins all threads.
  // Idempotent; sessions and their snapshots survive until the manager
  // (and therefore this object) is destroyed.
  void Stop();

  // The bound port; valid after a successful Start().
  int port() const { return port_; }

  SessionManager& manager() { return manager_; }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);
  // Dispatches one request frame; appends the response frame(s) to *out.
  // Returns false when the connection must close (framing poisoned).
  bool HandleFrame(const Frame& frame, std::vector<uint8_t>* out);

  ServerOptions options_;
  SessionManager manager_;

  // Written by Start()/Stop(), read by the accept loop; atomic so Stop()
  // can invalidate it while accept() is parked in the kernel.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;

  std::mutex conn_mu_;
  std::vector<std::thread> conn_threads_;
  std::vector<int> conn_fds_;
};

}  // namespace serve
}  // namespace adbscan

#endif  // ADBSCAN_SERVE_SERVER_H_
