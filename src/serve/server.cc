#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace adbscan {
namespace serve {

namespace {

bool SendAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void AppendError(ErrorCode code, const std::string& message,
                 std::vector<uint8_t>* out) {
  ErrorResp resp;
  resp.code = code;
  resp.message = message;
  EncodeErrorResp(resp, out);
}

}  // namespace

WireServer::WireServer(const ServerOptions& options)
    : options_(options), manager_(options.serve) {}

WireServer::~WireServer() { Stop(); }

bool WireServer::Start(std::string* error) {
  auto fail = [&](const std::string& what) {
    if (error != nullptr) {
      *error = what + ": " + std::strerror(errno);
    }
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return fail("bind 127.0.0.1:" + std::to_string(options_.port));
  }
  if (::listen(listen_fd_, options_.backlog) < 0) return fail("listen");

  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    return fail("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void WireServer::Stop() {
  if (stopping_.exchange(true, std::memory_order_relaxed)) {
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  if (listen_fd_ >= 0) {
    // shutdown() unblocks the accept loop even on platforms where close()
    // alone does not.
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
    threads.swap(conn_threads_);
  }
  for (auto& t : threads) t.join();
  {
    std::lock_guard<std::mutex> lk(conn_mu_);
    for (int fd : conn_fds_) ::close(fd);
    conn_fds_.clear();
  }
}

void WireServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatally broken
    }
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      return;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lk(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { ServeConnection(fd); });
  }
}

void WireServer::ServeConnection(int fd) {
  FrameAssembler assembler;
  uint8_t buf[64 * 1024];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_relaxed)) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // peer closed
    assembler.Feed(buf, static_cast<size_t>(n));

    std::vector<uint8_t> out;
    for (;;) {
      Frame frame;
      std::string error;
      const FrameStatus status = assembler.Next(&frame, &error);
      if (status == FrameStatus::kNeedMore) break;
      if (status == FrameStatus::kError) {
        AppendError(ErrorCode::kBadFrame, error, &out);
        open = false;
        break;
      }
      if (!HandleFrame(frame, &out)) {
        open = false;
        break;
      }
    }
    if (!out.empty() && !SendAll(fd, out.data(), out.size())) break;
  }
  ::shutdown(fd, SHUT_RDWR);
  // The fd itself is closed by Stop() (it stays in conn_fds_ so Stop can
  // unblock a recv that is still parked in the kernel).
}

bool WireServer::HandleFrame(const Frame& frame, std::vector<uint8_t>* out) {
  ADB_TRACE_SPAN("serve.request");
  std::string error;
  ErrorCode code = ErrorCode::kInternal;
  switch (frame.type) {
    case MsgType::kCreateReq: {
      CreateReq req;
      if (!DecodeCreateReq(frame, &req, &error)) {
        AppendError(ErrorCode::kBadFrame, error, out);
        return false;
      }
      DbscanParams params;
      params.eps = req.eps;
      params.min_pts = static_cast<int>(req.min_pts);
      const uint64_t id = manager_.CreateSession(
          static_cast<int>(req.dim), params, req.rho, &code, &error);
      if (id == 0) {
        AppendError(code, error, out);
        return true;
      }
      CreateResp resp;
      resp.session = id;
      EncodeCreateResp(resp, out);
      return true;
    }
    case MsgType::kIngestReq: {
      IngestReq req;
      if (!DecodeIngestReq(frame, &req, &error)) {
        AppendError(ErrorCode::kBadFrame, error, out);
        return false;
      }
      IngestResp resp;
      if (!manager_.Ingest(req.session, req.coords, req.dim, req.removes,
                           &resp.first_id, &resp.pending_ops, &code,
                           &error)) {
        AppendError(code, error, out);
        return true;
      }
      EncodeIngestResp(resp, out);
      return true;
    }
    case MsgType::kFlushReq: {
      FlushReq req;
      if (!DecodeFlushReq(frame, &req, &error)) {
        AppendError(ErrorCode::kBadFrame, error, out);
        return false;
      }
      FlushResp resp;
      if (!manager_.Flush(req.session, &resp.epoch, &resp.applied_updates,
                          &code, &error)) {
        AppendError(code, error, out);
        return true;
      }
      EncodeFlushResp(resp, out);
      return true;
    }
    case MsgType::kQueryReq: {
      QueryReq req;
      if (!DecodeQueryReq(frame, &req, &error)) {
        AppendError(ErrorCode::kBadFrame, error, out);
        return false;
      }
      Timer timer;
      std::shared_ptr<const ServeSnapshot> snap = manager_.Read(req.session);
      if (snap == nullptr) {
        AppendError(ErrorCode::kUnknownSession,
                    "unknown session " + std::to_string(req.session), out);
        return true;
      }
      QueryResp resp;
      resp.epoch = snap->epoch;
      resp.num_points = snap->num_points;
      resp.num_alive = snap->num_alive;
      resp.num_clusters = static_cast<uint32_t>(snap->labels.num_clusters);
      resp.labels.reserve(req.ids.size());
      resp.is_core.reserve(req.ids.size());
      for (uint32_t id : req.ids) {
        if (id >= snap->num_points) {
          // Not yet applied at this epoch: reported as noise, not an
          // error — the client may know ids from an un-flushed ingest.
          resp.labels.push_back(kNoise);
          resp.is_core.push_back(0);
        } else {
          resp.labels.push_back(snap->labels.label[id]);
          resp.is_core.push_back(snap->labels.is_core[id] ? 1 : 0);
        }
      }
      EncodeQueryResp(resp, out);
      ADB_RECORD("serve.query_latency_ms", timer.ElapsedMillis());
      ADB_COUNT("serve.queries", 1);
      return true;
    }
    case MsgType::kSnapshotReq: {
      SnapshotReq req;
      if (!DecodeSnapshotReq(frame, &req, &error)) {
        AppendError(ErrorCode::kBadFrame, error, out);
        return false;
      }
      Timer timer;
      std::shared_ptr<const ServeSnapshot> snap = manager_.Read(req.session);
      if (snap == nullptr) {
        AppendError(ErrorCode::kUnknownSession,
                    "unknown session " + std::to_string(req.session), out);
        return true;
      }
      SnapshotResp resp;
      resp.epoch = snap->epoch;
      resp.num_clusters = static_cast<uint32_t>(snap->labels.num_clusters);
      resp.ids.reserve(snap->num_alive);
      resp.labels.reserve(snap->num_alive);
      resp.is_core.reserve(snap->num_alive);
      for (size_t i = 0; i < snap->num_points; ++i) {
        if (!snap->alive[i]) continue;
        resp.ids.push_back(static_cast<uint32_t>(i));
        resp.labels.push_back(snap->labels.label[i]);
        resp.is_core.push_back(snap->labels.is_core[i] ? 1 : 0);
      }
      EncodeSnapshotResp(resp, out);
      ADB_RECORD("serve.snapshot_latency_ms", timer.ElapsedMillis());
      ADB_COUNT("serve.snapshots", 1);
      return true;
    }
    case MsgType::kDropReq: {
      DropReq req;
      if (!DecodeDropReq(frame, &req, &error)) {
        AppendError(ErrorCode::kBadFrame, error, out);
        return false;
      }
      if (!manager_.DropSession(req.session)) {
        AppendError(ErrorCode::kUnknownSession,
                    "unknown session " + std::to_string(req.session), out);
        return true;
      }
      EncodeDropResp(out);
      return true;
    }
    default:
      // A response type (or future request) arriving at the server is a
      // protocol violation; answer and drop the connection.
      AppendError(ErrorCode::kBadFrame,
                  "unexpected message type " +
                      std::to_string(static_cast<int>(frame.type)) +
                      " on the server side",
                  out);
      return false;
  }
}

}  // namespace serve
}  // namespace adbscan
