#ifndef ADBSCAN_SERVE_SESSION_MANAGER_H_
#define ADBSCAN_SERVE_SESSION_MANAGER_H_

// Multi-tenant serving core: many independent DynamicClusterer instances
// (one per session/tenant/stream), asynchronous batched ingest queues, and
// epoch-versioned read snapshots that never block behind writers.
//
// Concurrency model (see DESIGN.md "Serving runtime"):
//
//   - Each session owns three independently locked layers:
//       queue_mu  — the pending-update queue (enqueue side of ingest).
//       apply_mu  — the DynamicClusterer plus drain bookkeeping. Exactly
//                   one drainer at a time per session; the clusterer is
//                   only ever touched under this mutex, which satisfies
//                   its exclusive-mutator contract.
//       snap_mu   — a single shared_ptr swap. Writers publish a freshly
//                   built immutable ServeSnapshot here; readers copy the
//                   pointer out. Both critical sections are a pointer
//                   assignment, so a reader can never block a writer for
//                   longer than that, and a reader holding a snapshot
//                   keeps it alive for free after the writer moves on.
//   - Ingest is asynchronous: Ingest() validates, appends to the queue,
//     and returns. A background drainer thread wakes when any session's
//     queue crosses drain_batch_ops (or on shutdown) and drains every
//     dirty session, one session at a time, each batch applying in
//     enqueue order under the session's apply_mu. Per-session drains fan
//     out over the work-stealing task pool through the clusterer's own
//     ParallelFor phases (sessions are NOT drained inside an outer
//     ParallelFor: that would hold the pool while blocking on apply_mu,
//     inverting the apply_mu -> pool order a concurrent Flush uses).
//   - Flush() drains the calling session synchronously (racing drains are
//     harmless: both serialize on apply_mu and draining an empty queue is
//     a no-op), so "everything enqueued before the flush is applied and
//     published" holds on return without waiting for the drainer.
//   - Reads (Read()) are wait-free with respect to drains apart from the
//     pointer-copy critical section, and a returned snapshot is immutable:
//     labels computed at epoch E stay bit-identical to a from-scratch
//     ApproxDbscan over the session's surviving points at E (the
//     DynamicClusterer contract), no matter how many batches apply later.
//
// Determinism: sessions share only the process-wide task pool, which the
// pipelines are bit-identical across; interleaving tenants therefore
// yields exactly the labels a solo DynamicClusterer replay would (tested
// by tests/test_serve.cc SessionIsolation).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dbscan_types.h"
#include "geom/dataset.h"
#include "serve/wire.h"
#include "stream/dynamic_clusterer.h"

namespace adbscan {
namespace serve {

struct ServeOptions {
  // Worker threads for drains (and the clusterers' internal phases);
  // <= 0 resolves via ResolveNumThreads (ADBSCAN_THREADS, else hardware).
  int num_threads = 0;

  // Background drain trigger: the drainer wakes once a session's queue
  // holds at least this many pending ops. Flush() ignores it.
  size_t drain_batch_ops = 2048;

  // Backpressure cap: Ingest() rejects (kBackpressure) when a session's
  // queue already holds this many pending ops.
  size_t max_pending_ops = 1 << 20;

  size_t max_sessions = 1024;

  // Tests drive drains deterministically by disabling the background
  // drainer and calling Flush()/DrainDirtySessions() themselves.
  bool start_drainer = true;
};

// Immutable label snapshot of one session at one epoch. Published by value
// behind a shared_ptr; everything in it is safe to read concurrently.
struct ServeSnapshot {
  uint64_t epoch = 0;            // 0 = pre-first-drain empty snapshot
  uint64_t applied_updates = 0;  // ops applied up to this epoch
  size_t num_points = 0;         // global id space size (incl. tombstones)
  size_t num_alive = 0;
  // Over the GLOBAL id space [0, num_points): dead points are noise.
  Clustering labels;
  // Alive bitmap at this epoch (distinguishes alive noise from tombstones).
  std::vector<char> alive;
};

struct SessionInfo {
  uint64_t id = 0;
  int dim = 0;
  DbscanParams params;
  double rho = 0.0;
  uint64_t pending_ops = 0;
  uint64_t epoch = 0;
};

class SessionManager {
 public:
  explicit SessionManager(const ServeOptions& options = {});
  ~SessionManager();  // stops the drainer; outstanding snapshots survive

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  // Creates an empty session; returns its id (never 0). On failure returns
  // 0 with *code/*error describing why (bad params, session cap).
  uint64_t CreateSession(int dim, const DbscanParams& params, double rho,
                         ErrorCode* code, std::string* error);

  // Drops the session: its queue, clusterer, and snapshot pointer go away;
  // snapshots already handed to readers stay valid. False when unknown.
  bool DropSession(uint64_t session);

  // Asynchronous batched ingest: validates and enqueues coords (row-major,
  // coords.size()/dim points) then removes, in that order, and returns
  // without applying. *first_id receives the global id the first inserted
  // point will get (exact: ids are handed out densely in enqueue order);
  // *pending the queue depth after the call. Rejects with kBackpressure
  // when the queue is full, kBadArgument on a dim mismatch or a remove of
  // an id never inserted / already removed (validated against the
  // enqueue-side view, so the clusterer's preconditions can never trip).
  bool Ingest(uint64_t session, const std::vector<double>& coords,
              uint32_t dim, const std::vector<uint32_t>& removes,
              uint32_t* first_id, uint64_t* pending, ErrorCode* code,
              std::string* error);

  // Synchronously applies everything enqueued before the call and
  // publishes a fresh snapshot. *epoch/*applied report the published
  // state. Cheap when the queue is already drained.
  bool Flush(uint64_t session, uint64_t* epoch, uint64_t* applied,
             ErrorCode* code, std::string* error);

  // The last published snapshot (epoch 0 + empty labels before the first
  // drain). Never blocks behind a drain; nullptr for an unknown session.
  std::shared_ptr<const ServeSnapshot> Read(uint64_t session);

  // One synchronous drain pass over every session with pending ops —
  // what the background drainer runs; a test hook when start_drainer is
  // false.
  void DrainDirtySessions();

  size_t num_sessions();
  std::vector<SessionInfo> ListSessions();
  const ServeOptions& options() const { return options_; }

 private:
  struct Session;

  std::shared_ptr<Session> FindSession(uint64_t id);
  void DrainSession(Session& s);
  void DrainerLoop();

  ServeOptions options_;

  std::mutex sessions_mu_;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_;
  uint64_t next_session_id_ = 1;

  std::mutex drainer_mu_;
  std::condition_variable drainer_cv_;
  bool drainer_wake_ = false;
  bool stop_ = false;
  std::thread drainer_;
};

}  // namespace serve
}  // namespace adbscan

#endif  // ADBSCAN_SERVE_SESSION_MANAGER_H_
