#include "serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace adbscan {
namespace serve {

namespace {

bool SendAll(int fd, const uint8_t* data, size_t len) {
  size_t sent = 0;
  while (sent < len) {
    const ssize_t n = ::send(fd, data + sent, len - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

void SetError(std::string* error, const std::string& msg) {
  if (error != nullptr) *error = msg;
}

}  // namespace

WireClient::~WireClient() { Close(); }

bool WireClient::Connect(int port, std::string* error) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    SetError(error, std::string("socket: ") + std::strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    SetError(error, "connect 127.0.0.1:" + std::to_string(port) + ": " +
                        std::strerror(errno));
    Close();
    return false;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return true;
}

void WireClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  assembler_ = FrameAssembler();
}

bool WireClient::RoundTrip(const std::vector<uint8_t>& request,
                           Frame* response, std::string* error) {
  if (fd_ < 0) {
    SetError(error, "not connected");
    return false;
  }
  if (!SendAll(fd_, request.data(), request.size())) {
    SetError(error, std::string("send: ") + std::strerror(errno));
    Close();
    return false;
  }
  uint8_t buf[64 * 1024];
  for (;;) {
    std::string frame_error;
    const FrameStatus status = assembler_.Next(response, &frame_error);
    if (status == FrameStatus::kFrame) return true;
    if (status == FrameStatus::kError) {
      SetError(error, "malformed server frame: " + frame_error);
      Close();
      return false;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      SetError(error, std::string("recv: ") + std::strerror(errno));
      Close();
      return false;
    }
    if (n == 0) {
      SetError(error, "server closed the connection");
      Close();
      return false;
    }
    assembler_.Feed(buf, static_cast<size_t>(n));
  }
}

template <typename Resp, typename DecodeFn>
bool WireClient::Call(const std::vector<uint8_t>& request, MsgType expect,
                      Resp* resp, DecodeFn decode, ErrorCode* code,
                      std::string* error) {
  if (code != nullptr) *code = ErrorCode::kInternal;
  Frame frame;
  if (!RoundTrip(request, &frame, error)) return false;
  if (frame.type == MsgType::kErrorResp) {
    ErrorResp err;
    std::string decode_error;
    if (!DecodeErrorResp(frame, &err, &decode_error)) {
      SetError(error, "malformed ErrorResp: " + decode_error);
      Close();
      return false;
    }
    if (code != nullptr) *code = err.code;
    SetError(error, err.message);
    return false;
  }
  if (frame.type != expect) {
    SetError(error, "unexpected response type " +
                        std::to_string(static_cast<int>(frame.type)));
    Close();
    return false;
  }
  std::string decode_error;
  if (!decode(frame, resp, &decode_error)) {
    SetError(error, "malformed response: " + decode_error);
    Close();
    return false;
  }
  return true;
}

bool WireClient::Create(const CreateReq& req, uint64_t* session,
                        ErrorCode* code, std::string* error) {
  std::vector<uint8_t> wire;
  EncodeCreateReq(req, &wire);
  CreateResp resp;
  if (!Call(wire, MsgType::kCreateResp, &resp, DecodeCreateResp, code,
            error)) {
    return false;
  }
  if (session != nullptr) *session = resp.session;
  return true;
}

bool WireClient::Ingest(const IngestReq& req, IngestResp* resp,
                        ErrorCode* code, std::string* error) {
  std::vector<uint8_t> wire;
  EncodeIngestReq(req, &wire);
  IngestResp local;
  if (resp == nullptr) resp = &local;
  return Call(wire, MsgType::kIngestResp, resp, DecodeIngestResp, code,
              error);
}

bool WireClient::Flush(uint64_t session, FlushResp* resp, ErrorCode* code,
                       std::string* error) {
  FlushReq req;
  req.session = session;
  std::vector<uint8_t> wire;
  EncodeFlushReq(req, &wire);
  FlushResp local;
  if (resp == nullptr) resp = &local;
  return Call(wire, MsgType::kFlushResp, resp, DecodeFlushResp, code, error);
}

bool WireClient::Query(uint64_t session, const std::vector<uint32_t>& ids,
                       QueryResp* resp, ErrorCode* code, std::string* error) {
  QueryReq req;
  req.session = session;
  req.ids = ids;
  std::vector<uint8_t> wire;
  EncodeQueryReq(req, &wire);
  return Call(wire, MsgType::kQueryResp, resp, DecodeQueryResp, code, error);
}

bool WireClient::Snapshot(uint64_t session, SnapshotResp* resp,
                          ErrorCode* code, std::string* error) {
  SnapshotReq req;
  req.session = session;
  std::vector<uint8_t> wire;
  EncodeSnapshotReq(req, &wire);
  return Call(wire, MsgType::kSnapshotResp, resp, DecodeSnapshotResp, code,
              error);
}

bool WireClient::Drop(uint64_t session, ErrorCode* code, std::string* error) {
  DropReq req;
  req.session = session;
  std::vector<uint8_t> wire;
  EncodeDropReq(req, &wire);
  if (code != nullptr) *code = ErrorCode::kInternal;
  Frame frame;
  if (!RoundTrip(wire, &frame, error)) return false;
  if (frame.type == MsgType::kErrorResp) {
    ErrorResp err;
    std::string decode_error;
    if (!DecodeErrorResp(frame, &err, &decode_error)) {
      SetError(error, "malformed ErrorResp: " + decode_error);
      Close();
      return false;
    }
    if (code != nullptr) *code = err.code;
    SetError(error, err.message);
    return false;
  }
  if (frame.type != MsgType::kDropResp) {
    SetError(error, "unexpected response type " +
                        std::to_string(static_cast<int>(frame.type)));
    Close();
    return false;
  }
  std::string decode_error;
  if (!DecodeDropResp(frame, &decode_error)) {
    SetError(error, "malformed DropResp: " + decode_error);
    Close();
    return false;
  }
  return true;
}

}  // namespace serve
}  // namespace adbscan
