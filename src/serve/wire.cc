#include "serve/wire.h"

#include <cstddef>
#include <cstring>
#include <type_traits>

namespace adbscan {
namespace serve {
namespace {

// ---------------------------------------------------------------------------
// Primitive writer: appends little-endian fixed-width fields to a buffer.
// (Host is assumed little-endian; see the header comment.)

template <typename T>
void Put(std::vector<uint8_t>* out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  const size_t at = out->size();
  out->resize(at + sizeof(T));
  std::memcpy(out->data() + at, &value, sizeof(T));
}

void PutBytes(std::vector<uint8_t>* out, const void* data, size_t len) {
  const size_t at = out->size();
  out->resize(at + len);
  if (len > 0) std::memcpy(out->data() + at, data, len);
}

// Frames `payload` (writing the length prefix + type) onto `out`.
void PutFrame(MsgType type, const std::vector<uint8_t>& payload,
              std::vector<uint8_t>* out) {
  Put<uint32_t>(out, static_cast<uint32_t>(1 + payload.size()));
  Put<uint8_t>(out, static_cast<uint8_t>(type));
  PutBytes(out, payload.data(), payload.size());
}

// ---------------------------------------------------------------------------
// Primitive reader: a bounds-checked cursor over a frame payload. Any
// overrun latches ok() to false and subsequent reads return zero values,
// so decoders can read a whole message and check once at the end.

class Reader {
 public:
  Reader(const uint8_t* data, size_t len) : data_(data), len_(len) {}

  template <typename T>
  T Get() {
    static_assert(std::is_trivially_copyable_v<T>);
    T value{};
    if (!ok_ || len_ - pos_ < sizeof(T)) {
      ok_ = false;
      return value;
    }
    std::memcpy(&value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  // Reads a u32 count followed by that many T elements. The count is
  // validated against the remaining payload BEFORE allocating, so a forged
  // count can never provoke an oversized allocation.
  template <typename T>
  std::vector<T> GetArray() {
    const uint32_t count = Get<uint32_t>();
    if (!ok_ || remaining() / sizeof(T) < count) {
      ok_ = false;
      return {};
    }
    std::vector<T> out(count);
    if (count > 0) {
      std::memcpy(out.data(), data_ + pos_, count * sizeof(T));
      pos_ += count * sizeof(T);
    }
    return out;
  }

  std::string GetString() {
    const uint32_t count = Get<uint32_t>();
    if (!ok_ || remaining() < count) {
      ok_ = false;
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_ + pos_), count);
    pos_ += count;
    return out;
  }

  size_t remaining() const { return ok_ ? len_ - pos_ : 0; }
  bool ok() const { return ok_; }

  // True iff every byte was consumed and no read overran.
  bool Done(const char* what, std::string* error) const {
    if (ok_ && pos_ == len_) return true;
    *error = std::string(what) +
             (ok_ ? ": trailing bytes after message" : ": truncated payload");
    return false;
  }

 private:
  const uint8_t* data_;
  size_t len_;
  size_t pos_ = 0;
  bool ok_ = true;
};

bool WrongType(const Frame& frame, MsgType want, const char* what,
               std::string* error) {
  if (frame.type == want) return false;
  *error = std::string(what) + ": unexpected frame type " +
           std::to_string(static_cast<int>(frame.type));
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Encoders.

void EncodeCreateReq(const CreateReq& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint32_t>(&p, msg.dim);
  Put<double>(&p, msg.eps);
  Put<uint32_t>(&p, msg.min_pts);
  Put<double>(&p, msg.rho);
  PutFrame(MsgType::kCreateReq, p, out);
}

void EncodeCreateResp(const CreateResp& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint64_t>(&p, msg.session);
  PutFrame(MsgType::kCreateResp, p, out);
}

void EncodeIngestReq(const IngestReq& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint64_t>(&p, msg.session);
  Put<uint32_t>(&p, msg.dim);
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.coords.size()));
  PutBytes(&p, msg.coords.data(), msg.coords.size() * sizeof(double));
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.removes.size()));
  PutBytes(&p, msg.removes.data(), msg.removes.size() * sizeof(uint32_t));
  PutFrame(MsgType::kIngestReq, p, out);
}

void EncodeIngestResp(const IngestResp& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint32_t>(&p, msg.first_id);
  Put<uint64_t>(&p, msg.pending_ops);
  PutFrame(MsgType::kIngestResp, p, out);
}

void EncodeFlushReq(const FlushReq& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint64_t>(&p, msg.session);
  PutFrame(MsgType::kFlushReq, p, out);
}

void EncodeFlushResp(const FlushResp& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint64_t>(&p, msg.epoch);
  Put<uint64_t>(&p, msg.applied_updates);
  PutFrame(MsgType::kFlushResp, p, out);
}

void EncodeQueryReq(const QueryReq& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint64_t>(&p, msg.session);
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.ids.size()));
  PutBytes(&p, msg.ids.data(), msg.ids.size() * sizeof(uint32_t));
  PutFrame(MsgType::kQueryReq, p, out);
}

void EncodeQueryResp(const QueryResp& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint64_t>(&p, msg.epoch);
  Put<uint64_t>(&p, msg.num_points);
  Put<uint64_t>(&p, msg.num_alive);
  Put<uint32_t>(&p, msg.num_clusters);
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.labels.size()));
  PutBytes(&p, msg.labels.data(), msg.labels.size() * sizeof(int32_t));
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.is_core.size()));
  PutBytes(&p, msg.is_core.data(), msg.is_core.size());
  PutFrame(MsgType::kQueryResp, p, out);
}

void EncodeSnapshotReq(const SnapshotReq& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint64_t>(&p, msg.session);
  PutFrame(MsgType::kSnapshotReq, p, out);
}

void EncodeSnapshotResp(const SnapshotResp& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint64_t>(&p, msg.epoch);
  Put<uint32_t>(&p, msg.num_clusters);
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.ids.size()));
  PutBytes(&p, msg.ids.data(), msg.ids.size() * sizeof(uint32_t));
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.labels.size()));
  PutBytes(&p, msg.labels.data(), msg.labels.size() * sizeof(int32_t));
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.is_core.size()));
  PutBytes(&p, msg.is_core.data(), msg.is_core.size());
  PutFrame(MsgType::kSnapshotResp, p, out);
}

void EncodeDropReq(const DropReq& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint64_t>(&p, msg.session);
  PutFrame(MsgType::kDropReq, p, out);
}

void EncodeDropResp(std::vector<uint8_t>* out) {
  PutFrame(MsgType::kDropResp, {}, out);
}

void EncodeErrorResp(const ErrorResp& msg, std::vector<uint8_t>* out) {
  std::vector<uint8_t> p;
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.code));
  Put<uint32_t>(&p, static_cast<uint32_t>(msg.message.size()));
  PutBytes(&p, msg.message.data(), msg.message.size());
  PutFrame(MsgType::kErrorResp, p, out);
}

// ---------------------------------------------------------------------------
// Decoders.

bool DecodeCreateReq(const Frame& frame, CreateReq* msg, std::string* error) {
  if (WrongType(frame, MsgType::kCreateReq, "CreateReq", error)) return false;
  Reader r(frame.payload.data(), frame.payload.size());
  msg->dim = r.Get<uint32_t>();
  msg->eps = r.Get<double>();
  msg->min_pts = r.Get<uint32_t>();
  msg->rho = r.Get<double>();
  return r.Done("CreateReq", error);
}

bool DecodeCreateResp(const Frame& frame, CreateResp* msg,
                      std::string* error) {
  if (WrongType(frame, MsgType::kCreateResp, "CreateResp", error)) {
    return false;
  }
  Reader r(frame.payload.data(), frame.payload.size());
  msg->session = r.Get<uint64_t>();
  return r.Done("CreateResp", error);
}

bool DecodeIngestReq(const Frame& frame, IngestReq* msg, std::string* error) {
  if (WrongType(frame, MsgType::kIngestReq, "IngestReq", error)) return false;
  Reader r(frame.payload.data(), frame.payload.size());
  msg->session = r.Get<uint64_t>();
  msg->dim = r.Get<uint32_t>();
  msg->coords = r.GetArray<double>();
  msg->removes = r.GetArray<uint32_t>();
  if (!r.Done("IngestReq", error)) return false;
  if (msg->dim == 0 || msg->coords.size() % msg->dim != 0) {
    *error = "IngestReq: coords not a multiple of dim";
    return false;
  }
  return true;
}

bool DecodeIngestResp(const Frame& frame, IngestResp* msg,
                      std::string* error) {
  if (WrongType(frame, MsgType::kIngestResp, "IngestResp", error)) {
    return false;
  }
  Reader r(frame.payload.data(), frame.payload.size());
  msg->first_id = r.Get<uint32_t>();
  msg->pending_ops = r.Get<uint64_t>();
  return r.Done("IngestResp", error);
}

bool DecodeFlushReq(const Frame& frame, FlushReq* msg, std::string* error) {
  if (WrongType(frame, MsgType::kFlushReq, "FlushReq", error)) return false;
  Reader r(frame.payload.data(), frame.payload.size());
  msg->session = r.Get<uint64_t>();
  return r.Done("FlushReq", error);
}

bool DecodeFlushResp(const Frame& frame, FlushResp* msg, std::string* error) {
  if (WrongType(frame, MsgType::kFlushResp, "FlushResp", error)) return false;
  Reader r(frame.payload.data(), frame.payload.size());
  msg->epoch = r.Get<uint64_t>();
  msg->applied_updates = r.Get<uint64_t>();
  return r.Done("FlushResp", error);
}

bool DecodeQueryReq(const Frame& frame, QueryReq* msg, std::string* error) {
  if (WrongType(frame, MsgType::kQueryReq, "QueryReq", error)) return false;
  Reader r(frame.payload.data(), frame.payload.size());
  msg->session = r.Get<uint64_t>();
  msg->ids = r.GetArray<uint32_t>();
  return r.Done("QueryReq", error);
}

bool DecodeQueryResp(const Frame& frame, QueryResp* msg, std::string* error) {
  if (WrongType(frame, MsgType::kQueryResp, "QueryResp", error)) return false;
  Reader r(frame.payload.data(), frame.payload.size());
  msg->epoch = r.Get<uint64_t>();
  msg->num_points = r.Get<uint64_t>();
  msg->num_alive = r.Get<uint64_t>();
  msg->num_clusters = r.Get<uint32_t>();
  msg->labels = r.GetArray<int32_t>();
  msg->is_core = r.GetArray<uint8_t>();
  if (!r.Done("QueryResp", error)) return false;
  if (msg->labels.size() != msg->is_core.size()) {
    *error = "QueryResp: labels/is_core length mismatch";
    return false;
  }
  return true;
}

bool DecodeSnapshotReq(const Frame& frame, SnapshotReq* msg,
                       std::string* error) {
  if (WrongType(frame, MsgType::kSnapshotReq, "SnapshotReq", error)) {
    return false;
  }
  Reader r(frame.payload.data(), frame.payload.size());
  msg->session = r.Get<uint64_t>();
  return r.Done("SnapshotReq", error);
}

bool DecodeSnapshotResp(const Frame& frame, SnapshotResp* msg,
                        std::string* error) {
  if (WrongType(frame, MsgType::kSnapshotResp, "SnapshotResp", error)) {
    return false;
  }
  Reader r(frame.payload.data(), frame.payload.size());
  msg->epoch = r.Get<uint64_t>();
  msg->num_clusters = r.Get<uint32_t>();
  msg->ids = r.GetArray<uint32_t>();
  msg->labels = r.GetArray<int32_t>();
  msg->is_core = r.GetArray<uint8_t>();
  if (!r.Done("SnapshotResp", error)) return false;
  if (msg->labels.size() != msg->ids.size() ||
      msg->is_core.size() != msg->ids.size()) {
    *error = "SnapshotResp: parallel array length mismatch";
    return false;
  }
  return true;
}

bool DecodeDropReq(const Frame& frame, DropReq* msg, std::string* error) {
  if (WrongType(frame, MsgType::kDropReq, "DropReq", error)) return false;
  Reader r(frame.payload.data(), frame.payload.size());
  msg->session = r.Get<uint64_t>();
  return r.Done("DropReq", error);
}

bool DecodeDropResp(const Frame& frame, std::string* error) {
  if (WrongType(frame, MsgType::kDropResp, "DropResp", error)) return false;
  Reader r(frame.payload.data(), frame.payload.size());
  return r.Done("DropResp", error);
}

bool DecodeErrorResp(const Frame& frame, ErrorResp* msg, std::string* error) {
  if (WrongType(frame, MsgType::kErrorResp, "ErrorResp", error)) return false;
  Reader r(frame.payload.data(), frame.payload.size());
  msg->code = static_cast<ErrorCode>(r.Get<uint32_t>());
  msg->message = r.GetString();
  return r.Done("ErrorResp", error);
}

// ---------------------------------------------------------------------------
// FrameAssembler.

void FrameAssembler::Feed(const uint8_t* data, size_t len) {
  if (!poison_.empty()) return;  // stream already unrecoverable
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // so a long-lived connection does not grow its buffer forever.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + len);
}

FrameStatus FrameAssembler::Next(Frame* out, std::string* error) {
  if (!poison_.empty()) {
    *error = poison_;
    return FrameStatus::kError;
  }
  const size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return FrameStatus::kNeedMore;
  uint32_t length = 0;
  std::memcpy(&length, buffer_.data() + consumed_, 4);
  if (length < 1 || length > kMaxFrameBytes) {
    poison_ = "frame length " + std::to_string(length) +
              " outside [1, " + std::to_string(kMaxFrameBytes) + "]";
    *error = poison_;
    return FrameStatus::kError;
  }
  if (avail - 4 < length) return FrameStatus::kNeedMore;
  const uint8_t type = buffer_[consumed_ + 4];
  if (type < static_cast<uint8_t>(MsgType::kCreateReq) ||
      type > static_cast<uint8_t>(MsgType::kErrorResp)) {
    poison_ = "unknown frame type " + std::to_string(type);
    *error = poison_;
    return FrameStatus::kError;
  }
  out->type = static_cast<MsgType>(type);
  out->payload.assign(buffer_.begin() + static_cast<ptrdiff_t>(consumed_ + 5),
                      buffer_.begin() +
                          static_cast<ptrdiff_t>(consumed_ + 4 + length));
  consumed_ += 4 + length;
  return FrameStatus::kFrame;
}

}  // namespace serve
}  // namespace adbscan
