#ifndef ADBSCAN_SERVE_CLIENT_H_
#define ADBSCAN_SERVE_CLIENT_H_

// Blocking single-connection client of the clustering server. One request
// in flight at a time per client (the protocol answers in request order);
// run several clients for concurrency — they are cheap, one fd each.
//
// Every RPC returns false on failure with *error set; when the failure was
// an ErrorResp from the server, *code carries its category (transport
// failures leave it at kInternal). The client never aborts on malformed
// server bytes — a framing error closes the connection and fails every
// later call.

#include <cstdint>
#include <string>
#include <vector>

#include "serve/wire.h"

namespace adbscan {
namespace serve {

class WireClient {
 public:
  WireClient() = default;
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  // Connects to 127.0.0.1:port.
  bool Connect(int port, std::string* error);
  void Close();
  bool connected() const { return fd_ >= 0; }

  bool Create(const CreateReq& req, uint64_t* session, ErrorCode* code,
              std::string* error);
  bool Ingest(const IngestReq& req, IngestResp* resp, ErrorCode* code,
              std::string* error);
  bool Flush(uint64_t session, FlushResp* resp, ErrorCode* code,
             std::string* error);
  bool Query(uint64_t session, const std::vector<uint32_t>& ids,
             QueryResp* resp, ErrorCode* code, std::string* error);
  bool Snapshot(uint64_t session, SnapshotResp* resp, ErrorCode* code,
                std::string* error);
  bool Drop(uint64_t session, ErrorCode* code, std::string* error);

 private:
  // Sends `request` and reads exactly one response frame. False on
  // transport or framing failure (the connection is closed in that case).
  bool RoundTrip(const std::vector<uint8_t>& request, Frame* response,
                 std::string* error);
  // Shared tail of every RPC: round-trips, then either decodes the
  // expected type via `decode` or surfaces a received ErrorResp.
  template <typename Resp, typename DecodeFn>
  bool Call(const std::vector<uint8_t>& request, MsgType expect, Resp* resp,
            DecodeFn decode, ErrorCode* code, std::string* error);

  int fd_ = -1;
  FrameAssembler assembler_;
};

}  // namespace serve
}  // namespace adbscan

#endif  // ADBSCAN_SERVE_CLIENT_H_
