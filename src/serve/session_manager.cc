#include "serve/session_manager.h"

#include <atomic>
#include <unordered_set>
#include <utility>

#include "geom/point.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/parallel.h"
#include "util/timer.h"

namespace adbscan {
namespace serve {

namespace {

// Touch every serve.* metric once so snapshots list them even before the
// first session exists (same idiom as the stream/grid subsystems).
void DeclareMetrics() {
  static const bool declared = [] {
    ADB_COUNT("serve.sessions_created", 0);
    ADB_COUNT("serve.sessions_dropped", 0);
    ADB_COUNT("serve.ingest_batches", 0);
    ADB_COUNT("serve.ingest_ops", 0);
    ADB_COUNT("serve.backpressure_rejects", 0);
    ADB_COUNT("serve.drains", 0);
    ADB_COUNT("serve.flushes", 0);
    ADB_COUNT("serve.reads", 0);
    return true;
  }();
  (void)declared;
}

}  // namespace

// One tenant. Three lock layers, acquired only in the order
// queue_mu -> (released) -> apply_mu -> snap_mu; no code path holds
// queue_mu together with either of the others except the drain's
// pop-one-batch step, which takes queue_mu while holding apply_mu
// (never the reverse), so the order apply_mu -> queue_mu -> snap_mu is
// acyclic too.
struct SessionManager::Session {
  Session(uint64_t id_in, int dim_in, const DbscanParams& params_in,
          const DynamicClustererOptions& dyn_opts)
      : id(id_in),
        dim(dim_in),
        params(params_in),
        rho(dyn_opts.rho),
        clusterer(dim_in, params_in, dyn_opts) {}

  const uint64_t id;
  const int dim;
  const DbscanParams params;
  const double rho;

  // --- queue_mu: the enqueue side -------------------------------------
  // A batch is homogeneous (inserts or removes); one Ingest() call with
  // both parts enqueues two batches, inserts first. Coordinates stay a
  // flat vector until apply time, when Dataset(dim, move(coords)) takes
  // them over without a copy.
  struct PendingBatch {
    std::vector<double> coords;    // row-major inserts, or empty
    std::vector<uint32_t> removes;  // tombstones, or empty
  };
  std::mutex queue_mu;
  std::deque<PendingBatch> queue;
  // Predicted id assignment: DynamicClusterer hands out dense ascending
  // ids in apply order, and batches apply in enqueue order, so the id of
  // the next inserted point is computable at enqueue time.
  uint32_t next_id = 0;
  // Enqueue-side alive view (ids >= size are alive-if-assigned): lets
  // Ingest() reject a remove of a dead/unknown id immediately, so the
  // clusterer's Remove() preconditions can never trip on client input.
  std::vector<char> tombstoned;

  // Queue depth in ops; written under queue_mu (enqueue) and by the
  // drainer (decrement after apply), read lock-free for backpressure
  // reporting and ListSessions().
  std::atomic<uint64_t> pending_ops{0};

  // --- apply_mu: the clusterer ----------------------------------------
  std::mutex apply_mu;
  DynamicClusterer clusterer;
  uint64_t epoch = 0;
  uint64_t applied_updates = 0;

  // --- snap_mu: the published snapshot --------------------------------
  std::mutex snap_mu;
  std::shared_ptr<const ServeSnapshot> snapshot =
      std::make_shared<const ServeSnapshot>();
};

SessionManager::SessionManager(const ServeOptions& options)
    : options_(options) {
  DeclareMetrics();
  options_.num_threads = ResolveNumThreads(options.num_threads);
  if (options_.drain_batch_ops == 0) options_.drain_batch_ops = 1;
  if (options_.start_drainer) {
    drainer_ = std::thread([this] { DrainerLoop(); });
  }
}

SessionManager::~SessionManager() {
  if (drainer_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(drainer_mu_);
      stop_ = true;
    }
    drainer_cv_.notify_all();
    drainer_.join();
  }
}

uint64_t SessionManager::CreateSession(int dim, const DbscanParams& params,
                                       double rho, ErrorCode* code,
                                       std::string* error) {
  auto fail = [&](ErrorCode c, const std::string& msg) -> uint64_t {
    if (code != nullptr) *code = c;
    if (error != nullptr) *error = msg;
    return 0;
  };
  if (dim < 1 || dim > kMaxDim) {
    return fail(ErrorCode::kBadArgument,
                "dim must be in [1, " + std::to_string(kMaxDim) + "]");
  }
  if (!(params.eps > 0.0)) {
    return fail(ErrorCode::kBadArgument, "eps must be positive");
  }
  if (params.min_pts < 1) {
    return fail(ErrorCode::kBadArgument, "min_pts must be >= 1");
  }
  if (!(rho > 0.0) || rho >= 1.0) {
    return fail(ErrorCode::kBadArgument, "rho must be in (0, 1)");
  }

  DbscanParams p = params;
  p.num_threads = options_.num_threads;
  DynamicClustererOptions dyn;
  dyn.rho = rho;

  std::lock_guard<std::mutex> lk(sessions_mu_);
  if (sessions_.size() >= options_.max_sessions) {
    return fail(ErrorCode::kTooManySessions,
                "session limit (" + std::to_string(options_.max_sessions) +
                    ") reached");
  }
  const uint64_t id = next_session_id_++;
  sessions_.emplace(id, std::make_shared<Session>(id, dim, p, dyn));
  ADB_COUNT("serve.sessions_created", 1);
  ADB_RECORD("serve.sessions", static_cast<double>(sessions_.size()));
  return id;
}

bool SessionManager::DropSession(uint64_t session) {
  std::shared_ptr<Session> s;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    auto it = sessions_.find(session);
    if (it == sessions_.end()) return false;
    s = std::move(it->second);
    sessions_.erase(it);
    ADB_COUNT("serve.sessions_dropped", 1);
    ADB_RECORD("serve.sessions", static_cast<double>(sessions_.size()));
  }
  // If a drain is mid-flight it holds its own shared_ptr; the session is
  // destroyed once the last holder lets go. Nothing to join here.
  return true;
}

std::shared_ptr<SessionManager::Session> SessionManager::FindSession(
    uint64_t id) {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool SessionManager::Ingest(uint64_t session,
                            const std::vector<double>& coords, uint32_t dim,
                            const std::vector<uint32_t>& removes,
                            uint32_t* first_id, uint64_t* pending,
                            ErrorCode* code, std::string* error) {
  auto fail = [&](ErrorCode c, const std::string& msg) {
    if (code != nullptr) *code = c;
    if (error != nullptr) *error = msg;
    return false;
  };
  std::shared_ptr<Session> s = FindSession(session);
  if (s == nullptr) {
    return fail(ErrorCode::kUnknownSession,
                "unknown session " + std::to_string(session));
  }
  if (!coords.empty()) {
    if (dim != static_cast<uint32_t>(s->dim)) {
      return fail(ErrorCode::kBadArgument,
                  "dim mismatch: session has dim " + std::to_string(s->dim) +
                      ", ingest has dim " + std::to_string(dim));
    }
    if (coords.size() % dim != 0) {
      return fail(ErrorCode::kBadArgument,
                  "coords length is not a multiple of dim");
    }
  }
  const size_t n_insert = coords.empty() ? 0 : coords.size() / dim;
  const uint64_t new_ops = n_insert + removes.size();

  bool wake = false;
  {
    std::lock_guard<std::mutex> lk(s->queue_mu);
    const uint64_t depth = s->pending_ops.load(std::memory_order_relaxed);
    if (depth + new_ops > options_.max_pending_ops) {
      ADB_COUNT("serve.backpressure_rejects", 1);
      if (pending != nullptr) *pending = depth;
      return fail(ErrorCode::kBackpressure,
                  "ingest queue full (" + std::to_string(depth) + " of " +
                      std::to_string(options_.max_pending_ops) +
                      " pending ops); flush or retry");
    }

    // Validate the whole request before enqueueing any of it, so a bad
    // remove never leaves half an ingest behind. Removes may target ids
    // inserted earlier in this same request.
    const uint64_t id_limit = s->next_id + n_insert;
    std::unordered_set<uint32_t> batch_dups;
    for (uint32_t id : removes) {
      if (id >= id_limit) {
        return fail(ErrorCode::kBadArgument,
                    "remove of id " + std::to_string(id) +
                        " which was never inserted");
      }
      if ((id < s->tombstoned.size() && s->tombstoned[id]) ||
          !batch_dups.insert(id).second) {
        return fail(ErrorCode::kBadArgument,
                    "remove of id " + std::to_string(id) +
                        " which is already removed");
      }
    }

    if (first_id != nullptr) *first_id = s->next_id;
    if (n_insert > 0) {
      Session::PendingBatch b;
      b.coords = coords;
      s->queue.push_back(std::move(b));
      s->next_id += static_cast<uint32_t>(n_insert);
    }
    if (!removes.empty()) {
      if (s->tombstoned.size() < id_limit) s->tombstoned.resize(id_limit, 0);
      for (uint32_t id : removes) s->tombstoned[id] = 1;
      Session::PendingBatch b;
      b.removes = removes;
      s->queue.push_back(std::move(b));
    }
    const uint64_t now_pending =
        s->pending_ops.fetch_add(new_ops, std::memory_order_relaxed) +
        new_ops;
    if (pending != nullptr) *pending = now_pending;
    wake = now_pending >= options_.drain_batch_ops;
  }

  ADB_COUNT("serve.ingest_batches", 1);
  ADB_COUNT("serve.ingest_ops", static_cast<int64_t>(new_ops));
  ADB_RECORD("serve.ingest_batch_ops", static_cast<double>(new_ops));

  if (wake && options_.start_drainer) {
    {
      std::lock_guard<std::mutex> lk(drainer_mu_);
      drainer_wake_ = true;
    }
    drainer_cv_.notify_one();
  }
  return true;
}

void SessionManager::DrainSession(Session& s) {
  std::lock_guard<std::mutex> apply_lk(s.apply_mu);
  if (s.pending_ops.load(std::memory_order_relaxed) == 0) return;

  ADB_TRACE_SPAN("serve.drain");
  Timer timer;
  uint64_t drained_ops = 0;
  for (;;) {
    Session::PendingBatch batch;
    {
      std::lock_guard<std::mutex> queue_lk(s.queue_mu);
      if (s.queue.empty()) break;
      batch = std::move(s.queue.front());
      s.queue.pop_front();
    }
    uint64_t ops = 0;
    if (!batch.coords.empty()) {
      Dataset ds(s.dim, std::move(batch.coords));
      ops = ds.size();
      s.clusterer.Insert(ds);
    } else if (!batch.removes.empty()) {
      ops = batch.removes.size();
      s.clusterer.Remove(batch.removes);
    }
    s.applied_updates += ops;
    drained_ops += ops;
    s.pending_ops.fetch_sub(ops, std::memory_order_relaxed);
  }
  if (drained_ops == 0) return;

  // Materialize labels (the last mutator touch), then build the immutable
  // snapshot and publish it with a pointer swap.
  auto snap = std::make_shared<ServeSnapshot>();
  snap->labels = s.clusterer.Labels();  // copy of the global-id clustering
  snap->epoch = ++s.epoch;
  snap->applied_updates = s.applied_updates;
  snap->num_points = s.clusterer.num_points();
  snap->num_alive = s.clusterer.num_alive();
  snap->alive.resize(snap->num_points);
  for (size_t i = 0; i < snap->num_points; ++i) {
    snap->alive[i] = s.clusterer.alive(static_cast<uint32_t>(i)) ? 1 : 0;
  }
  {
    std::lock_guard<std::mutex> snap_lk(s.snap_mu);
    s.snapshot = std::move(snap);
  }

  ADB_COUNT("serve.drains", 1);
  ADB_RECORD("serve.drain_ops", static_cast<double>(drained_ops));
  ADB_RECORD("serve.drain_latency_ms", timer.ElapsedMillis());
}

bool SessionManager::Flush(uint64_t session, uint64_t* epoch,
                           uint64_t* applied, ErrorCode* code,
                           std::string* error) {
  std::shared_ptr<Session> s = FindSession(session);
  if (s == nullptr) {
    if (code != nullptr) *code = ErrorCode::kUnknownSession;
    if (error != nullptr) {
      *error = "unknown session " + std::to_string(session);
    }
    return false;
  }
  ADB_COUNT("serve.flushes", 1);
  DrainSession(*s);
  std::lock_guard<std::mutex> lk(s->apply_mu);
  if (epoch != nullptr) *epoch = s->epoch;
  if (applied != nullptr) *applied = s->applied_updates;
  return true;
}

std::shared_ptr<const ServeSnapshot> SessionManager::Read(uint64_t session) {
  std::shared_ptr<Session> s = FindSession(session);
  if (s == nullptr) return nullptr;
  ADB_COUNT("serve.reads", 1);
  std::lock_guard<std::mutex> lk(s->snap_mu);
  return s->snapshot;
}

void SessionManager::DrainDirtySessions() {
  std::vector<std::shared_ptr<Session>> dirty;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    for (auto& [id, s] : sessions_) {
      if (s->pending_ops.load(std::memory_order_relaxed) > 0) {
        dirty.push_back(s);
      }
    }
  }
  // Sessions drain one at a time: each drain already fans out over the
  // task pool through the clusterer's own ParallelFor phases, and draining
  // N sessions inside an outer ParallelFor would hold the pool's submit
  // lock while blocking on a session's apply_mu — the exact inverse of a
  // concurrent Flush (apply_mu, then the pool inside Insert), i.e. a
  // deadlock. The lock order is apply_mu -> pool, everywhere.
  for (const std::shared_ptr<Session>& s : dirty) DrainSession(*s);
}

size_t SessionManager::num_sessions() {
  std::lock_guard<std::mutex> lk(sessions_mu_);
  return sessions_.size();
}

std::vector<SessionInfo> SessionManager::ListSessions() {
  std::vector<std::shared_ptr<Session>> live;
  {
    std::lock_guard<std::mutex> lk(sessions_mu_);
    live.reserve(sessions_.size());
    for (auto& [id, s] : sessions_) live.push_back(s);
  }
  std::vector<SessionInfo> out;
  out.reserve(live.size());
  for (const auto& s : live) {
    SessionInfo info;
    info.id = s->id;
    info.dim = s->dim;
    info.params = s->params;
    info.rho = s->rho;
    info.pending_ops = s->pending_ops.load(std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(s->snap_mu);
      info.epoch = s->snapshot->epoch;
    }
    out.push_back(info);
  }
  return out;
}

void SessionManager::DrainerLoop() {
  std::unique_lock<std::mutex> lk(drainer_mu_);
  for (;;) {
    drainer_cv_.wait(lk, [this] { return drainer_wake_ || stop_; });
    if (stop_) return;
    drainer_wake_ = false;
    lk.unlock();
    DrainDirtySessions();
    lk.lock();
  }
}

}  // namespace serve
}  // namespace adbscan
