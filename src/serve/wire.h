#ifndef ADBSCAN_SERVE_WIRE_H_
#define ADBSCAN_SERVE_WIRE_H_

// Length-prefixed binary wire protocol of the clustering server.
//
// Framing: every message on the stream is
//
//   u32 length   (little-endian; bytes that follow, including the type)
//   u8  type     (MsgType)
//   payload      (length - 1 bytes, message-specific little-endian fields)
//
// Variable-length fields are a u32 element count followed by that many
// fixed-width elements; strings are u32 byte count + raw bytes. The
// framing layer caps `length` at kMaxFrameBytes so a garbage prefix can
// never provoke a multi-gigabyte allocation.
//
// Parsing is strict and non-aborting, mirroring stream/update_log.cc: a
// truncated, oversized, or malformed frame produces an error string for
// the caller to report (and, server-side, an ErrorResp on the connection)
// — never an abort, crash, or a silently half-parsed message. Every
// decoder consumes its payload exactly; trailing bytes are an error.
//
// The byte order is little-endian on the wire and the codec assumes a
// little-endian host (x86-64 / aarch64 — the same assumption io/dataset_io
// makes for the binary dataset format).

#include <cstdint>
#include <string>
#include <vector>

namespace adbscan {
namespace serve {

// Hard cap on a frame's length field (type byte + payload).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

enum class MsgType : uint8_t {
  kCreateReq = 1,
  kCreateResp = 2,
  kIngestReq = 3,
  kIngestResp = 4,
  kFlushReq = 5,
  kFlushResp = 6,
  kQueryReq = 7,
  kQueryResp = 8,
  kSnapshotReq = 9,
  kSnapshotResp = 10,
  kDropReq = 11,
  kDropResp = 12,
  kErrorResp = 13,
};

// Machine-readable error categories carried by ErrorResp.
enum class ErrorCode : uint32_t {
  kBadFrame = 1,        // malformed or unparseable request
  kUnknownSession = 2,  // session id not live on this server
  kBadArgument = 3,     // well-formed but invalid (dim mismatch, dead id…)
  kBackpressure = 4,    // ingest queue full; flush or retry later
  kTooManySessions = 5,
  kInternal = 6,
};

// One complete frame, assembled from the stream.
struct Frame {
  MsgType type = MsgType::kErrorResp;
  std::vector<uint8_t> payload;
};

// ---------------------------------------------------------------------------
// Messages. Each struct has an EncodeX free function producing a full frame
// (length prefix included) and a DecodeX that parses a Frame's payload,
// returning false with *error set on any malformation.

struct CreateReq {
  uint32_t dim = 0;
  double eps = 0.0;
  uint32_t min_pts = 1;
  double rho = 0.001;
};

struct CreateResp {
  uint64_t session = 0;
};

// Appends coords.size()/dim fresh points, then tombstones `removes` (global
// ids of earlier inserts). Either part may be empty. `dim` repeats the
// session's dimensionality so the message is self-describing to the codec;
// the server rejects a mismatch with kBadArgument.
struct IngestReq {
  uint64_t session = 0;
  uint32_t dim = 0;
  std::vector<double> coords;
  std::vector<uint32_t> removes;
};

// Ingest is asynchronous: the response acknowledges enqueueing, not
// application. `first_id` is the global id the first inserted point WILL
// receive (ids are assigned densely in enqueue order, so it is exact);
// `pending_ops` is the session's queue depth after this request.
struct IngestResp {
  uint32_t first_id = 0;
  uint64_t pending_ops = 0;
};

struct FlushReq {
  uint64_t session = 0;
};

// Everything enqueued before the flush has been applied and published.
struct FlushResp {
  uint64_t epoch = 0;
  uint64_t applied_updates = 0;
};

// Point label lookup against the last published snapshot (ids.empty() is a
// pure stats probe). Never blocks behind writers.
struct QueryReq {
  uint64_t session = 0;
  std::vector<uint32_t> ids;
};

struct QueryResp {
  uint64_t epoch = 0;
  uint64_t num_points = 0;  // global id space size at the snapshot epoch
  uint64_t num_alive = 0;
  uint32_t num_clusters = 0;
  // Parallel to the requested ids. Ids at or beyond num_points (not yet
  // applied at the snapshot epoch) and dead ids report noise / not core.
  std::vector<int32_t> labels;
  std::vector<uint8_t> is_core;
};

struct SnapshotReq {
  uint64_t session = 0;
};

// Full dump of the published snapshot: every alive point's global id with
// its label and core flag, in ascending id order.
struct SnapshotResp {
  uint64_t epoch = 0;
  uint32_t num_clusters = 0;
  std::vector<uint32_t> ids;
  std::vector<int32_t> labels;
  std::vector<uint8_t> is_core;
};

struct DropReq {
  uint64_t session = 0;
};

struct DropResp {};

struct ErrorResp {
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
};

// Encoders append one complete frame (length prefix + type + payload).
void EncodeCreateReq(const CreateReq& msg, std::vector<uint8_t>* out);
void EncodeCreateResp(const CreateResp& msg, std::vector<uint8_t>* out);
void EncodeIngestReq(const IngestReq& msg, std::vector<uint8_t>* out);
void EncodeIngestResp(const IngestResp& msg, std::vector<uint8_t>* out);
void EncodeFlushReq(const FlushReq& msg, std::vector<uint8_t>* out);
void EncodeFlushResp(const FlushResp& msg, std::vector<uint8_t>* out);
void EncodeQueryReq(const QueryReq& msg, std::vector<uint8_t>* out);
void EncodeQueryResp(const QueryResp& msg, std::vector<uint8_t>* out);
void EncodeSnapshotReq(const SnapshotReq& msg, std::vector<uint8_t>* out);
void EncodeSnapshotResp(const SnapshotResp& msg, std::vector<uint8_t>* out);
void EncodeDropReq(const DropReq& msg, std::vector<uint8_t>* out);
void EncodeDropResp(std::vector<uint8_t>* out);
void EncodeErrorResp(const ErrorResp& msg, std::vector<uint8_t>* out);

// Decoders parse frame.payload; the frame's type must match the message
// (callers dispatch on frame.type first). False + *error on malformation.
bool DecodeCreateReq(const Frame& frame, CreateReq* msg, std::string* error);
bool DecodeCreateResp(const Frame& frame, CreateResp* msg,
                      std::string* error);
bool DecodeIngestReq(const Frame& frame, IngestReq* msg, std::string* error);
bool DecodeIngestResp(const Frame& frame, IngestResp* msg,
                      std::string* error);
bool DecodeFlushReq(const Frame& frame, FlushReq* msg, std::string* error);
bool DecodeFlushResp(const Frame& frame, FlushResp* msg, std::string* error);
bool DecodeQueryReq(const Frame& frame, QueryReq* msg, std::string* error);
bool DecodeQueryResp(const Frame& frame, QueryResp* msg, std::string* error);
bool DecodeSnapshotReq(const Frame& frame, SnapshotReq* msg,
                       std::string* error);
bool DecodeSnapshotResp(const Frame& frame, SnapshotResp* msg,
                        std::string* error);
bool DecodeDropReq(const Frame& frame, DropReq* msg, std::string* error);
bool DecodeDropResp(const Frame& frame, std::string* error);
bool DecodeErrorResp(const Frame& frame, ErrorResp* msg, std::string* error);

// ---------------------------------------------------------------------------
// Incremental frame assembly over a byte stream.

enum class FrameStatus {
  kFrame,     // *out holds a complete frame
  kNeedMore,  // not enough buffered bytes yet
  kError,     // stream is unrecoverable (oversized/underflowed length or
              // unknown type); *error describes why
};

// Feeds raw socket bytes and pops complete frames. After kError the stream
// is poisoned: every further Next() reports the same error (the transport
// should answer with ErrorResp{kBadFrame} and close).
class FrameAssembler {
 public:
  void Feed(const uint8_t* data, size_t len);
  FrameStatus Next(Frame* out, std::string* error);

  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::vector<uint8_t> buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out as frames
  std::string poison_;   // non-empty once the stream is unrecoverable
};

}  // namespace serve
}  // namespace adbscan

#endif  // ADBSCAN_SERVE_WIRE_H_
