#include "io/dataset_io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <vector>

#include "geom/point.h"
#include "util/check.h"

namespace adbscan {
namespace {

constexpr uint32_t kMagic = 0x41444253;       // "ADBS"
constexpr uint32_t kClusteringMagic = 0x41444243;  // "ADBC"

FILE* OpenOrDie(const std::string& path, const char* mode) {
  FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' (mode %s)\n", path.c_str(), mode);
    std::abort();
  }
  return f;
}

}  // namespace

void WriteCsv(const Dataset& data, const std::string& path) {
  FILE* f = OpenOrDie(path, "w");
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data.point(i);
    for (int j = 0; j < data.dim(); ++j) {
      std::fprintf(f, j == 0 ? "%.10g" : ",%.10g", p[j]);
    }
    std::fputc('\n', f);
  }
  std::fclose(f);
}

void WriteLabeledCsv(const Dataset& data, const Clustering& clustering,
                     const std::string& path) {
  ADB_CHECK(clustering.label.size() == data.size());
  FILE* f = OpenOrDie(path, "w");
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data.point(i);
    for (int j = 0; j < data.dim(); ++j) {
      std::fprintf(f, j == 0 ? "%.10g" : ",%.10g", p[j]);
    }
    std::fprintf(f, ",%d\n", clustering.label[i]);
  }
  std::fclose(f);
}

namespace {

void SetError(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
}

bool IsBlank(const std::string& line) {
  for (char c : line) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

std::optional<Dataset> TryReadCsv(const std::string& path, int dim,
                                  std::string* error) {
  if (dim < 1 || dim > kMaxDim) {
    SetError(error, path + ": dimensionality " + std::to_string(dim) +
                        " outside [1, " + std::to_string(kMaxDim) + "]");
    return std::nullopt;
  }
  std::ifstream in(path);
  if (!in) {
    SetError(error, path + ": cannot open");
    return std::nullopt;
  }
  Dataset data(dim);
  std::vector<double> row(dim);
  std::string line;
  size_t line_no = 0;
  auto fail = [&](const std::string& what) {
    SetError(error, path + ":" + std::to_string(line_no) + ": " + what);
    return std::nullopt;
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (IsBlank(line)) continue;
    const char* cursor = line.c_str();
    auto skip_spaces = [&] {
      while (*cursor == ' ' || *cursor == '\t') ++cursor;
    };
    for (int j = 0; j < dim; ++j) {
      if (j > 0) {
        skip_spaces();
        if (*cursor != ',') {
          return fail("expected " + std::to_string(dim) +
                      " comma-separated values");
        }
        ++cursor;
      }
      skip_spaces();
      char* end = nullptr;
      row[j] = std::strtod(cursor, &end);
      if (end == cursor) {
        return fail("field " + std::to_string(j + 1) + " is not a number");
      }
      if (!std::isfinite(row[j])) {
        return fail("field " + std::to_string(j + 1) + " is not finite");
      }
      cursor = end;
    }
    skip_spaces();
    // Compare against the true end of the line, not just a NUL, so embedded
    // null bytes count as garbage instead of masking trailing content.
    if (cursor != line.c_str() + line.size()) {
      return fail("trailing garbage after " + std::to_string(dim) +
                  " values");
    }
    data.Add(row);
  }
  if (in.bad()) {
    SetError(error, path + ": read error");
    return std::nullopt;
  }
  if (data.size() == 0) {
    SetError(error, path + ": no data rows");
    return std::nullopt;
  }
  return data;
}

Dataset ReadCsv(const std::string& path, int dim) {
  std::string error;
  std::optional<Dataset> data = TryReadCsv(path, dim, &error);
  if (!data.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::abort();
  }
  return *std::move(data);
}

void WriteBinary(const Dataset& data, const std::string& path) {
  FILE* f = OpenOrDie(path, "wb");
  const uint32_t dim = static_cast<uint32_t>(data.dim());
  const uint64_t n = data.size();
  ADB_CHECK(std::fwrite(&kMagic, sizeof(kMagic), 1, f) == 1);
  ADB_CHECK(std::fwrite(&dim, sizeof(dim), 1, f) == 1);
  ADB_CHECK(std::fwrite(&n, sizeof(n), 1, f) == 1);
  if (n > 0) {
    const size_t count = data.size() * static_cast<size_t>(data.dim());
    ADB_CHECK(std::fwrite(data.raw(), sizeof(double), count, f) == count);
  }
  std::fclose(f);
}

std::optional<Dataset> TryReadBinary(const std::string& path,
                                     std::string* error) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    SetError(error, path + ": cannot open");
    return std::nullopt;
  }
  auto fail = [&](const std::string& what) {
    std::fclose(f);
    SetError(error, path + ": " + what);
    return std::nullopt;
  };
  uint32_t magic = 0, dim = 0;
  uint64_t n = 0;
  if (std::fread(&magic, sizeof(magic), 1, f) != 1) {
    return fail("truncated header (magic)");
  }
  if (magic != kMagic) return fail("bad magic (not an adbscan dataset)");
  if (std::fread(&dim, sizeof(dim), 1, f) != 1) {
    return fail("truncated header (dim)");
  }
  if (dim < 1 || dim > static_cast<uint32_t>(kMaxDim)) {
    return fail("dimensionality " + std::to_string(dim) + " outside [1, " +
                std::to_string(kMaxDim) + "]");
  }
  if (std::fread(&n, sizeof(n), 1, f) != 1) {
    return fail("truncated header (count)");
  }
  // Guard the n*dim element count (and its byte size) against overflow,
  // then validate the payload size against the actual file size BEFORE
  // allocating — header fields are untrusted, and a bogus count must not
  // drive a multi-terabyte allocation.
  if (n > SIZE_MAX / sizeof(double) / dim) {
    return fail("point count " + std::to_string(n) + " overflows");
  }
  const long header_end = std::ftell(f);
  if (header_end < 0 || std::fseek(f, 0, SEEK_END) != 0) {
    return fail("cannot determine file size");
  }
  const long file_end = std::ftell(f);
  if (file_end < 0 || std::fseek(f, header_end, SEEK_SET) != 0) {
    return fail("cannot determine file size");
  }
  const uint64_t payload_bytes =
      static_cast<uint64_t>(n) * dim * sizeof(double);
  const uint64_t actual_bytes = static_cast<uint64_t>(file_end - header_end);
  if (actual_bytes < payload_bytes) {
    return fail("payload shorter than header count " + std::to_string(n));
  }
  if (actual_bytes > payload_bytes) return fail("trailing bytes after payload");
  std::vector<double> coords(static_cast<size_t>(n) * dim);
  if (n > 0 &&
      std::fread(coords.data(), sizeof(double), coords.size(), f) !=
          coords.size()) {
    return fail("payload shorter than header count " + std::to_string(n));
  }
  std::fclose(f);
  return Dataset(static_cast<int>(dim), std::move(coords));
}

std::optional<Dataset> TryMapBinary(const std::string& path,
                                    std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    SetError(error, path + ": cannot open");
    return std::nullopt;
  }
  auto fail = [&](const std::string& what) {
    ::close(fd);
    SetError(error, path + ": " + what);
    return std::nullopt;
  };
  struct stat st;
  if (::fstat(fd, &st) != 0) return fail("cannot determine file size");
  if (!S_ISREG(st.st_mode)) return fail("not a regular file");
  const uint64_t file_size = static_cast<uint64_t>(st.st_size);
  // Same header validation as TryReadBinary, reading from the fd so a file
  // that is unreadable past open() still errors instead of crashing later.
  struct Header {
    uint32_t magic;
    uint32_t dim;
    uint64_t n;
  } header = {};
  static_assert(sizeof(Header) == 16, "payload must start at offset 16");
  // Read whatever header bytes exist, then mirror TryReadBinary's
  // interleaved truncation/value checks exactly (a short file with a bad
  // magic reports the bad magic, not the truncation).
  const size_t header_avail =
      std::min<uint64_t>(file_size, sizeof(header));
  size_t got = 0;
  while (got < header_avail) {
    const ssize_t r = ::read(fd, reinterpret_cast<char*>(&header) + got,
                             header_avail - got);
    if (r <= 0) return fail("cannot determine file size");
    got += static_cast<size_t>(r);
  }
  if (file_size < sizeof(header.magic)) return fail("truncated header (magic)");
  if (header.magic != kMagic) return fail("bad magic (not an adbscan dataset)");
  if (file_size < sizeof(header.magic) + sizeof(header.dim)) {
    return fail("truncated header (dim)");
  }
  if (header.dim < 1 || header.dim > static_cast<uint32_t>(kMaxDim)) {
    return fail("dimensionality " + std::to_string(header.dim) +
                " outside [1, " + std::to_string(kMaxDim) + "]");
  }
  if (file_size < sizeof(header)) return fail("truncated header (count)");
  if (header.n > SIZE_MAX / sizeof(double) / header.dim) {
    return fail("point count " + std::to_string(header.n) + " overflows");
  }
  const uint64_t payload_bytes = header.n * header.dim * sizeof(double);
  const uint64_t actual_bytes = file_size - sizeof(header);
  if (actual_bytes < payload_bytes) {
    return fail("payload shorter than header count " +
                std::to_string(header.n));
  }
  if (actual_bytes > payload_bytes) return fail("trailing bytes after payload");
  const int dim = static_cast<int>(header.dim);
  if (header.n == 0) {
    ::close(fd);
    return Dataset(dim);
  }
  void* map = ::mmap(nullptr, static_cast<size_t>(file_size), PROT_READ,
                     MAP_PRIVATE, fd, 0);
  if (map == MAP_FAILED) return fail("mmap failed");
  ::close(fd);  // the mapping keeps the file open
  const auto keepalive = std::shared_ptr<const void>(
      map, [len = static_cast<size_t>(file_size)](const void* p) {
        ::munmap(const_cast<void*>(p), len);
      });
  const double* coords = reinterpret_cast<const double*>(
      static_cast<const char*>(map) + sizeof(header));
  return Dataset(dim, coords, static_cast<size_t>(header.n), keepalive);
}

Dataset MapBinary(const std::string& path) {
  std::string error;
  std::optional<Dataset> data = TryMapBinary(path, &error);
  if (!data.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::abort();
  }
  return *std::move(data);
}

Dataset ReadBinary(const std::string& path) {
  std::string error;
  std::optional<Dataset> data = TryReadBinary(path, &error);
  if (!data.has_value()) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::abort();
  }
  return *std::move(data);
}

void WriteClustering(const Clustering& c, const std::string& path) {
  FILE* f = OpenOrDie(path, "wb");
  const uint64_t n = c.label.size();
  const uint64_t extras = c.extra_memberships.size();
  ADB_CHECK(std::fwrite(&kClusteringMagic, sizeof(kClusteringMagic), 1, f) ==
            1);
  ADB_CHECK(std::fwrite(&c.num_clusters, sizeof(c.num_clusters), 1, f) == 1);
  ADB_CHECK(std::fwrite(&n, sizeof(n), 1, f) == 1);
  ADB_CHECK(std::fwrite(&extras, sizeof(extras), 1, f) == 1);
  if (n > 0) {
    ADB_CHECK(std::fwrite(c.label.data(), sizeof(int32_t), n, f) == n);
    ADB_CHECK(std::fwrite(c.is_core.data(), sizeof(char), n, f) == n);
  }
  for (const auto& [point, cluster] : c.extra_memberships) {
    ADB_CHECK(std::fwrite(&point, sizeof(point), 1, f) == 1);
    ADB_CHECK(std::fwrite(&cluster, sizeof(cluster), 1, f) == 1);
  }
  std::fclose(f);
}

Clustering ReadClustering(const std::string& path) {
  FILE* f = OpenOrDie(path, "rb");
  uint32_t magic = 0;
  uint64_t n = 0, extras = 0;
  Clustering c;
  ADB_CHECK(std::fread(&magic, sizeof(magic), 1, f) == 1);
  ADB_CHECK_MSG(magic == kClusteringMagic, path.c_str());
  ADB_CHECK(std::fread(&c.num_clusters, sizeof(c.num_clusters), 1, f) == 1);
  ADB_CHECK(std::fread(&n, sizeof(n), 1, f) == 1);
  ADB_CHECK(std::fread(&extras, sizeof(extras), 1, f) == 1);
  c.label.resize(n);
  c.is_core.resize(n);
  if (n > 0) {
    ADB_CHECK(std::fread(c.label.data(), sizeof(int32_t), n, f) == n);
    ADB_CHECK(std::fread(c.is_core.data(), sizeof(char), n, f) == n);
  }
  c.extra_memberships.resize(extras);
  for (auto& [point, cluster] : c.extra_memberships) {
    ADB_CHECK(std::fread(&point, sizeof(point), 1, f) == 1);
    ADB_CHECK(std::fread(&cluster, sizeof(cluster), 1, f) == 1);
  }
  std::fclose(f);
  return c;
}

}  // namespace adbscan
