#include "io/dataset_io.h"

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "util/check.h"

namespace adbscan {
namespace {

constexpr uint32_t kMagic = 0x41444253;       // "ADBS"
constexpr uint32_t kClusteringMagic = 0x41444243;  // "ADBC"

FILE* OpenOrDie(const std::string& path, const char* mode) {
  FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open '%s' (mode %s)\n", path.c_str(), mode);
    std::abort();
  }
  return f;
}

}  // namespace

void WriteCsv(const Dataset& data, const std::string& path) {
  FILE* f = OpenOrDie(path, "w");
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data.point(i);
    for (int j = 0; j < data.dim(); ++j) {
      std::fprintf(f, j == 0 ? "%.10g" : ",%.10g", p[j]);
    }
    std::fputc('\n', f);
  }
  std::fclose(f);
}

void WriteLabeledCsv(const Dataset& data, const Clustering& clustering,
                     const std::string& path) {
  ADB_CHECK(clustering.label.size() == data.size());
  FILE* f = OpenOrDie(path, "w");
  for (size_t i = 0; i < data.size(); ++i) {
    const double* p = data.point(i);
    for (int j = 0; j < data.dim(); ++j) {
      std::fprintf(f, j == 0 ? "%.10g" : ",%.10g", p[j]);
    }
    std::fprintf(f, ",%d\n", clustering.label[i]);
  }
  std::fclose(f);
}

Dataset ReadCsv(const std::string& path, int dim) {
  FILE* f = OpenOrDie(path, "r");
  Dataset data(dim);
  std::vector<double> row(dim);
  char line[4096];
  size_t line_no = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    ++line_no;
    char* cursor = line;
    for (int j = 0; j < dim; ++j) {
      char* end = nullptr;
      row[j] = std::strtod(cursor, &end);
      if (end == cursor) {
        std::fprintf(stderr, "%s:%zu: expected %d numbers\n", path.c_str(),
                     line_no, dim);
        std::abort();
      }
      cursor = end;
      if (*cursor == ',') ++cursor;
    }
    data.Add(row);
  }
  std::fclose(f);
  return data;
}

void WriteBinary(const Dataset& data, const std::string& path) {
  FILE* f = OpenOrDie(path, "wb");
  const uint32_t dim = static_cast<uint32_t>(data.dim());
  const uint64_t n = data.size();
  ADB_CHECK(std::fwrite(&kMagic, sizeof(kMagic), 1, f) == 1);
  ADB_CHECK(std::fwrite(&dim, sizeof(dim), 1, f) == 1);
  ADB_CHECK(std::fwrite(&n, sizeof(n), 1, f) == 1);
  if (n > 0) {
    ADB_CHECK(std::fwrite(data.coords().data(), sizeof(double),
                          data.coords().size(), f) == data.coords().size());
  }
  std::fclose(f);
}

Dataset ReadBinary(const std::string& path) {
  FILE* f = OpenOrDie(path, "rb");
  uint32_t magic = 0, dim = 0;
  uint64_t n = 0;
  ADB_CHECK(std::fread(&magic, sizeof(magic), 1, f) == 1);
  ADB_CHECK_MSG(magic == kMagic, path.c_str());
  ADB_CHECK(std::fread(&dim, sizeof(dim), 1, f) == 1);
  ADB_CHECK(std::fread(&n, sizeof(n), 1, f) == 1);
  std::vector<double> coords(static_cast<size_t>(n) * dim);
  if (n > 0) {
    ADB_CHECK(std::fread(coords.data(), sizeof(double), coords.size(), f) ==
              coords.size());
  }
  std::fclose(f);
  return Dataset(static_cast<int>(dim), std::move(coords));
}

void WriteClustering(const Clustering& c, const std::string& path) {
  FILE* f = OpenOrDie(path, "wb");
  const uint64_t n = c.label.size();
  const uint64_t extras = c.extra_memberships.size();
  ADB_CHECK(std::fwrite(&kClusteringMagic, sizeof(kClusteringMagic), 1, f) ==
            1);
  ADB_CHECK(std::fwrite(&c.num_clusters, sizeof(c.num_clusters), 1, f) == 1);
  ADB_CHECK(std::fwrite(&n, sizeof(n), 1, f) == 1);
  ADB_CHECK(std::fwrite(&extras, sizeof(extras), 1, f) == 1);
  if (n > 0) {
    ADB_CHECK(std::fwrite(c.label.data(), sizeof(int32_t), n, f) == n);
    ADB_CHECK(std::fwrite(c.is_core.data(), sizeof(char), n, f) == n);
  }
  for (const auto& [point, cluster] : c.extra_memberships) {
    ADB_CHECK(std::fwrite(&point, sizeof(point), 1, f) == 1);
    ADB_CHECK(std::fwrite(&cluster, sizeof(cluster), 1, f) == 1);
  }
  std::fclose(f);
}

Clustering ReadClustering(const std::string& path) {
  FILE* f = OpenOrDie(path, "rb");
  uint32_t magic = 0;
  uint64_t n = 0, extras = 0;
  Clustering c;
  ADB_CHECK(std::fread(&magic, sizeof(magic), 1, f) == 1);
  ADB_CHECK_MSG(magic == kClusteringMagic, path.c_str());
  ADB_CHECK(std::fread(&c.num_clusters, sizeof(c.num_clusters), 1, f) == 1);
  ADB_CHECK(std::fread(&n, sizeof(n), 1, f) == 1);
  ADB_CHECK(std::fread(&extras, sizeof(extras), 1, f) == 1);
  c.label.resize(n);
  c.is_core.resize(n);
  if (n > 0) {
    ADB_CHECK(std::fread(c.label.data(), sizeof(int32_t), n, f) == n);
    ADB_CHECK(std::fread(c.is_core.data(), sizeof(char), n, f) == n);
  }
  c.extra_memberships.resize(extras);
  for (auto& [point, cluster] : c.extra_memberships) {
    ADB_CHECK(std::fread(&point, sizeof(point), 1, f) == 1);
    ADB_CHECK(std::fread(&cluster, sizeof(cluster), 1, f) == 1);
  }
  std::fclose(f);
  return c;
}

}  // namespace adbscan
