#include "io/table.h"

#include <algorithm>

#include "util/check.h"

namespace adbscan {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::AddRow(std::vector<std::string> cells) {
  ADB_CHECK(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::Print(FILE* out) const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%-*s", c == 0 ? "" : "  ",
                   static_cast<int>(width[c]), row[c].c_str());
    }
    std::fputc('\n', out);
  };
  print_row(header_);
  size_t total = header_.size() - 1;
  for (size_t w : width) total += w + 1;
  for (size_t i = 0; i < total; ++i) std::fputc('-', out);
  std::fputc('\n', out);
  for (const auto& row : rows_) print_row(row);
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
  return buf;
}

std::string Table::Seconds(double s) {
  if (s < 0.0) return "skipped";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fs", s);
  return buf;
}

}  // namespace adbscan
