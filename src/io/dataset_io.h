#ifndef ADBSCAN_IO_DATASET_IO_H_
#define ADBSCAN_IO_DATASET_IO_H_

#include <string>

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// Simple dataset persistence. Two formats:
//  - CSV: one point per line, comma-separated coordinates; optionally a
//    trailing label column (used to export Figure 8/9 panels for plotting);
//  - binary: little-endian [magic u32][dim u32][n u64][n*dim f64], fast
//    round-trips for large generated datasets.
// All functions abort on I/O errors with a message naming the path.

void WriteCsv(const Dataset& data, const std::string& path);

// CSV with a final integer label column (cluster id, -1 for noise).
void WriteLabeledCsv(const Dataset& data, const Clustering& clustering,
                     const std::string& path);

// Reads a CSV of pure coordinates (no header, no label column).
Dataset ReadCsv(const std::string& path, int dim);

void WriteBinary(const Dataset& data, const std::string& path);
Dataset ReadBinary(const std::string& path);

// Clustering persistence (binary): num_clusters, labels, core flags, extra
// memberships. Round-trips exactly.
void WriteClustering(const Clustering& c, const std::string& path);
Clustering ReadClustering(const std::string& path);

}  // namespace adbscan

#endif  // ADBSCAN_IO_DATASET_IO_H_
