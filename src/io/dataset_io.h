#ifndef ADBSCAN_IO_DATASET_IO_H_
#define ADBSCAN_IO_DATASET_IO_H_

#include <optional>
#include <string>

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// Simple dataset persistence. Two formats:
//  - CSV: one point per line, comma-separated coordinates; optionally a
//    trailing label column (used to export Figure 8/9 panels for plotting);
//  - binary: little-endian [magic u32][dim u32][n u64][n*dim f64], fast
//    round-trips for large generated datasets.
// The TryRead* functions validate strictly and report malformed input as an
// error string (never crash, never silently misparse); the Read* wrappers
// delegate to them and abort with the message — the right behavior for the
// bench/figure drivers, whose inputs this repository generates itself.

void WriteCsv(const Dataset& data, const std::string& path);

// CSV with a final integer label column (cluster id, -1 for noise).
void WriteLabeledCsv(const Dataset& data, const Clustering& clustering,
                     const std::string& path);

// Reads a CSV of pure coordinates (no header, no label column).
Dataset ReadCsv(const std::string& path, int dim);

void WriteBinary(const Dataset& data, const std::string& path);
Dataset ReadBinary(const std::string& path);

// Strict CSV read: every non-blank line must hold exactly `dim`
// comma-separated finite numbers with nothing else (CR-LF endings and
// surrounding spaces are tolerated, blank lines are skipped); a file with
// zero data rows is an error. On failure returns nullopt and, when `error`
// is non-null, stores a message naming the path and line.
std::optional<Dataset> TryReadCsv(const std::string& path, int dim,
                                  std::string* error);

// Strict binary read: validates the magic, dim ∈ [1, kMaxDim], the payload
// size against the header count (guarding the n*dim multiplication against
// overflow), and rejects trailing bytes. n == 0 is valid.
std::optional<Dataset> TryReadBinary(const std::string& path,
                                     std::string* error);

// Maps a binary dataset file read-only instead of copying it into RAM: the
// returned Dataset's coordinates point straight into the page cache (the
// 16-byte header leaves the f64 payload 8-byte aligned at offset 16), and the
// mapping is held alive by the dataset and all of its copies. Validation is
// identical to TryReadBinary, so the two loaders accept exactly the same
// files and yield bit-identical coordinates. Use for shard-at-a-time
// processing (src/shard) of datasets that exceed RAM: pages are faulted in on
// access and evictable, so resident memory tracks the working set rather
// than n. n == 0 is valid and yields an empty dataset without a mapping.
std::optional<Dataset> TryMapBinary(const std::string& path,
                                    std::string* error);
Dataset MapBinary(const std::string& path);

// Clustering persistence (binary): num_clusters, labels, core flags, extra
// memberships. Round-trips exactly.
void WriteClustering(const Clustering& c, const std::string& path);
Clustering ReadClustering(const std::string& path);

}  // namespace adbscan

#endif  // ADBSCAN_IO_DATASET_IO_H_
