#ifndef ADBSCAN_IO_TABLE_H_
#define ADBSCAN_IO_TABLE_H_

#include <cstdio>
#include <string>
#include <vector>

namespace adbscan {

// Fixed-width text table used by the benchmark harnesses to print the same
// rows/series the paper's figures report.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  void Print(FILE* out = stdout) const;

  // Formatting helpers shared by the harnesses.
  static std::string Num(double v, int precision = 3);
  static std::string Seconds(double s);  // "12.345s" / "skipped" for <0

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adbscan

#endif  // ADBSCAN_IO_TABLE_H_
