#ifndef ADBSCAN_BASELINES_GF_DBSCAN_H_
#define ADBSCAN_BASELINES_GF_DBSCAN_H_

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// A grid-shortcut DBSCAN in the style of GF-DBSCAN (Tsai and Wu 2009,
// reference [26] of the paper) — one of the "improved versions of the
// original DBSCAN algorithm" that, as Gunawan [11] showed and Section 1.1
// recounts, do NOT compute the precise DBSCAN result.
//
// The characteristic shortcut: the grid uses cell side ε (not ε/√d), and a
// point's ε-neighborhood is approximated as
//   - every point of its own cell, with NO distance check (same-cell pairs
//     can in truth be up to ε·√d apart), plus
//   - distance-checked points from the 3^d − 1 adjacent cells.
// No neighbor is missed (everything within ε lies in the 3^d block), but
// the same-cell overcount can promote non-core points to core and thereby
// merge or inflate clusters. tests/test_baselines.cc constructs a concrete
// counterexample, substantiating the paper's mis-claim discussion.
//
// Runs in the same seed-expansion loop as KDD96 over the grid.
Clustering GfStyleDbscan(const Dataset& data, const DbscanParams& params);

}  // namespace adbscan

#endif  // ADBSCAN_BASELINES_GF_DBSCAN_H_
