#include "baselines/sampling_dbscan.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "geom/point.h"
#include "index/kdtree.h"
#include "util/check.h"

namespace adbscan {
namespace {

constexpr int32_t kUnclassified = -2;

// Picks up to max_seeds expansion representatives from the unclassified
// neighbors: the farthest neighbors from q first (IDBSCAN's "border point
// sampling" idea — far samples best extend the cluster frontier).
std::vector<uint32_t> SampleSeeds(const Dataset& data, const double* q,
                                  std::vector<uint32_t> candidates,
                                  uint32_t max_seeds) {
  if (candidates.size() <= max_seeds) return candidates;
  std::partial_sort(
      candidates.begin(), candidates.begin() + max_seeds, candidates.end(),
      [&](uint32_t a, uint32_t b) {
        return SquaredDistance(q, data.point(a), data.dim()) >
               SquaredDistance(q, data.point(b), data.dim());
      });
  candidates.resize(max_seeds);
  return candidates;
}

}  // namespace

Clustering SamplingDbscan(const Dataset& data, const DbscanParams& params,
                          const SamplingDbscanOptions& options) {
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  ADB_CHECK(options.max_seeds_per_point >= 1);
  const size_t n = data.size();
  const size_t min_pts = static_cast<size_t>(params.min_pts);
  Clustering out;
  out.label.assign(n, kUnclassified);
  out.is_core.assign(n, 0);
  if (n == 0) return out;
  const KdTree index(data);

  int32_t next_cluster = 0;
  std::deque<uint32_t> seeds;
  for (uint32_t i = 0; i < n; ++i) {
    if (out.label[i] != kUnclassified) continue;
    std::vector<uint32_t> neighbors =
        index.RangeQuery(data.point(i), params.eps);
    if (neighbors.size() < min_pts) {
      out.label[i] = kNoise;
      continue;
    }
    const int32_t cluster = next_cluster++;
    out.is_core[i] = 1;
    out.label[i] = cluster;
    seeds.clear();
    std::vector<uint32_t> fresh;
    for (uint32_t r : neighbors) {
      if (r == i) continue;
      if (out.label[r] == kUnclassified) fresh.push_back(r);
      if (out.label[r] == kUnclassified || out.label[r] == kNoise) {
        out.label[r] = cluster;
      }
    }
    for (uint32_t r : SampleSeeds(data, data.point(i), std::move(fresh),
                                  options.max_seeds_per_point)) {
      seeds.push_back(r);
    }
    while (!seeds.empty()) {
      const uint32_t q = seeds.front();
      seeds.pop_front();
      std::vector<uint32_t> result =
          index.RangeQuery(data.point(q), params.eps);
      if (result.size() < min_pts) continue;
      out.is_core[q] = 1;
      std::vector<uint32_t> expandable;
      for (uint32_t r : result) {
        if (out.label[r] == kUnclassified) {
          expandable.push_back(r);
          out.label[r] = cluster;
        } else if (out.label[r] == kNoise) {
          out.label[r] = cluster;
        }
      }
      for (uint32_t r :
           SampleSeeds(data, data.point(q), std::move(expandable),
                       options.max_seeds_per_point)) {
        seeds.push_back(r);
      }
    }
  }
  out.num_clusters = next_cluster;
  return out;
}

}  // namespace adbscan
