#include "baselines/gf_dbscan.h"

#include <deque>
#include <vector>

#include "geom/kernels.h"
#include "geom/point.h"
#include "grid/grid.h"
#include "util/check.h"

namespace adbscan {
namespace {

constexpr int32_t kUnclassified = -2;

// The approximate neighborhood described in the header: own cell taken
// wholesale, adjacent cells distance-checked. In the CSR layout each
// neighbor cell is a zero-copy SoA block, so the distance filter runs
// through the batch kernel (same comparisons, same output order).
std::vector<uint32_t> ApproxNeighborhood(const Dataset& data,
                                         const Grid& grid, uint32_t id,
                                         double eps) {
  const uint32_t ci = grid.CellOfPoint(id);
  const Grid::IdSpan own = grid.cell_points(ci);
  std::vector<uint32_t> out(own.begin(), own.end());  // no distance check
  const double eps2 = eps * eps;
  const double* p = data.point(id);
  for (uint32_t cj : grid.EpsNeighbors(ci, eps)) {
    const Grid::IdSpan others = grid.cell_points(cj);
    simd::CollectWithin(p, grid.CellBlock(cj), eps2, others.ptr, &out);
  }
  return out;
}

}  // namespace

Clustering GfStyleDbscan(const Dataset& data, const DbscanParams& params) {
  ADB_CHECK(params.eps > 0.0);
  ADB_CHECK(params.min_pts >= 1);
  const size_t n = data.size();
  const size_t min_pts = static_cast<size_t>(params.min_pts);
  Clustering out;
  out.label.assign(n, kUnclassified);
  out.is_core.assign(n, 0);
  if (n == 0) return out;

  // Cell side ε: the 3^d block around a cell covers every true neighbor,
  // and EpsNeighbors with this side returns exactly the adjacent non-empty
  // cells.
  const Grid grid(data, params.eps);

  int32_t next_cluster = 0;
  std::deque<uint32_t> seeds;
  for (uint32_t i = 0; i < n; ++i) {
    if (out.label[i] != kUnclassified) continue;
    std::vector<uint32_t> neighbors =
        ApproxNeighborhood(data, grid, i, params.eps);
    if (neighbors.size() < min_pts) {
      out.label[i] = kNoise;
      continue;
    }
    const int32_t cluster = next_cluster++;
    out.is_core[i] = 1;
    out.label[i] = cluster;
    seeds.clear();
    for (uint32_t r : neighbors) {
      if (r == i) continue;
      if (out.label[r] == kUnclassified) seeds.push_back(r);
      if (out.label[r] == kUnclassified || out.label[r] == kNoise) {
        out.label[r] = cluster;
      }
    }
    while (!seeds.empty()) {
      const uint32_t q = seeds.front();
      seeds.pop_front();
      std::vector<uint32_t> result =
          ApproxNeighborhood(data, grid, q, params.eps);
      if (result.size() < min_pts) continue;
      out.is_core[q] = 1;
      for (uint32_t r : result) {
        if (out.label[r] == kUnclassified) {
          seeds.push_back(r);
          out.label[r] = cluster;
        } else if (out.label[r] == kNoise) {
          out.label[r] = cluster;
        }
      }
    }
  }
  out.num_clusters = next_cluster;
  return out;
}

}  // namespace adbscan
