#ifndef ADBSCAN_BASELINES_SAMPLING_DBSCAN_H_
#define ADBSCAN_BASELINES_SAMPLING_DBSCAN_H_

#include <cstdint>

#include "core/dbscan_types.h"
#include "geom/dataset.h"

namespace adbscan {

// A sampling-based DBSCAN in the style of IDBSCAN (Borah and Bhattacharyya
// 2004, reference [6] of the paper) — the other family of "improved" DBSCAN
// variants that Section 1.1 notes do NOT compute the precise result.
//
// The speedup idea: when a core point's neighborhood is retrieved, only a
// bounded number of *seed samples* (IDBSCAN picks points near the boundary
// of the ε-ball, approximated here by the most distant neighbors plus the
// query point's axis extremes) are enqueued for further expansion; the
// remaining neighbors are labeled but never expanded. This saves region
// queries — and can split a genuinely connected cluster when every sampled
// seed misses the bridge to its next segment, or leave core points
// undiscovered. tests/test_baselines.cc constructs such a counterexample.
struct SamplingDbscanOptions {
  // Maximum neighbors enqueued per expanded core point.
  uint32_t max_seeds_per_point = 8;
};

Clustering SamplingDbscan(const Dataset& data, const DbscanParams& params,
                          const SamplingDbscanOptions& options = {});

}  // namespace adbscan

#endif  // ADBSCAN_BASELINES_SAMPLING_DBSCAN_H_
