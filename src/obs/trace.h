#ifndef ADBSCAN_OBS_TRACE_H_
#define ADBSCAN_OBS_TRACE_H_

// Event tracing layer: timestamped duration spans, instant events, and
// counter-track samples, recorded into lock-free per-thread ring buffers
// and exported as Chrome trace-event JSON (see obs/trace_export.h), which
// Perfetto and chrome://tracing load directly.
//
// Where the metrics layer (obs/metrics.h) answers *how much* — aggregate
// counters, distributions, phase totals — this layer answers *when* and
// *on which thread*: every recorded event carries a nanosecond timestamp
// and the recording thread's id, so a run can be replayed as a timeline
// (per-worker task spans, steal instants, pool queue depth, pipeline
// phases, per-batch DynamicClusterer work).
//
// Design constraints (see DESIGN.md "Tracing"):
//   - Always compiled, runtime-gated: ADB_TRACE_* sites cost one relaxed
//     atomic load + branch when tracing is off, in every build
//     configuration (there is no compile-time toggle; the sites are cheap
//     enough to keep).
//   - Recording is lock-free and allocation-free on the hot path: each
//     thread owns a fixed-capacity ring buffer (created on its first
//     recorded event) and writes with plain stores. When the ring is full
//     the oldest events are overwritten (drop-oldest); the drop count is
//     reported per thread and as the `trace.dropped_events` metrics
//     counter at export time.
//   - Event names must be string literals (or otherwise live for the
//     process): the ring stores the pointer, never a copy.
//
// Threading contract: recording is safe from any thread. Reset() and
// Snapshot() require quiescence — no instrumented threads concurrently
// recording — which every caller in this repo satisfies because the task
// pool's Run() returns only after all workers have left the region (the
// worker's deregistration under the job mutex gives the happens-before
// edge), and harness export happens after the measured work.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace adbscan {
namespace obs {

enum class TraceEventKind : uint8_t {
  kSpan,     // duration: [ts_ns, ts_ns + dur_ns)
  kInstant,  // point event at ts_ns
  kCounter,  // counter-track sample: value at ts_ns
};

// One recorded event. 40 bytes; the ring buffer is an array of these.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t ts_ns = 0;   // nanoseconds since the recorder epoch (last Reset)
  uint64_t dur_ns = 0;  // spans only
  double value = 0.0;   // counters only
  TraceEventKind kind = TraceEventKind::kInstant;
};

// Everything one thread recorded (still alive or already exited).
struct ThreadTrace {
  int tid = 0;
  std::string label;     // e.g. "main", "pool-worker-3"
  uint64_t dropped = 0;  // events overwritten by ring wraparound
  std::vector<TraceEvent> events;  // oldest first
};

// Point-in-time copy of every thread's ring since the last Reset().
struct TraceSnapshot {
  std::vector<ThreadTrace> threads;  // sorted by tid

  uint64_t TotalDropped() const;
  size_t TotalEvents() const;
};

// Process-global trace recorder. All ADB_TRACE_* macros go through it.
class TraceRecorder {
 public:
  // Default per-thread ring capacity in events (~1.3 MiB per thread);
  // override process-wide with the ADBSCAN_TRACE_BUFFER environment
  // variable or per run with SetCapacity().
  static constexpr size_t kDefaultCapacity = size_t{1} << 15;

  // The singleton every macro goes through. Leaked on purpose so that
  // thread_local buffer destructors can retire into it at any thread's
  // exit.
  static TraceRecorder& Global();

  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Nanoseconds since the recorder epoch (process start / last Reset).
  static uint64_t NowNs();

  // Lock-free recording into the calling thread's ring buffer.
  void RecordSpan(const char* name, uint64_t start_ns, uint64_t dur_ns);
  void RecordInstant(const char* name);
  void RecordCounter(const char* name, double value);

  // Clears every ring (live and retired) and re-arms the epoch so the next
  // trace starts at ts 0. Requires quiescence. Applies a pending
  // SetCapacity() to live rings.
  void Reset();

  // Copies out every thread's events in record order. Requires quiescence.
  TraceSnapshot Snapshot();

  // Ring capacity (events per thread) for buffers created after this call
  // and for all live buffers at the next Reset(). Rounded up to a power of
  // two. Intended for tests; production sizing uses ADBSCAN_TRACE_BUFFER.
  void SetCapacity(size_t events_per_thread);
  size_t capacity() const;

  // Implementation type; public only so the thread_local holder in
  // trace.cc can name it.
  struct Buffer;

 private:
  TraceRecorder();
  Buffer& LocalBuffer();
  friend void SetTraceThreadLabel(std::string label);

  inline static std::atomic<bool> enabled_{false};
};

// Labels the calling thread in trace snapshots ("main", "pool-worker-2").
// Cheap and always safe to call, even with tracing disabled or before the
// thread has recorded anything; the label sticks to the thread's buffer
// when (and if) one is created.
void SetTraceThreadLabel(std::string label);

// RAII duration span: records one kSpan event covering its scope when
// tracing was enabled at construction. Free (two untaken branches) when
// disabled.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) {
    if (TraceRecorder::Enabled()) {
      name_ = name;
      start_ = TraceRecorder::NowNs();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr) {
      TraceRecorder::Global().RecordSpan(name_, start_,
                                         TraceRecorder::NowNs() - start_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_ = nullptr;
  uint64_t start_ = 0;
};

}  // namespace obs
}  // namespace adbscan

// Instrumentation macros. `name` must be a string literal (or otherwise
// live for the process). Always compiled; runtime-gated on
// TraceRecorder::Enabled().

#define ADB_TRACE_CONCAT_INNER_(a, b) a##b
#define ADB_TRACE_CONCAT_(a, b) ADB_TRACE_CONCAT_INNER_(a, b)

// Opens a duration span for the rest of the enclosing scope.
#define ADB_TRACE_SPAN(name) \
  ::adbscan::obs::TraceSpan ADB_TRACE_CONCAT_(adb_trace_span_, __LINE__)(name)

// Records a point event at the current time on the calling thread.
#define ADB_TRACE_INSTANT(name)                                   \
  do {                                                            \
    if (::adbscan::obs::TraceRecorder::Enabled()) {               \
      ::adbscan::obs::TraceRecorder::Global().RecordInstant(name); \
    }                                                             \
  } while (0)

// Records one sample of the counter track `name` (rendered by Perfetto as
// a stepped value-over-time track).
#define ADB_TRACE_COUNTER(name, value)                            \
  do {                                                            \
    if (::adbscan::obs::TraceRecorder::Enabled()) {               \
      ::adbscan::obs::TraceRecorder::Global().RecordCounter(      \
          name, static_cast<double>(value));                      \
    }                                                             \
  } while (0)

#endif  // ADBSCAN_OBS_TRACE_H_
