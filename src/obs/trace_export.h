#ifndef ADBSCAN_OBS_TRACE_EXPORT_H_
#define ADBSCAN_OBS_TRACE_EXPORT_H_

// Chrome trace-event JSON exporter for obs::TraceSnapshot, plus the small
// amount of flag/env plumbing every binary shares (--trace_json and the
// ADBSCAN_TRACE environment variable).
//
// Output schema (the "JSON Object Format" that Perfetto and
// chrome://tracing load):
//   {
//     "displayTimeUnit": "ms",
//     "traceEvents": [
//       {"ph":"M","pid":1,"tid":0,"name":"process_name",
//        "args":{"name":"adbscan"}},
//       {"ph":"M","pid":1,"tid":0,"name":"thread_name",
//        "args":{"name":"main"}},
//       {"ph":"X","pid":1,"tid":0,"ts":12.3,"dur":4.5,
//        "cat":"adbscan","name":"grid_build"},
//       {"ph":"i","pid":1,"tid":2,"ts":20.1,"s":"t","name":"pool.steal"},
//       {"ph":"C","pid":1,"tid":0,"ts":21.0,"name":"pool.queue_depth",
//        "args":{"value":7}}
//     ]
//   }
// Timestamps and durations are microseconds since the recorder epoch
// (Chrome's convention). Within each tid, non-metadata events are sorted
// by (ts, dur descending), so timestamps are monotone per thread and a
// parent span always precedes the children it encloses.

#include <string>

#include "obs/trace.h"

namespace adbscan {
namespace obs {

// Serializes a snapshot as one Chrome trace-event JSON document.
std::string ToChromeTraceJson(const TraceSnapshot& snapshot);

// Writes ToChromeTraceJson(snapshot) to `path` (truncating), and bumps the
// `trace.dropped_events` metrics counter by the snapshot's total drops.
// Returns false and leaves no partial file behind on open failure.
bool WriteChromeTraceJson(const std::string& path,
                          const TraceSnapshot& snapshot);

// The effective trace output path: `flag_value` when non-empty, else the
// ADBSCAN_TRACE environment variable, else "" (tracing off).
std::string ResolveTracePath(const std::string& flag_value);

// Labels the calling thread "main", enables the recorder, and clears any
// previously buffered events so the trace starts at ts 0.
void StartTracing();

// Snapshots the recorder and writes the trace to `path`, printing a
// one-line confirmation (plus a warning when events were dropped — raise
// ADBSCAN_TRACE_BUFFER if that happens). Returns false on write failure.
bool ExportTrace(const std::string& path);

}  // namespace obs
}  // namespace adbscan

#endif  // ADBSCAN_OBS_TRACE_EXPORT_H_
