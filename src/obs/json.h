#ifndef ADBSCAN_OBS_JSON_H_
#define ADBSCAN_OBS_JSON_H_

// Minimal JSON reader/writer support for the metrics export schema.
//
// This is not a general-purpose JSON library: it exists so that the
// exporter's output can be validated and round-tripped without external
// dependencies (tests/test_obs.cc, tools/metrics_validate). It parses the
// full JSON value grammar (objects, arrays, strings with escapes, numbers,
// booleans, null) but keeps numbers as doubles.

#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace adbscan {
namespace obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsBool() const { return kind == Kind::kBool; }

  // Member lookup on objects; null when missing or not an object.
  const JsonValue* Find(const std::string& key) const;
};

// Parses one JSON document; nullopt on any syntax error or trailing junk.
std::optional<JsonValue> ParseJson(const std::string& text);

// Escapes a string for embedding in a JSON document (no surrounding
// quotes).
std::string JsonEscape(const std::string& text);

// Formats a double the way the exporter does: shortest round-trippable-ish
// representation, never NaN/Inf (clamped to 0).
std::string JsonNumber(double value);

}  // namespace obs
}  // namespace adbscan

#endif  // ADBSCAN_OBS_JSON_H_
