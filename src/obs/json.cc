#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace adbscan {
namespace obs {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  std::optional<JsonValue> Parse() {
    SkipWs();
    JsonValue v;
    if (!ParseValue(&v)) return std::nullopt;
    SkipWs();
    if (pos_ != text_.size()) return std::nullopt;  // trailing junk
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(const char* lit) {
    size_t p = pos_;
    for (const char* c = lit; *c != '\0'; ++c, ++p) {
      if (p >= text_.size() || text_[p] != *c) return false;
    }
    pos_ = p;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return ParseObject(out);
      case '[':
        return ParseArray(out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = true;
        return ConsumeLiteral("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->bool_value = false;
        return ConsumeLiteral("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  bool ParseObject(JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    if (!Consume('{')) return false;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      return Consume('}');
    }
  }

  bool ParseArray(JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    if (!Consume('[')) return false;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      SkipWs();
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(',')) continue;
      return Consume(']');
    }
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out->push_back(esc);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          // The exporter never emits \u escapes; accept and decode the
          // BMP code point as UTF-8 so foreign files still parse.
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool ParseNumber(JsonValue* out) {
    const size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return false;
    const std::string token = text_.substr(begin, pos_ - begin);
    char* end = nullptr;
    out->kind = JsonValue::Kind::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    return end != nullptr && *end == '\0';
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string JsonNumber(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  return buf;
}

}  // namespace obs
}  // namespace adbscan
