#ifndef ADBSCAN_OBS_EXPORT_H_
#define ADBSCAN_OBS_EXPORT_H_

// JSON and CSV exporters for per-run metrics records.
//
// JSON schema (one record per line when appended to a file — JSON Lines):
//   {
//     "run": "<harness name>",          // e.g. "fig11_scale_n"
//     "dataset": "<dataset name>",      // e.g. "ss3d"
//     "algo": "<algorithm name>",       // e.g. "OurApprox"
//     "params": {"eps": "5000", ...},   // free-form string map
//     "total_ms": 123.4,                // harness-measured wall clock
//     "metrics_enabled": true,          // false in ADBSCAN_METRICS=0 builds
//     "phases": [{"name": "...", "ms": 1.2, "count": 1,
//                 "children": [...]}, ...],
//     "counters": {"graph.edges": 12, ...},
//     "distributions": {"index.range_candidates":
//                        {"count": 10, "sum": 123, "min": 1, "max": 40}}
//   }
//
// CSV schema (long format, one line per metric; stable across records with
// heterogeneous counter sets):
//   run,dataset,algo,total_ms,kind,name,value
// where kind is "phase" (name = "a/b/c" path, value = ms), "counter", or
// "distribution" (name suffixed ".count"/".sum"/".min"/".max").

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace adbscan {
namespace obs {

// Everything the exporters write about one benchmark/CLI run.
struct RunRecord {
  std::string run;
  std::string dataset;
  std::string algo;
  std::vector<std::pair<std::string, std::string>> params;
  double total_ms = 0.0;
  bool metrics_enabled = ADBSCAN_METRICS != 0;
  MetricsSnapshot metrics;
};

// Serializes a record as a single JSON line (no trailing newline).
std::string ToJson(const RunRecord& record);

// Parses a record back from its JSON line; nullopt on malformed input or a
// document missing required fields (run/dataset/algo/params/total_ms/
// phases/counters).
std::optional<RunRecord> RunRecordFromJson(const std::string& json);

// CSV header line matching ToCsv's rows.
std::string CsvHeader();

// Serializes a record as long-format CSV lines (each '\n'-terminated).
std::string ToCsv(const RunRecord& record);

// Appends one JSON line / CSV block to `path`, creating the file if needed
// (AppendCsv writes the header first when creating). Returns false and
// leaves the file untouched on open failure.
bool AppendJsonLine(const std::string& path, const RunRecord& record);
bool AppendCsv(const std::string& path, const RunRecord& record);

}  // namespace obs
}  // namespace adbscan

#endif  // ADBSCAN_OBS_EXPORT_H_
