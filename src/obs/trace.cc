#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>

namespace adbscan {
namespace obs {
namespace {

using Clock = std::chrono::steady_clock;

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Label requested via SetTraceThreadLabel before the thread's buffer
// exists; applied at buffer creation.
thread_local std::string tls_pending_label;

}  // namespace

namespace {
// The calling thread's buffer, if one has been created (set by the Buffer
// constructor, cleared by its destructor). Lets SetTraceThreadLabel
// re-label an existing buffer without forcing creation.
thread_local TraceRecorder::Buffer* tls_buffer = nullptr;
}  // namespace

uint64_t TraceSnapshot::TotalDropped() const {
  uint64_t total = 0;
  for (const ThreadTrace& t : threads) total += t.dropped;
  return total;
}

size_t TraceSnapshot::TotalEvents() const {
  size_t total = 0;
  for (const ThreadTrace& t : threads) total += t.events.size();
  return total;
}

// Registry state shared by all buffers. Kept out of the header (and out of
// the TraceRecorder object layout) so the header needs no <mutex>.
struct RecorderState {
  std::mutex mu;
  Clock::time_point epoch = Clock::now();
  size_t capacity = TraceRecorder::kDefaultCapacity;
  int next_tid = 0;
  std::vector<TraceRecorder::Buffer*> live;
  std::vector<ThreadTrace> retired;  // buffers of exited threads
};

namespace {

RecorderState& State() {
  // Leaked for the same reason as the recorder itself.
  static RecorderState* const s = new RecorderState();
  return *s;
}

}  // namespace

// One thread's fixed-capacity ring. Single-writer (the owning thread);
// readers (Reset/Snapshot) run under quiescence, so head and the payload
// need no atomics — the happens-before edge is the caller's (thread join,
// or the task pool's end-of-region protocol).
struct TraceRecorder::Buffer {
  Buffer() {
    RecorderState& s = State();
    const std::lock_guard<std::mutex> lock(s.mu);
    tid = s.next_tid++;
    label = tls_pending_label.empty() ? "thread-" + std::to_string(tid)
                                      : tls_pending_label;
    ring.resize(s.capacity);
    mask = s.capacity - 1;
    s.live.push_back(this);
    tls_buffer = this;
  }

  ~Buffer() {
    RecorderState& s = State();
    const std::lock_guard<std::mutex> lock(s.mu);
    s.retired.push_back(Extract());
    s.live.erase(std::remove(s.live.begin(), s.live.end(), this),
                 s.live.end());
    tls_buffer = nullptr;
  }

  void Push(const TraceEvent& event) {
    ring[static_cast<size_t>(head) & mask] = event;
    ++head;
  }

  // Copies out the ring contents in record order (requires quiescence or
  // the owning thread itself).
  ThreadTrace Extract() const {
    ThreadTrace out;
    out.tid = tid;
    out.label = label;
    const uint64_t cap = static_cast<uint64_t>(ring.size());
    out.dropped = head > cap ? head - cap : 0;
    const uint64_t begin = head > cap ? head - cap : 0;
    out.events.reserve(static_cast<size_t>(head - begin));
    for (uint64_t i = begin; i < head; ++i) {
      out.events.push_back(ring[static_cast<size_t>(i) & mask]);
    }
    return out;
  }

  int tid = 0;
  std::string label;
  std::vector<TraceEvent> ring;
  size_t mask = 0;
  uint64_t head = 0;  // total events ever pushed since the last Reset
};

TraceRecorder::TraceRecorder() {
  if (const char* env = std::getenv("ADBSCAN_TRACE_BUFFER")) {
    const long long v = std::atoll(env);
    if (v > 0) State().capacity = NextPow2(static_cast<size_t>(v));
  }
}

TraceRecorder& TraceRecorder::Global() {
  // Leaked so thread_local Buffer destructors can always reach State().
  static TraceRecorder* const g = new TraceRecorder();
  return *g;
}

uint64_t TraceRecorder::NowNs() {
  Global();  // ensure the epoch (in State()) is initialized
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           State().epoch)
          .count());
}

TraceRecorder::Buffer& TraceRecorder::LocalBuffer() {
  thread_local Buffer buffer;
  return buffer;
}

void TraceRecorder::RecordSpan(const char* name, uint64_t start_ns,
                               uint64_t dur_ns) {
  if (!Enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_ns = start_ns;
  e.dur_ns = dur_ns;
  e.kind = TraceEventKind::kSpan;
  LocalBuffer().Push(e);
}

void TraceRecorder::RecordInstant(const char* name) {
  if (!Enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_ns = NowNs();
  e.kind = TraceEventKind::kInstant;
  LocalBuffer().Push(e);
}

void TraceRecorder::RecordCounter(const char* name, double value) {
  if (!Enabled()) return;
  TraceEvent e;
  e.name = name;
  e.ts_ns = NowNs();
  e.value = value;
  e.kind = TraceEventKind::kCounter;
  LocalBuffer().Push(e);
}

void TraceRecorder::Reset() {
  RecorderState& s = State();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.retired.clear();
  for (Buffer* b : s.live) {
    b->head = 0;
    if (b->ring.size() != s.capacity) {
      b->ring.assign(s.capacity, TraceEvent());
      b->mask = s.capacity - 1;
    }
  }
  s.epoch = Clock::now();
}

TraceSnapshot TraceRecorder::Snapshot() {
  RecorderState& s = State();
  const std::lock_guard<std::mutex> lock(s.mu);
  TraceSnapshot snap;
  snap.threads = s.retired;
  for (const Buffer* b : s.live) snap.threads.push_back(b->Extract());
  std::sort(snap.threads.begin(), snap.threads.end(),
            [](const ThreadTrace& a, const ThreadTrace& b) {
              return a.tid < b.tid;
            });
  return snap;
}

void TraceRecorder::SetCapacity(size_t events_per_thread) {
  RecorderState& s = State();
  const std::lock_guard<std::mutex> lock(s.mu);
  s.capacity = NextPow2(std::max<size_t>(events_per_thread, 2));
}

size_t TraceRecorder::capacity() const {
  RecorderState& s = State();
  const std::lock_guard<std::mutex> lock(s.mu);
  return s.capacity;
}

void SetTraceThreadLabel(std::string label) {
  tls_pending_label = std::move(label);
  if (tls_buffer == nullptr) return;
  // Re-label the already-created buffer in place, under the registry lock
  // because Snapshot reads labels under the same lock.
  RecorderState& s = State();
  const std::lock_guard<std::mutex> lock(s.mu);
  tls_buffer->label = tls_pending_label;
}

}  // namespace obs
}  // namespace adbscan
