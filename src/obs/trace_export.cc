#include "obs/trace_export.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "obs/json.h"
#include "obs/metrics.h"

namespace adbscan {
namespace obs {
namespace {

// Microseconds with nanosecond resolution, Chrome's time unit.
std::string Us(uint64_t ns) {
  return JsonNumber(static_cast<double>(ns) / 1000.0);
}

void AppendEvent(const TraceEvent& e, int tid, std::string* out) {
  switch (e.kind) {
    case TraceEventKind::kSpan:
      *out += "{\"ph\":\"X\",\"pid\":1,\"tid\":" + std::to_string(tid) +
              ",\"ts\":" + Us(e.ts_ns) + ",\"dur\":" + Us(e.dur_ns) +
              ",\"cat\":\"adbscan\",\"name\":\"" + JsonEscape(e.name) +
              "\"}";
      break;
    case TraceEventKind::kInstant:
      *out += "{\"ph\":\"i\",\"pid\":1,\"tid\":" + std::to_string(tid) +
              ",\"ts\":" + Us(e.ts_ns) + ",\"s\":\"t\",\"name\":\"" +
              JsonEscape(e.name) + "\"}";
      break;
    case TraceEventKind::kCounter:
      *out += "{\"ph\":\"C\",\"pid\":1,\"tid\":" + std::to_string(tid) +
              ",\"ts\":" + Us(e.ts_ns) + ",\"name\":\"" + JsonEscape(e.name) +
              "\",\"args\":{\"value\":" + JsonNumber(e.value) + "}}";
      break;
  }
}

}  // namespace

std::string ToChromeTraceJson(const TraceSnapshot& snapshot) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };
  emit("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"adbscan\"}}");
  for (const ThreadTrace& t : snapshot.threads) {
    emit("{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(t.tid) +
         ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         JsonEscape(t.label) + "\"}}");
  }
  for (const ThreadTrace& t : snapshot.threads) {
    // Spans are recorded at scope exit, so a parent lands after its
    // children in ring order; re-sort by (ts, dur desc) so per-tid
    // timestamps are monotone and enclosing spans come first.
    std::vector<TraceEvent> events = t.events;
    std::stable_sort(events.begin(), events.end(),
                     [](const TraceEvent& a, const TraceEvent& b) {
                       if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                       return a.dur_ns > b.dur_ns;
                     });
    for (const TraceEvent& e : events) {
      std::string line;
      AppendEvent(e, t.tid, &line);
      emit(line);
    }
  }
  out += "\n]}\n";
  return out;
}

bool WriteChromeTraceJson(const std::string& path,
                          const TraceSnapshot& snapshot) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = ToChromeTraceJson(snapshot);
  std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  ADB_COUNT("trace.dropped_events", snapshot.TotalDropped());
  return true;
}

std::string ResolveTracePath(const std::string& flag_value) {
  if (!flag_value.empty()) return flag_value;
  if (const char* env = std::getenv("ADBSCAN_TRACE");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return "";
}

void StartTracing() {
  SetTraceThreadLabel("main");
  TraceRecorder::SetEnabled(true);
  TraceRecorder::Global().Reset();
}

bool ExportTrace(const std::string& path) {
  const TraceSnapshot snapshot = TraceRecorder::Global().Snapshot();
  if (!WriteChromeTraceJson(path, snapshot)) {
    std::fprintf(stderr, "failed to write trace to %s\n", path.c_str());
    return false;
  }
  std::printf("trace written to %s (%zu events across %zu threads)\n",
              path.c_str(), snapshot.TotalEvents(),
              snapshot.threads.size());
  if (const uint64_t dropped = snapshot.TotalDropped(); dropped > 0) {
    std::fprintf(stderr,
                 "warning: %llu trace events dropped (ring buffers "
                 "wrapped); raise ADBSCAN_TRACE_BUFFER\n",
                 static_cast<unsigned long long>(dropped));
  }
  return true;
}

}  // namespace obs
}  // namespace adbscan
