#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "util/check.h"

namespace adbscan {
namespace obs {
namespace {

// Histogram bucket for a sample: 0 for non-positive values, else the
// quarter-octave log2 bucket, clamped to the covered range.
int HistBucket(double value) {
  if (!(value > 0.0)) return 0;
  const int quarters = static_cast<int>(std::floor(
      std::log2(value) * DistStats::kHistPerOctave));
  const int idx = quarters - DistStats::kHistMinQuarters + 1;
  return std::clamp(idx, 1, DistStats::kHistBuckets - 1);
}

// Geometric midpoint of a log bucket (the estimate reported for samples
// that landed in it).
double HistRepresentative(int bucket) {
  const double quarters = static_cast<double>(
      bucket - 1 + DistStats::kHistMinQuarters) + 0.5;
  return std::exp2(quarters / DistStats::kHistPerOctave);
}

std::string ThisThreadIdString() {
  return std::to_string(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
}

}  // namespace

void DistStats::Merge(const DistStats& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
  for (int i = 0; i < kHistBuckets; ++i) hist[i] += other.hist[i];
}

void DistStats::Record(double value) {
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++hist[HistBucket(value)];
}

double DistStats::Quantile(double q) const {
  if (count == 0) return 0.0;
  uint64_t hist_total = 0;
  for (const uint64_t c : hist) hist_total += c;
  if (hist_total == 0) {
    // Parsed record: the histogram did not survive the JSON round trip,
    // only the canned quantiles did.
    if (!has_quantiles) return 0.0;
    if (q <= 0.75) return p50;
    if (q <= 0.97) return p95;
    return p99;
  }
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(hist_total))));
  uint64_t cum = 0;
  for (int b = 0; b < kHistBuckets; ++b) {
    cum += hist[b];
    if (cum >= rank) {
      const double rep = b == 0 ? min : HistRepresentative(b);
      return std::clamp(rep, min, max);
    }
  }
  return max;
}

double MetricsSnapshot::TotalPhaseMs() const {
  double total = 0.0;
  for (const PhaseNode& p : phases) total += p.ms;
  return total;
}

// Internal phase-tree node. Nodes are heap-allocated and stable for the
// lifetime of a run (pointers held by open ScopedPhase spans), then freed
// by Reset().
struct MetricsRegistry::PhaseNodeImpl {
  std::string name;
  double ms = 0.0;
  uint64_t count = 0;
  PhaseNodeImpl* parent = nullptr;
  std::vector<PhaseNodeImpl*> children;  // owned

  ~PhaseNodeImpl() {
    for (PhaseNodeImpl* c : children) delete c;
  }
};

namespace {

// The innermost open phase of the calling thread (null = root level).
thread_local MetricsRegistry::PhaseNodeImpl* tls_current_phase = nullptr;

PhaseNode ExportPhase(const MetricsRegistry::PhaseNodeImpl& node) {
  PhaseNode out;
  out.name = node.name;
  out.ms = node.ms;
  out.count = node.count;
  out.children.reserve(node.children.size());
  for (const MetricsRegistry::PhaseNodeImpl* c : node.children) {
    out.children.push_back(ExportPhase(*c));
  }
  return out;
}

}  // namespace

// Per-thread accumulation buffers. Indexed by counter/distribution id;
// grown lazily, merged into the registry totals on thread exit.
struct MetricsRegistry::Shard {
  explicit Shard(MetricsRegistry* owner) : owner_(owner) {
    const std::lock_guard<std::mutex> lock(owner_->mu_);
    owner_->live_shards_.push_back(this);
  }

  ~Shard() {
    const std::lock_guard<std::mutex> lock(owner_->mu_);
    owner_->MergeShardLocked(*this);
    auto& live = owner_->live_shards_;
    live.erase(std::remove(live.begin(), live.end(), this), live.end());
  }

  MetricsRegistry* owner_;
  std::vector<uint64_t> counts;
  std::vector<DistStats> dists;
};

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked so thread_local Shard destructors can always reach it.
  static MetricsRegistry* const g = new MetricsRegistry();
  return *g;
}

MetricsRegistry::Shard& MetricsRegistry::LocalShard() {
  thread_local Shard shard(this);
  return shard;
}

uint32_t MetricsRegistry::CounterId(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counter_ids_.find(name);
  if (it != counter_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(counter_names_.size());
  counter_ids_.emplace(name, id);
  counter_names_.push_back(name);
  counter_totals_.push_back(0);
  return id;
}

uint32_t MetricsRegistry::DistributionId(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = dist_ids_.find(name);
  if (it != dist_ids_.end()) return it->second;
  const uint32_t id = static_cast<uint32_t>(dist_names_.size());
  dist_ids_.emplace(name, id);
  dist_names_.push_back(name);
  dist_totals_.emplace_back();
  return id;
}

void MetricsRegistry::Add(uint32_t counter_id, uint64_t delta) {
  Shard& shard = LocalShard();
  if (counter_id >= shard.counts.size()) {
    shard.counts.resize(counter_id + 1, 0);
  }
  shard.counts[counter_id] += delta;
}

void MetricsRegistry::Record(uint32_t dist_id, double value) {
  Shard& shard = LocalShard();
  if (dist_id >= shard.dists.size()) {
    shard.dists.resize(dist_id + 1);
  }
  shard.dists[dist_id].Record(value);
}

void MetricsRegistry::MergeShardLocked(Shard& shard) {
  for (size_t i = 0; i < shard.counts.size(); ++i) {
    counter_totals_[i] += shard.counts[i];
    shard.counts[i] = 0;
  }
  for (size_t i = 0; i < shard.dists.size(); ++i) {
    dist_totals_[i].Merge(shard.dists[i]);
    shard.dists[i] = DistStats();
  }
}

void MetricsRegistry::Reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  if (!open_spans_.empty()) {
    std::string msg = "MetricsRegistry::Reset with " +
                      std::to_string(open_spans_.size()) +
                      " open phase span(s); first: '" +
                      open_spans_.front().first->name + "' opened on thread " +
                      open_spans_.front().second;
    ADB_CHECK_MSG(false, msg.c_str());
  }
  std::fill(counter_totals_.begin(), counter_totals_.end(), 0);
  std::fill(dist_totals_.begin(), dist_totals_.end(), DistStats());
  for (Shard* shard : live_shards_) {
    std::fill(shard->counts.begin(), shard->counts.end(), 0);
    std::fill(shard->dists.begin(), shard->dists.end(), DistStats());
  }
  for (PhaseNodeImpl* root : phase_roots_) delete root;
  phase_roots_.clear();
}

MetricsSnapshot MetricsRegistry::Snapshot() {
  const std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  std::vector<uint64_t> counts = counter_totals_;
  std::vector<DistStats> dists = dist_totals_;
  for (const Shard* shard : live_shards_) {
    for (size_t i = 0; i < shard->counts.size(); ++i) {
      counts[i] += shard->counts[i];
    }
    for (size_t i = 0; i < shard->dists.size(); ++i) {
      dists[i].Merge(shard->dists[i]);
    }
  }
  for (size_t i = 0; i < counter_names_.size(); ++i) {
    snap.counters.emplace(counter_names_[i], counts[i]);
  }
  for (size_t i = 0; i < dist_names_.size(); ++i) {
    if (dists[i].count > 0) snap.distributions.emplace(dist_names_[i], dists[i]);
  }
  snap.phases.reserve(phase_roots_.size());
  for (const PhaseNodeImpl* root : phase_roots_) {
    snap.phases.push_back(ExportPhase(*root));
  }
  return snap;
}

void* MetricsRegistry::EnterPhase(const char* name) {
  const std::lock_guard<std::mutex> lock(mu_);
  PhaseNodeImpl* parent = tls_current_phase;
  std::vector<PhaseNodeImpl*>& siblings =
      parent != nullptr ? parent->children : phase_roots_;
  PhaseNodeImpl* node = nullptr;
  for (PhaseNodeImpl* sibling : siblings) {
    if (sibling->name == name) {
      node = sibling;
      break;
    }
  }
  if (node == nullptr) {
    node = new PhaseNodeImpl();
    node->name = name;
    node->parent = parent;
    siblings.push_back(node);
  }
  ++node->count;
  tls_current_phase = node;
  open_spans_.emplace_back(node, ThisThreadIdString());
  return node;
}

void MetricsRegistry::ExitPhase(void* token, double elapsed_ms) {
  const std::lock_guard<std::mutex> lock(mu_);
  PhaseNodeImpl* node = static_cast<PhaseNodeImpl*>(token);
  node->ms += elapsed_ms;
  tls_current_phase = node->parent;
  // Phases close LIFO per thread, so the last entry for this node is ours.
  for (auto it = open_spans_.rbegin(); it != open_spans_.rend(); ++it) {
    if (it->first == node) {
      open_spans_.erase(std::next(it).base());
      break;
    }
  }
}

ScopedPhase::ScopedPhase(const char* name) {
  if (TraceRecorder::Enabled()) {
    trace_name_ = name;
    trace_start_ns_ = TraceRecorder::NowNs();
  }
  if (!MetricsRegistry::Enabled()) return;
  token_ = MetricsRegistry::Global().EnterPhase(name);
  start_ = Clock::now();
}

ScopedPhase::~ScopedPhase() {
  if (trace_name_ != nullptr) {
    TraceRecorder::Global().RecordSpan(
        trace_name_, trace_start_ns_,
        TraceRecorder::NowNs() - trace_start_ns_);
  }
  if (token_ == nullptr) return;
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start_).count();
  MetricsRegistry::Global().ExitPhase(token_, elapsed_ms);
}

}  // namespace obs
}  // namespace adbscan
