#ifndef ADBSCAN_OBS_METRICS_H_
#define ADBSCAN_OBS_METRICS_H_

// Observability layer: named monotonic work counters, value distributions,
// and nested RAII phase spans, aggregated into a per-run metrics snapshot.
//
// Design constraints (see DESIGN.md "Observability"):
//   - Hot-path cost when compiled in but runtime-disabled: one relaxed
//     atomic load + branch per ADB_COUNT/ADB_RECORD site.
//   - Hot-path cost when enabled: one thread-local array add, no locks and
//     no cross-thread contention. Each thread accumulates into its own
//     shard; shards flush into the global totals when the thread exits, so
//     counts from ParallelFor workers (which are joined before results are
//     read) aggregate losslessly.
//   - Compiled out entirely with ADBSCAN_METRICS=0 (CMake option
//     -DADBSCAN_METRICS=OFF): every macro expands to nothing and the
//     instrumented pipelines build and link unchanged.
//
// Threading contract: Add/Record are safe from any thread. Reset() and
// Snapshot() require quiescence — no instrumented worker threads running —
// which every caller in this repo satisfies because ParallelFor joins its
// workers before returning. Phase spans (ADB_PHASE) may be opened on any
// thread but are intended for the sequential driver code of a pipeline;
// spans opened with no enclosing span become root-level phases.

#ifndef ADBSCAN_METRICS
#define ADBSCAN_METRICS 1
#endif

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace adbscan {
namespace obs {

// Aggregate statistics of a value distribution (ADB_RECORD sites):
// count/sum/min/max plus a fixed-bucket log histogram for streaming
// quantile estimates (p50/p95/p99 in the export, tail latency for
// stream/server-style workloads).
//
// The histogram has 128 quarter-octave buckets covering [2^-8, 2^24)
// (bucket ratio 2^0.25, so a quantile estimate is within ~9% of the true
// value) plus one bucket for non-positive samples; out-of-range values
// clamp into the edge buckets, and estimates are clamped to [min, max].
struct DistStats {
  static constexpr int kHistBuckets = 129;   // [0]: v <= 0; [1..128]: log
  static constexpr int kHistPerOctave = 4;   // quarter-octave resolution
  static constexpr int kHistMinQuarters = -32;  // bucket 1 floor: 2^(-8)

  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::array<uint64_t, kHistBuckets> hist{};

  // Parsed-record quantiles (RunRecordFromJson); live stats estimate from
  // the histogram instead (see Quantile).
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  bool has_quantiles = false;

  void Merge(const DistStats& other);
  void Record(double value);

  // Histogram quantile estimate, clamped to [min, max]. For records parsed
  // back from JSON (empty histogram), returns the stored p50/p95/p99 field
  // nearest to q. Returns 0 when empty.
  double Quantile(double q) const;
};

// One node of the per-run phase tree: accumulated wall-clock milliseconds
// and entry count, with nested children. Re-entering a phase name under the
// same parent accumulates into the same node.
struct PhaseNode {
  std::string name;
  double ms = 0.0;
  uint64_t count = 0;
  std::vector<PhaseNode> children;
};

// Point-in-time aggregation of everything recorded since the last Reset().
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, DistStats> distributions;
  std::vector<PhaseNode> phases;  // root-level phases, in first-entry order

  // Sum of root-level phase milliseconds (for phase-coverage checks).
  double TotalPhaseMs() const;
};

// Process-global registry of counters, distributions, and the phase tree.
// Counter ids are stable for the process lifetime; values reset per run.
class MetricsRegistry {
 public:
  // The singleton every macro goes through. Leaked on purpose so that
  // thread_local shard destructors can flush into it at any thread's exit.
  static MetricsRegistry& Global();

  static bool Enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  // Registers (or looks up) a counter / distribution by name. Ids are dense
  // and process-stable. Cheap enough for per-site static init, not for hot
  // loops — the macros cache the id in a function-local static.
  uint32_t CounterId(const std::string& name);
  uint32_t DistributionId(const std::string& name);

  // Lock-free accumulation into the calling thread's shard.
  void Add(uint32_t counter_id, uint64_t delta);
  void Record(uint32_t dist_id, double value);

  // Zeroes every counter, distribution, and the phase tree. Requires
  // quiescence and no open phase spans; aborts naming the offending phase
  // (and its thread) when a span is still open.
  void Reset();

  // Aggregates totals + all live thread shards. Requires quiescence.
  MetricsSnapshot Snapshot();

  // Phase-span plumbing used by ScopedPhase; token is an internal node.
  void* EnterPhase(const char* name);
  void ExitPhase(void* token, double elapsed_ms);

  // Implementation types; public only so file-scope helpers in metrics.cc
  // (thread-local span pointer, tree export) can name them.
  struct PhaseNodeImpl;
  struct Shard;

 private:
  MetricsRegistry() = default;
  Shard& LocalShard();
  void MergeShardLocked(Shard& shard);  // requires mu_ held

  inline static std::atomic<bool> enabled_{false};

  std::mutex mu_;
  std::map<std::string, uint32_t> counter_ids_;
  std::map<std::string, uint32_t> dist_ids_;
  std::vector<std::string> counter_names_;
  std::vector<std::string> dist_names_;
  std::vector<uint64_t> counter_totals_;
  std::vector<DistStats> dist_totals_;
  std::vector<Shard*> live_shards_;
  std::vector<PhaseNodeImpl*> phase_roots_;  // owned

  // Currently open phase spans across all threads, for Reset()'s
  // open-phase diagnostic: (node, human-readable thread id).
  std::vector<std::pair<PhaseNodeImpl*, std::string>> open_spans_;
};

// RAII phase span. Nesting follows C++ scope; spans opened while another
// span is active on the same thread become its children in the phase tree.
// Also records a trace duration span under the same name when tracing is
// enabled (obs/trace.h), so trace timelines and metrics phase totals share
// one vocabulary. Inactive (and free) when both layers are
// runtime-disabled at entry.
class ScopedPhase {
 public:
  explicit ScopedPhase(const char* name);
  ~ScopedPhase();

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  using Clock = std::chrono::steady_clock;
  void* token_ = nullptr;  // null when runtime-disabled at entry
  Clock::time_point start_;
  const char* trace_name_ = nullptr;  // null when tracing disabled at entry
  uint64_t trace_start_ns_ = 0;
};

}  // namespace obs
}  // namespace adbscan

// Instrumentation macros. `name` must be a string literal (or otherwise
// live for the process); the id lookup happens once per call site.
#if ADBSCAN_METRICS

#define ADB_OBS_CONCAT_INNER_(a, b) a##b
#define ADB_OBS_CONCAT_(a, b) ADB_OBS_CONCAT_INNER_(a, b)

// Adds `delta` to the monotonic counter `name`. A delta of 0 still
// registers the counter, so per-algorithm counter sets are stable in the
// exported schema even when a code path never fires.
#define ADB_COUNT(name, delta)                                               \
  do {                                                                       \
    if (::adbscan::obs::MetricsRegistry::Enabled()) {                        \
      static const uint32_t adb_obs_id_ =                                    \
          ::adbscan::obs::MetricsRegistry::Global().CounterId(name);         \
      ::adbscan::obs::MetricsRegistry::Global().Add(                         \
          adb_obs_id_, static_cast<uint64_t>(delta));                        \
    }                                                                        \
  } while (0)

// Records one sample of the value distribution `name` (count/sum/min/max).
#define ADB_RECORD(name, value)                                              \
  do {                                                                       \
    if (::adbscan::obs::MetricsRegistry::Enabled()) {                        \
      static const uint32_t adb_obs_id_ =                                    \
          ::adbscan::obs::MetricsRegistry::Global().DistributionId(name);    \
      ::adbscan::obs::MetricsRegistry::Global().Record(                      \
          adb_obs_id_, static_cast<double>(value));                          \
    }                                                                        \
  } while (0)

// Opens a phase span for the rest of the enclosing scope.
#define ADB_PHASE(name) \
  ::adbscan::obs::ScopedPhase ADB_OBS_CONCAT_(adb_obs_phase_, __LINE__)(name)

#else  // !ADBSCAN_METRICS

#define ADB_COUNT(name, delta) \
  do {                         \
  } while (0)
#define ADB_RECORD(name, value) \
  do {                          \
  } while (0)
// Tracing is always compiled (obs/trace.h has no compile-time toggle), so
// phase sites keep emitting trace spans even with metrics compiled out —
// only the metrics side of ADB_PHASE disappears.
#define ADB_PHASE(name) ADB_TRACE_SPAN(name)

#endif  // ADBSCAN_METRICS

#endif  // ADBSCAN_OBS_METRICS_H_
