#include "obs/export.h"

#include <cstdio>
#include <sys/stat.h>

#include "obs/json.h"

namespace adbscan {
namespace obs {
namespace {

void AppendPhaseJson(const PhaseNode& phase, std::string* out) {
  *out += "{\"name\":\"" + JsonEscape(phase.name) + "\"";
  *out += ",\"ms\":" + JsonNumber(phase.ms);
  *out += ",\"count\":" + std::to_string(phase.count);
  *out += ",\"children\":[";
  for (size_t i = 0; i < phase.children.size(); ++i) {
    if (i > 0) *out += ',';
    AppendPhaseJson(phase.children[i], out);
  }
  *out += "]}";
}

bool PhaseFromJson(const JsonValue& v, PhaseNode* out) {
  const JsonValue* name = v.Find("name");
  const JsonValue* ms = v.Find("ms");
  const JsonValue* count = v.Find("count");
  const JsonValue* children = v.Find("children");
  if (name == nullptr || !name->IsString() || ms == nullptr ||
      !ms->IsNumber() || count == nullptr || !count->IsNumber() ||
      children == nullptr || !children->IsArray()) {
    return false;
  }
  out->name = name->string;
  out->ms = ms->number;
  out->count = static_cast<uint64_t>(count->number);
  for (const JsonValue& child : children->array) {
    PhaseNode node;
    if (!PhaseFromJson(child, &node)) return false;
    out->children.push_back(std::move(node));
  }
  return true;
}

void AppendPhaseCsv(const std::string& prefix, const PhaseNode& phase,
                    const std::string& row_head, std::string* out) {
  const std::string path =
      prefix.empty() ? phase.name : prefix + "/" + phase.name;
  *out += row_head + ",phase," + path + ',' + JsonNumber(phase.ms) + '\n';
  for (const PhaseNode& child : phase.children) {
    AppendPhaseCsv(path, child, row_head, out);
  }
}

// CSV fields are metric names and numbers, never user text with commas;
// quote defensively anyway when a comma or quote sneaks in.
std::string CsvField(const std::string& text) {
  if (text.find_first_of(",\"\n") == std::string::npos) return text;
  std::string out = "\"";
  for (const char c : text) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string ToJson(const RunRecord& record) {
  std::string out = "{\"run\":\"" + JsonEscape(record.run) + "\"";
  out += ",\"dataset\":\"" + JsonEscape(record.dataset) + "\"";
  out += ",\"algo\":\"" + JsonEscape(record.algo) + "\"";
  out += ",\"params\":{";
  for (size_t i = 0; i < record.params.size(); ++i) {
    if (i > 0) out += ',';
    out += "\"" + JsonEscape(record.params[i].first) + "\":\"" +
           JsonEscape(record.params[i].second) + "\"";
  }
  out += "},\"total_ms\":" + JsonNumber(record.total_ms);
  out += ",\"metrics_enabled\":";
  out += record.metrics_enabled ? "true" : "false";
  out += ",\"phases\":[";
  for (size_t i = 0; i < record.metrics.phases.size(); ++i) {
    if (i > 0) out += ',';
    AppendPhaseJson(record.metrics.phases[i], &out);
  }
  out += "],\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : record.metrics.counters) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":" + std::to_string(value);
  }
  out += "},\"distributions\":{";
  first = true;
  for (const auto& [name, d] : record.metrics.distributions) {
    if (!first) out += ',';
    first = false;
    out += "\"" + JsonEscape(name) + "\":{\"count\":" +
           std::to_string(d.count) + ",\"sum\":" + JsonNumber(d.sum) +
           ",\"min\":" + JsonNumber(d.min) + ",\"max\":" + JsonNumber(d.max) +
           ",\"p50\":" + JsonNumber(d.Quantile(0.50)) +
           ",\"p95\":" + JsonNumber(d.Quantile(0.95)) +
           ",\"p99\":" + JsonNumber(d.Quantile(0.99)) + "}";
  }
  out += "}}";
  return out;
}

std::optional<RunRecord> RunRecordFromJson(const std::string& json) {
  const std::optional<JsonValue> doc = ParseJson(json);
  if (!doc.has_value() || !doc->IsObject()) return std::nullopt;

  const JsonValue* run = doc->Find("run");
  const JsonValue* dataset = doc->Find("dataset");
  const JsonValue* algo = doc->Find("algo");
  const JsonValue* params = doc->Find("params");
  const JsonValue* total_ms = doc->Find("total_ms");
  const JsonValue* phases = doc->Find("phases");
  const JsonValue* counters = doc->Find("counters");
  if (run == nullptr || !run->IsString() || dataset == nullptr ||
      !dataset->IsString() || algo == nullptr || !algo->IsString() ||
      params == nullptr || !params->IsObject() || total_ms == nullptr ||
      !total_ms->IsNumber() || phases == nullptr || !phases->IsArray() ||
      counters == nullptr || !counters->IsObject()) {
    return std::nullopt;
  }

  RunRecord record;
  record.run = run->string;
  record.dataset = dataset->string;
  record.algo = algo->string;
  record.total_ms = total_ms->number;
  for (const auto& [key, value] : params->object) {
    if (!value.IsString()) return std::nullopt;
    record.params.emplace_back(key, value.string);
  }
  const JsonValue* enabled = doc->Find("metrics_enabled");
  record.metrics_enabled =
      enabled != nullptr && enabled->IsBool() && enabled->bool_value;
  for (const JsonValue& phase : phases->array) {
    PhaseNode node;
    if (!PhaseFromJson(phase, &node)) return std::nullopt;
    record.metrics.phases.push_back(std::move(node));
  }
  for (const auto& [name, value] : counters->object) {
    if (!value.IsNumber()) return std::nullopt;
    record.metrics.counters.emplace(name,
                                    static_cast<uint64_t>(value.number));
  }
  if (const JsonValue* dists = doc->Find("distributions")) {
    if (!dists->IsObject()) return std::nullopt;
    for (const auto& [name, value] : dists->object) {
      const JsonValue* count = value.Find("count");
      const JsonValue* sum = value.Find("sum");
      const JsonValue* min = value.Find("min");
      const JsonValue* max = value.Find("max");
      if (count == nullptr || !count->IsNumber() || sum == nullptr ||
          !sum->IsNumber() || min == nullptr || !min->IsNumber() ||
          max == nullptr || !max->IsNumber()) {
        return std::nullopt;
      }
      DistStats d;
      d.count = static_cast<uint64_t>(count->number);
      d.sum = sum->number;
      d.min = min->number;
      d.max = max->number;
      const JsonValue* p50 = value.Find("p50");
      const JsonValue* p95 = value.Find("p95");
      const JsonValue* p99 = value.Find("p99");
      if (p50 != nullptr && p50->IsNumber() && p95 != nullptr &&
          p95->IsNumber() && p99 != nullptr && p99->IsNumber()) {
        d.p50 = p50->number;
        d.p95 = p95->number;
        d.p99 = p99->number;
        d.has_quantiles = true;
      }
      record.metrics.distributions.emplace(name, d);
    }
  }
  return record;
}

std::string CsvHeader() { return "run,dataset,algo,total_ms,kind,name,value"; }

std::string ToCsv(const RunRecord& record) {
  const std::string row_head = CsvField(record.run) + ',' +
                               CsvField(record.dataset) + ',' +
                               CsvField(record.algo) + ',' +
                               JsonNumber(record.total_ms);
  std::string out;
  for (const PhaseNode& phase : record.metrics.phases) {
    AppendPhaseCsv("", phase, row_head, &out);
  }
  for (const auto& [name, value] : record.metrics.counters) {
    out += row_head + ",counter," + CsvField(name) + ',' +
           std::to_string(value) + '\n';
  }
  for (const auto& [name, d] : record.metrics.distributions) {
    out += row_head + ",distribution," + CsvField(name) +
           ".count," + std::to_string(d.count) + '\n';
    out += row_head + ",distribution," + CsvField(name) + ".sum," +
           JsonNumber(d.sum) + '\n';
    out += row_head + ",distribution," + CsvField(name) + ".min," +
           JsonNumber(d.min) + '\n';
    out += row_head + ",distribution," + CsvField(name) + ".max," +
           JsonNumber(d.max) + '\n';
    out += row_head + ",distribution," + CsvField(name) + ".p50," +
           JsonNumber(d.Quantile(0.50)) + '\n';
    out += row_head + ",distribution," + CsvField(name) + ".p95," +
           JsonNumber(d.Quantile(0.95)) + '\n';
    out += row_head + ",distribution," + CsvField(name) + ".p99," +
           JsonNumber(d.Quantile(0.99)) + '\n';
  }
  return out;
}

bool AppendJsonLine(const std::string& path, const RunRecord& record) {
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  const std::string line = ToJson(record);
  std::fwrite(line.data(), 1, line.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

bool AppendCsv(const std::string& path, const RunRecord& record) {
  const bool fresh = !FileExists(path);
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  if (fresh) {
    const std::string header = CsvHeader();
    std::fwrite(header.data(), 1, header.size(), f);
    std::fputc('\n', f);
  }
  const std::string body = ToCsv(record);
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace obs
}  // namespace adbscan
