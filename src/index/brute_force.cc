#include "index/brute_force.h"

#include <numeric>

#include "geom/point.h"

namespace adbscan {

BruteForceIndex::BruteForceIndex(const Dataset& data) : data_(&data) {
  ids_.resize(data.size());
  std::iota(ids_.begin(), ids_.end(), 0u);
}

BruteForceIndex::BruteForceIndex(const Dataset& data, std::vector<uint32_t> ids)
    : data_(&data), ids_(std::move(ids)) {}

std::vector<uint32_t> BruteForceIndex::RangeQuery(const double* q,
                                                  double radius) const {
  std::vector<uint32_t> out;
  const double r2 = radius * radius;
  for (uint32_t id : ids_) {
    if (SquaredDistance(q, data_->point(id), data_->dim()) <= r2) {
      out.push_back(id);
    }
  }
  return out;
}

size_t BruteForceIndex::CountInBall(const double* q, double radius,
                                    size_t stop_at) const {
  size_t count = 0;
  const double r2 = radius * radius;
  for (uint32_t id : ids_) {
    if (SquaredDistance(q, data_->point(id), data_->dim()) <= r2) {
      if (++count >= stop_at) return count;
    }
  }
  return count;
}

bool BruteForceIndex::AnyWithin(const double* q, double radius) const {
  return CountInBall(q, radius, 1) > 0;
}

}  // namespace adbscan
