#include "index/brute_force.h"

#include <numeric>

#include "geom/kernels.h"
#include "geom/point.h"

namespace adbscan {

BruteForceIndex::BruteForceIndex(const Dataset& data)
    : data_(&data), soa_(data.Soa()) {
  ids_.resize(data.size());
  std::iota(ids_.begin(), ids_.end(), 0u);
}

BruteForceIndex::BruteForceIndex(const Dataset& data, std::vector<uint32_t> ids)
    : data_(&data),
      ids_(std::move(ids)),
      soa_(std::make_shared<const simd::SoaBlock>(data, ids_.data(),
                                                  ids_.size())) {}

std::vector<uint32_t> BruteForceIndex::RangeQuery(const double* q,
                                                  double radius) const {
  std::vector<uint32_t> out;
  simd::CollectWithin(q, soa_->span(), radius * radius, ids_.data(), &out);
  return out;
}

size_t BruteForceIndex::CountInBall(const double* q, double radius,
                                    size_t stop_at) const {
  return simd::CountWithin(q, soa_->span(), radius * radius, stop_at);
}

bool BruteForceIndex::AnyWithin(const double* q, double radius) const {
  return CountInBall(q, radius, 1) > 0;
}

}  // namespace adbscan
