#ifndef ADBSCAN_INDEX_SPATIAL_INDEX_H_
#define ADBSCAN_INDEX_SPATIAL_INDEX_H_

#include <cstdint>
#include <vector>

namespace adbscan {

// Common interface of the spatial indexes used for ε range queries.
//
// The KDD'96 baseline issues one RangeQuery per point, which is where its
// O(n²) worst case comes from (footnote 1 of the paper): the queries' total
// output size is unbounded by anything smaller than n per query.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  // Ids of all indexed points within closed distance `radius` of q.
  virtual std::vector<uint32_t> RangeQuery(const double* q,
                                           double radius) const = 0;

  // Number of indexed points within `radius` of q; stops counting early once
  // `stop_at` is reached (used for MinPts core tests).
  virtual size_t CountInBall(const double* q, double radius,
                             size_t stop_at) const = 0;

  // True iff some indexed point lies within `radius` of q.
  virtual bool AnyWithin(const double* q, double radius) const = 0;

  virtual size_t size() const = 0;
};

}  // namespace adbscan

#endif  // ADBSCAN_INDEX_SPATIAL_INDEX_H_
