#ifndef ADBSCAN_INDEX_RTREE_H_
#define ADBSCAN_INDEX_RTREE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "geom/box.h"
#include "geom/dataset.h"
#include "geom/soa.h"
#include "index/spatial_index.h"

namespace adbscan {

// R-tree over a Dataset, standing in for the R*-tree the original KDD'96
// DBSCAN implementation used as its region-query substrate (see DESIGN.md,
// substitution table).
//
// Construction paths:
//  - bulk load (default): Sort-Tile-Recursive packing, which yields tight,
//    non-overlapping leaves for static data, O(n log n);
//  - incremental Insert(): ChooseLeaf by least enlargement; on overflow,
//    either Guttman's quadratic split or the R* treatment (Beckmann et al.
//    1990): one round of forced reinsertion of the 30% entries farthest
//    from the leaf center, then the R* topological split (axis by minimum
//    margin sum, distribution by minimum overlap).
//
// Queries are closed Euclidean balls, matching the ε range queries DBSCAN
// issues.
struct RTreeOptions {
  enum class Split { kQuadratic, kRStar };
  Split split = Split::kRStar;
  // R*: reinsert this fraction of a leaf once per insertion before
  // resorting to a split (0 disables; applied at leaf level).
  double reinsert_fraction = 0.3;
};

class RTree : public SpatialIndex {
 public:
  static constexpr uint32_t kMaxEntries = 32;
  static constexpr uint32_t kMinEntries = 12;  // ~40% of kMaxEntries

  // Bulk loads all points of `data` (STR). The dataset must outlive the tree.
  explicit RTree(const Dataset& data);

  // Bulk loads the subset `ids` of `data`.
  RTree(const Dataset& data, std::vector<uint32_t> ids);

  // Creates an empty tree for incremental Insert().
  static RTree CreateEmpty(const Dataset& data, RTreeOptions options = {});

  // Inserts point `id` of the dataset.
  void Insert(uint32_t id);

  std::vector<uint32_t> RangeQuery(const double* q,
                                   double radius) const override;
  size_t CountInBall(const double* q, double radius,
                     size_t stop_at) const override;
  bool AnyWithin(const double* q, double radius) const override;
  size_t size() const override { return num_points_; }

  // Tree height (0 for an empty tree, 1 for a single leaf root).
  int Height() const;

  // Validates structural invariants (boxes contain children, fan-out bounds);
  // test-only helper, aborts on violation.
  void CheckInvariants() const;

 private:
  struct Node {
    Box box;
    bool leaf = true;
    // Leaf: point ids; internal: child node indices.
    std::vector<uint32_t> entries;
    // Leaf: start of this leaf's lane-aligned segment in leaf_soa_ (valid
    // only while leaf_soa_valid_).
    uint32_t soa_begin = 0;
  };

  const double* PointOf(uint32_t id) const { return data_->point(id); }
  Box PointBox(uint32_t id) const;
  Box NodeEntryBox(const Node& node, uint32_t i) const;

  void BulkLoad(std::vector<uint32_t> ids);
  // Packs every leaf's entries into one shared SoA block, each leaf a
  // lane-aligned segment (padding replicates the leaf's last entry) so leaf
  // scans run through the batch kernels. Called after BulkLoad; Insert()
  // mutates leaves, so it invalidates the block and the next query rebuilds
  // it (EnsureLeafSoa). Results are unchanged either way: the kernels use
  // the same IEEE operations as the scalar loop they replaced.
  void BuildLeafSoa();
  // Rebuild-on-next-query after Insert() invalidated the block. Any number
  // of queries may race here: the first through the mutex rebuilds, the
  // rest wait, and once the flag is set (release store) the fast path reads
  // the published block with an acquire load. Inserts themselves still must
  // not overlap with queries — the usual container rule; this only makes
  // concurrent READS safe, including the first ones after an Insert.
  void EnsureLeafSoa() const {
    if (leaf_soa_sync_->valid.load(std::memory_order_acquire)) return;
    const std::lock_guard<std::mutex> lock(leaf_soa_sync_->rebuild_mutex);
    if (leaf_soa_sync_->valid.load(std::memory_order_relaxed)) return;
    const_cast<RTree*>(this)->BuildLeafSoa();
  }
  simd::SoaSpan LeafSpan(const Node& node) const {
    return leaf_soa_.span(node.soa_begin, node.entries.size());
  }
  // Packs `items` (point ids if `leaf`, else node indices) into nodes of
  // fan-out <= kMaxEntries using STR; returns the new node indices.
  std::vector<uint32_t> PackLevel(std::vector<uint32_t> items, bool leaf);

  // Returns the leaf chosen for inserting box b, recording the root-to-leaf
  // path in *path.
  uint32_t ChooseLeaf(const Box& b, std::vector<uint32_t>* path);
  // Splits nodes_[node_idx] (which has > kMaxEntries entries) in place;
  // returns the index of the newly created sibling.
  uint32_t SplitNode(uint32_t node_idx);
  uint32_t SplitNodeQuadratic(uint32_t node_idx);
  uint32_t SplitNodeRStar(uint32_t node_idx);
  // R* forced reinsertion from an overflowing leaf; returns the evicted
  // point ids (reinserted by the caller after the tree is consistent).
  std::vector<uint32_t> EvictForReinsert(uint32_t leaf_idx);
  void RecomputeBox(uint32_t node_idx);
  void InsertImpl(uint32_t id, bool allow_reinsert);

  const Dataset* data_;
  RTreeOptions options_;
  std::vector<Node> nodes_;
  uint32_t root_ = kInvalid;
  size_t num_points_ = 0;
  simd::SoaBlock leaf_soa_;
  // Held behind a unique_ptr so the tree stays movable (CreateEmpty returns
  // by value; atomics and mutexes are neither copyable nor movable).
  struct LeafSoaSync {
    std::atomic<bool> valid{false};
    std::mutex rebuild_mutex;
  };
  std::unique_ptr<LeafSoaSync> leaf_soa_sync_ =
      std::make_unique<LeafSoaSync>();

  static constexpr uint32_t kInvalid = 0xffffffffu;
};

}  // namespace adbscan

#endif  // ADBSCAN_INDEX_RTREE_H_
