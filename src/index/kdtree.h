#ifndef ADBSCAN_INDEX_KDTREE_H_
#define ADBSCAN_INDEX_KDTREE_H_

#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "geom/box.h"
#include "geom/dataset.h"
#include "geom/soa.h"
#include "index/spatial_index.h"

namespace adbscan {

// kd-tree over a (subset of a) Dataset.
//
// Build: recursive median split (std::nth_element) on the widest dimension
// of each node's bounding box, O(n log n). Leaves hold up to kLeafSize point
// ids. Every node stores its exact bounding box, which makes ball pruning
// (MinSquaredDistToPoint / InsideBall) tight.
//
// Roles in this repository:
//  - region-query substrate for the KDD'96 baseline (kd-tree option),
//  - nearest-core-neighbor queries of Gunawan's 2D algorithm (our stand-in
//    for the per-cell Voronoi diagrams of [11]),
//  - the pruning engine of the BCP decision procedure (Section 3.2).
class KdTree : public SpatialIndex {
 public:
  struct Neighbor {
    uint32_t id;
    double squared_dist;
  };

  // Indexes all points of `data`; the dataset must outlive the tree.
  explicit KdTree(const Dataset& data);

  // Indexes the subset `ids` of `data`.
  KdTree(const Dataset& data, std::vector<uint32_t> ids);

  std::vector<uint32_t> RangeQuery(const double* q,
                                   double radius) const override;

  // RangeQuery into caller-owned buffers: appends the hits to *out (cleared
  // first) and uses *stack as the DFS worklist. With reused buffers the
  // query is allocation-free once their capacities have grown to the
  // query's footprint — the form the ρ-approximate range-counter prefilter
  // calls per probe.
  void RangeQueryInto(const double* q, double radius, std::vector<uint32_t>* out,
                      std::vector<uint32_t>* stack) const;
  size_t CountInBall(const double* q, double radius,
                     size_t stop_at) const override;
  bool AnyWithin(const double* q, double radius) const override;
  size_t size() const override { return ids_.size(); }

  // Nearest indexed point to q with squared distance < bound_sq, if any.
  // Pass a finite bound to prune aggressively (e.g. eps² when only
  // pairs within eps matter).
  std::optional<Neighbor> Nearest(
      const double* q,
      double bound_sq = std::numeric_limits<double>::infinity()) const;

  // The k nearest indexed points to q, ascending by distance (fewer if the
  // index holds fewer than k points). Used by the k-distance plot tooling.
  std::vector<Neighbor> KNearest(const double* q, size_t k) const;

  // Bounding box of the indexed points (undefined if empty()).
  const Box& bounds() const;

  bool empty() const { return ids_.empty(); }

 private:
  struct Node {
    Box box;
    // Internal nodes: children indices; leaves: left == kLeaf and the range
    // [begin, end) into ids_.
    uint32_t left = 0;
    uint32_t right = 0;
    uint32_t begin = 0;
    uint32_t end = 0;
    // Leaves: start of this leaf's lane-aligned segment in leaf_soa_.
    uint32_t soa_begin = 0;
    bool IsLeaf() const { return left == kLeafMarker; }
  };
  static constexpr uint32_t kLeafMarker = 0xffffffffu;
  static constexpr uint32_t kLeafSize = 16;

  uint32_t Build(uint32_t begin, uint32_t end);
  Box ComputeBox(uint32_t begin, uint32_t end) const;
  void BuildLeafSoa();
  simd::SoaSpan LeafSpan(const Node& node) const {
    return leaf_soa_.span(node.soa_begin, node.end - node.begin);
  }

  void CollectSubtree(uint32_t node, std::vector<uint32_t>* out) const;

  const Dataset* data_;
  std::vector<uint32_t> ids_;
  std::vector<Node> nodes_;
  // Per-leaf padded SoA segments, in ids_ order, so every leaf scan is one
  // aligned batch-kernel call (point j of a leaf is ids_[node.begin + j]).
  simd::SoaBlock leaf_soa_;
  uint32_t root_ = kLeafMarker;
};

}  // namespace adbscan

#endif  // ADBSCAN_INDEX_KDTREE_H_
