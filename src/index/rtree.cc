#include "index/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "geom/kernels.h"
#include "geom/point.h"
#include "util/check.h"

namespace adbscan {

RTree::RTree(const Dataset& data) : data_(&data) {
  std::vector<uint32_t> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0u);
  BulkLoad(std::move(ids));
}

RTree::RTree(const Dataset& data, std::vector<uint32_t> ids) : data_(&data) {
  BulkLoad(std::move(ids));
}

RTree RTree::CreateEmpty(const Dataset& data, RTreeOptions options) {
  RTree t(data, std::vector<uint32_t>{});
  t.options_ = options;
  return t;
}

Box RTree::PointBox(uint32_t id) const {
  Box b = Box::Empty(data_->dim());
  b.ExpandToPoint(PointOf(id));
  return b;
}

Box RTree::NodeEntryBox(const Node& node, uint32_t i) const {
  return node.leaf ? PointBox(node.entries[i]) : nodes_[node.entries[i]].box;
}

void RTree::BulkLoad(std::vector<uint32_t> ids) {
  num_points_ = ids.size();
  if (ids.empty()) return;
  std::vector<uint32_t> level = PackLevel(std::move(ids), /*leaf=*/true);
  while (level.size() > 1) {
    level = PackLevel(std::move(level), /*leaf=*/false);
  }
  root_ = level.front();
  BuildLeafSoa();
}

void RTree::BuildLeafSoa() {
  std::vector<uint32_t> layout;
  layout.reserve(simd::PaddedCount(num_points_) +
                 (num_points_ / kMinEntries + 1) * (simd::kLaneWidth - 1));
  for (Node& node : nodes_) {
    if (!node.leaf) continue;
    node.soa_begin = static_cast<uint32_t>(layout.size());
    layout.insert(layout.end(), node.entries.begin(), node.entries.end());
    while (layout.size() % simd::kLaneWidth != 0) {
      layout.push_back(node.entries.back());
    }
  }
  leaf_soa_ = simd::SoaBlock(*data_, layout.data(), layout.size());
  leaf_soa_sync_->valid.store(true, std::memory_order_release);
}

std::vector<uint32_t> RTree::PackLevel(std::vector<uint32_t> items,
                                       bool leaf) {
  // Sort-Tile-Recursive: recursively slice the item list into slabs along
  // successive dimensions so that each final run holds <= kMaxEntries items.
  const int dim = data_->dim();
  auto center = [&](uint32_t item, int axis) {
    if (leaf) return PointOf(item)[axis];
    const Box& b = nodes_[item].box;
    return 0.5 * (b.lo[axis] + b.hi[axis]);
  };

  const size_t num_nodes =
      (items.size() + kMaxEntries - 1) / kMaxEntries;

  // slice(begin, end, axis): sorts and partitions items[begin:end).
  std::vector<uint32_t> out;
  out.reserve(num_nodes);
  auto emit = [&](size_t begin, size_t end) {
    Node node;
    node.leaf = leaf;
    node.box = Box::Empty(dim);
    node.entries.assign(items.begin() + begin, items.begin() + end);
    for (uint32_t e : node.entries) {
      if (leaf) {
        node.box.ExpandToPoint(PointOf(e));
      } else {
        node.box.ExpandToBox(nodes_[e].box);
      }
    }
    nodes_.push_back(std::move(node));
    out.push_back(static_cast<uint32_t>(nodes_.size() - 1));
  };

  // Iterative slicing: maintain ranges to split along the current axis.
  struct Range {
    size_t begin, end;
    int axis;
  };
  std::vector<Range> work{{0, items.size(), 0}};
  while (!work.empty()) {
    const Range r = work.back();
    work.pop_back();
    const size_t count = r.end - r.begin;
    if (count <= kMaxEntries) {
      emit(r.begin, r.end);
      continue;
    }
    const size_t leaves_here = (count + kMaxEntries - 1) / kMaxEntries;
    const int remaining_axes = dim - r.axis;
    size_t num_slabs;
    if (remaining_axes <= 1) {
      num_slabs = leaves_here;
    } else {
      num_slabs = static_cast<size_t>(std::ceil(
          std::pow(static_cast<double>(leaves_here),
                   1.0 / static_cast<double>(remaining_axes))));
    }
    num_slabs = std::max<size_t>(1, std::min(num_slabs, leaves_here));
    std::sort(items.begin() + r.begin, items.begin() + r.end,
              [&](uint32_t a, uint32_t b) {
                return center(a, r.axis) < center(b, r.axis);
              });
    const size_t slab_size = (count + num_slabs - 1) / num_slabs;
    for (size_t s = r.begin; s < r.end; s += slab_size) {
      const size_t slab_end = std::min(s + slab_size, r.end);
      if (slab_end - s <= kMaxEntries) {
        emit(s, slab_end);
      } else {
        work.push_back({s, slab_end, std::min(r.axis + 1, dim - 1)});
      }
    }
  }
  return out;
}

uint32_t RTree::ChooseLeaf(const Box& b, std::vector<uint32_t>* path) {
  uint32_t node_idx = root_;
  for (;;) {
    path->push_back(node_idx);
    Node& node = nodes_[node_idx];
    if (node.leaf) return node_idx;
    // Least enlargement. Point data produces degenerate (zero-volume) boxes,
    // so compare (volume delta, margin delta, volume) lexicographically —
    // the margin term keeps insertion-built trees balanced when volumes tie
    // at zero.
    uint32_t best_child = node.entries[0];
    double best_vd = std::numeric_limits<double>::infinity();
    double best_md = std::numeric_limits<double>::infinity();
    double best_volume = std::numeric_limits<double>::infinity();
    for (uint32_t child : node.entries) {
      Box merged = nodes_[child].box;
      merged.ExpandToBox(b);
      const double volume = nodes_[child].box.Volume();
      const double vd = merged.Volume() - volume;
      const double md = merged.Margin() - nodes_[child].box.Margin();
      if (vd < best_vd || (vd == best_vd && md < best_md) ||
          (vd == best_vd && md == best_md && volume < best_volume)) {
        best_vd = vd;
        best_md = md;
        best_volume = volume;
        best_child = child;
      }
    }
    node_idx = best_child;
  }
}

void RTree::RecomputeBox(uint32_t node_idx) {
  Node& node = nodes_[node_idx];
  node.box = Box::Empty(data_->dim());
  for (uint32_t i = 0; i < node.entries.size(); ++i) {
    const Box b = NodeEntryBox(node, i);
    node.box.ExpandToBox(b);
  }
}

uint32_t RTree::SplitNode(uint32_t node_idx) {
  return options_.split == RTreeOptions::Split::kRStar
             ? SplitNodeRStar(node_idx)
             : SplitNodeQuadratic(node_idx);
}

uint32_t RTree::SplitNodeRStar(uint32_t node_idx) {
  // The R* topological split (Beckmann et al. 1990): pick the split axis
  // minimizing the margin sum over all legal distributions of the
  // lower-bound ordering, then the distribution minimizing group overlap
  // (ties: total volume).
  std::vector<uint32_t> entries = std::move(nodes_[node_idx].entries);
  const bool leaf = nodes_[node_idx].leaf;
  const size_t n = entries.size();
  ADB_DCHECK(n > kMaxEntries);
  const int dim = data_->dim();

  std::vector<Box> boxes(n);
  auto load_boxes = [&] {
    for (size_t i = 0; i < n; ++i) {
      boxes[i] = leaf ? PointBox(entries[i]) : nodes_[entries[i]].box;
    }
  };

  const size_t k_min = kMinEntries;          // smallest legal group size
  const size_t k_max = n - kMinEntries;      // largest first-group size

  int best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < dim; ++axis) {
    std::sort(entries.begin(), entries.end(), [&](uint32_t a, uint32_t b) {
      const Box ba = leaf ? PointBox(a) : nodes_[a].box;
      const Box bb = leaf ? PointBox(b) : nodes_[b].box;
      return ba.lo[axis] < bb.lo[axis] ||
             (ba.lo[axis] == bb.lo[axis] && ba.hi[axis] < bb.hi[axis]);
    });
    load_boxes();
    // Prefix/suffix bounding boxes.
    std::vector<Box> prefix(n), suffix(n);
    prefix[0] = boxes[0];
    for (size_t i = 1; i < n; ++i) {
      prefix[i] = prefix[i - 1];
      prefix[i].ExpandToBox(boxes[i]);
    }
    suffix[n - 1] = boxes[n - 1];
    for (size_t i = n - 1; i-- > 0;) {
      suffix[i] = suffix[i + 1];
      suffix[i].ExpandToBox(boxes[i]);
    }
    double margin_sum = 0.0;
    for (size_t k = k_min; k <= k_max; ++k) {
      margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
    }
    if (margin_sum < best_margin_sum) {
      best_margin_sum = margin_sum;
      best_axis = axis;
    }
  }

  // Re-sort along the chosen axis and pick the distribution.
  std::sort(entries.begin(), entries.end(), [&](uint32_t a, uint32_t b) {
    const Box ba = leaf ? PointBox(a) : nodes_[a].box;
    const Box bb = leaf ? PointBox(b) : nodes_[b].box;
    return ba.lo[best_axis] < bb.lo[best_axis] ||
           (ba.lo[best_axis] == bb.lo[best_axis] &&
            ba.hi[best_axis] < bb.hi[best_axis]);
  });
  load_boxes();
  std::vector<Box> prefix(n), suffix(n);
  prefix[0] = boxes[0];
  for (size_t i = 1; i < n; ++i) {
    prefix[i] = prefix[i - 1];
    prefix[i].ExpandToBox(boxes[i]);
  }
  suffix[n - 1] = boxes[n - 1];
  for (size_t i = n - 1; i-- > 0;) {
    suffix[i] = suffix[i + 1];
    suffix[i].ExpandToBox(boxes[i]);
  }
  size_t best_k = k_min;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  for (size_t k = k_min; k <= k_max; ++k) {
    const double overlap = prefix[k - 1].OverlapVolume(suffix[k]);
    const double volume = prefix[k - 1].Volume() + suffix[k].Volume();
    if (overlap < best_overlap ||
        (overlap == best_overlap && volume < best_volume)) {
      best_overlap = overlap;
      best_volume = volume;
      best_k = k;
    }
  }

  nodes_[node_idx].entries.assign(entries.begin(), entries.begin() + best_k);
  nodes_[node_idx].box = prefix[best_k - 1];
  Node sibling;
  sibling.leaf = leaf;
  sibling.entries.assign(entries.begin() + best_k, entries.end());
  sibling.box = suffix[best_k];
  nodes_.push_back(std::move(sibling));
  return static_cast<uint32_t>(nodes_.size() - 1);
}

uint32_t RTree::SplitNodeQuadratic(uint32_t node_idx) {
  // Guttman's quadratic split: pick the pair of entries whose combined box
  // wastes the most volume as seeds, then assign remaining entries to the
  // group whose box grows least.
  std::vector<uint32_t> entries = std::move(nodes_[node_idx].entries);
  const bool leaf = nodes_[node_idx].leaf;
  const size_t n = entries.size();
  ADB_DCHECK(n > kMaxEntries);

  std::vector<Box> boxes(n);
  for (size_t i = 0; i < n; ++i) {
    boxes[i] = leaf ? PointBox(entries[i]) : nodes_[entries[i]].box;
  }

  // Seed pair: most wasteful combination. Margin is the tie-breaker for the
  // degenerate zero-volume boxes point data produces.
  size_t seed_a = 0, seed_b = 1;
  double worst_vol = -std::numeric_limits<double>::infinity();
  double worst_margin = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      Box merged = boxes[i];
      merged.ExpandToBox(boxes[j]);
      const double vol_waste =
          merged.Volume() - boxes[i].Volume() - boxes[j].Volume();
      const double margin_waste =
          merged.Margin() - boxes[i].Margin() - boxes[j].Margin();
      if (vol_waste > worst_vol ||
          (vol_waste == worst_vol && margin_waste > worst_margin)) {
        worst_vol = vol_waste;
        worst_margin = margin_waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<uint32_t> group_a{entries[seed_a]};
  std::vector<uint32_t> group_b{entries[seed_b]};
  Box box_a = boxes[seed_a];
  Box box_b = boxes[seed_b];
  std::vector<bool> assigned(n, false);
  assigned[seed_a] = assigned[seed_b] = true;
  size_t remaining = n - 2;

  while (remaining > 0) {
    // If one group must absorb everything left to reach kMinEntries, do so.
    if (group_a.size() + remaining == kMinEntries) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group_a.push_back(entries[i]);
          box_a.ExpandToBox(boxes[i]);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    if (group_b.size() + remaining == kMinEntries) {
      for (size_t i = 0; i < n; ++i) {
        if (!assigned[i]) {
          group_b.push_back(entries[i]);
          box_b.ExpandToBox(boxes[i]);
          assigned[i] = true;
        }
      }
      remaining = 0;
      break;
    }
    // PickNext: entry with max preference difference between the groups.
    // Growth is measured by volume delta plus margin delta so that point
    // data (all volumes zero) still produces meaningful preferences.
    size_t pick = 0;
    double best_diff = -1.0;
    double pick_da = 0.0, pick_db = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (assigned[i]) continue;
      Box ma = box_a;
      ma.ExpandToBox(boxes[i]);
      Box mb = box_b;
      mb.ExpandToBox(boxes[i]);
      const double da = (ma.Volume() - box_a.Volume()) +
                        (ma.Margin() - box_a.Margin());
      const double db = (mb.Volume() - box_b.Volume()) +
                        (mb.Margin() - box_b.Margin());
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        pick_da = da;
        pick_db = db;
      }
    }
    const bool to_a =
        pick_da < pick_db ||
        (pick_da == pick_db && group_a.size() <= group_b.size());
    if (to_a) {
      group_a.push_back(entries[pick]);
      box_a.ExpandToBox(boxes[pick]);
    } else {
      group_b.push_back(entries[pick]);
      box_b.ExpandToBox(boxes[pick]);
    }
    assigned[pick] = true;
    --remaining;
  }

  nodes_[node_idx].entries = std::move(group_a);
  nodes_[node_idx].box = box_a;
  Node sibling;
  sibling.leaf = leaf;
  sibling.entries = std::move(group_b);
  sibling.box = box_b;
  nodes_.push_back(std::move(sibling));
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void RTree::Insert(uint32_t id) {
  ++num_points_;
  // Leaves are about to mutate; the block is rebuilt on the next query.
  leaf_soa_sync_->valid.store(false, std::memory_order_relaxed);
  InsertImpl(id, options_.split == RTreeOptions::Split::kRStar &&
                     options_.reinsert_fraction > 0.0);
}

std::vector<uint32_t> RTree::EvictForReinsert(uint32_t leaf_idx) {
  Node& leaf = nodes_[leaf_idx];
  ADB_DCHECK(leaf.leaf);
  const int dim = data_->dim();
  double center[kMaxDim];
  for (int i = 0; i < dim; ++i) {
    center[i] = 0.5 * (leaf.box.lo[i] + leaf.box.hi[i]);
  }
  // Farthest-from-center entries first (the R* reinsertion candidates).
  std::sort(leaf.entries.begin(), leaf.entries.end(),
            [&](uint32_t a, uint32_t b) {
              return SquaredDistance(center, PointOf(a), dim) >
                     SquaredDistance(center, PointOf(b), dim);
            });
  size_t evict = static_cast<size_t>(
      options_.reinsert_fraction * static_cast<double>(leaf.entries.size()));
  evict = std::max<size_t>(1, std::min(evict, leaf.entries.size() - 1));
  std::vector<uint32_t> evicted(leaf.entries.begin(),
                                leaf.entries.begin() + evict);
  leaf.entries.erase(leaf.entries.begin(), leaf.entries.begin() + evict);
  RecomputeBox(leaf_idx);
  return evicted;
}

void RTree::InsertImpl(uint32_t id, bool allow_reinsert) {
  const Box b = PointBox(id);
  if (root_ == kInvalid) {
    Node leaf;
    leaf.leaf = true;
    leaf.box = b;
    leaf.entries.push_back(id);
    nodes_.push_back(std::move(leaf));
    root_ = static_cast<uint32_t>(nodes_.size() - 1);
    return;
  }
  std::vector<uint32_t> path;
  const uint32_t leaf_idx = ChooseLeaf(b, &path);
  nodes_[leaf_idx].entries.push_back(id);
  nodes_[leaf_idx].box.ExpandToBox(b);

  // Walk back up: handle overflow (forced reinsertion once at the leaf in
  // R* mode, split otherwise), refresh ancestor boxes.
  std::vector<uint32_t> pending_reinserts;
  uint32_t overflow_sibling = kInvalid;
  for (size_t level = path.size(); level-- > 0;) {
    const uint32_t node_idx = path[level];
    if (overflow_sibling != kInvalid) {
      nodes_[node_idx].entries.push_back(overflow_sibling);
      overflow_sibling = kInvalid;
    }
    if (nodes_[node_idx].entries.size() > kMaxEntries) {
      if (allow_reinsert && nodes_[node_idx].leaf && node_idx != root_) {
        pending_reinserts = EvictForReinsert(node_idx);
        allow_reinsert = false;
      } else {
        overflow_sibling = SplitNode(node_idx);
      }
    } else {
      RecomputeBox(node_idx);
    }
  }
  if (overflow_sibling != kInvalid) {
    // Root split: grow the tree by one level.
    Node new_root;
    new_root.leaf = false;
    new_root.entries = {root_, overflow_sibling};
    nodes_.push_back(std::move(new_root));
    root_ = static_cast<uint32_t>(nodes_.size() - 1);
    RecomputeBox(root_);
  }
  for (uint32_t evicted : pending_reinserts) {
    InsertImpl(evicted, /*allow_reinsert=*/false);
  }
}

std::vector<uint32_t> RTree::RangeQuery(const double* q,
                                        double radius) const {
  std::vector<uint32_t> out;
  if (root_ == kInvalid) return out;
  EnsureLeafSoa();
  const double r2 = radius * radius;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.box.MinSquaredDistToPoint(q) > r2) continue;
    if (node.leaf) {
      simd::CollectWithin(q, LeafSpan(node), r2, node.entries.data(), &out);
    } else {
      for (uint32_t child : node.entries) stack.push_back(child);
    }
  }
  return out;
}

size_t RTree::CountInBall(const double* q, double radius,
                          size_t stop_at) const {
  if (root_ == kInvalid) return 0;
  EnsureLeafSoa();
  const double r2 = radius * radius;
  size_t count = 0;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty() && count < stop_at) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.box.MinSquaredDistToPoint(q) > r2) continue;
    if (node.leaf) {
      count += simd::CountWithin(q, LeafSpan(node), r2, stop_at - count);
    } else {
      for (uint32_t child : node.entries) stack.push_back(child);
    }
  }
  return count;
}

bool RTree::AnyWithin(const double* q, double radius) const {
  return CountInBall(q, radius, 1) > 0;
}

int RTree::Height() const {
  if (root_ == kInvalid) return 0;
  int h = 1;
  uint32_t node_idx = root_;
  while (!nodes_[node_idx].leaf) {
    node_idx = nodes_[node_idx].entries.front();
    ++h;
  }
  return h;
}

void RTree::CheckInvariants() const {
  if (root_ == kInvalid) {
    ADB_CHECK(num_points_ == 0);
    return;
  }
  size_t points_seen = 0;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty()) {
    const uint32_t node_idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_idx];
    ADB_CHECK(!node.entries.empty());
    ADB_CHECK(node.entries.size() <= kMaxEntries);
    for (uint32_t i = 0; i < node.entries.size(); ++i) {
      const Box b = NodeEntryBox(node, i);
      for (int d = 0; d < b.dim; ++d) {
        ADB_CHECK(b.lo[d] >= node.box.lo[d]);
        ADB_CHECK(b.hi[d] <= node.box.hi[d]);
      }
      if (!node.leaf) stack.push_back(node.entries[i]);
    }
    if (node.leaf) points_seen += node.entries.size();
  }
  ADB_CHECK(points_seen == num_points_);
}

}  // namespace adbscan
