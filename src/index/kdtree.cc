#include "index/kdtree.h"

#include <algorithm>
#include <numeric>

#include "geom/kernels.h"
#include "geom/point.h"
#include "util/check.h"

namespace adbscan {

KdTree::KdTree(const Dataset& data) : data_(&data) {
  ids_.resize(data.size());
  std::iota(ids_.begin(), ids_.end(), 0u);
  if (!ids_.empty()) {
    nodes_.reserve(2 * ids_.size() / kLeafSize + 2);
    root_ = Build(0, static_cast<uint32_t>(ids_.size()));
    BuildLeafSoa();
  }
}

KdTree::KdTree(const Dataset& data, std::vector<uint32_t> ids)
    : data_(&data), ids_(std::move(ids)) {
  if (!ids_.empty()) {
    nodes_.reserve(2 * ids_.size() / kLeafSize + 2);
    root_ = Build(0, static_cast<uint32_t>(ids_.size()));
    BuildLeafSoa();
  }
}

void KdTree::BuildLeafSoa() {
  // Lay every leaf's points out as a lane-aligned, internally padded segment
  // of one SoA block, so leaf scans hit the batch kernels with aligned
  // full-width loads only. Padding slots repeat the leaf's last point.
  std::vector<uint32_t> layout;
  layout.reserve(simd::PaddedCount(ids_.size()) +
                 (nodes_.size() / 2 + 1) * (simd::kLaneWidth - 1));
  for (Node& node : nodes_) {
    if (!node.IsLeaf()) continue;
    node.soa_begin = static_cast<uint32_t>(layout.size());
    layout.insert(layout.end(), ids_.begin() + node.begin,
                  ids_.begin() + node.end);
    while (layout.size() % simd::kLaneWidth != 0) {
      layout.push_back(ids_[node.end - 1]);
    }
  }
  leaf_soa_ = simd::SoaBlock(*data_, layout.data(), layout.size());
}

Box KdTree::ComputeBox(uint32_t begin, uint32_t end) const {
  Box box = Box::Empty(data_->dim());
  for (uint32_t i = begin; i < end; ++i) box.ExpandToPoint(data_->point(ids_[i]));
  return box;
}

uint32_t KdTree::Build(uint32_t begin, uint32_t end) {
  ADB_DCHECK(begin < end);
  const uint32_t node_idx = static_cast<uint32_t>(nodes_.size());
  nodes_.emplace_back();
  Box box = ComputeBox(begin, end);
  if (end - begin <= kLeafSize || box.MaxExtent() == 0.0) {
    Node& leaf = nodes_[node_idx];
    leaf.box = box;
    leaf.left = kLeafMarker;
    leaf.begin = begin;
    leaf.end = end;
    return node_idx;
  }
  // Split on the widest dimension at the median.
  int axis = 0;
  double best = -1.0;
  for (int d = 0; d < box.dim; ++d) {
    const double extent = box.hi[d] - box.lo[d];
    if (extent > best) {
      best = extent;
      axis = d;
    }
  }
  const uint32_t mid = begin + (end - begin) / 2;
  std::nth_element(ids_.begin() + begin, ids_.begin() + mid,
                   ids_.begin() + end, [&](uint32_t a, uint32_t b) {
                     return data_->point(a)[axis] < data_->point(b)[axis];
                   });
  const uint32_t left = Build(begin, mid);
  const uint32_t right = Build(mid, end);
  Node& node = nodes_[node_idx];
  node.box = box;
  node.left = left;
  node.right = right;
  // Internal nodes keep their subtree's contiguous id range as well, so
  // inside-ball subtrees can be counted/collected in O(1)/O(k).
  node.begin = begin;
  node.end = end;
  return node_idx;
}

void KdTree::CollectSubtree(uint32_t node_idx,
                            std::vector<uint32_t>* out) const {
  const Node& node = nodes_[node_idx];
  out->insert(out->end(), ids_.begin() + node.begin, ids_.begin() + node.end);
}

std::vector<uint32_t> KdTree::RangeQuery(const double* q,
                                         double radius) const {
  std::vector<uint32_t> out;
  std::vector<uint32_t> stack;
  RangeQueryInto(q, radius, &out, &stack);
  return out;
}

void KdTree::RangeQueryInto(const double* q, double radius,
                            std::vector<uint32_t>* out,
                            std::vector<uint32_t>* stack) const {
  out->clear();
  stack->clear();
  if (empty()) return;
  const double r2 = radius * radius;
  // Iterative DFS with an explicit stack; prune by node box distance and
  // short-circuit whole subtrees that lie inside the ball.
  stack->push_back(root_);
  while (!stack->empty()) {
    const uint32_t node_idx = stack->back();
    stack->pop_back();
    const Node& node = nodes_[node_idx];
    if (node.box.MinSquaredDistToPoint(q) > r2) continue;
    if (node.box.MaxSquaredDistToPoint(q) <= r2) {
      CollectSubtree(node_idx, out);
      continue;
    }
    if (node.IsLeaf()) {
      simd::CollectWithin(q, LeafSpan(node), r2, ids_.data() + node.begin,
                          out);
      continue;
    }
    stack->push_back(node.left);
    stack->push_back(node.right);
  }
}

size_t KdTree::CountInBall(const double* q, double radius,
                           size_t stop_at) const {
  if (empty()) return 0;
  const double r2 = radius * radius;
  size_t count = 0;
  std::vector<uint32_t> stack{root_};
  while (!stack.empty() && count < stop_at) {
    const uint32_t node_idx = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_idx];
    if (node.box.MinSquaredDistToPoint(q) > r2) continue;
    if (node.box.MaxSquaredDistToPoint(q) <= r2) {
      count += node.end - node.begin;
      continue;
    }
    if (node.IsLeaf()) {
      count += simd::CountWithin(q, LeafSpan(node), r2, stop_at - count);
      continue;
    }
    stack.push_back(node.left);
    stack.push_back(node.right);
  }
  return count;
}

bool KdTree::AnyWithin(const double* q, double radius) const {
  return CountInBall(q, radius, 1) > 0;
}

std::optional<KdTree::Neighbor> KdTree::Nearest(const double* q,
                                                double bound_sq) const {
  if (empty()) return std::nullopt;
  Neighbor best{0, bound_sq};
  bool found = false;
  // Best-first would be optimal; a depth-first walk that descends into the
  // nearer child first is simpler and nearly as effective for the short-range
  // queries (bounded by eps²) this library issues.
  struct Frame {
    uint32_t node;
    double min_dist_sq;
  };
  std::vector<Frame> stack{{root_, nodes_[root_].box.MinSquaredDistToPoint(q)}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.min_dist_sq >= best.squared_dist) continue;
    const Node& node = nodes_[frame.node];
    if (node.IsLeaf()) {
      const simd::BlockNearest bn = simd::NearestInBlock(q, LeafSpan(node));
      if (bn.squared_dist < best.squared_dist) {
        best = {ids_[node.begin + bn.index], bn.squared_dist};
        found = true;
      }
      continue;
    }
    const double dl = nodes_[node.left].box.MinSquaredDistToPoint(q);
    const double dr = nodes_[node.right].box.MinSquaredDistToPoint(q);
    // Push the farther child first so the nearer one is explored next.
    if (dl <= dr) {
      if (dr < best.squared_dist) stack.push_back({node.right, dr});
      if (dl < best.squared_dist) stack.push_back({node.left, dl});
    } else {
      if (dl < best.squared_dist) stack.push_back({node.left, dl});
      if (dr < best.squared_dist) stack.push_back({node.right, dr});
    }
  }
  if (!found) return std::nullopt;
  return best;
}

std::vector<KdTree::Neighbor> KdTree::KNearest(const double* q,
                                               size_t k) const {
  std::vector<Neighbor> heap;  // max-heap on squared_dist, size <= k
  if (empty() || k == 0) return heap;
  auto cmp = [](const Neighbor& a, const Neighbor& b) {
    return a.squared_dist < b.squared_dist;
  };
  auto bound = [&] {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().squared_dist;
  };
  struct Frame {
    uint32_t node;
    double min_dist_sq;
  };
  std::vector<double> scratch;
  std::vector<Frame> stack{{root_, nodes_[root_].box.MinSquaredDistToPoint(q)}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    if (frame.min_dist_sq > bound()) continue;
    const Node& node = nodes_[frame.node];
    if (node.IsLeaf()) {
      // Leaves usually hold <= kLeafSize points, but all-coincident ranges
      // become a single arbitrarily large leaf, so size the scratch per leaf.
      scratch.resize(simd::PaddedCount(node.end - node.begin));
      simd::SquaredDists(q, LeafSpan(node), scratch.data());
      for (uint32_t i = node.begin; i < node.end; ++i) {
        const double d2 = scratch[i - node.begin];
        if (d2 <= bound()) {
          if (heap.size() == k) {
            std::pop_heap(heap.begin(), heap.end(), cmp);
            heap.back() = {ids_[i], d2};
          } else {
            heap.push_back({ids_[i], d2});
          }
          std::push_heap(heap.begin(), heap.end(), cmp);
        }
      }
      continue;
    }
    const double dl = nodes_[node.left].box.MinSquaredDistToPoint(q);
    const double dr = nodes_[node.right].box.MinSquaredDistToPoint(q);
    if (dl <= dr) {
      stack.push_back({node.right, dr});
      stack.push_back({node.left, dl});
    } else {
      stack.push_back({node.left, dl});
      stack.push_back({node.right, dr});
    }
  }
  std::sort_heap(heap.begin(), heap.end(), cmp);
  return heap;
}

const Box& KdTree::bounds() const {
  ADB_CHECK(!empty());
  return nodes_[root_].box;
}

}  // namespace adbscan
