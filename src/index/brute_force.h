#ifndef ADBSCAN_INDEX_BRUTE_FORCE_H_
#define ADBSCAN_INDEX_BRUTE_FORCE_H_

#include <memory>
#include <vector>

#include "geom/dataset.h"
#include "geom/soa.h"
#include "index/spatial_index.h"

namespace adbscan {

// O(n)-per-query linear scan. Reference implementation for index tests and
// the trusted substrate of the brute-force reference DBSCAN.
class BruteForceIndex : public SpatialIndex {
 public:
  // Indexes all points of `data`; the dataset must outlive the index.
  explicit BruteForceIndex(const Dataset& data);

  // Indexes the subset `ids` of `data`.
  BruteForceIndex(const Dataset& data, std::vector<uint32_t> ids);

  std::vector<uint32_t> RangeQuery(const double* q,
                                   double radius) const override;
  size_t CountInBall(const double* q, double radius,
                     size_t stop_at) const override;
  bool AnyWithin(const double* q, double radius) const override;
  size_t size() const override { return ids_.size(); }

 private:
  const Dataset* data_;
  std::vector<uint32_t> ids_;
  // Scans run through the batched SIMD kernels over this SoA view of the
  // indexed points, in ids_ order (the dataset's shared view when indexing
  // everything, an owned gathered copy for subsets).
  std::shared_ptr<const simd::SoaBlock> soa_;
};

}  // namespace adbscan

#endif  // ADBSCAN_INDEX_BRUTE_FORCE_H_
