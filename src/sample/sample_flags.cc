#include "sample/sample_flags.h"

#include <cstdint>

namespace adbscan {

void DefineSampleFlags(Flags* flags) {
  flags
      ->DefineString("pipeline", "batch",
                     "batch (run --algo on all points) | sampled "
                     "(DBSCAN++ sampled-core tier)")
      .DefineDouble("sample_rate", 0.1,
                    "sampled pipeline: subsample fraction m/n, in (0, 1]")
      .DefineString("sample_strategy", "uniform",
                    "sampled pipeline: uniform | kcenter")
      .DefineInt("seed", 1,
                 "sampled pipeline: master RNG seed (runs are bit-for-bit "
                 "reproducible per seed at any thread count)");
}

bool ValidateSampleFlags(const Flags& flags, int num_shards,
                         const std::string& algo, SampleFlagSettings* out,
                         std::string* error) {
  *out = SampleFlagSettings{};
  const std::string& pipeline = flags.GetString("pipeline");
  if (pipeline != "batch" && pipeline != "sampled") {
    *error = "unknown --pipeline '" + pipeline + "' (want batch|sampled)";
    return false;
  }
  out->sampled = pipeline == "sampled";
  if (!flags.TryGetDouble("sample_rate", &out->options.sample_rate) ||
      out->options.sample_rate <= 0.0 || out->options.sample_rate > 1.0) {
    *error = "--sample_rate must be a number in (0, 1]";
    return false;
  }
  const std::string& strategy = flags.GetString("sample_strategy");
  if (!ParseSampleStrategy(strategy, &out->options.strategy)) {
    *error = "unknown --sample_strategy '" + strategy +
             "' (want uniform|kcenter)";
    return false;
  }
  int64_t seed = 0;
  if (!flags.TryGetInt("seed", &seed) || seed < 0) {
    *error = "--seed must be a non-negative integer";
    return false;
  }
  out->options.seed = static_cast<uint64_t>(seed);
  if (out->sampled && num_shards > 1) {
    *error = "--pipeline=sampled cannot be combined with --shards";
    return false;
  }
  if (out->sampled && algo != "approx") {
    *error = "--pipeline=sampled replaces --algo; leave --algo unset";
    return false;
  }
  return true;
}

}  // namespace adbscan
