#ifndef ADBSCAN_SAMPLE_SAMPLER_H_
#define ADBSCAN_SAMPLE_SAMPLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/dataset.h"

namespace adbscan {

// Subsample selection for the sampled-core tier (DBSCAN++, Jang & Jiang).
// Both strategies are deterministic functions of (data, rate, seed): the
// draw never depends on thread count or interleaving, so a --seed
// reproduces the whole sampled pipeline bit-for-bit.
enum class SampleStrategy {
  // m ids drawn uniformly without replacement (partial Fisher–Yates over a
  // seeded Rng). The DBSCAN++ default; zero extra distance work.
  kUniform,
  // Greedy k-center (farthest-point traversal) from a seeded start: each
  // round adds the point farthest from the chosen set. Covers low-density
  // regions a uniform draw can miss, at O(n·m) distance cost.
  kKCenter,
};

// "uniform" / "kcenter" <-> enum. Parse returns false on unknown names.
bool ParseSampleStrategy(const std::string& name, SampleStrategy* out);
const char* SampleStrategyName(SampleStrategy strategy);

// Sample size for a rate in (0, 1]: ceil(rate * n) clamped to [1, n]
// (0 when n == 0).
size_t SampleSizeFor(size_t n, double rate);

// Draws the subsample: SampleSizeFor(n, rate) distinct point ids, sorted
// ascending. num_threads parallelizes the k-center distance passes only;
// the result is identical for every thread count.
std::vector<uint32_t> DrawSample(const Dataset& data, double rate,
                                 SampleStrategy strategy, uint64_t seed,
                                 int num_threads);

}  // namespace adbscan

#endif  // ADBSCAN_SAMPLE_SAMPLER_H_
