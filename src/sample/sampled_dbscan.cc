#include "sample/sampled_dbscan.h"

#include <algorithm>
#include <vector>

#include "bcp/bcp.h"
#include "core/core_labeling.h"
#include "core/grid_pipeline.h"
#include "obs/metrics.h"
#include "sample/assign.h"
#include "util/check.h"

namespace adbscan {

Clustering SampledDbscan(const Dataset& data, const DbscanParams& params,
                         const SampledDbscanOptions& options,
                         SampledRunStats* stats) {
  ADB_CHECK(options.sample_rate > 0.0 && options.sample_rate <= 1.0);
  // Register the tier's counters upfront for a stable export schema.
  ADB_COUNT("sample.size", 0);
  ADB_COUNT("sample.cores", 0);
  ADB_COUNT("sample.draw_dist_evals", 0);
  ADB_COUNT("sample.assign_queries", 0);
  ADB_COUNT("sample.assigned", 0);
  ADB_COUNT("sample.extra_memberships", 0);
  ADB_COUNT("dist_evals.sample_assign", 0);
  ADB_COUNT("bcp.pair_tests", 0);
  ADB_COUNT("bcp.tree_probes", 0);
  ADB_COUNT("dist_evals.bcp", 0);

  std::vector<uint32_t> sample;
  {
    ADB_PHASE("sample_draw");
    sample = DrawSample(data, options.sample_rate, options.strategy,
                        options.seed, params.num_threads);
  }
  ADB_COUNT("sample.size", sample.size());

  const CoreCellIndex* cells = nullptr;
  GridPipelineHooks hooks;
  hooks.label_core = [&](const Dataset& d, const Grid& grid,
                         const DbscanParams& p) {
    return LabelCorePointsAmong(d, grid, p, sample);
  };
  hooks.prepare_cells = [&](const Grid&, const CoreCellIndex& cci) {
    cells = &cci;
  };
  // Exact BCP decision between sampled-core sets: the sampled tier
  // approximates by dropping points from the core computation, never by
  // weakening the connectivity predicate — so rate = 1.0 reproduces the
  // exact pipeline's components.
  hooks.edge_test = [&](uint32_t c1, uint32_t c2) {
    return ExistsPairWithin(data, cells->core_points[c1],
                            cells->core_points[c2], params.eps);
  };
  hooks.edge_test_thread_safe = true;  // pure function of the pair
  hooks.assign_border = [&](const Dataset& d, const Grid& grid,
                            const CoreCellIndex& cci,
                            const std::vector<char>& is_core,
                            const std::vector<int32_t>& core_label,
                            Clustering* out) {
    AssignToNearestCore(d, grid, cci, is_core, core_label, params.eps,
                        params.num_threads, out);
  };
  Clustering out = RunGridPipeline(data, params, hooks);

  size_t cores = 0;
  for (char c : out.is_core) cores += c != 0;
  ADB_COUNT("sample.cores", cores);
  if (stats != nullptr) {
    stats->sample_size = sample.size();
    stats->num_core = cores;
    size_t labeled = 0;
    for (int32_t label : out.label) labeled += label != kNoise;
    stats->num_assigned = labeled - cores;
    stats->num_noise = data.size() - labeled;
  }
  return out;
}

}  // namespace adbscan
