#ifndef ADBSCAN_SAMPLE_SAMPLED_DBSCAN_H_
#define ADBSCAN_SAMPLE_SAMPLED_DBSCAN_H_

#include <cstddef>
#include <cstdint>

#include "core/dbscan_types.h"
#include "geom/dataset.h"
#include "sample/sampler.h"

namespace adbscan {

// The massive-n approximation tier: sampled-core DBSCAN per Jang & Jiang,
// *DBSCAN++*. Core points are computed among an m = ceil(rate·n) subsample
// only — with ε-ball counts still taken against the full dataset — sampled
// cores are clustered by the shared grid pipeline (exact BCP edge probes),
// and every remaining point joins its nearest sampled core within ε (noise
// otherwise). Runtime is dominated by O(m) core counting + O(n log m)
// nearest-core lookups instead of O(n) core counting, trading recall of
// sparse clusters for a sample_rate knob that caps per-run cost.
//
// Determinism contract: the output is a pure function of (data, params,
// options) — bit-for-bit identical across thread counts and repeated runs.
// At sample_rate = 1.0 the sample is the whole dataset and the result is
// cluster-set equivalent to ExactGridDbscan (core flags and cluster sets
// match; only the choice of primary label among a border point's multiple
// memberships may differ — the nearest core's cluster here vs the smallest
// cluster id there).
struct SampledDbscanOptions {
  double sample_rate = 0.1;  // in (0, 1]
  SampleStrategy strategy = SampleStrategy::kUniform;
  uint64_t seed = 1;  // master seed; streams derived via DeriveSeed
};

// Post-run tallies for CLI/bench reporting (the sample.* counters carry the
// same numbers through the metrics registry).
struct SampledRunStats {
  size_t sample_size = 0;   // m, points drawn
  size_t num_core = 0;      // sampled cores
  size_t num_assigned = 0;  // non-core points given a cluster
  size_t num_noise = 0;     // points left unlabeled
};

Clustering SampledDbscan(const Dataset& data, const DbscanParams& params,
                         const SampledDbscanOptions& options = {},
                         SampledRunStats* stats = nullptr);

}  // namespace adbscan

#endif  // ADBSCAN_SAMPLE_SAMPLED_DBSCAN_H_
