#ifndef ADBSCAN_SAMPLE_ASSIGN_H_
#define ADBSCAN_SAMPLE_ASSIGN_H_

#include <cstdint>
#include <vector>

#include "core/core_labeling.h"
#include "core/dbscan_types.h"
#include "geom/dataset.h"
#include "grid/grid.h"

namespace adbscan {

// Assignment phase of the sampled tier (DBSCAN++ step 3): every point that
// is not a sampled core joins the cluster of its NEAREST sampled core,
// provided that core lies within ε; otherwise it is noise. The nearest-core
// query runs on a kd-tree over the sampled cores (NearestInBlock leaf
// scans); when several clusters have cores within ε the extra clusters are
// recorded as extra_memberships via the grid's candidate-cell scan, so the
// rate = 1.0 envelope carries the same multi-membership information as
// AssignBorderPoints.
//
// Matches the assign_border hook contract of GridPipelineHooks: labels of
// core points are already final in *out, everything else is kNoise, and
// appended extras are sorted by the caller.
void AssignToNearestCore(const Dataset& data, const Grid& grid,
                         const CoreCellIndex& cci,
                         const std::vector<char>& is_core,
                         const std::vector<int32_t>& core_label, double eps,
                         int num_threads, Clustering* out);

}  // namespace adbscan

#endif  // ADBSCAN_SAMPLE_ASSIGN_H_
