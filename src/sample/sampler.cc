#include "sample/sampler.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "geom/kernels.h"
#include "geom/soa.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/scratch_arena.h"

namespace adbscan {
namespace {

// Seed streams: the uniform draw and the k-center start point consume
// independent child seeds of the run's master seed so switching strategies
// never perturbs unrelated draws.
constexpr uint64_t kUniformStream = 0;
constexpr uint64_t kKCenterStream = 1;

// Fixed reduction block for the k-center farthest-point argmax: each block
// owns one slot of the (max, argmax) table regardless of how ParallelFor
// slices the blocks across workers, so the chosen center — including the
// smallest-id tie-break — is a pure function of the data and the previous
// centers. A multiple of simd::kLaneWidth, as SoaBlock::span requires
// lane-aligned offsets.
constexpr size_t kKCenterBlock = 4096;

std::vector<uint32_t> DrawUniform(size_t n, size_t m, uint64_t seed) {
  std::vector<uint32_t> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
  Rng rng(DeriveSeed(seed, kUniformStream));
  // Partial Fisher–Yates: after i swaps the prefix [0, i) is a uniform
  // i-subset, so only m rounds are needed.
  for (size_t i = 0; i < m; ++i) {
    const size_t j = i + static_cast<size_t>(rng.NextBounded(n - i));
    std::swap(ids[i], ids[j]);
  }
  ids.resize(m);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<uint32_t> DrawKCenter(const Dataset& data, size_t m,
                                  uint64_t seed, int num_threads) {
  const size_t n = data.size();
  const std::shared_ptr<const simd::SoaBlock> soa = data.Soa();
  // min over chosen centers of dist²(i, center); -1 marks chosen points so
  // duplicates of a center (distance 0) can still be picked before any
  // already-chosen id would be revisited.
  std::vector<double> dist2(n, std::numeric_limits<double>::infinity());
  const size_t num_blocks = (n + kKCenterBlock - 1) / kKCenterBlock;
  std::vector<double> block_max(num_blocks);
  std::vector<uint32_t> block_arg(num_blocks);

  std::vector<uint32_t> chosen;
  chosen.reserve(m);
  Rng rng(DeriveSeed(seed, kKCenterStream));
  uint32_t last = static_cast<uint32_t>(rng.NextBounded(n));
  chosen.push_back(last);
  dist2[last] = -1.0;

  while (chosen.size() < m) {
    const double* center = data.point(last);
    ParallelFor(num_blocks, num_threads, [&](size_t begin, size_t end) {
      std::vector<double>& lane_dists =
          WorkerScratch<double>(scratch::kSampleDistLanes);
      for (size_t b = begin; b < end; ++b) {
        const size_t offset = b * kKCenterBlock;
        const size_t count = std::min(kKCenterBlock, n - offset);
        const simd::SoaSpan span = soa->span(offset, count);
        lane_dists.resize(simd::PaddedCount(count));
        simd::SquaredDists(center, span, lane_dists.data());
        // Update the running minima and reduce this block's farthest
        // point. Strict > keeps the first (smallest-id) maximum.
        double best = -1.0;
        uint32_t best_id = static_cast<uint32_t>(offset);
        for (size_t j = 0; j < count; ++j) {
          const size_t i = offset + j;
          if (lane_dists[j] < dist2[i]) dist2[i] = lane_dists[j];
          if (dist2[i] > best) {
            best = dist2[i];
            best_id = static_cast<uint32_t>(i);
          }
        }
        block_max[b] = best;
        block_arg[b] = best_id;
      }
    });
    ADB_COUNT("sample.draw_dist_evals", n);
    // Serial reduce over the fixed blocks, ascending, strict > — ties go to
    // the smallest id independent of thread count.
    double best = -1.0;
    uint32_t best_id = 0;
    for (size_t b = 0; b < num_blocks; ++b) {
      if (block_max[b] > best) {
        best = block_max[b];
        best_id = block_arg[b];
      }
    }
    ADB_DCHECK(dist2[best_id] >= 0.0);  // never re-pick a chosen point
    last = best_id;
    chosen.push_back(last);
    dist2[last] = -1.0;
  }
  std::sort(chosen.begin(), chosen.end());
  return chosen;
}

}  // namespace

bool ParseSampleStrategy(const std::string& name, SampleStrategy* out) {
  if (name == "uniform") {
    *out = SampleStrategy::kUniform;
    return true;
  }
  if (name == "kcenter") {
    *out = SampleStrategy::kKCenter;
    return true;
  }
  return false;
}

const char* SampleStrategyName(SampleStrategy strategy) {
  return strategy == SampleStrategy::kUniform ? "uniform" : "kcenter";
}

size_t SampleSizeFor(size_t n, double rate) {
  if (n == 0) return 0;
  const size_t m =
      static_cast<size_t>(std::ceil(rate * static_cast<double>(n)));
  return std::min(n, std::max<size_t>(1, m));
}

std::vector<uint32_t> DrawSample(const Dataset& data, double rate,
                                 SampleStrategy strategy, uint64_t seed,
                                 int num_threads) {
  ADB_CHECK(rate > 0.0 && rate <= 1.0);
  const size_t n = data.size();
  const size_t m = SampleSizeFor(n, rate);
  if (m == 0) return {};
  if (m == n) {
    // Degenerate envelope: the sample is the whole dataset for either
    // strategy (a full farthest-point traversal visits every id), so skip
    // the draw — this is what makes rate = 1.0 match the exact pipeline.
    std::vector<uint32_t> ids(n);
    for (size_t i = 0; i < n; ++i) ids[i] = static_cast<uint32_t>(i);
    return ids;
  }
  return strategy == SampleStrategy::kUniform
             ? DrawUniform(n, m, seed)
             : DrawKCenter(data, m, seed, num_threads);
}

}  // namespace adbscan
